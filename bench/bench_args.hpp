#pragma once

// Strict numeric argv parsing shared by the bench front-ends: the whole
// token must parse, so a malformed value ("--horizon abc", "--trials 1e3")
// prints which flag rejected it and exits 2 -- the same convention as
// flexrt_design -- instead of aborting on an uncaught std::invalid_argument
// or silently truncating ("100x" -> 100) the way raw std::stod/stoi do.

#include <cstdlib>
#include <iostream>
#include <string>

namespace flexrt::bench {

inline double parse_num(const char* flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos == v.size()) return out;
  } catch (const std::exception&) {
  }
  std::cerr << flag << ": bad number '" << v << "'\n";
  std::exit(2);
}

inline std::size_t parse_count(const char* flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const unsigned long long out = std::stoull(v, &pos, 10);
    if (pos == v.size()) return static_cast<std::size_t>(out);
  } catch (const std::exception&) {
  }
  std::cerr << flag << ": bad count '" << v << "'\n";
  std::exit(2);
}

}  // namespace flexrt::bench
