// E10 -- how the channel partition affects the design space.
//
// The paper assumes a manual partition (its Table-1 assignment) and cites
// automatic partitioning as the open piece of the methodology. This bench
// compares the manual Table-1 partition against the four classic bin-packing
// heuristics, by the resulting maximal feasible period and slack bandwidth,
// and repeats the comparison on random systems.
//
// The random-system part runs on the analysis service
// (svc/analysis_service.hpp): one fleet holding every (trial, heuristic)
// packing -- generated with layout-independent per-trial seeds via
// AnalysisService::add_fleet -- probed by two fleet-wide SolveRequests (G1
// and G2). Entries are analysed across the parallel_for worker pool
// (FLEXRT_THREADS) and, with --shard k/N, the trial range splits over N
// cooperating processes; the per-shard aggregate rows (sums + counts)
// merge by addition.
//
// Usage: partitioning_study [--csv] [--trials N] [--seed S] [--shard k/N]
#include <array>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"
#include "core/study_runner.hpp"
#include "gen/taskset_gen.hpp"
#include "svc/analysis_service.hpp"

using namespace flexrt;

namespace {

constexpr std::array<part::Heuristic, 4> kHeuristics = {
    part::Heuristic::FirstFit, part::Heuristic::BestFit,
    part::Heuristic::WorstFit, part::Heuristic::NextFit};

struct Outcome {
  bool feasible = false;
  double p_max = 0.0;
  double slack_bw = 0.0;
};

Outcome evaluate(const core::ModeTaskSystem& sys, double o_tot) {
  core::SearchOptions opts;
  opts.grid_step = 2e-3;
  opts.p_max = 10.0;
  Outcome out;
  try {
    out.p_max = core::max_feasible_period(sys, hier::Scheduler::EDF, o_tot,
                                          opts);
    out.slack_bw =
        core::max_slack_period(sys, hier::Scheduler::EDF, o_tot, opts)
            .slack_bandwidth;
    out.feasible = true;
  } catch (const InfeasibleError&) {
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  core::StudyOptions study;
  study.trials = 100;
  study.base_seed = 0x9A57;
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) csv = true;
      core::parse_study_flag(study, argc, argv, i);
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const double o_tot = 0.05;
  const bool lead_shard = study.shard.index == 0;

  if (lead_shard) {
    std::cout << "E10a: Table-1 system, manual partition vs heuristics "
              << "(EDF, O_tot = " << o_tot << ")\n"
              << "(capacity = per-channel utilization cap during packing; "
                 "first/best/next-fit need a tight cap to spread load)\n\n";
    Table t1({"partition", "capacity", "P_max", "slack_bw"});
    const Outcome manual = evaluate(core::paper_example(), o_tot);
    t1.row().cell("manual (paper)").cell("-").cell(manual.p_max, 3).cell(
        manual.slack_bw, 3);
    for (const part::Heuristic h : kHeuristics) {
      for (const double cap : {1.0, 0.5, 0.3}) {
        const auto sys = gen::build_system(core::paper_example_tasks(),
                                           {h, true, cap});
        if (!sys) {
          t1.row().cell(to_string(h)).cell(cap, 1).cell("pack-fail").cell("-");
          continue;
        }
        const Outcome o = evaluate(*sys, o_tot);
        t1.row().cell(to_string(h)).cell(cap, 1).cell(o.p_max, 3).cell(
            o.slack_bw, 3);
      }
    }
    csv ? t1.print_csv(std::cout) : t1.print(std::cout);
  }

  // E10b: one service fleet holding every (heuristic, trial) packing of the
  // same per-trial task set -- identical workloads across heuristics, by
  // the determinism of trial_rng -- probed by two fleet-wide requests.
  svc::AnalysisService service;
  std::array<std::size_t, kHeuristics.size()> first{};
  for (std::size_t h = 0; h < kHeuristics.size(); ++h) {
    first[h] = service.add_fleet(
        study,
        [h](std::size_t, Rng& rng) {
          return gen::build_system(gen::study_task_set(rng),
                                   {kHeuristics[h], true, 1.0});
        },
        std::string(to_string(kHeuristics[h])) + "_t");
  }
  core::SearchOptions opts;
  opts.grid_step = 2e-3;
  opts.p_max = 10.0;
  const core::Overheads ov{o_tot, 0.0, 0.0};
  const std::vector<svc::SolveResult> g1 = service.solve(
      {hier::Scheduler::EDF, ov, core::DesignGoal::MinOverheadBandwidth, opts,
       {}});
  const std::vector<svc::SolveResult> g2 = service.solve(
      {hier::Scheduler::EDF, ov, core::DesignGoal::MaxSlackBandwidth, opts,
       {}});

  const std::size_t per_heuristic = service.size() / kHeuristics.size();
  const auto [begin, end] = core::shard_range(study.trials, study.shard);
  std::cout << "\nE10b: random systems, acceptance + mean P_max per "
               "heuristic (trials " << begin << ".." << end << " of "
            << study.trials << ", shard " << study.shard.index + 1 << "/"
            << study.shard.count << ", seed 0x" << std::hex << study.base_seed
            << std::dec << ")\n\n";
  Table t2({"heuristic", "trials", "accepted", "sum_P_max", "sum_slack_bw",
            "mean_P_max"});
  for (std::size_t h = 0; h < kHeuristics.size(); ++h) {
    int accepted = 0;
    double sum_p = 0.0, sum_s = 0.0;
    for (std::size_t k = first[h]; k < first[h] + per_heuristic; ++k) {
      if (!g1[k].ok() || !g1[k].feasible || !g2[k].feasible) continue;
      accepted++;
      sum_p += g1[k].design.schedule.period;
      sum_s += g2[k].design.schedule.slack_bandwidth();
    }
    t2.row()
        .cell(to_string(kHeuristics[h]))
        .cell(static_cast<double>(per_heuristic), 0)
        .cell(static_cast<double>(accepted), 0)
        .cell(sum_p, 3)
        .cell(sum_s, 3)
        .cell(accepted ? sum_p / accepted : 0.0, 3);
  }
  csv ? t2.print_csv(std::cout) : t2.print(std::cout);
  if (lead_shard) {
    std::cout << "\nshape check: worst-fit (load balancing) matches or beats "
                 "the other heuristics on acceptance; the paper's manual "
                 "partition is near the heuristic optimum. Shard rows merge "
                 "by summing trials/accepted/sums.\n";
  }
  return 0;
}
