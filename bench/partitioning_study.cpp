// E10 -- how the channel partition affects the design space.
//
// The paper assumes a manual partition (its Table-1 assignment) and cites
// automatic partitioning as the open piece of the methodology. This bench
// compares the manual Table-1 partition against the four classic bin-packing
// heuristics, by the resulting maximal feasible period and slack bandwidth,
// and repeats the comparison on random systems.
//
// Usage: partitioning_study [--csv] [--trials N]
#include <cstring>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"
#include "gen/taskset_gen.hpp"

using namespace flexrt;

namespace {

struct Outcome {
  bool feasible = false;
  double p_max = 0.0;
  double slack_bw = 0.0;
};

Outcome evaluate(const core::ModeTaskSystem& sys, double o_tot) {
  core::SearchOptions opts;
  opts.grid_step = 2e-3;
  opts.p_max = 10.0;
  Outcome out;
  try {
    out.p_max = core::max_feasible_period(sys, hier::Scheduler::EDF, o_tot,
                                          opts);
    out.slack_bw =
        core::max_slack_period(sys, hier::Scheduler::EDF, o_tot, opts)
            .slack_bandwidth;
    out.feasible = true;
  } catch (const InfeasibleError&) {
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  int trials = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::stoi(argv[++i]);
    }
  }
  const double o_tot = 0.05;

  std::cout << "E10a: Table-1 system, manual partition vs heuristics "
            << "(EDF, O_tot = " << o_tot << ")\n"
            << "(capacity = per-channel utilization cap during packing; "
               "first/best/next-fit need a tight cap to spread load)\n\n";
  Table t1({"partition", "capacity", "P_max", "slack_bw"});
  {
    const Outcome manual = evaluate(core::paper_example(), o_tot);
    t1.row().cell("manual (paper)").cell("-").cell(manual.p_max, 3).cell(
        manual.slack_bw, 3);
    for (const part::Heuristic h :
         {part::Heuristic::FirstFit, part::Heuristic::BestFit,
          part::Heuristic::WorstFit, part::Heuristic::NextFit}) {
      for (const double cap : {1.0, 0.5, 0.3}) {
        const auto sys = gen::build_system(core::paper_example_tasks(),
                                           {h, true, cap});
        if (!sys) {
          t1.row().cell(to_string(h)).cell(cap, 1).cell("pack-fail").cell("-");
          continue;
        }
        const Outcome o = evaluate(*sys, o_tot);
        t1.row().cell(to_string(h)).cell(cap, 1).cell(o.p_max, 3).cell(
            o.slack_bw, 3);
      }
    }
  }
  csv ? t1.print_csv(std::cout) : t1.print(std::cout);

  std::cout << "\nE10b: random systems, acceptance + mean P_max per "
               "heuristic (" << trials << " systems)\n\n";
  Table t2({"heuristic", "accepted", "mean_P_max", "mean_slack_bw"});
  for (const part::Heuristic h :
       {part::Heuristic::FirstFit, part::Heuristic::BestFit,
        part::Heuristic::WorstFit, part::Heuristic::NextFit}) {
    Rng rng(0x9A57);
    int accepted = 0;
    double sum_p = 0.0, sum_s = 0.0;
    for (int k = 0; k < trials; ++k) {
      gen::GenParams gp;
      gp.num_tasks = 12;
      gp.total_utilization = 1.2;
      const rt::TaskSet ts = gen::generate_task_set(gp, rng);
      const auto sys = gen::build_system(ts, {h, true, 1.0});
      if (!sys) continue;
      const Outcome o = evaluate(*sys, o_tot);
      if (o.feasible) {
        accepted++;
        sum_p += o.p_max;
        sum_s += o.slack_bw;
      }
    }
    t2.row()
        .cell(to_string(h))
        .cell(static_cast<double>(accepted) / trials, 3)
        .cell(accepted ? sum_p / accepted : 0.0, 3)
        .cell(accepted ? sum_s / accepted : 0.0, 3);
  }
  csv ? t2.print_csv(std::cout) : t2.print(std::cout);
  std::cout << "\nshape check: worst-fit (load balancing) matches or beats "
               "the other heuristics on acceptance; the paper's manual "
               "partition is near the heuristic optimum.\n";
  return 0;
}
