// E4 -- acceptance ratio vs total utilization (extension experiment).
//
// For each utilization level, draws random task systems and reports the
// fraction for which a feasible mode-switching design exists, under four
// analyses: EDF and RM, each with the paper's linear supply bound Z' and
// with the exact Lemma-1 supply Z. Expected shape: EDF dominates RM, and
// the exact supply dominates the linear bound.
//
// Usage: acceptance_sweep [--csv] [--trials N]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/analysis_engine.hpp"
#include "core/integration.hpp"
#include "gen/taskset_gen.hpp"

using namespace flexrt;

namespace {

bool accepted(const analysis::BatchEngine& engine, bool exact, double o_tot) {
  core::SearchOptions opts;
  opts.grid_step = 5e-3;
  opts.p_max = 10.0;
  opts.use_exact_supply = exact;
  try {
    engine.max_feasible_period(o_tot, opts);
    return true;
  } catch (const InfeasibleError&) {
    return false;
  }
}

struct TrialResult {
  bool valid = false;
  bool edf = false, edf_x = false, rm = false, rm_x = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  int trials = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = static_cast<int>(bench::parse_count("--trials", argv[++i]));
    }
  }

  const double o_tot = 0.05;
  std::cout << "E4: acceptance ratio vs total utilization ("
            << trials << " systems per point, O_tot = " << o_tot << ")\n\n";
  Table t({"U_total", "EDF_linear", "EDF_exact", "RM_linear", "RM_exact"});
  for (double u = 0.4; u <= 2.01; u += 0.2) {
    Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(u * 1000));
    // Generation stays serial so the drawn systems are bit-reproducible;
    // the four analyses per trial fan out over the parallel_for runner,
    // each trial probing two persistent BatchEngines (EDF + RM).
    std::vector<std::optional<core::ModeTaskSystem>> systems;
    systems.reserve(static_cast<std::size_t>(trials));
    for (int k = 0; k < trials; ++k) {
      gen::GenParams gp;
      gp.num_tasks = 10;
      gp.total_utilization = u;
      const rt::TaskSet ts = gen::generate_task_set(gp, rng);
      // build_system == nullopt: not placeable even by utilization; count
      // as rejected by every analysis.
      systems.push_back(gen::build_system(ts));
    }
    std::vector<TrialResult> results(systems.size());
    par::parallel_for(systems.size(), [&](std::size_t k) {
      if (!systems[k]) return;
      const analysis::BatchEngine edf(*systems[k], hier::Scheduler::EDF);
      const analysis::BatchEngine rm(*systems[k], hier::Scheduler::FP);
      results[k] = {true, accepted(edf, false, o_tot),
                    accepted(edf, true, o_tot), accepted(rm, false, o_tot),
                    accepted(rm, true, o_tot)};
    });
    int n_edf = 0, n_edf_x = 0, n_rm = 0, n_rm_x = 0, n_valid = 0;
    for (const TrialResult& r : results) {
      n_valid += r.valid;
      n_edf += r.edf;
      n_edf_x += r.edf_x;
      n_rm += r.rm;
      n_rm_x += r.rm_x;
    }
    const double denom = trials;
    t.row()
        .cell(u, 2)
        .cell(n_edf / denom, 3)
        .cell(n_edf_x / denom, 3)
        .cell(n_rm / denom, 3)
        .cell(n_rm_x / denom, 3);
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << "\nshape checks: EDF >= RM columnwise; exact >= linear "
               "columnwise.\n";
  return 0;
}
