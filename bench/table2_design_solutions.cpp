// E3 -- Table 2 of the paper: the two worked design solutions on the
// Table-1 task set with O_tot = 0.05 under EDF.
//   row (a): bandwidth each mode must at least receive (max channel util)
//   row (b): goal G1, minimize overhead bandwidth  -> P = 2.966
//   row (c): goal G2, maximize slack bandwidth     -> P = 0.855
//
// Usage: table2_design_solutions [--csv]
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"

using namespace flexrt;

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
  const core::ModeTaskSystem sys = core::paper_example();
  const core::PaperReference ref;
  const core::Overheads ov{ref.o_tot / 3, ref.o_tot / 3, ref.o_tot / 3};

  Table t({"row", "P", "O_tot", "Q~FT", "Q~FS", "Q~NF", "slack", "slack/P"});
  t.row()
      .cell("(a) required util")
      .cell("-")
      .cell("-")
      .cell(sys.required_bandwidth(rt::Mode::FT), 3)
      .cell(sys.required_bandwidth(rt::Mode::FS), 3)
      .cell(sys.required_bandwidth(rt::Mode::NF), 3)
      .cell("-")
      .cell("-");

  auto add_design = [&](const char* label, core::DesignGoal goal) {
    const core::Design d = core::solve_design(sys, hier::Scheduler::EDF, ov,
                                              goal);
    t.row()
        .cell(label)
        .cell(d.schedule.period, 3)
        .cell(ref.o_tot, 3)
        .cell(d.schedule.ft.usable, 3)
        .cell(d.schedule.fs.usable, 3)
        .cell(d.schedule.nf.usable, 3)
        .cell(d.schedule.slack(), 3)
        .cell(d.schedule.slack_bandwidth(), 3);
    t.row()
        .cell("    alloc util")
        .cell("1.000")
        .cell(d.schedule.overhead_bandwidth(), 3)
        .cell(d.schedule.allocated_bandwidth(rt::Mode::FT), 3)
        .cell(d.schedule.allocated_bandwidth(rt::Mode::FS), 3)
        .cell(d.schedule.allocated_bandwidth(rt::Mode::NF), 3)
        .cell(d.schedule.slack_bandwidth(), 3)
        .cell("-");
  };
  add_design("(b) min overhead bw", core::DesignGoal::MinOverheadBandwidth);
  add_design("(c) max slack bw", core::DesignGoal::MaxSlackBandwidth);

  std::cout << "Table 2: design solutions (EDF, O_tot = 0.05)\n"
            << "paper row (b): P=2.966  Q~=0.820/1.281/0.815  slack 0.000\n"
            << "paper row (c): P=0.855  Q~=0.230/0.252/0.220  slack 0.103 "
               "(12.1% of bandwidth)\n\n";
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  return 0;
}
