// E11 -- micro-benchmarks of the analysis kernels and the simulator
// (google-benchmark). These quantify the cost of the pieces a designer
// iterates on: minQ evaluations, the lhs(P) curve, the full design solve,
// and simulated time per wall second.
#include <benchmark/benchmark.h>

#include "core/design.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"
#include "gen/taskset_gen.hpp"
#include "hier/min_quantum.hpp"
#include "rt/demand.hpp"
#include "rt/priority.hpp"
#include "rt/sched_points.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flexrt;

const core::ModeTaskSystem& paper_sys() {
  static const core::ModeTaskSystem sys = core::paper_example();
  return sys;
}

rt::TaskSet sized_set(std::size_t n) {
  Rng rng(1234 + n);
  gen::GenParams gp;
  gp.num_tasks = n;
  gp.total_utilization = 0.6;
  gp.ft_fraction = 0.0;
  gp.fs_fraction = 0.0;
  return gen::generate_task_set(gp, rng);
}

void BM_SchedulingPoints(benchmark::State& state) {
  const rt::TaskSet ts =
      rt::sort_rate_monotonic(sized_set(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::scheduling_points(ts, ts.size() - 1));
  }
}
BENCHMARK(BM_SchedulingPoints)->Arg(4)->Arg(8)->Arg(12);

void BM_EdfDemandCurve(benchmark::State& state) {
  const rt::TaskSet ts = sized_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    double acc = 0.0;
    for (const double t : rt::deadline_set(ts)) acc += rt::edf_demand(ts, t);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EdfDemandCurve)->Arg(4)->Arg(8)->Arg(12);

void BM_MinQuantum(benchmark::State& state) {
  const rt::TaskSet ts =
      rt::sort_rate_monotonic(sized_set(static_cast<std::size_t>(state.range(0))));
  const hier::Scheduler alg =
      state.range(1) == 0 ? hier::Scheduler::FP : hier::Scheduler::EDF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier::min_quantum(ts, alg, 2.0));
  }
}
BENCHMARK(BM_MinQuantum)->Args({8, 0})->Args({8, 1})->Args({12, 0})->Args({12, 1});

void BM_FeasibilityMargin(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::feasibility_margin(paper_sys(), hier::Scheduler::EDF, 2.0));
  }
}
BENCHMARK(BM_FeasibilityMargin);

void BM_SolveDesignG1(benchmark::State& state) {
  const core::Overheads ov{0.02, 0.02, 0.01};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_design(paper_sys(), hier::Scheduler::EDF, ov,
                           core::DesignGoal::MinOverheadBandwidth));
  }
}
BENCHMARK(BM_SolveDesignG1);

void BM_Simulate(benchmark::State& state) {
  const core::Design d =
      core::solve_design(paper_sys(), hier::Scheduler::EDF,
                         {0.02, 0.02, 0.02},
                         core::DesignGoal::MaxSlackBandwidth);
  const double horizon = static_cast<double>(state.range(0));
  for (auto _ : state) {
    sim::SimOptions opt;
    opt.horizon = horizon;
    benchmark::DoNotOptimize(sim::simulate(paper_sys(), d.schedule, opt));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_Simulate)->Arg(1000)->Arg(10000);

void BM_SimulateWithFaults(benchmark::State& state) {
  const core::Design d =
      core::solve_design(paper_sys(), hier::Scheduler::EDF,
                         {0.02, 0.02, 0.02},
                         core::DesignGoal::MaxSlackBandwidth);
  for (auto _ : state) {
    sim::SimOptions opt;
    opt.horizon = 5000.0;
    opt.faults = {0.05, 2.0};
    benchmark::DoNotOptimize(sim::simulate(paper_sys(), d.schedule, opt));
  }
}
BENCHMARK(BM_SimulateWithFaults);

}  // namespace
