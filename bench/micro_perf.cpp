// E11 -- micro-benchmarks of the analysis kernels and the simulator
// (google-benchmark). These quantify the cost of the pieces a designer
// iterates on: minQ evaluations, the lhs(P) curve, the full design solve,
// and simulated time per wall second.
//
// Every hot kernel now comes in a before/after pair: the *Legacy variants
// run the frozen pre-refactor kernels (bench/legacy_kernels.hpp) that
// re-derive scheduling points / deadline sets per call, invert supplies by
// bisection and deep-copy the system per sensitivity probe; the plain
// variants run the batched analysis engine (AnalysisContext caches +
// closed-form inverses + parallel_for sweeps). Keep both: the ratio is the
// number tools/bench_report tracks across PRs.
#include <benchmark/benchmark.h>

#include "core/analysis_engine.hpp"
#include "core/design.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"
#include "core/sensitivity.hpp"
#include "gen/taskset_gen.hpp"
#include "hier/min_quantum.hpp"
#include "legacy_kernels.hpp"
#include "stress_workloads.hpp"
#include "rt/analysis_context.hpp"
#include "rt/deadline_bound.hpp"
#include "rt/demand.hpp"
#include "rt/priority.hpp"
#include "rt/sched_points.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flexrt;

const core::ModeTaskSystem& paper_sys() {
  static const core::ModeTaskSystem sys = core::paper_example();
  return sys;
}

core::ModeSchedule paper_schedule() {
  static const core::Design d =
      core::solve_design(paper_sys(), hier::Scheduler::EDF, {0.02, 0.02, 0.02},
                         core::DesignGoal::MaxSlackBandwidth);
  return d.schedule;
}

rt::TaskSet sized_set(std::size_t n) {
  Rng rng(1234 + n);
  gen::GenParams gp;
  gp.num_tasks = n;
  gp.total_utilization = 0.6;
  gp.ft_fraction = 0.0;
  gp.fs_fraction = 0.0;
  return gen::generate_task_set(gp, rng);
}

void BM_SchedulingPoints(benchmark::State& state) {
  const rt::TaskSet ts =
      rt::sort_rate_monotonic(sized_set(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::scheduling_points(ts, ts.size() - 1));
  }
}
BENCHMARK(BM_SchedulingPoints)->Arg(4)->Arg(8)->Arg(12);

// --- EDF demand curve: O(n * points) per-point kernel vs one event sweep --

void BM_EdfDemandCurveLegacy(benchmark::State& state) {
  const rt::TaskSet ts = sized_set(static_cast<std::size_t>(state.range(0)));
  // deadline_set stays inside the loop: this is the seed benchmark verbatim
  // (callers re-derived the point set per curve), so the before/after ratio
  // keeps its meaning across PRs.
  for (auto _ : state) {
    double acc = 0.0;
    for (const double t : rt::deadline_set(ts)) acc += rt::edf_demand(ts, t);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EdfDemandCurveLegacy)->Arg(4)->Arg(8)->Arg(12);

void BM_EdfDemandCurve(benchmark::State& state) {
  const rt::TaskSet ts = sized_set(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> points = rt::deadline_set(ts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::edf_demand_curve(ts, points));
  }
}
BENCHMARK(BM_EdfDemandCurve)->Arg(4)->Arg(8)->Arg(12);

// --- stress scale: QPA-condensed dlSet at n = 10^3-10^4 -------------------
// The hostile sets have effectively co-prime periods: the full dlSet runs to
// an astronomic hyperperiod, so only the condensed path is tractable there.
// The tractable twin (menu periods, hyperperiod 120) carries the legacy
// comparison: per-point O(n * points) kernel vs the cached context probe.
// Workloads are shared with tools/bench_report via bench/stress_workloads.hpp.

using benchws::stress_set;
using benchws::stress_set_fp;
using benchws::tractable_big_set;

void BM_BoundedDeadlineSetStress(benchmark::State& state) {
  const rt::TaskSet ts = stress_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::bounded_deadline_set(ts));
  }
}
BENCHMARK(BM_BoundedDeadlineSetStress)->Arg(1000)->Arg(4000);

void BM_MinQuantumStressCold(benchmark::State& state) {
  // Cold: context built per iteration -- the full cost of one analysis of a
  // fresh hyperperiod-hostile set (the acceptance criterion's "seconds").
  const rt::TaskSet ts = stress_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const rt::AnalysisContext ctx(ts);
    benchmark::DoNotOptimize(hier::min_quantum(ctx, hier::Scheduler::EDF,
                                               2.0));
  }
}
BENCHMARK(BM_MinQuantumStressCold)->Arg(1000)->Arg(4000);

void BM_MinQuantumStressProbe(benchmark::State& state) {
  // Warm: the design-sweep shape, one context probed at many periods.
  const rt::TaskSet ts = stress_set(static_cast<std::size_t>(state.range(0)));
  const rt::AnalysisContext ctx(ts);
  double period = 1.0;
  for (auto _ : state) {
    period = period >= 8.0 ? 1.0 : period + 0.37;
    benchmark::DoNotOptimize(hier::min_quantum(ctx, hier::Scheduler::EDF,
                                               period));
  }
}
BENCHMARK(BM_MinQuantumStressProbe)->Arg(1000)->Arg(4000);

void BM_MinQuantumStressFpCold(benchmark::State& state) {
  // FP twin of the cold EDF stress row: the full Bini-Buttazzo sets are
  // astronomically large here, so only the condensed point budget
  // (rt::bounded_scheduling_points) finishes. Context built per iteration.
  const rt::TaskSet ts =
      stress_set_fp(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const rt::AnalysisContext ctx(ts);
    benchmark::DoNotOptimize(hier::min_quantum(ctx, hier::Scheduler::FP,
                                               2.0));
  }
}
BENCHMARK(BM_MinQuantumStressFpCold)->Arg(1000)->Arg(4000);

void BM_MinQuantumStressFpProbe(benchmark::State& state) {
  // Warm: one condensed context probed at many periods (the design-sweep
  // shape the FP budget exists for).
  const rt::TaskSet ts =
      stress_set_fp(static_cast<std::size_t>(state.range(0)));
  const rt::AnalysisContext ctx(ts);
  double period = 1.0;
  for (auto _ : state) {
    period = period >= 8.0 ? 1.0 : period + 0.37;
    benchmark::DoNotOptimize(hier::min_quantum(ctx, hier::Scheduler::FP,
                                               period));
  }
}
BENCHMARK(BM_MinQuantumStressFpProbe)->Arg(1000)->Arg(4000);

void BM_MinQuantumBigLegacy(benchmark::State& state) {
  // Legacy path on the tractable twin (the hostile set would not finish).
  const rt::TaskSet ts =
      tractable_big_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy::min_quantum(ts, hier::Scheduler::EDF,
                                                 2.0));
  }
}
BENCHMARK(BM_MinQuantumBigLegacy)->Arg(1000);

void BM_MinQuantumBig(benchmark::State& state) {
  const rt::TaskSet ts =
      tractable_big_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const rt::AnalysisContext ctx(ts);
    benchmark::DoNotOptimize(hier::min_quantum(ctx, hier::Scheduler::EDF,
                                               2.0));
  }
}
BENCHMARK(BM_MinQuantumBig)->Arg(1000);

// --- supply inversion: closed form vs bisection fallback ------------------

void BM_SupplyInverseBisection(benchmark::State& state) {
  const hier::SlotSupply slot(2.0, 0.75);
  for (auto _ : state) {
    double acc = 0.0;
    for (int d = 1; d <= 16; ++d) {
      acc += slot.inverse_by_bisection(0.33 * d);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SupplyInverseBisection);

void BM_SupplyInverseClosedForm(benchmark::State& state) {
  const hier::SlotSupply slot(2.0, 0.75);
  for (auto _ : state) {
    double acc = 0.0;
    for (int d = 1; d <= 16; ++d) {
      acc += slot.inverse(0.33 * d);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SupplyInverseClosedForm);

// --- minQ: per-call re-derivation vs AnalysisContext probes ---------------
// Args: {n, 0=FP | 1=EDF}. The cached variant models the design workflow
// (one task set probed at many periods); the legacy variant is the seed
// kernel that pays the full derivation on every call.

void BM_MinQuantumLegacy(benchmark::State& state) {
  const rt::TaskSet ts =
      rt::sort_rate_monotonic(sized_set(static_cast<std::size_t>(state.range(0))));
  const hier::Scheduler alg =
      state.range(1) == 0 ? hier::Scheduler::FP : hier::Scheduler::EDF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy::min_quantum(ts, alg, 2.0));
  }
}
BENCHMARK(BM_MinQuantumLegacy)->Args({8, 0})->Args({8, 1})->Args({12, 0})->Args({12, 1});

void BM_MinQuantum(benchmark::State& state) {
  const rt::TaskSet ts =
      rt::sort_rate_monotonic(sized_set(static_cast<std::size_t>(state.range(0))));
  const hier::Scheduler alg =
      state.range(1) == 0 ? hier::Scheduler::FP : hier::Scheduler::EDF;
  const rt::AnalysisContext ctx(ts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier::min_quantum(ctx, alg, 2.0));
  }
}
BENCHMARK(BM_MinQuantum)->Args({8, 0})->Args({8, 1})->Args({12, 0})->Args({12, 1});

// --- lhs(P): per-call engine rebuild vs persistent engine probes ----------

void BM_FeasibilityMarginLegacy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        legacy::feasibility_margin(paper_sys(), hier::Scheduler::EDF, 2.0));
  }
}
BENCHMARK(BM_FeasibilityMarginLegacy);

void BM_FeasibilityMargin(benchmark::State& state) {
  const analysis::BatchEngine engine(paper_sys(), hier::Scheduler::EDF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.feasibility_margin(2.0));
  }
}
BENCHMARK(BM_FeasibilityMargin);

// --- sensitivity: deep-copy probes vs in-place scaled demand curves -------

void BM_SensitivityReportLegacy(benchmark::State& state) {
  const core::ModeSchedule schedule = paper_schedule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy::sensitivity_report(
        paper_sys(), schedule, hier::Scheduler::EDF));
  }
}
BENCHMARK(BM_SensitivityReportLegacy);

void BM_SensitivityReport(benchmark::State& state) {
  const core::ModeSchedule schedule = paper_schedule();
  const analysis::BatchEngine engine(paper_sys(), hier::Scheduler::EDF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sensitivity_report(schedule));
  }
}
BENCHMARK(BM_SensitivityReport);

// --- region sweep: serial loop vs parallel_for runner ---------------------
// On a single-core host both paths degenerate to the same serial loop; the
// pair exists so multi-core CI shows the sweep-runner scaling.

void BM_SampleRegionSerial(benchmark::State& state) {
  const analysis::BatchEngine engine(paper_sys(), hier::Scheduler::EDF);
  core::SearchOptions opts;
  opts.grid_step = 1e-2;
  for (auto _ : state) {
    std::vector<core::RegionSample> out;
    for (double p = opts.p_min; p <= 6.0; p += opts.grid_step) {
      out.push_back({p, engine.feasibility_margin(p)});
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SampleRegionSerial);

void BM_SampleRegion(benchmark::State& state) {
  const analysis::BatchEngine engine(paper_sys(), hier::Scheduler::EDF);
  core::SearchOptions opts;
  opts.grid_step = 1e-2;
  opts.p_max = 6.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sample_region(opts));
  }
}
BENCHMARK(BM_SampleRegion);

// --- end-to-end solves and simulation (unchanged shapes) ------------------

void BM_SolveDesignG1(benchmark::State& state) {
  const core::Overheads ov{0.02, 0.02, 0.01};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_design(paper_sys(), hier::Scheduler::EDF, ov,
                           core::DesignGoal::MinOverheadBandwidth));
  }
}
BENCHMARK(BM_SolveDesignG1);

void BM_Simulate(benchmark::State& state) {
  const core::Design d =
      core::solve_design(paper_sys(), hier::Scheduler::EDF,
                         {0.02, 0.02, 0.02},
                         core::DesignGoal::MaxSlackBandwidth);
  const double horizon = static_cast<double>(state.range(0));
  for (auto _ : state) {
    sim::SimOptions opt;
    opt.horizon = horizon;
    benchmark::DoNotOptimize(sim::simulate(paper_sys(), d.schedule, opt));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_Simulate)->Arg(1000)->Arg(10000);

void BM_SimulateWithFaults(benchmark::State& state) {
  const core::Design d =
      core::solve_design(paper_sys(), hier::Scheduler::EDF,
                         {0.02, 0.02, 0.02},
                         core::DesignGoal::MaxSlackBandwidth);
  for (auto _ : state) {
    sim::SimOptions opt;
    opt.horizon = 5000.0;
    opt.faults = {0.05, 2.0};
    benchmark::DoNotOptimize(sim::simulate(paper_sys(), d.schedule, opt));
  }
}
BENCHMARK(BM_SimulateWithFaults);

}  // namespace
