// E2 -- Figure 4 of the paper: the feasible-period region.
//
// Prints the curve lhs(P) = P - sum_k max_i minQ(T_k^i, alg, P) for both EDF
// and RM on the Table-1 task set, plus the five marked points:
//   (1) largest feasible P under EDF with zero overhead      (paper: 3.176)
//   (2) largest feasible P under RM with zero overhead       (paper: 2.381)
//   (3) largest admissible total overhead under EDF          (paper: 0.201)
//   (4) largest admissible total overhead under RM           (paper: 0.129)
//   (5) largest feasible P under EDF with O_tot = 0.05       (paper: 2.966)
//
// With --gen-trials N it appends a generated-system region study on the
// analysis service (svc/analysis_service.hpp): a fleet of N random systems
// (AnalysisService::add_fleet keeps the per-trial seeds layout-independent)
// probed by one G1 SolveRequest per scheduler. --shard k/N splits the trial
// range across processes; per-shard sum/count rows merge by addition.
//
// Usage: fig4_feasible_periods [--csv] [--step <dP>] [--gen-trials N]
//                              [--seed S] [--shard k/N]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"
#include "core/study_runner.hpp"
#include "gen/taskset_gen.hpp"
#include "svc/analysis_service.hpp"

using namespace flexrt;

int main(int argc, char** argv) {
  bool csv = false;
  double step = 0.05;
  core::StudyOptions study;
  study.trials = 0;  // generated part is opt-in (--gen-trials)
  study.base_seed = 0xF16;
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) csv = true;
      if (std::strcmp(argv[i], "--step") == 0 && i + 1 < argc) {
        step = bench::parse_num("--step", argv[++i]);
        continue;
      }
      core::parse_study_flag(study, argc, argv, i, "--gen-trials");
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (study.shard.index != 0 && study.trials == 0) {
    std::cout << "nothing to do: non-lead shard without --gen-trials\n";
    return 0;
  }

  const core::ModeTaskSystem sys = core::paper_example();
  const core::PaperReference ref;

  if (study.shard.index == 0) {
  std::cout << "Figure 4: region of feasible periods (13-task example)\n\n";
  core::SearchOptions opts;
  opts.p_min = 0.05;
  opts.p_max = 3.5;
  opts.grid_step = step;
  const auto edf = core::sample_region(sys, hier::Scheduler::EDF, opts);
  const auto rm = core::sample_region(sys, hier::Scheduler::FP, opts);

  Table curve({"P", "lhs_EDF", "lhs_RM", "feasible@O=0.05(EDF)"});
  for (std::size_t i = 0; i < edf.size(); ++i) {
    curve.row()
        .cell(edf[i].period, 3)
        .cell(edf[i].margin, 4)
        .cell(rm[i].margin, 4)
        .cell(edf[i].margin >= ref.o_tot ? "yes" : "no");
  }
  csv ? curve.print_csv(std::cout) : curve.print(std::cout);

  Table points({"point", "quantity", "measured", "paper"});
  const double p1 = core::max_feasible_period(sys, hier::Scheduler::EDF, 0.0);
  const double p2 = core::max_feasible_period(sys, hier::Scheduler::FP, 0.0);
  const auto o3 = core::max_admissible_overhead(sys, hier::Scheduler::EDF);
  const auto o4 = core::max_admissible_overhead(sys, hier::Scheduler::FP);
  const double p5 =
      core::max_feasible_period(sys, hier::Scheduler::EDF, ref.o_tot);
  points.row().cell("1").cell("P_max EDF, O=0").cell(p1, 3).cell(
      ref.p_max_edf_no_overhead, 3);
  points.row().cell("2").cell("P_max RM, O=0").cell(p2, 3).cell(
      ref.p_max_rm_no_overhead, 3);
  points.row().cell("3").cell("max O_tot EDF").cell(o3.max_overhead, 3).cell(
      ref.max_overhead_edf, 3);
  points.row().cell("4").cell("max O_tot RM").cell(o4.max_overhead, 3).cell(
      ref.max_overhead_rm, 3);
  points.row().cell("5").cell("P_max EDF, O=0.05").cell(p5, 3).cell(
      ref.p_max_edf_o005, 3);
  std::cout << "\nMarked points:\n";
  csv ? points.print_csv(std::cout) : points.print(std::cout);
  }  // lead shard

  if (study.trials > 0) {
    svc::AnalysisService service;
    service.add_fleet(study, [](std::size_t, Rng& rng) {
      return gen::study_system(rng);
    });
    core::SearchOptions opts;
    opts.grid_step = 5e-3;
    opts.p_max = 10.0;
    const core::Overheads ov{0.05, 0.0, 0.0};
    const auto [begin, end] = core::shard_range(study.trials, study.shard);
    std::cout << "\nE2b: generated systems, P_max distribution (trials "
              << begin << ".." << end << " of " << study.trials << ", shard "
              << study.shard.index + 1 << "/" << study.shard.count
              << ", O_tot = 0.05)\n\n";
    Table gen_t({"scheduler", "trials", "feasible", "sum_P_max",
                 "mean_P_max"});
    for (const bool edf : {true, false}) {
      const std::vector<svc::SolveResult> results = service.solve(
          {edf ? hier::Scheduler::EDF : hier::Scheduler::FP, ov,
           core::DesignGoal::MinOverheadBandwidth, opts, {}});
      std::size_t feasible = 0;
      double sum_p = 0.0;
      for (const svc::SolveResult& r : results) {
        if (!r.ok() || !r.feasible) continue;
        feasible++;
        sum_p += r.design.schedule.period;
      }
      gen_t.row()
          .cell(edf ? "EDF" : "RM")
          .cell(results.size())
          .cell(feasible)
          .cell(sum_p, 3)
          .cell(feasible ? sum_p / static_cast<double>(feasible) : 0.0, 3);
    }
    csv ? gen_t.print_csv(std::cout) : gen_t.print(std::cout);
  }
  return 0;
}
