// E2 -- Figure 4 of the paper: the feasible-period region.
//
// Prints the curve lhs(P) = P - sum_k max_i minQ(T_k^i, alg, P) for both EDF
// and RM on the Table-1 task set, plus the five marked points:
//   (1) largest feasible P under EDF with zero overhead      (paper: 3.176)
//   (2) largest feasible P under RM with zero overhead       (paper: 2.381)
//   (3) largest admissible total overhead under EDF          (paper: 0.201)
//   (4) largest admissible total overhead under RM           (paper: 0.129)
//   (5) largest feasible P under EDF with O_tot = 0.05       (paper: 2.966)
//
// Usage: fig4_feasible_periods [--csv] [--step <dP>]
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"

using namespace flexrt;

int main(int argc, char** argv) {
  bool csv = false;
  double step = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--step") == 0 && i + 1 < argc) {
      step = std::stod(argv[++i]);
    }
  }

  const core::ModeTaskSystem sys = core::paper_example();
  const core::PaperReference ref;

  std::cout << "Figure 4: region of feasible periods (13-task example)\n\n";
  core::SearchOptions opts;
  opts.p_min = 0.05;
  opts.p_max = 3.5;
  opts.grid_step = step;
  const auto edf = core::sample_region(sys, hier::Scheduler::EDF, opts);
  const auto rm = core::sample_region(sys, hier::Scheduler::FP, opts);

  Table curve({"P", "lhs_EDF", "lhs_RM", "feasible@O=0.05(EDF)"});
  for (std::size_t i = 0; i < edf.size(); ++i) {
    curve.row()
        .cell(edf[i].period, 3)
        .cell(edf[i].margin, 4)
        .cell(rm[i].margin, 4)
        .cell(edf[i].margin >= ref.o_tot ? "yes" : "no");
  }
  csv ? curve.print_csv(std::cout) : curve.print(std::cout);

  Table points({"point", "quantity", "measured", "paper"});
  const double p1 = core::max_feasible_period(sys, hier::Scheduler::EDF, 0.0);
  const double p2 = core::max_feasible_period(sys, hier::Scheduler::FP, 0.0);
  const auto o3 = core::max_admissible_overhead(sys, hier::Scheduler::EDF);
  const auto o4 = core::max_admissible_overhead(sys, hier::Scheduler::FP);
  const double p5 =
      core::max_feasible_period(sys, hier::Scheduler::EDF, ref.o_tot);
  points.row().cell("1").cell("P_max EDF, O=0").cell(p1, 3).cell(
      ref.p_max_edf_no_overhead, 3);
  points.row().cell("2").cell("P_max RM, O=0").cell(p2, 3).cell(
      ref.p_max_rm_no_overhead, 3);
  points.row().cell("3").cell("max O_tot EDF").cell(o3.max_overhead, 3).cell(
      ref.max_overhead_edf, 3);
  points.row().cell("4").cell("max O_tot RM").cell(o4.max_overhead, 3).cell(
      ref.max_overhead_rm, 3);
  points.row().cell("5").cell("P_max EDF, O=0.05").cell(p5, 3).cell(
      ref.p_max_edf_o005, 3);
  std::cout << "\nMarked points:\n";
  csv ? points.print_csv(std::cout) : points.print(std::cout);
  return 0;
}
