// E12 -- ablation of the paper's §5 future-work feature: serving each mode
// with k slots per period instead of one.
//
// Part A sweeps the period and reports whether a feasible allocation exists
// for k = 1 (the paper's scheme, via Eq. 15) and k = 2..4 (interleaved
// frames): splitting pushes the feasible-period frontier far beyond the
// single-slot limit of ~2.97, because the per-mode service delay shrinks by
// ~k while the bandwidth stays put -- at the price of k switch overheads.
//
// Part B fixes the period and reports the total allocated bandwidth
// (budgets + overheads) as k grows: the per-mode budgets sit near the
// bandwidth floor already, so each extra visit costs ~O_tot/P more --
// splitting buys feasibility at large periods (part A), not a smaller
// allocation.
//
// Usage: multi_slot_ablation [--csv]
#include <cstring>
#include <iostream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "core/general_frame.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"

using namespace flexrt;

namespace {

struct Attempt {
  bool feasible = false;
  double allocated_bw = 0.0;  ///< (sum usable + sum overhead) / P
};

Attempt attempt(const core::ModeTaskSystem& sys, double period,
                std::size_t k, const core::Overheads& ov) {
  try {
    const core::GeneralFrame f =
        core::solve_interleaved(sys, hier::Scheduler::EDF, ov, period, k);
    double used = 0.0;
    for (const core::GeneralSlot& s : f.slots()) used += s.total();
    return {true, used / period};
  } catch (const InfeasibleError&) {
    return {false, 0.0};
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
  const core::ModeTaskSystem sys = core::paper_example();
  const core::Overheads ov{0.05 / 3, 0.05 / 3, 0.05 / 3};

  std::cout << "E12a: feasibility vs period for k slots per mode "
            << "(Table-1 system, EDF, O_k = 0.0167 per switch)\n\n";
  Table a({"P", "k=1 (paper)", "k=2", "k=3", "k=4"});
  for (const double p : {1.0, 2.0, 2.9, 3.2, 4.0, 6.0, 8.0, 12.0}) {
    a.row().cell(p, 1);
    // k = 1 via the paper's own feasibility condition (Eq. 15).
    a.cell(core::feasibility_margin(sys, hier::Scheduler::EDF, p) >=
                   ov.total()
               ? "yes"
               : "no");
    for (const std::size_t k : {std::size_t{2}, std::size_t{3},
                                std::size_t{4}}) {
      a.cell(attempt(sys, p, k, ov).feasible ? "yes" : "no");
    }
  }
  csv ? a.print_csv(std::cout) : a.print(std::cout);

  std::cout << "\nE12b: allocated bandwidth (budgets + overheads) vs k at "
               "fixed periods\n\n";
  Table b({"P", "k", "feasible", "allocated_bw"});
  for (const double p : {2.0, 4.0}) {
    for (std::size_t k = 1; k <= 5; ++k) {
      const Attempt r = attempt(sys, p, k, ov);
      b.row().cell(p, 1).cell(static_cast<std::int64_t>(k));
      if (r.feasible) {
        b.cell("yes").cell(r.allocated_bw, 3);
      } else {
        b.cell("no").cell("-");
      }
    }
  }
  csv ? b.print_csv(std::cout) : b.print(std::cout);
  std::cout << "\nshape checks: k=1 infeasible past P~2.97 while k>=2 "
               "stays feasible far beyond it; allocated bandwidth grows "
               "linearly with k (the k-fold switch overhead), so the "
               "smallest feasible k wins once the period fits.\n";
  return 0;
}
