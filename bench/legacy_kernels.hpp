#pragma once

// Frozen pre-refactor analysis kernels, kept in-tree as the "before" side
// of the before/after micro-benchmarks (micro_perf, tools/bench_report) so
// the speedup trajectory of the batched analysis engine stays measurable
// across PRs. These are verbatim ports of the seed implementations:
//  - supply inversion by exponential search + bisection from lo = 0,
//  - min_quantum re-deriving scheduling points / deadline sets and calling
//    the O(n)-per-point demand kernels on every invocation,
//  - feasibility_margin re-sorting and re-deriving per call,
//  - sensitivity margins deep-copying the ModeTaskSystem per probe.
// Do not "optimize" these; their slowness is the point.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "core/mode_system.hpp"
#include "core/schedule.hpp"
#include "core/sensitivity.hpp"
#include "hier/min_quantum.hpp"
#include "hier/sched_test.hpp"
#include "rt/demand.hpp"
#include "rt/priority.hpp"
#include "rt/sched_points.hpp"

namespace flexrt::legacy {

inline double supply_inverse(const hier::SupplyFunction& supply,
                             double demand, double tolerance = 1e-9) {
  if (demand <= 0.0) return 0.0;
  double hi = supply.delay() + demand / supply.rate();
  int guard = 0;
  while (supply.value(hi) < demand) {
    hi *= 2.0;
    FLEXRT_REQUIRE(++guard < 128, "supply cannot cover the demand");
  }
  double lo = 0.0;  // seed bug kept: never re-bracketed above the delay
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (supply.value(mid) >= demand) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

inline double min_quantum(const rt::TaskSet& ts, hier::Scheduler alg,
                          double period) {
  if (ts.empty()) return 0.0;
  if (alg == hier::Scheduler::FP) {
    double worst = 0.0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const double t : rt::scheduling_points(ts, i)) {
        best = std::min(best, hier::quantum_for_point(
                                  t, rt::fp_workload(ts, i, t), period));
      }
      worst = std::max(worst, best);
    }
    return worst;
  }
  double worst = 0.0;
  for (const double t : rt::deadline_set(ts)) {
    worst = std::max(worst,
                     hier::quantum_for_point(t, rt::edf_demand(ts, t), period));
  }
  return worst;
}

inline double feasibility_margin(const core::ModeTaskSystem& sys,
                                 hier::Scheduler alg, double period) {
  double sum = 0.0;
  for (const rt::Mode mode : core::kAllModes) {
    double worst = 0.0;
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      if (ts.empty()) continue;
      const rt::TaskSet ordered = alg == hier::Scheduler::FP
                                      ? rt::sort_deadline_monotonic(ts)
                                      : ts;
      worst = std::max(worst, legacy::min_quantum(ordered, alg, period));
    }
    sum += worst;
  }
  return period - sum;
}

inline core::ModeTaskSystem scaled(const core::ModeTaskSystem& sys,
                                   const std::string& name, double lambda) {
  core::ModeTaskSystem out = sys;
  for (const rt::Mode mode : core::kAllModes) {
    std::vector<rt::TaskSet> parts;
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      rt::TaskSet scaled_ts;
      for (rt::Task t : ts) {
        if (name.empty() || t.name == name) t.wcet *= lambda;
        scaled_ts.add(std::move(t));
      }
      parts.push_back(std::move(scaled_ts));
    }
    out.set_partitions(mode, std::move(parts));
  }
  return out;
}

inline bool feasible_at(const core::ModeTaskSystem& sys,
                        const core::ModeSchedule& schedule,
                        hier::Scheduler alg, const std::string& name,
                        double lambda) {
  for (const rt::Mode mode : core::kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        if ((name.empty() || t.name == name) &&
            t.wcet * lambda > t.deadline * (1.0 + 1e-12)) {
          return false;
        }
      }
    }
  }
  return core::verify_schedule(scaled(sys, name, lambda), schedule, alg);
}

inline double bisect_margin(const core::ModeTaskSystem& sys,
                            const core::ModeSchedule& schedule,
                            hier::Scheduler alg, const std::string& name,
                            double lambda_max, double tolerance) {
  if (!feasible_at(sys, schedule, alg, name, 1.0)) return 1.0;
  if (feasible_at(sys, schedule, alg, name, lambda_max)) return lambda_max;
  double lo = 1.0, hi = lambda_max;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(sys, schedule, alg, name, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Seed sensitivity_report: one deep-copy bisection per task, each probe
/// re-verifying the whole system (including the lambda = 1 check the new
/// engine hoists).
inline std::vector<core::TaskMargin> sensitivity_report(
    const core::ModeTaskSystem& sys, const core::ModeSchedule& schedule,
    hier::Scheduler alg, double lambda_max = 16.0) {
  std::vector<core::TaskMargin> out;
  for (const rt::Mode mode : core::kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        out.push_back({t.name, mode, t.wcet,
                       bisect_margin(sys, schedule, alg, t.name, lambda_max,
                                     1e-4)});
      }
    }
  }
  return out;
}

}  // namespace flexrt::legacy
