#pragma once

// Shared large-n benchmark workloads. micro_perf and tools/bench_report must
// time the *same* task sets (BENCH_micro.json mirrors the benchmark suite),
// so the seeds and generator parameters live here, in one place.

#include <cstddef>

#include "common/rng.hpp"
#include "gen/taskset_gen.hpp"
#include "rt/task_set.hpp"

namespace flexrt::benchws {

/// Hyperperiod-hostile set (co-prime-ish fine-grid periods): the full dlSet
/// is intractable, only the QPA-condensed analysis finishes.
inline rt::TaskSet stress_set(std::size_t n) {
  Rng rng(977 + n);
  gen::StressParams sp;
  sp.num_tasks = n;
  return gen::generate_stress_set(sp, rng);
}

/// FP-ordered (deadline-monotonic) twin of stress_set: point-hostile for
/// the FP kernels the same way stress_set is hyperperiod-hostile for EDF.
/// Shares the seed so the EDF and FP stress rows describe the same draw.
inline rt::TaskSet stress_set_fp(std::size_t n) {
  Rng rng(977 + n);
  gen::StressParams sp;
  sp.num_tasks = n;
  return gen::generate_stress_set_fp(sp, rng);
}

/// Tractable twin (divisor-friendly period menu, hyperperiod 120): the
/// frozen legacy path still runs here, carrying the before/after ratio.
inline rt::TaskSet tractable_big_set(std::size_t n) {
  Rng rng(1234 + n);
  gen::GenParams gp;
  gp.num_tasks = n;
  gp.total_utilization = 0.6;
  gp.ft_fraction = 0.0;
  gp.fs_fraction = 0.0;
  return gen::generate_task_set(gp, rng);
}

}  // namespace flexrt::benchws
