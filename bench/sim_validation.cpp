// E5 -- analysis-vs-simulation validation (extension experiment).
//
// Solves designs for the Table-1 system and simulates them, then shrinks
// the usable quanta to a fraction f of their analytical minimum and reports
// deadline misses per 1000 time units: f >= 1 must be miss-free, and misses
// must appear as f drops below 1.
//
// Usage: sim_validation [--csv] [--horizon T]
#include <cstring>
#include <iostream>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "sim/simulator.hpp"

using namespace flexrt;

int main(int argc, char** argv) {
  bool csv = false;
  double horizon = 5000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--horizon") == 0 && i + 1 < argc) {
      horizon = bench::parse_num("--horizon", argv[++i]);
    }
  }

  const core::ModeTaskSystem sys = core::paper_example();
  // 1e-3 margin keeps the tick-grid rounding out of the boundary case.
  const core::Overheads ov{0.02, 0.02, 0.011};

  std::cout << "E5: simulated deadline misses vs quantum scale "
            << "(horizon " << horizon << ", Table-1 system)\n\n";
  Table t({"scale", "scheduler", "misses_FT", "misses_FS", "misses_NF",
           "total", "miss_per_1k"});
  for (const hier::Scheduler alg : {hier::Scheduler::EDF,
                                    hier::Scheduler::FP}) {
    const core::Design d =
        core::solve_design(sys, alg, ov, core::DesignGoal::MaxSlackBandwidth);
    for (const double scale : {1.2, 1.0, 0.9, 0.8, 0.6, 0.4}) {
      core::ModeSchedule s = d.schedule;
      s.ft.usable *= scale;
      s.fs.usable *= scale;
      s.nf.usable *= scale;
      if (s.slack() < 0.0) continue;  // cannot inflate past the frame
      sim::SimOptions opt;
      opt.horizon = horizon;
      opt.scheduler = alg;
      const sim::SimResult r = sim::simulate(sys, s, opt);
      std::uint64_t per_mode[3] = {0, 0, 0};
      for (const sim::TaskStats& ts : r.tasks) {
        per_mode[static_cast<std::size_t>(ts.mode)] += ts.deadline_misses;
      }
      t.row()
          .cell(scale, 2)
          .cell(to_string(alg))
          .cell(per_mode[0])
          .cell(per_mode[1])
          .cell(per_mode[2])
          .cell(r.total_misses())
          .cell(1000.0 * static_cast<double>(r.total_misses()) / horizon, 2);
    }
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << "\nshape check: zero misses at scale >= 1.0, misses grow as "
               "the quanta shrink.\n";
  return 0;
}
