// E9 -- sensitivity of the design space to the mode-switch overhead.
//
// Sweeps O_tot and reports, for EDF and RM on the Table-1 system: the
// largest feasible period (goal G1), the wasted bandwidth O_tot/P at that
// design, and the best redistributable slack bandwidth (goal G2). Past the
// maximum admissible overhead (0.201 EDF / 0.129 RM) the design problem
// becomes infeasible.
//
// Usage: overhead_sensitivity [--csv]
#include <cstring>
#include <iostream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"

using namespace flexrt;

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
  const core::ModeTaskSystem sys = core::paper_example();

  std::cout << "E9: design space vs total mode-switch overhead "
            << "(Table-1 system)\n\n";
  Table t({"O_tot", "scheduler", "P_max(G1)", "overhead_bw(G1)",
           "slack_bw(G2)", "P(G2)"});
  for (const hier::Scheduler alg : {hier::Scheduler::EDF,
                                    hier::Scheduler::FP}) {
    for (const double o :
         {0.0, 0.01, 0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25}) {
      const core::Overheads ov{o / 3, o / 3, o / 3};
      try {
        const auto g1 = core::solve_design(sys, alg, ov,
                                           core::DesignGoal::MinOverheadBandwidth);
        const auto g2 = core::solve_design(sys, alg, ov,
                                           core::DesignGoal::MaxSlackBandwidth);
        t.row()
            .cell(o, 3)
            .cell(to_string(alg))
            .cell(g1.schedule.period, 3)
            .cell(g1.schedule.overhead_bandwidth(), 4)
            .cell(g2.schedule.slack_bandwidth(), 4)
            .cell(g2.schedule.period, 3);
      } catch (const InfeasibleError&) {
        t.row()
            .cell(o, 3)
            .cell(to_string(alg))
            .cell("infeasible")
            .cell("-")
            .cell("-")
            .cell("-");
      }
    }
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << "\nshape checks: P_max shrinks and overhead bandwidth grows "
               "with O_tot; RM turns infeasible past 0.129, EDF past "
               "0.201.\n";
  return 0;
}
