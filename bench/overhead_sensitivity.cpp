// E9 -- sensitivity of the design space to the mode-switch overhead.
//
// Sweeps O_tot and reports, for EDF and RM on the Table-1 system: the
// largest feasible period (goal G1), the wasted bandwidth O_tot/P at that
// design, and the best redistributable slack bandwidth (goal G2). Past the
// maximum admissible overhead (0.201 EDF / 0.129 RM) the design problem
// becomes infeasible. The whole sweep runs against one BatchEngine per
// scheduler (solve_design's engine overload) -- the per-partition caches
// are built once, not once per O_tot point.
//
// With --gen-trials N the bench adds a generated-system acceptance study on
// the analysis service (svc/analysis_service.hpp): a fleet of N random
// systems (per-trial seeds layout-independent via add_fleet), solved by one
// fleet-wide G1 SolveRequest per (scheduler, O_tot) point of the menu. The
// service's engine cache keys on (system, scheduler, budget), so all nine
// overhead levels of a scheduler reuse each system's per-partition caches
// -- the same reuse the per-trial BatchEngine loop used to hand-roll.
// Shard rows (counts) merge by addition across --shard k/N processes.
//
// Usage: overhead_sensitivity [--csv] [--gen-trials N] [--seed S]
//                             [--shard k/N]
#include <array>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "core/analysis_engine.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "core/study_runner.hpp"
#include "gen/taskset_gen.hpp"
#include "svc/analysis_service.hpp"

using namespace flexrt;

namespace {

constexpr std::array<double, 9> kOverheadMenu = {
    0.0, 0.01, 0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25};

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  core::StudyOptions study;
  study.trials = 0;  // generated part is opt-in (--gen-trials)
  study.base_seed = 0xE9;
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) csv = true;
      core::parse_study_flag(study, argc, argv, i, "--gen-trials");
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const core::ModeTaskSystem sys = core::paper_example();

  if (study.shard.index == 0) {
    std::cout << "E9: design space vs total mode-switch overhead "
              << "(Table-1 system)\n\n";
    Table t({"O_tot", "scheduler", "P_max(G1)", "overhead_bw(G1)",
             "slack_bw(G2)", "P(G2)"});
    for (const hier::Scheduler alg : {hier::Scheduler::EDF,
                                      hier::Scheduler::FP}) {
      // One engine per scheduler serves every overhead level.
      const analysis::BatchEngine engine(sys, alg);
      for (const double o : kOverheadMenu) {
        const core::Overheads ov{o / 3, o / 3, o / 3};
        try {
          const auto g1 = core::solve_design(
              engine, ov, core::DesignGoal::MinOverheadBandwidth);
          const auto g2 = core::solve_design(
              engine, ov, core::DesignGoal::MaxSlackBandwidth);
          t.row()
              .cell(o, 3)
              .cell(to_string(alg))
              .cell(g1.schedule.period, 3)
              .cell(g1.schedule.overhead_bandwidth(), 4)
              .cell(g2.schedule.slack_bandwidth(), 4)
              .cell(g2.schedule.period, 3);
        } catch (const InfeasibleError&) {
          t.row()
              .cell(o, 3)
              .cell(to_string(alg))
              .cell("infeasible")
              .cell("-")
              .cell("-")
              .cell("-");
        }
      }
    }
    csv ? t.print_csv(std::cout) : t.print(std::cout);
    std::cout << "\nshape checks: P_max shrinks and overhead bandwidth grows "
                 "with O_tot; RM turns infeasible past 0.129, EDF past "
                 "0.201.\n";
  }

  if (study.trials > 0) {
    svc::AnalysisService service;
    service.add_fleet(study, [](std::size_t, Rng& rng) {
      return gen::study_system(rng);
    });
    core::SearchOptions opts;
    opts.grid_step = 5e-3;
    opts.p_max = 10.0;
    const auto [begin, end] = core::shard_range(study.trials, study.shard);
    std::cout << "\nE9b: generated systems, acceptance vs O_tot (trials "
              << begin << ".." << end << " of " << study.trials << ", shard "
              << study.shard.index + 1 << "/" << study.shard.count << ")\n\n";
    // feasible[alg][k]: systems whose G1 design survives menu level k.
    std::array<std::array<std::size_t, kOverheadMenu.size()>, 2> feasible{};
    std::size_t packed = 0;
    for (std::size_t i = 0; i < service.size(); ++i) {
      packed += service.has_system(i) ? 1 : 0;
    }
    for (const hier::Scheduler alg : {hier::Scheduler::EDF,
                                      hier::Scheduler::FP}) {
      const std::size_t a = alg == hier::Scheduler::EDF ? 0 : 1;
      for (std::size_t k = 0; k < kOverheadMenu.size(); ++k) {
        const double o = kOverheadMenu[k];
        const std::vector<svc::SolveResult> results = service.solve(
            {alg, {o / 3, o / 3, o / 3},
             core::DesignGoal::MinOverheadBandwidth, opts, {}});
        for (const svc::SolveResult& r : results) {
          feasible[a][k] += r.ok() && r.feasible ? 1 : 0;
        }
      }
    }
    Table t({"O_tot", "trials", "packed", "feasible_EDF", "feasible_RM"});
    for (std::size_t k = 0; k < kOverheadMenu.size(); ++k) {
      t.row()
          .cell(kOverheadMenu[k], 3)
          .cell(service.size())
          .cell(packed)
          .cell(feasible[0][k])
          .cell(feasible[1][k]);
    }
    csv ? t.print_csv(std::cout) : t.print(std::cout);
  }
  return 0;
}
