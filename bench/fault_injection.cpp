// E6 -- fault-injection study (extension experiment).
//
// Sweeps the transient-fault rate and reports, per mode, what reaches the
// bus: FT masks every single fault (zero wrong results, zero silencing),
// FS detects and silences (zero wrong results), NF silently corrupts.
//
// Usage: fault_injection [--csv] [--horizon T]
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "sim/simulator.hpp"

using namespace flexrt;

int main(int argc, char** argv) {
  bool csv = false;
  double horizon = 20000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--horizon") == 0 && i + 1 < argc) {
      horizon = std::stod(argv[++i]);
    }
  }

  const core::ModeTaskSystem sys = core::paper_example();
  const core::Design d =
      core::solve_design(sys, hier::Scheduler::EDF, {0.02, 0.02, 0.02},
                         core::DesignGoal::MaxSlackBandwidth);

  std::cout << "E6: fault outcomes vs fault rate (horizon " << horizon
            << ", Table-1 system, immediate detection)\n\n";
  Table t({"rate", "injected", "masked", "silenced", "corrupting", "harmless",
           "FT_wrong", "FS_wrong", "NF_wrong", "FS_silenced_jobs"});
  for (const double rate : {0.001, 0.005, 0.01, 0.05, 0.1, 0.2}) {
    sim::SimOptions opt;
    opt.horizon = horizon;
    opt.scheduler = hier::Scheduler::EDF;
    opt.faults = {rate, 2.0};
    opt.seed = 424242;
    const sim::SimResult r = sim::simulate(sys, d.schedule, opt);
    std::uint64_t wrong[3] = {0, 0, 0};
    std::uint64_t fs_silenced = 0;
    for (const sim::TaskStats& ts : r.tasks) {
      wrong[static_cast<std::size_t>(ts.mode)] += ts.corrupted_outputs;
      if (ts.mode == rt::Mode::FS) fs_silenced += ts.silenced;
    }
    t.row()
        .cell(rate, 3)
        .cell(r.faults.injected)
        .cell(r.faults.masked)
        .cell(r.faults.silenced)
        .cell(r.faults.corrupting)
        .cell(r.faults.harmless)
        .cell(wrong[0])
        .cell(wrong[1])
        .cell(wrong[2])
        .cell(fs_silenced);
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << "\nshape check: FT_wrong and FS_wrong stay exactly 0 at every "
               "rate; NF_wrong grows with the rate.\n";
  return 0;
}
