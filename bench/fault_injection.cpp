// E6 -- fault-injection study (extension experiment).
//
// Sweeps the transient-fault rate over the Table-1 system twice and prints
// the two views side by side, one row per rate:
//
//  - analysis: svc::FaultSweepRequest on a one-entry fleet -- the per-class
//    verdicts under the fault model's recovery demand (FT masked, FS
//    schedulable including one re-execution per recovery gap, NF timing
//    unaffected) plus the analytic corruption exposure.
//  - simulation: what actually reaches the bus over `--horizon` units of
//    injected faults. FT masks every single fault (zero wrong results, zero
//    silencing), FS detects and silences (zero wrong results), NF silently
//    corrupts.
//
// The cross-check: FT_wrong and FS_wrong stay exactly 0 at every rate the
// analysis declares ft_ok/fs_ok, and the simulated NF corruption count
// tracks horizon * nf_exposure.
//
// Usage: fault_injection [--csv] [--horizon T]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "core/paper_example.hpp"
#include "sim/simulator.hpp"
#include "svc/analysis_service.hpp"

using namespace flexrt;

int main(int argc, char** argv) {
  bool csv = false;
  double horizon = 20000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--horizon") == 0 && i + 1 < argc) {
      horizon = bench::parse_num("--horizon", argv[++i]);
    }
  }

  const std::vector<double> rates = {0.001, 0.005, 0.01, 0.05, 0.1, 0.2};

  // Analytic side: the fault sweep the service runs for fleets, on a fleet
  // of one (the paper's Table-1 system). The simulator's FaultModel floors
  // separation at 2.0, so the sweep assumes the same model.
  svc::AnalysisService service;
  service.add_system(core::paper_example(), "table1");
  svc::FaultSweepRequest req;
  req.rates = rates;
  req.min_separation = 2.0;
  req.overheads = {0.02, 0.02, 0.02};
  req.goal = core::DesignGoal::MaxSlackBandwidth;
  req.with_baselines = false;
  const svc::FaultSweepResult sweep = service.fault_sweep_one(0, req);
  if (!sweep.ok()) {
    std::cerr << "fault sweep failed: " << sweep.error << "\n";
    return 1;
  }
  if (!sweep.feasible) {
    std::cerr << "Table-1 design infeasible: " << sweep.infeasible << "\n";
    return 1;
  }

  std::cout << "E6: analytic fault sweep vs simulated outcomes (horizon "
            << horizon << ", Table-1 system, immediate detection)\n\n";
  Table t({"rate", "ft_ok", "fs_ok", "nf_exposure", "injected", "masked",
           "silenced", "corrupting", "harmless", "FT_wrong", "FS_wrong",
           "NF_wrong", "FS_silenced_jobs"});
  for (std::size_t k = 0; k < rates.size(); ++k) {
    const svc::FaultRatePoint& p = sweep.points[k];
    sim::SimOptions opt;
    opt.horizon = horizon;
    opt.scheduler = hier::Scheduler::EDF;
    opt.faults = {p.rate, req.min_separation};
    opt.seed = 424242;
    const sim::SimResult r =
        sim::simulate(service.system(0), sweep.schedule, opt);
    std::uint64_t wrong[3] = {0, 0, 0};
    std::uint64_t fs_silenced = 0;
    for (const sim::TaskStats& ts : r.tasks) {
      wrong[static_cast<std::size_t>(ts.mode)] += ts.corrupted_outputs;
      if (ts.mode == rt::Mode::FS) fs_silenced += ts.silenced;
    }
    t.row()
        .cell(p.rate, 3)
        .cell(p.ft_ok ? "yes" : "NO")
        .cell(p.fs_ok ? "yes" : "NO")
        .cell(p.nf_exposure, 6)
        .cell(r.faults.injected)
        .cell(r.faults.masked)
        .cell(r.faults.silenced)
        .cell(r.faults.corrupting)
        .cell(r.faults.harmless)
        .cell(wrong[0])
        .cell(wrong[1])
        .cell(wrong[2])
        .cell(fs_silenced);
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << "\nshape check: FT_wrong and FS_wrong stay exactly 0 at every "
               "rate; NF_wrong grows with the rate, tracking horizon * "
               "nf_exposure.\n";
  return 0;
}
