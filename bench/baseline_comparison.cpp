// E7 + E8 -- the flexible scheme vs the rigid alternatives.
//
// For random task systems with a varying share of protected (FT/FS) work,
// reports the acceptance ratio of:
//   flexible   -- this paper's reconfigurable mode-switching platform (EDF)
//   static-FT  -- all four cores permanently in redundant lock-step
//   static-FS  -- two permanent fail-silent couples (cannot host FT tasks)
//   static-NF  -- four permanent independent cores (only NF tasks)
//   prim/backup-- software fault tolerance: backup copies on distinct cores
//
// Expected shape (the paper's motivation): the flexible scheme accepts a
// superset of the static configurations' workloads; primary/backup pays a
// 2x bandwidth tax on protected tasks but scales over 4 cores, so it wins
// only when protected utilization is large while the per-mode channels
// saturate.
//
// Usage: baseline_comparison [--csv] [--trials N]
#include <cstring>
#include <iostream>
#include <string>

#include "bench_args.hpp"
#include "common/error.hpp"
#include "baseline/primary_backup.hpp"
#include "baseline/static_config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/integration.hpp"
#include "gen/taskset_gen.hpp"

using namespace flexrt;

namespace {

bool flexible_accepts(const rt::TaskSet& ts, double o_tot) {
  const auto sys = gen::build_system(ts);
  if (!sys) return false;
  core::SearchOptions opts;
  opts.grid_step = 5e-3;
  opts.p_max = 10.0;
  try {
    core::max_feasible_period(*sys, hier::Scheduler::EDF, o_tot, opts);
    return true;
  } catch (const InfeasibleError&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  int trials = 300;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = static_cast<int>(bench::parse_count("--trials", argv[++i]));
    }
  }
  const double o_tot = 0.05;
  const hier::Scheduler alg = hier::Scheduler::EDF;

  std::cout << "E7/E8: acceptance ratio by platform strategy (" << trials
            << " systems per row, EDF, O_tot = " << o_tot
            << " for the flexible scheme)\n\n";
  Table t({"protected_frac", "U_total", "flexible", "static_FT", "static_FS",
           "static_NF", "prim_backup"});
  for (const double prot : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const double u : {0.6, 1.0, 1.4, 1.8, 2.2}) {
      Rng rng(0xBA5E ^ static_cast<std::uint64_t>(prot * 100 + u * 10));
      int n_flex = 0, n_ft = 0, n_fs = 0, n_nf = 0, n_pb = 0;
      for (int k = 0; k < trials; ++k) {
        gen::GenParams gp;
        gp.num_tasks = 10;
        gp.total_utilization = u;
        gp.ft_fraction = prot / 2;
        gp.fs_fraction = prot / 2;
        const rt::TaskSet ts = gen::generate_task_set(gp, rng);
        n_flex += flexible_accepts(ts, o_tot);
        n_ft += baseline::try_static(ts, baseline::StaticConfig::AllFT, alg)
                    .schedulable;
        n_fs += baseline::try_static(ts, baseline::StaticConfig::AllFS, alg)
                    .schedulable;
        n_nf += baseline::try_static(ts, baseline::StaticConfig::AllNF, alg)
                    .schedulable;
        n_pb += baseline::try_primary_backup(ts, alg);
      }
      const double denom = trials;
      t.row()
          .cell(prot, 2)
          .cell(u, 1)
          .cell(n_flex / denom, 3)
          .cell(n_ft / denom, 3)
          .cell(n_fs / denom, 3)
          .cell(n_nf / denom, 3)
          .cell(n_pb / denom, 3);
    }
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << "\nshape checks: static_NF only competes at protected_frac 0; "
               "static_FT caps out once U_total approaches 1; the flexible "
               "scheme dominates every static row.\n";
  return 0;
}
