// Fault storm -- what each operating mode buys you.
//
// Runs the same workload three times: once with every task declared FT,
// once all-FS, once all-NF (adjusting the slot design each time), under an
// extreme transient-fault rate, and prints what reached the bus. This is
// the paper's protection hierarchy made visible:
//   FT : every fault masked, all results correct, no misses
//   FS : faults detected, affected jobs silenced (no wrong output),
//        some deadlines lost to silencing
//   NF : faults pass straight through as silent data corruption
#include <iostream>

#include "common/error.hpp"
#include "core/design.hpp"
#include "gen/taskset_gen.hpp"
#include "sim/simulator.hpp"

using namespace flexrt;

namespace {

core::ModeTaskSystem uniform_system(rt::Mode mode) {
  rt::TaskSet ts;
  for (int i = 0; i < 4; ++i) {
    ts.add(rt::make_task("w" + std::to_string(i), 0.5, 8.0 + 4.0 * i, mode));
  }
  const auto sys = gen::build_system(ts);
  if (!sys) throw Error("workload does not fit");
  return *sys;
}

}  // namespace

int main() {
  std::cout << "identical workload, three protection levels, fault rate "
               "0.1/unit over 20000 units\n\n";
  for (const rt::Mode mode : {rt::Mode::FT, rt::Mode::FS, rt::Mode::NF}) {
    const core::ModeTaskSystem sys = uniform_system(mode);
    const core::Design d =
        core::solve_design(sys, hier::Scheduler::EDF, {0.02, 0.02, 0.02},
                           core::DesignGoal::MaxSlackBandwidth);
    sim::SimOptions opt;
    opt.horizon = 20000.0;
    opt.faults = {0.1, 1.0};
    opt.seed = 77;
    const sim::SimResult r = sim::simulate(sys, d.schedule, opt);

    std::uint64_t completions = 0, silenced = 0, corrupted = 0, misses = 0;
    for (const sim::TaskStats& t : r.tasks) {
      completions += t.completions;
      silenced += t.silenced;
      corrupted += t.corrupted_outputs;
      misses += t.deadline_misses;
    }
    std::cout << "all-" << rt::to_string(mode) << "  (P=" << d.schedule.period
              << "): " << r.faults.injected << " faults -> " << completions
              << " results, " << corrupted << " WRONG, " << silenced
              << " silenced, " << misses << " deadline misses\n";
  }
  std::cout << "\nthe trade-off: FT buys correctness with 1/4 of the "
               "platform's throughput; NF delivers full throughput but "
               "corrupted results.\n";
  return 0;
}
