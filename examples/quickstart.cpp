// Quickstart: the full flexrt pipeline in ~60 lines.
//
//  1. Describe the application: sporadic tasks, each with the operating
//     mode it requires (FT / FS / NF).
//  2. Partition each mode's tasks onto the platform's channels.
//  3. Solve for the mode-switching frame (period + slot lengths).
//  4. Simulate the platform executing the result and check zero misses.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/design.hpp"
#include "gen/taskset_gen.hpp"
#include "sim/simulator.hpp"

using namespace flexrt;

int main() {
  // 1. The application. A control law that must survive faults, two
  //    monitoring functions that must at least fail silently, and three
  //    best-effort functions.
  rt::TaskSet app;
  app.add(rt::make_task("control", 1.0, 10.0, rt::Mode::FT));
  app.add(rt::make_task("watchdog", 0.5, 8.0, rt::Mode::FS));
  app.add(rt::make_task("monitor", 1.0, 20.0, rt::Mode::FS));
  app.add(rt::make_task("logger", 2.0, 40.0, rt::Mode::NF));
  app.add(rt::make_task("ui", 1.0, 12.0, rt::Mode::NF));
  app.add(rt::make_task("stats", 1.0, 30.0, rt::Mode::NF));

  // 2. Partition onto channels (worst-fit keeps the channels balanced).
  const auto sys = gen::build_system(app);
  if (!sys) {
    std::cerr << "application does not fit the platform\n";
    return 1;
  }

  // 3. Solve the design problem: here we want run-time flexibility, so we
  //    maximize the redistributable slack (the paper's goal G2).
  const core::Overheads overheads{0.02, 0.02, 0.02};  // switch-out costs
  const core::Design design =
      core::solve_design(*sys, hier::Scheduler::EDF, overheads,
                         core::DesignGoal::MaxSlackBandwidth);
  std::cout << "solved: " << design.schedule << "\n";
  std::cout << "  FT gets " << design.schedule.allocated_bandwidth(rt::Mode::FT)
            << " of the timeline, FS "
            << design.schedule.allocated_bandwidth(rt::Mode::FS) << ", NF "
            << design.schedule.allocated_bandwidth(rt::Mode::NF)
            << "; slack " << design.schedule.slack_bandwidth() << "\n";

  // 4. Simulate 10,000 time units, with transient faults striking at rate
  //    0.01 per time unit.
  sim::SimOptions opt;
  opt.horizon = 10000.0;
  opt.faults = {0.01, 2.0};
  const sim::SimResult result = sim::simulate(*sys, design.schedule, opt);

  std::cout << "simulated " << opt.horizon << " time units: "
            << result.total_misses() << " deadline misses, "
            << result.faults.injected << " faults injected ("
            << result.faults.masked << " masked, " << result.faults.silenced
            << " silenced, " << result.faults.corrupting
            << " corrupting)\n";
  for (const sim::TaskStats& t : result.tasks) {
    std::cout << "  " << t.name << " [" << rt::to_string(t.mode) << "] "
              << t.completions << " jobs, worst response "
              << to_units(t.max_response) << ", misses " << t.deadline_misses
              << ", wrong results " << t.corrupted_outputs << "\n";
  }
  return result.total_misses() == 0 ? 0 : 1;
}
