// Engine control unit -- the scenario from the paper's introduction: "an
// application which controls a car engine and shows its activity on a
// screen. While we could accept the visualization to be degraded, the
// control algorithm must produce the correct result despite the presence of
// faults."
//
// We model a realistic ECU mix: fuel injection and ignition control in FT
// mode, knock detection and lambda regulation fail-silent, dashboard/
// diagnostics/logging best-effort. The example designs the frame both ways
// (G1 and G2), compares the outcomes, and stress-tests the G2 design under
// an aggressive fault rate, verifying the safety contract per mode.
#include <iostream>

#include "core/design.hpp"
#include "sim/simulator.hpp"

using namespace flexrt;

namespace {

core::ModeTaskSystem ecu() {
  using rt::make_task;
  using rt::Mode;
  // FT channel: the control laws (one lock-step channel of all 4 cores).
  rt::TaskSet ft;
  ft.add(make_task("fuel_injection", 0.4, 5.0, Mode::FT));
  ft.add(make_task("ignition", 0.3, 5.0, Mode::FT));
  ft.add(make_task("throttle", 0.5, 10.0, Mode::FT));
  // FS couples: sensor validation -- better silent than wrong.
  rt::TaskSet fs0, fs1;
  fs0.add(make_task("knock_detect", 0.6, 6.0, Mode::FS));
  fs0.add(make_task("lambda_reg", 0.8, 12.0, Mode::FS));
  fs1.add(make_task("misfire_watch", 0.5, 8.0, Mode::FS));
  // NF processors: the cabin-facing load.
  rt::TaskSet nf0, nf1, nf2, nf3;
  nf0.add(make_task("dashboard", 1.0, 16.0, Mode::NF));
  nf1.add(make_task("diagnostics", 2.0, 40.0, Mode::NF));
  nf1.add(make_task("obd_ii", 0.5, 20.0, Mode::NF));
  nf2.add(make_task("datalogger", 1.5, 25.0, Mode::NF));
  nf3.add(make_task("telemetry", 1.0, 30.0, Mode::NF));
  return core::ModeTaskSystem({ft}, {fs0, fs1}, {nf0, nf1, nf2, nf3});
}

}  // namespace

int main() {
  const core::ModeTaskSystem sys = ecu();
  const core::Overheads ov{0.03, 0.02, 0.02};

  std::cout << "ECU workload: FT util "
            << sys.required_bandwidth(rt::Mode::FT) << ", FS max-channel util "
            << sys.required_bandwidth(rt::Mode::FS) << ", NF max-channel util "
            << sys.required_bandwidth(rt::Mode::NF) << "\n\n";

  for (const auto goal : {core::DesignGoal::MinOverheadBandwidth,
                          core::DesignGoal::MaxSlackBandwidth}) {
    const core::Design d =
        core::solve_design(sys, hier::Scheduler::EDF, ov, goal);
    std::cout << to_string(goal) << ":\n  " << d.schedule << "\n"
              << "  overhead bandwidth " << d.schedule.overhead_bandwidth()
              << ", slack bandwidth " << d.schedule.slack_bandwidth()
              << "\n";
  }

  // Stress the flexible design with one transient fault every ~20 time
  // units on average -- far beyond realistic soft-error rates.
  const core::Design d = core::solve_design(
      sys, hier::Scheduler::EDF, ov, core::DesignGoal::MaxSlackBandwidth);
  sim::SimOptions opt;
  opt.horizon = 50000.0;
  opt.faults = {0.05, 2.0};
  opt.seed = 2026;
  const sim::SimResult r = sim::simulate(sys, d.schedule, opt);

  std::cout << "\nfault storm over " << opt.horizon << " time units: "
            << r.faults.injected << " faults\n";
  bool safety_holds = true;
  for (const sim::TaskStats& t : r.tasks) {
    if (t.mode != rt::Mode::NF && t.corrupted_outputs > 0) {
      safety_holds = false;
    }
    std::cout << "  " << t.name << " [" << rt::to_string(t.mode)
              << "]: " << t.completions << " ok, " << t.silenced
              << " silenced, " << t.corrupted_outputs << " corrupted, "
              << t.deadline_misses << " misses\n";
  }
  std::cout << (safety_holds
                    ? "\nsafety contract held: no FT/FS task ever emitted a "
                      "wrong result\n"
                    : "\nSAFETY VIOLATION\n");
  return safety_holds ? 0 : 1;
}
