// Dynamic reconfiguration -- why the paper's second design goal exists.
//
// A G2 (max-slack) design keeps every slot at its analytical minimum and
// leaves the rest of the frame unallocated. When a new task arrives at run
// time, the designer can grow the affected mode's quantum *without touching
// the period or the other modes*, as long as the growth fits in the slack.
// This example admits tasks one by one into the Table-1 system until the
// slack is exhausted, re-verifying schedulability at each step, and shows
// that the G1 (min-overhead) design rejects the very first arrival.
#include <iostream>

#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "hier/min_quantum.hpp"
#include "sim/simulator.hpp"

using namespace flexrt;

namespace {

// Tries to admit `task` into NF channel 0 of `sys` under `schedule`:
// recomputes the NF minQ and grows the NF quantum if the slack allows.
bool admit(core::ModeTaskSystem& sys, core::ModeSchedule& schedule,
           const rt::Task& task) {
  core::ModeTaskSystem candidate = sys;
  std::vector<rt::TaskSet> nf(candidate.partitions(rt::Mode::NF).begin(),
                              candidate.partitions(rt::Mode::NF).end());
  nf[0].add(task);
  candidate.set_partitions(rt::Mode::NF, std::move(nf));

  const double needed = core::mode_min_quantum(
      candidate, rt::Mode::NF, hier::Scheduler::EDF, schedule.period);
  const double growth = needed - schedule.nf.usable;
  if (growth > schedule.slack() + 1e-12) return false;  // not enough slack

  core::ModeSchedule grown = schedule;
  grown.nf.usable = needed;
  if (!core::verify_schedule(candidate, grown, hier::Scheduler::EDF)) {
    return false;
  }
  sys = std::move(candidate);
  schedule = grown;
  return true;
}

}  // namespace

int main() {
  const core::Overheads ov{0.05 / 3, 0.05 / 3, 0.05 / 3};

  // The rigid design: quanta maxed out, nothing can grow.
  core::ModeTaskSystem rigid_sys = core::paper_example();
  core::Design g1 =
      core::solve_design(rigid_sys, hier::Scheduler::EDF, ov,
                         core::DesignGoal::MinOverheadBandwidth);
  // The flexible design: 12.1% of the bandwidth is redistributable.
  core::ModeTaskSystem flex_sys = core::paper_example();
  core::Design g2 = core::solve_design(flex_sys, hier::Scheduler::EDF, ov,
                                       core::DesignGoal::MaxSlackBandwidth);

  std::cout << "G1 design: " << g1.schedule << "\n";
  std::cout << "G2 design: " << g2.schedule << "\n\n";

  core::ModeSchedule rigid_sched = g1.schedule;
  core::ModeSchedule flex_sched = g2.schedule;

  int admitted_rigid = 0, admitted_flex = 0;
  for (int i = 0; i < 8; ++i) {
    const rt::Task newcomer = rt::make_task(
        "dyn" + std::to_string(i), 0.4, 12.0, rt::Mode::NF);
    if (admit(rigid_sys, rigid_sched, newcomer)) admitted_rigid++;
    const bool ok = admit(flex_sys, flex_sched, newcomer);
    if (ok) admitted_flex++;
    std::cout << "arrival " << i << " (C=0.4, T=12, NF): rigid="
              << (admitted_rigid > i ? "admitted" : "rejected")
              << "  flexible=" << (ok ? "admitted" : "rejected")
              << "  remaining slack " << flex_sched.slack() << "\n";
  }
  std::cout << "\nG1 admitted " << admitted_rigid << "/8, G2 admitted "
            << admitted_flex << "/8 dynamic arrivals\n";

  // The grown G2 schedule still runs miss-free.
  sim::SimOptions opt;
  opt.horizon = 5000.0;
  const sim::SimResult r = sim::simulate(flex_sys, flex_sched, opt);
  std::cout << "simulation of the final flexible configuration: "
            << r.total_misses() << " deadline misses over " << opt.horizon
            << " time units\n";
  return (admitted_flex > admitted_rigid && r.total_misses() == 0) ? 0 : 1;
}
