# Empty dependencies file for flexrt_tests.
# This may be replaced when dependencies are built.
