
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_context_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/analysis_context_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/analysis_context_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/checker_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/checker_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/checker_test.cpp.o.d"
  "/root/repo/tests/demand_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/demand_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/demand_test.cpp.o.d"
  "/root/repo/tests/design_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/design_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/design_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/end_to_end_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/end_to_end_test.cpp.o.d"
  "/root/repo/tests/fault_model_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/fault_model_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/fault_model_test.cpp.o.d"
  "/root/repo/tests/frame_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/frame_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/frame_test.cpp.o.d"
  "/root/repo/tests/gen_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/gen_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/gen_test.cpp.o.d"
  "/root/repo/tests/general_frame_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/general_frame_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/general_frame_test.cpp.o.d"
  "/root/repo/tests/hier_sched_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/hier_sched_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/hier_sched_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/math_util_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/math_util_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/math_util_test.cpp.o.d"
  "/root/repo/tests/min_quantum_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/min_quantum_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/min_quantum_test.cpp.o.d"
  "/root/repo/tests/mode_system_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/mode_system_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/mode_system_test.cpp.o.d"
  "/root/repo/tests/multi_slot_supply_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/multi_slot_supply_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/multi_slot_supply_test.cpp.o.d"
  "/root/repo/tests/paper_values_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/paper_values_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/paper_values_test.cpp.o.d"
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/response_time_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/response_time_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/response_time_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/rta_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/rta_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/rta_test.cpp.o.d"
  "/root/repo/tests/sched_points_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/sched_points_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/sched_points_test.cpp.o.d"
  "/root/repo/tests/sensitivity_parity_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/sensitivity_parity_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/sensitivity_parity_test.cpp.o.d"
  "/root/repo/tests/sensitivity_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/sensitivity_test.cpp.o.d"
  "/root/repo/tests/sim_analysis_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/sim_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/sim_analysis_test.cpp.o.d"
  "/root/repo/tests/sim_fault_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/sim_fault_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/sim_fault_test.cpp.o.d"
  "/root/repo/tests/simulator_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/supply_inverse_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/supply_inverse_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/supply_inverse_test.cpp.o.d"
  "/root/repo/tests/supply_recorder_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/supply_recorder_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/supply_recorder_test.cpp.o.d"
  "/root/repo/tests/supply_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/supply_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/supply_test.cpp.o.d"
  "/root/repo/tests/table_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/table_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/table_test.cpp.o.d"
  "/root/repo/tests/task_io_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/task_io_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/task_io_test.cpp.o.d"
  "/root/repo/tests/task_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/task_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/task_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/flexrt_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/flexrt_tests.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/flexrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
