# Empty dependencies file for engine_control.
# This may be replaced when dependencies are built.
