file(REMOVE_RECURSE
  "CMakeFiles/engine_control.dir/engine_control.cpp.o"
  "CMakeFiles/engine_control.dir/engine_control.cpp.o.d"
  "engine_control"
  "engine_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
