file(REMOVE_RECURSE
  "CMakeFiles/check_paper_numbers.dir/check_paper_numbers.cpp.o"
  "CMakeFiles/check_paper_numbers.dir/check_paper_numbers.cpp.o.d"
  "check_paper_numbers"
  "check_paper_numbers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_paper_numbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
