# Empty dependencies file for check_paper_numbers.
# This may be replaced when dependencies are built.
