file(REMOVE_RECURSE
  "CMakeFiles/flexrt_design.dir/flexrt_design.cpp.o"
  "CMakeFiles/flexrt_design.dir/flexrt_design.cpp.o.d"
  "flexrt_design"
  "flexrt_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrt_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
