# Empty dependencies file for flexrt_design.
# This may be replaced when dependencies are built.
