
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/primary_backup.cpp" "CMakeFiles/flexrt.dir/src/baseline/primary_backup.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/baseline/primary_backup.cpp.o.d"
  "/root/repo/src/baseline/static_config.cpp" "CMakeFiles/flexrt.dir/src/baseline/static_config.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/baseline/static_config.cpp.o.d"
  "/root/repo/src/common/math_util.cpp" "CMakeFiles/flexrt.dir/src/common/math_util.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/common/math_util.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "CMakeFiles/flexrt.dir/src/common/parallel.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/common/parallel.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/flexrt.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/flexrt.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/common/table.cpp.o.d"
  "/root/repo/src/core/analysis_engine.cpp" "CMakeFiles/flexrt.dir/src/core/analysis_engine.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/core/analysis_engine.cpp.o.d"
  "/root/repo/src/core/design.cpp" "CMakeFiles/flexrt.dir/src/core/design.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/core/design.cpp.o.d"
  "/root/repo/src/core/general_frame.cpp" "CMakeFiles/flexrt.dir/src/core/general_frame.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/core/general_frame.cpp.o.d"
  "/root/repo/src/core/integration.cpp" "CMakeFiles/flexrt.dir/src/core/integration.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/core/integration.cpp.o.d"
  "/root/repo/src/core/mode_system.cpp" "CMakeFiles/flexrt.dir/src/core/mode_system.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/core/mode_system.cpp.o.d"
  "/root/repo/src/core/paper_example.cpp" "CMakeFiles/flexrt.dir/src/core/paper_example.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/core/paper_example.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "CMakeFiles/flexrt.dir/src/core/schedule.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/core/schedule.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "CMakeFiles/flexrt.dir/src/core/sensitivity.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/core/sensitivity.cpp.o.d"
  "/root/repo/src/fault/fault_model.cpp" "CMakeFiles/flexrt.dir/src/fault/fault_model.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/fault/fault_model.cpp.o.d"
  "/root/repo/src/gen/taskset_gen.cpp" "CMakeFiles/flexrt.dir/src/gen/taskset_gen.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/gen/taskset_gen.cpp.o.d"
  "/root/repo/src/hier/min_quantum.cpp" "CMakeFiles/flexrt.dir/src/hier/min_quantum.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/hier/min_quantum.cpp.o.d"
  "/root/repo/src/hier/multi_slot_supply.cpp" "CMakeFiles/flexrt.dir/src/hier/multi_slot_supply.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/hier/multi_slot_supply.cpp.o.d"
  "/root/repo/src/hier/response_time.cpp" "CMakeFiles/flexrt.dir/src/hier/response_time.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/hier/response_time.cpp.o.d"
  "/root/repo/src/hier/sched_test.cpp" "CMakeFiles/flexrt.dir/src/hier/sched_test.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/hier/sched_test.cpp.o.d"
  "/root/repo/src/hier/supply.cpp" "CMakeFiles/flexrt.dir/src/hier/supply.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/hier/supply.cpp.o.d"
  "/root/repo/src/io/task_io.cpp" "CMakeFiles/flexrt.dir/src/io/task_io.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/io/task_io.cpp.o.d"
  "/root/repo/src/part/bin_packing.cpp" "CMakeFiles/flexrt.dir/src/part/bin_packing.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/part/bin_packing.cpp.o.d"
  "/root/repo/src/platform/checker.cpp" "CMakeFiles/flexrt.dir/src/platform/checker.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/platform/checker.cpp.o.d"
  "/root/repo/src/rt/analysis_context.cpp" "CMakeFiles/flexrt.dir/src/rt/analysis_context.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/analysis_context.cpp.o.d"
  "/root/repo/src/rt/demand.cpp" "CMakeFiles/flexrt.dir/src/rt/demand.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/demand.cpp.o.d"
  "/root/repo/src/rt/edf_test.cpp" "CMakeFiles/flexrt.dir/src/rt/edf_test.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/edf_test.cpp.o.d"
  "/root/repo/src/rt/priority.cpp" "CMakeFiles/flexrt.dir/src/rt/priority.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/priority.cpp.o.d"
  "/root/repo/src/rt/rta.cpp" "CMakeFiles/flexrt.dir/src/rt/rta.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/rta.cpp.o.d"
  "/root/repo/src/rt/sched_points.cpp" "CMakeFiles/flexrt.dir/src/rt/sched_points.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/sched_points.cpp.o.d"
  "/root/repo/src/rt/task.cpp" "CMakeFiles/flexrt.dir/src/rt/task.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/task.cpp.o.d"
  "/root/repo/src/rt/task_set.cpp" "CMakeFiles/flexrt.dir/src/rt/task_set.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/task_set.cpp.o.d"
  "/root/repo/src/rt/util_bounds.cpp" "CMakeFiles/flexrt.dir/src/rt/util_bounds.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/rt/util_bounds.cpp.o.d"
  "/root/repo/src/sim/frame.cpp" "CMakeFiles/flexrt.dir/src/sim/frame.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/sim/frame.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "CMakeFiles/flexrt.dir/src/sim/metrics.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/flexrt.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/supply_recorder.cpp" "CMakeFiles/flexrt.dir/src/sim/supply_recorder.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/sim/supply_recorder.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "CMakeFiles/flexrt.dir/src/sim/trace.cpp.o" "gcc" "CMakeFiles/flexrt.dir/src/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
