# Empty dependencies file for flexrt.
# This may be replaced when dependencies are built.
