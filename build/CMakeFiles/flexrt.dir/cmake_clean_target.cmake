file(REMOVE_RECURSE
  "libflexrt.a"
)
