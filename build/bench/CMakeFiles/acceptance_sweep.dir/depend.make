# Empty dependencies file for acceptance_sweep.
# This may be replaced when dependencies are built.
