file(REMOVE_RECURSE
  "CMakeFiles/acceptance_sweep.dir/acceptance_sweep.cpp.o"
  "CMakeFiles/acceptance_sweep.dir/acceptance_sweep.cpp.o.d"
  "acceptance_sweep"
  "acceptance_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acceptance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
