# Empty dependencies file for overhead_sensitivity.
# This may be replaced when dependencies are built.
