file(REMOVE_RECURSE
  "CMakeFiles/overhead_sensitivity.dir/overhead_sensitivity.cpp.o"
  "CMakeFiles/overhead_sensitivity.dir/overhead_sensitivity.cpp.o.d"
  "overhead_sensitivity"
  "overhead_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
