file(REMOVE_RECURSE
  "CMakeFiles/fig4_feasible_periods.dir/fig4_feasible_periods.cpp.o"
  "CMakeFiles/fig4_feasible_periods.dir/fig4_feasible_periods.cpp.o.d"
  "fig4_feasible_periods"
  "fig4_feasible_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_feasible_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
