# Empty dependencies file for fig4_feasible_periods.
# This may be replaced when dependencies are built.
