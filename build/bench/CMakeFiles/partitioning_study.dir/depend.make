# Empty dependencies file for partitioning_study.
# This may be replaced when dependencies are built.
