file(REMOVE_RECURSE
  "CMakeFiles/partitioning_study.dir/partitioning_study.cpp.o"
  "CMakeFiles/partitioning_study.dir/partitioning_study.cpp.o.d"
  "partitioning_study"
  "partitioning_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioning_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
