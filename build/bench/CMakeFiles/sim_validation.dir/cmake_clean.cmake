file(REMOVE_RECURSE
  "CMakeFiles/sim_validation.dir/sim_validation.cpp.o"
  "CMakeFiles/sim_validation.dir/sim_validation.cpp.o.d"
  "sim_validation"
  "sim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
