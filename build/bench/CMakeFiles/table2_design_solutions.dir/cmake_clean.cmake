file(REMOVE_RECURSE
  "CMakeFiles/table2_design_solutions.dir/table2_design_solutions.cpp.o"
  "CMakeFiles/table2_design_solutions.dir/table2_design_solutions.cpp.o.d"
  "table2_design_solutions"
  "table2_design_solutions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_design_solutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
