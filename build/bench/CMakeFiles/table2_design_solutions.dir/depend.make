# Empty dependencies file for table2_design_solutions.
# This may be replaced when dependencies are built.
