file(REMOVE_RECURSE
  "CMakeFiles/multi_slot_ablation.dir/multi_slot_ablation.cpp.o"
  "CMakeFiles/multi_slot_ablation.dir/multi_slot_ablation.cpp.o.d"
  "multi_slot_ablation"
  "multi_slot_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_slot_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
