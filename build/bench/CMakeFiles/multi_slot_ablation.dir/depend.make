# Empty dependencies file for multi_slot_ablation.
# This may be replaced when dependencies are built.
