#include "io/task_io.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace flexrt::io {
namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

std::optional<rt::Mode> parse_mode(const std::string& token) {
  const std::string u = upper(token);
  if (u == "FT") return rt::Mode::FT;
  if (u == "FS") return rt::Mode::FS;
  if (u == "NF") return rt::Mode::NF;
  return std::nullopt;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw ModelError("task file line " + std::to_string(line) + ": " + what);
}

struct ParsedLine {
  rt::Task task;
  std::optional<std::size_t> channel;
};

/// Parses `token` as a double; reports the offending token on failure.
double parse_number(const std::string& token, const char* what, int line_no) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    if (consumed == token.size()) return v;
  } catch (const std::exception&) {  // invalid_argument / out_of_range
  }
  fail(line_no, std::string("bad ") + what + " '" + token + "'");
}

std::optional<ParsedLine> parse_line(const std::string& raw, int line_no) {
  // Tolerate CRLF files and stray trailing whitespace: everything after a
  // '#' is comment, and '\r' (like '\t') is classic-locale whitespace, so
  // the extraction below treats it as just another token separator.
  const std::string line = raw.substr(0, raw.find('#'));
  std::istringstream in(line);
  std::vector<std::string> tokens;
  for (std::string tok; in >> tok;) tokens.push_back(std::move(tok));
  if (tokens.empty()) return std::nullopt;  // blank / comment-only
  if (tokens.size() < 4) {
    std::string got = tokens[0];
    for (std::size_t k = 1; k < tokens.size(); ++k) got += ' ' + tokens[k];
    fail(line_no,
         "expected 'name C T [D] mode [channel]', got '" + got + "'");
  }

  const std::string& name = tokens[0];
  const double c = parse_number(tokens[1], "WCET", line_no);
  const double t = parse_number(tokens[2], "period", line_no);

  // tokens[3] is either D (a number) or the mode.
  std::size_t next = 3;
  double d = t;
  std::optional<rt::Mode> mode = parse_mode(tokens[next]);
  if (!mode) {
    try {
      std::size_t consumed = 0;
      d = std::stod(tokens[next], &consumed);
      if (consumed != tokens[next].size()) {
        fail(line_no, "bad deadline '" + tokens[next] + "'");
      }
    } catch (const std::invalid_argument&) {
      fail(line_no,
           "expected deadline or mode (FT/FS/NF), got '" + tokens[next] + "'");
    }
    ++next;
    if (next >= tokens.size()) fail(line_no, "missing mode (FT/FS/NF)");
    mode = parse_mode(tokens[next]);
    if (!mode) fail(line_no, "unknown mode '" + tokens[next] + "'");
  }
  ++next;

  ParsedLine out;
  try {
    out.task = rt::make_task(name, c, t, d, *mode);
  } catch (const ModelError& e) {
    fail(line_no, e.what());
  }
  if (next < tokens.size()) {
    long long channel = -1;
    try {
      std::size_t consumed = 0;
      channel = std::stoll(tokens[next], &consumed, 10);
      if (consumed != tokens[next].size()) throw std::invalid_argument("");
    } catch (const std::exception&) {
      fail(line_no, "bad channel '" + tokens[next] + "'");
    }
    if (channel < 0 ||
        static_cast<std::size_t>(channel) >= core::num_channels(*mode)) {
      fail(line_no, "channel " + std::to_string(channel) +
                        " out of range for mode " + rt::to_string(*mode));
    }
    out.channel = static_cast<std::size_t>(channel);
    ++next;
  }
  if (next < tokens.size()) {
    fail(line_no, "trailing token '" + tokens[next] + "'");
  }
  return out;
}

std::vector<ParsedLine> parse_lines(std::istream& in) {
  std::vector<ParsedLine> out;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (auto parsed = parse_line(raw, line_no)) out.push_back(std::move(*parsed));
  }
  return out;
}

}  // namespace

rt::TaskSet parse_task_set(std::istream& in) {
  rt::TaskSet ts;
  for (ParsedLine& p : parse_lines(in)) ts.add(std::move(p.task));
  return ts;
}

rt::TaskSet parse_task_set_string(const std::string& text) {
  std::istringstream in(text);
  return parse_task_set(in);
}

ParsedSystem parse_mode_task_system(std::istream& in,
                                    const part::PackOptions& pack) {
  const std::vector<ParsedLine> lines = parse_lines(in);
  ParsedSystem out;

  // Pinned tasks go straight to their channel; the rest are packed around
  // them (channel loads seeded with the pinned utilizations would be
  // better, but packing the leftovers into the least-loaded bins including
  // the pinned load is what worst-fit below achieves via bin_capacity).
  std::array<std::vector<rt::TaskSet>, 3> parts;
  for (const rt::Mode mode : core::kAllModes) {
    parts[static_cast<std::size_t>(mode)].resize(core::num_channels(mode));
  }
  rt::TaskSet unpinned;
  for (const ParsedLine& p : lines) {
    if (p.channel) {
      out.had_explicit_channels = true;
      parts[static_cast<std::size_t>(p.task.mode)][*p.channel].add(p.task);
    } else {
      unpinned.add(p.task);
    }
  }
  for (const rt::Mode mode : core::kAllModes) {
    auto& mode_parts = parts[static_cast<std::size_t>(mode)];
    const rt::TaskSet todo = unpinned.by_mode(mode);
    if (todo.empty()) continue;
    // Pack unpinned tasks into bins pre-loaded with the pinned tasks.
    std::vector<double> preload(mode_parts.size());
    for (std::size_t b = 0; b < mode_parts.size(); ++b) {
      preload[b] = mode_parts[b].utilization();
    }
    // Simple worst-fit respecting the preload.
    std::vector<rt::Task> tasks(todo.begin(), todo.end());
    if (pack.sort_decreasing) {
      std::stable_sort(tasks.begin(), tasks.end(),
                       [](const rt::Task& a, const rt::Task& b) {
                         return a.utilization() > b.utilization();
                       });
    }
    for (rt::Task& task : tasks) {
      std::size_t best = mode_parts.size();
      double best_load = 2.0;
      for (std::size_t b = 0; b < mode_parts.size(); ++b) {
        const double load = preload[b];
        if (load + task.utilization() <= pack.bin_capacity + 1e-12 &&
            load < best_load) {
          best = b;
          best_load = load;
        }
      }
      FLEXRT_REQUIRE(best < mode_parts.size(),
                     "task " + task.name + " does not fit any channel of " +
                         rt::to_string(mode));
      preload[best] += task.utilization();
      mode_parts[best].add(std::move(task));
    }
  }
  out.system = core::ModeTaskSystem(
      std::move(parts[0]), std::move(parts[1]), std::move(parts[2]));
  return out;
}

ParsedSystem parse_mode_task_system_string(const std::string& text,
                                           const part::PackOptions& pack) {
  std::istringstream in(text);
  return parse_mode_task_system(in, pack);
}

void write_task_set(std::ostream& os, const rt::TaskSet& ts) {
  for (const rt::Task& t : ts) {
    os << t.name << ' ' << t.wcet << ' ' << t.period;
    if (t.deadline != t.period) os << ' ' << t.deadline;
    os << ' ' << rt::to_string(t.mode) << '\n';
  }
}

}  // namespace flexrt::io
