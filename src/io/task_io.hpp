#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/mode_system.hpp"
#include "part/bin_packing.hpp"
#include "rt/task_set.hpp"

namespace flexrt::io {

/// Plain-text task-set format, one task per line:
///
///   name  C  T  [D]  mode  [channel]
///
/// where mode is FT, FS or NF (case-insensitive), D defaults to T, and
/// channel optionally pins the task to a channel of its mode (0-based;
/// 0 for FT, 0-1 for FS, 0-3 for NF). '#' starts a comment; blank lines are
/// skipped. Example:
///
///   # the paper's FS subset, manually partitioned
///   tau6  1 10  FS 0
///   tau9  1  4  FS 1
///
/// This is the input format of the flexrt_design command-line tool.

/// Parses a task set; throws ModelError naming the line number AND the
/// offending token on bad input. CRLF line endings and trailing whitespace
/// are tolerated (files edited on Windows parse unchanged).
rt::TaskSet parse_task_set(std::istream& in);
rt::TaskSet parse_task_set_string(const std::string& text);

/// Per-task channel pins harvested by parse_mode_task_system.
struct ParsedSystem {
  core::ModeTaskSystem system;
  bool had_explicit_channels = false;
};

/// Parses tasks AND builds the per-mode channel partition: tasks with an
/// explicit channel go there; the rest are packed with `pack`. Throws when
/// an explicit channel index is out of range for the mode or when the
/// packing of unpinned tasks fails.
ParsedSystem parse_mode_task_system(std::istream& in,
                                    const part::PackOptions& pack = {});
ParsedSystem parse_mode_task_system_string(const std::string& text,
                                           const part::PackOptions& pack = {});

/// Renders a task set back into the file format (stable round-trip).
void write_task_set(std::ostream& os, const rt::TaskSet& ts);

}  // namespace flexrt::io
