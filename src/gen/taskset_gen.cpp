#include "gen/taskset_gen.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "rt/priority.hpp"

namespace flexrt::gen {

std::vector<double> uunifast(std::size_t n, double total, Rng& rng) {
  FLEXRT_REQUIRE(n > 0, "need at least one task");
  FLEXRT_REQUIRE(total > 0.0, "total utilization must be > 0");
  std::vector<double> u(n);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform01(),
                       1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

rt::TaskSet generate_task_set(const GenParams& params, Rng& rng) {
  FLEXRT_REQUIRE(!params.period_menu.empty(), "period menu is empty");
  FLEXRT_REQUIRE(params.ft_fraction + params.fs_fraction <= 1.0 + 1e-12,
                 "mode fractions exceed 1");
  for (int attempt = 0; attempt < 256; ++attempt) {
    const std::vector<double> utils =
        uunifast(params.num_tasks, params.total_utilization, rng);
    if (std::any_of(utils.begin(), utils.end(), [&](double u) {
          return u > params.max_task_utilization;
        })) {
      continue;  // resample the whole vector to keep UUniFast's distribution
    }
    rt::TaskSet ts;
    bool ok = true;
    for (std::size_t i = 0; i < utils.size(); ++i) {
      const double period = params.period_menu[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(params.period_menu.size()) -
                              1))];
      const double wcet = utils[i] * period;
      double deadline = period;
      if (params.deadline_min_ratio < 1.0) {
        deadline = period * rng.uniform(params.deadline_min_ratio, 1.0);
        deadline = std::max(deadline, wcet);  // keep C <= D
      }
      if (wcet <= 0.0) {
        ok = false;
        break;
      }
      const double pick = rng.uniform01();
      const rt::Mode mode = pick < params.ft_fraction ? rt::Mode::FT
                            : pick < params.ft_fraction + params.fs_fraction
                                ? rt::Mode::FS
                                : rt::Mode::NF;
      ts.add(rt::make_task("t" + std::to_string(i), wcet, period, deadline,
                           mode));
    }
    if (ok) return ts;
  }
  throw Error("task-set generation failed after 256 attempts");
}

rt::TaskSet generate_stress_set(const StressParams& params, Rng& rng) {
  FLEXRT_REQUIRE(params.period_granularity > 0.0,
                 "period granularity must be > 0");
  FLEXRT_REQUIRE(params.period_min >= params.period_granularity &&
                     params.period_max > params.period_min,
                 "invalid period range");
  FLEXRT_REQUIRE(params.deadline_min_ratio > 0.0 &&
                     params.deadline_min_ratio <= 1.0,
                 "deadline ratio must be in (0, 1]");
  for (int attempt = 0; attempt < 256; ++attempt) {
    const std::vector<double> utils =
        uunifast(params.num_tasks, params.total_utilization, rng);
    if (std::any_of(utils.begin(), utils.end(), [&](double u) {
          return u > params.max_task_utilization;
        })) {
      continue;  // resample the whole vector to keep UUniFast's distribution
    }
    std::vector<rt::Task> tasks;
    tasks.reserve(utils.size());
    bool ok = true;
    for (std::size_t i = 0; i < utils.size(); ++i) {
      const double raw = rng.log_uniform(params.period_min, params.period_max);
      const double period =
          std::max(params.period_granularity,
                   std::round(raw / params.period_granularity) *
                       params.period_granularity);
      const double wcet = utils[i] * period;
      double deadline = period;
      if (params.deadline_min_ratio < 1.0) {
        deadline = period * rng.uniform(params.deadline_min_ratio, 1.0);
        deadline = std::max(deadline, wcet);  // keep C <= D
      }
      if (wcet <= 0.0) {
        ok = false;
        break;
      }
      tasks.push_back(rt::make_task("s" + std::to_string(i), wcet, period,
                                    deadline, rt::Mode::NF));
    }
    if (ok) return rt::TaskSet(std::move(tasks));
  }
  throw Error("stress-set generation failed after 256 attempts");
}

rt::TaskSet generate_stress_set_fp(const StressParams& params, Rng& rng) {
  return rt::sort_deadline_monotonic(generate_stress_set(params, rng));
}

std::optional<core::ModeTaskSystem> build_system(const rt::TaskSet& ts,
                                                 const part::PackOptions& pack) {
  auto pack_mode = [&](rt::Mode mode) {
    return part::pack(ts.by_mode(mode), core::num_channels(mode), pack);
  };
  auto ft = pack_mode(rt::Mode::FT);
  auto fs = pack_mode(rt::Mode::FS);
  auto nf = pack_mode(rt::Mode::NF);
  if (!ft || !fs || !nf) return std::nullopt;
  return core::ModeTaskSystem(std::move(*ft), std::move(*fs), std::move(*nf));
}

rt::TaskSet study_task_set(Rng& rng) {
  GenParams gp;
  gp.num_tasks = 12;
  gp.total_utilization = 1.2;
  return generate_task_set(gp, rng);
}

std::optional<core::ModeTaskSystem> study_system(Rng& rng) {
  return build_system(study_task_set(rng),
                      {part::Heuristic::WorstFit, true, 1.0});
}

}  // namespace flexrt::gen
