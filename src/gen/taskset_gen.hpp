#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/mode_system.hpp"
#include "part/bin_packing.hpp"
#include "rt/task_set.hpp"

namespace flexrt::gen {

/// UUniFast (Bini & Buttazzo): n task utilizations summing exactly to
/// `total`, uniformly distributed over the simplex. The de-facto standard
/// generator for schedulability experiments.
std::vector<double> uunifast(std::size_t n, double total, Rng& rng);

/// Parameters of the synthetic workload generator used by the sweep
/// experiments (E4, E7, E8, E10).
struct GenParams {
  std::size_t num_tasks = 12;
  double total_utilization = 1.0;
  /// Candidate periods; drawing from a divisor-friendly menu keeps the
  /// hyperperiod small, which the EDF dlSet analysis needs. Values are in
  /// paper time units.
  std::vector<double> period_menu = {4, 5, 6, 8, 10, 12, 15, 20, 24, 30, 40, 60};
  /// Probability that a task requires FT / FS (the rest is NF).
  double ft_fraction = 0.25;
  double fs_fraction = 0.25;
  /// Deadline = period * uniform[deadline_min_ratio, 1]; 1.0 = implicit.
  double deadline_min_ratio = 1.0;
  /// Cap on any single task's utilization (resampled above it).
  double max_task_utilization = 0.95;
};

/// Draws one random task set. Task names are "t<index>".
rt::TaskSet generate_task_set(const GenParams& params, Rng& rng);

/// Splits a generated set by required mode and packs each mode's tasks onto
/// its channels (1 FT / 2 FS / 4 NF) with the given heuristic. Returns
/// nullopt when packing fails (some channel would exceed unit bandwidth,
/// meaning the set can be rejected as trivially infeasible).
std::optional<core::ModeTaskSystem> build_system(const rt::TaskSet& ts,
                                                 const part::PackOptions& pack =
                                                     {});

}  // namespace flexrt::gen
