#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/mode_system.hpp"
#include "part/bin_packing.hpp"
#include "rt/task_set.hpp"

namespace flexrt::gen {

/// UUniFast (Bini & Buttazzo): n task utilizations summing exactly to
/// `total`, uniformly distributed over the simplex. The de-facto standard
/// generator for schedulability experiments.
std::vector<double> uunifast(std::size_t n, double total, Rng& rng);

/// Parameters of the synthetic workload generator used by the sweep
/// experiments (E4, E7, E8, E10).
struct GenParams {
  std::size_t num_tasks = 12;
  double total_utilization = 1.0;
  /// Candidate periods; drawing from a divisor-friendly menu keeps the
  /// hyperperiod small, which the EDF dlSet analysis needs. Values are in
  /// paper time units.
  std::vector<double> period_menu = {4, 5, 6, 8, 10, 12, 15, 20, 24, 30, 40, 60};
  /// Probability that a task requires FT / FS (the rest is NF).
  double ft_fraction = 0.25;
  double fs_fraction = 0.25;
  /// Deadline = period * uniform[deadline_min_ratio, 1]; 1.0 = implicit.
  double deadline_min_ratio = 1.0;
  /// Cap on any single task's utilization (resampled above it).
  double max_task_utilization = 0.95;
};

/// Draws one random task set. Task names are "t<index>".
rt::TaskSet generate_task_set(const GenParams& params, Rng& rng);

/// Parameters of the hyperperiod-hostile stress generator. Unlike GenParams'
/// divisor-friendly period menu, periods here are drawn log-uniformly from
/// [period_min, period_max] and snapped to a fine granularity grid, so the
/// resulting periods are effectively co-prime and the hyperperiod saturates
/// (astronomically large or outright unrepresentable). These are the
/// n ~ 10^3-10^4 workloads the QPA-bounded deadline set exists for: the
/// full dlSet enumeration is intractable, the condensed one is not.
struct StressParams {
  std::size_t num_tasks = 1000;
  double total_utilization = 0.6;
  double period_min = 1.0;
  double period_max = 1000.0;
  /// Periods snap to multiples of this grid (kept well above the 1e-6
  /// hyperperiod resolution so the saturating lcm path engages, not the
  /// representability error).
  double period_granularity = 1e-3;
  /// Deadline = period * uniform[deadline_min_ratio, 1].
  double deadline_min_ratio = 0.8;
  /// Cap on any single task's utilization (whole vector resampled above).
  double max_task_utilization = 0.9;
};

/// Draws one hyperperiod-hostile stress set. Deterministic per (params,
/// rng state); task names are "s<index>".
rt::TaskSet generate_stress_set(const StressParams& params, Rng& rng);

/// FP variant of the stress generator: the same hostile draw, returned in
/// deadline-monotonic priority order (index 0 highest) ready for the FP
/// kernels. These sets are point-hostile for FP the same way they are
/// hyperperiod-hostile for EDF -- the multiples bound on |schedP_i|,
/// 1 + sum_{j<i} floor(D_i/T_j), grows past any per-task budget for the
/// low-priority (long-deadline) tasks -- so they exercise the condensed
/// scheduling-point path (rt::bounded_scheduling_points).
rt::TaskSet generate_stress_set_fp(const StressParams& params, Rng& rng);

/// Splits a generated set by required mode and packs each mode's tasks onto
/// its channels (1 FT / 2 FS / 4 NF) with the given heuristic. Returns
/// nullopt when packing fails (some channel would exceed unit bandwidth,
/// meaning the set can be rejected as trivially infeasible).
std::optional<core::ModeTaskSystem> build_system(const rt::TaskSet& ts,
                                                 const part::PackOptions& pack =
                                                     {});

/// The random task set every generated-system study (E2b/E9b/E10b) draws:
/// 12 tasks, total utilization 1.2, default mode mix. One recipe in one
/// place so the studies stay comparable.
rt::TaskSet study_task_set(Rng& rng);

/// study_task_set packed worst-fit (the load-balancing heuristic the E10
/// comparison shows dominating): the standard per-trial system.
std::optional<core::ModeTaskSystem> study_system(Rng& rng);

}  // namespace flexrt::gen
