#pragma once

#include <cstddef>
#include <vector>

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Bini–Buttazzo scheduling points schedP_i (IEEE TC 2004, cited as [10] in
/// the paper): the smallest set of time points at which the FP feasibility
/// inequality needs checking for task i.
///
/// Defined recursively on the higher-priority tasks (set sorted by
/// decreasing priority, index 0 highest):
///   P_0(t)   = { t }
///   P_j(t)   = P_{j-1}( floor(t/T_j) * T_j )  ∪  P_{j-1}(t)
///   schedP_i = P_i(D_i)                     (j runs over tasks 0..i-1)
///
/// Returns the points sorted ascending with duplicates removed; all points
/// are > 0 (a floor can hit 0, which is never a useful test point and is
/// dropped).
std::vector<double> scheduling_points(const TaskSet& ts, std::size_t i);

}  // namespace flexrt::rt
