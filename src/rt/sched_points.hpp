#pragma once

#include <cstddef>
#include <vector>

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Bini–Buttazzo scheduling points schedP_i (IEEE TC 2004, cited as [10] in
/// the paper): the smallest set of time points at which the FP feasibility
/// inequality needs checking for task i.
///
/// Defined recursively on the higher-priority tasks (set sorted by
/// decreasing priority, index 0 highest):
///   P_0(t)   = { t }
///   P_j(t)   = P_{j-1}( floor(t/T_j) * T_j )  ∪  P_{j-1}(t)
///   schedP_i = P_i(D_i)                     (j runs over tasks 0..i-1)
///
/// Returns the points sorted ascending with duplicates removed; all points
/// are > 0 (a floor can hit 0, which is never a useful test point and is
/// dropped).
std::vector<double> scheduling_points(const TaskSet& ts, std::size_t i);

// ---------------------------------------------------------------------------
// Test-point sets and the QPA horizon (where the EDF points come from)
// ---------------------------------------------------------------------------
// FP probes use the per-task scheduling points above, whose size is bounded
// by the priority structure alone. The EDF side instead tests dlSet(T) --
// every absolute deadline D_i + k*T_i up to the hyperperiod -- which blows
// up for co-prime-ish period mixes. rt/deadline_bound.hpp bounds it with the
// Quick Processor-demand Analysis (QPA) horizon of Zhang & Burns (IEEE TC
// 2009), generalized from the dedicated processor to a partition supply with
// linear floor Z(t) >= alpha*(t - Delta):
//
//   dbf(t) <= U*t + c,   c = sum_i C_i (T_i - D_i) / T_i     (D_i <= T_i)
//
// so every deadline beyond  L* = (c + alpha*Delta) / (alpha - U)  satisfies
// dbf(t) <= Z(t) automatically whenever alpha > U: the demand line has
// dropped below the supply floor for good. Checking dlSet on (0, L*] plus
// the utilization condition U <= alpha is therefore a complete test, and
// with the supply unknown up front (minQ searches solve *for* alpha), the
// same algebra run backwards yields the tail quantum: the smallest Q whose
// linear supply at period P sits on the demand line at the covered horizon
// H and has slope Q/P >= U covers every deadline past H. Coalescing
// (demand at a bucket's last deadline tested against supply at its first)
// keeps truncated sets safely over-approximate; see bounded_deadline_set().

}  // namespace flexrt::rt
