#pragma once

#include <cstddef>
#include <vector>

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Bini–Buttazzo scheduling points schedP_i (IEEE TC 2004, cited as [10] in
/// the paper): the smallest set of time points at which the FP feasibility
/// inequality needs checking for task i.
///
/// Defined recursively on the higher-priority tasks (set sorted by
/// decreasing priority, index 0 highest):
///   P_0(t)   = { t }
///   P_j(t)   = P_{j-1}( floor(t/T_j) * T_j )  ∪  P_{j-1}(t)
///   schedP_i = P_i(D_i)                     (j runs over tasks 0..i-1)
///
/// Returns the points sorted ascending with duplicates removed; all points
/// are > 0 (a floor can hit 0, which is never a useful test point and is
/// dropped). Computed iteratively (one snapping pass per higher-priority
/// task over the accumulated set), so the cost is O(i * |schedP_i| log)
/// rather than the 2^i of the literal recursion.
std::vector<double> scheduling_points(const TaskSet& ts, std::size_t i);

// ---------------------------------------------------------------------------
// Point budgets: the QPA horizon (EDF) and FP point condensation
// ---------------------------------------------------------------------------
// The EDF side tests dlSet(T) -- every absolute deadline D_i + k*T_i up to
// the hyperperiod -- which blows up for co-prime-ish period mixes.
// rt/deadline_bound.hpp bounds it with the Quick Processor-demand Analysis
// (QPA) horizon of Zhang & Burns (IEEE TC 2009), generalized from the
// dedicated processor to a partition supply with linear floor
// Z(t) >= alpha*(t - Delta):
//
//   dbf(t) <= U*t + c,   c = sum_i C_i (T_i - D_i) / T_i     (D_i <= T_i)
//
// so every deadline beyond  L* = (c + alpha*Delta) / (alpha - U)  satisfies
// dbf(t) <= Z(t) automatically whenever alpha > U: the demand line has
// dropped below the supply floor for good. Checking dlSet on (0, L*] plus
// the utilization condition U <= alpha is therefore a complete test, and
// with the supply unknown up front (minQ searches solve *for* alpha), the
// same algebra run backwards yields the tail quantum: the smallest Q whose
// linear supply at period P sits on the demand line at the covered horizon
// H and has slope Q/P >= U covers every deadline past H. Coalescing
// (demand at a bucket's last deadline tested against supply at its first)
// keeps truncated sets safely over-approximate; see bounded_deadline_set().
//
// The FP side has no hyperperiod to fear, but |schedP_i| still grows
// steeply with the number of higher-priority tasks (it is pruned from the
// multiples set {k*T_j <= D_i}, whose size is sum_j floor(D_i/T_j)), so
// n ~ 10^3 FP analyses need their own budget. The condensation algebra is
// the dual of the EDF one, because the FP test is an EXISTS over points
// where EDF is a FORALL:
//
//   schedulable_i  <=>  exists t in (0, D_i] : W_i(t) <= Z(t).
//
//  1. Hyperplane-bound pruning. W_i(t) lies above its linear lower bound
//     (each ceil(t/T_j) >= max(1, t/T_j)):
//
//       W_i(t) >= max( sum_{j<=i} C_j,  C_i + U_hp * t ),   U_hp = sum_{j<i} U_j,
//
//     while every admissible supply obeys Z(t) <= t. Points below
//
//       t_lo = max( sum_{j<=i} C_j,  C_i / (1 - U_hp) )
//
//     can therefore never satisfy the inequality for ANY supply: pruning
//     (0, t_lo) loses nothing -- it is exact, not merely safe.
//  2. Bucket coalescing. [t_lo, D_i] is split into max_points geometric
//     buckets [g_{k-1}, g_k]; bucket k is tested as the pair
//     (supply at its FIRST point, workload at its LAST point):
//     W_i(g_k) <= Z(g_{k-1}). W_i is non-decreasing and Z non-decreasing,
//     so a bucket pass implies W_i(t) <= Z(t) at every t in the bucket --
//     in particular at real scheduling points. An EXISTS test over harder
//     pairs can only under-accept: condensed-schedulable => schedulable.
//     Likewise q(t, W) (hier::quantum_for_point) is decreasing in t and
//     increasing in W, so q(g_{k-1}, W_i(g_k)) dominates q at every point
//     in the bucket and condensed minQ >= exact minQ.
//  3. Workload overbound. A condensed task's W_i at the bucket ends is
//     itself evaluated through the hyperplane bound ceil(t/T) <= t/T + 1
//     (rt::AnalysisContext), collapsing each evaluation to prefix sums
//     over the period-sorted higher-priority tasks -- the cache build
//     stays near-linear at n ~ 10^3. Overestimating W only hardens the
//     EXISTS test, so safety is untouched; exact tasks keep the exact sum.
//
// The bucket count is the largest power of two not exceeding max_points,
// so the grids of any two budgets b <= b' are nested (grid k/m is a subset
// of grid k/2m), each sub-bucket's pair is dominated by its parent
// bucket's, and the overbound is budget-independent: answers refine
// monotonically along any growing budget sequence -- in particular a
// next_budget_rung ladder whose final step is clamped to a
// non-power-of-two cap -- the same non-worsening contract the EDF
// condensation gives the adaptive-accuracy ladder (svc::AccuracyPolicy).

/// Default per-task |schedP_i| budget (FpPointOptions::max_points). Smaller
/// than the EDF dlSet budget because it is per *task* (an n-task set holds
/// n point sets) and because the exact-enumeration attempt it gates costs
/// O(i * budget log budget) per task. Paper-scale sets (n <= 13, menu
/// periods) stay exact under it; hostile n ~ 10^3 sets condense.
inline constexpr std::size_t kDefaultFpPointBudget = 1u << 8;

/// Options bounding and condensing the FP scheduling-point sets. The
/// accuracy ladder doubles max_points via rt::next_budget_rung, exactly as
/// it doubles DlBoundOptions::max_points on the EDF side.
struct FpPointOptions {
  /// Per-task budget on |schedP_i|: task i falls back to the condensed
  /// bucket grid (of bit_floor(max_points) buckets, see the nesting note
  /// above) when the multiples-set bound 1 + sum_j floor(D_i/T_j) exceeds
  /// it. 0 disables condensation (always enumerate exactly).
  std::size_t max_points = kDefaultFpPointBudget;
};

/// The bounded/condensed scheduling points of one task plus their
/// provenance. When `exact` is true, `times` is schedP_i verbatim and the
/// per-point tests are exact; otherwise (times[k], ends[k]) are the
/// conservative bucket pairs described above (supply side, workload side)
/// and tests over them form a safe sufficient test.
struct BoundedSchedPoints {
  /// Supply-side test times, sorted ascending: the first point of each
  /// bucket (== schedP_i when exact).
  std::vector<double> times;
  /// Workload-side time of each bucket (its last point). Left EMPTY when
  /// exact, meaning "identical to times".
  std::vector<double> ends;
  /// True iff times is the full Bini-Buttazzo set.
  bool exact = true;

  /// The times workloads and job counts are evaluated at -- the one place
  /// that decodes the empty-ends representation above.
  const std::vector<double>& workload_times() const noexcept {
    return ends.empty() ? times : ends;
  }
};

/// Builds the bounded/condensed scheduling points of task i. Deterministic:
/// depends only on the task set, i, and the options.
BoundedSchedPoints bounded_scheduling_points(const TaskSet& ts, std::size_t i,
                                             const FpPointOptions& opts = {});

}  // namespace flexrt::rt
