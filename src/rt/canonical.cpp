#include "rt/canonical.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>

namespace flexrt::rt {
namespace {

/// splitmix64 finalizer: the mixing primitive of both hash lanes.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr double kInvResolution = 1.0 / kCanonicalResolution;

/// Grid snap of one time value: the canonical integer, or -1 when the
/// value is off-grid (negative, too large for the integer range, or
/// farther than the snap tolerance from the nearest grid point).
std::int64_t snap(double t) noexcept {
  const double f = t * kInvResolution;
  if (!(f >= 0.0) || f > 0x1p62) return -1;
  const double n = std::nearbyint(f);
  if (std::abs(f - n) > kCanonicalSnapTol * std::max(1.0, f)) return -1;
  return static_cast<std::int64_t>(n);
}

// Token stream markers: every value class gets its own tag so streams of
// different shapes cannot alias (e.g. a rational vs. a raw double).
enum : std::uint64_t {
  kTagRational = 0x52,  // reduced n/q grid rational
  kTagRawTime = 0x54,   // off-grid time: raw bits + scale bits
  kTagRawRate = 0x55,   // non-positive rate: raw bits
};

void append_string(std::vector<std::uint64_t>& out, std::string_view s) {
  out.push_back(s.size());
  for (std::size_t i = 0; i < s.size(); i += 8) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, s.size() - i);
    std::memcpy(&word, s.data() + i, n);
    out.push_back(word);
  }
}

std::uint64_t f64_bits(double v) noexcept {
  if (v == 0.0) v = 0.0;  // -0.0 -> +0.0
  return std::bit_cast<std::uint64_t>(v);
}

/// One task's canonical tokens. `g` > 0 selects grid form (integer times
/// divided by the system GCD), 0 selects raw-bits form.
void append_task(std::vector<std::uint64_t>& out, const Task& t,
                 std::int64_t g) {
  append_string(out, t.name);
  out.push_back(static_cast<std::uint64_t>(t.mode));
  for (const double v : {t.wcet, t.period, t.deadline}) {
    if (g > 0) {
      out.push_back(static_cast<std::uint64_t>(snap(v) / g));
    } else {
      out.push_back(f64_bits(v));
    }
  }
}

}  // namespace

HashStream& HashStream::u64(std::uint64_t v) noexcept {
  a_ = mix(a_ ^ mix(v));
  b_ = mix(b_ + mix(v ^ 0x6a09e667f3bcc909ull));
  return *this;
}

HashStream& HashStream::f64(double v) noexcept { return u64(f64_bits(v)); }

HashStream& HashStream::str(std::string_view s) noexcept {
  u64(s.size());
  for (std::size_t i = 0; i < s.size(); i += 8) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, s.size() - i);
    std::memcpy(&word, s.data() + i, n);
    u64(word);
  }
  return *this;
}

Hash128 HashStream::digest() const noexcept {
  Hash128 h;
  h.hi = mix(a_ + 0x510e527fade682d1ull);
  h.lo = mix(b_ ^ a_);
  if (h.empty()) h.lo = 1;  // keep {0,0} as the "never assigned" sentinel
  return h;
}

void CanonicalSystem::time(HashStream& h, double t) const noexcept {
  if (normalized()) {
    const std::int64_t n = snap(t);
    if (n >= 0) {
      const std::int64_t d = std::gcd(n, grid_gcd);
      h.u64(kTagRational).i64(n / d).i64(grid_gcd / d);
      return;
    }
  }
  h.u64(kTagRawTime).f64(t).f64(scale);
}

void CanonicalSystem::inverse_time(HashStream& h, double r) const noexcept {
  if (r > 0.0) {
    time(h, 1.0 / r);
  } else {
    h.u64(kTagRawRate).f64(r);
  }
}

CanonicalSystem CanonicalBuilder::finish() const {
  CanonicalSystem out;

  // Pass 1: grid-snap every task time; the system normalizes only when
  // all of them land on the grid (GCD of off-grid values is undefined).
  std::int64_t g = 0;
  bool grid_ok = true;
  for (const Group& grp : groups_) {
    for (const TaskSet& channel : grp.channels) {
      for (const Task& t : channel) {
        for (const double v : {t.wcet, t.period, t.deadline}) {
          const std::int64_t n = snap(v);
          if (n < 0) {
            grid_ok = false;
          } else if (n > 0) {
            g = std::gcd(g, n);
          }
        }
        if (!grid_ok) break;
      }
    }
  }
  if (grid_ok && g > 0) {
    out.grid_gcd = g;
    out.scale = static_cast<double>(g) * kCanonicalResolution;
  }

  // Pass 2: serialize each channel in deadline-monotonic stable order
  // (the FP priority order; EDF is order-indifferent), then feed groups
  // with their channels in sorted-serialization order.
  HashStream h;
  h.u64(out.grid_gcd > 0 ? 1 : 0);
  for (const Group& grp : groups_) {
    std::vector<std::vector<std::uint64_t>> channels;
    channels.reserve(grp.channels.size());
    for (const TaskSet& channel : grp.channels) {
      std::vector<const Task*> order;
      order.reserve(channel.size());
      for (const Task& t : channel) order.push_back(&t);
      std::stable_sort(order.begin(), order.end(),
                       [](const Task* a, const Task* b) {
                         return a->deadline < b->deadline;
                       });
      std::vector<std::uint64_t> tokens;
      tokens.push_back(order.size());
      for (const Task* t : order) {
        append_task(tokens, *t, out.grid_gcd);
      }
      channels.push_back(std::move(tokens));
    }
    std::sort(channels.begin(), channels.end());
    h.u64(grp.tag).u64(channels.size());
    for (const std::vector<std::uint64_t>& tokens : channels) {
      for (const std::uint64_t w : tokens) h.u64(w);
    }
  }
  out.hash = h.digest();
  return out;
}

}  // namespace flexrt::rt
