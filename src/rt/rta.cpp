#include "rt/rta.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::rt {

std::optional<double> response_time_with_interference(const TaskSet& ts,
                                                      std::size_t level,
                                                      double wcet,
                                                      double deadline) {
  FLEXRT_REQUIRE(level <= ts.size(), "interference level out of range");
  double r = wcet;
  // Fixed-point iteration R = C + sum ceil(R/T_j) C_j; monotone, so it either
  // converges or crosses the deadline.
  for (;;) {
    double next = wcet;
    for (std::size_t j = 0; j < level; ++j) {
      next += static_cast<double>(ceil_ratio(r, ts[j].period)) * ts[j].wcet;
    }
    if (almost_equal(next, r)) return next;
    if (next > deadline * (1.0 + 1e-12)) return std::nullopt;
    r = next;
  }
}

std::optional<double> response_time(const TaskSet& ts, std::size_t i) {
  FLEXRT_REQUIRE(i < ts.size(), "task index out of range");
  return response_time_with_interference(ts, i, ts[i].wcet, ts[i].deadline);
}

bool fp_schedulable(const TaskSet& ts) {
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!response_time(ts, i).has_value()) return false;
  }
  return true;
}

std::vector<std::optional<double>> response_times(const TaskSet& ts) {
  std::vector<std::optional<double>> out;
  out.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) out.push_back(response_time(ts, i));
  return out;
}

}  // namespace flexrt::rt
