#include "rt/edf_test.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "rt/demand.hpp"

namespace flexrt::rt {

bool edf_schedulable(const TaskSet& ts) {
  if (ts.empty()) return true;
  if (ts.utilization() > 1.0 + 1e-12) return false;
  for (const double t : deadline_set(ts)) {
    if (!leq_tol(edf_demand(ts, t), t)) return false;
  }
  return true;
}

double edf_demand_ratio(const TaskSet& ts) {
  double worst = 0.0;
  for (const double t : deadline_set(ts)) {
    worst = std::max(worst, edf_demand(ts, t) / t);
  }
  return worst;
}

}  // namespace flexrt::rt
