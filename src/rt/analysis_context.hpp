#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "rt/deadline_bound.hpp"
#include "rt/sched_points.hpp"
#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Demand of every task at every query point in one event sweep:
/// out[k] = edf_demand(ts, points[k]) for sorted (ascending) `points`, in
/// O(events + n log n + points) instead of the O(n * points) of calling
/// edf_demand per point. Event inclusion uses the same integer-snapping
/// tolerance as floor_ratio, so the sweep agrees with the per-point kernel.
std::vector<double> edf_demand_curve(const TaskSet& ts,
                                     std::span<const double> points);

/// Cached per-TaskSet analysis state: the quantities every schedulability
/// probe re-derives -- Bini-Buttazzo scheduling points and the FP workloads
/// at them, the EDF deadline set dlSet and the demand curve over it -- are
/// computed once and shared by all subsequent queries.
///
/// This is the rt-layer piece of the batched analysis engine: min_quantum,
/// min_quantum_exact, fp/edf_schedulable and the sensitivity kernels all
/// have overloads taking an AnalysisContext, turning an analysis probe
/// (e.g. one bisection step on the quantum) into a pass over cached points
/// with only the supply function evaluated fresh.
///
/// FP caches require the set sorted by decreasing priority (as everywhere
/// else in the library). Both sides are budgeted:
///
/// - The EDF side works on the QPA-bounded/condensed deadline set
///   (rt/deadline_bound.hpp): dl_exact() reports whether it is the full
///   dlSet (probes are then exact) or a condensed safe over-approximation
///   whose consumers must add the tail closure (see hier::edf_schedulable /
///   hier::min_quantum).
/// - The FP side works on the bounded/condensed scheduling points
///   (rt::bounded_scheduling_points): fp_exact() reports whether every
///   task's set is the full schedP_i, otherwise scheduling_points(i) /
///   scheduling_point_ends(i) are the conservative (supply side, workload
///   side) bucket pairs and every test over them is a safe sufficient
///   test -- no tail closure needed, the sets are bounded by D_i.
///
/// Each side is materialized lazily on first use -- an FP-only caller
/// never pays for (or requires) the hyperperiod. Thread-safe: concurrent
/// readers may share one const context.
class AnalysisContext {
 public:
  /// Takes ownership of a snapshot of the task set. `horizon` bounds the
  /// EDF deadline set (<= 0 means the hyperperiod, as in deadline_set());
  /// the default DlBoundOptions / FpPointOptions budgets apply either way.
  explicit AnalysisContext(TaskSet ts, double horizon = 0.0);

  /// Full control over the deadline-set bounding/condensation (FP side at
  /// the default budget).
  AnalysisContext(TaskSet ts, const DlBoundOptions& dl_opts);

  /// Full control over both condensation budgets.
  AnalysisContext(TaskSet ts, const DlBoundOptions& dl_opts,
                  const FpPointOptions& fp_opts);

  const TaskSet& tasks() const noexcept { return ts_; }
  std::size_t size() const noexcept { return ts_.size(); }
  bool empty() const noexcept { return ts_.empty(); }
  double utilization() const noexcept { return utilization_; }

  /// The bounding/condensation options this context was built with (the
  /// budgets a re-probe at the next accuracy rung should double from).
  const DlBoundOptions& dl_options() const noexcept { return dl_opts_; }
  const FpPointOptions& fp_options() const noexcept { return fp_opts_; }

  // --- EDF side -----------------------------------------------------------

  /// Bounded/condensed dlSet(T): the conservative test times (bucket
  /// starts). Equals rt::deadline_set(ts) whenever dl_exact() is true.
  const std::vector<double>& deadline_points() const;

  /// Latest deadline of each bucket; demand is evaluated here. Identical to
  /// deadline_points() when dl_exact() is true.
  const std::vector<double>& deadline_bucket_ends() const;

  /// EDF demand at each bucket end (== edf_demand at each point when
  /// exact), computed by the event sweep.
  const std::vector<double>& edf_demand_at_points() const;

  /// True iff deadline_points() is the full dlSet up to the hyperperiod.
  /// When false, consumers must close the tail beyond dl_horizon() with the
  /// QPA bound (rt::qpa_horizon) to stay safe.
  bool dl_exact() const;

  /// Horizon covered by deadline_points().
  double dl_horizon() const;

  /// Intercept c of the demand-bound line: dbf(t) <= U t + c for t >= 0.
  double dl_util_const() const;

  /// Job count of task i contributing to the demand at each deadline point:
  /// row[k] = max(0, floor((t_k + T_i - D_i)/T_i)) evaluated at the bucket
  /// end t_k (conservative for condensed sets). The per-task demand
  /// contribution at t_k is row[k] * C_i; sensitivity probes scale it in
  /// place instead of rebuilding the task set.
  std::vector<double> edf_point_jobs(std::size_t i) const;

  // --- FP side ------------------------------------------------------------

  /// Bounded/condensed scheduling points of task i: the conservative
  /// supply-side test times (bucket starts). Equals
  /// rt::scheduling_points(ts, i) whenever fp_exact() is true.
  const std::vector<double>& scheduling_points(std::size_t i) const;

  /// Workload-side time of each bucket of task i (its last point);
  /// workloads and job counts are evaluated here. Identical to
  /// scheduling_points(i) when fp_exact() is true.
  const std::vector<double>& scheduling_point_ends(std::size_t i) const;

  /// W_i evaluated at each bucket end of task i (== at each scheduling
  /// point when exact).
  const std::vector<double>& fp_point_workloads(std::size_t i) const;

  /// True iff every task's point set is the full Bini-Buttazzo schedP_i.
  /// When false, FP tests over the condensed pairs are safe sufficient
  /// tests (condensed-schedulable => schedulable, condensed minQ >= exact).
  bool fp_exact() const;

  /// Number of jobs of task j charged to W_i at each bucket end of task i:
  /// ceil(t/T_j) for j < i, 1 for j == i, 0 for lower-priority j
  /// (conservative for condensed sets, exact for full ones).
  std::vector<double> fp_point_jobs(std::size_t i, std::size_t j) const;

 private:
  void ensure_edf() const;
  void ensure_fp() const;

  TaskSet ts_;
  DlBoundOptions dl_opts_;
  FpPointOptions fp_opts_;
  double utilization_ = 0.0;

  mutable std::once_flag edf_once_;
  mutable BoundedDeadlineSet dl_;
  mutable std::vector<double> edf_demand_;

  mutable std::once_flag fp_once_;
  mutable std::vector<BoundedSchedPoints> sched_points_;
  mutable std::vector<std::vector<double>> fp_workloads_;
  mutable bool fp_exact_ = true;
};

}  // namespace flexrt::rt
