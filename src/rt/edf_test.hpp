#pragma once

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Processor-demand analysis for EDF on a dedicated processor (Baruah et
/// al.): schedulable iff U <= 1 and dbf(t) <= t at every absolute deadline up
/// to the hyperperiod. For implicit deadlines this reduces to U <= 1.
bool edf_schedulable(const TaskSet& ts);

/// Maximum demand ratio max_t dbf(t)/t over the deadline set; <= 1 iff
/// schedulable. Useful as a "how close to the edge" metric in benches.
double edf_demand_ratio(const TaskSet& ts);

}  // namespace flexrt::rt
