#pragma once

#include <cstddef>
#include <vector>

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// FP workload of task index `i` over a window of length t (paper Eq. 5):
/// W_i(t) = C_i + sum_{j < i} ceil(t/T_j) C_j.
/// The set must be sorted by decreasing priority; higher-priority tasks are
/// exactly those with index < i.
double fp_workload(const TaskSet& ts, std::size_t i, double t);

/// EDF demand bound function over a window of length t (paper Eq. 9):
/// W(t) = sum_i max(floor((t + T_i - D_i)/T_i), 0) * C_i.
double edf_demand(const TaskSet& ts, double t);

/// dlSet(T): every distinct absolute deadline d = k*T_i + D_i with
/// 0 < d <= horizon, sorted ascending (paper Thm 2 checks these points).
/// `horizon` defaults to the hyperperiod when non-positive.
std::vector<double> deadline_set(const TaskSet& ts, double horizon = 0.0);

}  // namespace flexrt::rt
