#include "rt/task_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::rt {

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  for (const Task& t : tasks_) validate(t);
}

TaskSet::TaskSet(std::initializer_list<Task> tasks)
    : TaskSet(std::vector<Task>(tasks)) {}

void TaskSet::add(Task task) {
  validate(task);
  tasks_.push_back(std::move(task));
}

double TaskSet::utilization() const noexcept {
  double u = 0.0;
  for (const Task& t : tasks_) u += t.utilization();
  return u;
}

double TaskSet::max_utilization() const noexcept {
  double u = 0.0;
  for (const Task& t : tasks_) u = std::max(u, t.utilization());
  return u;
}

double TaskSet::hyperperiod(double resolution) const {
  std::vector<std::int64_t> scaled;
  scaled.reserve(tasks_.size());
  for (const Task& t : tasks_) {
    const double exact = t.period / resolution;
    const double rounded = std::round(exact);
    FLEXRT_REQUIRE(std::fabs(exact - rounded) <= 1e-6 * std::max(1.0, exact),
                   "period of " + t.name +
                       " is not representable on the resolution grid");
    scaled.push_back(static_cast<std::int64_t>(rounded));
  }
  const std::int64_t h = lcm_saturating(scaled);
  if (h == std::numeric_limits<std::int64_t>::max()) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(h) * resolution;
}

TaskSet TaskSet::by_mode(Mode mode) const {
  return filtered([mode](const Task& t) { return t.mode == mode; });
}

}  // namespace flexrt::rt
