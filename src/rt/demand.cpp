#include "rt/demand.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::rt {

double fp_workload(const TaskSet& ts, std::size_t i, double t) {
  FLEXRT_REQUIRE(i < ts.size(), "task index out of range");
  double w = ts[i].wcet;
  for (std::size_t j = 0; j < i; ++j) {
    w += static_cast<double>(ceil_ratio(t, ts[j].period)) * ts[j].wcet;
  }
  return w;
}

double edf_demand(const TaskSet& ts, double t) {
  double w = 0.0;
  for (const Task& task : ts) {
    const std::int64_t jobs =
        floor_ratio(t + task.period - task.deadline, task.period);
    if (jobs > 0) w += static_cast<double>(jobs) * task.wcet;
  }
  return w;
}

std::vector<double> deadline_set(const TaskSet& ts, double horizon) {
  if (ts.empty()) return {};
  if (horizon <= 0.0) horizon = ts.hyperperiod();
  FLEXRT_REQUIRE(std::isfinite(horizon),
                 "hyperperiod overflow: pass an explicit horizon");
  std::vector<double> points;
  for (const Task& task : ts) {
    for (double d = task.deadline; d <= horizon * (1.0 + 1e-12);
         d += task.period) {
      points.push_back(d);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](double a, double b) {
                             return almost_equal(a, b, 1e-12, 1e-12);
                           }),
               points.end());
  return points;
}

}  // namespace flexrt::rt
