#include "rt/task.hpp"

#include "common/error.hpp"

namespace flexrt::rt {

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::FT:
      return "FT";
    case Mode::FS:
      return "FS";
    case Mode::NF:
      return "NF";
  }
  return "??";
}

Task make_task(std::string name, double wcet, double period, Mode mode) {
  Task t{std::move(name), wcet, period, period, mode};
  validate(t);
  return t;
}

Task make_task(std::string name, double wcet, double period, double deadline,
               Mode mode) {
  Task t{std::move(name), wcet, period, deadline, mode};
  validate(t);
  return t;
}

void validate(const Task& task) {
  FLEXRT_REQUIRE(task.wcet > 0.0, "task " + task.name + ": C must be > 0");
  FLEXRT_REQUIRE(task.period > 0.0, "task " + task.name + ": T must be > 0");
  FLEXRT_REQUIRE(task.deadline > 0.0, "task " + task.name + ": D must be > 0");
  FLEXRT_REQUIRE(task.deadline <= task.period,
                 "task " + task.name + ": constrained deadline D <= T required");
  FLEXRT_REQUIRE(task.wcet <= task.deadline,
                 "task " + task.name + ": C <= D required for feasibility");
}

}  // namespace flexrt::rt
