#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Classic fixed-priority response-time analysis on a dedicated processor
/// (Joseph & Pandya / Audsley). Used by the primary/backup baseline and as a
/// cross-check of the hierarchical FP test when alpha=1, Delta=0.
///
/// The task set must be sorted by decreasing priority.

/// Worst-case response time of task i, or nullopt if the fixed-point
/// iteration exceeds the deadline (task unschedulable).
std::optional<double> response_time(const TaskSet& ts, std::size_t i);

/// Worst-case response time of a job with WCET `wcet` executing at the
/// priority level just below task index `level-1` (i.e. suffering
/// interference from tasks 0..level-1 of `ts`), with deadline `deadline`.
/// Building block for backup-copy analysis where the backup is not a member
/// of the interfering set. Returns nullopt if it cannot finish by `deadline`.
std::optional<double> response_time_with_interference(const TaskSet& ts,
                                                      std::size_t level,
                                                      double wcet,
                                                      double deadline);

/// True iff every task meets its deadline under FP on a dedicated processor.
bool fp_schedulable(const TaskSet& ts);

/// Response times for all tasks (nullopt entries for unschedulable tasks).
std::vector<std::optional<double>> response_times(const TaskSet& ts);

}  // namespace flexrt::rt
