#pragma once

#include <cstddef>

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Liu–Layland utilization bound for RM with n tasks: n(2^{1/n} - 1).
double liu_layland_bound(std::size_t n) noexcept;

/// Sufficient RM test: U(T) <= n(2^{1/n} - 1).
bool rm_liu_layland_schedulable(const TaskSet& ts) noexcept;

/// Hyperbolic bound (Bini–Buttazzo): prod (U_i + 1) <= 2. Sufficient for RM,
/// strictly dominates Liu–Layland.
bool rm_hyperbolic_schedulable(const TaskSet& ts) noexcept;

}  // namespace flexrt::rt
