#include "rt/deadline_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "rt/demand.hpp"

namespace flexrt::rt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Hyperperiod, mapped to +infinity when it overflows or a period is not
/// representable on the resolution grid -- both mean "full enumeration is
/// intractable", which the bounded set handles the same way.
double full_horizon_of(const TaskSet& ts) {
  try {
    return ts.hyperperiod();
  } catch (const ModelError&) {
    return kInf;
  }
}

/// Merges sorted deadlines into at most `budget` buckets of near-equal point
/// count. Bucket j is tested as (earliest deadline, latest deadline).
void coalesce(const std::vector<double>& points, std::size_t budget,
              std::vector<double>& times, std::vector<double>& ends) {
  const std::size_t m = points.size();
  times.reserve(budget);
  ends.reserve(budget);
  for (std::size_t j = 0; j < budget; ++j) {
    const std::size_t lo = j * m / budget;
    const std::size_t hi = (j + 1) * m / budget;
    if (lo >= hi) continue;  // more buckets than points
    times.push_back(points[lo]);
    ends.push_back(points[hi - 1]);
  }
}

}  // namespace

double qpa_horizon(double utilization, double util_const, double rate,
                   double delay) noexcept {
  if (rate <= utilization) return kInf;
  return std::max(0.0, (util_const + rate * delay) / (rate - utilization));
}

BoundedDeadlineSet bounded_deadline_set(const TaskSet& ts,
                                        const DlBoundOptions& opts) {
  BoundedDeadlineSet out;
  if (ts.empty()) return out;

  out.utilization = ts.utilization();
  for (const Task& t : ts) {
    out.util_const += t.wcet * (t.period - t.deadline) / t.period;
  }
  out.full_horizon = full_horizon_of(ts);

  double horizon =
      opts.horizon > 0.0 ? std::min(opts.horizon, out.full_horizon)
                         : out.full_horizon;
  if (opts.horizon <= 0.0 && opts.max_points > 0) {
    // Auto horizon under a budget: the deadline events of task i up to H
    // number ~ H / T_i, so H = max_points / sum(1/T_i) lands near the
    // budget and the enumeration below stays O(max_points + n) regardless
    // of the period spread. Deadlines beyond H -- including first jobs of
    // long-deadline tasks, when the mix is extreme -- are covered
    // conservatively by the QPA tail closure, never dropped. An explicit
    // horizon is honored instead (the caller owns the enumeration cost)
    // and condensed down to the budget by coalescing below.
    double density = 0.0;
    for (const Task& t : ts) density += 1.0 / t.period;
    horizon =
        std::min(horizon, static_cast<double>(opts.max_points) / density);
  }
  FLEXRT_REQUIRE(std::isfinite(horizon),
                 "hyperperiod overflow: pass an explicit horizon or a "
                 "max_points budget");
  out.horizon = horizon;

  std::vector<double> points = deadline_set(ts, horizon);
  const bool covers_full =
      out.full_horizon < kInf && horizon >= out.full_horizon * (1.0 - 1e-12);
  if (opts.max_points > 0 && points.size() > opts.max_points) {
    coalesce(points, opts.max_points, out.times, out.ends);
    out.exact = false;
  } else {
    out.times = std::move(points);
    // ends stays empty: identical to times when nothing was coalesced.
    out.exact = covers_full;
  }
  if (!covers_full) out.exact = false;
  return out;
}

}  // namespace flexrt::rt
