#pragma once

#include <cstddef>
#include <vector>

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Options bounding and condensing the EDF deadline set dlSet(T).
///
/// The full dlSet enumerates every absolute deadline d = D_i + k*T_i up to
/// the hyperperiod, which explodes for co-prime-ish period mixes (the
/// hyperperiod of 10^3 tasks with periods on a fine grid easily exceeds any
/// representable time). The bounded set applies two QPA-style reductions
/// (Zhang & Burns, "Schedulability Analysis for Real-Time Systems with EDF
/// Scheduling", IEEE TC 2009) adapted to the partition-supply setting:
///
///  1. Horizon truncation: deadlines are only enumerated up to
///     min(hyperperiod, explicit horizon, budget-derived horizon). The
///     analytic tail closure in qpa_horizon()/the minQ tail quantum covers
///     every t beyond it.
///  2. Coalescing: when the surviving points still exceed `max_points`,
///     adjacent deadlines are merged into buckets tested conservatively
///     (demand of the latest deadline in the bucket against supply at the
///     earliest), which keeps every downstream test a safe sufficient test.
/// Default |dlSet| point budget (DlBoundOptions::max_points). Named so the
/// adaptive-accuracy ladder (svc::AccuracyPolicy) and the provenance fields
/// it reports can reference the library default instead of a magic number.
inline constexpr std::size_t kDefaultDlPointBudget = 1u << 16;

struct DlBoundOptions {
  /// Explicit horizon; <= 0 means the hyperperiod. An explicit horizon is
  /// enumerated as given (the caller owns that cost) and then coalesced to
  /// the budget; the automatic one is pulled in to ~max_points events
  /// first, so memory stays O(max_points) on any period spread.
  double horizon = 0.0;
  /// Budget on |dlSet|: points surviving past it are coalesced into
  /// conservative buckets. 0 disables both reductions (full enumeration,
  /// the pre-QPA behavior; requires a finite hyperperiod).
  std::size_t max_points = kDefaultDlPointBudget;
};

/// Next rung of the adaptive-accuracy budget ladder (svc::AccuracyPolicy):
/// twice the point budget, saturating at `cap`. Growing the budget only
/// refines the condensed set (more buckets over a longer horizon), so
/// re-probing at the next rung never loses safety.
constexpr std::size_t next_budget_rung(std::size_t budget,
                                       std::size_t cap) noexcept {
  const std::size_t base = budget ? budget : 1;
  return base >= cap / 2 ? cap : base * 2;
}

/// The bounded/condensed deadline set plus the scalars the tail closure
/// needs. When `exact` is true, `times == ends ==` the full dlSet(T) and
/// every test over it is exact; otherwise tests over (times, ends) plus the
/// QPA tail closure form a safe over-approximation (schedulable on the
/// condensed set implies schedulable on the full one, never the reverse).
struct BoundedDeadlineSet {
  /// Test times, sorted ascending: the earliest deadline of each bucket
  /// (supply is evaluated here -- the conservative side).
  std::vector<double> times;
  /// Latest deadline of each bucket (demand is evaluated here). Left EMPTY
  /// when no coalescing happened, meaning "identical to times" -- the
  /// common exact case would otherwise carry the full set twice.
  std::vector<double> ends;
  /// Horizon actually covered by `times`/`ends`.
  double horizon = 0.0;
  /// Full horizon the exact analysis would need: the hyperperiod, or
  /// +infinity when it overflows / is not representable on the grid.
  double full_horizon = 0.0;
  /// True iff times cover the full horizon with one point per deadline.
  bool exact = true;
  /// U(T): total utilization.
  double utilization = 0.0;
  /// c = sum_i C_i (T_i - D_i) / T_i: the intercept of the demand-bound
  /// line, dbf(t) <= U t + c for all t >= 0 (constrained deadlines).
  double util_const = 0.0;

  /// The times demand is evaluated at -- the one place that decodes the
  /// empty-ends representation of `ends` above.
  const std::vector<double>& demand_times() const noexcept {
    return ends.empty() ? times : ends;
  }
};

/// Builds the bounded/condensed deadline set. Deterministic: depends only on
/// the task set and the options.
BoundedDeadlineSet bounded_deadline_set(const TaskSet& ts,
                                        const DlBoundOptions& opts = {});

/// QPA horizon L* for a supply with linear floor Z(t) >= rate*(t - delay):
/// the smallest L such that U t + c <= rate*(t - delay) for every t >= L,
/// i.e. L* = (c + rate*delay) / (rate - utilization). Every deadline beyond
/// L* passes the EDF test automatically, so checking dlSet up to L* plus the
/// utilization condition U <= rate is a complete test. Returns +infinity
/// when rate <= utilization (the lines never cross).
double qpa_horizon(double utilization, double util_const, double rate,
                   double delay) noexcept;

}  // namespace flexrt::rt
