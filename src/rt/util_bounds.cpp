#include "rt/util_bounds.hpp"

#include <cmath>

namespace flexrt::rt {

double liu_layland_bound(std::size_t n) noexcept {
  if (n == 0) return 1.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

bool rm_liu_layland_schedulable(const TaskSet& ts) noexcept {
  return ts.utilization() <= liu_layland_bound(ts.size()) + 1e-12;
}

bool rm_hyperbolic_schedulable(const TaskSet& ts) noexcept {
  double prod = 1.0;
  for (const Task& t : ts) prod *= t.utilization() + 1.0;
  return prod <= 2.0 + 1e-12;
}

}  // namespace flexrt::rt
