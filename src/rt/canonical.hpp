#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// 128-bit content hash: the key space of the process-wide answer memo
/// (svc::MemoCache). Two lanes of splitmix-style mixing -- collisions are
/// a correctness hazard (a colliding system would receive another
/// system's cached answer), so the canonicalizer test bank checks a
/// 10^4-system corpus stays collision-free.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;

  /// True for a default-constructed (never assigned) hash; canonical
  /// digests are salted so a real digest is never {0, 0}.
  bool empty() const noexcept { return hi == 0 && lo == 0; }
};

/// Incremental 128-bit hasher. Order-sensitive: callers feed the
/// *canonical* serialization (sorted tasks, sorted channels), never raw
/// iteration order.
class HashStream {
 public:
  HashStream& u64(std::uint64_t v) noexcept;
  HashStream& i64(std::int64_t v) noexcept {
    return u64(static_cast<std::uint64_t>(v));
  }
  /// Bit pattern of `v` with -0.0 normalized to +0.0 (the two compare
  /// equal everywhere in the library, so they must hash equal).
  HashStream& f64(double v) noexcept;
  HashStream& boolean(bool v) noexcept { return u64(v ? 1 : 0); }
  /// Length-prefixed, so ("ab","c") and ("a","bc") cannot collide.
  HashStream& str(std::string_view s) noexcept;

  Hash128 digest() const noexcept;

 private:
  std::uint64_t a_ = 0x243f6a8885a308d3ull;  // pi
  std::uint64_t b_ = 0x13198a2e03707344ull;
};

/// Time values are canonicalized on a fixed decimal grid: t maps to the
/// integer llround(t / kCanonicalResolution) when that round-trip is
/// within kCanonicalSnapTol (relative). The tolerance matches the
/// library-wide ratio snapping (math_util::kRatioSnapTol): times closer
/// than one part in 10^9 are already identified by the analyses, so the
/// memo may identify them too.
inline constexpr double kCanonicalResolution = 1e-9;
inline constexpr double kCanonicalSnapTol = 1e-9;

/// The canonical form of one mode-task system, reduced to what the memo
/// key needs: the content hash, and the time scale that maps canonical
/// time units back to native ones (answers are stored in native units
/// together with the producer's scale; a cross-scale hit multiplies the
/// stored answer's time-dimensioned fields by the scale ratio).
///
/// Normalization: every task time (wcet, period, deadline) is snapped to
/// the decimal grid and the whole system is divided by the GCD of the
/// grid integers, so two systems that differ only by a common time scale
/// share a hash ("10ms-world" == "10s-world"). Systems with off-grid
/// times skip the GCD step (normalized == false) and hash their raw
/// bits: still deterministic and collision-safe, just not
/// scale-invariant.
///
/// Task order: tasks hash in deadline-monotonic *stable* order -- the
/// exact priority order the FP analysis imposes (rt::priority.hpp), which
/// EDF is indifferent to. Shuffling tasks with distinct deadlines does
/// not change the hash; reordering equal-deadline tasks does, because it
/// changes their FP tie priority and may change the answer. Channels
/// within a mode hash in sorted-serialization order (channel identity is
/// immaterial to every analysis: verify checks all, minQ takes the max).
struct CanonicalSystem {
  Hash128 hash{};
  /// Native time units per canonical unit (grid_gcd * resolution);
  /// 1.0 when not normalized.
  double scale = 1.0;
  /// GCD of the grid integers; 0 when not normalized.
  std::int64_t grid_gcd = 0;

  bool normalized() const noexcept { return grid_gcd > 0; }

  /// Hashes a time-dimensioned request parameter scale-invariantly: on
  /// the grid it contributes the reduced rational n/grid_gcd, so the
  /// same request against a rescaled twin system produces the same
  /// memo key. Off-grid (or unnormalized) times hash their raw bits
  /// together with the scale: same-system repeats still hit, cross-scale
  /// twins safely miss.
  void time(HashStream& h, double t) const noexcept;
  /// A rate (1/time): hashed as time(1/r), with 0 and negatives hashed
  /// raw. Scale-invariant for positive on-grid reciprocals.
  void inverse_time(HashStream& h, double r) const noexcept;
};

/// Two-phase canonicalizer: feed every partition group (one per mode,
/// tagged), then finish(). The groups' channel storage must outlive
/// finish() -- the builder stores views, not copies.
class CanonicalBuilder {
 public:
  void add_group(std::uint64_t tag, std::span<const TaskSet> channels) {
    groups_.push_back({tag, channels});
  }

  CanonicalSystem finish() const;

 private:
  struct Group {
    std::uint64_t tag;
    std::span<const TaskSet> channels;
  };
  std::vector<Group> groups_;
};

}  // namespace flexrt::rt
