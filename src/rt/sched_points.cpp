#include "rt/sched_points.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::rt {
namespace {

// Recursive expansion of P_j(t). `j` counts how many of the higher-priority
// tasks (indices 0..j-1) are still to be applied.
void expand(const TaskSet& ts, std::size_t j, double t,
            std::vector<double>& out) {
  if (j == 0) {
    if (t > 0.0) out.push_back(t);
    return;
  }
  const double period = ts[j - 1].period;
  const double snapped =
      static_cast<double>(floor_ratio(t, period)) * period;
  expand(ts, j - 1, snapped, out);
  expand(ts, j - 1, t, out);
}

}  // namespace

std::vector<double> scheduling_points(const TaskSet& ts, std::size_t i) {
  FLEXRT_REQUIRE(i < ts.size(), "task index out of range");
  std::vector<double> points;
  expand(ts, i, ts[i].deadline, points);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](double a, double b) {
                             return almost_equal(a, b, 1e-12, 1e-12);
                           }),
               points.end());
  return points;
}

}  // namespace flexrt::rt
