#include "rt/sched_points.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::rt {
namespace {

/// Sort + dedup with the same tolerance the recursive definition used, so
/// the iterative expansion reproduces it verbatim.
void sort_dedup(std::vector<double>& points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](double a, double b) {
                             return almost_equal(a, b, 1e-12, 1e-12);
                           }),
               points.end());
}

/// Iterative expansion of P_i(D_i): the recursion applies, along every
/// path, the snaps t -> floor(t/T_j)*T_j for a subset of j in decreasing-j
/// order -- so one pass per j over the accumulated set generates exactly
/// the leaf multiset. Kept as a set (exact-equality dedup) per round, which
/// bounds the work at O(i * |schedP_i| log) instead of the 2^i leaves of
/// the literal recursion. A snap hitting 0 is dropped eagerly: 0 only ever
/// snaps back to 0 and the leaf filter discards it anyway, and on hostile
/// sets (most T_r above D_i) the zeros alone would branch 2^i times.
std::vector<double> expand_points(const TaskSet& ts, std::size_t i) {
  std::vector<double> points{ts[i].deadline};
  for (std::size_t r = i; r-- > 0;) {
    const double period = ts[r].period;
    // Points only shrink under snapping, so D_i snapping to 0 means every
    // current point does: the round adds nothing.
    if (floor_ratio(ts[i].deadline, period) <= 0) continue;
    std::vector<double> snapped;
    snapped.reserve(points.size());
    for (const double t : points) {
      const double s = static_cast<double>(floor_ratio(t, period)) * period;
      if (s > 0.0) snapped.push_back(s);
    }
    points.insert(points.end(), snapped.begin(), snapped.end());
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
  }
  return points;
}

}  // namespace

std::vector<double> scheduling_points(const TaskSet& ts, std::size_t i) {
  FLEXRT_REQUIRE(i < ts.size(), "task index out of range");
  std::vector<double> points = expand_points(ts, i);
  sort_dedup(points);
  return points;
}

BoundedSchedPoints bounded_scheduling_points(const TaskSet& ts, std::size_t i,
                                             const FpPointOptions& opts) {
  FLEXRT_REQUIRE(i < ts.size(), "task index out of range");
  BoundedSchedPoints out;

  // schedP_i is pruned from the multiples set {k*T_j <= D_i} u {D_i}, so
  // this O(i) bound decides exactness without enumerating anything.
  const double deadline = ts[i].deadline;
  std::size_t size_bound = 1;
  for (std::size_t j = 0; j < i && (opts.max_points == 0 ||
                                    size_bound <= opts.max_points);
       ++j) {
    const std::int64_t k = floor_ratio(deadline, ts[j].period);
    if (k > 0) size_bound += static_cast<std::size_t>(k);
  }
  if (opts.max_points == 0 || size_bound <= opts.max_points) {
    out.times = scheduling_points(ts, i);
    return out;  // exact; ends stays empty ("identical to times")
  }
  out.exact = false;

  // Hyperplane-bound pruning (see the header): no admissible supply
  // (Z(t) <= t) can pass below t_lo, so the grid starts there.
  double wcet_sum = ts[i].wcet;
  double hp_util = 0.0;
  for (std::size_t j = 0; j < i; ++j) {
    wcet_sum += ts[j].wcet;
    hp_util += ts[j].utilization();
  }
  double t_lo = wcet_sum;
  if (hp_util < 1.0) {
    t_lo = std::max(t_lo, ts[i].wcet / (1.0 - hp_util));
  } else {
    t_lo = deadline;  // workload outgrows any supply: only D_i remains
  }
  t_lo = std::min(t_lo, deadline);

  if (deadline <= t_lo * (1.0 + 1e-12)) {
    // Degenerate window: the single real point (D_i, W_i(D_i)).
    out.times = {deadline};
    out.ends = {deadline};
    return out;
  }

  // Geometric bucket grid on [t_lo, D_i]: bucket k is (times[k], ends[k]) =
  // (g_{k-1}, g_k). Geometric spacing matches the log-uniform period
  // spreads of the hostile generators. The bucket count snaps down to a
  // power of two: grids are then nested (k/m is a subset of k/2m) for ANY
  // non-decreasing budget sequence -- including a next_budget_rung ladder
  // whose last step is clamped to a non-power-of-two cap -- which is what
  // makes the ladder monotone non-worsening.
  const std::size_t buckets = std::bit_floor(opts.max_points);
  const double ratio = deadline / t_lo;
  out.times.reserve(buckets);
  out.ends.reserve(buckets);
  double start = t_lo;
  for (std::size_t k = 1; k <= buckets; ++k) {
    const double end =
        k == buckets
            ? deadline
            : t_lo * std::pow(ratio, static_cast<double>(k) /
                                         static_cast<double>(buckets));
    if (end <= start) continue;  // pow rounding collapsed the bucket
    out.times.push_back(start);
    out.ends.push_back(end);
    start = end;
  }
  return out;
}

}  // namespace flexrt::rt
