#include "rt/analysis_context.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "rt/demand.hpp"
#include "rt/sched_points.hpp"

namespace flexrt::rt {
namespace {

// floor_ratio snaps ratios within tol * max(1, |r|) of an integer. At the
// k-th deadline event d = D_i + k*T_i the counting ratio is r = k + 1, so
// edf_demand counts the job as soon as t >= d - tol * (k+1) * T_i. The
// sweep mirrors that *relative* window by shifting each event left by it.
constexpr double kSnapTol = 1e-9;

struct DemandEvent {
  double when = 0.0;    // event time minus the snap window
  double weight = 0.0;  // C_i added to the demand from this time on
};

std::vector<DemandEvent> demand_events(const TaskSet& ts, double last) {
  std::vector<DemandEvent> events;
  for (const Task& task : ts) {
    // d = D_i + k*T_i computed by multiplication (not accumulation) so the
    // event grid carries no compounding rounding error.
    for (std::int64_t k = 0;; ++k) {
      const double d = task.deadline + static_cast<double>(k) * task.period;
      const double snap = kSnapTol * static_cast<double>(k + 1) * task.period;
      if (d - snap > last) break;
      events.push_back({d - snap, task.wcet});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const DemandEvent& a, const DemandEvent& b) {
              return a.when < b.when;
            });
  return events;
}

}  // namespace

std::vector<double> edf_demand_curve(const TaskSet& ts,
                                     std::span<const double> points) {
  std::vector<double> out(points.size(), 0.0);
  if (ts.empty() || points.empty()) return out;
  FLEXRT_REQUIRE(std::is_sorted(points.begin(), points.end()),
                 "query points must be sorted ascending");
  const std::vector<DemandEvent> events = demand_events(ts, points.back());
  double acc = 0.0;
  std::size_t e = 0;
  for (std::size_t k = 0; k < points.size(); ++k) {
    while (e < events.size() && events[e].when <= points[k]) {
      acc += events[e].weight;
      ++e;
    }
    out[k] = acc;
  }
  return out;
}

AnalysisContext::AnalysisContext(TaskSet ts, double horizon)
    : AnalysisContext(std::move(ts),
                      DlBoundOptions{horizon, DlBoundOptions{}.max_points}) {}

AnalysisContext::AnalysisContext(TaskSet ts, const DlBoundOptions& dl_opts)
    : ts_(std::move(ts)),
      dl_opts_(dl_opts),
      utilization_(ts_.utilization()) {}

void AnalysisContext::ensure_edf() const {
  std::call_once(edf_once_, [this] {
    dl_ = bounded_deadline_set(ts_, dl_opts_);
    // dl_.ends is empty when nothing was coalesced (== times).
    edf_demand_ =
        edf_demand_curve(ts_, dl_.ends.empty() ? dl_.times : dl_.ends);
  });
}

void AnalysisContext::ensure_fp() const {
  std::call_once(fp_once_, [this] {
    sched_points_.resize(ts_.size());
    fp_workloads_.resize(ts_.size());
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      sched_points_[i] = rt::scheduling_points(ts_, i);
      fp_workloads_[i].reserve(sched_points_[i].size());
      for (const double t : sched_points_[i]) {
        fp_workloads_[i].push_back(fp_workload(ts_, i, t));
      }
    }
  });
}

const std::vector<double>& AnalysisContext::deadline_points() const {
  ensure_edf();
  return dl_.times;
}

const std::vector<double>& AnalysisContext::deadline_bucket_ends() const {
  ensure_edf();
  return dl_.ends.empty() ? dl_.times : dl_.ends;
}

const std::vector<double>& AnalysisContext::edf_demand_at_points() const {
  ensure_edf();
  return edf_demand_;
}

bool AnalysisContext::dl_exact() const {
  ensure_edf();
  return dl_.exact;
}

double AnalysisContext::dl_horizon() const {
  ensure_edf();
  return dl_.horizon;
}

double AnalysisContext::dl_util_const() const {
  ensure_edf();
  return dl_.util_const;
}

std::vector<double> AnalysisContext::edf_point_jobs(std::size_t i) const {
  FLEXRT_REQUIRE(i < ts_.size(), "task index out of range");
  ensure_edf();
  const Task& task = ts_[i];
  // Jobs are counted at the bucket ends -- the same times the cached demand
  // curve is evaluated at -- so scaled-demand probes stay conservative on
  // condensed sets and exact on full ones.
  const std::vector<double>& points = dl_.ends.empty() ? dl_.times : dl_.ends;
  std::vector<double> row(points.size(), 0.0);
  // Pointer walk over the task's own deadline events: O(points + jobs)
  // instead of a floor_ratio division per point. Events carry the same
  // relative snap window as demand_events() above.
  std::int64_t jobs = 0;
  double next =
      task.deadline - kSnapTol * task.period;  // event 0, ratio 1
  for (std::size_t k = 0; k < points.size(); ++k) {
    while (next <= points[k]) {
      ++jobs;
      next = task.deadline + static_cast<double>(jobs) * task.period -
             kSnapTol * static_cast<double>(jobs + 1) * task.period;
    }
    row[k] = static_cast<double>(jobs);
  }
  return row;
}

const std::vector<double>& AnalysisContext::scheduling_points(
    std::size_t i) const {
  FLEXRT_REQUIRE(i < ts_.size(), "task index out of range");
  ensure_fp();
  return sched_points_[i];
}

const std::vector<double>& AnalysisContext::fp_point_workloads(
    std::size_t i) const {
  FLEXRT_REQUIRE(i < ts_.size(), "task index out of range");
  ensure_fp();
  return fp_workloads_[i];
}

std::vector<double> AnalysisContext::fp_point_jobs(std::size_t i,
                                                   std::size_t j) const {
  FLEXRT_REQUIRE(i < ts_.size() && j < ts_.size(), "task index out of range");
  ensure_fp();
  const std::vector<double>& points = sched_points_[i];
  std::vector<double> row(points.size(), 0.0);
  if (j > i) return row;  // lower priority: no contribution to W_i
  for (std::size_t k = 0; k < points.size(); ++k) {
    row[k] = j == i ? 1.0
                    : static_cast<double>(ceil_ratio(points[k], ts_[j].period));
  }
  return row;
}

}  // namespace flexrt::rt
