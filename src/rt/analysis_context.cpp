#include "rt/analysis_context.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "rt/demand.hpp"
#include "rt/sched_points.hpp"

namespace flexrt::rt {
namespace {

// floor_ratio snaps ratios within tol * max(1, |r|) of an integer. At the
// k-th deadline event d = D_i + k*T_i the counting ratio is r = k + 1, so
// edf_demand counts the job as soon as t >= d - tol * (k+1) * T_i. The
// sweep mirrors that *relative* window by shifting each event left by it.
constexpr double kSnapTol = kRatioSnapTol;

struct DemandEvent {
  double when = 0.0;    // event time minus the snap window
  double weight = 0.0;  // C_i added to the demand from this time on
};

std::vector<DemandEvent> demand_events(const TaskSet& ts, double last) {
  std::vector<DemandEvent> events;
  for (const Task& task : ts) {
    // d = D_i + k*T_i computed by multiplication (not accumulation) so the
    // event grid carries no compounding rounding error.
    for (std::int64_t k = 0;; ++k) {
      const double d = task.deadline + static_cast<double>(k) * task.period;
      const double snap = kSnapTol * static_cast<double>(k + 1) * task.period;
      if (d - snap > last) break;
      events.push_back({d - snap, task.wcet});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const DemandEvent& a, const DemandEvent& b) {
              return a.when < b.when;
            });
  return events;
}

}  // namespace

std::vector<double> edf_demand_curve(const TaskSet& ts,
                                     std::span<const double> points) {
  std::vector<double> out(points.size(), 0.0);
  if (ts.empty() || points.empty()) return out;
  FLEXRT_REQUIRE(std::is_sorted(points.begin(), points.end()),
                 "query points must be sorted ascending");
  const std::vector<DemandEvent> events = demand_events(ts, points.back());
  double acc = 0.0;
  std::size_t e = 0;
  for (std::size_t k = 0; k < points.size(); ++k) {
    while (e < events.size() && events[e].when <= points[k]) {
      acc += events[e].weight;
      ++e;
    }
    out[k] = acc;
  }
  return out;
}

AnalysisContext::AnalysisContext(TaskSet ts, double horizon)
    : AnalysisContext(std::move(ts),
                      DlBoundOptions{horizon, DlBoundOptions{}.max_points}) {}

AnalysisContext::AnalysisContext(TaskSet ts, const DlBoundOptions& dl_opts)
    : AnalysisContext(std::move(ts), dl_opts, FpPointOptions{}) {}

AnalysisContext::AnalysisContext(TaskSet ts, const DlBoundOptions& dl_opts,
                                 const FpPointOptions& fp_opts)
    : ts_(std::move(ts)),
      dl_opts_(dl_opts),
      fp_opts_(fp_opts),
      utilization_(ts_.utilization()) {}

void AnalysisContext::ensure_edf() const {
  std::call_once(edf_once_, [this] {
    dl_ = bounded_deadline_set(ts_, dl_opts_);
    edf_demand_ = edf_demand_curve(ts_, dl_.demand_times());
  });
}

namespace {

/// Batch evaluator of the FP workloads W_i(t): the higher-priority tasks
/// seen so far, sorted by period with prefix sums of C and U. Every query
/// splits at two binary searches (ceil_ratio(t, T) is exactly 1 for
/// T in [t, t/tol) and exactly 0 for T >= t/tol, the snap-to-zero band),
/// so only the periods strictly below t are walked explicitly:
///
///   W_i(t) = C_i + sum_{T_j <  t} ceil_ratio(t, T_j) C_j   (walked)
///                + sum_{T_j in [t, t/tol)} C_j             (prefix sums)
///
/// For a condensed task the walk is replaced by its hyperplane overbound
/// ceil(t/T) <= t/T + 1, collapsing the whole query to prefix sums:
///
///   W~_i(t) = C_i + sum_{T_j < t/tol} C_j + t * sum_{T_j < t} U_j
///
/// W~ >= W makes the condensed EXISTS test strictly harder -- safe -- and
/// is budget-independent, so the next_budget_rung ladder stays monotone.
class FpWorkloadSums {
 public:
  explicit FpWorkloadSums(std::size_t n) {
    periods_.reserve(n);
    wcets_.reserve(n);
    prefix_c_.assign(1, 0.0);
    prefix_u_.assign(1, 0.0);
  }

  /// Exact W_i(t) for a task with WCET `wcet` against the tasks added so
  /// far (agrees with rt::fp_workload up to summation order).
  double exact(double wcet, double t) const {
    const auto [lo, hi] = bands(t);
    double w = wcet + (prefix_c_[hi] - prefix_c_[lo]);
    for (std::size_t k = 0; k < lo; ++k) {
      w += static_cast<double>(ceil_ratio(t, periods_[k])) * wcets_[k];
    }
    return w;
  }

  /// Hyperplane overbound W~_i(t) >= W_i(t), prefix sums only.
  double overbound(double wcet, double t) const {
    const auto [lo, hi] = bands(t);
    return wcet + prefix_c_[hi] + t * prefix_u_[lo];
  }

  /// Adds the next task in priority order.
  void add(const Task& task) {
    const auto at = std::lower_bound(periods_.begin(), periods_.end(),
                                     task.period) -
                    periods_.begin();
    periods_.insert(periods_.begin() + at, task.period);
    wcets_.insert(wcets_.begin() + at, task.wcet);
    prefix_c_.resize(periods_.size() + 1);
    prefix_u_.resize(periods_.size() + 1);
    for (std::size_t k = static_cast<std::size_t>(at); k < periods_.size();
         ++k) {
      prefix_c_[k + 1] = prefix_c_[k] + wcets_[k];
      prefix_u_[k + 1] = prefix_u_[k] + wcets_[k] / periods_[k];
    }
  }

 private:
  /// (first index with T >= t, first index in the snap-to-zero band).
  std::pair<std::size_t, std::size_t> bands(double t) const {
    const auto lo = std::lower_bound(periods_.begin(), periods_.end(), t);
    const auto hi = std::lower_bound(lo, periods_.end(), t / kRatioSnapTol);
    return {static_cast<std::size_t>(lo - periods_.begin()),
            static_cast<std::size_t>(hi - periods_.begin())};
  }

  std::vector<double> periods_;   // ascending
  std::vector<double> wcets_;     // aligned with periods_
  std::vector<double> prefix_c_;  // prefix_c_[k] = sum of wcets_[0..k)
  std::vector<double> prefix_u_;  // prefix_u_[k] = sum of wcets_/periods_
};

}  // namespace

void AnalysisContext::ensure_fp() const {
  std::call_once(fp_once_, [this] {
    sched_points_.resize(ts_.size());
    fp_workloads_.resize(ts_.size());
    FpWorkloadSums sums(ts_.size());
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      sched_points_[i] = bounded_scheduling_points(ts_, i, fp_opts_);
      fp_exact_ = fp_exact_ && sched_points_[i].exact;
      // Workloads live on the workload side of each bucket (its end); when
      // exact the ends are the points themselves. Condensed tasks use the
      // hyperplane overbound -- their points are already conservative, and
      // it keeps the whole cache build near-linear at stress scale.
      const std::vector<double>& at = sched_points_[i].workload_times();
      fp_workloads_[i].reserve(at.size());
      for (const double t : at) {
        fp_workloads_[i].push_back(sched_points_[i].exact
                                       ? sums.exact(ts_[i].wcet, t)
                                       : sums.overbound(ts_[i].wcet, t));
      }
      sums.add(ts_[i]);
    }
  });
}

const std::vector<double>& AnalysisContext::deadline_points() const {
  ensure_edf();
  return dl_.times;
}

const std::vector<double>& AnalysisContext::deadline_bucket_ends() const {
  ensure_edf();
  return dl_.demand_times();
}

const std::vector<double>& AnalysisContext::edf_demand_at_points() const {
  ensure_edf();
  return edf_demand_;
}

bool AnalysisContext::dl_exact() const {
  ensure_edf();
  return dl_.exact;
}

double AnalysisContext::dl_horizon() const {
  ensure_edf();
  return dl_.horizon;
}

double AnalysisContext::dl_util_const() const {
  ensure_edf();
  return dl_.util_const;
}

std::vector<double> AnalysisContext::edf_point_jobs(std::size_t i) const {
  FLEXRT_REQUIRE(i < ts_.size(), "task index out of range");
  ensure_edf();
  const Task& task = ts_[i];
  // Jobs are counted at the bucket ends -- the same times the cached demand
  // curve is evaluated at -- so scaled-demand probes stay conservative on
  // condensed sets and exact on full ones.
  const std::vector<double>& points = dl_.demand_times();
  std::vector<double> row(points.size(), 0.0);
  // Pointer walk over the task's own deadline events: O(points + jobs)
  // instead of a floor_ratio division per point. Events carry the same
  // relative snap window as demand_events() above.
  std::int64_t jobs = 0;
  double next =
      task.deadline - kSnapTol * task.period;  // event 0, ratio 1
  for (std::size_t k = 0; k < points.size(); ++k) {
    while (next <= points[k]) {
      ++jobs;
      next = task.deadline + static_cast<double>(jobs) * task.period -
             kSnapTol * static_cast<double>(jobs + 1) * task.period;
    }
    row[k] = static_cast<double>(jobs);
  }
  return row;
}

const std::vector<double>& AnalysisContext::scheduling_points(
    std::size_t i) const {
  FLEXRT_REQUIRE(i < ts_.size(), "task index out of range");
  ensure_fp();
  return sched_points_[i].times;
}

const std::vector<double>& AnalysisContext::scheduling_point_ends(
    std::size_t i) const {
  FLEXRT_REQUIRE(i < ts_.size(), "task index out of range");
  ensure_fp();
  return sched_points_[i].workload_times();
}

const std::vector<double>& AnalysisContext::fp_point_workloads(
    std::size_t i) const {
  FLEXRT_REQUIRE(i < ts_.size(), "task index out of range");
  ensure_fp();
  return fp_workloads_[i];
}

bool AnalysisContext::fp_exact() const {
  ensure_fp();
  return fp_exact_;
}

std::vector<double> AnalysisContext::fp_point_jobs(std::size_t i,
                                                   std::size_t j) const {
  FLEXRT_REQUIRE(i < ts_.size() && j < ts_.size(), "task index out of range");
  ensure_fp();
  // Jobs are counted at the bucket ends -- where the cached workloads live
  // -- so scaled-workload probes stay conservative on condensed sets and
  // exact on full ones (mirrors edf_point_jobs above).
  const std::vector<double>& points = scheduling_point_ends(i);
  std::vector<double> row(points.size(), 0.0);
  if (j > i) return row;  // lower priority: no contribution to W_i
  for (std::size_t k = 0; k < points.size(); ++k) {
    row[k] = j == i ? 1.0
                    : static_cast<double>(ceil_ratio(points[k], ts_[j].period));
  }
  return row;
}

}  // namespace flexrt::rt
