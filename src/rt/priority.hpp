#pragma once

#include "rt/task_set.hpp"

namespace flexrt::rt {

/// Priority orderings for fixed-priority (FP) scheduling. All FP analyses in
/// this library take the task set *already sorted by decreasing priority*
/// (index 0 = highest); these helpers produce such orderings.

/// Rate Monotonic: shorter period = higher priority. Stable on ties.
TaskSet sort_rate_monotonic(const TaskSet& ts);

/// Deadline Monotonic: shorter relative deadline = higher priority; optimal
/// for constrained-deadline sporadic tasks under FP. Stable on ties.
TaskSet sort_deadline_monotonic(const TaskSet& ts);

/// True if the set is sorted by non-decreasing period (valid RM order).
bool is_rate_monotonic_order(const TaskSet& ts) noexcept;

/// True if the set is sorted by non-decreasing relative deadline.
bool is_deadline_monotonic_order(const TaskSet& ts) noexcept;

}  // namespace flexrt::rt
