#pragma once

#include <string>

namespace flexrt::rt {

/// Fault-robustness operating mode required by a task (paper §2.2).
enum class Mode {
  FT,  ///< fault-tolerant: single transient fault is masked (4-way lock-step)
  FS,  ///< fail-silent: fault is detected, channel silenced (2-way lock-step)
  NF,  ///< non-fault-tolerant: full parallelism, no guarantee
};

/// Short uppercase name ("FT"/"FS"/"NF").
const char* to_string(Mode mode) noexcept;

/// A sporadic real-time task (paper §2.3): worst-case execution time C,
/// minimum interarrival time T, constrained relative deadline D <= T, and the
/// required operating mode. Times are in the paper's abstract time units.
struct Task {
  std::string name;     ///< identifier used in traces and tables
  double wcet = 0.0;    ///< C_i: worst-case computation time, > 0
  double period = 0.0;  ///< T_i: minimum interarrival time, > 0
  double deadline = 0.0;  ///< D_i: relative deadline, 0 < D_i <= T_i
  Mode mode = Mode::NF;   ///< required operating mode

  /// Utilization U_i = C_i / T_i.
  double utilization() const noexcept { return wcet / period; }
};

/// Builds a task with implicit deadline (D = T).
Task make_task(std::string name, double wcet, double period,
               Mode mode = Mode::NF);

/// Builds a task with an explicit constrained deadline.
Task make_task(std::string name, double wcet, double period, double deadline,
               Mode mode);

/// Validates C > 0, T > 0, 0 < D <= T; throws ModelError otherwise.
void validate(const Task& task);

}  // namespace flexrt::rt
