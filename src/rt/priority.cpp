#include "rt/priority.hpp"

#include <algorithm>
#include <vector>

namespace flexrt::rt {
namespace {

template <typename Key>
TaskSet stable_sorted(const TaskSet& ts, Key key) {
  std::vector<Task> tasks(ts.begin(), ts.end());
  std::stable_sort(tasks.begin(), tasks.end(),
                   [&](const Task& a, const Task& b) { return key(a) < key(b); });
  return TaskSet(std::move(tasks));
}

}  // namespace

TaskSet sort_rate_monotonic(const TaskSet& ts) {
  return stable_sorted(ts, [](const Task& t) { return t.period; });
}

TaskSet sort_deadline_monotonic(const TaskSet& ts) {
  return stable_sorted(ts, [](const Task& t) { return t.deadline; });
}

bool is_rate_monotonic_order(const TaskSet& ts) noexcept {
  for (std::size_t i = 1; i < ts.size(); ++i) {
    if (ts[i].period < ts[i - 1].period) return false;
  }
  return true;
}

bool is_deadline_monotonic_order(const TaskSet& ts) noexcept {
  for (std::size_t i = 1; i < ts.size(); ++i) {
    if (ts[i].deadline < ts[i - 1].deadline) return false;
  }
  return true;
}

}  // namespace flexrt::rt
