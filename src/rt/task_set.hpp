#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "rt/task.hpp"

namespace flexrt::rt {

/// An ordered collection of validated tasks. Order is meaningful: for FP
/// analyses the set must be sorted by decreasing priority first (see
/// sort_rate_monotonic / sort_deadline_monotonic in priority.hpp).
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks);
  TaskSet(std::initializer_list<Task> tasks);

  /// Appends a task (validated).
  void add(Task task);

  std::size_t size() const noexcept { return tasks_.size(); }
  bool empty() const noexcept { return tasks_.empty(); }

  const Task& operator[](std::size_t i) const noexcept { return tasks_[i]; }
  std::span<const Task> tasks() const noexcept { return tasks_; }

  auto begin() const noexcept { return tasks_.begin(); }
  auto end() const noexcept { return tasks_.end(); }

  /// Total utilization U(T) = sum of C_i/T_i.
  double utilization() const noexcept;

  /// Maximum single-task utilization.
  double max_utilization() const noexcept;

  /// Hyperperiod (lcm of periods) when every period is an integer multiple
  /// of `resolution`; saturates to a very large value on overflow. Periods
  /// that are not representable on the resolution grid throw ModelError —
  /// the EDF dlSet analysis needs an exact hyperperiod.
  double hyperperiod(double resolution = 1e-6) const;

  /// Keeps only tasks matching the predicate, preserving order.
  template <typename Pred>
  TaskSet filtered(Pred&& pred) const {
    std::vector<Task> out;
    for (const Task& t : tasks_) {
      if (pred(t)) out.push_back(t);
    }
    return TaskSet(std::move(out));
  }

  /// Subset of tasks requiring the given mode.
  TaskSet by_mode(Mode mode) const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace flexrt::rt
