#pragma once

#include <atomic>
#include <cstddef>
#include <iostream>
#include <memory>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "net/proto.hpp"

namespace flexrt::net {

/// POSIX socket transport under the wire protocol (net::proto): a
/// connected-fd iostream, a client-side dial(), and the accept-loop server
/// the flexrtd daemon wraps. Everything protocol-shaped stays in proto --
/// this layer only moves bytes and owns fd/thread lifecycles.

/// std::streambuf over a connected socket fd. Reads recv(), writes send()
/// with MSG_NOSIGNAL -- a client that disconnects mid-report surfaces as a
/// failed stream (which JsonlWriter turns into an exception and Session
/// into the end of the session), never as a process-killing SIGPIPE.
/// EINTR is retried; the fd is borrowed, never closed here.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_out();

  int fd_;
  char in_[8192];
  char out_[8192];
};

/// Bidirectional iostream over a connected socket fd (fd stays owned by
/// the caller). The daemon hands one of these per connection to
/// proto::Session; the remote client drives its dialed fd through one.
class FdStream : public std::iostream {
 public:
  explicit FdStream(int fd);

  int fd() const noexcept { return fd_; }

 private:
  FdStreamBuf buf_;
  int fd_;
};

/// Connects to a flexrtd address and returns the connected fd (caller
/// closes). Address forms:
///   contains '/'      -> unix-domain socket path
///   "host:port"       -> TCP (empty host or "localhost" = 127.0.0.1)
///   ":port" / "port"  -> TCP to 127.0.0.1
/// Throws ModelError when the address is malformed or nothing listens.
int dial(const std::string& address);

struct ServerOptions {
  /// Unix-domain listening socket path; non-empty selects unix transport.
  std::string socket_path;
  /// TCP listening port; >= 0 selects TCP (0 = kernel-assigned ephemeral
  /// port, read back via tcp_port()). Exactly one transport must be set.
  int port = -1;
  /// Per-line byte cap handed to each session (hostile-input bound).
  std::size_t max_line = proto::kMaxLineBytes;
};

/// The flexrtd accept loop: one proto::Session per connection, each on its
/// own thread, all sharing the process-wide analysis pool. stop() drains
/// gracefully -- the listener closes first, then every live session's fd is
/// shutdown(SHUT_RD): a blocked read returns EOF, an in-flight command
/// finishes and writes its rows/status, and the session thread exits. No
/// command is ever cut off mid-reply.
class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and launches the accept thread. Throws ModelError on
  /// bind/listen failure (address in use, bad path).
  void start();

  /// Graceful drain (idempotent): stop accepting, EOF every live session,
  /// join all threads, unlink the unix socket path.
  void stop();

  /// The bound TCP port (after start(); meaningful for TCP transport --
  /// how a port-0 caller learns the kernel's pick).
  int tcp_port() const noexcept { return tcp_port_; }

  const std::string& socket_path() const noexcept {
    return opts_.socket_path;
  }

  /// Connections accepted so far (drained or live).
  std::size_t sessions_served() const noexcept {
    return sessions_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve(Conn& conn);
  /// Joins and closes every finished connection; with `all`, first EOFs
  /// the live ones (stop's drain). Caller must not hold mu_.
  void reap(bool all);
  void wake();

  ServerOptions opts_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  int tcp_port_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::size_t> sessions_served_{0};
  /// Guards the connection registry. The Conn objects themselves are
  /// shared with their session thread through pre-start writes (fd) and
  /// atomics (done); only the vector of registrations -- who exists, who
  /// has been reaped -- needs the lock.
  mutable sys::Mutex mu_;
  std::vector<std::unique_ptr<Conn>> conns_ GUARDED_BY(mu_);
};

}  // namespace flexrt::net
