#include "net/server.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace flexrt::net {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

std::string errno_text() { return std::strerror(errno); }

int unix_socket(const std::string& path, bool listen_side) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path)) {
    throw ModelError("socket path too long: " + path);
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ModelError("socket: " + errno_text());
  if (listen_side) {
    // A previous daemon instance's stale socket file would fail the bind;
    // the path is daemon-owned by convention, so replace it.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = errno_text();
      close_quiet(fd);
      throw ModelError("bind " + path + ": " + err);
    }
  } else {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = errno_text();
      close_quiet(fd);
      throw ModelError("connect " + path + ": " + err);
    }
  }
  return fd;
}

}  // namespace

// --- FdStreamBuf / FdStream ------------------------------------------------

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_, in_, in_);
  setp(out_, out_ + sizeof(out_));
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  // A session reads only after writing its previous reply, but flush
  // anyway: a protocol that ever pipelines must not deadlock on a full
  // write buffer while waiting for the next command.
  if (!flush_out()) return traits_type::eof();
  ssize_t n;
  do {
    n = ::recv(fd_, in_, sizeof(in_), 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_, in_, in_ + n);
  return traits_type::to_int_type(*gptr());
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_out()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_out() ? 0 : -1; }

bool FdStreamBuf::flush_out() {
  const char* p = pbase();
  std::size_t left = static_cast<std::size_t>(pptr() - pbase());
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  setp(out_, out_ + sizeof(out_));
  return true;
}

FdStream::FdStream(int fd) : std::iostream(nullptr), buf_(fd), fd_(fd) {
  rdbuf(&buf_);
}

// --- dial ------------------------------------------------------------------

int dial(const std::string& address) {
  if (address.empty()) throw ModelError("empty server address");
  if (address.find('/') != std::string::npos) {
    return unix_socket(address, /*listen_side=*/false);
  }
  std::string host = "127.0.0.1";
  std::string port = address;
  const std::size_t colon = address.rfind(':');
  if (colon != std::string::npos) {
    host = address.substr(0, colon);
    port = address.substr(colon + 1);
    if (host.empty() || host == "localhost") host = "127.0.0.1";
  }
  if (port.empty() ||
      port.find_first_not_of("0123456789") != std::string::npos) {
    throw ModelError("bad server address '" + address +
                     "' (expected a socket path, host:port, or port)");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    throw ModelError("resolve " + host + ": " + ::gai_strerror(gai));
  }
  int fd = -1;
  std::string err = "no address";
  for (const addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      err = errno_text();
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    err = errno_text();
    close_quiet(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) throw ModelError("connect " + address + ": " + err);
  return fd;
}

// --- Server ----------------------------------------------------------------

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {}

Server::~Server() { stop(); }

void Server::start() {
  FLEXRT_REQUIRE(!started_.load(), "server already started");
  FLEXRT_REQUIRE(opts_.socket_path.empty() != (opts_.port < 0),
                 "exactly one of socket_path / port must be set");
  if (!opts_.socket_path.empty()) {
    listen_fd_ = unix_socket(opts_.socket_path, /*listen_side=*/true);
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw ModelError("socket: " + errno_text());
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(static_cast<uint16_t>(opts_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      const std::string err = errno_text();
      close_quiet(listen_fd_);
      listen_fd_ = -1;
      throw ModelError("bind port " + std::to_string(opts_.port) + ": " + err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    tcp_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = errno_text();
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    throw ModelError("listen: " + err);
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    throw ModelError("pipe: " + errno_text());
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  stopping_.store(false);
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wake() {
  if (wake_write_ >= 0) {
    const char byte = 'w';
    ssize_t n;
    do {
      n = ::write(wake_write_, &byte, 1);
    } while (n < 0 && errno == EINTR);
  }
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      char buf[64];
      ssize_t n;
      do {
        n = ::read(wake_read_, buf, sizeof(buf));
      } while (n < 0 && errno == EINTR);
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    reap(/*all=*/false);
    if (fds[0].revents == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener gone (stop() raced us)
    }
    sessions_served_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->fd = fd;
    sys::MutexLock lock(mu_);
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { serve(*raw); });
  }
}

void Server::serve(Conn& conn) {
  {
    FdStream stream(conn.fd);
    proto::Session session(stream, opts_.max_line);
    session.run(stream);
  }
  conn.done.store(true, std::memory_order_release);
  wake();  // let the accept loop reap us promptly
}

void Server::reap(bool all) {
  std::vector<std::unique_ptr<Conn>> finished;
  {
    sys::MutexLock lock(mu_);
    if (all) {
      // Graceful drain: EOF every live session's read side. The session
      // thread finishes the command in flight (rows + status line go out
      // whole), then its next read returns EOF and it exits. The fd itself
      // is closed only after the join below -- no fd reuse races.
      for (const auto& conn : conns_) {
        if (!conn->done.load(std::memory_order_acquire)) {
          ::shutdown(conn->fd, SHUT_RD);
        }
      }
      finished.swap(conns_);
    } else {
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    close_quiet(conn->fd);
  }
}

void Server::stop() {
  if (!started_.exchange(false)) return;
  stopping_.store(true, std::memory_order_relaxed);
  wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  close_quiet(listen_fd_);
  listen_fd_ = -1;
  if (!opts_.socket_path.empty()) ::unlink(opts_.socket_path.c_str());
  reap(/*all=*/true);
  close_quiet(wake_read_);
  close_quiet(wake_write_);
  wake_read_ = wake_write_ = -1;
}

}  // namespace flexrt::net
