#include "net/proto.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "gen/taskset_gen.hpp"
#include "io/task_io.hpp"
#include "svc/memo_cache.hpp"
#include "svc/rows.hpp"
#include "svc/study_report.hpp"

namespace flexrt::net::proto {

bool parse_triple(const std::string& spec, double& a, double& b, double& c) {
  std::istringstream in(spec);
  char c1 = 0, c2 = 0;
  return static_cast<bool>(in >> a >> c1 >> b >> c2 >> c) && c1 == ',' &&
         c2 == ',';
}

double parse_num(const char* flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos == v.size()) return out;
  } catch (const std::exception&) {
  }
  throw ModelError(std::string(flag) + ": bad number '" + v + "'");
}

std::size_t parse_size(const char* flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const unsigned long long out = std::stoull(v, &pos, 10);
    if (pos == v.size()) return static_cast<std::size_t>(out);
  } catch (const std::exception&) {
  }
  throw ModelError(std::string(flag) + ": bad count '" + v + "'");
}

std::vector<double> parse_num_list(const char* flag, const std::string& spec) {
  std::vector<double> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', start);
    out.push_back(parse_num(flag, spec.substr(start, comma - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int parse_common_flag(CommonOpts& o, int argc, char** argv, int& i) {
  const std::string a = argv[i];
  const auto next = [&]() -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  if (a == "--alg") {
    const char* v = next();
    if (!v) return 2;
    if (std::strcmp(v, "edf") == 0) {
      o.alg = hier::Scheduler::EDF;
    } else if (std::strcmp(v, "rm") == 0) {
      o.alg = hier::Scheduler::FP;
    } else {
      return 2;
    }
    return 0;
  }
  if (a == "--goal") {
    const char* v = next();
    if (!v) return 2;
    if (std::strcmp(v, "min-overhead") == 0) {
      o.goal = core::DesignGoal::MinOverheadBandwidth;
    } else if (std::strcmp(v, "max-slack") == 0) {
      o.goal = core::DesignGoal::MaxSlackBandwidth;
    } else {
      return 2;
    }
    return 0;
  }
  if (a == "--overhead") {
    const char* v = next();
    if (!v ||
        !parse_triple(v, o.overheads.ft, o.overheads.fs, o.overheads.nf)) {
      return 2;
    }
    return 0;
  }
  if (a == "--adaptive") {
    const char* v = next();
    if (!v) return 2;
    o.adaptive_tol = parse_num("--adaptive", v);
    return 0;
  }
  if (a == "--budget") {
    const char* v = next();
    if (!v) return 2;
    o.budget = parse_size("--budget", v);
    return 0;
  }
  if (a == "--budget-cap") {
    const char* v = next();
    if (!v) return 2;
    o.budget_cap = parse_size("--budget-cap", v);
    return 0;
  }
  if (a == "--deadline") {
    const char* v = next();
    if (!v) return 2;
    o.deadline_ms = parse_num("--deadline", v);
    return 0;
  }
  if (a == "--jsonl") {
    o.jsonl = true;
    return 0;
  }
  if (a == "--csv") {
    o.csv = true;
    return 0;
  }
  if (a == "--stream") {
    o.stream = true;
    return 0;
  }
  if (a == "--no-wall") {
    o.no_wall = true;
    return 0;
  }
  if (a == "--output") {
    const char* v = next();
    if (!v || !*v) return 2;
    o.output = v;
    return 0;
  }
  if (a == "--resume") {
    o.resume = true;
    return 0;
  }
  if (a == "--retries") {
    const char* v = next();
    if (!v) return 2;
    o.retries = parse_size("--retries", v);
    return 0;
  }
  if (a == "--fsync") {
    o.fsync = true;
    return 0;
  }
  return -1;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

std::optional<std::string> read_line(std::istream& in, std::size_t max_bytes,
                                     bool* truncated) {
  if (truncated) *truncated = false;
  std::streambuf* sb = in.rdbuf();
  if (!sb || !in.good()) return std::nullopt;
  std::string line;
  bool got = false;
  for (;;) {
    const int c = sb->sbumpc();
    if (c == std::char_traits<char>::eof()) {
      in.setstate(std::ios::eofbit);
      break;
    }
    got = true;
    if (c == '\n') break;
    if (line.size() < max_bytes) {
      line.push_back(static_cast<char>(c));
    } else if (truncated) {
      // Keep consuming to the newline so framing survives the oversized
      // line, but stop storing: bounded memory against hostile input.
      *truncated = true;
    }
  }
  if (!got) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

std::optional<WireStatus> parse_status_line(const std::string& line) {
  WireStatus st;
  if (line.rfind("error", 0) == 0 &&
      (line.size() == 5 || line[5] == ' ')) {
    st.failed = true;
    st.rc = 2;
    st.message = line.size() > 6 ? line.substr(6) : "";
    return st;
  }
  if (line.rfind("ok rc=", 0) == 0) {
    const std::string rest = line.substr(6);
    const std::size_t end = rest.find(' ');
    try {
      std::size_t pos = 0;
      const std::string num = rest.substr(0, end);
      st.rc = std::stoi(num, &pos);
      if (pos == num.size() && !num.empty()) return st;
    } catch (const std::exception&) {
    }
  }
  return std::nullopt;
}

namespace {

void reject_offline_flags(const CommonOpts& o) {
  if (o.csv) {
    throw ModelError("--csv is not supported over the wire (rows are JSONL)");
  }
  if (o.journaled() || o.resume || o.retries != 0 || o.fsync) {
    throw ModelError(
        "journal flags (--output/--resume/--retries/--fsync) are offline-only");
  }
}

/// Shared flag loop of every request command: common flags via
/// parse_common_flag, command-specific ones via `extra(raw, argc, i)`,
/// anything else is an error. Bare tokens are rejected too -- wire fleets
/// are built with `add`/`gen-fleet`, never from positional file paths.
template <typename Extra>
void parse_wire_flags(CommonOpts& o, const std::vector<std::string>& args,
                      const Extra& extra) {
  ArgVec av(args);
  const int argc = av.argc();
  char** raw = av.argv();
  for (int i = 0; i < argc; ++i) {
    const std::string a = raw[i];
    const int c = parse_common_flag(o, argc, raw, i);
    if (c == 0) continue;
    if (c == 2) throw ModelError("bad or incomplete flag '" + a + "'");
    if (extra(raw, argc, i)) continue;
    if (!a.empty() && a[0] == '-') throw ModelError("unknown flag '" + a + "'");
    throw ModelError("unexpected argument '" + a +
                     "' (systems are added with `add`, not file paths)");
  }
  reject_offline_flags(o);
}

const auto kNoExtraFlags = [](char**, int, int&) { return false; };

/// One-line sanitizer for `error` status lines: the message must not break
/// the line-oriented framing.
std::string one_line(std::string msg) {
  std::replace(msg.begin(), msg.end(), '\n', ' ');
  std::replace(msg.begin(), msg.end(), '\r', ' ');
  return msg;
}

}  // namespace

Session::Session(std::ostream& out, std::size_t max_line)
    : out_(out),
      max_line_(max_line),
      service_(std::make_unique<svc::AnalysisService>()) {}

Session::~Session() = default;

std::size_t Session::fleet_size() const noexcept { return service_->size(); }

void Session::ok_line(int rc, const std::string& extras) {
  out_ << "ok rc=" << rc;
  if (!extras.empty()) out_ << ' ' << extras;
  out_ << '\n' << std::flush;
}

void Session::error_line(const std::string& message) {
  out_ << "error " << one_line(message) << '\n' << std::flush;
}

void Session::require_fleet() const {
  if (service_->size() == 0) {
    throw ModelError("the fleet is empty -- `add` or `gen-fleet` first");
  }
}

int Session::run(std::istream& in) {
  int rc = 0;
  for (;;) {
    bool truncated = false;
    const std::optional<std::string> line = read_line(in, max_line_, &truncated);
    if (!line) break;
    if (truncated) {
      error_line("line exceeds " + std::to_string(max_line_) +
                 " bytes -- command rejected");
      rc = std::max(rc, 2);
      if (!out_) break;
      continue;
    }
    bool quit = false;
    rc = std::max(rc, handle_line(*line, in, quit));
    if (quit || !out_) break;
  }
  return rc;
}

int Session::handle_line(const std::string& line, std::istream& in,
                         bool& quit) {
  quit = false;
  const std::vector<std::string> tokens = split_tokens(line);
  if (tokens.empty()) return 0;  // blank lines are keep-alive no-ops
  try {
    return dispatch(tokens, in, quit);
  } catch (const Error& e) {
    error_line(e.what());
    return 2;
  } catch (const std::exception& e) {
    error_line(e.what());
    return 2;
  }
}

int Session::dispatch(const std::vector<std::string>& tokens, std::istream& in,
                      bool& quit) {
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "quit") {
    quit = true;
    ok_line(0, "bye");
    return 0;
  }
  if (cmd == "add") return cmd_add(args, in);
  if (cmd == "gen-fleet") return cmd_gen_fleet(args);
  if (cmd == "solve") return cmd_solve(args);
  if (cmd == "minq") return cmd_minq(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "verify") return cmd_verify(args);
  if (cmd == "fault-sweep") return cmd_fault_sweep(args);
  if (cmd == "status") return cmd_status(args);
  if (cmd == "drop") {
    service_ = std::make_unique<svc::AnalysisService>();
    generated_ = false;
    study_ = core::StudyOptions{};
    ok_line(0, "fleet=0");
    return 0;
  }
  throw ModelError("unknown command '" + cmd + "'");
}

int Session::cmd_add(const std::vector<std::string>& args, std::istream& in) {
  if (args.size() != 1) {
    throw ModelError("usage: add <name>, then task lines, then a lone '.'");
  }
  const std::string& name = args[0];
  std::string text;
  std::size_t lines = 0;
  for (;;) {
    bool truncated = false;
    const std::optional<std::string> line = read_line(in, max_line_, &truncated);
    if (!line) {
      throw ModelError("add " + name +
                       ": stream ended before the terminating '.'");
    }
    if (truncated) {
      throw ModelError("add " + name + ": task line exceeds " +
                       std::to_string(max_line_) + " bytes");
    }
    if (*line == ".") break;
    if (++lines > kMaxAddLines) {
      throw ModelError("add " + name + ": more than " +
                       std::to_string(kMaxAddLines) + " task lines");
    }
    text += *line;
    text += '\n';
  }
  io::ParsedSystem parsed = io::parse_mode_task_system_string(text);
  service_->add_system(std::move(parsed.system), name);
  generated_ = false;  // the fleet is no longer a pure generated study
  ok_line(0, "fleet=" + std::to_string(service_->size()));
  return 0;
}

int Session::cmd_gen_fleet(const std::vector<std::string>& args) {
  if (service_->size() != 0) {
    throw ModelError(
        "gen-fleet needs an empty fleet (`drop` first): generated studies "
        "must not mix with added systems");
  }
  core::StudyOptions study;  // trials=100, seed=0x5EED -- the study defaults
  ArgVec av(args);
  const int argc = av.argc();
  char** raw = av.argv();
  for (int i = 0; i < argc; ++i) {
    if (core::parse_study_flag(study, argc, raw, i)) continue;
    throw ModelError(std::string("gen-fleet: unknown flag '") + raw[i] + "'");
  }
  service_->add_fleet(
      study, [](std::size_t, Rng& rng) { return gen::study_system(rng); });
  generated_ = true;
  study_ = study;
  ok_line(0, "fleet=" + std::to_string(service_->size()) +
                 " trials=" + std::to_string(study.trials));
  return 0;
}

int Session::cmd_solve(const std::vector<std::string>& args) {
  // --study is discovered before flag parsing so the study defaults
  // (paper's O_tot = 0.05 split evenly) seed CommonOpts exactly like the
  // offline `study` subcommand does.
  const bool study_mode =
      std::find(args.begin(), args.end(), "--study") != args.end();
  CommonOpts o;
  if (study_mode) o.overheads = {0.05 / 3, 0.05 / 3, 0.05 / 3};
  parse_wire_flags(o, args, [](char** raw, int, int& i) {
    return std::strcmp(raw[i], "--study") == 0;
  });
  require_fleet();

  svc::JsonlWriter rows(out_);
  if (study_mode) {
    if (!generated_) {
      throw ModelError("solve --study needs a gen-fleet fleet");
    }
    core::SearchOptions search;
    search.grid_step = 5e-3;  // the offline study subcommand's search grid
    search.p_max = 10.0;
    const svc::SolveRequest req{o.alg, o.overheads, o.goal, search,
                                o.accuracy()};
    svc::StudyAggregate agg;
    service_->solve(req, [&](const svc::SolveResult& r) {
      const std::string row = svc::study_trial_row(r, o.alg, o.goal);
      rows.write(row);
      agg.add(row);
    });
    // Shards emit rows only; the merged/unsharded report owns the summary.
    if (study_.shard.count == 1) rows.write(agg.summary_row());
    ok_line(0);
    return 0;
  }

  const svc::SolveRequest req{o.alg, o.overheads, o.goal, {}, o.accuracy()};
  int rc = 0;
  service_->solve(req, [&](const svc::SolveResult& r) {
    if (!r.ok()) throw ModelError(r.error);
    rows.write(svc::solve_row(r, o.alg, o.goal, /*with_wall=*/false));
    if (!r.feasible) rc = std::max(rc, 1);
  });
  ok_line(rc);
  return rc;
}

int Session::cmd_minq(const std::vector<std::string>& args) {
  CommonOpts o;
  double period = 0.0;
  bool exact_supply = false;
  parse_wire_flags(o, args, [&](char** raw, int argc, int& i) {
    if (std::strcmp(raw[i], "--period") == 0) {
      if (i + 1 >= argc) throw ModelError("--period: missing value");
      period = parse_num("--period", raw[++i]);
      return true;
    }
    if (std::strcmp(raw[i], "--exact-supply") == 0) {
      exact_supply = true;
      return true;
    }
    return false;
  });
  if (period <= 0.0) throw ModelError("minq needs --period P > 0");
  require_fleet();

  const svc::MinQuantumRequest req{o.alg, period, exact_supply, o.accuracy()};
  svc::JsonlWriter rows(out_);
  service_->min_quantum(req, [&](const svc::MinQuantumResult& r) {
    if (!r.ok()) throw ModelError(r.error);
    rows.write(svc::min_quantum_row(r, o.alg, period, /*with_wall=*/false));
  });
  ok_line(0);
  return 0;
}

int Session::cmd_sweep(const std::vector<std::string>& args) {
  CommonOpts o;
  core::SearchOptions search;
  search.p_min = 0.05;  // the offline sweep subcommand's grid
  search.p_max = 3.5;
  search.grid_step = 0.05;
  parse_wire_flags(o, args, [&](char** raw, int argc, int& i) {
    const auto take = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw ModelError(std::string(flag) + ": missing value");
      }
      return raw[++i];
    };
    if (std::strcmp(raw[i], "--p-min") == 0) {
      search.p_min = parse_num("--p-min", take("--p-min"));
      return true;
    }
    if (std::strcmp(raw[i], "--p-max") == 0) {
      search.p_max = parse_num("--p-max", take("--p-max"));
      return true;
    }
    if (std::strcmp(raw[i], "--step") == 0) {
      search.grid_step = parse_num("--step", take("--step"));
      return true;
    }
    return false;
  });
  require_fleet();

  const svc::RegionSweepRequest req{o.alg, search, o.accuracy()};
  svc::JsonlWriter rows(out_);
  service_->region_sweep(req, [&](const svc::RegionSweepResult& r) {
    if (!r.ok()) throw ModelError(r.error);
    for (const core::RegionSample& s : r.samples) {
      rows.write(svc::sweep_sample_row(r, o.alg, s));
    }
    rows.write(svc::sweep_summary_row(r, o.alg, /*with_wall=*/false));
  });
  ok_line(0);
  return 0;
}

int Session::cmd_verify(const std::vector<std::string>& args) {
  CommonOpts o;
  double period = 0.0;
  double q_ft = 0.0, q_fs = 0.0, q_nf = 0.0;
  bool have_quanta = false;
  bool exact_supply = false;
  parse_wire_flags(o, args, [&](char** raw, int argc, int& i) {
    if (std::strcmp(raw[i], "--period") == 0) {
      if (i + 1 >= argc) throw ModelError("--period: missing value");
      period = parse_num("--period", raw[++i]);
      return true;
    }
    if (std::strcmp(raw[i], "--quanta") == 0) {
      if (i + 1 >= argc || !parse_triple(raw[i + 1], q_ft, q_fs, q_nf)) {
        throw ModelError("--quanta: expected Q_FT,Q_FS,Q_NF");
      }
      ++i;
      have_quanta = true;
      return true;
    }
    if (std::strcmp(raw[i], "--exact-supply") == 0) {
      exact_supply = true;
      return true;
    }
    return false;
  });
  if (period <= 0.0 || !have_quanta) {
    throw ModelError("verify needs --period P > 0 and --quanta Q_FT,Q_FS,Q_NF");
  }
  require_fleet();

  core::ModeSchedule schedule;
  schedule.period = period;
  schedule.ft = {q_ft, o.overheads.ft};
  schedule.fs = {q_fs, o.overheads.fs};
  schedule.nf = {q_nf, o.overheads.nf};

  svc::JsonlWriter rows(out_);
  int rc = 0;
  service_->verify(
      svc::VerifyRequest{o.alg, schedule, exact_supply, o.accuracy()},
      [&](const svc::VerifyResult& r) {
        if (!r.ok()) throw ModelError(r.error);
        rows.write(svc::verify_row(r, o.alg, period, /*with_wall=*/false));
        if (!r.schedulable) rc = 1;
      });
  ok_line(rc);
  return rc;
}

int Session::cmd_fault_sweep(const std::vector<std::string>& args) {
  CommonOpts o;
  o.overheads = {0.05 / 3, 0.05 / 3, 0.05 / 3};  // paper's O_tot = 0.05
  svc::FaultSweepRequest req;
  req.rates = {0.0, 1e-3, 1e-2, 0.1, 1.0};
  parse_wire_flags(o, args, [&](char** raw, int argc, int& i) {
    if (std::strcmp(raw[i], "--rates") == 0) {
      if (i + 1 >= argc) throw ModelError("--rates: missing value");
      req.rates = parse_num_list("--rates", raw[++i]);
      return true;
    }
    if (std::strcmp(raw[i], "--min-sep") == 0) {
      if (i + 1 >= argc) throw ModelError("--min-sep: missing value");
      req.min_separation = parse_num("--min-sep", raw[++i]);
      return true;
    }
    if (std::strcmp(raw[i], "--no-baselines") == 0) {
      req.with_baselines = false;
      return true;
    }
    if (std::strcmp(raw[i], "--exact-supply") == 0) {
      req.use_exact_supply = true;
      return true;
    }
    return false;
  });
  require_fleet();

  if (generated_) {
    req.search.grid_step = 5e-3;  // the generated-fleet search grid
    req.search.p_max = 10.0;
  }
  req.alg = o.alg;
  req.overheads = o.overheads;
  req.goal = o.goal;
  req.accuracy = o.accuracy();

  svc::JsonlWriter rows(out_);
  int rc = 0;
  service_->fault_sweep(req, [&](const svc::FaultSweepResult& r) {
    if (!r.ok()) {
      // Error entries emit their one summary row only: partially computed
      // points must not masquerade as sweep output.
      rows.write(svc::fault_sweep_summary_row(r, o.alg));
      rc = std::max(rc, 1);
      return;
    }
    for (const svc::FaultRatePoint& p : r.points) {
      rows.write(svc::fault_point_row(r, p, o.alg, req.with_baselines));
    }
    if (!r.feasible) rc = std::max(rc, 1);
    rows.write(svc::fault_sweep_summary_row(r, o.alg));
  });
  ok_line(rc);
  return rc;
}

int Session::cmd_status(const std::vector<std::string>& args) {
  bool with_memo = false;
  for (const std::string& a : args) {
    if (a == "--memo") {
      with_memo = true;
    } else {
      throw ModelError("usage: status [--memo]");
    }
  }
  svc::JsonRow row;
  row.field("kind", "status")
      .field("fleet", service_->size())
      .field("generated", generated_);
  if (generated_) {
    row.field("trials", study_.trials)
        .field("shard_index", study_.shard.index)
        .field("shard_count", study_.shard.count);
  }
  row.field("threads", par::thread_count())
      .field("max_line", max_line_);
  if (with_memo) {
    // Process-wide memo effectiveness (spec in tools/README.md): sessions
    // own private fleets but share the content-addressed answer cache, so
    // these counters tell an operator how much daemon traffic
    // deduplicates. Opt-in: the counters are cumulative across every
    // session of the process, so a plain `status` stays byte-stable for
    // the deterministic-transcript contracts (and pre-cache clients).
    const svc::MemoStats memo = svc::global_memo().stats();
    row.field("memo_enabled", memo.enabled)
        .field("memo_hits", memo.hits)
        .field("memo_misses", memo.misses)
        .field("memo_evictions", memo.evictions)
        .field("memo_entries", memo.entries)
        .field("memo_bytes", memo.bytes);
  }
  svc::JsonlWriter rows(out_);
  rows.write(row);
  ok_line(0, "fleet=" + std::to_string(service_->size()));
  return 0;
}

}  // namespace flexrt::net::proto
