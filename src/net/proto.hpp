#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/design.hpp"
#include "core/integration.hpp"
#include "core/study_runner.hpp"
#include "hier/sched_test.hpp"
#include "svc/analysis_service.hpp"
#include "svc/journal.hpp"

namespace flexrt::net::proto {

/// The flexrtd wire protocol: a line-oriented command language over any
/// iostream pair -- a socket in the daemon, stringstreams in the unit
/// tests. One tested contract serves every front-end (the MAGPIE
/// cmd_api pattern): the offline flexrt_design subcommands, the resident
/// daemon, and the `flexrt_design remote` client all parse flags with the
/// same CommonOpts machinery and render rows with the same svc/rows
/// renderers, so their reports are byte-identical by construction (and
/// CI-diffed to stay that way).
///
/// Framing (all lines '\n'-terminated, CRLF tolerated):
///
///   client -> server: one command per line,
///       add <name>            followed by task-file lines, ended by "."
///       gen-fleet [--trials N] [--seed S] [--shard k/N]
///       solve  [--study] [common flags]
///       minq   --period P [--exact-supply] [common flags]
///       sweep  [--p-min P] [--p-max P] [--step dP] [common flags]
///       verify --period P --quanta a,b,c [--exact-supply] [common flags]
///       fault-sweep [--rates r1,r2,..] [--min-sep S] [--no-baselines]
///                   [--exact-supply] [common flags]
///       drop | status [--memo] | quit
///
///   server -> client: zero or more JSONL data rows (lines starting with
///       '{', byte-identical to the offline subcommand's --jsonl --no-wall
///       report), then exactly one status line:
///       ok rc=<N> [key=value ...]     command done, offline exit code N
///       error <message>               command failed (offline exit code 2);
///                                     the session stays usable
///
/// Wire rows are always JSONL and always wall-free: remote reports must be
/// deterministic so clients, tests and CI can byte-diff them against the
/// offline tool. --jsonl/--stream/--no-wall are therefore accepted as
/// no-ops; --csv and the journal flags are rejected (they are offline
/// concerns). Sessions are independent: each owns its fleet, while all of
/// them share the process-wide par::parallel_for pool. Results stream to
/// the client in entry order through the same svc ResultSink /
/// par::ordered_stream path as --stream, so per-client memory stays
/// bounded by the reorder window, not the fleet size.

/// Hard cap on one wire line. Longer lines are consumed to their newline
/// (framing survives) but reported truncated, and the command is rejected
/// -- a hostile client cannot balloon session memory.
inline constexpr std::size_t kMaxLineBytes = std::size_t{1} << 16;

/// Hard cap on the task lines of one `add` block.
inline constexpr std::size_t kMaxAddLines = std::size_t{1} << 20;

/// Strict numeric flag values: the whole token must parse, so typos like
/// "--budget 64k" or "--adaptive xyz" are input errors (offline exit 2 /
/// wire `error`), not silently truncated values.
double parse_num(const char* flag, const std::string& v);
std::size_t parse_size(const char* flag, const std::string& v);

/// "a,b,c" -> three doubles; returns false on malformed input.
bool parse_triple(const std::string& spec, double& a, double& b, double& c);

/// Comma-separated strict numbers ("0,0.01,0.1"); every token must parse
/// (parse_num), so a malformed list throws naming the flag.
std::vector<double> parse_num_list(const char* flag, const std::string& spec);

/// Re-exposes tokenized arguments in the argc/argv shape the shared flag
/// parsers (parse_common_flag, core::parse_study_flag) consume.
struct ArgVec {
  explicit ArgVec(const std::vector<std::string>& args) : owned(args) {
    for (std::string& s : owned) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> owned;
  std::vector<char*> ptrs;
};

/// Flags shared by every analysis request -- one parser for the offline
/// subcommands, the wire protocol, and the remote client, so the three
/// fronts cannot drift. The accuracy knobs are kept as raw fields so
/// --budget/--budget-cap/--adaptive compose in any flag order; accuracy()
/// assembles the policy after parsing.
struct CommonOpts {
  std::vector<std::string> files;
  hier::Scheduler alg = hier::Scheduler::EDF;
  core::DesignGoal goal = core::DesignGoal::MinOverheadBandwidth;
  core::Overheads overheads{0.0, 0.0, 0.0};
  double adaptive_tol = -1.0;  ///< >= 0: adaptive accuracy requested
  std::size_t budget = 0;      ///< fixed budget / ladder seed; 0 = default
  std::size_t budget_cap = 0;  ///< adaptive ladder cap; 0 = default
  double deadline_ms = 0.0;    ///< per-entry wall budget; > 0 activates
  bool jsonl = false;
  bool csv = false;
  bool stream = false;  ///< stream rows as entries finish (study, sweep)
  bool no_wall = false;  ///< omit wall_ms from JSONL rows (deterministic
                         ///< output -- what the wire always does)
  std::string output;   ///< journaled run target file ("" = stdout report)
  bool resume = false;  ///< recover an interrupted journal before running
  std::size_t retries = 0;  ///< extra executions per failing entry
  bool fsync = false;       ///< fsync the journal after every entry

  svc::AccuracyPolicy accuracy() const {
    svc::AccuracyPolicy p;
    if (adaptive_tol < 0.0) {
      p = svc::AccuracyPolicy::fixed(budget);
    } else {
      p = svc::AccuracyPolicy::adaptive(adaptive_tol);
      if (budget) p.initial_points = budget;
      if (budget_cap) p.max_points = budget_cap;
    }
    if (deadline_ms > 0.0) p = p.with_deadline(deadline_ms);
    return p;
  }

  bool journaled() const noexcept { return !output.empty(); }

  /// The journal knobs require --output; true when the combination parses.
  /// Journaled reports are JSONL by construction, so --output implies
  /// --jsonl (checked by the caller after parsing, hence non-const).
  bool finish_journal_flags() {
    if (!journaled()) return !resume && retries == 0 && !fsync;
    jsonl = true;
    return true;
  }

  svc::JournalOptions journal_options() const {
    svc::JournalOptions jopts;
    jopts.resume = resume;
    jopts.fsync_per_entry = fsync;
    jopts.retry.max_attempts = retries + 1;
    return jopts;
  }
};

/// Consumes one shared flag at argv[i]; returns -1 when the flag did not
/// match, 0 on success, 2 on a malformed value.
int parse_common_flag(CommonOpts& o, int argc, char** argv, int& i);

/// Splits a command line into whitespace-separated tokens.
std::vector<std::string> split_tokens(const std::string& line);

/// Reads one '\n'-terminated line (CR stripped), consuming but not storing
/// bytes past `max_bytes` and reporting the overflow via *truncated.
/// Returns nullopt on end-of-stream with nothing read. A final unterminated
/// line is returned as-is (stdin-style tolerance; the socket framing always
/// terminates lines).
std::optional<std::string> read_line(std::istream& in, std::size_t max_bytes,
                                     bool* truncated);

/// A parsed server status line: `ok rc=<N> ...` or `error <message>`.
/// Returns nullopt for anything else (i.e. a data row).
struct WireStatus {
  bool failed = false;  ///< true for `error` lines
  int rc = 0;           ///< offline exit code (2 for `error` lines)
  std::string message;  ///< the `error` line's text
};
std::optional<WireStatus> parse_status_line(const std::string& line);

/// One protocol session: owns a per-client fleet (svc::AnalysisService),
/// executes commands read from an istream, and writes data rows plus
/// status lines to an ostream. Transport-agnostic by construction -- the
/// unit tests drive it over stringstreams, the server over socket streams.
class Session {
 public:
  explicit Session(std::ostream& out, std::size_t max_line = kMaxLineBytes);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Reads and executes commands until `quit`, end-of-stream, or a dead
  /// output stream. Returns the maximum per-command rc seen (0 when every
  /// command succeeded) -- the session-level exit code `remote` reports.
  int run(std::istream& in);

  /// Executes one already-read command line (an `add` block's body lines
  /// are read from `in`). Returns the command's rc and sets `quit` on the
  /// quit command. Never throws: failures become `error` status lines.
  int handle_line(const std::string& line, std::istream& in, bool& quit);

  std::size_t fleet_size() const noexcept;

 private:
  int dispatch(const std::vector<std::string>& tokens, std::istream& in,
               bool& quit);
  int cmd_add(const std::vector<std::string>& args, std::istream& in);
  int cmd_gen_fleet(const std::vector<std::string>& args);
  int cmd_solve(const std::vector<std::string>& args);
  int cmd_minq(const std::vector<std::string>& args);
  int cmd_sweep(const std::vector<std::string>& args);
  int cmd_verify(const std::vector<std::string>& args);
  int cmd_fault_sweep(const std::vector<std::string>& args);
  int cmd_status(const std::vector<std::string>& args);

  void require_fleet() const;
  void ok_line(int rc, const std::string& extras = {});
  void error_line(const std::string& message);

  std::ostream& out_;
  std::size_t max_line_;
  std::unique_ptr<svc::AnalysisService> service_;
  bool generated_ = false;     ///< fleet came from gen-fleet (pure)
  core::StudyOptions study_{};  ///< the gen-fleet options (when generated_)
};

}  // namespace flexrt::net::proto
