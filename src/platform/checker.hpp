#pragma once

#include <cstddef>
#include <cstdint>

#include "rt/task.hpp"

namespace flexrt::platform {

/// Number of cores of the platform (paper Fig. 1).
inline constexpr std::size_t kNumCores = 4;

/// Identifier of one core, 0..3.
using CoreId = std::size_t;

/// Bitmask over cores (bit c = core c).
using CoreMask = std::uint8_t;

/// Cores forming channel `channel` in a given mode (paper §2.4):
///   FT: one channel {0,1,2,3};  FS: {0,1} and {2,3};  NF: {c} each.
CoreMask channel_cores(rt::Mode mode, std::size_t channel) noexcept;

/// Channel that core `core` belongs to in a given mode.
std::size_t core_channel(rt::Mode mode, CoreId core) noexcept;

/// Verdict of the checker when a channel presents its outputs.
enum class Verdict {
  Ok,        ///< all replicas agree, output forwarded to the bus
  Masked,    ///< disagreement out-voted by the majority (FT channel)
  Silenced,  ///< disagreement detected, bus access blocked (FS channel)
  Corrupt,   ///< no replication: wrong value reaches the bus (NF channel)
};

const char* to_string(Verdict verdict) noexcept;

/// The checker of the paper's platform (Fig. 1): compares the outputs of the
/// cores of a channel and decides what reaches the bus. `faulty` is the set
/// of cores whose execution was corrupted by a transient fault; the checker
/// sees only the resulting output disagreement.
///
/// FT (4-way redundant lock-step): a strict majority of correct replicas
/// masks the fault. With >= 2 faulty cores the vote is unsafe and the
/// channel is silenced instead (cannot happen under the single-transient-
/// fault assumption, but the logic is total).
/// FS (2-way lock-step): any disagreement silences the channel.
/// NF: the single core's output is forwarded unchecked.
Verdict evaluate(rt::Mode mode, std::size_t channel, CoreMask faulty) noexcept;

}  // namespace flexrt::platform
