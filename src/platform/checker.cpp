#include "platform/checker.hpp"

#include <bit>

namespace flexrt::platform {

CoreMask channel_cores(rt::Mode mode, std::size_t channel) noexcept {
  switch (mode) {
    case rt::Mode::FT:
      return 0b1111;
    case rt::Mode::FS:
      return channel == 0 ? CoreMask{0b0011} : CoreMask{0b1100};
    case rt::Mode::NF:
      return static_cast<CoreMask>(1u << channel);
  }
  return 0;
}

std::size_t core_channel(rt::Mode mode, CoreId core) noexcept {
  switch (mode) {
    case rt::Mode::FT:
      return 0;
    case rt::Mode::FS:
      return core / 2;
    case rt::Mode::NF:
      return core;
  }
  return 0;
}

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::Ok:
      return "ok";
    case Verdict::Masked:
      return "masked";
    case Verdict::Silenced:
      return "silenced";
    case Verdict::Corrupt:
      return "corrupt";
  }
  return "?";
}

Verdict evaluate(rt::Mode mode, std::size_t channel, CoreMask faulty) noexcept {
  const CoreMask members = channel_cores(mode, channel);
  const int bad = std::popcount(static_cast<unsigned>(members & faulty));
  if (bad == 0) return Verdict::Ok;
  switch (mode) {
    case rt::Mode::FT:
      // 4 replicas: a single bad replica is out-voted 3:1. Two or more bad
      // replicas leave no strict majority we can trust -> fail silent.
      return bad == 1 ? Verdict::Masked : Verdict::Silenced;
    case rt::Mode::FS:
      return Verdict::Silenced;
    case rt::Mode::NF:
      return Verdict::Corrupt;
  }
  return Verdict::Corrupt;
}

}  // namespace flexrt::platform
