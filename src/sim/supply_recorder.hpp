#pragma once

#include <vector>

#include "common/sim_time.hpp"

namespace flexrt::sim {

/// Records the time intervals during which a partition was actually allowed
/// to execute, and answers "what was the minimum service delivered in any
/// window of length t?" — the empirical counterpart of the supply function
/// Z(t) (paper Def. 1). Property tests check that the measured minimum
/// dominates the analytical lower bound.
class SupplyRecorder {
 public:
  /// Appends a service interval [begin, end); intervals must be appended in
  /// non-decreasing order of begin and must not overlap.
  void add(Ticks begin, Ticks end);

  /// Total recorded service time.
  Ticks total() const noexcept;

  /// Service delivered inside [from, to).
  Ticks supplied_in(Ticks from, Ticks to) const noexcept;

  /// Minimum service over every window of length `window` fully contained
  /// in [0, horizon). For a piecewise-linear cumulative supply, the minimum
  /// is attained with the window starting at the end of a service interval
  /// (or at 0), so only those candidates are evaluated.
  Ticks min_window_supply(Ticks window, Ticks horizon) const noexcept;

  std::size_t num_intervals() const noexcept { return intervals_.size(); }

 private:
  struct Interval {
    Ticks begin;
    Ticks end;
  };
  std::vector<Interval> intervals_;
};

}  // namespace flexrt::sim
