#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "rt/task.hpp"

namespace flexrt::sim {

/// Kinds of events a simulation trace can record.
enum class TraceKind : std::uint8_t {
  Release,       ///< a job arrived
  Start,         ///< a job got the channel (first time or after preemption)
  Preempt,       ///< a running job was displaced by a higher-priority one
  Suspend,       ///< the mode's window closed under a running job
  Complete,      ///< a job finished and passed the checker
  Silence,       ///< the checker blocked a job's output (fail-silent)
  Kill,          ///< the kill-on-miss policy aborted a job
  DeadlineMiss,  ///< a job was still pending at its deadline
  WindowOpen,    ///< a mode's usable window opened
  WindowClose,   ///< a mode's usable window closed
  Fault,         ///< a transient fault struck a core
};

const char* to_string(TraceKind kind) noexcept;

/// One trace record. `who` is a task name for job events, a mode name for
/// window events, empty for faults; `detail` carries the channel id for job
/// events and the core id for faults.
struct TraceEvent {
  Ticks time = 0;
  TraceKind kind = TraceKind::Release;
  std::string who;
  std::int64_t detail = -1;
};

/// Bounded in-memory event recorder. Recording stops silently once the
/// capacity is reached (the counter keeps counting), so enabling tracing on
/// a long run cannot exhaust memory.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 0) : capacity_(capacity) {}

  void record(Ticks time, TraceKind kind, std::string who,
              std::int64_t detail = -1);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::uint64_t total_recorded() const noexcept { return total_; }
  bool truncated() const noexcept { return total_ > events_.size(); }
  bool enabled() const noexcept { return capacity_ > 0; }

  /// One line per event: "[time] kind who (detail)".
  void print(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t total_ = 0;
};

}  // namespace flexrt::sim
