#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "common/error.hpp"
#include "rt/priority.hpp"

namespace flexrt::sim {
namespace {

constexpr std::size_t mode_index(rt::Mode mode) noexcept {
  return static_cast<std::size_t>(mode);
}

}  // namespace

Simulator::Simulator(const core::ModeTaskSystem& system,
                     const core::ModeSchedule& schedule,
                     const SimOptions& options)
    : Simulator(system, FrameLayout(schedule), options) {}

Simulator::Simulator(const core::ModeTaskSystem& system,
                     const core::GeneralFrame& frame,
                     const SimOptions& options)
    : Simulator(system, FrameLayout(frame), options) {}

Simulator::Simulator(const core::ModeTaskSystem& system, FrameLayout frame,
                     const SimOptions& options)
    : options_(options),
      frame_(std::move(frame)),
      rng_(options.seed),
      trace_(options.trace_capacity) {
  FLEXRT_REQUIRE(options.horizon > 0.0, "simulation horizon must be > 0");
  horizon_ = to_ticks(options.horizon);

  // Flatten the per-mode channel partitions into the task/channel tables.
  for (const rt::Mode mode : core::kAllModes) {
    first_channel_[mode_index(mode)] = channels_.size();
    std::size_t index_in_mode = 0;
    for (const rt::TaskSet& partition : system.partitions(mode)) {
      channels_.push_back(Channel{mode, index_in_mode++, {}, {}, 0, false, 0});
      // FP priorities inside the channel are deadline-monotonic, matching
      // the analysis side (core/integration.cpp).
      const rt::TaskSet ordered = rt::sort_deadline_monotonic(partition);
      for (std::size_t p = 0; p < ordered.size(); ++p) {
        const rt::Task& t = ordered[p];
        tasks_.push_back(SimTask{t, mode, channels_.size() - 1, p,
                                 to_ticks(t.wcet), to_ticks(t.period),
                                 to_ticks(t.deadline)});
        result_.tasks.push_back(TaskStats{t.name, mode});
      }
    }
  }
  result_.horizon = horizon_;
}

void Simulator::push(Ticks time, EventKind kind, std::uint64_t a,
                     std::uint64_t b) {
  heap_.push_back(Event{time, kind, seq_++, a, b});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
}

SimResult Simulator::run() {
  // Initial events: first frame, synchronous first releases (the critical
  // instant), and the pre-drawn fault trace.
  push(0, EventKind::FrameStart, 0);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    push(0, EventKind::Release, t);
  }
  {
    Rng fault_rng = rng_.fork();
    for (const fault::Fault& f : options_.faults.generate(horizon_, fault_rng)) {
      push(f.time, EventKind::Fault, f.core);
    }
  }

  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
    const Event ev = heap_.back();
    heap_.pop_back();
    if (ev.time > horizon_) continue;  // drain without processing
    switch (ev.kind) {
      case EventKind::FrameStart:
        on_frame_start(ev.time);
        break;
      case EventKind::Completion:
        on_completion(ev.time, static_cast<std::size_t>(ev.a), ev.b);
        break;
      case EventKind::WindowEnd:
        on_window_end(ev.time, static_cast<rt::Mode>(ev.a));
        break;
      case EventKind::WindowStart:
        on_window_start(ev.time, static_cast<rt::Mode>(ev.a));
        break;
      case EventKind::Release:
        on_release(ev.time, static_cast<std::size_t>(ev.a));
        break;
      case EventKind::Fault:
        on_fault(ev.time, static_cast<platform::CoreId>(ev.a));
        break;
      case EventKind::DeadlineCheck:
        on_deadline(ev.time, static_cast<std::size_t>(ev.a));
        break;
    }
  }

  // Close the books at the horizon: checkpoint whatever is still running and
  // close any open supply window.
  for (Channel& ch : channels_) {
    if (ch.active) {
      checkpoint_running(horizon_, ch);
    }
  }
  if (options_.record_supply) {
    for (const rt::Mode mode : core::kAllModes) {
      const std::size_t m = mode_index(mode);
      const FrameLayout::Position pos = frame_.locate(horizon_);
      if (pos.in_slot && pos.in_usable && pos.mode == mode) {
        supply_[m].add(window_open_since_[m], horizon_);
      }
    }
  }
  return result_;
}

void Simulator::on_frame_start(Ticks now) {
  for (const FrameLayout::Window& w : frame_.windows()) {
    if (w.usable_end > w.begin) {
      push(now + w.begin, EventKind::WindowStart,
           static_cast<std::uint64_t>(w.mode));
      push(now + w.usable_end, EventKind::WindowEnd,
           static_cast<std::uint64_t>(w.mode));
    }
  }
  if (now + frame_.period() <= horizon_) {
    push(now + frame_.period(), EventKind::FrameStart, 0);
  }
}

void Simulator::on_window_start(Ticks now, rt::Mode mode) {
  if (trace_.enabled()) {
    trace_.record(now, TraceKind::WindowOpen, rt::to_string(mode));
  }
  if (options_.record_supply) {
    window_open_since_[mode_index(mode)] = now;
  }
  const std::size_t base = first_channel_[mode_index(mode)];
  for (std::size_t c = 0; c < core::num_channels(mode); ++c) {
    channels_[base + c].active = true;
    dispatch(now, base + c);
  }
}

void Simulator::on_window_end(Ticks now, rt::Mode mode) {
  if (trace_.enabled()) {
    trace_.record(now, TraceKind::WindowClose, rt::to_string(mode));
  }
  const std::size_t base = first_channel_[mode_index(mode)];
  for (std::size_t c = 0; c < core::num_channels(mode); ++c) {
    Channel& ch = channels_[base + c];
    checkpoint_running(now, ch);
    ch.active = false;
  }
  if (options_.record_supply) {
    supply_[mode_index(mode)].add(window_open_since_[mode_index(mode)], now);
  }
}

void Simulator::on_release(Ticks now, std::size_t task_id) {
  const SimTask& st = tasks_[task_id];
  Job job;
  job.task = task_id;
  job.activation = result_.tasks[task_id].releases;
  job.release = now;
  job.abs_deadline = now + st.deadline;
  job.remaining = st.wcet;
  const std::size_t job_idx = jobs_.size();
  jobs_.push_back(job);
  result_.tasks[task_id].releases++;

  if (trace_.enabled()) {
    trace_.record(now, TraceKind::Release, st.task.name,
                  static_cast<std::int64_t>(st.channel));
  }
  channels_[st.channel].ready.push_back(job_idx);
  push(job.abs_deadline, EventKind::DeadlineCheck, job_idx);
  if (channels_[st.channel].active) dispatch(now, st.channel);

  Ticks next = now + st.period;
  if (options_.sporadic_jitter > 0.0) {
    next += to_ticks(rng_.uniform(0.0, options_.sporadic_jitter));
  }
  if (next < horizon_) push(next, EventKind::Release, task_id);
}

void Simulator::checkpoint_running(Ticks now, Channel& ch) {
  if (ch.running) {
    Job& job = jobs_[*ch.running];
    assert(job.run_since >= 0 && job.run_since <= now);
    const Ticks ran = now - job.run_since;
    job.remaining -= ran;
    result_.busy_ticks[mode_index(ch.mode)] += ran;
    job.run_since = -1;
    ch.running.reset();
  }
  ch.version++;  // cancels any in-flight completion event
}

std::optional<std::size_t> Simulator::pick_best(const Channel& ch) const {
  std::optional<std::size_t> best;
  for (const std::size_t j : ch.ready) {
    if (!best) {
      best = j;
      continue;
    }
    const Job& a = jobs_[j];
    const Job& b = jobs_[*best];
    bool better = false;
    if (options_.scheduler == hier::Scheduler::EDF) {
      better = a.abs_deadline < b.abs_deadline ||
               (a.abs_deadline == b.abs_deadline && a.task < b.task);
    } else {
      better = tasks_[a.task].priority < tasks_[b.task].priority;
    }
    if (better) best = j;
  }
  return best;
}

void Simulator::dispatch(Ticks now, std::size_t channel_id) {
  Channel& ch = channels_[channel_id];
  if (!ch.active || now < ch.blocked_until) return;
  const std::optional<std::size_t> best = pick_best(ch);
  if (best == ch.running) return;
  if (trace_.enabled() && ch.running) {
    trace_.record(now, TraceKind::Preempt,
                  tasks_[jobs_[*ch.running].task].task.name,
                  static_cast<std::int64_t>(channel_id));
  }
  checkpoint_running(now, ch);
  if (best) {
    Job& job = jobs_[*best];
    job.run_since = now;
    ch.running = best;
    if (trace_.enabled()) {
      trace_.record(now, TraceKind::Start, tasks_[job.task].task.name,
                    static_cast<std::int64_t>(channel_id));
    }
    push(now + job.remaining, EventKind::Completion, *best, ch.version);
  }
}

void Simulator::on_completion(Ticks now, std::size_t job_idx,
                              std::uint64_t version) {
  Job& job = jobs_[job_idx];
  Channel& ch = channels_[tasks_[job.task].channel];
  if (!ch.running || *ch.running != job_idx || ch.version != version) {
    return;  // stale event: the job was preempted / suspended / aborted
  }
  const Ticks ran = now - job.run_since;
  assert(ran == job.remaining);
  job.remaining = 0;
  job.run_since = -1;
  result_.busy_ticks[mode_index(ch.mode)] += ran;
  ch.running.reset();
  ch.version++;
  finish_job(now, job_idx);
  dispatch(now, tasks_[job.task].channel);
}

void Simulator::finish_job(Ticks now, std::size_t job_idx) {
  Job& job = jobs_[job_idx];
  const SimTask& st = tasks_[job.task];
  TaskStats& stats = result_.tasks[job.task];
  Channel& ch = channels_[st.channel];
  std::erase(ch.ready, job_idx);
  job.finish_time = now;

  // The checker inspects the channel's outputs: replicas that faulted while
  // this job executed now disagree.
  const platform::Verdict verdict =
      platform::evaluate(st.mode, ch.index_in_mode, job.faulty_cores);
  if (verdict == platform::Verdict::Silenced) {
    if (trace_.enabled()) {
      trace_.record(now, TraceKind::Silence, st.task.name,
                    static_cast<std::int64_t>(st.channel));
    }
    job.outcome = JobOutcome::Silenced;
    stats.silenced++;
    return;  // no output, no response time
  }
  if (trace_.enabled()) {
    trace_.record(now, TraceKind::Complete, st.task.name,
                  static_cast<std::int64_t>(st.channel));
  }
  job.outcome = JobOutcome::Completed;
  stats.completions++;
  if (verdict == platform::Verdict::Masked) stats.masked_faults++;
  if (verdict == platform::Verdict::Corrupt) stats.corrupted_outputs++;
  const Ticks response = now - job.release;
  stats.max_response = std::max(stats.max_response, response);
  stats.total_response += response;
}

void Simulator::silence_job(Ticks now, std::size_t job_idx) {
  Job& job = jobs_[job_idx];
  const SimTask& st = tasks_[job.task];
  Channel& ch = channels_[st.channel];
  if (ch.running && *ch.running == job_idx) {
    checkpoint_running(now, ch);
  }
  std::erase(ch.ready, job_idx);
  job.outcome = JobOutcome::Silenced;
  job.finish_time = now;
  result_.tasks[job.task].silenced++;
  if (trace_.enabled()) {
    trace_.record(now, TraceKind::Silence, st.task.name,
                  static_cast<std::int64_t>(st.channel));
  }
}

void Simulator::on_fault(Ticks now, platform::CoreId core) {
  result_.faults.injected++;
  if (trace_.enabled()) {
    trace_.record(now, TraceKind::Fault, "",
                  static_cast<std::int64_t>(core));
  }
  const FrameLayout::Position pos = frame_.locate(now);
  if (!pos.in_slot || !pos.in_usable) {
    result_.faults.harmless++;  // struck during overhead or slack
    return;
  }
  const rt::Mode mode = pos.mode;
  const std::size_t chid =
      first_channel_[mode_index(mode)] + platform::core_channel(mode, core);
  Channel& ch = channels_[chid];
  if (!ch.running) {
    result_.faults.harmless++;  // channel idle: nothing to corrupt
    return;
  }
  const std::size_t job_idx = *ch.running;
  Job& job = jobs_[job_idx];
  switch (mode) {
    case rt::Mode::FT:
      // The checker compares every bus access: the divergent replica is
      // out-voted 3:1 and resynchronized from the majority before the next
      // comparison, so the corruption does not persist (this is what makes
      // the single-transient-fault assumption compose across a job's
      // lifetime). Masking is transparent to the schedule.
      result_.faults.masked++;
      result_.tasks[job.task].masked_faults++;
      break;
    case rt::Mode::FS:
      job.faulty_cores |= static_cast<platform::CoreMask>(1u << core);
      result_.faults.silenced++;
      if (options_.detection == DetectionPolicy::Immediate) {
        silence_job(now, job_idx);
        // The couple resynchronizes during the rest of the current window;
        // it accepts work again from its next usable window on.
        ch.blocked_until = frame_.usable_end_at(now);
        dispatch(now, chid);
      }
      break;
    case rt::Mode::NF:
      job.faulty_cores |= static_cast<platform::CoreMask>(1u << core);
      result_.faults.corrupting++;  // silent data corruption
      break;
  }
}

void Simulator::on_deadline(Ticks now, std::size_t job_idx) {
  Job& job = jobs_[job_idx];
  if (job.outcome != JobOutcome::Pending) return;
  job.deadline_missed = true;
  result_.tasks[job.task].deadline_misses++;
  if (trace_.enabled()) {
    trace_.record(now, TraceKind::DeadlineMiss, tasks_[job.task].task.name,
                  static_cast<std::int64_t>(tasks_[job.task].channel));
  }
  if (options_.kill_on_miss) {
    const SimTask& st = tasks_[job.task];
    Channel& ch = channels_[st.channel];
    if (ch.running && *ch.running == job_idx) {
      checkpoint_running(now, ch);
      job.outcome = JobOutcome::Killed;
      std::erase(ch.ready, job_idx);
      dispatch(now, st.channel);
    } else {
      job.outcome = JobOutcome::Killed;
      std::erase(ch.ready, job_idx);
    }
    job.finish_time = now;
    if (trace_.enabled()) {
      trace_.record(now, TraceKind::Kill, st.task.name,
                    static_cast<std::int64_t>(st.channel));
    }
  }
}

SimResult simulate(const core::ModeTaskSystem& system,
                   const core::ModeSchedule& schedule,
                   const SimOptions& options) {
  Simulator sim(system, schedule, options);
  return sim.run();
}

SimResult simulate(const core::ModeTaskSystem& system,
                   const core::GeneralFrame& frame,
                   const SimOptions& options) {
  Simulator sim(system, frame, options);
  return sim.run();
}

}  // namespace flexrt::sim
