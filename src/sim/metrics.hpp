#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "rt/task.hpp"

namespace flexrt::sim {

/// Per-task counters collected by a simulation run.
struct TaskStats {
  std::string name;
  rt::Mode mode = rt::Mode::NF;
  std::uint64_t releases = 0;
  std::uint64_t completions = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t silenced = 0;         ///< jobs aborted fail-silently
  std::uint64_t corrupted_outputs = 0;  ///< wrong results reaching the bus
  std::uint64_t masked_faults = 0;    ///< faults out-voted on this task's jobs
  Ticks max_response = 0;
  Ticks total_response = 0;

  double avg_response_units() const noexcept {
    return completions == 0
               ? 0.0
               : to_units(total_response) / static_cast<double>(completions);
  }
};

/// Fault-side counters of a run.
struct FaultStats {
  std::uint64_t injected = 0;
  std::uint64_t masked = 0;     ///< hit an FT job, out-voted
  std::uint64_t silenced = 0;   ///< hit an FS job, detected and silenced
  std::uint64_t corrupting = 0;  ///< hit an NF job, wrong result emitted
  std::uint64_t harmless = 0;   ///< struck idle hardware / overhead / slack
};

/// Complete result of one simulation run.
struct SimResult {
  Ticks horizon = 0;
  std::vector<TaskStats> tasks;
  FaultStats faults;
  /// Busy ticks accumulated per mode (FT, FS, NF order).
  std::array<Ticks, 3> busy_ticks{};

  std::uint64_t total_misses() const noexcept;
  std::uint64_t total_wrong_results() const noexcept;
  std::uint64_t total_silenced() const noexcept;
  bool any_deadline_miss() const noexcept { return total_misses() > 0; }
};

}  // namespace flexrt::sim
