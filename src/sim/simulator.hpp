#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "core/mode_system.hpp"
#include "core/schedule.hpp"
#include "fault/fault_model.hpp"
#include "hier/sched_test.hpp"
#include "sim/frame.hpp"
#include "sim/job.hpp"
#include "sim/metrics.hpp"
#include "sim/supply_recorder.hpp"
#include "sim/trace.hpp"

namespace flexrt::sim {

/// When the checker learns about a fault on a fail-silent channel.
enum class DetectionPolicy : std::uint8_t {
  /// The checker compares every bus access, so a divergence is caught
  /// essentially immediately: the running job is aborted at the fault
  /// instant and the channel is blocked until its next usable window
  /// (models the paper's "access blocked, error signal raised").
  Immediate,
  /// Comparison only at job outputs: the corrupted job runs to completion,
  /// its output is blocked there (silenced), the channel is not blocked.
  AtOutput,
};

/// Everything configurable about a run.
struct SimOptions {
  double horizon = 1000.0;  ///< simulated time units
  hier::Scheduler scheduler = hier::Scheduler::EDF;  ///< in-slot scheduler
  fault::FaultModel faults;        ///< rate 0 = fault-free run
  DetectionPolicy detection = DetectionPolicy::Immediate;
  std::uint64_t seed = 42;
  /// Extra sporadic inter-arrival delay, uniform in [0, sporadic_jitter]
  /// added to the minimum separation T (0 = strictly periodic releases).
  double sporadic_jitter = 0.0;
  /// Record per-mode delivered-service intervals for supply-bound checks
  /// (costs memory proportional to frames simulated).
  bool record_supply = false;
  /// Abort jobs at their deadline instead of letting them finish late.
  bool kill_on_miss = false;
  /// Record up to this many trace events (0 = tracing off).
  std::size_t trace_capacity = 0;
};

/// Discrete-event simulator of the reconfigurable 4-core lock-step platform
/// (paper §2.4) executing a partitioned application under a mode-switching
/// frame. Time is integer ticks; runs are deterministic for a given seed.
class Simulator {
 public:
  /// The schedule must pass verify_schedule-style validation (slots fit in
  /// the period); schedulability is *not* required — unschedulable inputs
  /// simply produce deadline misses, which is what experiment E5 measures.
  Simulator(const core::ModeTaskSystem& system,
            const core::ModeSchedule& schedule, const SimOptions& options);

  /// Same, but under a generalized multi-visit frame (paper §5 extension).
  Simulator(const core::ModeTaskSystem& system,
            const core::GeneralFrame& frame, const SimOptions& options);

  /// Runs to the horizon and returns the collected metrics.
  SimResult run();

  /// Delivered-service recorder of a mode (valid after run() when
  /// record_supply was set).
  const SupplyRecorder& supply(rt::Mode mode) const noexcept {
    return supply_[static_cast<std::size_t>(mode)];
  }

  /// Event trace (non-empty only when options.trace_capacity > 0).
  const Trace& trace() const noexcept { return trace_; }

 private:
  // --- static model ------------------------------------------------------
  struct SimTask {
    rt::Task task;
    rt::Mode mode;
    std::size_t channel;   ///< global channel id
    std::size_t priority;  ///< FP priority inside the channel (0 = highest)
    Ticks wcet;
    Ticks period;
    Ticks deadline;
  };
  struct Channel {
    rt::Mode mode;
    std::size_t index_in_mode;
    std::vector<std::size_t> ready;  ///< indices into jobs_
    std::optional<std::size_t> running;
    std::uint64_t version = 0;  ///< bumped on every dispatch change
    bool active = false;        ///< inside its usable window
    Ticks blocked_until = 0;    ///< fail-silent recovery block
  };

  enum class EventKind : std::uint8_t {
    FrameStart = 0,
    Completion = 1,
    WindowEnd = 2,
    WindowStart = 3,
    Release = 4,
    Fault = 5,
    DeadlineCheck = 6,
  };
  struct Event {
    Ticks time;
    EventKind kind;
    std::uint64_t seq;
    std::uint64_t a = 0;  ///< task / channel / core / job index
    std::uint64_t b = 0;  ///< version guard for completions
    bool operator>(const Event& o) const noexcept {
      if (time != o.time) return time > o.time;
      if (kind != o.kind) return kind > o.kind;
      return seq > o.seq;
    }
  };

  // --- engine ------------------------------------------------------------
  void push(Ticks time, EventKind kind, std::uint64_t a, std::uint64_t b = 0);
  void on_frame_start(Ticks now);
  void on_window_start(Ticks now, rt::Mode mode);
  void on_window_end(Ticks now, rt::Mode mode);
  void on_release(Ticks now, std::size_t task_id);
  void on_completion(Ticks now, std::size_t job_idx, std::uint64_t version);
  void on_fault(Ticks now, platform::CoreId core);
  void on_deadline(Ticks now, std::size_t job_idx);
  void dispatch(Ticks now, std::size_t channel_id);
  void checkpoint_running(Ticks now, Channel& ch);
  void finish_job(Ticks now, std::size_t job_idx);
  void silence_job(Ticks now, std::size_t job_idx);
  std::optional<std::size_t> pick_best(const Channel& ch) const;

  Simulator(const core::ModeTaskSystem& system, FrameLayout frame,
            const SimOptions& options);

  SimOptions options_;
  FrameLayout frame_;
  std::vector<SimTask> tasks_;
  std::vector<Channel> channels_;
  std::array<std::size_t, 3> first_channel_{};  ///< per-mode base channel id
  std::vector<Job> jobs_;
  std::vector<Event> heap_;
  std::uint64_t seq_ = 0;
  Ticks horizon_ = 0;
  Rng rng_;
  SimResult result_;
  Trace trace_;
  std::array<SupplyRecorder, 3> supply_{};
  std::array<Ticks, 3> window_open_since_{};  ///< for supply recording
};

/// Convenience wrapper: simulate `system` under `schedule` and report.
SimResult simulate(const core::ModeTaskSystem& system,
                   const core::ModeSchedule& schedule,
                   const SimOptions& options);

/// Convenience wrapper for generalized frames.
SimResult simulate(const core::ModeTaskSystem& system,
                   const core::GeneralFrame& frame, const SimOptions& options);

}  // namespace flexrt::sim
