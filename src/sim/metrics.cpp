#include "sim/metrics.hpp"

namespace flexrt::sim {

std::uint64_t SimResult::total_misses() const noexcept {
  std::uint64_t n = 0;
  for (const TaskStats& t : tasks) n += t.deadline_misses;
  return n;
}

std::uint64_t SimResult::total_wrong_results() const noexcept {
  std::uint64_t n = 0;
  for (const TaskStats& t : tasks) n += t.corrupted_outputs;
  return n;
}

std::uint64_t SimResult::total_silenced() const noexcept {
  std::uint64_t n = 0;
  for (const TaskStats& t : tasks) n += t.silenced;
  return n;
}

}  // namespace flexrt::sim
