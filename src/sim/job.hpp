#pragma once

#include <cstddef>
#include <cstdint>

#include "common/sim_time.hpp"
#include "platform/checker.hpp"

namespace flexrt::sim {

/// Index into the simulator's flattened task table.
using TaskId = std::size_t;

/// Terminal state of a job.
enum class JobOutcome : std::uint8_t {
  Pending,    ///< released, not yet finished
  Completed,  ///< produced its output (possibly a masked/corrupt one)
  Silenced,   ///< aborted by the checker (fail-silent): no output
  Killed,     ///< aborted by the kill-on-miss policy at its deadline
};

/// One activation of a task.
struct Job {
  TaskId task = 0;
  std::uint64_t activation = 0;  ///< per-task job counter, 0-based
  Ticks release = 0;
  Ticks abs_deadline = 0;
  Ticks remaining = 0;  ///< execution time still owed
  Ticks run_since = -1;  ///< when the current burst started (-1: not running)
  Ticks finish_time = -1;
  platform::CoreMask faulty_cores = 0;  ///< cores that faulted while it ran
  JobOutcome outcome = JobOutcome::Pending;
  bool deadline_missed = false;

  bool running() const noexcept { return run_since >= 0; }
};

}  // namespace flexrt::sim
