#include "sim/supply_recorder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexrt::sim {

void SupplyRecorder::add(Ticks begin, Ticks end) {
  if (end <= begin) return;
  if (!intervals_.empty()) {
    FLEXRT_REQUIRE(begin >= intervals_.back().end,
                   "service intervals must be appended in order");
    // Merge adjacency to keep the candidate set small.
    if (begin == intervals_.back().end) {
      intervals_.back().end = end;
      return;
    }
  }
  intervals_.push_back({begin, end});
}

Ticks SupplyRecorder::total() const noexcept {
  Ticks sum = 0;
  for (const Interval& iv : intervals_) sum += iv.end - iv.begin;
  return sum;
}

Ticks SupplyRecorder::supplied_in(Ticks from, Ticks to) const noexcept {
  Ticks sum = 0;
  // First interval ending after `from`.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), from,
      [](const Interval& iv, Ticks t) { return iv.end <= t; });
  for (; it != intervals_.end() && it->begin < to; ++it) {
    sum += std::min(to, it->end) - std::max(from, it->begin);
  }
  return sum;
}

Ticks SupplyRecorder::min_window_supply(Ticks window,
                                        Ticks horizon) const noexcept {
  if (window <= 0 || window > horizon) return 0;
  Ticks best = window;  // can never exceed the window itself
  auto consider = [&](Ticks start) {
    if (start < 0 || start + window > horizon) return;
    best = std::min(best, supplied_in(start, start + window));
  };
  consider(0);
  for (const Interval& iv : intervals_) consider(iv.end);
  return best;
}

}  // namespace flexrt::sim
