#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace flexrt::sim {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::Release:
      return "release";
    case TraceKind::Start:
      return "start";
    case TraceKind::Preempt:
      return "preempt";
    case TraceKind::Suspend:
      return "suspend";
    case TraceKind::Complete:
      return "complete";
    case TraceKind::Silence:
      return "silence";
    case TraceKind::Kill:
      return "kill";
    case TraceKind::DeadlineMiss:
      return "deadline-miss";
    case TraceKind::WindowOpen:
      return "window-open";
    case TraceKind::WindowClose:
      return "window-close";
    case TraceKind::Fault:
      return "fault";
  }
  return "?";
}

void Trace::record(Ticks time, TraceKind kind, std::string who,
                   std::int64_t detail) {
  ++total_;
  if (events_.size() >= capacity_) return;
  events_.push_back({time, kind, std::move(who), detail});
}

void Trace::print(std::ostream& os) const {
  for (const TraceEvent& e : events_) {
    os << '[' << std::fixed << std::setprecision(6) << to_units(e.time)
       << "] " << to_string(e.kind);
    if (!e.who.empty()) os << ' ' << e.who;
    if (e.detail >= 0) os << " (" << e.detail << ')';
    os << '\n';
  }
  if (truncated()) {
    os << "... " << total_ - events_.size() << " more events (truncated)\n";
  }
}

}  // namespace flexrt::sim
