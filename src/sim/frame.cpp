#include "sim/frame.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexrt::sim {
namespace {

/// Usable length rounded down, slot end rounded up: the simulated platform
/// never supplies more than the analysed one.
FrameLayout::Window make_window(rt::Mode mode, Ticks begin, double usable,
                                double total) {
  FrameLayout::Window w;
  w.mode = mode;
  w.begin = begin;
  const Ticks usable_ticks = static_cast<Ticks>(
      usable * static_cast<double>(TICKS_PER_UNIT));
  w.usable_end = begin + std::max<Ticks>(0, usable_ticks);
  w.end = begin + std::max(usable_ticks, to_ticks(total));
  return w;
}

}  // namespace

FrameLayout::FrameLayout(const core::ModeSchedule& schedule) {
  schedule.validate();
  Ticks cursor = 0;
  for (const rt::Mode mode : core::kAllModes) {
    const core::Slot& slot = schedule.slot(mode);
    const Window w = make_window(mode, cursor, slot.usable, slot.total());
    windows_.push_back(w);
    cursor = w.end;
  }
  finish_construction(schedule.period);
}

FrameLayout::FrameLayout(const core::GeneralFrame& frame) {
  Ticks cursor = 0;
  for (const core::GeneralSlot& slot : frame.slots()) {
    const Window w = make_window(slot.mode, cursor, slot.usable, slot.total());
    windows_.push_back(w);
    cursor = w.end;
  }
  finish_construction(frame.period());
}

void FrameLayout::finish_construction(double period_units) {
  period_ = std::max<Ticks>(1, to_ticks(period_units));
  if (windows_.empty()) return;
  // Rounding every slot end up can overflow a zero-slack frame by a tick
  // per slot; clamp the tail back into the frame (this only removes
  // supply, never adds it). Anything beyond that tolerance is a genuinely
  // overfull schedule.
  const Ticks excess = windows_.back().end - period_;
  FLEXRT_REQUIRE(excess <= 2 * static_cast<Ticks>(windows_.size()),
                 "tick-rounded slots exceed the frame period");
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    it->end = std::min(it->end, period_);
    it->usable_end = std::min(it->usable_end, it->end);
    it->begin = std::min(it->begin, it->usable_end);
  }
}

const FrameLayout::Window& FrameLayout::window(rt::Mode mode) const {
  for (const Window& w : windows_) {
    if (w.mode == mode) return w;
  }
  throw ModelError(std::string("mode ") + rt::to_string(mode) +
                   " has no window in the frame");
}

FrameLayout::Position FrameLayout::locate(Ticks t) const noexcept {
  const Ticks rel = t % period_;
  for (const Window& w : windows_) {
    if (rel >= w.begin && rel < w.end) {
      return {w.mode, rel < w.usable_end, true};
    }
  }
  return {rt::Mode::NF, false, false};  // frame slack
}

Ticks FrameLayout::next_window_begin(rt::Mode mode, Ticks t) const noexcept {
  const Ticks frame = frame_start(t);
  // Check this frame's windows, then wrap into the next frame.
  for (const Window& w : windows_) {
    if (w.mode == mode && frame + w.begin >= t) return frame + w.begin;
  }
  for (const Window& w : windows_) {
    if (w.mode == mode) return frame + period_ + w.begin;
  }
  return t;  // mode has no window at all
}

Ticks FrameLayout::usable_end_at(Ticks t) const noexcept {
  const Ticks rel = t % period_;
  for (const Window& w : windows_) {
    if (rel >= w.begin && rel < w.usable_end) {
      return frame_start(t) + w.usable_end;
    }
  }
  return t;
}

}  // namespace flexrt::sim
