#pragma once

#include <vector>

#include "common/sim_time.hpp"
#include "core/general_frame.hpp"
#include "core/schedule.hpp"

namespace flexrt::sim {

/// Tick-exact layout of one mode-switching frame: an ordered list of slots,
/// each a usable window followed by its switch-out overhead, with any slack
/// at the end of the frame. Built either from a classic three-slot
/// ModeSchedule (paper Fig. 2) or from a generalized multi-visit
/// core::GeneralFrame (the §5 extension).
///
/// Conversion from real-valued schedules rounds each usable window *down*
/// and each slot boundary *up* to the tick grid (1 tick = 1e-6 time units),
/// so the simulated platform never supplies more than the analysed one;
/// zero-margin designs can therefore miss by O(tick) in simulation, which
/// the validation experiments absorb with an epsilon margin.
class FrameLayout {
 public:
  /// One slot's window relative to the frame start.
  struct Window {
    rt::Mode mode = rt::Mode::FT;
    Ticks begin = 0;       ///< first tick of the slot
    Ticks usable_end = 0;  ///< end of the usable part (exclusive)
    Ticks end = 0;         ///< end of the slot including overhead (exclusive)
  };

  /// Where a given instant falls within the frame structure.
  struct Position {
    rt::Mode mode = rt::Mode::FT;  ///< slot owning the instant (if any)
    bool in_usable = false;        ///< inside the usable part of that slot
    bool in_slot = false;          ///< inside any slot (else: frame slack)
  };

  /// Builds the classic FT/FS/NF three-slot layout.
  explicit FrameLayout(const core::ModeSchedule& schedule);

  /// Builds a generalized layout with possibly many windows per mode.
  explicit FrameLayout(const core::GeneralFrame& frame);

  Ticks period() const noexcept { return period_; }
  const std::vector<Window>& windows() const noexcept { return windows_; }

  /// First window of `mode` in the frame (the only one for three-slot
  /// layouts). Requires the mode to have a window.
  const Window& window(rt::Mode mode) const;

  /// Locates absolute time t within its frame.
  Position locate(Ticks t) const noexcept;

  /// Start of the frame containing t.
  Ticks frame_start(Ticks t) const noexcept { return t - t % period_; }

  /// Absolute begin of the first usable window of `mode` at or after t.
  Ticks next_window_begin(rt::Mode mode, Ticks t) const noexcept;

  /// Absolute usable-end of the window containing t; returns t itself when
  /// t is not inside any usable window.
  Ticks usable_end_at(Ticks t) const noexcept;

 private:
  void finish_construction(double period_units);

  Ticks period_ = 0;
  std::vector<Window> windows_;
};

}  // namespace flexrt::sim
