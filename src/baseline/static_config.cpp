#include "baseline/static_config.hpp"

#include "rt/edf_test.hpp"
#include "rt/priority.hpp"
#include "rt/rta.hpp"

namespace flexrt::baseline {

const char* to_string(StaticConfig config) noexcept {
  switch (config) {
    case StaticConfig::AllFT:
      return "static-FT";
    case StaticConfig::AllFS:
      return "static-FS";
    case StaticConfig::AllNF:
      return "static-NF";
  }
  return "?";
}

rt::Mode provided_mode(StaticConfig config) noexcept {
  switch (config) {
    case StaticConfig::AllFT:
      return rt::Mode::FT;
    case StaticConfig::AllFS:
      return rt::Mode::FS;
    case StaticConfig::AllNF:
      return rt::Mode::NF;
  }
  return rt::Mode::NF;
}

bool satisfies(StaticConfig config, rt::Mode required) noexcept {
  // Protection strength: FT > FS > NF; the enum is declared in that order.
  return static_cast<int>(provided_mode(config)) <=
         static_cast<int>(required);
}

namespace {

std::size_t num_static_channels(StaticConfig config) noexcept {
  switch (config) {
    case StaticConfig::AllFT:
      return 1;
    case StaticConfig::AllFS:
      return 2;
    case StaticConfig::AllNF:
      return 4;
  }
  return 1;
}

bool dedicated_schedulable(const rt::TaskSet& ts, hier::Scheduler alg) {
  if (alg == hier::Scheduler::EDF) return rt::edf_schedulable(ts);
  return rt::fp_schedulable(rt::sort_deadline_monotonic(ts));
}

}  // namespace

std::optional<std::vector<rt::TaskSet>> static_partition(
    const rt::TaskSet& all_tasks, StaticConfig config,
    const part::PackOptions& pack) {
  for (const rt::Task& t : all_tasks) {
    if (!satisfies(config, t.mode)) return std::nullopt;
  }
  return part::pack(all_tasks, num_static_channels(config), pack);
}

StaticResult try_static(const rt::TaskSet& all_tasks, StaticConfig config,
                        hier::Scheduler alg, const part::PackOptions& pack) {
  StaticResult result;
  for (const rt::Task& t : all_tasks) {
    if (!satisfies(config, t.mode)) return result;  // mode_feasible = false
  }
  result.mode_feasible = true;
  const auto bins = part::pack(all_tasks, num_static_channels(config), pack);
  if (!bins) return result;  // could not even fit by utilization
  for (const rt::TaskSet& bin : *bins) {
    if (!dedicated_schedulable(bin, alg)) return result;
  }
  result.schedulable = true;
  return result;
}

}  // namespace flexrt::baseline
