#pragma once

#include <optional>
#include <vector>

#include "hier/sched_test.hpp"
#include "part/bin_packing.hpp"
#include "rt/task_set.hpp"

namespace flexrt::baseline {

/// The non-reconfigurable platforms the paper's introduction argues
/// against: the checker is wired into one configuration for the whole
/// lifetime, so the platform's protection level must satisfy the most
/// demanding task it hosts.
enum class StaticConfig {
  /// All four cores permanently in redundant lock-step: every task enjoys
  /// FT protection, but the whole application shares ONE channel of unit
  /// capacity.
  AllFT,
  /// Two permanent fail-silent couples: FS and NF tasks can run (two
  /// channels), FT tasks cannot be hosted at all.
  AllFS,
  /// Four permanent independent cores: maximum capacity, but only NF tasks
  /// get their requirement met.
  AllNF,
};

const char* to_string(StaticConfig config) noexcept;

/// Protection level a static configuration grants to every hosted task.
rt::Mode provided_mode(StaticConfig config) noexcept;

/// True when the configuration can host tasks with the given requirement
/// (FT protection satisfies FS and NF requirements, FS satisfies NF).
bool satisfies(StaticConfig config, rt::Mode required) noexcept;

/// Result of a static-configuration admission attempt.
struct StaticResult {
  bool mode_feasible = false;   ///< every task's mode requirement satisfied
  bool schedulable = false;     ///< and the partitioned set meets deadlines
};

/// The per-channel partition a static configuration would host: checks
/// every task's mode requirement against the configuration, then packs onto
/// the configuration's channels. nullopt when a requirement is unsatisfied
/// or the packing fails. Exposed so fault-aware admission
/// (svc::FaultSweepRequest) can re-test each channel with the fault model's
/// recovery demand appended (fault::fs_schedulable_dedicated) instead of
/// the plain dedicated test.
std::optional<std::vector<rt::TaskSet>> static_partition(
    const rt::TaskSet& all_tasks, StaticConfig config,
    const part::PackOptions& pack = {});

/// Tries to host the whole application on a static configuration:
/// checks mode compatibility, packs the tasks onto the configuration's
/// channels (static_partition above), and runs the dedicated-processor
/// schedulability test per channel (the static platform has no
/// time-partitioning, so each channel is a plain uniprocessor). Baseline
/// for experiment E7.
StaticResult try_static(const rt::TaskSet& all_tasks, StaticConfig config,
                        hier::Scheduler alg,
                        const part::PackOptions& pack = {});

}  // namespace flexrt::baseline
