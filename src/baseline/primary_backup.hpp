#pragma once

#include <array>
#include <cstddef>
#include <optional>

#include "hier/sched_test.hpp"
#include "part/bin_packing.hpp"
#include "rt/task_set.hpp"

namespace flexrt::baseline {

/// The classic software alternative to lock-step replication, cited by the
/// paper as [11, 17] (Caccamo & Buttazzo; Mossé, Melhem & Ghosh): the four
/// cores run independently (no checker), and every task that needs fault
/// protection gets a *backup copy* statically assigned to a different
/// processor. We model active backups (both copies always execute), the
/// conservative variant whose guarantee holds with zero reaction latency;
/// fault detection is assumed to come from an acceptance test at the end of
/// each copy — a weaker detector than the paper's hardware checker, which is
/// exactly the trade-off experiment E8 quantifies.
struct PBSystem {
  /// Per-processor task sets after assignment (copies included).
  std::array<rt::TaskSet, 4> processors;
  /// Load added by backup copies (sum of protected tasks' utilizations).
  double replication_overhead = 0.0;
};

/// Assigns primaries and backups with the given packing heuristic; a backup
/// never shares its primary's processor. Tasks requiring FT or FS get one
/// backup; NF tasks get none. Returns nullopt when the doubled load cannot
/// be placed (some processor would exceed unit utilization).
std::optional<PBSystem> build_primary_backup(const rt::TaskSet& all_tasks,
                                             const part::PackOptions& pack =
                                                 {});

/// Dedicated-processor schedulability of every processor of the PB system.
bool pb_schedulable(const PBSystem& system, hier::Scheduler alg);

/// Convenience: build + test in one call (false when placement fails).
///
/// Fault-rate independence (relied on by svc::FaultSweepRequest): because
/// the backups are *active* -- both copies always execute -- a single
/// transient fault striking either copy's core is masked by the surviving
/// copy without any re-execution, so the PB verdict carries no recovery
/// demand and does not move with the fault rate. The price is paid up
/// front: the doubled load (replication_overhead) must be schedulable at
/// all times, faults or not. NF tasks get no backup and corrupt exactly as
/// on the flexible platform.
bool try_primary_backup(const rt::TaskSet& all_tasks, hier::Scheduler alg,
                        const part::PackOptions& pack = {});

}  // namespace flexrt::baseline
