#include "baseline/primary_backup.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "rt/edf_test.hpp"
#include "rt/priority.hpp"
#include "rt/rta.hpp"

namespace flexrt::baseline {
namespace {

constexpr std::size_t kProcs = 4;
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Picks the least-loaded processor that still fits `u`, excluding
/// `exclude`; returns kNone when nothing fits.
std::size_t worst_fit(const std::array<double, kProcs>& load, double u,
                      std::size_t exclude) {
  std::size_t best = kNone;
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < kProcs; ++p) {
    if (p == exclude) continue;
    if (load[p] + u <= 1.0 + 1e-12 && load[p] < best_load) {
      best = p;
      best_load = load[p];
    }
  }
  return best;
}

}  // namespace

std::optional<PBSystem> build_primary_backup(const rt::TaskSet& all_tasks,
                                             const part::PackOptions& pack) {
  // Process by decreasing utilization (same discipline as part::pack).
  std::vector<rt::Task> tasks(all_tasks.begin(), all_tasks.end());
  if (pack.sort_decreasing) {
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const rt::Task& a, const rt::Task& b) {
                       return a.utilization() > b.utilization();
                     });
  }
  PBSystem out;
  std::array<double, kProcs> load{};
  for (const rt::Task& t : tasks) {
    const double u = t.utilization();
    const std::size_t primary = worst_fit(load, u, kNone);
    if (primary == kNone) return std::nullopt;
    load[primary] += u;
    out.processors[primary].add(t);
    if (t.mode != rt::Mode::NF) {
      const std::size_t backup = worst_fit(load, u, primary);
      if (backup == kNone) return std::nullopt;
      load[backup] += u;
      rt::Task copy = t;
      copy.name += "_bk";
      out.processors[backup].add(std::move(copy));
      out.replication_overhead += u;
    }
  }
  return out;
}

bool pb_schedulable(const PBSystem& system, hier::Scheduler alg) {
  for (const rt::TaskSet& proc : system.processors) {
    const bool ok = alg == hier::Scheduler::EDF
                        ? rt::edf_schedulable(proc)
                        : rt::fp_schedulable(rt::sort_deadline_monotonic(proc));
    if (!ok) return false;
  }
  return true;
}

bool try_primary_backup(const rt::TaskSet& all_tasks, hier::Scheduler alg,
                        const part::PackOptions& pack) {
  const auto system = build_primary_backup(all_tasks, pack);
  return system.has_value() && pb_schedulable(*system, alg);
}

}  // namespace flexrt::baseline
