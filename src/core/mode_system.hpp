#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "rt/task.hpp"
#include "rt/task_set.hpp"

namespace flexrt::core {

/// Number of independent execution channels the platform offers in a mode
/// (paper §2.4): FT = one 4-way redundant lock-step channel, FS = two 2-way
/// lock-step channels, NF = four independent processors.
constexpr std::size_t num_channels(rt::Mode mode) noexcept {
  switch (mode) {
    case rt::Mode::FT:
      return 1;
    case rt::Mode::FS:
      return 2;
    case rt::Mode::NF:
      return 4;
  }
  return 0;
}

constexpr std::array<rt::Mode, 3> kAllModes = {rt::Mode::FT, rt::Mode::FS,
                                               rt::Mode::NF};

/// Per-mode switch-out overheads O_FT, O_FS, O_NF (paper §2.4). Each O_k is
/// charged inside slot Q_k, so the usable time is Q~_k = Q_k - O_k.
struct Overheads {
  double ft = 0.0;
  double fs = 0.0;
  double nf = 0.0;

  double total() const noexcept { return ft + fs + nf; }
  double of(rt::Mode mode) const noexcept;
};

/// A complete application mapped onto the platform: the task partition for
/// every channel of every mode. This is the input of the design methodology
/// (paper §3): partitions are fixed before the slot parameters are chosen.
class ModeTaskSystem {
 public:
  ModeTaskSystem() = default;

  /// Builds the system from per-mode channel partitions. Each vector must
  /// have at most num_channels(mode) entries (missing channels are empty);
  /// every task inside a partition must require that mode.
  ModeTaskSystem(std::vector<rt::TaskSet> ft, std::vector<rt::TaskSet> fs,
                 std::vector<rt::TaskSet> nf);

  /// Channel partitions of one mode (size == num_channels(mode)).
  std::span<const rt::TaskSet> partitions(rt::Mode mode) const noexcept;

  /// All tasks requiring `mode`, across its channels.
  rt::TaskSet mode_tasks(rt::Mode mode) const;

  /// Total number of tasks in the system.
  std::size_t num_tasks() const noexcept;

  /// max_i U(T_k^i): the bandwidth the mode's quantum must at least provide
  /// (necessary condition used for Table 2 row (a)).
  double required_bandwidth(rt::Mode mode) const noexcept;

  /// Replaces one mode's partitioning (used by the partitioning study E10).
  void set_partitions(rt::Mode mode, std::vector<rt::TaskSet> parts);

 private:
  std::array<std::vector<rt::TaskSet>, 3> parts_{};

  static std::size_t index(rt::Mode mode) noexcept {
    return static_cast<std::size_t>(mode);
  }
  void check_mode(rt::Mode mode, const std::vector<rt::TaskSet>& parts) const;
};

}  // namespace flexrt::core
