#include "core/design.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/analysis_engine.hpp"
#include "svc/analysis_service.hpp"

namespace flexrt::core {

const char* to_string(DesignGoal goal) noexcept {
  return goal == DesignGoal::MinOverheadBandwidth ? "min-overhead-bandwidth"
                                                  : "max-slack-bandwidth";
}

Design solve_design(const ModeTaskSystem& sys, hier::Scheduler alg,
                    const Overheads& overheads, DesignGoal goal,
                    const SearchOptions& opts) {
  // One-shot front over the analysis service: a one-entry fleet, one
  // SolveRequest at the fixed default accuracy (bit-for-bit the direct
  // engine path below, parity-tested). The service keeps one engine for
  // the period search and the three quantum queries.
  const svc::OneShotService s(sys);
  const svc::SolveResult r =
      s.service.solve_one(0, {alg, overheads, goal, opts, {}});
  if (!r.ok()) throw ModelError(r.error);
  if (!r.feasible) throw InfeasibleError(r.infeasible);
  return r.design;
}

Design solve_design(const analysis::BatchEngine& engine,
                    const Overheads& overheads, DesignGoal goal,
                    const SearchOptions& opts) {
  FLEXRT_REQUIRE(overheads.ft >= 0.0 && overheads.fs >= 0.0 &&
                     overheads.nf >= 0.0,
                 "overheads must be >= 0");
  const hier::Scheduler alg = engine.scheduler();
  double period = 0.0;
  switch (goal) {
    case DesignGoal::MinOverheadBandwidth:
      period = engine.max_feasible_period(overheads.total(), opts);
      break;
    case DesignGoal::MaxSlackBandwidth:
      period = engine.max_slack_period(overheads.total(), opts).period;
      break;
  }

  Design d;
  d.scheduler = alg;
  d.goal = goal;
  d.min_quantum_ft =
      engine.mode_min_quantum(rt::Mode::FT, period, opts.use_exact_supply);
  d.min_quantum_fs =
      engine.mode_min_quantum(rt::Mode::FS, period, opts.use_exact_supply);
  d.min_quantum_nf =
      engine.mode_min_quantum(rt::Mode::NF, period, opts.use_exact_supply);
  d.schedule.period = period;
  d.schedule.ft = {d.min_quantum_ft, overheads.ft};
  d.schedule.fs = {d.min_quantum_fs, overheads.fs};
  d.schedule.nf = {d.min_quantum_nf, overheads.nf};
  // The period search can land a hair inside the boundary; a negative slack
  // within tolerance is clamped by nudging the period up to the exact sum.
  if (d.schedule.slack() < 0.0) {
    const double deficit = -d.schedule.slack();
    FLEXRT_REQUIRE(deficit <= 1e-6 * period,
                   "solver produced an infeasible schedule");
    d.schedule.period += deficit;
  }
  d.schedule.validate();
  return d;
}

ModeSchedule distribute_slack(const Design& design) {
  ModeSchedule out = design.schedule;
  const double slack = out.slack();
  if (slack <= 0.0) return out;
  const double total_min =
      design.min_quantum_ft + design.min_quantum_fs + design.min_quantum_nf;
  if (total_min <= 0.0) return out;
  // Proportional growth keeps every quantum above its minimum, so the
  // schedule stays feasible (supply is monotone in the usable quantum).
  const double scale = slack / total_min;
  out.ft.usable += design.min_quantum_ft * scale;
  out.fs.usable += design.min_quantum_fs * scale;
  out.nf.usable += design.min_quantum_nf * scale;
  out.validate();
  return out;
}

}  // namespace flexrt::core
