#include "core/design.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexrt::core {

const char* to_string(DesignGoal goal) noexcept {
  return goal == DesignGoal::MinOverheadBandwidth ? "min-overhead-bandwidth"
                                                  : "max-slack-bandwidth";
}

Design solve_design(const ModeTaskSystem& sys, hier::Scheduler alg,
                    const Overheads& overheads, DesignGoal goal,
                    const SearchOptions& opts) {
  FLEXRT_REQUIRE(overheads.ft >= 0.0 && overheads.fs >= 0.0 &&
                     overheads.nf >= 0.0,
                 "overheads must be >= 0");
  double period = 0.0;
  switch (goal) {
    case DesignGoal::MinOverheadBandwidth:
      period = max_feasible_period(sys, alg, overheads.total(), opts);
      break;
    case DesignGoal::MaxSlackBandwidth:
      period = max_slack_period(sys, alg, overheads.total(), opts).period;
      break;
  }

  Design d;
  d.scheduler = alg;
  d.goal = goal;
  d.min_quantum_ft = mode_min_quantum(sys, rt::Mode::FT, alg, period,
                                      opts.use_exact_supply);
  d.min_quantum_fs = mode_min_quantum(sys, rt::Mode::FS, alg, period,
                                      opts.use_exact_supply);
  d.min_quantum_nf = mode_min_quantum(sys, rt::Mode::NF, alg, period,
                                      opts.use_exact_supply);
  d.schedule.period = period;
  d.schedule.ft = {d.min_quantum_ft, overheads.ft};
  d.schedule.fs = {d.min_quantum_fs, overheads.fs};
  d.schedule.nf = {d.min_quantum_nf, overheads.nf};
  // The period search can land a hair inside the boundary; a negative slack
  // within tolerance is clamped by nudging the period up to the exact sum.
  if (d.schedule.slack() < 0.0) {
    const double deficit = -d.schedule.slack();
    FLEXRT_REQUIRE(deficit <= 1e-6 * period,
                   "solver produced an infeasible schedule");
    d.schedule.period += deficit;
  }
  d.schedule.validate();
  return d;
}

ModeSchedule distribute_slack(const Design& design) {
  ModeSchedule out = design.schedule;
  const double slack = out.slack();
  if (slack <= 0.0) return out;
  const double total_min =
      design.min_quantum_ft + design.min_quantum_fs + design.min_quantum_nf;
  if (total_min <= 0.0) return out;
  // Proportional growth keeps every quantum above its minimum, so the
  // schedule stays feasible (supply is monotone in the usable quantum).
  const double scale = slack / total_min;
  out.ft.usable += design.min_quantum_ft * scale;
  out.fs.usable += design.min_quantum_fs * scale;
  out.nf.usable += design.min_quantum_nf * scale;
  out.validate();
  return out;
}

}  // namespace flexrt::core
