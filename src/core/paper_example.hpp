#pragma once

#include "core/mode_system.hpp"

namespace flexrt::core {

/// The 13-task application of the paper's §4 (Table 1), with the manual
/// partition given in the text:
///
///   NF: tau1(1,6) tau2(1,8) tau3(1,12) tau4(2,10) tau5(6,24)
///       channels  {tau1} {tau2,tau3} {tau4} {tau5}
///   FS: tau6(1,10) tau7(1,15) tau8(2,20) tau9(1,4)
///       channels  {tau6,tau7,tau8} {tau9}
///   FT: tau10(1,12) tau11(1,15) tau12(1,20) tau13(2,30)  (single channel)
///
/// Deadlines are implicit (D = T). This fixture anchors the reproduction of
/// Figure 4 and Table 2.
ModeTaskSystem paper_example();

/// The flat Table-1 task set (tau1..tau13) without channel assignment.
rt::TaskSet paper_example_tasks();

/// Reference values reported by the paper for this example, used by the
/// reproduction tests and printed next to our results in the benches.
struct PaperReference {
  // Figure 4 points.
  double p_max_edf_no_overhead = 3.176;  // point 1
  double p_max_rm_no_overhead = 2.381;   // point 2
  double max_overhead_edf = 0.201;       // point 3
  double max_overhead_rm = 0.129;        // point 4
  double p_max_edf_o005 = 2.966;         // point 5 (O_tot = 0.05)
  double o_tot = 0.05;
  // Table 2 row (a): required bandwidth per mode.
  double req_util_ft = 0.267;
  double req_util_fs = 0.267;
  double req_util_nf = 0.250;
  // Table 2 row (b): min-overhead design (EDF).
  double b_q_ft = 0.820;
  double b_q_fs = 1.281;
  double b_q_nf = 0.815;
  // Table 2 row (c): max-slack design (EDF).
  double c_period = 0.855;
  double c_q_ft = 0.230;
  double c_q_fs = 0.252;
  double c_q_nf = 0.220;
  double c_slack = 0.103;
  double c_slack_util = 0.121;
};

}  // namespace flexrt::core
