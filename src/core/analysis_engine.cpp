#include "core/analysis_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/parallel.hpp"
#include "hier/min_quantum.hpp"
#include "rt/priority.hpp"

namespace flexrt::analysis {

using core::kAllModes;

/// Demand-side deltas of one WCET scaling probe against one partition:
/// everything that depends on the task set is precomputed, so testing a
/// candidate lambda is one pass over cached points evaluating only
///   base + (lambda - 1) * contrib  <=  Z(t).
struct BatchEngine::ScaledProbe {
  const Partition* part = nullptr;
  hier::LinearSupply supply;
  /// EDF: utilization added per unit of (lambda - 1).
  double u_delta = 0.0;
  /// EDF: demand-line intercept added per unit of (lambda - 1); feeds the
  /// QPA tail closure on condensed deadline sets.
  double c_delta = 0.0;
  /// EDF: scaled tasks' demand at each deadline point.
  std::vector<double> edf_contrib;
  /// FP: scaled tasks' share of W_i at each scheduling point, per task i.
  std::vector<std::vector<double>> fp_contrib;
};

namespace {

bool matches(const rt::Task& t, const std::string& name) {
  return name.empty() || t.name == name;
}

}  // namespace

BatchEngine::BatchEngine(const core::ModeTaskSystem& sys, hier::Scheduler alg,
                         const rt::DlBoundOptions& dl_opts,
                         const rt::FpPointOptions& fp_opts)
    : alg_(alg),
      dl_opts_(dl_opts),
      fp_opts_(fp_opts),
      auto_p_max_(core::auto_period_bound(sys)) {
  for (const rt::Mode mode : kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        task_rows_.push_back({t.name, mode, t.wcet, 0.0});
      }
      if (ts.empty()) continue;
      mode_used_[static_cast<std::size_t>(mode)] = true;
      rt::TaskSet ordered =
          alg == hier::Scheduler::FP ? rt::sort_deadline_monotonic(ts) : ts;
      parts_.push_back({mode, std::make_unique<rt::AnalysisContext>(
                                  std::move(ordered), dl_opts, fp_opts)});
    }
  }
}

bool BatchEngine::dl_exact() const {
  if (alg_ == hier::Scheduler::FP) return true;
  for (const Partition& part : parts_) {
    if (!part.ctx->dl_exact()) return false;
  }
  return true;
}

bool BatchEngine::fp_exact() const {
  if (alg_ != hier::Scheduler::FP) return true;
  for (const Partition& part : parts_) {
    if (!part.ctx->fp_exact()) return false;
  }
  return true;
}

core::SearchOptions BatchEngine::resolve(core::SearchOptions opts) const {
  if (opts.p_max <= 0.0) opts.p_max = auto_p_max_;
  FLEXRT_REQUIRE(opts.p_min > 0.0 && opts.p_min < opts.p_max,
                 "invalid period search range");
  FLEXRT_REQUIRE(opts.grid_step > 0.0, "grid step must be > 0");
  return opts;
}

double BatchEngine::mode_min_quantum(rt::Mode mode, double period,
                                     bool use_exact_supply) const {
  double worst = 0.0;
  for (const Partition& part : parts_) {
    if (part.mode != mode) continue;
    worst = std::max(
        worst, use_exact_supply
                   ? hier::min_quantum_exact(*part.ctx, alg_, period)
                   : hier::min_quantum(*part.ctx, alg_, period));
  }
  return worst;
}

double BatchEngine::feasibility_margin(double period,
                                       bool use_exact_supply) const {
  double worst[3] = {0.0, 0.0, 0.0};
  for (const Partition& part : parts_) {
    double& slot = worst[static_cast<std::size_t>(part.mode)];
    slot = std::max(
        slot, use_exact_supply
                  ? hier::min_quantum_exact(*part.ctx, alg_, period)
                  : hier::min_quantum(*part.ctx, alg_, period));
  }
  return period - worst[0] - worst[1] - worst[2];
}

std::vector<core::RegionSample> BatchEngine::sample_region(
    const core::SearchOptions& opts_in) const {
  const core::SearchOptions opts = resolve(opts_in);
  const auto n = static_cast<std::size_t>(
      std::ceil((opts.p_max - opts.p_min) / opts.grid_step));
  std::vector<core::RegionSample> out(n + 1);
  par::parallel_for_chunked(n + 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const double p = std::min(
          opts.p_max, opts.p_min + static_cast<double>(i) * opts.grid_step);
      out[i] = {p, feasibility_margin(p, opts.use_exact_supply)};
    }
  });
  return out;
}

double BatchEngine::max_feasible_period(double o_tot,
                                        const core::SearchOptions& opts_in) const {
  const core::SearchOptions opts = resolve(opts_in);
  // Same downward grid scan as the serial implementation -- the first
  // feasible candidate bounds the answer from below, its predecessor from
  // above -- but candidates are evaluated a block at a time in parallel.
  std::vector<double> candidates;
  for (double p = opts.p_max; p >= opts.p_min; p -= opts.grid_step) {
    candidates.push_back(p);
  }
  double feasible = -1.0;
  double infeasible_above = opts.p_max;
  const std::size_t block = std::max<std::size_t>(16, 4 * par::thread_count());
  std::vector<double> margins;
  for (std::size_t b = 0; b < candidates.size() && feasible < 0.0; b += block) {
    const std::size_t end = std::min(candidates.size(), b + block);
    margins.assign(end - b, 0.0);
    par::parallel_for_chunked(end - b, [&](std::size_t cb, std::size_t ce) {
      for (std::size_t i = cb; i < ce; ++i) {
        margins[i] =
            feasibility_margin(candidates[b + i], opts.use_exact_supply);
      }
    });
    for (std::size_t i = 0; i < end - b; ++i) {
      if (margins[i] >= o_tot) {
        feasible = candidates[b + i];
        break;
      }
      infeasible_above = candidates[b + i];
    }
  }
  if (feasible < 0.0) {
    throw InfeasibleError(
        "no feasible period found in the search range (O_tot too large?)");
  }
  double lo = feasible;
  double hi = infeasible_above;
  while (hi - lo > opts.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (feasibility_margin(mid, opts.use_exact_supply) >= o_tot) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

/// argmax over `values` with the serial scan's strict-> semantics: the
/// earliest candidate wins ties.
std::size_t argmax(const std::vector<double>& values) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

}  // namespace

core::OverheadLimit BatchEngine::max_admissible_overhead(
    const core::SearchOptions& opts_in) const {
  const core::SearchOptions opts = resolve(opts_in);
  const auto eval = [&](const std::vector<double>& ps) {
    std::vector<double> out(ps.size(), 0.0);
    par::parallel_for_chunked(ps.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        out[i] = feasibility_margin(ps[i], opts.use_exact_supply);
      }
    });
    return out;
  };
  std::vector<double> coarse;
  for (double p = opts.p_min; p <= opts.p_max; p += opts.grid_step) {
    coarse.push_back(p);
  }
  std::vector<double> margins = eval(coarse);
  std::size_t best = argmax(margins);
  double best_p = coarse[best];
  double best_m = margins[best];

  const double lo = std::max(opts.p_min, best_p - 2.0 * opts.grid_step);
  const double hi = std::min(opts.p_max, best_p + 2.0 * opts.grid_step);
  const double step = std::max(opts.tolerance, opts.grid_step * 1e-3);
  std::vector<double> fine;
  for (double p = lo; p <= hi; p += step) fine.push_back(p);
  margins = eval(fine);
  for (std::size_t i = 0; i < fine.size(); ++i) {
    if (margins[i] > best_m) {
      best_m = margins[i];
      best_p = fine[i];
    }
  }
  return {best_p, best_m};
}

core::SlackOptimum BatchEngine::max_slack_period(
    double o_tot, const core::SearchOptions& opts_in) const {
  const core::SearchOptions opts = resolve(opts_in);
  const auto eval = [&](const std::vector<double>& ps) {
    std::vector<double> out(ps.size(), 0.0);
    par::parallel_for_chunked(ps.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        out[i] =
            (feasibility_margin(ps[i], opts.use_exact_supply) - o_tot) / ps[i];
      }
    });
    return out;
  };
  std::vector<double> coarse;
  for (double p = opts.p_min; p <= opts.p_max; p += opts.grid_step) {
    coarse.push_back(p);
  }
  std::vector<double> slack = eval(coarse);
  std::size_t best_i = argmax(slack);
  double best_p = coarse[best_i];
  double best = slack[best_i];
  if (best < 0.0) {
    throw InfeasibleError(
        "no feasible period in the search range: slack is negative "
        "everywhere");
  }
  const double lo = std::max(opts.p_min, best_p - 2.0 * opts.grid_step);
  const double hi = std::min(opts.p_max, best_p + 2.0 * opts.grid_step);
  const double step = std::max(opts.tolerance, opts.grid_step * 1e-3);
  std::vector<double> fine;
  for (double p = lo; p <= hi; p += step) fine.push_back(p);
  slack = eval(fine);
  for (std::size_t i = 0; i < fine.size(); ++i) {
    if (slack[i] > best) {
      best = slack[i];
      best_p = fine[i];
    }
  }
  return {best_p, best * best_p, best};
}

bool BatchEngine::verify(const core::ModeSchedule& schedule,
                         bool use_exact_supply) const {
  schedule.validate();
  for (const rt::Mode mode : kAllModes) {
    if (!mode_used_[static_cast<std::size_t>(mode)]) continue;
    if (schedule.slot(mode).usable <= 0.0) return false;
  }
  for (const Partition& part : parts_) {
    const bool ok =
        use_exact_supply
            ? hier::schedulable(*part.ctx, alg_, schedule.exact_supply(part.mode))
            : hier::schedulable(*part.ctx, alg_, schedule.supply(part.mode));
    if (!ok) return false;
  }
  return true;
}

double BatchEngine::margin_impl(const core::ModeSchedule& schedule,
                                const std::string& task_name,
                                double lambda_max, double tolerance,
                                bool base_feasible) const {
  FLEXRT_REQUIRE(lambda_max >= 1.0, "lambda_max must be >= 1");
  if (!base_feasible) return 1.0;

  // Deadline caps of the scaled tasks (a scale pushing C past D is
  // infeasible by definition) and the demand deltas per affected partition.
  std::vector<std::pair<double, double>> limits;  // (wcet, deadline)
  std::vector<ScaledProbe> probes;
  for (const Partition& part : parts_) {
    const rt::AnalysisContext& ctx = *part.ctx;
    bool any = false;
    for (const rt::Task& t : ctx.tasks()) {
      if (matches(t, task_name)) {
        limits.emplace_back(t.wcet, t.deadline);
        any = true;
      }
    }
    if (!any) continue;

    ScaledProbe probe{&part, schedule.supply(part.mode), 0.0, 0.0, {}, {}};
    if (alg_ == hier::Scheduler::EDF) {
      probe.edf_contrib.assign(ctx.deadline_points().size(), 0.0);
      for (std::size_t i = 0; i < ctx.size(); ++i) {
        const rt::Task& t = ctx.tasks()[i];
        if (!matches(t, task_name)) continue;
        probe.u_delta += t.utilization();
        probe.c_delta += t.wcet * (t.period - t.deadline) / t.period;
        const std::vector<double> jobs = ctx.edf_point_jobs(i);
        for (std::size_t k = 0; k < jobs.size(); ++k) {
          probe.edf_contrib[k] += jobs[k] * t.wcet;
        }
      }
    } else {
      probe.fp_contrib.resize(ctx.size());
      for (std::size_t i = 0; i < ctx.size(); ++i) {
        probe.fp_contrib[i].assign(ctx.scheduling_points(i).size(), 0.0);
        for (std::size_t j = 0; j <= i; ++j) {
          if (!matches(ctx.tasks()[j], task_name)) continue;
          const std::vector<double> jobs = ctx.fp_point_jobs(i, j);
          for (std::size_t k = 0; k < jobs.size(); ++k) {
            probe.fp_contrib[i][k] += jobs[k] * ctx.tasks()[j].wcet;
          }
        }
      }
    }
    probes.push_back(std::move(probe));
  }

  const auto probe_ok = [&](const ScaledProbe& p, double lambda) {
    const rt::AnalysisContext& ctx = *p.part->ctx;
    const double growth = lambda - 1.0;
    if (alg_ == hier::Scheduler::EDF) {
      if (ctx.utilization() + growth * p.u_delta > p.supply.rate() + 1e-12) {
        return false;
      }
      const std::vector<double>& points = ctx.deadline_points();
      const std::vector<double>& demand = ctx.edf_demand_at_points();
      for (std::size_t k = 0; k < points.size(); ++k) {
        if (!leq_tol(demand[k] + growth * p.edf_contrib[k],
                     p.supply.value(points[k]))) {
          return false;
        }
      }
      if (!ctx.dl_exact()) {
        // QPA tail closure with the scaled demand line: both U and c grow
        // linearly in (lambda - 1).
        const double tail = rt::qpa_horizon(
            ctx.utilization() + growth * p.u_delta,
            ctx.dl_util_const() + growth * p.c_delta, p.supply.rate(),
            p.supply.floor_delay());
        if (!leq_tol(tail, ctx.dl_horizon())) return false;
      }
      return true;
    }
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      const std::vector<double>& points = ctx.scheduling_points(i);
      const std::vector<double>& workloads = ctx.fp_point_workloads(i);
      bool ok = false;
      for (std::size_t k = 0; k < points.size(); ++k) {
        if (leq_tol(workloads[k] + growth * p.fp_contrib[i][k],
                    p.supply.value(points[k]))) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    return true;
  };

  const auto feasible = [&](double lambda) {
    for (const auto& [wcet, deadline] : limits) {
      if (wcet * lambda > deadline * (1.0 + 1e-12)) return false;
    }
    for (const ScaledProbe& p : probes) {
      if (!probe_ok(p, lambda)) return false;
    }
    return true;
  };

  if (feasible(lambda_max)) return lambda_max;
  double lo = 1.0, hi = lambda_max;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double BatchEngine::wcet_scale_margin(const core::ModeSchedule& schedule,
                                      const std::string& task_name,
                                      double lambda_max,
                                      double tolerance) const {
  return margin_impl(schedule, task_name, lambda_max, tolerance,
                     verify(schedule));
}

std::vector<core::TaskMargin> BatchEngine::sensitivity_report(
    const core::ModeSchedule& schedule, double lambda_max) const {
  // The lambda = 1 feasibility of the *unscaled* system is shared by every
  // row: verify once, not once per task.
  const bool base_feasible = verify(schedule);
  std::vector<core::TaskMargin> out = task_rows_;
  par::parallel_for(out.size(), [&](std::size_t i) {
    // An empty name would silently select the global (all-tasks) margin;
    // reject it like the one-task front always has.
    FLEXRT_REQUIRE(!out[i].name.empty(), "task name must be non-empty");
    out[i].scale_margin =
        margin_impl(schedule, out[i].name, lambda_max, 1e-4, base_feasible);
  });
  return out;
}

double BatchEngine::global_scale_margin(const core::ModeSchedule& schedule,
                                        double lambda_max,
                                        double tolerance) const {
  return margin_impl(schedule, "", lambda_max, tolerance, verify(schedule));
}

}  // namespace flexrt::analysis
