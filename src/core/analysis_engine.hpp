#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/integration.hpp"
#include "core/mode_system.hpp"
#include "core/schedule.hpp"
#include "core/sensitivity.hpp"
#include "hier/sched_test.hpp"
#include "rt/analysis_context.hpp"

namespace flexrt::analysis {

/// Batched analysis engine: the per-partition AnalysisContexts of a
/// ModeTaskSystem built once and probed many times. Every design-space
/// iteration the paper's methodology runs -- lhs(P) curves, feasible-period
/// searches, quantum bisections, WCET sensitivity margins -- re-asks the
/// same task sets the same questions at different supplies; the engine
/// caches the task-set side (scheduling points, deadline sets, demand
/// curves) so each probe only evaluates the supply.
///
/// Construction is cheap (task-set snapshots; caches materialize lazily on
/// first probe) and the engine is immutable afterwards: const engines are
/// safe to probe from multiple threads, which is what the parallel sweep
/// methods (sample_region, max_feasible_period, sensitivity_report) do via
/// par::parallel_for.
///
/// The free functions in core/integration.hpp and core/sensitivity.hpp are
/// one-shot conveniences that build a throwaway engine; hold a BatchEngine
/// when issuing many queries against one system.
class BatchEngine {
 public:
  /// `dl_opts` controls the QPA bounding/condensation of every partition's
  /// EDF deadline set (rt/deadline_bound.hpp) and `fp_opts` the per-task
  /// FP scheduling-point condensation (rt/sched_points.hpp); the default
  /// budgets keep paper-scale systems exact and make hyperperiod-hostile /
  /// point-hostile generated systems tractable via the condensed safe
  /// over-approximations.
  BatchEngine(const core::ModeTaskSystem& sys, hier::Scheduler alg,
              const rt::DlBoundOptions& dl_opts = {},
              const rt::FpPointOptions& fp_opts = {});

  hier::Scheduler scheduler() const noexcept { return alg_; }

  /// The bounding options every partition context was built with
  /// (provenance: the budgets behind each answer).
  const rt::DlBoundOptions& dl_options() const noexcept { return dl_opts_; }
  const rt::FpPointOptions& fp_options() const noexcept { return fp_opts_; }

  /// True iff every EDF probe so far was exact: under FP this is trivially
  /// true (the EDF caches are never consulted), under EDF it asks each
  /// partition whether its bounded deadline set covers the full
  /// hyperperiod. Calling it materializes the EDF caches, so ask *after*
  /// probing (the answer is the provenance of those probes). When false,
  /// answers are safe over-approximations and an adaptive re-probe at a
  /// larger budget (rt::next_budget_rung) can tighten them.
  bool dl_exact() const;

  /// FP-side twin of dl_exact(): true iff every partition's scheduling
  /// points are the full Bini-Buttazzo sets (trivially true under EDF).
  /// Same caveat: calling it materializes the FP caches.
  bool fp_exact() const;

  /// dl_exact() && fp_exact(): whether the final answers of this engine
  /// are exact rather than safe over-approximations -- the exactness the
  /// accuracy ladder (svc::run_ladder) stops on.
  bool exact() const { return dl_exact() && fp_exact(); }

  // --- period-side kernels (Eq. 15) --------------------------------------

  /// max over the mode's channels of minQ(T_k^i, alg, P); FP channels are
  /// analysed in deadline-monotonic order (== core::mode_min_quantum).
  double mode_min_quantum(rt::Mode mode, double period,
                          bool use_exact_supply = false) const;

  /// lhs(P) = P - sum_k mode_min_quantum(k, P)  (== core::feasibility_margin).
  double feasibility_margin(double period, bool use_exact_supply = false) const;

  /// Figure-4 series over [p_min, p_max]; grid samples run under
  /// par::parallel_for.
  std::vector<core::RegionSample> sample_region(
      const core::SearchOptions& opts = {}) const;

  /// sup { P : lhs(P) >= o_tot }; the grid scan evaluates blocks of
  /// candidate periods in parallel, the refinement bisection is serial.
  double max_feasible_period(double o_tot,
                             const core::SearchOptions& opts = {}) const;

  /// argmax_P lhs(P)  (== core::max_admissible_overhead).
  core::OverheadLimit max_admissible_overhead(
      const core::SearchOptions& opts = {}) const;

  /// argmax_P (lhs(P) - o_tot)/P  (== core::max_slack_period).
  core::SlackOptimum max_slack_period(double o_tot,
                                      const core::SearchOptions& opts = {}) const;

  // --- schedule-side kernels (Eq. 12-14, sensitivity) ---------------------

  /// == core::verify_schedule against the cached contexts.
  bool verify(const core::ModeSchedule& schedule,
              bool use_exact_supply = false) const;

  /// Largest lambda keeping every partition schedulable when the WCETs of
  /// tasks named `task_name` (every task when empty) scale by lambda. The
  /// probe scales the cached demand curves in place -- no ModeTaskSystem
  /// copy, no point re-derivation -- so one bisection step is a pass over
  /// cached points.
  double wcet_scale_margin(const core::ModeSchedule& schedule,
                           const std::string& task_name,
                           double lambda_max = 16.0,
                           double tolerance = 1e-4) const;

  /// Margins for every task (system iteration order), computed under
  /// par::parallel_for with the lambda=1 feasibility check hoisted out of
  /// the per-task loop.
  std::vector<core::TaskMargin> sensitivity_report(
      const core::ModeSchedule& schedule, double lambda_max = 16.0) const;

  /// Margin when every task scales together (task_name = "").
  double global_scale_margin(const core::ModeSchedule& schedule,
                             double lambda_max = 16.0,
                             double tolerance = 1e-4) const;

 private:
  struct Partition {
    rt::Mode mode{};
    std::unique_ptr<rt::AnalysisContext> ctx;
  };

  /// Per-partition demand deltas of one scaling probe; see the .cpp.
  struct ScaledProbe;

  core::SearchOptions resolve(core::SearchOptions opts) const;
  double margin_impl(const core::ModeSchedule& schedule,
                     const std::string& task_name, double lambda_max,
                     double tolerance, bool base_feasible) const;

  hier::Scheduler alg_;
  rt::DlBoundOptions dl_opts_;
  rt::FpPointOptions fp_opts_;
  double auto_p_max_ = 0.0;
  bool mode_used_[3] = {false, false, false};
  std::vector<Partition> parts_;
  std::vector<core::TaskMargin> task_rows_;  ///< name/mode/wcet prototypes
};

}  // namespace flexrt::analysis
