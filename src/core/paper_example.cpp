#include "core/paper_example.hpp"

#include "rt/task.hpp"

namespace flexrt::core {

using rt::make_task;
using rt::Mode;

rt::TaskSet paper_example_tasks() {
  rt::TaskSet ts;
  ts.add(make_task("tau1", 1, 6, Mode::NF));
  ts.add(make_task("tau2", 1, 8, Mode::NF));
  ts.add(make_task("tau3", 1, 12, Mode::NF));
  ts.add(make_task("tau4", 2, 10, Mode::NF));
  ts.add(make_task("tau5", 6, 24, Mode::NF));
  ts.add(make_task("tau6", 1, 10, Mode::FS));
  ts.add(make_task("tau7", 1, 15, Mode::FS));
  ts.add(make_task("tau8", 2, 20, Mode::FS));
  ts.add(make_task("tau9", 1, 4, Mode::FS));
  ts.add(make_task("tau10", 1, 12, Mode::FT));
  ts.add(make_task("tau11", 1, 15, Mode::FT));
  ts.add(make_task("tau12", 1, 20, Mode::FT));
  ts.add(make_task("tau13", 2, 30, Mode::FT));
  return ts;
}

ModeTaskSystem paper_example() {
  const rt::TaskSet all = paper_example_tasks();
  auto named = [&](std::initializer_list<const char*> names) {
    rt::TaskSet out;
    for (const char* name : names) {
      for (const rt::Task& t : all) {
        if (t.name == name) out.add(t);
      }
    }
    return out;
  };
  std::vector<rt::TaskSet> nf = {named({"tau1"}), named({"tau2", "tau3"}),
                                 named({"tau4"}), named({"tau5"})};
  std::vector<rt::TaskSet> fs = {named({"tau6", "tau7", "tau8"}),
                                 named({"tau9"})};
  std::vector<rt::TaskSet> ft = {named({"tau10", "tau11", "tau12", "tau13"})};
  return ModeTaskSystem(std::move(ft), std::move(fs), std::move(nf));
}

}  // namespace flexrt::core
