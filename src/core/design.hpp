#pragma once

#include "core/integration.hpp"
#include "core/mode_system.hpp"
#include "core/schedule.hpp"

namespace flexrt::analysis {
class BatchEngine;
}  // namespace flexrt::analysis

namespace flexrt::core {

/// The two design goals worked out in the paper's §4.
enum class DesignGoal {
  /// G1: minimize the bandwidth wasted in mode switches, O_tot / P.
  /// Achieved by the largest feasible period; quanta end up at their minima
  /// with zero slack (the chosen P sits on the boundary of the region).
  MinOverheadBandwidth,
  /// G2: maximize the redistributable slack bandwidth (lhs(P) - O_tot)/P,
  /// so the quanta can be grown/shrunk at run time as tasks come and go.
  MaxSlackBandwidth,
};

const char* to_string(DesignGoal goal) noexcept;

/// A solved design: the schedule plus the analysis facts behind it.
struct Design {
  ModeSchedule schedule;
  hier::Scheduler scheduler = hier::Scheduler::EDF;
  DesignGoal goal = DesignGoal::MinOverheadBandwidth;
  /// minQ of each mode at the chosen period (the usable quanta equal these).
  double min_quantum_ft = 0.0;
  double min_quantum_fs = 0.0;
  double min_quantum_nf = 0.0;
};

/// Solves the design problem of §3.3/§4: picks the period according to the
/// goal, then sets every usable quantum to its minimum minQ(T_k, alg, P*)
/// (Eq. 12-14 tight) and leaves the remaining time as slack. The returned
/// schedule always passes verify_schedule().
///
/// Throws InfeasibleError when no period in the search range admits the
/// requested total overhead.
Design solve_design(const ModeTaskSystem& sys, hier::Scheduler alg,
                    const Overheads& overheads, DesignGoal goal,
                    const SearchOptions& opts = {});

/// Engine-threaded variant: solves against an existing BatchEngine (whose
/// scheduler decides the analysis), so a sweep over overheads/goals -- the
/// grid refinement pattern of the sensitivity studies -- reuses one set of
/// per-partition caches instead of rebuilding them per call. The TaskSystem
/// front above is a one-shot convenience over a throwaway engine.
Design solve_design(const analysis::BatchEngine& engine,
                    const Overheads& overheads, DesignGoal goal,
                    const SearchOptions& opts = {});

/// Grows the usable quanta of a solved design proportionally until the
/// slack is consumed (what a designer would do when run-time flexibility is
/// *not* wanted: hand every mode its maximal quantum). Keeps feasibility.
ModeSchedule distribute_slack(const Design& design);

}  // namespace flexrt::core
