#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/mode_system.hpp"
#include "core/schedule.hpp"
#include "hier/multi_slot_supply.hpp"
#include "hier/sched_test.hpp"

namespace flexrt::core {

/// One visit of a mode within a generalized frame: usable time followed by
/// the switch-out overhead, like core::Slot but allowed to repeat.
struct GeneralSlot {
  rt::Mode mode = rt::Mode::FT;
  double usable = 0.0;
  double overhead = 0.0;

  double total() const noexcept { return usable + overhead; }
};

/// A mode-switching frame where each mode may be served by SEVERAL slots
/// per period, in any order -- the paper's §5 future-work generalization
/// ("the same fault-tolerance service during more than one time quantum per
/// period", and, by giving the slots of different modes any order,
/// "different fault-tolerance services during the same time quantum per
/// period" patterns as well).
///
/// Visiting a mode k times per period keeps its bandwidth but divides its
/// service delay roughly by k, at the price of k switch-out overheads
/// instead of one. solve_interleaved() searches that trade-off.
class GeneralFrame {
 public:
  /// Slots are laid out back-to-back from time 0; the remainder of the
  /// period is slack at the end. Throws when the slots overflow the period.
  GeneralFrame(double period, std::vector<GeneralSlot> slots);

  double period() const noexcept { return period_; }
  std::span<const GeneralSlot> slots() const noexcept { return slots_; }

  double slack() const noexcept;
  double total_usable(rt::Mode mode) const noexcept;
  double total_overhead() const noexcept;
  std::size_t visits(rt::Mode mode) const noexcept;

  /// Start offset of slot `i` within the frame.
  double slot_offset(std::size_t i) const noexcept;

  /// Exact supply the mode receives from its windows at their actual
  /// positions in the frame.
  hier::MultiSlotSupply supply(rt::Mode mode) const;

  /// The equivalent single-slot frame of a classic ModeSchedule.
  static GeneralFrame from_schedule(const ModeSchedule& schedule);

 private:
  double period_;
  std::vector<GeneralSlot> slots_;
};

/// Checks every channel of every mode against the mode's multi-slot supply.
bool verify_frame(const ModeTaskSystem& sys, const GeneralFrame& frame,
                  hier::Scheduler alg);

/// Splits each mode's slot of `base` into `k` equal visits, interleaved
/// round-robin (FT FS NF FT FS NF ...). Every visit pays the full
/// switch-out overhead of its mode. Throws when the extra overhead
/// overflows the period.
GeneralFrame interleave(const ModeSchedule& base, std::size_t k);

/// Searches for the smallest per-mode budgets such that the interleaved
/// frame (k visits per mode, round-robin) is schedulable at the given
/// period: coordinate-descent bisection on one mode's budget at a time with
/// a final verify_frame() pass. Throws InfeasibleError when no feasible
/// budget assignment is found.
GeneralFrame solve_interleaved(const ModeTaskSystem& sys, hier::Scheduler alg,
                               const Overheads& overheads, double period,
                               std::size_t k);

}  // namespace flexrt::core
