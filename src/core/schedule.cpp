#include "core/schedule.hpp"

#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "rt/priority.hpp"

namespace flexrt::core {

const Slot& ModeSchedule::slot(rt::Mode mode) const noexcept {
  switch (mode) {
    case rt::Mode::FT:
      return ft;
    case rt::Mode::FS:
      return fs;
    case rt::Mode::NF:
      return nf;
  }
  return ft;
}

Slot& ModeSchedule::slot(rt::Mode mode) noexcept {
  return const_cast<Slot&>(std::as_const(*this).slot(mode));
}

hier::LinearSupply ModeSchedule::supply(rt::Mode mode) const {
  const Slot& s = slot(mode);
  return hier::LinearSupply(s.usable / period, period - s.usable);
}

hier::SlotSupply ModeSchedule::exact_supply(rt::Mode mode) const {
  return hier::SlotSupply(period, slot(mode).usable);
}

double ModeSchedule::slot_offset(rt::Mode mode) const noexcept {
  switch (mode) {
    case rt::Mode::FT:
      return 0.0;
    case rt::Mode::FS:
      return ft.total();
    case rt::Mode::NF:
      return ft.total() + fs.total();
  }
  return 0.0;
}

void ModeSchedule::validate() const {
  FLEXRT_REQUIRE(period > 0.0, "schedule period must be > 0");
  for (const rt::Mode mode : kAllModes) {
    const Slot& s = slot(mode);
    FLEXRT_REQUIRE(s.usable >= 0.0, "usable quantum must be >= 0");
    FLEXRT_REQUIRE(s.overhead >= 0.0, "overhead must be >= 0");
  }
  FLEXRT_REQUIRE(slack() >= -1e-9 * period,
                 "slots exceed the period: no valid frame");
}

bool verify_schedule(const ModeTaskSystem& sys, const ModeSchedule& schedule,
                     hier::Scheduler alg, bool use_exact_supply) {
  schedule.validate();
  for (const rt::Mode mode : kAllModes) {
    if (sys.mode_tasks(mode).empty()) {
      continue;  // unused mode needs no quantum
    }
    if (schedule.slot(mode).usable <= 0.0) {
      return false;  // tasks but no supply at all
    }
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      if (ts.empty()) continue;
      const rt::TaskSet ordered = alg == hier::Scheduler::FP
                                      ? rt::sort_deadline_monotonic(ts)
                                      : ts;
      const bool ok =
          use_exact_supply
              ? hier::schedulable(ordered, alg, schedule.exact_supply(mode))
              : hier::schedulable(ordered, alg, schedule.supply(mode));
      if (!ok) return false;
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const ModeSchedule& schedule) {
  os << "ModeSchedule{P=" << schedule.period;
  for (const rt::Mode mode : kAllModes) {
    const Slot& s = schedule.slot(mode);
    os << ", " << rt::to_string(mode) << ": Q~=" << s.usable
       << " O=" << s.overhead;
  }
  os << ", slack=" << schedule.slack() << "}";
  return os;
}

}  // namespace flexrt::core
