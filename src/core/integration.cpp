#include "core/integration.hpp"

#include <algorithm>

#include "core/analysis_engine.hpp"

namespace flexrt::core {

// The period-side kernels are one-shot fronts over the batched analysis
// engine (analysis::BatchEngine): each call snapshots the system into
// per-partition AnalysisContexts, so a whole sweep (grid scan + refinement)
// derives scheduling points / deadline sets / demand curves exactly once
// and the grid samples run under par::parallel_for. Callers issuing many
// queries against one system should hold a BatchEngine themselves.

double auto_period_bound(const ModeTaskSystem& sys) {
  double max_deadline = 1.0;
  for (const rt::Mode mode : kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        max_deadline = std::max(max_deadline, t.deadline);
      }
    }
  }
  return 3.0 * max_deadline;
}

double mode_min_quantum(const ModeTaskSystem& sys, rt::Mode mode,
                        hier::Scheduler alg, double period,
                        bool use_exact_supply) {
  return analysis::BatchEngine(sys, alg)
      .mode_min_quantum(mode, period, use_exact_supply);
}

double feasibility_margin(const ModeTaskSystem& sys, hier::Scheduler alg,
                          double period, bool use_exact_supply) {
  return analysis::BatchEngine(sys, alg)
      .feasibility_margin(period, use_exact_supply);
}

std::vector<RegionSample> sample_region(const ModeTaskSystem& sys,
                                        hier::Scheduler alg,
                                        const SearchOptions& opts) {
  return analysis::BatchEngine(sys, alg).sample_region(opts);
}

double max_feasible_period(const ModeTaskSystem& sys, hier::Scheduler alg,
                           double o_tot, const SearchOptions& opts) {
  return analysis::BatchEngine(sys, alg).max_feasible_period(o_tot, opts);
}

OverheadLimit max_admissible_overhead(const ModeTaskSystem& sys,
                                      hier::Scheduler alg,
                                      const SearchOptions& opts) {
  return analysis::BatchEngine(sys, alg).max_admissible_overhead(opts);
}

SlackOptimum max_slack_period(const ModeTaskSystem& sys, hier::Scheduler alg,
                              double o_tot, const SearchOptions& opts) {
  return analysis::BatchEngine(sys, alg).max_slack_period(o_tot, opts);
}

}  // namespace flexrt::core
