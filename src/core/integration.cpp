#include "core/integration.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "svc/analysis_service.hpp"

namespace flexrt::core {

// The period-side kernels are one-shot fronts over the multi-system
// analysis service (svc::AnalysisService): each call wraps the system into
// a throwaway one-entry service and issues the corresponding typed request
// under the fixed default accuracy policy, which reproduces the direct
// BatchEngine probes bit for bit (parity-tested). Callers issuing many
// queries -- or querying many systems -- should hold an AnalysisService
// (or, per system, its cached BatchEngine) themselves.

namespace {

using svc::OneShotService;

/// Results of answer-less entries carry the failure as a string; the free
/// functions re-raise it as the ModelError it started as.
template <typename Result>
const Result& checked(const Result& r) {
  if (!r.ok()) throw ModelError(r.error);
  return r;
}

}  // namespace

double auto_period_bound(const ModeTaskSystem& sys) {
  double max_deadline = 1.0;
  for (const rt::Mode mode : kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        max_deadline = std::max(max_deadline, t.deadline);
      }
    }
  }
  return 3.0 * max_deadline;
}

double mode_min_quantum(const ModeTaskSystem& sys, rt::Mode mode,
                        hier::Scheduler alg, double period,
                        bool use_exact_supply) {
  const OneShotService s(sys);
  const svc::MinQuantumResult r = checked(
      s.service.min_quantum_one(0, {alg, period, use_exact_supply, {}}));
  return r.mode_quantum[static_cast<std::size_t>(mode)];
}

double feasibility_margin(const ModeTaskSystem& sys, hier::Scheduler alg,
                          double period, bool use_exact_supply) {
  const OneShotService s(sys);
  return checked(
             s.service.min_quantum_one(0, {alg, period, use_exact_supply, {}}))
      .margin;
}

std::vector<RegionSample> sample_region(const ModeTaskSystem& sys,
                                        hier::Scheduler alg,
                                        const SearchOptions& opts) {
  const OneShotService s(sys);
  return checked(s.service.region_sweep_one(0, {alg, opts, {}})).samples;
}

double max_feasible_period(const ModeTaskSystem& sys, hier::Scheduler alg,
                           double o_tot, const SearchOptions& opts) {
  return OneShotService(sys).service.engine(0, alg).max_feasible_period(o_tot, opts);
}

OverheadLimit max_admissible_overhead(const ModeTaskSystem& sys,
                                      hier::Scheduler alg,
                                      const SearchOptions& opts) {
  return OneShotService(sys).service.engine(0, alg).max_admissible_overhead(opts);
}

SlackOptimum max_slack_period(const ModeTaskSystem& sys, hier::Scheduler alg,
                              double o_tot, const SearchOptions& opts) {
  return OneShotService(sys).service.engine(0, alg).max_slack_period(o_tot, opts);
}

}  // namespace flexrt::core
