#include "core/integration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "rt/priority.hpp"

namespace flexrt::core {
namespace {

double partition_min_quantum(const rt::TaskSet& ts, hier::Scheduler alg,
                             double period, bool exact) {
  if (ts.empty()) return 0.0;
  // FP analyses need the set in priority order; deadline-monotonic is the
  // paper's "RM" for implicit deadlines and optimal for constrained ones.
  const rt::TaskSet ordered = alg == hier::Scheduler::FP
                                  ? rt::sort_deadline_monotonic(ts)
                                  : ts;
  return exact ? hier::min_quantum_exact(ordered, alg, period)
               : hier::min_quantum(ordered, alg, period);
}

SearchOptions resolve(const ModeTaskSystem& sys, SearchOptions opts) {
  if (opts.p_max <= 0.0) opts.p_max = auto_period_bound(sys);
  FLEXRT_REQUIRE(opts.p_min > 0.0 && opts.p_min < opts.p_max,
                 "invalid period search range");
  FLEXRT_REQUIRE(opts.grid_step > 0.0, "grid step must be > 0");
  return opts;
}

}  // namespace

double auto_period_bound(const ModeTaskSystem& sys) {
  double max_deadline = 1.0;
  for (const rt::Mode mode : kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        max_deadline = std::max(max_deadline, t.deadline);
      }
    }
  }
  return 3.0 * max_deadline;
}

double mode_min_quantum(const ModeTaskSystem& sys, rt::Mode mode,
                        hier::Scheduler alg, double period,
                        bool use_exact_supply) {
  double worst = 0.0;
  for (const rt::TaskSet& ts : sys.partitions(mode)) {
    worst = std::max(
        worst, partition_min_quantum(ts, alg, period, use_exact_supply));
  }
  return worst;
}

double feasibility_margin(const ModeTaskSystem& sys, hier::Scheduler alg,
                          double period, bool use_exact_supply) {
  double sum = 0.0;
  for (const rt::Mode mode : kAllModes) {
    sum += mode_min_quantum(sys, mode, alg, period, use_exact_supply);
  }
  return period - sum;
}

std::vector<RegionSample> sample_region(const ModeTaskSystem& sys,
                                        hier::Scheduler alg,
                                        const SearchOptions& opts_in) {
  const SearchOptions opts = resolve(sys, opts_in);
  std::vector<RegionSample> out;
  const auto n = static_cast<std::size_t>(
      std::ceil((opts.p_max - opts.p_min) / opts.grid_step));
  out.reserve(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const double p =
        std::min(opts.p_max, opts.p_min + static_cast<double>(i) * opts.grid_step);
    out.push_back(
        {p, feasibility_margin(sys, alg, p, opts.use_exact_supply)});
  }
  return out;
}

double max_feasible_period(const ModeTaskSystem& sys, hier::Scheduler alg,
                           double o_tot, const SearchOptions& opts_in) {
  const SearchOptions opts = resolve(sys, opts_in);
  const auto margin = [&](double p) {
    return feasibility_margin(sys, alg, p, opts.use_exact_supply);
  };
  // Scan downward: the first feasible grid point bounds the answer from
  // below; the previous (infeasible) point bounds it from above.
  double feasible = -1.0;
  double infeasible_above = opts.p_max;
  for (double p = opts.p_max; p >= opts.p_min; p -= opts.grid_step) {
    if (margin(p) >= o_tot) {
      feasible = p;
      break;
    }
    infeasible_above = p;
  }
  if (feasible < 0.0) {
    throw InfeasibleError(
        "no feasible period found in the search range (O_tot too large?)");
  }
  double lo = feasible;
  double hi = infeasible_above;
  while (hi - lo > opts.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (margin(mid) >= o_tot) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

OverheadLimit max_admissible_overhead(const ModeTaskSystem& sys,
                                      hier::Scheduler alg,
                                      const SearchOptions& opts_in) {
  const SearchOptions opts = resolve(sys, opts_in);
  const auto margin = [&](double p) {
    return feasibility_margin(sys, alg, p, opts.use_exact_supply);
  };
  // Coarse scan for the best grid point, then a fine local scan around it.
  double best_p = opts.p_min;
  double best_m = margin(best_p);
  for (double p = opts.p_min; p <= opts.p_max; p += opts.grid_step) {
    const double m = margin(p);
    if (m > best_m) {
      best_m = m;
      best_p = p;
    }
  }
  const double lo = std::max(opts.p_min, best_p - 2.0 * opts.grid_step);
  const double hi = std::min(opts.p_max, best_p + 2.0 * opts.grid_step);
  const double fine = std::max(opts.tolerance, opts.grid_step * 1e-3);
  for (double p = lo; p <= hi; p += fine) {
    const double m = margin(p);
    if (m > best_m) {
      best_m = m;
      best_p = p;
    }
  }
  return {best_p, best_m};
}

SlackOptimum max_slack_period(const ModeTaskSystem& sys, hier::Scheduler alg,
                              double o_tot, const SearchOptions& opts_in) {
  const SearchOptions opts = resolve(sys, opts_in);
  const auto slack_bw = [&](double p) {
    return (feasibility_margin(sys, alg, p, opts.use_exact_supply) - o_tot) /
           p;
  };
  double best_p = -1.0;
  double best = -std::numeric_limits<double>::infinity();
  for (double p = opts.p_min; p <= opts.p_max; p += opts.grid_step) {
    const double s = slack_bw(p);
    if (s > best) {
      best = s;
      best_p = p;
    }
  }
  if (best < 0.0) {
    throw InfeasibleError(
        "no feasible period in the search range: slack is negative "
        "everywhere");
  }
  const double lo = std::max(opts.p_min, best_p - 2.0 * opts.grid_step);
  const double hi = std::min(opts.p_max, best_p + 2.0 * opts.grid_step);
  const double fine = std::max(opts.tolerance, opts.grid_step * 1e-3);
  for (double p = lo; p <= hi; p += fine) {
    const double s = slack_bw(p);
    if (s > best) {
      best = s;
      best_p = p;
    }
  }
  return {best_p, best * best_p, best};
}

}  // namespace flexrt::core
