#include "core/sensitivity.hpp"

#include <cmath>

#include "common/error.hpp"

namespace flexrt::core {
namespace {

/// Copy of `sys` with every task whose name matches scaled by lambda
/// (empty name = every task). Callers guarantee the scale keeps C <= D
/// (feasible_at pre-checks), so the scaled tasks stay valid.
ModeTaskSystem scaled(const ModeTaskSystem& sys, const std::string& name,
                      double lambda) {
  ModeTaskSystem out = sys;
  for (const rt::Mode mode : kAllModes) {
    std::vector<rt::TaskSet> parts;
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      rt::TaskSet scaled_ts;
      for (rt::Task t : ts) {
        if (name.empty() || t.name == name) t.wcet *= lambda;
        scaled_ts.add(std::move(t));
      }
      parts.push_back(std::move(scaled_ts));
    }
    out.set_partitions(mode, std::move(parts));
  }
  return out;
}

bool feasible_at(const ModeTaskSystem& sys, const ModeSchedule& schedule,
                 hier::Scheduler alg, const std::string& name,
                 double lambda) {
  // A scale that pushes any matching task past its deadline is infeasible
  // by definition (C > D).
  for (const rt::Mode mode : kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        if ((name.empty() || t.name == name) &&
            t.wcet * lambda > t.deadline * (1.0 + 1e-12)) {
          return false;
        }
      }
    }
  }
  return verify_schedule(scaled(sys, name, lambda), schedule, alg);
}

double bisect_margin(const ModeTaskSystem& sys, const ModeSchedule& schedule,
                     hier::Scheduler alg, const std::string& name,
                     double lambda_max, double tolerance) {
  FLEXRT_REQUIRE(lambda_max >= 1.0, "lambda_max must be >= 1");
  if (!feasible_at(sys, schedule, alg, name, 1.0)) return 1.0;
  if (feasible_at(sys, schedule, alg, name, lambda_max)) return lambda_max;
  double lo = 1.0, hi = lambda_max;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(sys, schedule, alg, name, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

double wcet_scale_margin(const ModeTaskSystem& sys,
                         const ModeSchedule& schedule, hier::Scheduler alg,
                         const std::string& task_name, double lambda_max,
                         double tolerance) {
  FLEXRT_REQUIRE(!task_name.empty(), "task name must be non-empty");
  return bisect_margin(sys, schedule, alg, task_name, lambda_max, tolerance);
}

std::vector<TaskMargin> sensitivity_report(const ModeTaskSystem& sys,
                                           const ModeSchedule& schedule,
                                           hier::Scheduler alg,
                                           double lambda_max) {
  std::vector<TaskMargin> out;
  for (const rt::Mode mode : kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        out.push_back({t.name, mode, t.wcet,
                       wcet_scale_margin(sys, schedule, alg, t.name,
                                         lambda_max)});
      }
    }
  }
  return out;
}

double global_scale_margin(const ModeTaskSystem& sys,
                           const ModeSchedule& schedule, hier::Scheduler alg,
                           double lambda_max, double tolerance) {
  return bisect_margin(sys, schedule, alg, "", lambda_max, tolerance);
}

}  // namespace flexrt::core
