#include "core/sensitivity.hpp"

#include "common/error.hpp"
#include "core/analysis_engine.hpp"

namespace flexrt::core {

// All three entry points delegate to the batched analysis engine: a probe
// at scale lambda tests  base_demand + (lambda - 1) * task_contribution
// against the supply over cached points, so no ModeTaskSystem is ever
// copied and no scheduling point or deadline set is re-derived during the
// bisection. sensitivity_report additionally hoists the lambda = 1
// feasibility check out of the per-task loop and runs the per-task margins
// under par::parallel_for.

double wcet_scale_margin(const ModeTaskSystem& sys,
                         const ModeSchedule& schedule, hier::Scheduler alg,
                         const std::string& task_name, double lambda_max,
                         double tolerance) {
  FLEXRT_REQUIRE(!task_name.empty(), "task name must be non-empty");
  return analysis::BatchEngine(sys, alg)
      .wcet_scale_margin(schedule, task_name, lambda_max, tolerance);
}

std::vector<TaskMargin> sensitivity_report(const ModeTaskSystem& sys,
                                           const ModeSchedule& schedule,
                                           hier::Scheduler alg,
                                           double lambda_max) {
  return analysis::BatchEngine(sys, alg)
      .sensitivity_report(schedule, lambda_max);
}

double global_scale_margin(const ModeTaskSystem& sys,
                           const ModeSchedule& schedule, hier::Scheduler alg,
                           double lambda_max, double tolerance) {
  return analysis::BatchEngine(sys, alg)
      .global_scale_margin(schedule, lambda_max, tolerance);
}

}  // namespace flexrt::core
