#include "core/sensitivity.hpp"

#include "common/error.hpp"
#include "svc/analysis_service.hpp"

namespace flexrt::core {

// One-shot fronts over the analysis service (svc::AnalysisService): each
// call wraps the system into a one-entry service and issues a
// SensitivityRequest under the fixed default accuracy policy, which
// reproduces the direct BatchEngine margins bit for bit. A probe at scale
// lambda still tests  base_demand + (lambda - 1) * task_contribution
// against the supply over cached points (see BatchEngine::ScaledProbe);
// the service adds the fleet/accuracy front on top.

using svc::OneShotService;

double wcet_scale_margin(const ModeTaskSystem& sys,
                         const ModeSchedule& schedule, hier::Scheduler alg,
                         const std::string& task_name, double lambda_max,
                         double tolerance) {
  FLEXRT_REQUIRE(!task_name.empty(), "task name must be non-empty");
  svc::SensitivityRequest req;
  req.alg = alg;
  req.schedule = schedule;
  req.task = task_name;
  req.lambda_max = lambda_max;
  req.tolerance = tolerance;
  const svc::SensitivityResult r =
      OneShotService(sys).service.sensitivity_one(0, req);
  if (!r.ok()) throw ModelError(r.error);
  return r.margins.at(0).scale_margin;
}

std::vector<TaskMargin> sensitivity_report(const ModeTaskSystem& sys,
                                           const ModeSchedule& schedule,
                                           hier::Scheduler alg,
                                           double lambda_max) {
  svc::SensitivityRequest req;
  req.alg = alg;
  req.schedule = schedule;
  req.include_global = false;
  req.lambda_max = lambda_max;
  svc::SensitivityResult r =
      OneShotService(sys).service.sensitivity_one(0, req);
  if (!r.ok()) throw ModelError(r.error);
  return std::move(r.margins);
}

double global_scale_margin(const ModeTaskSystem& sys,
                           const ModeSchedule& schedule, hier::Scheduler alg,
                           double lambda_max, double tolerance) {
  return OneShotService(sys).service.engine(0, alg).global_scale_margin(
      schedule, lambda_max, tolerance);
}

}  // namespace flexrt::core
