#pragma once

#include <iosfwd>

#include "core/mode_system.hpp"
#include "hier/sched_test.hpp"
#include "hier/supply.hpp"

namespace flexrt::core {

/// One slot of the mode-switching frame: usable time Q~_k followed by the
/// switch-out overhead O_k (paper Fig. 2); the slot occupies Q_k = Q~_k + O_k.
struct Slot {
  double usable = 0.0;    ///< Q~_k, time delivered to the mode's tasks
  double overhead = 0.0;  ///< O_k, charged at the end of the slot

  double total() const noexcept { return usable + overhead; }
};

/// A fully specified mode-switching frame: period P and the three slots in
/// their fixed order FT, FS, NF. Any time left over
/// (P - Q_FT - Q_FS - Q_NF) is *slack*: bandwidth that can be redistributed
/// to any mode at run time (design goal G2 maximizes it).
struct ModeSchedule {
  double period = 0.0;
  Slot ft;
  Slot fs;
  Slot nf;

  const Slot& slot(rt::Mode mode) const noexcept;
  Slot& slot(rt::Mode mode) noexcept;

  /// Unallocated time per period.
  double slack() const noexcept {
    return period - ft.total() - fs.total() - nf.total();
  }

  /// slack() / period: the redistributable bandwidth of Table 2.
  double slack_bandwidth() const noexcept { return slack() / period; }

  /// Bandwidth allocated to a mode, Q~_k / P (Table 2 "alloc. util").
  double allocated_bandwidth(rt::Mode mode) const noexcept {
    return slot(mode).usable / period;
  }

  /// Fraction of the timeline spent switching, O_tot / P.
  double overhead_bandwidth() const noexcept {
    return (ft.overhead + fs.overhead + nf.overhead) / period;
  }

  /// Linear supply bound of a mode: alpha = Q~/P, delta = P - Q~ (Eq. 2/3).
  hier::LinearSupply supply(rt::Mode mode) const;

  /// Exact slot supply of a mode (Lemma 1).
  hier::SlotSupply exact_supply(rt::Mode mode) const;

  /// Start offset of the mode's slot within the frame (FT at 0, FS after
  /// the whole FT slot, NF after FS; slack sits at the end of the frame).
  double slot_offset(rt::Mode mode) const noexcept;

  /// Throws ModelError unless P > 0, all slots fit (slack >= -eps) and each
  /// usable length is non-negative.
  void validate() const;
};

/// Checks Eq. (12)-(14): every channel of every mode schedulable under the
/// schedule's linear supply (or exact slot supply when `use_exact_supply`).
bool verify_schedule(const ModeTaskSystem& sys, const ModeSchedule& schedule,
                     hier::Scheduler alg, bool use_exact_supply = false);

/// Human-readable one-schedule summary (period, slots, bandwidths).
std::ostream& operator<<(std::ostream& os, const ModeSchedule& schedule);

}  // namespace flexrt::core
