#include "core/study_runner.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace flexrt::core {

ShardSpec parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  FLEXRT_REQUIRE(slash != std::string::npos && slash > 0 &&
                     slash + 1 < text.size(),
                 "shard must look like k/N, e.g. 2/4");
  char* rest = nullptr;
  const long k = std::strtol(text.c_str(), &rest, 10);
  FLEXRT_REQUIRE(rest == text.c_str() + slash, "shard index is not a number");
  const long n = std::strtol(text.c_str() + slash + 1, &rest, 10);
  FLEXRT_REQUIRE(*rest == '\0', "shard count is not a number");
  FLEXRT_REQUIRE(n >= 1, "shard count must be >= 1");
  FLEXRT_REQUIRE(k >= 1 && k <= n, "shard index must be in [1, N]");
  return {static_cast<std::size_t>(k - 1), static_cast<std::size_t>(n)};
}

std::pair<std::size_t, std::size_t> shard_range(std::size_t trials,
                                                const ShardSpec& shard) {
  FLEXRT_REQUIRE(shard.count >= 1 && shard.index < shard.count,
                 "invalid shard spec");
  const std::size_t per = trials / shard.count;
  const std::size_t rem = trials % shard.count;
  const std::size_t begin =
      shard.index * per + std::min(shard.index, rem);
  const std::size_t size = per + (shard.index < rem ? 1 : 0);
  return {begin, begin + size};
}

namespace {

/// Whole-token unsigned parse; throws ModelError on trailing garbage so a
/// typo like "--trials abc" fails loudly instead of silently running a
/// 0-trial study (same strictness as parse_shard).
std::uint64_t parse_count(const char* flag, const char* text, int base) {
  char* rest = nullptr;
  const unsigned long long v = std::strtoull(text, &rest, base);
  FLEXRT_REQUIRE(rest != text && *rest == '\0',
                 std::string(flag) + ": bad value '" + text + "'");
  return v;
}

}  // namespace

bool parse_study_flag(StudyOptions& opts, int argc, char** argv, int& i,
                      const char* trials_flag) {
  const std::string arg = argv[i];
  const bool has_value = i + 1 < argc;
  if (arg == trials_flag && has_value) {
    opts.trials =
        static_cast<std::size_t>(parse_count(trials_flag, argv[++i], 10));
    return true;
  }
  if (arg == "--seed" && has_value) {
    opts.base_seed = parse_count("--seed", argv[++i], 0);
    return true;
  }
  if (arg == "--shard" && has_value) {
    opts.shard = parse_shard(argv[++i]);
    return true;
  }
  return false;
}

Rng trial_rng(std::uint64_t base_seed, std::size_t index) noexcept {
  // Distinct per-trial streams: the Rng constructor splitmixes the seed, so
  // a golden-ratio stride on the index is enough to decorrelate trials.
  return Rng(base_seed + 0x9E3779B97F4A7C15ULL *
                             (static_cast<std::uint64_t>(index) + 1));
}

}  // namespace flexrt::core
