#include "core/mode_system.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexrt::core {

double Overheads::of(rt::Mode mode) const noexcept {
  switch (mode) {
    case rt::Mode::FT:
      return ft;
    case rt::Mode::FS:
      return fs;
    case rt::Mode::NF:
      return nf;
  }
  return 0.0;
}

ModeTaskSystem::ModeTaskSystem(std::vector<rt::TaskSet> ft,
                               std::vector<rt::TaskSet> fs,
                               std::vector<rt::TaskSet> nf) {
  set_partitions(rt::Mode::FT, std::move(ft));
  set_partitions(rt::Mode::FS, std::move(fs));
  set_partitions(rt::Mode::NF, std::move(nf));
}

void ModeTaskSystem::check_mode(rt::Mode mode,
                                const std::vector<rt::TaskSet>& parts) const {
  FLEXRT_REQUIRE(parts.size() <= num_channels(mode),
                 std::string("too many partitions for mode ") +
                     rt::to_string(mode));
  for (const rt::TaskSet& ts : parts) {
    for (const rt::Task& t : ts) {
      FLEXRT_REQUIRE(t.mode == mode,
                     "task " + t.name + " requires mode " +
                         rt::to_string(t.mode) + " but was partitioned into " +
                         rt::to_string(mode));
    }
  }
}

void ModeTaskSystem::set_partitions(rt::Mode mode,
                                    std::vector<rt::TaskSet> parts) {
  check_mode(mode, parts);
  parts.resize(num_channels(mode));
  parts_[index(mode)] = std::move(parts);
}

std::span<const rt::TaskSet> ModeTaskSystem::partitions(
    rt::Mode mode) const noexcept {
  return parts_[index(mode)];
}

rt::TaskSet ModeTaskSystem::mode_tasks(rt::Mode mode) const {
  rt::TaskSet all;
  for (const rt::TaskSet& ts : parts_[index(mode)]) {
    for (const rt::Task& t : ts) all.add(t);
  }
  return all;
}

std::size_t ModeTaskSystem::num_tasks() const noexcept {
  std::size_t n = 0;
  for (const auto& mode_parts : parts_) {
    for (const rt::TaskSet& ts : mode_parts) n += ts.size();
  }
  return n;
}

double ModeTaskSystem::required_bandwidth(rt::Mode mode) const noexcept {
  double worst = 0.0;
  for (const rt::TaskSet& ts : parts_[index(mode)]) {
    worst = std::max(worst, ts.utilization());
  }
  return worst;
}

}  // namespace flexrt::core
