#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace flexrt::core {

/// One process's share of a sharded study. Shards partition the global
/// trial range contiguously, so N cooperating processes (each launched with
/// --shard k/N) together cover every trial exactly once and their output
/// rows concatenate back into the unsharded result.
struct ShardSpec {
  std::size_t index = 0;  ///< 0-based shard index, < count
  std::size_t count = 1;  ///< total number of shards, >= 1
};

/// Parses the CLI form "k/N" (1-based k, e.g. "--shard 2/4") into a 0-based
/// ShardSpec. Throws ModelError on malformed input or k outside [1, N].
ShardSpec parse_shard(const std::string& text);

/// Global trial range [begin, end) owned by `shard` out of `trials` trials:
/// contiguous blocks, sizes differing by at most one.
std::pair<std::size_t, std::size_t> shard_range(std::size_t trials,
                                                const ShardSpec& shard);

/// Rng for global trial `index`, derived from (base_seed, index) alone --
/// a trial's random stream is identical no matter how the study is sharded
/// across processes or scheduled across threads.
Rng trial_rng(std::uint64_t base_seed, std::size_t index) noexcept;

/// Knobs common to every generated-system study.
struct StudyOptions {
  std::size_t trials = 100;          ///< global trial count (all shards)
  std::uint64_t base_seed = 0x5EED;  ///< per-trial seeds derive from this
  ShardSpec shard;                   ///< this process's share
};

/// Consumes one study CLI flag at argv[i] into `opts`: `trials_flag` N
/// (usually "--trials" or "--gen-trials"), "--seed" S, or "--shard" k/N.
/// Returns true (and advances i past the value) when the flag matched, so
/// the benches share one parsing convention instead of three copies.
bool parse_study_flag(StudyOptions& opts, int argc, char** argv, int& i,
                      const char* trials_flag = "--trials");

/// One shard's rows, indexed by global trial id starting at `begin`.
template <typename Row>
struct StudySlice {
  std::size_t begin = 0;
  std::vector<Row> rows;
};

/// Sharded study driver: partitions the global trial range across shard
/// processes (ShardSpec) and, inside this process, across the
/// par::parallel_for worker pool (FLEXRT_THREADS). `fn(global_index, rng)`
/// produces one row; it runs concurrently for distinct trials, and each
/// trial's rng comes from trial_rng, so the assembled study is
/// deterministic under a fixed base seed regardless of shard layout or
/// thread count. Row must be default-constructible (rows are written into
/// a preallocated slice).
template <typename Fn>
auto run_study(const StudyOptions& opts, Fn&& fn)
    -> StudySlice<decltype(fn(std::size_t{}, std::declval<Rng&>()))> {
  using Row = decltype(fn(std::size_t{}, std::declval<Rng&>()));
  const auto [begin, end] = shard_range(opts.trials, opts.shard);
  StudySlice<Row> out;
  out.begin = begin;
  out.rows.resize(end - begin);
  const std::size_t base = begin;  // structured bindings can't be captured
  par::parallel_for(end - begin, [&, base](std::size_t i) {
    Rng rng = trial_rng(opts.base_seed, base + i);
    out.rows[i] = fn(base + i, rng);
  });
  return out;
}

/// Streaming twin of run_study: rows are handed to `emit(global_index,
/// row)` in trial order as trials finish, through par::ordered_stream's
/// bounded reorder buffer (window 0 = library default), instead of being
/// buffered in a StudySlice. Same determinism contract as run_study -- the
/// emitted sequence is exactly slice.rows in order -- with peak row memory
/// O(window) rather than O(shard size), so a shard process can write its
/// shard file directly however large its trial range is. Returns the
/// reorder buffer's high-water mark.
template <typename Fn, typename Emit>
std::size_t run_study_stream(const StudyOptions& opts, Fn&& fn, Emit&& emit,
                             std::size_t window = 0) {
  const auto [begin, end] = shard_range(opts.trials, opts.shard);
  const std::size_t base = begin;
  return par::ordered_stream(
      end - begin, window,
      [&, base](std::size_t i) {
        Rng rng = trial_rng(opts.base_seed, base + i);
        return fn(base + i, rng);
      },
      [&, base](std::size_t i, auto&& row) {
        emit(base + i, std::forward<decltype(row)>(row));
      });
}

}  // namespace flexrt::core
