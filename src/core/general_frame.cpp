#include "core/general_frame.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "rt/priority.hpp"

namespace flexrt::core {

GeneralFrame::GeneralFrame(double period, std::vector<GeneralSlot> slots)
    : period_(period), slots_(std::move(slots)) {
  FLEXRT_REQUIRE(period_ > 0.0, "frame period must be > 0");
  FLEXRT_REQUIRE(!slots_.empty(), "frame needs at least one slot");
  double used = 0.0;
  for (const GeneralSlot& s : slots_) {
    FLEXRT_REQUIRE(s.usable >= 0.0 && s.overhead >= 0.0,
                   "slot lengths must be >= 0");
    used += s.total();
  }
  FLEXRT_REQUIRE(used <= period_ * (1.0 + 1e-9),
                 "slots exceed the frame period");
}

double GeneralFrame::slack() const noexcept {
  double used = 0.0;
  for (const GeneralSlot& s : slots_) used += s.total();
  return period_ - used;
}

double GeneralFrame::total_usable(rt::Mode mode) const noexcept {
  double sum = 0.0;
  for (const GeneralSlot& s : slots_) {
    if (s.mode == mode) sum += s.usable;
  }
  return sum;
}

double GeneralFrame::total_overhead() const noexcept {
  double sum = 0.0;
  for (const GeneralSlot& s : slots_) sum += s.overhead;
  return sum;
}

std::size_t GeneralFrame::visits(rt::Mode mode) const noexcept {
  std::size_t n = 0;
  for (const GeneralSlot& s : slots_) n += s.mode == mode;
  return n;
}

double GeneralFrame::slot_offset(std::size_t i) const noexcept {
  double off = 0.0;
  for (std::size_t j = 0; j < i && j < slots_.size(); ++j) {
    off += slots_[j].total();
  }
  return off;
}

hier::MultiSlotSupply GeneralFrame::supply(rt::Mode mode) const {
  std::vector<hier::MultiSlotSupply::Window> windows;
  double cursor = 0.0;
  for (const GeneralSlot& s : slots_) {
    if (s.mode == mode && s.usable > 0.0) {
      windows.push_back({cursor, cursor + s.usable});
    }
    cursor += s.total();
  }
  FLEXRT_REQUIRE(!windows.empty(),
                 std::string("mode ") + rt::to_string(mode) +
                     " has no usable window in the frame");
  return hier::MultiSlotSupply(period_, std::move(windows));
}

GeneralFrame GeneralFrame::from_schedule(const ModeSchedule& schedule) {
  schedule.validate();
  std::vector<GeneralSlot> slots;
  for (const rt::Mode mode : kAllModes) {
    const Slot& s = schedule.slot(mode);
    slots.push_back({mode, s.usable, s.overhead});
  }
  return GeneralFrame(schedule.period, std::move(slots));
}

bool verify_frame(const ModeTaskSystem& sys, const GeneralFrame& frame,
                  hier::Scheduler alg) {
  for (const rt::Mode mode : kAllModes) {
    if (sys.mode_tasks(mode).empty()) continue;
    if (frame.total_usable(mode) <= 0.0) return false;
    const hier::MultiSlotSupply supply = frame.supply(mode);
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      if (ts.empty()) continue;
      const rt::TaskSet ordered = alg == hier::Scheduler::FP
                                      ? rt::sort_deadline_monotonic(ts)
                                      : ts;
      if (!hier::schedulable(ordered, alg, supply)) return false;
    }
  }
  return true;
}

namespace {

/// Round-robin layout: visit j gives each mode budget[mode]/k followed by
/// its full switch-out overhead.
GeneralFrame layout(double period, const Overheads& overheads,
                    const std::array<double, 3>& budgets, std::size_t k) {
  std::vector<GeneralSlot> slots;
  slots.reserve(3 * k);
  for (std::size_t visit = 0; visit < k; ++visit) {
    for (const rt::Mode mode : kAllModes) {
      const double b = budgets[static_cast<std::size_t>(mode)];
      if (b <= 0.0) continue;
      slots.push_back(
          {mode, b / static_cast<double>(k), overheads.of(mode)});
    }
  }
  return GeneralFrame(period, std::move(slots));
}

bool mode_feasible(const ModeTaskSystem& sys, const GeneralFrame& frame,
                   hier::Scheduler alg, rt::Mode mode) {
  if (sys.mode_tasks(mode).empty()) return true;
  const hier::MultiSlotSupply supply = frame.supply(mode);
  for (const rt::TaskSet& ts : sys.partitions(mode)) {
    if (ts.empty()) continue;
    const rt::TaskSet ordered = alg == hier::Scheduler::FP
                                    ? rt::sort_deadline_monotonic(ts)
                                    : ts;
    if (!hier::schedulable(ordered, alg, supply)) return false;
  }
  return true;
}

}  // namespace

GeneralFrame interleave(const ModeSchedule& base, std::size_t k) {
  FLEXRT_REQUIRE(k >= 1, "need at least one visit per mode");
  std::vector<GeneralSlot> slots;
  slots.reserve(3 * k);
  for (std::size_t visit = 0; visit < k; ++visit) {
    for (const rt::Mode mode : kAllModes) {
      const Slot& s = base.slot(mode);
      if (s.usable <= 0.0 && s.overhead <= 0.0) continue;
      slots.push_back(
          {mode, s.usable / static_cast<double>(k), s.overhead});
    }
  }
  return GeneralFrame(base.period, std::move(slots));
}

GeneralFrame solve_interleaved(const ModeTaskSystem& sys, hier::Scheduler alg,
                               const Overheads& overheads, double period,
                               std::size_t k) {
  FLEXRT_REQUIRE(k >= 1, "need at least one visit per mode");
  FLEXRT_REQUIRE(period > 0.0, "period must be > 0");
  const double overhead_budget =
      static_cast<double>(k) * overheads.total();
  if (overhead_budget >= period) {
    throw InfeasibleError("k switch-out overheads already fill the period");
  }

  // Budgets start at the bandwidth lower bound and are refined by
  // coordinate-descent bisection: modes interact only through window
  // positions, so a few sweeps settle the assignment.
  std::array<double, 3> budgets{};
  for (const rt::Mode mode : kAllModes) {
    budgets[static_cast<std::size_t>(mode)] =
        sys.mode_tasks(mode).empty() ? 0.0
                                     : sys.required_bandwidth(mode) * period;
  }
  const auto capacity_left = [&](rt::Mode mode) {
    double others = 0.0;
    for (const rt::Mode m : kAllModes) {
      if (m != mode) others += budgets[static_cast<std::size_t>(m)];
    }
    return period - overhead_budget - others;
  };

  for (int sweep = 0; sweep < 4; ++sweep) {
    for (const rt::Mode mode : kAllModes) {
      const std::size_t mi = static_cast<std::size_t>(mode);
      if (sys.mode_tasks(mode).empty()) continue;
      double lo = sys.required_bandwidth(mode) * period;
      double hi = capacity_left(mode);
      if (hi < lo) throw InfeasibleError("mode budgets exceed the period");
      budgets[mi] = hi;
      if (!mode_feasible(sys, layout(period, overheads, budgets, k), alg,
                         mode)) {
        throw InfeasibleError(
            "mode " + std::string(rt::to_string(mode)) +
            " unschedulable even with all remaining capacity");
      }
      while (hi - lo > 1e-6 * period) {
        const double mid = 0.5 * (lo + hi);
        budgets[mi] = mid;
        if (mode_feasible(sys, layout(period, overheads, budgets, k), alg,
                          mode)) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      budgets[mi] = hi;
    }
  }

  const GeneralFrame frame = layout(period, overheads, budgets, k);
  if (!verify_frame(sys, frame, alg)) {
    throw InfeasibleError(
        "coordinate descent did not converge to a feasible frame");
  }
  return frame;
}

}  // namespace flexrt::core
