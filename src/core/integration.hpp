#pragma once

#include <vector>

#include "core/mode_system.hpp"
#include "hier/min_quantum.hpp"

namespace flexrt::core {

/// Options for the 1-D searches over the period P. The lhs curve is
/// continuous and piecewise smooth; searches sample a grid then refine by
/// bisection / local golden-section to `tolerance`.
struct SearchOptions {
  double p_min = 1e-3;      ///< smallest period considered
  double p_max = 0.0;       ///< largest period; <=0 means auto (3x max deadline)
  double grid_step = 1e-3;  ///< sampling step of the coarse scan
  double tolerance = 1e-7;  ///< refinement precision on P
  bool use_exact_supply = false;  ///< minQ against exact Z instead of Z'
};

/// Per-mode minimum usable quantum: max over the mode's channels of
/// minQ(T_k^i, alg, P) (the inner max of Eq. 15). For FP the channels are
/// analysed in deadline-monotonic order (== rate-monotonic for implicit
/// deadlines, the paper's "RM").
double mode_min_quantum(const ModeTaskSystem& sys, rt::Mode mode,
                        hier::Scheduler alg, double period,
                        bool use_exact_supply = false);

/// Left-hand side of the paper's Eq. (15):
///   lhs(P) = P - sum_k max_i minQ(T_k^i, alg, P).
/// The period P admits a feasible slot assignment iff lhs(P) >= O_tot.
double feasibility_margin(const ModeTaskSystem& sys, hier::Scheduler alg,
                          double period, bool use_exact_supply = false);

/// One sample of the Figure-4 curve.
struct RegionSample {
  double period = 0.0;
  double margin = 0.0;  ///< lhs(period)
};

/// Samples lhs(P) over [p_min, p_max] with grid_step (the Figure 4 series).
std::vector<RegionSample> sample_region(const ModeTaskSystem& sys,
                                        hier::Scheduler alg,
                                        const SearchOptions& opts = {});

/// Largest feasible period: sup { P : lhs(P) >= o_tot }, refined to
/// opts.tolerance. Throws InfeasibleError when no sampled period qualifies.
/// This is design goal G1 (minimum overhead bandwidth O_tot/P).
double max_feasible_period(const ModeTaskSystem& sys, hier::Scheduler alg,
                           double o_tot, const SearchOptions& opts = {});

/// Maximum admissible total overhead and the period attaining it:
/// argmax_P lhs(P) (points 3 and 4 of Figure 4).
struct OverheadLimit {
  double period = 0.0;
  double max_overhead = 0.0;
};
OverheadLimit max_admissible_overhead(const ModeTaskSystem& sys,
                                      hier::Scheduler alg,
                                      const SearchOptions& opts = {});

/// Period maximizing the redistributable slack bandwidth
/// (lhs(P) - o_tot)/P over the feasible region: design goal G2.
struct SlackOptimum {
  double period = 0.0;
  double slack = 0.0;            ///< lhs(P*) - o_tot (time per period)
  double slack_bandwidth = 0.0;  ///< slack / P*
};
SlackOptimum max_slack_period(const ModeTaskSystem& sys, hier::Scheduler alg,
                              double o_tot, const SearchOptions& opts = {});

/// Default automatic upper bound of the period search (3x the largest
/// deadline in the system; beyond that every mode's minQ grows ~linearly in
/// P and the margin only falls).
double auto_period_bound(const ModeTaskSystem& sys);

}  // namespace flexrt::core
