#pragma once

#include <string>
#include <vector>

#include "core/mode_system.hpp"
#include "core/schedule.hpp"
#include "hier/sched_test.hpp"

namespace flexrt::core {

/// Sensitivity analysis of a finished design: how much can the workload
/// grow before the schedule breaks? This is the question a designer asks
/// right after Table 2 -- the slack row (c) says how much *bandwidth* is
/// redistributable, sensitivity says how much *each task* can grow.

/// Largest factor lambda such that scaling task `task_name`'s WCET by
/// lambda keeps every partition schedulable under `schedule` (the schedule
/// itself is not re-solved: the quanta are fixed hardware configuration).
/// Found by bisection on lambda in [1, lambda_max]; returns 1.0 when the
/// task is already at the edge and `lambda_max` when even that scale fits.
double wcet_scale_margin(const ModeTaskSystem& sys,
                         const ModeSchedule& schedule, hier::Scheduler alg,
                         const std::string& task_name,
                         double lambda_max = 16.0, double tolerance = 1e-4);

/// One row of the sensitivity report.
struct TaskMargin {
  std::string name;
  rt::Mode mode = rt::Mode::NF;
  double wcet = 0.0;
  double scale_margin = 0.0;  ///< wcet_scale_margin of this task
};

/// Margins for every task of the system, in system iteration order.
std::vector<TaskMargin> sensitivity_report(const ModeTaskSystem& sys,
                                           const ModeSchedule& schedule,
                                           hier::Scheduler alg,
                                           double lambda_max = 16.0);

/// Largest factor by which EVERY task's WCET can grow simultaneously while
/// the schedule stays feasible -- a single-number robustness metric for the
/// whole design.
double global_scale_margin(const ModeTaskSystem& sys,
                           const ModeSchedule& schedule, hier::Scheduler alg,
                           double lambda_max = 16.0, double tolerance = 1e-4);

}  // namespace flexrt::core
