#pragma once

#include <cmath>
#include <cstdint>

namespace flexrt {

/// Simulation time is kept in integer ticks so that event ordering is exact
/// and deterministic; one paper time-unit is TICKS_PER_UNIT ticks.
/// Analytical code (supply functions, minQ, solvers) works in double; the
/// conversion happens once when a design is handed to the simulator.
using Ticks = std::int64_t;

inline constexpr Ticks TICKS_PER_UNIT = 1'000'000;

/// Converts an analytical duration to ticks, rounding to nearest.
/// Rounding a usable quantum *down* by <=0.5 tick is safely below any margin
/// the analysis cares about (1 tick = 1e-6 time units).
constexpr Ticks to_ticks(double units) noexcept {
  return static_cast<Ticks>(units * static_cast<double>(TICKS_PER_UNIT) + 0.5);
}

constexpr double to_units(Ticks t) noexcept {
  return static_cast<double>(t) / static_cast<double>(TICKS_PER_UNIT);
}

}  // namespace flexrt
