#pragma once

#include <stdexcept>
#include <string>

namespace flexrt {

/// Base class for all errors raised by the flexrt library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input model (task set, schedule, configuration) is invalid.
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Raised when an analysis or solver cannot produce a result
/// (e.g. no feasible period exists for the requested overhead).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw ModelError(std::string(file) + ":" + std::to_string(line) +
                   ": requirement failed (" + expr + "): " + msg);
}
}  // namespace detail

/// Precondition check that throws ModelError with context on failure.
/// Used at public API boundaries; internal invariants use assert().
#define FLEXRT_REQUIRE(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::flexrt::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                   \
  } while (false)

}  // namespace flexrt
