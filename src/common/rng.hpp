#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace flexrt {

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// We carry our own generator instead of std::mt19937_64 so that every
/// experiment in the repository is bit-reproducible across standard library
/// implementations; benchmark tables in EXPERIMENTS.md depend on it.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64 of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed double with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Log-uniform double in [lo, hi): uniform in log-space, the standard
  /// period generator for real-time task-set experiments.
  double log_uniform(double lo, double hi) noexcept;

  /// Forks an independent stream (jump-free: reseeds via splitmix of the
  /// next output). Used to give each simulated component its own stream.
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace flexrt
