#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>

namespace flexrt {

/// Least common multiple with saturation: returns
/// std::numeric_limits<int64_t>::max() on overflow instead of UB.
/// Hyperperiods of generated task sets can easily overflow; downstream
/// analyses treat the saturated value as "cap me".
std::int64_t lcm_saturating(std::int64_t a, std::int64_t b) noexcept;

/// Saturating LCM over a sequence (empty sequence yields 1).
std::int64_t lcm_saturating(std::span<const std::int64_t> values) noexcept;

/// Relative+absolute tolerance comparison for analytical doubles.
/// |a-b| <= abs_tol + rel_tol * max(|a|,|b|).
bool almost_equal(double a, double b, double rel_tol = 1e-9,
                  double abs_tol = 1e-12) noexcept;

/// a <= b up to tolerance (used when checking analytical inequalities that
/// are tight at design boundaries).
bool leq_tol(double a, double b, double tol = 1e-9) noexcept;

/// Ceiling of a/b for positive integers without floating point.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Default integer-snapping tolerance of ceil_ratio / floor_ratio. Named so
/// code that inverts the snapping algebra (e.g. the workload band splits in
/// rt::AnalysisContext, which rely on ceil_ratio(t, T) being exactly 0 for
/// T >= t / kRatioSnapTol) stays tied to the ratio kernels by construction.
inline constexpr double kRatioSnapTol = 1e-9;

/// ceil(x/y) for positive doubles computed robustly: values that are within
/// tolerance of an integer are treated as that integer before rounding up.
/// The schedulability sums (Eq. 5/9 of the paper) are extremely sensitive to
/// ceil(t/T) stepping one period too early due to representation noise.
std::int64_t ceil_ratio(double x, double y, double tol = kRatioSnapTol) noexcept;

/// floor(x/y) with the same integer-snapping robustness as ceil_ratio.
std::int64_t floor_ratio(double x, double y, double tol = kRatioSnapTol) noexcept;

}  // namespace flexrt
