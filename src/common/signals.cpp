#include "common/signals.hpp"

#include <csignal>

namespace flexrt::sys {

namespace {

std::atomic<bool> g_stop{false};
std::atomic<int> g_signal{0};

// The async-signal-safety contract (POSIX 2017 XSH 2.4.3): a handler may
// only store into lock-free atomics or volatile sig_atomic_t. A non-lock-
// free atomic would take a libatomic mutex inside the handler -- deadlock
// if the signal lands while the interrupted thread holds it -- so the
// lock-freedom of both flags is asserted at compile time, and the handler
// body itself is restricted to plain atomic stores by the signal-handler
// rule in tools/lint_invariants.py.
static_assert(std::atomic<bool>::is_always_lock_free,
              "stop flag must be async-signal-safe (lock-free)");
static_assert(std::atomic<int>::is_always_lock_free,
              "signal-number flag must be async-signal-safe (lock-free)");

extern "C" void stop_handler(int sig) {
  // Async-signal-safe: lock-free atomic stores only (see the lint rule).
  g_signal.store(sig, std::memory_order_relaxed);
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_stop_signals() {
  struct sigaction sa = {};
  sa.sa_handler = stop_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART: blocking reads/accepts resume; the work loops notice the
  // flag at their own safe points instead of relying on EINTR.
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

const std::atomic<bool>& stop_requested() noexcept { return g_stop; }

int stop_signal() noexcept { return g_signal.load(std::memory_order_relaxed); }

void reset_stop_for_tests() noexcept {
  g_stop.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
}

void request_stop_for_tests(int signal_number) noexcept {
  g_signal.store(signal_number, std::memory_order_relaxed);
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace flexrt::sys
