#pragma once

#include <atomic>

namespace flexrt::sys {

/// Cooperative SIGINT/SIGTERM handling for the long-running front-ends
/// (journaled `flexrt_design` runs and the `flexrtd` daemon).
///
/// install_stop_signals() installs handlers that do nothing but set a
/// process-wide flag; the work loops poll stop_requested() at their safe
/// points -- a journaled fleet between entries, the daemon's accept loop
/// between poll() wakeups -- finish the in-flight unit, make their state
/// durable, and exit with a documented code. No analysis is ever torn
/// mid-entry by a signal: the flag is advisory, the safe points decide.
///
/// The handlers are async-signal-safe (they only store into a lock-free
/// atomic) and idempotent to install. SIGKILL is of course not catchable;
/// that path is what the crash-safe journal's resume contract covers.
/// The safety is enforced statically: lock-freedom of the flags is
/// static_asserted in signals.cpp, and the signal-handler rule in
/// tools/lint_invariants.py rejects any handler body statement that is
/// not a lock-free atomic store.

/// Installs the SIGINT and SIGTERM handlers (idempotent).
void install_stop_signals();

/// The process-wide stop flag the handlers set. Safe to read from any
/// thread; cleared only by reset_stop_for_tests().
const std::atomic<bool>& stop_requested() noexcept;

/// The signal number that set the flag (0 when none yet) -- for exit
/// diagnostics ("interrupted by SIGTERM").
int stop_signal() noexcept;

/// Clears the flag so a test can exercise the interrupt path repeatedly.
void reset_stop_for_tests() noexcept;

/// Raises the flag as if a signal had arrived -- the deterministic test
/// hook for the interrupt paths (no kill() racing the scheduler).
void request_stop_for_tests(int signal_number) noexcept;

}  // namespace flexrt::sys
