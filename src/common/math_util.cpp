#include "common/math_util.hpp"

#include <algorithm>
#include <cstdlib>

namespace flexrt {

std::int64_t lcm_saturating(std::int64_t a, std::int64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  a = std::abs(a);
  b = std::abs(b);
  const std::int64_t g = std::gcd(a, b);
  const std::int64_t a_red = a / g;
  // a_red * b overflows iff b > max / a_red.
  if (b > std::numeric_limits<std::int64_t>::max() / a_red) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return a_red * b;
}

std::int64_t lcm_saturating(std::span<const std::int64_t> values) noexcept {
  std::int64_t acc = 1;
  for (const std::int64_t v : values) {
    acc = lcm_saturating(acc, v);
    if (acc == std::numeric_limits<std::int64_t>::max()) return acc;
  }
  return acc;
}

bool almost_equal(double a, double b, double rel_tol, double abs_tol) noexcept {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

bool leq_tol(double a, double b, double tol) noexcept {
  return a <= b + tol * std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
}

std::int64_t ceil_ratio(double x, double y, double tol) noexcept {
  const double r = x / y;
  const double nearest = std::round(r);
  if (std::fabs(r - nearest) <= tol * std::max(1.0, std::fabs(r))) {
    return static_cast<std::int64_t>(nearest);
  }
  return static_cast<std::int64_t>(std::ceil(r));
}

std::int64_t floor_ratio(double x, double y, double tol) noexcept {
  const double r = x / y;
  const double nearest = std::round(r);
  if (std::fabs(r - nearest) <= tol * std::max(1.0, std::fabs(r))) {
    return static_cast<std::int64_t>(nearest);
  }
  return static_cast<std::int64_t>(std::floor(r));
}

}  // namespace flexrt
