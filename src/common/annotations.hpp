#pragma once

#include <condition_variable>
#include <mutex>  // lint: allow(raw-mutex) the one sanctioned wrapping site

/// Compile-time concurrency contracts: the Clang Thread Safety Analysis
/// attribute layer plus the annotated lock primitives every concurrent
/// structure in this repo is required to use (enforced by
/// tools/lint_invariants.py's raw-mutex rule).
///
/// Under clang the whole library builds with
/// `-Wthread-safety -Werror=thread-safety`, so a data member declared
/// GUARDED_BY(mu) cannot be touched without mu held, a function declared
/// REQUIRES(mu) cannot be called without it, and a lock-order or
/// forgotten-unlock drift is a build break -- on every build, not just the
/// interleavings a TSan run happens to see. Under gcc (and any other
/// non-clang compiler) every macro expands to nothing and the wrappers
/// compile down to the std primitives they hold.
///
/// The analysis is static and per-expression: it follows the *syntactic*
/// capability expression (`mu_`, `s.mu`, `state.mu`), so keep guarded data
/// and its mutex in the same struct and access both through the same
/// object expression -- exactly the sharded-cache shape MemoCache and the
/// engine cache already have.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define FLEXRT_TSA_ATTR(x) __attribute__((x))
#else
#define FLEXRT_TSA_ATTR(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex").
#define CAPABILITY(x) FLEXRT_TSA_ATTR(capability(x))

/// Marks an RAII class that acquires in its constructor and releases in
/// its destructor.
#define SCOPED_CAPABILITY FLEXRT_TSA_ATTR(scoped_lockable)

/// Data member contract: may only be read or written with `x` held.
#define GUARDED_BY(x) FLEXRT_TSA_ATTR(guarded_by(x))

/// Pointer member contract: the pointee (not the pointer) needs `x` held.
#define PT_GUARDED_BY(x) FLEXRT_TSA_ATTR(pt_guarded_by(x))

/// Function contract: the caller must hold every listed capability.
#define REQUIRES(...) FLEXRT_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Function acquires the capability (and did not hold it on entry).
#define ACQUIRE(...) FLEXRT_TSA_ATTR(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define RELEASE(...) FLEXRT_TSA_ATTR(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) FLEXRT_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

/// Function contract: the caller must NOT hold the listed capabilities
/// (deadlock guard for self-locking methods).
#define EXCLUDES(...) FLEXRT_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Declared lock-ordering edges (checked under -Wthread-safety-beta;
/// documentation-grade otherwise).
#define ACQUIRED_BEFORE(...) FLEXRT_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FLEXRT_TSA_ATTR(acquired_after(__VA_ARGS__))

/// Runtime-checked assertion that the capability is held (for code paths
/// the static analysis cannot follow).
#define ASSERT_CAPABILITY(x) FLEXRT_TSA_ATTR(assert_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) FLEXRT_TSA_ATTR(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a justification comment.
#define NO_THREAD_SAFETY_ANALYSIS FLEXRT_TSA_ATTR(no_thread_safety_analysis)

namespace flexrt::sys {

/// The repo's one mutex type: std::mutex wearing the capability attribute.
/// Raw std::mutex / std::lock_guard anywhere else in src/, tools/ or
/// tests/ is a lint error -- unannotated locks are invisible to the
/// analysis, so one of them would silently exempt whatever it guards from
/// the compile-time contract.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // lint: allow(raw-mutex) the wrapped primitive itself
};

/// Scoped lock of one Mutex -- the std::lock_guard of this codebase.
/// (std::scoped_lock's variadic form is deliberately not mirrored: no call
/// site needs to lock two shards at once, and keeping acquisition unary
/// keeps lock-order reasoning trivial.)
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over sys::Mutex. wait() REQUIRES the mutex: the
/// analysis checks every wait site is inside the critical section it
/// sleeps on (the internal unlock/relock inside std::condition_variable_any
/// is invisible to it, which is exactly right -- the capability is held on
/// entry and on return). Spurious wakeups are possible as with any
/// condition variable: always wait in a while loop re-checking the
/// guarded predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // lint: allow(raw-mutex) condition_variable_any is the CondVar wrapped here
  std::condition_variable_any cv_;
};

}  // namespace flexrt::sys
