#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace flexrt::par {
namespace {

// Workers run serially when a loop is too small for the handoff to pay off.
constexpr std::size_t kSerialCutoff = 2;

thread_local bool t_inside_pool = false;

std::size_t resolve_thread_count() noexcept {
  if (const char* env = std::getenv("FLEXRT_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Persistent pool: workers sleep on a condition variable and wake for each
/// submitted loop. One loop runs at a time (submissions serialize on
/// submit_mutex_); the caller thread participates in the loop, so the pool
/// only needs thread_count() - 1 workers.
///
/// Lock contract: submit_mutex_ is the loop-at-a-time capability -- held by
/// the submitting thread for the whole run(), it guards nothing finer than
/// the right to stage a new loop. All per-loop state that workers read
/// (generation_, n_, chunk_, fn_, error_) is GUARDED_BY(wake_mutex_):
/// run() stages it in the same critical section that bumps generation_,
/// and each worker snapshots it once under wake_mutex_ on wake-up, so the
/// hot chunk loop touches only the atomic cursor.
class Pool {
 public:
  static Pool& instance() {
    // Intentionally leaked: workers are detached and may still be parked on
    // the condition variables during static destruction.
    static Pool* pool = new Pool(thread_count());
    return *pool;
  }

  void run(std::size_t n,
           const std::function<void(std::size_t, std::size_t)>& fn) {
    sys::MutexLock submit_lock(submit_mutex_);
    {
      sys::MutexLock lock(wake_mutex_);
      cursor_.store(0, std::memory_order_relaxed);
      n_ = n;
      chunk_ = std::max<std::size_t>(1, n / (8 * (workers_.size() + 1)));
      fn_ = &fn;
      error_ = nullptr;
      pending_.store(workers_.size(), std::memory_order_release);
      ++generation_;
    }
    wake_cv_.notify_all();

    // The caller is one of the loop's threads. Mark it pool-internal for
    // the duration so nested parallel_for calls from the loop body run
    // serially inline instead of deadlocking on submit_mutex_.
    const bool was_inside = t_inside_pool;
    t_inside_pool = true;
    work();
    t_inside_pool = was_inside;

    std::exception_ptr error;
    {
      sys::MutexLock lock(wake_mutex_);
      while (pending_.load(std::memory_order_acquire) != 0) {
        done_cv_.wait(wake_mutex_);
      }
      fn_ = nullptr;
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  explicit Pool(std::size_t threads) {
    for (std::size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    for (std::thread& t : workers_) t.detach();
  }

  void worker_loop() {
    t_inside_pool = true;
    std::uint64_t seen = 0;
    for (;;) {
      {
        sys::MutexLock lock(wake_mutex_);
        while (generation_ == seen) wake_cv_.wait(wake_mutex_);
        seen = generation_;
      }
      work();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        sys::MutexLock lock(wake_mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void work() {
    // Snapshot the staged loop once; the chunk loop itself runs lock-free
    // on the atomic cursor.
    std::size_t n, chunk;
    const std::function<void(std::size_t, std::size_t)>* fn;
    {
      sys::MutexLock lock(wake_mutex_);
      n = n_;
      chunk = chunk_;
      fn = fn_;
    }
    if (fn == nullptr) return;
    for (;;) {
      const std::size_t begin =
          cursor_.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        (*fn)(begin, end);
      } catch (...) {
        sys::MutexLock lock(wake_mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  /// Serializes loop submissions; held across the whole of run().
  sys::Mutex submit_mutex_ ACQUIRED_BEFORE(wake_mutex_);
  /// Guards the staged-loop state below and the wake/done handshakes.
  sys::Mutex wake_mutex_;
  sys::CondVar wake_cv_;
  sys::CondVar done_cv_;
  std::uint64_t generation_ GUARDED_BY(wake_mutex_) = 0;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> pending_{0};
  std::size_t n_ GUARDED_BY(wake_mutex_) = 0;
  std::size_t chunk_ GUARDED_BY(wake_mutex_) = 1;
  const std::function<void(std::size_t, std::size_t)>* fn_
      GUARDED_BY(wake_mutex_) = nullptr;
  std::exception_ptr error_ GUARDED_BY(wake_mutex_);
  std::vector<std::thread> workers_;
};

void run_loop(std::size_t n,
              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (thread_count() == 1 || n < kSerialCutoff || t_inside_pool) {
    fn(0, n);
    return;
  }
  Pool::instance().run(n, fn);
}

}  // namespace

std::size_t thread_count() noexcept {
  static const std::size_t count = resolve_thread_count();
  return count;
}

std::size_t default_stream_window() noexcept {
  // 4 slots per worker: enough slack that a worker finishing early is not
  // gated on the stream head, while keeping peak buffering a small constant
  // multiple of the thread count.
  return std::max<std::size_t>(8, 4 * thread_count());
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  run_loop(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  run_loop(n, fn);
}

}  // namespace flexrt::par
