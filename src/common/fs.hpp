#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace flexrt::fs {

/// Durability primitives for the crash-safe output paths (the svc journal
/// and `flexrt_design merge --output`). All of them report failure by
/// throwing flexrt::ModelError naming the operation, the path and the
/// errno cause -- a failed write must surface loudly (ENOSPC, EPIPE), never
/// silently drop rows.
///
/// The publish pattern every caller follows: append rows to a *scratch*
/// file (`<final>.partial`), flush/fsync as the durability policy demands,
/// and atomically rename it onto the final path once complete. The final
/// path therefore either does not exist yet or holds a complete report;
/// a crash at any instant leaves at worst a scratch file whose last line
/// is torn -- exactly the shape the journal's recovery scan handles.

/// Append-only POSIX file handle. Writes are full-write-or-throw (short
/// writes are retried, EINTR included), so a returned append means every
/// byte reached the kernel; sync() makes them storage-durable.
class DurableFile {
 public:
  /// Creates (or truncates) `path` for appending from byte 0.
  static DurableFile create(const std::string& path);

  /// Opens existing `path` for appending after truncating it to `keep`
  /// bytes -- the journal's resume entry point (discard the torn tail,
  /// continue after the recovered prefix).
  static DurableFile open_truncated(const std::string& path,
                                    std::uint64_t keep);

  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&& other) noexcept;
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;
  ~DurableFile();

  /// Appends every byte of `bytes` (loops over short writes) or throws.
  void append(std::string_view bytes);

  /// fsync: blocks until everything appended so far is on storage.
  void sync();

  /// Closes the descriptor (idempotent); throws if the close itself fails
  /// (a delayed-allocation write error can surface here).
  void close();

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }

 private:
  DurableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// Atomically renames `from` onto `to` and fsyncs the parent directory, so
/// the publish itself survives a crash: after this returns, `to` is the
/// complete file; before it, `to` is untouched. Both paths must live in
/// the same directory (the rename must not cross filesystems).
void atomic_publish(const std::string& from, const std::string& to);

/// Size of `path` in bytes, or nullopt when it does not exist.
std::optional<std::uint64_t> file_size(const std::string& path);

/// Removes `path` if it exists (missing file is not an error).
void remove_file(const std::string& path);

}  // namespace flexrt::fs
