#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/annotations.hpp"

namespace flexrt::par {

/// Monotonic wall-clock stopwatch, started at construction. The one timing
/// primitive shared by the executor's per-entry wall_ms provenance and the
/// svc::Deadline checks between accuracy-ladder rungs, so "elapsed" means
/// the same clock everywhere a deadline is compared against a measurement.
class StopWatch {
 public:
  StopWatch() noexcept : t0_(std::chrono::steady_clock::now()) {}

  double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Number of worker threads backing parallel_for (>= 1). Resolved once per
/// process: the FLEXRT_THREADS environment variable when set to a positive
/// integer, otherwise std::thread::hardware_concurrency().
std::size_t thread_count() noexcept;

/// Runs fn(i) for every i in [0, n) across a process-wide persistent thread
/// pool and blocks until all iterations finished. Iterations are handed out
/// in index-chunks via an atomic cursor, so the load balances even when
/// iteration costs are skewed (e.g. period probes near the feasibility
/// boundary converge slower).
///
/// Semantics:
///  - fn must be safe to call concurrently from different threads; writes
///    should go to disjoint slots (the canonical pattern is a preallocated
///    results vector indexed by i, which keeps output order deterministic).
///  - The first exception thrown by any iteration is rethrown to the caller
///    after the loop drains; remaining iterations may or may not run.
///  - Calls from inside a pool worker (nested parallelism) and loops too
///    small to amortize the handoff run serially inline -- callers never
///    need to special-case either.
///
/// This is the sweep runner behind sample_region, max_feasible_period,
/// sensitivity_report and the bench sweeps.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Chunked variant: fn(begin, end) receives half-open index ranges. Useful
/// when per-iteration dispatch would dominate (very cheap bodies).
void parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// Reorder window for ordered_stream when the caller passes 0: wide enough
/// to keep every worker busy, small enough that peak buffering stays a
/// constant multiple of the thread count rather than the loop size.
std::size_t default_stream_window() noexcept;

/// Ordered streaming loop: computes make(i) for every i in [0, n) across
/// the parallel_for pool and delivers each result to emit(i, value) in
/// strict index order, buffering at most `window` out-of-order results
/// (window 0 = default_stream_window()). This is the bounded-memory
/// counterpart of the preallocated-results-vector pattern: peak buffering
/// is O(window), not O(n).
///
/// How the bound is enforced without deadlock: indices are handed out one
/// at a time through an atomic ticket (so issue order == index order), and
/// a worker blocks before computing index i until i < next_emit + window.
/// The head index (next_emit) is always held by a worker that is past the
/// gate, so the stream always progresses for any window >= 1.
///
/// emit runs under the stream lock: exactly one emission at a time, in
/// order -- safe to write an ostream from. An exception thrown by make(i)
/// drops that index from the stream and is rethrown (first one wins) after
/// the loop drains; exceptions from emit propagate the same way. A make(i)
/// that merely *stalls* (finite delay) never wedges the gate: entries past
/// i + window wait, buffering stays <= window, and the stream resumes the
/// moment the stalled entry completes -- the fault-injection executor tests
/// pin this down. (Callers that must never lose an entry to an exception --
/// svc::AnalysisService -- catch inside make and return an error-valued
/// result instead.)
///
/// Returns the reorder buffer's high-water mark (<= window), the number
/// the stream_fleet bench row reports against the fleet size.
template <typename Make, typename Emit>
std::size_t ordered_stream(std::size_t n, std::size_t window, Make&& make,
                           Emit&& emit) {
  using Value = std::invoke_result_t<Make&, std::size_t>;
  if (window == 0) window = default_stream_window();
  struct Slot {
    std::optional<Value> value;
    std::exception_ptr error;
  };
  // The reassembly state lives in one struct so every member carries an
  // explicit GUARDED_BY contract on the stream mutex -- the thread-safety
  // analysis then proves no worker touches the buffer or the emission
  // cursor outside the critical sections below.
  struct State {
    sys::Mutex mu;
    sys::CondVar gate;
    std::map<std::size_t, Slot> pending GUARDED_BY(mu);
    std::size_t next_emit GUARDED_BY(mu) = 0;
    std::size_t high_water GUARDED_BY(mu) = 0;
    std::exception_ptr first_error GUARDED_BY(mu);
  };
  State st;
  std::atomic<std::size_t> ticket{0};
  parallel_for(n, [&](std::size_t) {
    const std::size_t i = ticket.fetch_add(1, std::memory_order_relaxed);
    {
      sys::MutexLock lock(st.mu);
      while (i >= st.next_emit + window) st.gate.wait(st.mu);
    }
    Slot slot;
    try {
      slot.value.emplace(make(i));
    } catch (...) {
      // The slot must still complete -- a lost ticket would stall the
      // stream head and deadlock the gated workers behind it.
      slot.error = std::current_exception();
    }
    sys::MutexLock lock(st.mu);
    st.pending.emplace(i, std::move(slot));
    st.high_water = std::max(st.high_water, st.pending.size());
    while (!st.pending.empty() && st.pending.begin()->first == st.next_emit) {
      auto node = st.pending.extract(st.pending.begin());
      ++st.next_emit;
      if (node.mapped().error) {
        if (!st.first_error) st.first_error = node.mapped().error;
      } else if (!st.first_error) {
        try {
          emit(st.next_emit - 1, std::move(*node.mapped().value));
        } catch (...) {
          st.first_error = std::current_exception();
        }
      }
    }
    st.gate.notify_all();
  });
  // parallel_for has drained every worker: this thread is the only one
  // left, but the contract is on the members, so read them under the lock.
  sys::MutexLock lock(st.mu);
  if (st.first_error) std::rethrow_exception(st.first_error);
  return st.high_water;
}

}  // namespace flexrt::par
