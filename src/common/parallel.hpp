#pragma once

#include <cstddef>
#include <functional>

namespace flexrt::par {

/// Number of worker threads backing parallel_for (>= 1). Resolved once per
/// process: the FLEXRT_THREADS environment variable when set to a positive
/// integer, otherwise std::thread::hardware_concurrency().
std::size_t thread_count() noexcept;

/// Runs fn(i) for every i in [0, n) across a process-wide persistent thread
/// pool and blocks until all iterations finished. Iterations are handed out
/// in index-chunks via an atomic cursor, so the load balances even when
/// iteration costs are skewed (e.g. period probes near the feasibility
/// boundary converge slower).
///
/// Semantics:
///  - fn must be safe to call concurrently from different threads; writes
///    should go to disjoint slots (the canonical pattern is a preallocated
///    results vector indexed by i, which keeps output order deterministic).
///  - The first exception thrown by any iteration is rethrown to the caller
///    after the loop drains; remaining iterations may or may not run.
///  - Calls from inside a pool worker (nested parallelism) and loops too
///    small to amortize the handoff run serially inline -- callers never
///    need to special-case either.
///
/// This is the sweep runner behind sample_region, max_feasible_period,
/// sensitivity_report and the bench sweeps.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Chunked variant: fn(begin, end) receives half-open index ranges. Useful
/// when per-iteration dispatch would dominate (very cheap bodies).
void parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace flexrt::par
