#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace flexrt {

/// Minimal column-aligned table used by the benchmark binaries to print the
/// paper's tables/figure series and their CSV form. Cells are strings; the
/// numeric helpers format with fixed precision so that bench output is
/// diffable run-to-run.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begins a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& text);
  Table& cell(double value, int precision = 3);
  Table& cell(std::int64_t value);
  Table& cell(std::size_t value);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders the table with aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with log lines).
std::string format_fixed(double value, int precision);

}  // namespace flexrt
