#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace flexrt {

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FLEXRT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& text) {
  FLEXRT_REQUIRE(!rows_.empty(), "call row() before cell()");
  FLEXRT_REQUIRE(rows_.back().size() < headers_.size(),
                 "row has more cells than headers");
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << "  " << std::setw(static_cast<int>(widths[c])) << text;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace flexrt
