#include "common/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace flexrt::fs {
namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path,
                       int err) {
  throw ModelError(op + " failed for " + path + ": " + std::strerror(err));
}

int open_or_throw(const std::string& path, int flags) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail("open", path, errno);
  return fd;
}

/// Directory portion of `path` ("." when it has none).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

DurableFile DurableFile::create(const std::string& path) {
  return DurableFile(open_or_throw(path, O_WRONLY | O_CREAT | O_TRUNC), path);
}

DurableFile DurableFile::open_truncated(const std::string& path,
                                        std::uint64_t keep) {
  const int fd = open_or_throw(path, O_WRONLY);
  if (::ftruncate(fd, static_cast<off_t>(keep)) != 0) {
    const int err = errno;
    ::close(fd);
    fail("ftruncate", path, err);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const int err = errno;
    ::close(fd);
    fail("lseek", path, err);
  }
  return DurableFile(fd, path);
}

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

DurableFile::~DurableFile() {
  // Best-effort on the destructor path: explicit close() is where errors
  // surface; unwinding must not throw again.
  if (fd_ >= 0) ::close(fd_);
}

void DurableFile::append(std::string_view bytes) {
  FLEXRT_REQUIRE(fd_ >= 0, "append on a closed DurableFile: " + path_);
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path_, errno);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void DurableFile::sync() {
  FLEXRT_REQUIRE(fd_ >= 0, "sync on a closed DurableFile: " + path_);
  if (::fsync(fd_) != 0) fail("fsync", path_, errno);
}

void DurableFile::close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) fail("close", path_, errno);
}

void atomic_publish(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    fail("rename", from + " -> " + to, errno);
  }
  // Make the rename itself durable: fsync the directory entry. O_DIRECTORY
  // open can legitimately fail on exotic filesystems; a publish that cannot
  // be fsynced is still atomic, so only real fsync errors are fatal.
  const std::string dir = parent_dir(to);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0 && err != EINVAL && err != ENOTSUP) fail("fsync dir", dir, err);
}

std::optional<std::uint64_t> file_size(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  return static_cast<std::uint64_t>(st.st_size);
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    fail("unlink", path, errno);
  }
}

}  // namespace flexrt::fs
