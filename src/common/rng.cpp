#include "common/rng.hpp"

#include <cmath>

namespace flexrt {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // zero words from any seed, but keep the guard for clarity.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(operator()());  // full range
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = operator()();
  while (v >= limit) v = operator()();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::exponential(double rate) noexcept {
  // Avoid log(0) by mapping 0 -> smallest positive.
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::log_uniform(double lo, double hi) noexcept {
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

Rng Rng::fork() noexcept { return Rng(operator()()); }

}  // namespace flexrt
