#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "rt/task_set.hpp"

namespace flexrt::part {

/// Bin-packing heuristics for assigning tasks to the channels of a mode
/// (2 channels in FS mode, 4 in NF mode). The paper assumes a manual
/// partition and cites Baruah [6] for automatic ones; these are the classic
/// utilization-driven heuristics evaluated in experiment E10.
enum class Heuristic {
  FirstFit,  ///< first bin where the task fits
  BestFit,   ///< fullest bin where the task fits
  WorstFit,  ///< emptiest bin (balances load; best for minimizing max bin)
  NextFit,   ///< current bin or the next empty one
};

const char* to_string(Heuristic h) noexcept;

/// Options controlling a packing run.
struct PackOptions {
  Heuristic heuristic = Heuristic::WorstFit;
  bool sort_decreasing = true;  ///< process tasks by decreasing utilization
  double bin_capacity = 1.0;    ///< utilization capacity per channel
};

/// Partitions `ts` into at most `bins` task sets such that each bin's
/// utilization stays <= capacity. Returns nullopt when some task does not
/// fit anywhere. Bins keep tasks in processing order; empty bins are
/// returned too (size of result == bins).
std::optional<std::vector<rt::TaskSet>> pack(const rt::TaskSet& ts,
                                             std::size_t bins,
                                             const PackOptions& options = {});

/// Largest per-bin utilization of a partition (the quantity the mode's
/// quantum must cover, Eq. 13/14 take a max over channels).
double max_bin_utilization(const std::vector<rt::TaskSet>& bins) noexcept;

}  // namespace flexrt::part
