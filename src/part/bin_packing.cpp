#include "part/bin_packing.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace flexrt::part {

const char* to_string(Heuristic h) noexcept {
  switch (h) {
    case Heuristic::FirstFit:
      return "first-fit";
    case Heuristic::BestFit:
      return "best-fit";
    case Heuristic::WorstFit:
      return "worst-fit";
    case Heuristic::NextFit:
      return "next-fit";
  }
  return "?";
}

namespace {

/// Index of the bin chosen by the heuristic, or npos if the task fits
/// nowhere.
std::size_t choose_bin(const std::vector<double>& load, double u,
                       double capacity, Heuristic h, std::size_t& cursor) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  const double eps = 1e-12;
  switch (h) {
    case Heuristic::FirstFit:
      for (std::size_t b = 0; b < load.size(); ++b) {
        if (load[b] + u <= capacity + eps) return b;
      }
      return npos;
    case Heuristic::BestFit: {
      std::size_t best = npos;
      double best_load = -1.0;
      for (std::size_t b = 0; b < load.size(); ++b) {
        if (load[b] + u <= capacity + eps && load[b] > best_load) {
          best = b;
          best_load = load[b];
        }
      }
      return best;
    }
    case Heuristic::WorstFit: {
      std::size_t best = npos;
      double best_load = std::numeric_limits<double>::infinity();
      for (std::size_t b = 0; b < load.size(); ++b) {
        if (load[b] + u <= capacity + eps && load[b] < best_load) {
          best = b;
          best_load = load[b];
        }
      }
      return best;
    }
    case Heuristic::NextFit:
      for (; cursor < load.size(); ++cursor) {
        if (load[cursor] + u <= capacity + eps) return cursor;
      }
      return npos;
  }
  return npos;
}

}  // namespace

std::optional<std::vector<rt::TaskSet>> pack(const rt::TaskSet& ts,
                                             std::size_t bins,
                                             const PackOptions& options) {
  FLEXRT_REQUIRE(bins > 0, "need at least one bin");
  std::vector<rt::Task> tasks(ts.begin(), ts.end());
  if (options.sort_decreasing) {
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const rt::Task& a, const rt::Task& b) {
                       return a.utilization() > b.utilization();
                     });
  }
  std::vector<rt::TaskSet> out(bins);
  std::vector<double> load(bins, 0.0);
  std::size_t cursor = 0;
  for (rt::Task& t : tasks) {
    const double u = t.utilization();
    const std::size_t b = choose_bin(load, u, options.bin_capacity,
                                     options.heuristic, cursor);
    if (b == static_cast<std::size_t>(-1)) return std::nullopt;
    load[b] += u;
    out[b].add(std::move(t));
  }
  return out;
}

double max_bin_utilization(const std::vector<rt::TaskSet>& bins) noexcept {
  double worst = 0.0;
  for (const rt::TaskSet& b : bins) worst = std::max(worst, b.utilization());
  return worst;
}

}  // namespace flexrt::part
