#include "fault/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "rt/analysis_context.hpp"
#include "rt/priority.hpp"

namespace flexrt::fault {

double recovery_gap(const FaultModel& model) noexcept {
  if (model.rate <= 0.0) return std::numeric_limits<double>::infinity();
  return std::max(model.min_separation, 1.0 / model.rate);
}

std::optional<rt::Task> recovery_task(const rt::TaskSet& channel, double gap) {
  FLEXRT_REQUIRE(gap > 0.0, "recovery gap must be > 0");
  if (channel.empty() || std::isinf(gap)) return std::nullopt;
  double max_wcet = 0.0;
  for (const rt::Task& t : channel) max_wcet = std::max(max_wcet, t.wcet);
  FLEXRT_REQUIRE(gap >= max_wcet,
                 "recovery gap shorter than the channel's largest WCET");
  rt::Task rec;
  rec.name = "_recovery";
  rec.wcet = max_wcet;
  rec.period = gap;
  rec.deadline = gap;  // implicit: done before the next fault can strike
  rec.mode = rt::Mode::FS;
  return rec;
}

bool fs_schedulable(const rt::TaskSet& channel, hier::Scheduler alg,
                    const hier::SupplyFunction& supply, double gap) {
  if (channel.empty()) return true;
  if (gap <= 0.0) return false;  // degenerate model: faults arbitrarily close
  if (!std::isinf(gap)) {
    // Faults closer than one full re-execution: recovery can never finish
    // before the next strike, so the channel loses results unboundedly.
    for (const rt::Task& t : channel) {
      if (t.wcet > gap) return false;
    }
  }
  rt::TaskSet with_recovery = channel;
  if (const std::optional<rt::Task> rec = recovery_task(channel, gap)) {
    with_recovery.add(*rec);
  }
  if (alg == hier::Scheduler::FP) {
    with_recovery = rt::sort_deadline_monotonic(with_recovery);
  }
  // Default condensation budgets: gap = 1/rate is generally co-prime with
  // the task periods, so the exact hyperperiod enumeration would explode;
  // the bounded context keeps the test safe and cheap instead.
  const rt::AnalysisContext ctx(std::move(with_recovery));
  return hier::schedulable(ctx, alg, supply);
}

bool fs_schedulable_dedicated(const rt::TaskSet& channel, hier::Scheduler alg,
                              double gap) {
  return fs_schedulable(channel, alg, hier::LinearSupply(1.0, 0.0), gap);
}

double corruption_exposure(double rate, double nf_utilization) noexcept {
  if (rate <= 0.0) return 0.0;
  return rate * nf_utilization / 4.0;
}

}  // namespace flexrt::fault
