#pragma once

#include <optional>

#include "fault/fault_model.hpp"
#include "hier/sched_test.hpp"
#include "rt/task_set.hpp"

namespace flexrt::fault {

/// Analytic recovery-demand model behind svc::FaultSweepRequest: what a
/// transient fault *costs* each task class in schedulable time.
///
/// The paper's single-transient-fault assumption (§2.1) is that the soft
/// error rate statistically guarantees enough separation between faults for
/// the platform to recover; FaultModel models that guarantee with a hard
/// minimum separation. The schedulability side of the same assumption is the
/// classic fault-tolerant analysis move (Pandya & Malek; Burns/Davis): in
/// any window of length t at most ceil(t / gap) faults occur, where `gap`
/// is the guaranteed inter-fault separation, and each fault costs at most
/// one re-execution of the largest job it can hit. Per class:
///
///  - FT: the 4-way lock-step channel *masks* the fault -- the majority
///    out-votes the corrupted core, no re-execution, no extra demand.
///  - FS: the 2-way lock-step channel *detects* the fault and silences the
///    output; recovering the lost result means re-executing the affected
///    job. That re-execution is the recovery demand modeled here.
///  - NF: the fault is neither masked nor detected -- the corrupted output
///    reaches the bus. No recovery is possible, so the timing analysis is
///    unchanged; what degrades is output integrity (corruption_exposure).

/// Guaranteed inter-fault separation the analysis may assume for `model`:
/// the statistical separation 1/rate of the Poisson arrivals, floored by
/// the model's hard min_separation (the generator enforces the floor, the
/// rate guarantees the rest "statistically" in the paper's sense). +inf
/// when rate <= 0 (no faults, no recovery demand).
double recovery_gap(const FaultModel& model) noexcept;

/// The sporadic recovery task of one fail-silent channel: a fault may force
/// re-execution of any of the channel's jobs, so the conservative demand is
/// one job of the largest WCET every `gap` time units, with an implicit
/// deadline (the recovery must complete before the next fault can strike --
/// the standard fault-interference term of the Pandya-Malek/Burns-Davis
/// analyses, here materialized as a task so the unmodified Eq. 12-14 tests
/// absorb it). nullopt when the channel is empty or gap is +inf -- no
/// recovery demand to add. Requires gap > 0 and gap >= the channel's
/// largest WCET (a smaller gap cannot fit one recovery between faults;
/// fs_schedulable reports such channels unschedulable outright).
std::optional<rt::Task> recovery_task(const rt::TaskSet& channel, double gap);

/// Fault-aware schedulability of one fail-silent channel under `supply`:
/// the channel's tasks plus its recovery task, re-sorted deadline-monotonic
/// under FP so the recovery demand takes the priority its gap earns. The
/// test runs on a
/// default-budget rt::AnalysisContext, so a recovery period co-prime with
/// the task periods (gap = 1/rate rarely divides anything) cannot blow up
/// the deadline-set enumeration: condensed answers stay safe
/// over-approximations, exactly like every other probe in the library.
/// A non-positive gap (degenerate model) is unschedulable by definition
/// unless the channel is empty.
bool fs_schedulable(const rt::TaskSet& channel, hier::Scheduler alg,
                    const hier::SupplyFunction& supply, double gap);

/// Dedicated-processor variant (unit-rate supply, zero delay) for the
/// static-FS baseline: each permanent fail-silent couple is a plain
/// uniprocessor, but detection still means re-execution, so the recovery
/// demand applies there too.
bool fs_schedulable_dedicated(const rt::TaskSet& channel, hier::Scheduler alg,
                              double gap);

/// Expected corrupting faults per time unit when unprotected (NF) load of
/// total utilization `nf_utilization` runs on the platform's four cores: a
/// fault strikes one core uniformly at random (FaultModel), and it corrupts
/// an output only if that core is executing NF work at that instant, which
/// happens a U_NF / 4 fraction of the time. The integrity half of the NF
/// verdict -- timing is unaffected, outputs are not.
double corruption_exposure(double rate, double nf_utilization) noexcept;

}  // namespace flexrt::fault
