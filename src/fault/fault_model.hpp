#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "platform/checker.hpp"

namespace flexrt::fault {

/// One transient soft error: it strikes a single core at `time` (paper §2.1:
/// a particle can strike only one core, so no correlated multi-core faults).
struct Fault {
  Ticks time = 0;
  platform::CoreId core = 0;
};

/// Poisson generator of transient faults honouring the paper's
/// single-transient-fault assumption: the soft-error rate statistically
/// guarantees enough separation between faults for recovery, which we model
/// with a hard minimum separation (faults drawn closer are pushed apart).
struct FaultModel {
  double rate = 0.0;  ///< expected faults per time unit (lambda)
  double min_separation = 1.0;  ///< enforced gap between faults, time units

  /// Draws the fault arrivals in [0, horizon), strictly increasing in time,
  /// with cores chosen uniformly.
  std::vector<Fault> generate(Ticks horizon, Rng& rng) const;
};

}  // namespace flexrt::fault
