#include "fault/fault_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexrt::fault {

std::vector<Fault> FaultModel::generate(Ticks horizon, Rng& rng) const {
  FLEXRT_REQUIRE(rate >= 0.0, "fault rate must be >= 0");
  FLEXRT_REQUIRE(min_separation >= 0.0, "separation must be >= 0");
  std::vector<Fault> out;
  if (rate <= 0.0) return out;
  const Ticks gap = to_ticks(min_separation);
  Ticks t = 0;
  for (;;) {
    const Ticks step = std::max<Ticks>(1, to_ticks(rng.exponential(rate)));
    t += step;
    if (!out.empty()) t = std::max(t, out.back().time + gap);
    if (t >= horizon) break;
    out.push_back(
        {t, static_cast<platform::CoreId>(
                rng.uniform_int(0, static_cast<std::int64_t>(
                                       platform::kNumCores - 1)))});
  }
  return out;
}

}  // namespace flexrt::fault
