#pragma once

#include <optional>

#include "hier/supply.hpp"
#include "rt/analysis_context.hpp"
#include "rt/task_set.hpp"

namespace flexrt::hier {

/// Pseudo-inverse of a supply function: the smallest window length t such
/// that Z(t) >= demand. Delegates to SupplyFunction::inverse(), which is an
/// exact closed form for every shape shipped with the library; `tolerance`
/// only applies to shapes that fall back to the generic bisection (see
/// SupplyFunction::inverse_by_bisection). demand <= 0 yields 0.
double supply_inverse(const SupplyFunction& supply, double demand,
                      double tolerance = kInverseTolerance);

/// Worst-case response time of task `i` of an FP-scheduled partition served
/// by `supply`: the fixed point of
///
///   R = Z^{-1}( W_i(R) ),   W_i(t) = C_i + sum_{j<i} ceil(t/T_j) C_j,
///
/// starting from the critical instant (all tasks released together with the
/// supply at its worst). The iteration is monotone; it either converges or
/// exceeds the deadline, in which case nullopt is returned (task
/// unschedulable in this partition). The set must be sorted by decreasing
/// priority.
///
/// With supply = LinearSupply(1, 0) this reduces to classic RTA. The EDF
/// counterpart (Spuri's analysis under a supply function) is out of scope;
/// use edf_schedulable() for EDF feasibility.
std::optional<double> fp_response_time(const rt::TaskSet& ts, std::size_t i,
                                       const SupplyFunction& supply);

/// AnalysisContext overload for API uniformity with the other kernels:
/// identical result and identical work (the RTA iterates at arbitrary R
/// values, so the cached test points don't apply -- its speedup over the
/// seed comes from the closed-form inverse). Lets context-holding callers
/// avoid carrying the TaskSet separately. Unaffected by the FP point
/// budget: each iterate is O(i) in the task count with no point set at
/// all, so the RTA stays exact even on condensed contexts.
std::optional<double> fp_response_time(const rt::AnalysisContext& ctx,
                                       std::size_t i,
                                       const SupplyFunction& supply);

/// Response times of every task of the partition (nullopt entries for
/// unschedulable tasks).
std::vector<std::optional<double>> fp_response_times(
    const rt::TaskSet& ts, const SupplyFunction& supply);

}  // namespace flexrt::hier
