#include "hier/response_time.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "rt/demand.hpp"

namespace flexrt::hier {

double supply_inverse(const SupplyFunction& supply, double demand,
                      double tolerance) {
  FLEXRT_REQUIRE(tolerance > 0.0, "tolerance must be > 0");
  return supply.inverse(demand, tolerance);
}

std::optional<double> fp_response_time(const rt::TaskSet& ts, std::size_t i,
                                       const SupplyFunction& supply) {
  FLEXRT_REQUIRE(i < ts.size(), "task index out of range");
  const double deadline = ts[i].deadline;
  double r = supply.inverse(ts[i].wcet);
  // Monotone fixed-point iteration: W_i is a step function of R, so each
  // iterate only grows; convergence is reached when the workload stops
  // changing, divergence when R crosses the deadline. Each iterate costs
  // one closed-form inverse plus the O(i) workload sum.
  for (int guard = 0; guard < 10000; ++guard) {
    if (r > deadline * (1.0 + 1e-9)) return std::nullopt;
    const double next = supply.inverse(rt::fp_workload(ts, i, r));
    if (almost_equal(next, r, 1e-9, 1e-9)) return next;
    r = next;
  }
  return std::nullopt;  // pathological oscillation guard
}

std::optional<double> fp_response_time(const rt::AnalysisContext& ctx,
                                       std::size_t i,
                                       const SupplyFunction& supply) {
  return fp_response_time(ctx.tasks(), i, supply);
}

std::vector<std::optional<double>> fp_response_times(
    const rt::TaskSet& ts, const SupplyFunction& supply) {
  std::vector<std::optional<double>> out;
  out.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    out.push_back(fp_response_time(ts, i, supply));
  }
  return out;
}

}  // namespace flexrt::hier
