#pragma once

#include <memory>

namespace flexrt::hier {

/// Default refinement tolerance of SupplyFunction::inverse (and of the
/// bisection loops built on it, e.g. min_quantum_exact). The closed-form
/// overrides ignore it; the bisection fallback refines to it. One named
/// constant instead of a 1e-9 literal repeated across every override and
/// call site -- it must match the library-wide 1e-9 snapping regime of
/// math_util (leq_tol / floor_ratio), so change them together or not at all.
inline constexpr double kInverseTolerance = 1e-9;

/// A supply function Z(t): the minimum amount of execution time a time
/// partition is guaranteed to provide in *any* window of length t
/// (paper Def. 1). Implementations must be non-decreasing, 0 at t<=0,
/// super-additively bounded by rate() * t, and must satisfy the linear
/// service floor Z(t) >= rate() * (t - floor_delay()) -- the QPA tail
/// closure of the condensed EDF test (rt/deadline_bound.hpp) relies on it.
class SupplyFunction {
 public:
  virtual ~SupplyFunction() = default;

  /// Minimum supply in any window of length t (t < 0 is treated as 0).
  virtual double value(double t) const noexcept = 0;

  /// Long-run supply rate alpha = lim Z(t)/t.
  virtual double rate() const noexcept = 0;

  /// Service delay Delta: the largest t with Z(t) = 0 (for our shapes).
  virtual double delay() const noexcept = 0;

  /// Delay of the guaranteed linear service floor: the smallest D with
  /// Z(t) >= rate() * (t - D) for every t. For the single-gap shapes
  /// (linear, slot, periodic resource) this equals delay() -- paper Eq. 3
  /// -- which is the default; shapes whose no-supply gaps are uneven
  /// (MultiSlotSupply) must override it, since their floor sits strictly
  /// right of the longest gap.
  virtual double floor_delay() const noexcept { return delay(); }

  /// Pseudo-inverse: the smallest t with Z(t) >= demand (0 for demand <= 0).
  /// Every shape shipped with the library overrides this with an exact
  /// closed form (tolerance unused); the base implementation is the
  /// documented bisection fallback for exotic shapes, refined to
  /// `tolerance`. This is the kernel inside every RTA fixed-point iterate,
  /// so exactness of the closed forms is property-tested against the
  /// fallback.
  virtual double inverse(double demand, double tolerance = kInverseTolerance) const;

  /// Generic pseudo-inverse by exponential bracketing + bisection. The
  /// bracket starts at [delay(), delay() + demand/rate()] -- Z is 0 up to
  /// the delay, so scanning [0, delay) would be wasted work -- and the low
  /// edge follows the doubling so the bisection never re-scans a range the
  /// search already excluded. Throws ModelError when the supply can never
  /// cover the demand. Exposed for tests and as the fallback for shapes
  /// with no closed form.
  double inverse_by_bisection(double demand, double tolerance = kInverseTolerance) const;
};

/// Linear lower bound Z'(t) = max(0, alpha * (t - delta)) (paper Eq. 3).
/// This is the supply model the paper's closed-form minQ is derived from.
class LinearSupply final : public SupplyFunction {
 public:
  /// alpha in (0, 1], delta >= 0.
  LinearSupply(double alpha, double delta);

  double value(double t) const noexcept override;
  double rate() const noexcept override { return alpha_; }
  double delay() const noexcept override { return delta_; }

  /// Exact: t = delta + demand/alpha (tolerance unused).
  double inverse(double demand, double tolerance = kInverseTolerance) const override;

 private:
  double alpha_;
  double delta_;
};

/// Exact supply of one slot of usable length q repeating every period p
/// (paper Lemma 1):
///   Z(t) = j*q                       if t in [j*p, (j+1)*p - q)
///        = t - (j+1)*(p - q)         otherwise,        j = floor(t/p).
/// Its linear lower bound has alpha = q/p and delta = p - q (paper Eq. 2).
class SlotSupply final : public SupplyFunction {
 public:
  /// period p > 0, usable quantum 0 <= q <= p.
  SlotSupply(double period, double usable);

  double value(double t) const noexcept override;
  double rate() const noexcept override { return usable_ / period_; }
  double delay() const noexcept override { return period_ - usable_; }

  /// Exact (tolerance unused): demand lands on the ramp of period
  /// j = ceil(demand/q) - 1, so t = demand + (j+1)(p - q). Throws
  /// ModelError when q = 0 and demand > 0.
  double inverse(double demand, double tolerance = kInverseTolerance) const override;

  double period() const noexcept { return period_; }
  double usable() const noexcept { return usable_; }

  /// The (alpha, delta) linear bound of this slot supply.
  LinearSupply linear_bound() const noexcept;

 private:
  double period_;
  double usable_;
};

/// Shin–Lee periodic resource model Gamma = (Pi, Theta): a budget Theta
/// guaranteed somewhere within every period Pi (RTSS 2003, cited as [19]).
/// Worst case: budget at the start of one period and at the end of the next,
///   sbf(t) = floor(t'/Pi)*Theta + max(0, t' - (Pi - Theta) - floor(t'/Pi)*Pi)
///   with t' = t - (Pi - Theta),  sbf(t) = 0 for t < Pi - Theta.
/// Included for comparison with the paper's slot model (E4); the slot model
/// pins the budget position inside the period and therefore supplies more.
class PeriodicResource final : public SupplyFunction {
 public:
  PeriodicResource(double period, double budget);

  double value(double t) const noexcept override;
  double rate() const noexcept override { return budget_ / period_; }
  /// Largest t with sbf(t)=0 is 2*(Pi - Theta).
  double delay() const noexcept override { return 2.0 * (period_ - budget_); }

  /// Exact (tolerance unused): demand lands on the ramp of cycle
  /// k = ceil(demand/Theta) - 1, so t = demand + (k + 2)(Pi - Theta).
  double inverse(double demand, double tolerance = kInverseTolerance) const override;

 private:
  double period_;
  double budget_;
};

}  // namespace flexrt::hier
