#include "hier/min_quantum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "rt/demand.hpp"
#include "rt/sched_points.hpp"

namespace flexrt::hier {

double quantum_for_point(double t, double workload, double period) noexcept {
  const double b = t - period;
  return (std::sqrt(b * b + 4.0 * period * workload) - b) / 2.0;
}

namespace {

double min_quantum_fp(const rt::TaskSet& ts, double period) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const double t : rt::scheduling_points(ts, i)) {
      best = std::min(best,
                      quantum_for_point(t, rt::fp_workload(ts, i, t), period));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

double min_quantum_edf(const rt::TaskSet& ts, double period) {
  double worst = 0.0;
  for (const double t : rt::deadline_set(ts)) {
    worst = std::max(worst,
                     quantum_for_point(t, rt::edf_demand(ts, t), period));
  }
  return worst;
}

}  // namespace

double min_quantum(const rt::TaskSet& ts, Scheduler alg, double period) {
  FLEXRT_REQUIRE(period > 0.0, "period must be > 0");
  if (ts.empty()) return 0.0;
  return alg == Scheduler::FP ? min_quantum_fp(ts, period)
                              : min_quantum_edf(ts, period);
}

double min_quantum_exact(const rt::TaskSet& ts, Scheduler alg, double period,
                         double tolerance) {
  FLEXRT_REQUIRE(period > 0.0, "period must be > 0");
  if (ts.empty()) return 0.0;
  // Feasibility is monotone in the usable quantum: a larger quantum yields a
  // pointwise larger SlotSupply, so bisection applies. The linear-bound
  // answer is an upper bound for the exact one.
  double hi = std::min(period, min_quantum(ts, alg, period));
  if (!schedulable(ts, alg, SlotSupply(period, hi))) {
    // Linear answer exceeded the period: the exact test may still pass with
    // q <= P, or fail outright.
    hi = period;
    if (!schedulable(ts, alg, SlotSupply(period, hi))) {
      return std::numeric_limits<double>::infinity();
    }
  }
  double lo = 0.0;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (schedulable(ts, alg, SlotSupply(period, mid))) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace flexrt::hier
