#include "hier/min_quantum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "rt/demand.hpp"
#include "rt/sched_points.hpp"

namespace flexrt::hier {

double quantum_for_point(double t, double workload, double period) noexcept {
  const double b = t - period;
  return (std::sqrt(b * b + 4.0 * period * workload) - b) / 2.0;
}

namespace {

double min_quantum_fp(const rt::AnalysisContext& ctx, double period) {
  // On a condensed point set this pairs each bucket's end workload with
  // its start time: quantum_for_point is decreasing in t and increasing in
  // W, so the bucket's quantum dominates every point inside it and the
  // condensed minQ is a safe over-approximation (exact when fp_exact()).
  // No tail term -- schedP_i is bounded by D_i, unlike the EDF dlSet.
  double worst = 0.0;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const std::vector<double>& points = ctx.scheduling_points(i);
    const std::vector<double>& workloads = ctx.fp_point_workloads(i);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < points.size(); ++k) {
      best = std::min(best, quantum_for_point(points[k], workloads[k], period));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

double min_quantum_edf(const rt::AnalysisContext& ctx, double period) {
  // On a condensed set this pairs each bucket's worst demand with its
  // earliest time: quantum_for_point is decreasing in t and increasing in
  // W, so the bucket's quantum dominates every deadline inside it.
  const std::vector<double>& points = ctx.deadline_points();
  const std::vector<double>& demand = ctx.edf_demand_at_points();
  double worst = 0.0;
  for (std::size_t k = 0; k < points.size(); ++k) {
    worst = std::max(worst, quantum_for_point(points[k], demand[k], period));
  }
  if (!ctx.dl_exact()) {
    // QPA tail closure for the deadlines beyond the covered horizon H:
    // dbf(t) <= U t + c there, so the smallest quantum whose linear supply
    // (slope Q/P, delay P - Q) sits on the demand line at H *and* has slope
    // >= U (Q >= U P) covers every later deadline too.
    const double h = ctx.dl_horizon();
    const double line = ctx.utilization() * h + ctx.dl_util_const();
    worst = std::max({worst, quantum_for_point(h, line, period),
                      ctx.utilization() * period});
  }
  return worst;
}

}  // namespace

double min_quantum(const rt::AnalysisContext& ctx, Scheduler alg,
                   double period) {
  FLEXRT_REQUIRE(period > 0.0, "period must be > 0");
  if (ctx.empty()) return 0.0;
  return alg == Scheduler::FP ? min_quantum_fp(ctx, period)
                              : min_quantum_edf(ctx, period);
}

double min_quantum(const rt::TaskSet& ts, Scheduler alg, double period) {
  return min_quantum(rt::AnalysisContext(ts), alg, period);
}

double min_quantum_exact(const rt::AnalysisContext& ctx, Scheduler alg,
                         double period, double tolerance) {
  FLEXRT_REQUIRE(period > 0.0, "period must be > 0");
  if (ctx.empty()) return 0.0;
  // Feasibility is monotone in the usable quantum: a larger quantum yields a
  // pointwise larger SlotSupply, so bisection applies. The linear-bound
  // answer is an upper bound for the exact one. Every probe reuses the
  // cached test points; only the slot supply is evaluated fresh.
  double hi = std::min(period, min_quantum(ctx, alg, period));
  if (!schedulable(ctx, alg, SlotSupply(period, hi))) {
    // Linear answer exceeded the period: the exact test may still pass with
    // q <= P, or fail outright.
    hi = period;
    if (!schedulable(ctx, alg, SlotSupply(period, hi))) {
      return std::numeric_limits<double>::infinity();
    }
  }
  double lo = 0.0;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (schedulable(ctx, alg, SlotSupply(period, mid))) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double min_quantum_exact(const rt::TaskSet& ts, Scheduler alg, double period,
                         double tolerance) {
  return min_quantum_exact(rt::AnalysisContext(ts), alg, period, tolerance);
}

}  // namespace flexrt::hier
