#include "hier/sched_test.hpp"

#include "common/math_util.hpp"
#include "rt/demand.hpp"
#include "rt/sched_points.hpp"

namespace flexrt::hier {

const char* to_string(Scheduler alg) noexcept {
  return alg == Scheduler::FP ? "FP" : "EDF";
}

bool fp_schedulable(const rt::TaskSet& ts, const SupplyFunction& supply) {
  for (std::size_t i = 0; i < ts.size(); ++i) {
    bool ok = false;
    for (const double t : rt::scheduling_points(ts, i)) {
      if (leq_tol(rt::fp_workload(ts, i, t), supply.value(t))) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

bool edf_schedulable(const rt::TaskSet& ts, const SupplyFunction& supply) {
  if (ts.empty()) return true;
  if (ts.utilization() > supply.rate() + 1e-12) return false;
  for (const double t : rt::deadline_set(ts)) {
    if (!leq_tol(rt::edf_demand(ts, t), supply.value(t))) return false;
  }
  return true;
}

bool schedulable(const rt::TaskSet& ts, Scheduler alg,
                 const SupplyFunction& supply) {
  return alg == Scheduler::FP ? fp_schedulable(ts, supply)
                              : edf_schedulable(ts, supply);
}

}  // namespace flexrt::hier
