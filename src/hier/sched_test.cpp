#include "hier/sched_test.hpp"

#include "common/math_util.hpp"
#include "rt/deadline_bound.hpp"
#include "rt/demand.hpp"
#include "rt/sched_points.hpp"

namespace flexrt::hier {

const char* to_string(Scheduler alg) noexcept {
  return alg == Scheduler::FP ? "FP" : "EDF";
}

bool fp_schedulable(const rt::TaskSet& ts, const SupplyFunction& supply) {
  for (std::size_t i = 0; i < ts.size(); ++i) {
    bool ok = false;
    for (const double t : rt::scheduling_points(ts, i)) {
      if (leq_tol(rt::fp_workload(ts, i, t), supply.value(t))) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

bool edf_schedulable(const rt::TaskSet& ts, const SupplyFunction& supply) {
  if (ts.empty()) return true;
  if (ts.utilization() > supply.rate() + 1e-12) return false;
  for (const double t : rt::deadline_set(ts)) {
    if (!leq_tol(rt::edf_demand(ts, t), supply.value(t))) return false;
  }
  return true;
}

bool schedulable(const rt::TaskSet& ts, Scheduler alg,
                 const SupplyFunction& supply) {
  return alg == Scheduler::FP ? fp_schedulable(ts, supply)
                              : edf_schedulable(ts, supply);
}

bool fp_schedulable(const rt::AnalysisContext& ctx,
                    const SupplyFunction& supply) {
  // On a condensed point set, workloads[k] is W_i at the bucket's last
  // point while points[k] is its first -- the conservative pairing for an
  // EXISTS test (harder to pass), so a pass here implies a pass of the
  // full Bini-Buttazzo test. Exact when ctx.fp_exact().
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const std::vector<double>& points = ctx.scheduling_points(i);
    const std::vector<double>& workloads = ctx.fp_point_workloads(i);
    bool ok = false;
    for (std::size_t k = 0; k < points.size(); ++k) {
      if (leq_tol(workloads[k], supply.value(points[k]))) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

bool edf_schedulable(const rt::AnalysisContext& ctx,
                     const SupplyFunction& supply) {
  if (ctx.empty()) return true;
  if (ctx.utilization() > supply.rate() + 1e-12) return false;
  // On a condensed set, demand[k] is the demand at the bucket's latest
  // deadline while points[k] is its earliest one -- a conservative pairing,
  // so a pass here implies a pass of the full per-deadline test.
  const std::vector<double>& points = ctx.deadline_points();
  const std::vector<double>& demand = ctx.edf_demand_at_points();
  for (std::size_t k = 0; k < points.size(); ++k) {
    if (!leq_tol(demand[k], supply.value(points[k]))) return false;
  }
  if (!ctx.dl_exact()) {
    // QPA tail closure: every deadline beyond the covered horizon passes
    // automatically iff the demand line U t + c has dropped below the
    // supply's guaranteed linear floor rate*(t - floor_delay()) by then.
    const double tail = rt::qpa_horizon(ctx.utilization(),
                                        ctx.dl_util_const(), supply.rate(),
                                        supply.floor_delay());
    if (!leq_tol(tail, ctx.dl_horizon())) return false;
  }
  return true;
}

bool schedulable(const rt::AnalysisContext& ctx, Scheduler alg,
                 const SupplyFunction& supply) {
  return alg == Scheduler::FP ? fp_schedulable(ctx, supply)
                              : edf_schedulable(ctx, supply);
}

}  // namespace flexrt::hier
