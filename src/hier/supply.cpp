#include "hier/supply.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::hier {

LinearSupply::LinearSupply(double alpha, double delta)
    : alpha_(alpha), delta_(delta) {
  FLEXRT_REQUIRE(alpha > 0.0 && alpha <= 1.0 + 1e-12,
                 "supply rate alpha must be in (0,1]");
  FLEXRT_REQUIRE(delta >= 0.0, "supply delay must be >= 0");
}

double LinearSupply::value(double t) const noexcept {
  return std::max(0.0, alpha_ * (t - delta_));
}

SlotSupply::SlotSupply(double period, double usable)
    : period_(period), usable_(usable) {
  FLEXRT_REQUIRE(period > 0.0, "slot supply period must be > 0");
  FLEXRT_REQUIRE(usable >= 0.0 && usable <= period + 1e-12,
                 "usable quantum must satisfy 0 <= q <= P");
}

double SlotSupply::value(double t) const noexcept {
  if (t <= 0.0 || usable_ <= 0.0) return 0.0;
  const double j = static_cast<double>(floor_ratio(t, period_));
  // Within period j, supply stays flat at j*q until only the final q of the
  // period remains, then ramps with slope 1.
  const double flat = j * usable_;
  const double ramp = t - (j + 1.0) * (period_ - usable_);
  return std::max(flat, ramp);
}

LinearSupply SlotSupply::linear_bound() const noexcept {
  return LinearSupply(usable_ / period_, period_ - usable_);
}

PeriodicResource::PeriodicResource(double period, double budget)
    : period_(period), budget_(budget) {
  FLEXRT_REQUIRE(period > 0.0, "resource period must be > 0");
  FLEXRT_REQUIRE(budget > 0.0 && budget <= period + 1e-12,
                 "budget must satisfy 0 < Theta <= Pi");
}

double PeriodicResource::value(double t) const noexcept {
  const double shifted = t - (period_ - budget_);
  if (shifted <= 0.0) return 0.0;
  const double k = static_cast<double>(floor_ratio(shifted, period_));
  const double within = shifted - k * period_;
  return k * budget_ + std::max(0.0, within - (period_ - budget_));
}

}  // namespace flexrt::hier
