#include "hier/supply.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::hier {

double SupplyFunction::inverse(double demand, double tolerance) const {
  return inverse_by_bisection(demand, tolerance);
}

double SupplyFunction::inverse_by_bisection(double demand,
                                            double tolerance) const {
  FLEXRT_REQUIRE(tolerance > 0.0, "tolerance must be > 0");
  if (demand <= 0.0) return 0.0;
  // Z(t) = 0 up to the delay, so the search bracket starts there; the
  // linear bound guarantees Z(delay + demand/rate) >= demand for our
  // shapes, and exotic shapes get the doubling loop. `lo` tracks the last
  // insufficient probe so bisection never re-scans an excluded prefix, and
  // the doubling grows the gap beyond the delay (not the absolute time) so
  // large-delay supplies don't blow the bracket up to ~2*delay wide.
  double lo = delay();
  double gap = demand / rate();
  double hi = lo + gap;
  int guard = 0;
  while (value(hi) < demand) {
    lo = hi;
    gap *= 2.0;
    hi = lo + gap;
    FLEXRT_REQUIRE(++guard < 128, "supply cannot cover the demand");
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (value(mid) >= demand) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

LinearSupply::LinearSupply(double alpha, double delta)
    : alpha_(alpha), delta_(delta) {
  FLEXRT_REQUIRE(alpha > 0.0 && alpha <= 1.0 + 1e-12,
                 "supply rate alpha must be in (0,1]");
  FLEXRT_REQUIRE(delta >= 0.0, "supply delay must be >= 0");
}

double LinearSupply::value(double t) const noexcept {
  return std::max(0.0, alpha_ * (t - delta_));
}

double LinearSupply::inverse(double demand, double /*tolerance*/) const {
  if (demand <= 0.0) return 0.0;
  return delta_ + demand / alpha_;
}

SlotSupply::SlotSupply(double period, double usable)
    : period_(period), usable_(usable) {
  FLEXRT_REQUIRE(period > 0.0, "slot supply period must be > 0");
  FLEXRT_REQUIRE(usable >= 0.0 && usable <= period + 1e-12,
                 "usable quantum must satisfy 0 <= q <= P");
}

double SlotSupply::value(double t) const noexcept {
  if (t <= 0.0 || usable_ <= 0.0) return 0.0;
  const double j = static_cast<double>(floor_ratio(t, period_));
  // Within period j, supply stays flat at j*q until only the final q of the
  // period remains, then ramps with slope 1.
  const double flat = j * usable_;
  const double ramp = t - (j + 1.0) * (period_ - usable_);
  return std::max(flat, ramp);
}

double SlotSupply::inverse(double demand, double /*tolerance*/) const {
  if (demand <= 0.0) return 0.0;
  FLEXRT_REQUIRE(usable_ > 0.0, "supply cannot cover the demand");
  // Z first reaches `demand` on the slope-1 ramp of period j, where j is
  // the number of *whole* slots strictly below the demand. ceil_ratio snaps
  // demands within tolerance of a slot multiple onto the ramp end, matching
  // value()'s floor_ratio snapping.
  const auto j =
      static_cast<double>(std::max<std::int64_t>(
          ceil_ratio(demand, usable_) - 1, 0));
  return demand + (j + 1.0) * (period_ - usable_);
}

LinearSupply SlotSupply::linear_bound() const noexcept {
  return LinearSupply(usable_ / period_, period_ - usable_);
}

PeriodicResource::PeriodicResource(double period, double budget)
    : period_(period), budget_(budget) {
  FLEXRT_REQUIRE(period > 0.0, "resource period must be > 0");
  FLEXRT_REQUIRE(budget > 0.0 && budget <= period + 1e-12,
                 "budget must satisfy 0 < Theta <= Pi");
}

double PeriodicResource::value(double t) const noexcept {
  const double shifted = t - (period_ - budget_);
  if (shifted <= 0.0) return 0.0;
  const double k = static_cast<double>(floor_ratio(shifted, period_));
  const double within = shifted - k * period_;
  return k * budget_ + std::max(0.0, within - (period_ - budget_));
}

double PeriodicResource::inverse(double demand, double /*tolerance*/) const {
  if (demand <= 0.0) return 0.0;
  // sbf reaches `demand` on the ramp of cycle k = ceil(demand/Theta) - 1:
  // demand plus the initial blackout 2(Pi - Theta) plus one (Pi - Theta)
  // gap per completed cycle.
  const auto k =
      static_cast<double>(std::max<std::int64_t>(
          ceil_ratio(demand, budget_) - 1, 0));
  return demand + (k + 2.0) * (period_ - budget_);
}

}  // namespace flexrt::hier
