#pragma once

#include "hier/sched_test.hpp"
#include "rt/analysis_context.hpp"
#include "rt/task_set.hpp"

namespace flexrt::hier {

/// The quantum inversion at the heart of the paper (Eq. 6 and Eq. 11):
/// the smallest usable slot length Q~ such that the task set is schedulable
/// inside a slot of usable length Q~ repeating every `period`, under the
/// *linear* supply bound Z'(t) = max(0, (Q~/P)(t - (P - Q~))).
///
///   q(t, W) = ( sqrt((t-P)^2 + 4*P*W) - (t-P) ) / 2
///   FP :  minQ = max_i  min_{t in schedP_i}  q(t, W_i(t))
///   EDF:  minQ = max_{t in dlSet}            q(t, W(t))
///
/// For FP the set must be sorted by decreasing priority. An empty task set
/// needs no supply: returns 0. The result can exceed `period`, which simply
/// means no feasible quantum exists at this period.
double min_quantum(const rt::TaskSet& ts, Scheduler alg, double period);

/// Cached variant: the scheduling points / deadline set and the workloads
/// at them come from the context, so evaluating minQ at another period is
/// O(points) with no re-derivation. Design-space sweeps (lhs(P) curves,
/// period searches) build one context per partition and probe it at every
/// period. On condensed contexts (EDF dlSet budget or FP point budget
/// exceeded) the answer is a safe over-approximation: condensed minQ >=
/// exact minQ, and its supply schedules the full set.
double min_quantum(const rt::AnalysisContext& ctx, Scheduler alg,
                   double period);

/// Solution of Q^2 + (t-P) Q - W P = 0: the minimum quantum making the
/// linear supply cover demand W at time t. Exposed for tests.
double quantum_for_point(double t, double workload, double period) noexcept;

/// Variant of min_quantum computed against the *exact* slot supply
/// (Lemma 1) instead of its linear bound, by bisection on Q~ (feasibility is
/// monotone in Q~). Always <= min_quantum(); the gap is the price of the
/// linear approximation (studied in experiment E4).
double min_quantum_exact(const rt::TaskSet& ts, Scheduler alg, double period,
                         double tolerance = kInverseTolerance);

/// Cached variant of min_quantum_exact: each bisection probe on Q~ only
/// evaluates the exact slot supply at the cached test points.
double min_quantum_exact(const rt::AnalysisContext& ctx, Scheduler alg,
                         double period, double tolerance = kInverseTolerance);

}  // namespace flexrt::hier
