#include "hier/multi_slot_supply.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::hier {

MultiSlotSupply::MultiSlotSupply(double period, std::vector<Window> windows)
    : period_(period), windows_(std::move(windows)) {
  FLEXRT_REQUIRE(period > 0.0, "frame period must be > 0");
  FLEXRT_REQUIRE(!windows_.empty(), "need at least one usable window");
  double prev_end = 0.0;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const Window& w = windows_[i];
    FLEXRT_REQUIRE(w.begin >= 0.0 && w.end <= period + 1e-12,
                   "window outside the frame");
    FLEXRT_REQUIRE(w.end > w.begin, "window must have positive length");
    FLEXRT_REQUIRE(i == 0 || w.begin >= prev_end,
                   "windows must be ordered and disjoint");
    prev_end = w.end;
    total_usable_ += w.end - w.begin;
  }
  // Longest supply-free gap, including the wrap-around gap from the last
  // window's end through the frame boundary to the first window's begin.
  max_gap_ = windows_.front().begin + (period_ - windows_.back().end);
  for (std::size_t i = 1; i < windows_.size(); ++i) {
    max_gap_ = std::max(max_gap_, windows_[i].begin - windows_[i - 1].end);
  }
  // Linear-floor delay: g(t) = t - value(t)/rate is periodic (value gains
  // exactly rate*period per frame) and peaks where a window begins on some
  // worst-start curve -- the right end of a plateau of the min-over-starts
  // supply. Scanning those corner instants gives the exact smallest D with
  // value(t) >= rate*(t - D). With uneven gaps this exceeds max_gap_.
  for (std::size_t s = 0; s <= windows_.size(); ++s) {
    const double start = s == 0 ? 0.0 : windows_[s - 1].end;
    for (const Window& b : windows_) {
      double t = b.begin - start;
      if (t <= 0.0) t += period_;
      floor_delay_ =
          std::max(floor_delay_, t - value(t) * (period_ / total_usable_));
    }
  }
}

double MultiSlotSupply::supplied_between(double from, double to)
    const noexcept {
  return cumulative(to) - cumulative(from);
}

double MultiSlotSupply::cumulative(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  const double frames = static_cast<double>(floor_ratio(x, period_));
  const double rem = x - frames * period_;
  double within = 0.0;
  for (const Window& w : windows_) {
    if (rem <= w.begin) break;
    within += std::min(rem, w.end) - w.begin;
  }
  return frames * total_usable_ + within;
}

double MultiSlotSupply::cumulative_inverse(double target) const noexcept {
  if (target <= 0.0) return 0.0;
  // Whole frames strictly below the target, then the residual inside the
  // next frame. Both boundary tests snap in the *early* direction with the
  // library's 1e-9 relative tolerance (ceil_ratio at frame multiples, the
  // prefix comparison at window ends): a target an ulp past a plateau
  // would otherwise jump a whole supply gap later, while landing on the
  // plateau edge under-delivers by at most the tolerance -- the same
  // convention as SlotSupply::inverse and every leq_tol consumer.
  const auto frames = static_cast<double>(
      std::max<std::int64_t>(ceil_ratio(target, total_usable_) - 1, 0));
  const double rem = std::min(target - frames * total_usable_, total_usable_);
  const double snap = kInverseTolerance * total_usable_;
  double pref = 0.0;
  for (const Window& w : windows_) {
    const double len = w.end - w.begin;
    if (pref + len >= rem - snap) {
      return frames * period_ + w.begin + std::max(0.0, std::min(len, rem - pref));
    }
    pref += len;
  }
  // Unreachable for valid windows (rem <= total); keep a sane fallback.
  return frames * period_ + windows_.back().end;
}

double MultiSlotSupply::inverse(double demand, double /*tolerance*/) const {
  if (demand <= 0.0) return 0.0;
  // value(t) = min over candidate starts s of S(s + t) - S(s) with S =
  // cumulative and s in {0, window ends}; each per-start curve is
  // non-decreasing, so the smallest t where the min reaches `demand` is the
  // max over starts of the per-start inverse S^-1(S(s) + demand) - s.
  double worst = cumulative_inverse(demand);  // start at 0
  for (const Window& w : windows_) {
    worst = std::max(worst,
                     cumulative_inverse(cumulative(w.end) + demand) - w.end);
  }
  return worst;
}

double MultiSlotSupply::value(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  // The worst window of length t starts at the end of some usable window
  // (by periodicity, only the ends within the first frame matter).
  double worst = t;
  for (const Window& w : windows_) {
    worst = std::min(worst, supplied_between(w.end, w.end + t));
  }
  // Starting at 0 matters when 0 is not inside a window.
  worst = std::min(worst, supplied_between(0.0, t));
  return std::max(0.0, worst);
}

MultiSlotSupply evenly_split_supply(double period, double usable,
                                    std::size_t k, double offset) {
  FLEXRT_REQUIRE(k >= 1, "need at least one window");
  FLEXRT_REQUIRE(usable > 0.0 && usable <= period + 1e-12,
                 "usable budget must satisfy 0 < usable <= period");
  const double stride = period / static_cast<double>(k);
  const double each = usable / static_cast<double>(k);
  FLEXRT_REQUIRE(offset >= 0.0 && offset + each <= stride + 1e-12,
                 "offset pushes a window into the next stride");
  std::vector<MultiSlotSupply::Window> windows;
  windows.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double begin = static_cast<double>(i) * stride + offset;
    windows.push_back({begin, begin + each});
  }
  return MultiSlotSupply(period, std::move(windows));
}

}  // namespace flexrt::hier
