#include "hier/multi_slot_supply.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace flexrt::hier {

MultiSlotSupply::MultiSlotSupply(double period, std::vector<Window> windows)
    : period_(period), windows_(std::move(windows)) {
  FLEXRT_REQUIRE(period > 0.0, "frame period must be > 0");
  FLEXRT_REQUIRE(!windows_.empty(), "need at least one usable window");
  double prev_end = 0.0;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const Window& w = windows_[i];
    FLEXRT_REQUIRE(w.begin >= 0.0 && w.end <= period + 1e-12,
                   "window outside the frame");
    FLEXRT_REQUIRE(w.end > w.begin, "window must have positive length");
    FLEXRT_REQUIRE(i == 0 || w.begin >= prev_end,
                   "windows must be ordered and disjoint");
    prev_end = w.end;
    total_usable_ += w.end - w.begin;
  }
  // Longest supply-free gap, including the wrap-around gap from the last
  // window's end through the frame boundary to the first window's begin.
  max_gap_ = windows_.front().begin + (period_ - windows_.back().end);
  for (std::size_t i = 1; i < windows_.size(); ++i) {
    max_gap_ = std::max(max_gap_, windows_[i].begin - windows_[i - 1].end);
  }
}

double MultiSlotSupply::supplied_between(double from, double to)
    const noexcept {
  return cumulative(to) - cumulative(from);
}

double MultiSlotSupply::cumulative(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  const double frames = static_cast<double>(floor_ratio(x, period_));
  const double rem = x - frames * period_;
  double within = 0.0;
  for (const Window& w : windows_) {
    if (rem <= w.begin) break;
    within += std::min(rem, w.end) - w.begin;
  }
  return frames * total_usable_ + within;
}

double MultiSlotSupply::value(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  // The worst window of length t starts at the end of some usable window
  // (by periodicity, only the ends within the first frame matter).
  double worst = t;
  for (const Window& w : windows_) {
    worst = std::min(worst, supplied_between(w.end, w.end + t));
  }
  // Starting at 0 matters when 0 is not inside a window.
  worst = std::min(worst, supplied_between(0.0, t));
  return std::max(0.0, worst);
}

MultiSlotSupply evenly_split_supply(double period, double usable,
                                    std::size_t k, double offset) {
  FLEXRT_REQUIRE(k >= 1, "need at least one window");
  FLEXRT_REQUIRE(usable > 0.0 && usable <= period + 1e-12,
                 "usable budget must satisfy 0 < usable <= period");
  const double stride = period / static_cast<double>(k);
  const double each = usable / static_cast<double>(k);
  FLEXRT_REQUIRE(offset >= 0.0 && offset + each <= stride + 1e-12,
                 "offset pushes a window into the next stride");
  std::vector<MultiSlotSupply::Window> windows;
  windows.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double begin = static_cast<double>(i) * stride + offset;
    windows.push_back({begin, begin + each});
  }
  return MultiSlotSupply(period, std::move(windows));
}

}  // namespace flexrt::hier
