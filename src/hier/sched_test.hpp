#pragma once

#include "hier/supply.hpp"
#include "rt/analysis_context.hpp"
#include "rt/task_set.hpp"

namespace flexrt::hier {

/// Local scheduling algorithm used inside a time partition.
enum class Scheduler {
  FP,   ///< fixed priorities; task set sorted by decreasing priority
  EDF,  ///< earliest deadline first
};

const char* to_string(Scheduler alg) noexcept;

/// Paper Theorem 1 generalized to an arbitrary supply function:
/// task set T is FP-schedulable in a partition with supply Z if
///   for every task i, exists t in schedP_i with Z(t) >= W_i(t).
/// With Z = LinearSupply(alpha, delta) this is exactly Eq. (4).
bool fp_schedulable(const rt::TaskSet& ts, const SupplyFunction& supply);

/// Paper Theorem 2 generalized to an arbitrary supply function:
/// T is EDF-schedulable in the partition if U(T) <= rate and
///   for every t in dlSet(T), Z(t) >= W(t)   (W = demand bound, Eq. 9).
bool edf_schedulable(const rt::TaskSet& ts, const SupplyFunction& supply);

/// Dispatch on the scheduler enum. For FP the set must already be in
/// priority order (use rt::sort_rate_monotonic / sort_deadline_monotonic).
bool schedulable(const rt::TaskSet& ts, Scheduler alg,
                 const SupplyFunction& supply);

/// Cached variants: the test points and the demand/workload at them come
/// from the AnalysisContext, so one probe only evaluates the supply at the
/// cached points. This is what makes bisection loops over the supply
/// (min_quantum_exact, sensitivity margins) cheap -- the task-set side of
/// the inequality never moves between probes. On condensed contexts
/// (!dl_exact() / !fp_exact()) both are safe sufficient tests: a
/// condensed "schedulable" implies the exact verdict, never the reverse.
bool fp_schedulable(const rt::AnalysisContext& ctx,
                    const SupplyFunction& supply);
bool edf_schedulable(const rt::AnalysisContext& ctx,
                     const SupplyFunction& supply);
bool schedulable(const rt::AnalysisContext& ctx, Scheduler alg,
                 const SupplyFunction& supply);

}  // namespace flexrt::hier
