#pragma once

#include <vector>

#include "hier/supply.hpp"

namespace flexrt::hier {

/// Supply of a mode that receives SEVERAL usable windows per period -- the
/// generalization the paper's §5 lists as future work ("the same
/// fault-tolerance service during more than one time quantum per period").
///
/// The windows [begin_i, end_i) are fixed positions inside a repeating frame
/// of length `period`. The worst-case supply in a window of length t is the
/// minimum over all start positions; for a periodic piecewise-linear
/// cumulative supply the minimum is attained starting at the end of one of
/// the usable windows, so value() only evaluates those candidates.
///
/// Splitting a mode's allocation into k spread-out windows keeps the rate
/// alpha but shrinks the service delay Delta (the longest no-supply gap),
/// which is exactly what short-deadline tasks need; experiment E12
/// quantifies the gain.
class MultiSlotSupply final : public SupplyFunction {
 public:
  struct Window {
    double begin = 0.0;
    double end = 0.0;
  };

  /// Windows must be disjoint, ordered, and contained in [0, period).
  MultiSlotSupply(double period, std::vector<Window> windows);

  double value(double t) const noexcept override;
  double rate() const noexcept override { return total_usable_ / period_; }
  /// Longest gap without supply (wrapping around the frame boundary).
  double delay() const noexcept override { return max_gap_; }

  /// Exact linear-floor delay max_t (t - value(t)/rate): with uneven gaps
  /// this exceeds max_gap_ (the floor must clear *every* plateau corner,
  /// not just the longest gap), so the base-class default of delay() would
  /// overstate the floor and break the QPA tail closure. Computed once at
  /// construction over the plateau-corner candidates.
  double floor_delay() const noexcept override { return floor_delay_; }

  /// Closed form (tolerance unused): value() is the minimum of the
  /// per-start cumulative curves over the candidate starts (each window
  /// end, plus 0), so its pseudo-inverse is the maximum over those starts
  /// of the inverted cumulative curve. For demands landing exactly on a
  /// plateau level (whole multiples of the frame budget) this returns the
  /// plateau edge, whose supply covers the demand within the library's
  /// 1e-9 leq_tol regime; the strict bisection fallback can drift one gap
  /// later there on ulp noise (per-start curves differ by rounding).
  /// inverse_by_bisection remains the documented fallback and the
  /// property-test oracle.
  double inverse(double demand, double tolerance = kInverseTolerance) const override;

  double period() const noexcept { return period_; }
  std::size_t num_windows() const noexcept { return windows_.size(); }

  /// Cumulative supply delivered in [0, x) when the pattern starts at 0.
  double cumulative(double x) const noexcept;

  /// Smallest x with cumulative(x) >= target (0 for target <= 0).
  double cumulative_inverse(double target) const noexcept;

 private:
  double supplied_between(double from, double to) const noexcept;

  double period_;
  std::vector<Window> windows_;
  double total_usable_ = 0.0;
  double max_gap_ = 0.0;
  double floor_delay_ = 0.0;
};

/// Evenly spreads a total usable budget over `k` windows: window i of
/// length usable/k starting at i*period/k + offset. Helper for the design
/// layer and the ablation bench.
MultiSlotSupply evenly_split_supply(double period, double usable,
                                    std::size_t k, double offset = 0.0);

}  // namespace flexrt::hier
