#pragma once

#include <vector>

#include "hier/supply.hpp"

namespace flexrt::hier {

/// Supply of a mode that receives SEVERAL usable windows per period -- the
/// generalization the paper's §5 lists as future work ("the same
/// fault-tolerance service during more than one time quantum per period").
///
/// The windows [begin_i, end_i) are fixed positions inside a repeating frame
/// of length `period`. The worst-case supply in a window of length t is the
/// minimum over all start positions; for a periodic piecewise-linear
/// cumulative supply the minimum is attained starting at the end of one of
/// the usable windows, so value() only evaluates those candidates.
///
/// Splitting a mode's allocation into k spread-out windows keeps the rate
/// alpha but shrinks the service delay Delta (the longest no-supply gap),
/// which is exactly what short-deadline tasks need; experiment E12
/// quantifies the gain.
class MultiSlotSupply final : public SupplyFunction {
 public:
  struct Window {
    double begin = 0.0;
    double end = 0.0;
  };

  /// Windows must be disjoint, ordered, and contained in [0, period).
  MultiSlotSupply(double period, std::vector<Window> windows);

  double value(double t) const noexcept override;
  double rate() const noexcept override { return total_usable_ / period_; }
  /// Longest gap without supply (wrapping around the frame boundary).
  double delay() const noexcept override { return max_gap_; }

  double period() const noexcept { return period_; }
  std::size_t num_windows() const noexcept { return windows_.size(); }

  /// Cumulative supply delivered in [0, x) when the pattern starts at 0.
  double cumulative(double x) const noexcept;

 private:
  double supplied_between(double from, double to) const noexcept;

  double period_;
  std::vector<Window> windows_;
  double total_usable_ = 0.0;
  double max_gap_ = 0.0;
};

/// Evenly spreads a total usable budget over `k` windows: window i of
/// length usable/k starting at i*period/k + offset. Helper for the design
/// layer and the ablation bench.
MultiSlotSupply evenly_split_supply(double period, double usable,
                                    std::size_t k, double offset = 0.0);

}  // namespace flexrt::hier
