#include "svc/analysis_service.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "baseline/primary_backup.hpp"
#include "baseline/static_config.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fault/recovery.hpp"
#include "gen/taskset_gen.hpp"
#include "svc/memo_cache.hpp"

namespace flexrt::svc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

rt::CanonicalSystem canonicalize(const core::ModeTaskSystem& sys) {
  rt::CanonicalBuilder b;
  for (const rt::Mode mode : core::kAllModes) {
    b.add_group(static_cast<std::uint64_t>(mode), sys.partitions(mode));
  }
  return b.finish();
}

std::size_t resolve_budget(std::size_t points, hier::Scheduler alg) noexcept {
  if (points) return points;
  return alg == hier::Scheduler::FP ? rt::kDefaultFpPointBudget
                                    : rt::kDefaultDlPointBudget;
}

/// Fills the provenance of one probe round from the engine that ran it.
/// Asked *after* probing, so the exactness answers describe the
/// materialized caches (see BatchEngine::dl_exact).
bool record_probe(const analysis::BatchEngine& eng, std::size_t round,
                  std::size_t budget, Provenance& prov) {
  prov.probes = round;
  prov.budget = budget;
  prov.dl_exact = eng.dl_exact();
  prov.fp_exact = eng.fp_exact();
  prov.fp_budget =
      eng.scheduler() == hier::Scheduler::FP ? eng.fp_options().max_points : 0;
  return prov.dl_exact && prov.fp_exact;
}

/// Drives the accuracy ladder for one entry: probe at the initial budget,
/// then (adaptive only) re-probe at doubled budgets until the answer is
/// exact, stops moving (move <= tol), or the cap is reached. `move` returns
/// the distance between consecutive answers; +inf means "not comparable,
/// keep refining" (e.g. the feasibility verdict flipped).
///
/// Gap semantics: prov.gap is set only when the final answer is trustworthy
/// at the requested accuracy -- 0 when the probe turned exact, the last
/// inter-round move when the ladder converged (<= tol). A ladder that
/// exhausts the budget cap while the answer is still moving reports
/// nullopt: the last measured move bounds nothing about the distance to the
/// exact answer, so reporting it as "the gap" would overstate the capped
/// answer's accuracy.
///
/// Deadline semantics: an active pol.deadline is checked *after* the other
/// stop conditions and only between rungs, so a ladder that would finish
/// anyway reports its natural outcome, the first rung always completes
/// (there is always an answer to degrade to), and a run overshoots its
/// budget by at most one rung. Deadline degradation looks like a capped
/// ladder (gap nullopt, answer == fixed(final budget) bit for bit) plus
/// prov.degraded = true.
///
/// `notify(round)` fires at the start of every round, before the probe --
/// the deterministic injection point the executor-hardening tests hook
/// (AnalysisService::ProbeHook) to throw or stall at a chosen entry/round.
template <typename Value, typename EngineAt, typename Probe, typename Move,
          typename Notify>
Value run_ladder(const EngineAt& engine_at, const AccuracyPolicy& pol,
                 hier::Scheduler alg, const Probe& probe, const Move& move,
                 const Notify& notify, Provenance& prov) {
  const par::StopWatch clock;
  std::size_t budget = resolve_budget(pol.initial_points, alg);
  const std::size_t cap = std::max(budget, pol.max_points);
  Value value{};
  std::optional<Value> prev;
  for (std::size_t round = 1;; ++round) {
    notify(round);
    // Pinned for the whole round: the bounded engine cache may evict
    // concurrently, and the probe must outlive any eviction.
    const std::shared_ptr<const analysis::BatchEngine> pinned =
        engine_at(budget);
    const analysis::BatchEngine& eng = *pinned;
    value = probe(eng);
    if (record_probe(eng, round, budget, prov)) {
      prov.gap = 0.0;
      break;
    }
    if (!pol.is_adaptive) {
      prov.gap = std::nullopt;  // condensed one-shot: gap unknown
      break;
    }
    if (prev) {
      const double m = move(*prev, value);
      if (m <= pol.tol) {
        prov.gap = m;  // converged: the last move is the measured gap
        break;
      }
    }
    if (budget >= cap) {
      prov.gap = std::nullopt;  // exhausted while still moving: gap unknown
      break;
    }
    if (pol.deadline.active() && clock.elapsed_ms() >= pol.deadline.wall_ms) {
      prov.degraded = true;  // out of wall time: settle for this rung
      prov.gap = std::nullopt;
      break;
    }
    prev = std::move(value);
    budget = rt::next_budget_rung(budget, cap);
  }
  return value;
}

double array_move(const std::array<double, 3>& a, const std::array<double, 3>& b) {
  double m = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) m = std::max(m, std::abs(a[k] - b[k]));
  return m;
}

// --- memo keys ------------------------------------------------------------
//
// The request half of the memo key. Time-dimensioned parameters hash
// through CanonicalSystem::time so a request against a rescaled twin
// system produces the same key; dimensionless knobs hash raw. Every
// request type leads with a distinct tag, so identical parameter lists of
// different kinds cannot alias. The deadline is absent by construction:
// deadline-active requests bypass the memo entirely (degraded answers are
// wall-clock-dependent and must never be replayed as definitive).

void hash_policy(rt::HashStream& h, const AccuracyPolicy& pol,
                 hier::Scheduler alg) {
  h.u64(static_cast<std::uint64_t>(alg))
      .boolean(pol.is_adaptive)
      .u64(resolve_budget(pol.initial_points, alg))
      .f64(pol.tol)
      .u64(pol.max_points);
}

void hash_search(rt::HashStream& h, const rt::CanonicalSystem& c,
                 const core::SearchOptions& s) {
  c.time(h, s.p_min);
  if (s.p_max > 0.0) {
    c.time(h, s.p_max);
  } else {
    h.f64(s.p_max);  // auto range: scale-free sentinel
  }
  c.time(h, s.grid_step);
  c.time(h, s.tolerance);
  h.boolean(s.use_exact_supply);
}

void hash_overheads(rt::HashStream& h, const rt::CanonicalSystem& c,
                    const core::Overheads& o) {
  c.time(h, o.ft);
  c.time(h, o.fs);
  c.time(h, o.nf);
}

void hash_schedule(rt::HashStream& h, const rt::CanonicalSystem& c,
                   const core::ModeSchedule& s) {
  c.time(h, s.period);
  for (const core::Slot* slot : {&s.ft, &s.fs, &s.nf}) {
    c.time(h, slot->usable);
    c.time(h, slot->overhead);
  }
}

void hash_request(rt::HashStream& h, const rt::CanonicalSystem& c,
                  const SolveRequest& r) {
  h.u64(1);
  hash_policy(h, r.accuracy, r.alg);
  hash_overheads(h, c, r.overheads);
  h.u64(static_cast<std::uint64_t>(r.goal));
  hash_search(h, c, r.search);
}

void hash_request(rt::HashStream& h, const rt::CanonicalSystem& c,
                  const MinQuantumRequest& r) {
  h.u64(2);
  hash_policy(h, r.accuracy, r.alg);
  c.time(h, r.period);
  h.boolean(r.use_exact_supply);
}

void hash_request(rt::HashStream& h, const rt::CanonicalSystem& c,
                  const RegionSweepRequest& r) {
  h.u64(3);
  hash_policy(h, r.accuracy, r.alg);
  hash_search(h, c, r.search);
}

void hash_request(rt::HashStream& h, const rt::CanonicalSystem& c,
                  const SensitivityRequest& r) {
  h.u64(4);
  hash_policy(h, r.accuracy, r.alg);
  hash_schedule(h, c, r.schedule);
  h.str(r.task).boolean(r.include_global).f64(r.lambda_max).f64(r.tolerance);
}

void hash_request(rt::HashStream& h, const rt::CanonicalSystem& c,
                  const VerifyRequest& r) {
  h.u64(5);
  hash_policy(h, r.accuracy, r.alg);
  hash_schedule(h, c, r.schedule);
  h.boolean(r.use_exact_supply);
}

void hash_request(rt::HashStream& h, const rt::CanonicalSystem& c,
                  const FaultSweepRequest& r) {
  h.u64(6);
  hash_policy(h, r.accuracy, r.alg);
  h.u64(r.rates.size());
  for (const double rate : r.rates) c.inverse_time(h, rate);
  c.time(h, r.min_separation);
  hash_overheads(h, c, r.overheads);
  h.u64(static_cast<std::uint64_t>(r.goal));
  hash_search(h, c, r.search);
  h.boolean(r.use_exact_supply).boolean(r.with_baselines);
}

// --- cross-scale rescaling ------------------------------------------------
//
// A memo hit whose producer ran at a different canonical time scale maps
// the stored answer back by multiplying every time-dimensioned field by
// k = consumer_scale / producer_scale (rates and exposures divide).
// Same-scale hits -- every identical repeat -- skip this entirely and
// return the stored payload verbatim, which is what makes warm output
// bit-identical to cold output.

void rescale_schedule(core::ModeSchedule& s, double k) {
  s.period *= k;
  for (core::Slot* slot : {&s.ft, &s.fs, &s.nf}) {
    slot->usable *= k;
    slot->overhead *= k;
  }
}

void rescale_gap(Provenance& prov, double k) {
  if (prov.gap) *prov.gap *= k;
}

void rescale_payload(SolveResult& r, double k) {
  if (r.feasible) {
    rescale_schedule(r.design.schedule, k);
    r.design.min_quantum_ft *= k;
    r.design.min_quantum_fs *= k;
    r.design.min_quantum_nf *= k;
  }
  rescale_gap(r.prov, k);  // ladder move: a period distance
}

void rescale_payload(MinQuantumResult& r, double k) {
  for (double& q : r.mode_quantum) q *= k;
  r.margin *= k;
  rescale_gap(r.prov, k);
}

void rescale_payload(RegionSweepResult& r, double k) {
  for (core::RegionSample& s : r.samples) {
    s.period *= k;
    s.margin *= k;
  }
  rescale_gap(r.prov, k);
}

void rescale_payload(SensitivityResult& r, double k) {
  for (core::TaskMargin& m : r.margins) m.wcet *= k;
  // scale_margin, global_margin and the ladder gap are dimensionless.
}

void rescale_payload(VerifyResult&, double) {}  // verdict only

void rescale_payload(FaultSweepResult& r, double k) {
  if (r.feasible) rescale_schedule(r.schedule, k);
  for (FaultRatePoint& p : r.points) {
    p.rate /= k;
    p.recovery_gap *= k;  // +inf at rate 0 stays +inf
    p.nf_exposure /= k;
  }
  rescale_gap(r.prov, k);  // design-phase ladder move: a period distance
}

}  // namespace

std::size_t AnalysisService::add_system(core::ModeTaskSystem sys,
                                        std::string name) {
  Entry e;
  e.name = name.empty() ? "system" + std::to_string(entries_.size())
                        : std::move(name);
  e.system = std::move(sys);
  e.canon = canonicalize(*e.system);
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

std::size_t AnalysisService::add_task_set(const rt::TaskSet& ts,
                                          std::string name,
                                          const part::PackOptions& pack) {
  std::optional<core::ModeTaskSystem> sys = gen::build_system(ts, pack);
  if (!sys) {
    throw InfeasibleError("task set does not pack onto the platform channels");
  }
  return add_system(std::move(*sys), std::move(name));
}

std::size_t AnalysisService::add_fleet(const core::StudyOptions& study,
                                       const SystemFactory& make,
                                       const std::string& prefix) {
  FLEXRT_REQUIRE(static_cast<bool>(make), "fleet factory must be callable");
  const auto [begin, end] = core::shard_range(study.trials, study.shard);
  const std::size_t first = entries_.size();
  for (std::size_t t = begin; t < end; ++t) {
    Rng rng = core::trial_rng(study.base_seed, t);
    Entry e;
    e.name = prefix + std::to_string(t);
    e.trial = t;
    e.system = make(t, rng);
    if (!e.system) {
      e.error = "packing failed";
    } else {
      e.canon = canonicalize(*e.system);
    }
    entries_.push_back(std::move(e));
  }
  return first;
}

const core::ModeTaskSystem& AnalysisService::system(std::size_t i) const {
  const Entry& e = entries_.at(i);
  FLEXRT_REQUIRE(e.system.has_value(),
                 "entry " + e.name + " has no system: " + e.error);
  return *e.system;
}

std::shared_ptr<const analysis::BatchEngine> AnalysisService::engine_ptr(
    std::size_t i, hier::Scheduler alg, std::size_t max_points) const {
  const core::ModeTaskSystem& sys = system(i);  // validates the entry
  const std::size_t budget = resolve_budget(max_points, alg);
  const EngineKey key{i, static_cast<int>(alg), budget};
  EngineShard& shard = engine_shard(key);
  {
    sys::MutexLock lock(shard.mu);
    const auto it = shard.engines.find(key);
    if (it != shard.engines.end()) return it->second;
  }
  // Construct outside the lock -- fleet requests hit this from every
  // worker at once, and serializing the task-set snapshots would bottleneck
  // the fan-out. A losing duplicate is simply discarded. The one budget
  // feeds whichever condensation the scheduler consults (dlSet under EDF,
  // per-task scheduling points under FP).
  rt::DlBoundOptions dl_opts;
  dl_opts.max_points = budget;
  rt::FpPointOptions fp_opts;
  fp_opts.max_points = budget;
  auto built =
      std::make_shared<const analysis::BatchEngine>(sys, alg, dl_opts,
                                                    fp_opts);
  sys::MutexLock lock(shard.mu);
  const auto [it, inserted] = shard.engines.emplace(key, std::move(built));
  if (inserted) {
    shard.order.push_back(key);
    // Oldest-first eviction keeps a long-lived session's engine memory
    // bounded; in-flight ladders hold their own shared_ptr pins.
    while (shard.order.size() > kEngineShardCapacity) {
      shard.engines.erase(shard.order.front());
      shard.order.pop_front();
      engine_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return it->second;
}

AnalysisService::EngineCacheStats AnalysisService::engine_cache_stats() const {
  EngineCacheStats out;
  out.evictions = engine_evictions_.load(std::memory_order_relaxed);
  for (EngineShard& shard : engine_shards_) {
    sys::MutexLock lock(shard.mu);
    out.entries += shard.engines.size();
  }
  return out;
}

template <typename Result, typename Body>
Result AnalysisService::run_entry(std::size_t i, Body&& body) const {
  Result out;
  const Entry& e = entries_.at(i);
  out.system = i;
  out.name = e.name;
  out.trial = e.trial;
  const par::StopWatch clock;
  if (!e.system) {
    out.error = e.error.empty() ? "entry has no system" : e.error;
  } else {
    // Catch-all, not just flexrt::Error: a fleet entry's analysis may throw
    // anything (bad_alloc, a stray library exception, an injected fault),
    // and an escaping exception would lose the entry -- or wedge a
    // streaming run's ordered gate, which waits on every ticket. Every
    // failure becomes an error row instead.
    try {
      body(out);
    } catch (const std::exception& err) {  // flexrt::Error included
      out.error = err.what();
    } catch (...) {
      out.error = "unknown exception";
    }
  }
  out.prov.wall_ms = clock.elapsed_ms();
  return out;
}

template <typename Result, typename Request, typename Body>
Result AnalysisService::memoized(std::size_t i, const Request& req,
                                 Body&& body) const {
  const Entry& e = entries_.at(i);
  MemoCache& memo = global_memo();
  // The memo stays out of the way whenever replaying could change
  // semantics: answer-less entries (error rows carry entry context),
  // injection hooks (hardening tests count ladder rounds), and
  // deadline-active requests (wall-clock-dependent, possibly degraded).
  const bool use_memo = e.system.has_value() && memo.enabled() &&
                        !probe_hook_ && !req.accuracy.deadline.active();
  rt::Hash128 key{};
  if (use_memo) {
    rt::HashStream h;
    h.u64(e.canon.hash.hi).u64(e.canon.hash.lo);
    hash_request(h, e.canon, req);
    key = h.digest();
    const par::StopWatch clock;
    if (std::optional<MemoValue> hit = memo.lookup(key)) {
      if (Result* payload = std::get_if<Result>(&hit->payload)) {
        Result out = std::move(*payload);
        out.system = i;
        out.name = e.name;
        out.trial = e.trial;
        // Same producer scale -- every identical repeat -- returns the
        // stored answer verbatim (bit-identical to recomputation); a
        // rescaled twin maps time-dimensioned fields by the scale ratio.
        if (e.canon.scale != hit->scale) {
          rescale_payload(out, e.canon.scale / hit->scale);
        }
        out.prov.cache_hit = true;
        out.prov.wall_ms = clock.elapsed_ms();
        return out;
      }
      // A different result type under this key would be a tag collision;
      // treat it as a miss and recompute (never replay a wrong shape).
    }
  }
  Result out = run_entry<Result>(i, std::forward<Body>(body));
  if (use_memo && out.ok() && !out.prov.degraded) {
    MemoValue v;
    Result stored = out;
    stored.system = 0;      // identity belongs to the asking entry
    stored.name.clear();
    stored.trial = kNoTrial;
    stored.prov.wall_ms = 0.0;  // transport, not answer
    v.scale = e.canon.scale;
    v.payload = std::move(stored);
    memo.insert(key, std::move(v));
  }
  return out;
}

SolveResult AnalysisService::solve_one(std::size_t i,
                                       const SolveRequest& req) const {
  return memoized<SolveResult>(i, req, [&](SolveResult& out) {
    const auto engine_at = [&](std::size_t budget) {
      return engine_ptr(i, req.alg, budget);
    };
    // The probed value is the designed schedule (nullopt: infeasible at
    // this budget); the ladder compares consecutive periods.
    using Value = std::optional<core::Design>;
    std::string why;
    const Value design = run_ladder<Value>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) -> Value {
          try {
            return core::solve_design(eng, req.overheads, req.goal,
                                      req.search);
          } catch (const InfeasibleError& err) {
            why = err.what();
            return std::nullopt;
          }
        },
        [](const Value& a, const Value& b) {
          if (!a || !b) return kInf;  // verdict flipped / still infeasible
          return std::abs(a->schedule.period - b->schedule.period);
        },
        probe_round(i), out.prov);
    out.feasible = design.has_value();
    if (design) {
      out.design = *design;
    } else {
      out.infeasible = why;
    }
  });
}

MinQuantumResult AnalysisService::min_quantum_one(
    std::size_t i, const MinQuantumRequest& req) const {
  return memoized<MinQuantumResult>(i, req, [&](MinQuantumResult& out) {
    const auto engine_at = [&](std::size_t budget) {
      return engine_ptr(i, req.alg, budget);
    };
    out.mode_quantum = run_ladder<std::array<double, 3>>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) {
          std::array<double, 3> q{};
          for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
            q[m] = eng.mode_min_quantum(core::kAllModes[m], req.period,
                                        req.use_exact_supply);
          }
          return q;
        },
        array_move, probe_round(i), out.prov);
    out.margin = req.period - out.mode_quantum[0] - out.mode_quantum[1] -
                 out.mode_quantum[2];
  });
}

RegionSweepResult AnalysisService::region_sweep_one(
    std::size_t i, const RegionSweepRequest& req) const {
  return memoized<RegionSweepResult>(i, req, [&](RegionSweepResult& out) {
    const auto engine_at = [&](std::size_t budget) {
      return engine_ptr(i, req.alg, budget);
    };
    out.samples = run_ladder<std::vector<core::RegionSample>>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) {
          return eng.sample_region(req.search);
        },
        [](const std::vector<core::RegionSample>& a,
           const std::vector<core::RegionSample>& b) {
          if (a.size() != b.size()) return kInf;
          double m = 0.0;
          for (std::size_t k = 0; k < a.size(); ++k) {
            m = std::max(m, std::abs(a[k].margin - b[k].margin));
          }
          return m;
        },
        probe_round(i), out.prov);
  });
}

SensitivityResult AnalysisService::sensitivity_one(
    std::size_t i, const SensitivityRequest& req) const {
  return memoized<SensitivityResult>(i, req, [&](SensitivityResult& out) {
    const auto engine_at = [&](std::size_t budget) {
      return engine_ptr(i, req.alg, budget);
    };
    using Value = std::pair<std::vector<core::TaskMargin>, double>;
    const Value value = run_ladder<Value>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) -> Value {
          if (!req.task.empty()) {
            core::TaskMargin row{req.task, rt::Mode::NF, 0.0,
                                 eng.wcet_scale_margin(req.schedule, req.task,
                                                       req.lambda_max,
                                                       req.tolerance)};
            // Fill mode/wcet from the fleet entry for a self-contained row.
            for (const rt::Mode mode : core::kAllModes) {
              for (const rt::TaskSet& ts : system(i).partitions(mode)) {
                for (const rt::Task& t : ts) {
                  if (t.name == req.task) {
                    row.mode = t.mode;
                    row.wcet = t.wcet;
                  }
                }
              }
            }
            return {{row}, 0.0};
          }
          return {eng.sensitivity_report(req.schedule, req.lambda_max),
                  req.include_global
                      ? eng.global_scale_margin(req.schedule, req.lambda_max,
                                                req.tolerance)
                      : 0.0};
        },
        [](const Value& a, const Value& b) {
          if (a.first.size() != b.first.size()) return kInf;
          double m = std::abs(a.second - b.second);
          for (std::size_t k = 0; k < a.first.size(); ++k) {
            m = std::max(m, std::abs(a.first[k].scale_margin -
                                     b.first[k].scale_margin));
          }
          return m;
        },
        probe_round(i), out.prov);
    out.margins = value.first;
    out.global_margin = value.second;
  });
}

VerifyResult AnalysisService::verify_one(std::size_t i,
                                         const VerifyRequest& req) const {
  return memoized<VerifyResult>(i, req, [&](VerifyResult& out) {
    // Hand-rolled ladder: a condensed "schedulable" is already safe and
    // definitive, so adaptive accuracy only escalates a condensed "no".
    // Deadline handling mirrors run_ladder: checked last, between rungs.
    const par::StopWatch clock;
    const auto notify = probe_round(i);
    std::size_t budget = resolve_budget(req.accuracy.initial_points, req.alg);
    const std::size_t cap = std::max(budget, req.accuracy.max_points);
    bool exact = false;
    for (std::size_t round = 1;; ++round) {
      notify(round);
      const std::shared_ptr<const analysis::BatchEngine> pinned =
          engine_ptr(i, req.alg, budget);
      const analysis::BatchEngine& eng = *pinned;
      out.schedulable = eng.verify(req.schedule, req.use_exact_supply);
      exact = record_probe(eng, round, budget, out.prov);
      if (out.schedulable || exact || !req.accuracy.is_adaptive ||
          budget >= cap) {
        break;
      }
      if (req.accuracy.deadline.active() &&
          clock.elapsed_ms() >= req.accuracy.deadline.wall_ms) {
        out.prov.degraded = true;  // conservative "no" of the finished rung
        break;
      }
      budget = rt::next_budget_rung(budget, cap);
    }
    out.prov.gap = (out.schedulable || exact) ? std::optional<double>(0.0)
                                              : std::nullopt;
  });
}

FaultSweepResult AnalysisService::fault_sweep_one(
    std::size_t i, const FaultSweepRequest& req) const {
  return memoized<FaultSweepResult>(i, req, [&](FaultSweepResult& out) {
    const auto engine_at = [&](std::size_t budget) {
      return engine_ptr(i, req.alg, budget);
    };
    // Phase 1: the nominal design, exactly solve_one's ladder (the request's
    // accuracy/deadline policy governs this phase; the per-rate checks below
    // run on fixed bounded contexts and need no ladder).
    using Value = std::optional<core::Design>;
    std::string why;
    const Value design = run_ladder<Value>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) -> Value {
          try {
            return core::solve_design(eng, req.overheads, req.goal,
                                      req.search);
          } catch (const InfeasibleError& err) {
            why = err.what();
            return std::nullopt;
          }
        },
        [](const Value& a, const Value& b) {
          if (!a || !b) return kInf;
          return std::abs(a->schedule.period - b->schedule.period);
        },
        probe_round(i), out.prov);
    out.feasible = design.has_value();
    if (!design) {
      out.infeasible = why;
      return;  // no schedule: nothing to sweep
    }
    out.schedule = design->schedule;

    // Phase 2: rate-independent work, once per entry.
    const core::ModeTaskSystem& sys = system(i);
    rt::TaskSet all_tasks;
    for (const rt::Mode mode : core::kAllModes) {
      for (const rt::Task& t : sys.mode_tasks(mode)) all_tasks.add(t);
    }
    const double u_nf = sys.mode_tasks(rt::Mode::NF).utilization();
    bool pb_ok = false, static_ft_ok = false, static_nf_ok = false;
    std::optional<std::vector<rt::TaskSet>> static_fs_bins;
    if (req.with_baselines) {
      // PB is fault-rate independent (active backups; see primary_backup.hpp)
      // and so are AllFT (faults masked) and AllNF (timing unaffected); only
      // AllFS pays a per-rate recovery demand, re-tested per point below.
      pb_ok = baseline::try_primary_backup(all_tasks, req.alg);
      static_ft_ok =
          baseline::try_static(all_tasks, baseline::StaticConfig::AllFT,
                               req.alg)
              .schedulable;
      static_nf_ok =
          baseline::try_static(all_tasks, baseline::StaticConfig::AllNF,
                               req.alg)
              .schedulable;
      static_fs_bins = baseline::static_partition(
          all_tasks, baseline::StaticConfig::AllFS);
    }

    // Phase 3: per-rate verdicts under the fault model's recovery demand.
    out.points.reserve(req.rates.size());
    for (const double rate : req.rates) {
      FaultRatePoint p;
      p.rate = rate;
      p.recovery_gap =
          fault::recovery_gap(fault::FaultModel{rate, req.min_separation});
      // FT: the 4-way lock-step channel masks every single transient fault,
      // so the designed guarantee holds at any swept rate. NF: a strike
      // corrupts output but never timing; the guarantee holds, integrity
      // degrades by the exposure metric.
      p.ft_ok = true;
      p.nf_ok = true;
      p.nf_exposure = fault::corruption_exposure(rate, u_nf);
      // FS: each channel must absorb one re-execution per recovery gap
      // within its designed slot supply.
      p.fs_ok = true;
      for (const rt::TaskSet& channel : sys.partitions(rt::Mode::FS)) {
        const bool ok =
            req.use_exact_supply
                ? fault::fs_schedulable(channel, req.alg,
                                        out.schedule.exact_supply(rt::Mode::FS),
                                        p.recovery_gap)
                : fault::fs_schedulable(channel, req.alg,
                                        out.schedule.supply(rt::Mode::FS),
                                        p.recovery_gap);
        if (!ok) {
          p.fs_ok = false;
          break;
        }
      }
      if (req.with_baselines) {
        p.pb_ok = pb_ok;
        p.static_ft_ok = static_ft_ok;
        p.static_nf_ok = static_nf_ok;
        if (static_fs_bins) {
          p.static_fs_ok = true;
          for (const rt::TaskSet& bin : *static_fs_bins) {
            if (!fault::fs_schedulable_dedicated(bin, req.alg,
                                                 p.recovery_gap)) {
              p.static_fs_ok = false;
              break;
            }
          }
        }
      }
      out.points.push_back(p);
    }
  });
}

std::vector<SolveResult> AnalysisService::solve(const SolveRequest& req) const {
  std::vector<SolveResult> out(size());
  par::parallel_for(size(), [&](std::size_t i) { out[i] = solve_one(i, req); });
  return out;
}

std::vector<MinQuantumResult> AnalysisService::min_quantum(
    const MinQuantumRequest& req) const {
  std::vector<MinQuantumResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = min_quantum_one(i, req); });
  return out;
}

std::vector<RegionSweepResult> AnalysisService::region_sweep(
    const RegionSweepRequest& req) const {
  std::vector<RegionSweepResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = region_sweep_one(i, req); });
  return out;
}

std::vector<SensitivityResult> AnalysisService::sensitivity(
    const SensitivityRequest& req) const {
  std::vector<SensitivityResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = sensitivity_one(i, req); });
  return out;
}

std::vector<VerifyResult> AnalysisService::verify(
    const VerifyRequest& req) const {
  std::vector<VerifyResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = verify_one(i, req); });
  return out;
}

std::vector<FaultSweepResult> AnalysisService::fault_sweep(
    const FaultSweepRequest& req) const {
  std::vector<FaultSweepResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = fault_sweep_one(i, req); });
  return out;
}

template <typename One, typename Sink>
StreamStats AnalysisService::stream_entries(const One& one, const Sink& sink,
                                            std::size_t window) const {
  StreamStats stats;
  stats.window = window ? window : par::default_stream_window();
  stats.max_buffered = par::ordered_stream(
      size(), stats.window, [&](std::size_t i) { return one(i); },
      [&](std::size_t, auto&& result) {
        sink(result);
        ++stats.emitted;
      });
  return stats;
}

StreamStats AnalysisService::solve(const SolveRequest& req,
                                   const SolveSink& sink,
                                   std::size_t window) const {
  return stream_entries([&](std::size_t i) { return solve_one(i, req); }, sink,
                        window);
}

StreamStats AnalysisService::min_quantum(const MinQuantumRequest& req,
                                         const MinQuantumSink& sink,
                                         std::size_t window) const {
  return stream_entries([&](std::size_t i) { return min_quantum_one(i, req); },
                        sink, window);
}

StreamStats AnalysisService::region_sweep(const RegionSweepRequest& req,
                                          const RegionSweepSink& sink,
                                          std::size_t window) const {
  return stream_entries([&](std::size_t i) { return region_sweep_one(i, req); },
                        sink, window);
}

StreamStats AnalysisService::sensitivity(const SensitivityRequest& req,
                                         const SensitivitySink& sink,
                                         std::size_t window) const {
  return stream_entries([&](std::size_t i) { return sensitivity_one(i, req); },
                        sink, window);
}

StreamStats AnalysisService::verify(const VerifyRequest& req,
                                    const VerifySink& sink,
                                    std::size_t window) const {
  return stream_entries([&](std::size_t i) { return verify_one(i, req); }, sink,
                        window);
}

StreamStats AnalysisService::fault_sweep(const FaultSweepRequest& req,
                                         const FaultSweepSink& sink,
                                         std::size_t window) const {
  return stream_entries([&](std::size_t i) { return fault_sweep_one(i, req); },
                        sink, window);
}

}  // namespace flexrt::svc
