#include "svc/analysis_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "gen/taskset_gen.hpp"

namespace flexrt::svc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::size_t resolve_budget(std::size_t points, hier::Scheduler alg) noexcept {
  if (points) return points;
  return alg == hier::Scheduler::FP ? rt::kDefaultFpPointBudget
                                    : rt::kDefaultDlPointBudget;
}

/// Fills the provenance of one probe round from the engine that ran it.
/// Asked *after* probing, so the exactness answers describe the
/// materialized caches (see BatchEngine::dl_exact).
bool record_probe(const analysis::BatchEngine& eng, std::size_t round,
                  std::size_t budget, Provenance& prov) {
  prov.probes = round;
  prov.budget = budget;
  prov.dl_exact = eng.dl_exact();
  prov.fp_exact = eng.fp_exact();
  prov.fp_budget =
      eng.scheduler() == hier::Scheduler::FP ? eng.fp_options().max_points : 0;
  return prov.dl_exact && prov.fp_exact;
}

/// Drives the accuracy ladder for one entry: probe at the initial budget,
/// then (adaptive only) re-probe at doubled budgets until the answer is
/// exact, stops moving (move <= tol), or the cap is reached. `move` returns
/// the distance between consecutive answers; +inf means "not comparable,
/// keep refining" (e.g. the feasibility verdict flipped).
///
/// Gap semantics: prov.gap is set only when the final answer is trustworthy
/// at the requested accuracy -- 0 when the probe turned exact, the last
/// inter-round move when the ladder converged (<= tol). A ladder that
/// exhausts the budget cap while the answer is still moving reports
/// nullopt: the last measured move bounds nothing about the distance to the
/// exact answer, so reporting it as "the gap" would overstate the capped
/// answer's accuracy.
template <typename Value, typename EngineAt, typename Probe, typename Move>
Value run_ladder(const EngineAt& engine_at, const AccuracyPolicy& pol,
                 hier::Scheduler alg, const Probe& probe, const Move& move,
                 Provenance& prov) {
  std::size_t budget = resolve_budget(pol.initial_points, alg);
  const std::size_t cap = std::max(budget, pol.max_points);
  Value value{};
  std::optional<Value> prev;
  for (std::size_t round = 1;; ++round) {
    const analysis::BatchEngine& eng = engine_at(budget);
    value = probe(eng);
    if (record_probe(eng, round, budget, prov)) {
      prov.gap = 0.0;
      break;
    }
    if (!pol.is_adaptive) {
      prov.gap = std::nullopt;  // condensed one-shot: gap unknown
      break;
    }
    if (prev) {
      const double m = move(*prev, value);
      if (m <= pol.tol) {
        prov.gap = m;  // converged: the last move is the measured gap
        break;
      }
    }
    if (budget >= cap) {
      prov.gap = std::nullopt;  // exhausted while still moving: gap unknown
      break;
    }
    prev = std::move(value);
    budget = rt::next_budget_rung(budget, cap);
  }
  return value;
}

double array_move(const std::array<double, 3>& a, const std::array<double, 3>& b) {
  double m = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) m = std::max(m, std::abs(a[k] - b[k]));
  return m;
}

}  // namespace

std::size_t AnalysisService::add_system(core::ModeTaskSystem sys,
                                        std::string name) {
  Entry e;
  e.name = name.empty() ? "system" + std::to_string(entries_.size())
                        : std::move(name);
  e.system = std::move(sys);
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

std::size_t AnalysisService::add_task_set(const rt::TaskSet& ts,
                                          std::string name,
                                          const part::PackOptions& pack) {
  std::optional<core::ModeTaskSystem> sys = gen::build_system(ts, pack);
  if (!sys) {
    throw InfeasibleError("task set does not pack onto the platform channels");
  }
  return add_system(std::move(*sys), std::move(name));
}

std::size_t AnalysisService::add_fleet(const core::StudyOptions& study,
                                       const SystemFactory& make,
                                       const std::string& prefix) {
  FLEXRT_REQUIRE(static_cast<bool>(make), "fleet factory must be callable");
  const auto [begin, end] = core::shard_range(study.trials, study.shard);
  const std::size_t first = entries_.size();
  for (std::size_t t = begin; t < end; ++t) {
    Rng rng = core::trial_rng(study.base_seed, t);
    Entry e;
    e.name = prefix + std::to_string(t);
    e.trial = t;
    e.system = make(t, rng);
    if (!e.system) e.error = "packing failed";
    entries_.push_back(std::move(e));
  }
  return first;
}

const core::ModeTaskSystem& AnalysisService::system(std::size_t i) const {
  const Entry& e = entries_.at(i);
  FLEXRT_REQUIRE(e.system.has_value(),
                 "entry " + e.name + " has no system: " + e.error);
  return *e.system;
}

const analysis::BatchEngine& AnalysisService::engine(
    std::size_t i, hier::Scheduler alg, std::size_t max_points) const {
  const core::ModeTaskSystem& sys = system(i);  // validates the entry
  const std::size_t budget = resolve_budget(max_points, alg);
  const EngineKey key{i, static_cast<int>(alg), budget};
  {
    std::scoped_lock lock(mu_);
    const auto it = engines_.find(key);
    if (it != engines_.end()) return *it->second;
  }
  // Construct outside the lock -- fleet requests hit this from every
  // worker at once, and serializing the task-set snapshots would bottleneck
  // the fan-out. A losing duplicate is simply discarded. The one budget
  // feeds whichever condensation the scheduler consults (dlSet under EDF,
  // per-task scheduling points under FP).
  rt::DlBoundOptions dl_opts;
  dl_opts.max_points = budget;
  rt::FpPointOptions fp_opts;
  fp_opts.max_points = budget;
  auto built = std::make_unique<analysis::BatchEngine>(sys, alg, dl_opts,
                                                       fp_opts);
  std::scoped_lock lock(mu_);
  const auto [it, inserted] = engines_.emplace(key, std::move(built));
  return *it->second;
}

template <typename Result, typename Body>
Result AnalysisService::run_entry(std::size_t i, Body&& body) const {
  Result out;
  const Entry& e = entries_.at(i);
  out.system = i;
  out.name = e.name;
  out.trial = e.trial;
  const auto t0 = std::chrono::steady_clock::now();
  if (!e.system) {
    out.error = e.error.empty() ? "entry has no system" : e.error;
  } else {
    try {
      body(out);
    } catch (const Error& err) {
      out.error = err.what();
    }
  }
  out.prov.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return out;
}

SolveResult AnalysisService::solve_one(std::size_t i,
                                       const SolveRequest& req) const {
  return run_entry<SolveResult>(i, [&](SolveResult& out) {
    const auto engine_at = [&](std::size_t budget) -> const analysis::BatchEngine& {
      return engine(i, req.alg, budget);
    };
    // The probed value is the designed schedule (nullopt: infeasible at
    // this budget); the ladder compares consecutive periods.
    using Value = std::optional<core::Design>;
    std::string why;
    const Value design = run_ladder<Value>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) -> Value {
          try {
            return core::solve_design(eng, req.overheads, req.goal,
                                      req.search);
          } catch (const InfeasibleError& err) {
            why = err.what();
            return std::nullopt;
          }
        },
        [](const Value& a, const Value& b) {
          if (!a || !b) return kInf;  // verdict flipped / still infeasible
          return std::abs(a->schedule.period - b->schedule.period);
        },
        out.prov);
    out.feasible = design.has_value();
    if (design) {
      out.design = *design;
    } else {
      out.infeasible = why;
    }
  });
}

MinQuantumResult AnalysisService::min_quantum_one(
    std::size_t i, const MinQuantumRequest& req) const {
  return run_entry<MinQuantumResult>(i, [&](MinQuantumResult& out) {
    const auto engine_at = [&](std::size_t budget) -> const analysis::BatchEngine& {
      return engine(i, req.alg, budget);
    };
    out.mode_quantum = run_ladder<std::array<double, 3>>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) {
          std::array<double, 3> q{};
          for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
            q[m] = eng.mode_min_quantum(core::kAllModes[m], req.period,
                                        req.use_exact_supply);
          }
          return q;
        },
        array_move, out.prov);
    out.margin = req.period - out.mode_quantum[0] - out.mode_quantum[1] -
                 out.mode_quantum[2];
  });
}

RegionSweepResult AnalysisService::region_sweep_one(
    std::size_t i, const RegionSweepRequest& req) const {
  return run_entry<RegionSweepResult>(i, [&](RegionSweepResult& out) {
    const auto engine_at = [&](std::size_t budget) -> const analysis::BatchEngine& {
      return engine(i, req.alg, budget);
    };
    out.samples = run_ladder<std::vector<core::RegionSample>>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) {
          return eng.sample_region(req.search);
        },
        [](const std::vector<core::RegionSample>& a,
           const std::vector<core::RegionSample>& b) {
          if (a.size() != b.size()) return kInf;
          double m = 0.0;
          for (std::size_t k = 0; k < a.size(); ++k) {
            m = std::max(m, std::abs(a[k].margin - b[k].margin));
          }
          return m;
        },
        out.prov);
  });
}

SensitivityResult AnalysisService::sensitivity_one(
    std::size_t i, const SensitivityRequest& req) const {
  return run_entry<SensitivityResult>(i, [&](SensitivityResult& out) {
    const auto engine_at = [&](std::size_t budget) -> const analysis::BatchEngine& {
      return engine(i, req.alg, budget);
    };
    using Value = std::pair<std::vector<core::TaskMargin>, double>;
    const Value value = run_ladder<Value>(
        engine_at, req.accuracy, req.alg,
        [&](const analysis::BatchEngine& eng) -> Value {
          if (!req.task.empty()) {
            core::TaskMargin row{req.task, rt::Mode::NF, 0.0,
                                 eng.wcet_scale_margin(req.schedule, req.task,
                                                       req.lambda_max,
                                                       req.tolerance)};
            // Fill mode/wcet from the fleet entry for a self-contained row.
            for (const rt::Mode mode : core::kAllModes) {
              for (const rt::TaskSet& ts : system(i).partitions(mode)) {
                for (const rt::Task& t : ts) {
                  if (t.name == req.task) {
                    row.mode = t.mode;
                    row.wcet = t.wcet;
                  }
                }
              }
            }
            return {{row}, 0.0};
          }
          return {eng.sensitivity_report(req.schedule, req.lambda_max),
                  req.include_global
                      ? eng.global_scale_margin(req.schedule, req.lambda_max,
                                                req.tolerance)
                      : 0.0};
        },
        [](const Value& a, const Value& b) {
          if (a.first.size() != b.first.size()) return kInf;
          double m = std::abs(a.second - b.second);
          for (std::size_t k = 0; k < a.first.size(); ++k) {
            m = std::max(m, std::abs(a.first[k].scale_margin -
                                     b.first[k].scale_margin));
          }
          return m;
        },
        out.prov);
    out.margins = value.first;
    out.global_margin = value.second;
  });
}

VerifyResult AnalysisService::verify_one(std::size_t i,
                                         const VerifyRequest& req) const {
  return run_entry<VerifyResult>(i, [&](VerifyResult& out) {
    // Hand-rolled ladder: a condensed "schedulable" is already safe and
    // definitive, so adaptive accuracy only escalates a condensed "no".
    std::size_t budget = resolve_budget(req.accuracy.initial_points, req.alg);
    const std::size_t cap = std::max(budget, req.accuracy.max_points);
    bool exact = false;
    for (std::size_t round = 1;; ++round) {
      const analysis::BatchEngine& eng = engine(i, req.alg, budget);
      out.schedulable = eng.verify(req.schedule, req.use_exact_supply);
      exact = record_probe(eng, round, budget, out.prov);
      if (out.schedulable || exact || !req.accuracy.is_adaptive ||
          budget >= cap) {
        break;
      }
      budget = rt::next_budget_rung(budget, cap);
    }
    out.prov.gap = (out.schedulable || exact) ? std::optional<double>(0.0)
                                              : std::nullopt;
  });
}

std::vector<SolveResult> AnalysisService::solve(const SolveRequest& req) const {
  std::vector<SolveResult> out(size());
  par::parallel_for(size(), [&](std::size_t i) { out[i] = solve_one(i, req); });
  return out;
}

std::vector<MinQuantumResult> AnalysisService::min_quantum(
    const MinQuantumRequest& req) const {
  std::vector<MinQuantumResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = min_quantum_one(i, req); });
  return out;
}

std::vector<RegionSweepResult> AnalysisService::region_sweep(
    const RegionSweepRequest& req) const {
  std::vector<RegionSweepResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = region_sweep_one(i, req); });
  return out;
}

std::vector<SensitivityResult> AnalysisService::sensitivity(
    const SensitivityRequest& req) const {
  std::vector<SensitivityResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = sensitivity_one(i, req); });
  return out;
}

std::vector<VerifyResult> AnalysisService::verify(
    const VerifyRequest& req) const {
  std::vector<VerifyResult> out(size());
  par::parallel_for(size(),
                    [&](std::size_t i) { out[i] = verify_one(i, req); });
  return out;
}

template <typename One, typename Sink>
StreamStats AnalysisService::stream_entries(const One& one, const Sink& sink,
                                            std::size_t window) const {
  StreamStats stats;
  stats.window = window ? window : par::default_stream_window();
  stats.max_buffered = par::ordered_stream(
      size(), stats.window, [&](std::size_t i) { return one(i); },
      [&](std::size_t, auto&& result) {
        sink(result);
        ++stats.emitted;
      });
  return stats;
}

StreamStats AnalysisService::solve(const SolveRequest& req,
                                   const SolveSink& sink,
                                   std::size_t window) const {
  return stream_entries([&](std::size_t i) { return solve_one(i, req); }, sink,
                        window);
}

StreamStats AnalysisService::min_quantum(const MinQuantumRequest& req,
                                         const MinQuantumSink& sink,
                                         std::size_t window) const {
  return stream_entries([&](std::size_t i) { return min_quantum_one(i, req); },
                        sink, window);
}

StreamStats AnalysisService::region_sweep(const RegionSweepRequest& req,
                                          const RegionSweepSink& sink,
                                          std::size_t window) const {
  return stream_entries([&](std::size_t i) { return region_sweep_one(i, req); },
                        sink, window);
}

StreamStats AnalysisService::sensitivity(const SensitivityRequest& req,
                                         const SensitivitySink& sink,
                                         std::size_t window) const {
  return stream_entries([&](std::size_t i) { return sensitivity_one(i, req); },
                        sink, window);
}

StreamStats AnalysisService::verify(const VerifyRequest& req,
                                    const VerifySink& sink,
                                    std::size_t window) const {
  return stream_entries([&](std::size_t i) { return verify_one(i, req); }, sink,
                        window);
}

}  // namespace flexrt::svc
