#include "svc/memo_cache.hpp"

#include <utility>

namespace flexrt::svc {
namespace {

std::size_t string_bytes(const std::string& s) {
  return s.empty() ? 0 : s.size() + 1;
}

std::size_t base_bytes(const ResultBase& r) {
  return string_bytes(r.name) + string_bytes(r.error);
}

std::size_t extra_bytes(const SolveResult& r) {
  return base_bytes(r) + string_bytes(r.infeasible);
}
std::size_t extra_bytes(const MinQuantumResult& r) { return base_bytes(r); }
std::size_t extra_bytes(const RegionSweepResult& r) {
  return base_bytes(r) + r.samples.size() * sizeof(core::RegionSample);
}
std::size_t extra_bytes(const SensitivityResult& r) {
  std::size_t n = base_bytes(r) + r.margins.size() * sizeof(core::TaskMargin);
  for (const core::TaskMargin& m : r.margins) n += string_bytes(m.name);
  return n;
}
std::size_t extra_bytes(const VerifyResult& r) { return base_bytes(r); }
std::size_t extra_bytes(const FaultSweepResult& r) {
  return base_bytes(r) + string_bytes(r.infeasible) +
         r.points.size() * sizeof(FaultRatePoint);
}

/// Bookkeeping overhead per resident entry (list node, hash bucket).
constexpr std::size_t kNodeOverhead = 128;

}  // namespace

std::size_t memo_payload_bytes(const MemoPayload& payload) {
  return std::visit(
      [](const auto& r) { return sizeof(r) + extra_bytes(r); }, payload);
}

std::optional<MemoValue> MemoCache::lookup(const rt::Hash128& key) {
  Shard& s = shard_for(key);
  sys::MutexLock lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    ++s.misses;
    return std::nullopt;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh LRU position
  return it->second->value;
}

void MemoCache::insert(const rt::Hash128& key, MemoValue value) {
  const std::size_t bytes =
      memo_payload_bytes(value.payload) + kNodeOverhead;
  const std::size_t cap = shard_capacity();
  if (bytes > cap) return;  // oversized: caching would churn the shard
  Shard& s = shard_for(key);
  sys::MutexLock lock(s.mu);
  if (s.map.contains(key)) return;  // first writer wins
  s.lru.push_front(Node{key, std::move(value), bytes});
  s.map.emplace(key, s.lru.begin());
  s.bytes += bytes;
  ++s.insertions;
  while (s.bytes > cap && s.lru.size() > 1) {
    const Node& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.map.erase(victim.key);
    s.lru.pop_back();
    ++s.evictions;
  }
}

MemoStats MemoCache::stats() const {
  MemoStats out;
  out.capacity_bytes = capacity_.load(std::memory_order_relaxed);
  out.enabled = enabled();
  for (Shard& s : shards_) {
    sys::MutexLock lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.insertions += s.insertions;
    out.evictions += s.evictions;
    out.entries += s.map.size();
    out.bytes += s.bytes;
  }
  return out;
}

void MemoCache::clear() {
  for (Shard& s : shards_) {
    sys::MutexLock lock(s.mu);
    s.lru.clear();
    s.map.clear();
    s.bytes = 0;
    s.hits = s.misses = s.insertions = s.evictions = 0;
  }
}

MemoCache& global_memo() {
  static MemoCache cache;
  return cache;
}

}  // namespace flexrt::svc
