#pragma once

#include <cstddef>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "core/design.hpp"
#include "hier/sched_test.hpp"
#include "svc/analysis_service.hpp"
#include "svc/jsonl.hpp"

namespace flexrt::svc {

/// The study JSON-lines report pieces shared by the `flexrt_design study`
/// and `merge` subcommands and by the streaming byte-identity tests. The
/// contract everything here serves: a study's rows are wall-time-free and
/// byte-stable, so the streamed report == the buffered report == the merge
/// of its sharded reports, byte for byte.

/// Appends the provenance block every analysis row carries -- the one
/// rendering site, so study rows and the tool's solve/sweep/verify rows
/// cannot drift. `with_wall` is off for study rows (shard/transport
/// independence requires wall-time-free rows).
void provenance_fields(JsonRow& row, const Provenance& p, bool with_wall);

/// One study_trial row for a solved trial. Deliberately excludes wall_ms:
/// study rows must be byte-identical across shard layouts and transports.
std::string study_trial_row(const SolveResult& r, hier::Scheduler alg,
                            core::DesignGoal goal);

/// Incremental accumulator for the study_summary row. Feeding it each
/// study_trial row as it is emitted gives a streaming run the exact
/// summary a buffered run computes from the full row vector: both sides
/// read the same parsed fields (svc/jsonl scanners), so the bytes agree.
class StudyAggregate {
 public:
  /// Folds one study_trial row into the aggregate.
  void add(std::string_view row);

  /// The study_summary row over everything added so far.
  std::string summary_row() const;

  std::size_t trials() const noexcept { return trials_; }

 private:
  std::size_t trials_ = 0;
  std::size_t packed_ = 0;
  std::size_t feasible_ = 0;
  double sum_period_ = 0.0;
  double sum_slack_bw_ = 0.0;
};

/// Reads one shard report: appends its study_trial rows to `rows`,
/// dropping summaries and foreign complete rows. A line that is not a
/// complete row (json_row_complete) -- the truncated tail a killed
/// streaming run leaves behind -- throws ModelError naming `name`, so a
/// partial shard file fails the merge loudly instead of silently dropping
/// trials. CRLF line endings are tolerated; blank lines are skipped.
void collect_study_rows(std::istream& in, const std::string& name,
                        std::vector<std::string>& rows);

/// Sorts study_trial rows by trial id (stable) and throws ModelError when
/// two rows carry the same trial -- the same shard merged twice.
void sort_study_rows(std::vector<std::string>& rows);

}  // namespace flexrt::svc
