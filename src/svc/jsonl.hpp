#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>

namespace flexrt::svc {

/// Append-only writer for one flat JSON object -- the row format of the
/// JSON-lines study/solve reports (see tools/README.md for the schema).
///
/// Doubles are rendered with shortest round-trip formatting (to_chars), so
/// re-emitting a parsed value reproduces the byte sequence exactly; the
/// shard-merge invariant (merged shard reports == unsharded report) depends
/// on this. No nesting beyond one level of number arrays: rows stay
/// greppable and the field scanner below stays trivial.
class JsonRow {
 public:
  JsonRow& field(std::string_view key, double v);
  JsonRow& field(std::string_view key, std::int64_t v);
  JsonRow& field(std::string_view key, std::size_t v);
  JsonRow& field(std::string_view key, bool v);
  JsonRow& field(std::string_view key, std::string_view v);  ///< escaped
  /// String-literal values would otherwise decay to the bool overload.
  JsonRow& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  JsonRow& field(std::string_view key, std::span<const double> v);
  JsonRow& null_field(std::string_view key);

  /// The finished row, braces included (no trailing newline).
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

/// JSON string escaping (quotes excluded) for the writer above.
std::string json_escape(std::string_view raw);

/// Incremental JSON-lines writer: one row out per call, newline-terminated,
/// straight to the ostream. This is the streaming counterpart of buffering
/// rows in a vector -- a fleet request's sink can hand rows here as entries
/// finish and peak memory stays one row, not one fleet. With
/// `flush_per_row` (what --stream runs use) the stream is flushed after
/// every row, so a killed run leaves at most one truncated final line
/// (which json_row_complete below detects deterministically); buffered
/// runs leave it off and keep normal ostream buffering.
///
/// Every write checks the stream afterwards and throws ModelError on
/// failure (disk full, closed pipe, I/O error), naming the row count and
/// the stream (`name`, when given). A report that cannot be written is an
/// error the tool must exit non-zero on, not something to discover -- or
/// not -- at flush time.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& out, bool flush_per_row = false,
                       std::string name = {})
      : out_(out), flush_per_row_(flush_per_row), name_(std::move(name)) {}

  /// Writes one finished row (no trailing newline expected) + '\n'.
  /// Throws ModelError when the stream goes bad.
  JsonlWriter& write(std::string_view row);
  JsonlWriter& write(const JsonRow& row) { return write(row.str()); }

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  bool flush_per_row_;
  std::string name_;
  std::size_t rows_ = 0;
};

/// True when `line` is a complete JsonRow-shaped row: non-empty, starts
/// with '{' and ends with '}'. Rows are flat (no nested objects), so a
/// line truncated mid-row -- the tail a killed streaming run leaves --
/// fails this check unless the cut landed right after a '}' embedded in a
/// string value (study rows carry no such strings, so for them the check
/// is exact; `merge`'s trial-id contiguity check backstops the rest).
bool json_row_complete(std::string_view line) noexcept;

/// Field scanners for rows *written by JsonRow*: flat objects whose keys
/// are unique and unambiguous. Not a JSON parser -- they locate the quoted
/// key at the top level and read the value token after the colon. Returns
/// nullopt when the key is absent or the value has a different type.
///
/// json_string_field fully decodes what json_escape (and any standard JSON
/// writer) emits: the two-character escapes plus \uXXXX, including
/// surrogate pairs, re-encoded as UTF-8. Malformed \u escapes (bad hex,
/// lone surrogates) make the whole field nullopt rather than silently
/// corrupting the round-trip.
std::optional<double> json_number_field(std::string_view row,
                                        std::string_view key);
std::optional<bool> json_bool_field(std::string_view row,
                                    std::string_view key);
std::optional<std::string> json_string_field(std::string_view row,
                                             std::string_view key);

}  // namespace flexrt::svc
