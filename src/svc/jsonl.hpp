#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace flexrt::svc {

/// Append-only writer for one flat JSON object -- the row format of the
/// JSON-lines study/solve reports (see tools/README.md for the schema).
///
/// Doubles are rendered with shortest round-trip formatting (to_chars), so
/// re-emitting a parsed value reproduces the byte sequence exactly; the
/// shard-merge invariant (merged shard reports == unsharded report) depends
/// on this. No nesting beyond one level of number arrays: rows stay
/// greppable and the field scanner below stays trivial.
class JsonRow {
 public:
  JsonRow& field(std::string_view key, double v);
  JsonRow& field(std::string_view key, std::int64_t v);
  JsonRow& field(std::string_view key, std::size_t v);
  JsonRow& field(std::string_view key, bool v);
  JsonRow& field(std::string_view key, std::string_view v);  ///< escaped
  /// String-literal values would otherwise decay to the bool overload.
  JsonRow& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  JsonRow& field(std::string_view key, std::span<const double> v);
  JsonRow& null_field(std::string_view key);

  /// The finished row, braces included (no trailing newline).
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

/// JSON string escaping (quotes excluded) for the writer above.
std::string json_escape(std::string_view raw);

/// Field scanners for rows *written by JsonRow*: flat objects whose keys
/// are unique and unambiguous. Not a JSON parser -- they locate the quoted
/// key at the top level and read the value token after the colon. Returns
/// nullopt when the key is absent or the value has a different type.
std::optional<double> json_number_field(std::string_view row,
                                        std::string_view key);
std::optional<bool> json_bool_field(std::string_view row,
                                    std::string_view key);
std::optional<std::string> json_string_field(std::string_view row,
                                             std::string_view key);

}  // namespace flexrt::svc
