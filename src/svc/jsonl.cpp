#include "svc/jsonl.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace flexrt::svc {
namespace {

std::string format_double(double v) {
  // JSON has no inf/nan; the analysis layer uses +inf for "no feasible
  // quantum", so map non-finite values to null at the row level.
  std::array<char, 32> buf;
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  std::string out(buf.data(), end);
  // Bare integers like "2" are valid JSON numbers; keep them as emitted so
  // the round-trip stays byte-stable.
  return out;
}

}  // namespace

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonRow::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonRow& JsonRow::field(std::string_view k, double v) {
  if (!std::isfinite(v)) return null_field(k);
  key(k);
  body_ += format_double(v);
  return *this;
}

JsonRow& JsonRow::field(std::string_view k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonRow& JsonRow::field(std::string_view k, std::size_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonRow& JsonRow::field(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

JsonRow& JsonRow::field(std::string_view k, std::string_view v) {
  key(k);
  body_ += '"';
  body_ += json_escape(v);
  body_ += '"';
  return *this;
}

JsonRow& JsonRow::field(std::string_view k, std::span<const double> v) {
  key(k);
  body_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) body_ += ',';
    body_ += std::isfinite(v[i]) ? format_double(v[i]) : std::string("null");
  }
  body_ += ']';
  return *this;
}

JsonRow& JsonRow::null_field(std::string_view k) {
  key(k);
  body_ += "null";
  return *this;
}

JsonlWriter& JsonlWriter::write(std::string_view row) {
  out_ << row << '\n';
  if (flush_per_row_) out_.flush();
  FLEXRT_REQUIRE(static_cast<bool>(out_),
                 "write failed after " + std::to_string(rows_) +
                     " rows (" + (name_.empty() ? "output stream" : name_) +
                     "): disk full or stream closed?");
  ++rows_;
  return *this;
}

bool json_row_complete(std::string_view line) noexcept {
  return line.size() >= 2 && line.front() == '{' && line.back() == '}';
}

namespace {

/// Position just past `"key":` at the top level of the row, or npos.
std::size_t value_pos(std::string_view row, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  // Keys written by JsonRow always follow '{' or ','; checking the
  // preceding character keeps a key name occurring inside a string value
  // from matching.
  std::size_t at = row.find(needle);
  while (at != std::string_view::npos) {
    if (at > 0 && (row[at - 1] == '{' || row[at - 1] == ',')) {
      return at + needle.size();
    }
    at = row.find(needle, at + 1);
  }
  return std::string_view::npos;
}

}  // namespace

std::optional<double> json_number_field(std::string_view row,
                                        std::string_view key) {
  const std::size_t at = value_pos(row, key);
  if (at == std::string_view::npos || at >= row.size()) return std::nullopt;
  double out = 0.0;
  const auto [end, ec] =
      std::from_chars(row.data() + at, row.data() + row.size(), out);
  if (ec != std::errc{} || end == row.data() + at) return std::nullopt;
  return out;
}

std::optional<bool> json_bool_field(std::string_view row,
                                    std::string_view key) {
  const std::size_t at = value_pos(row, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::string_view rest = row.substr(at);
  if (rest.starts_with("true")) return true;
  if (rest.starts_with("false")) return false;
  return std::nullopt;
}

namespace {

/// Four hex digits at row[at, at+4), or nullopt when short or non-hex.
std::optional<std::uint32_t> hex4(std::string_view row, std::size_t at) {
  if (at + 4 > row.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const char c = row[at + k];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

constexpr bool is_high_surrogate(std::uint32_t cp) {
  return cp >= 0xD800 && cp <= 0xDBFF;
}
constexpr bool is_low_surrogate(std::uint32_t cp) {
  return cp >= 0xDC00 && cp <= 0xDFFF;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

std::optional<std::string> json_string_field(std::string_view row,
                                             std::string_view key) {
  std::size_t at = value_pos(row, key);
  if (at == std::string_view::npos || at >= row.size() || row[at] != '"') {
    return std::nullopt;
  }
  ++at;
  std::string out;
  while (at < row.size() && row[at] != '"') {
    if (row[at] == '\\' && at + 1 < row.size()) {
      ++at;
      switch (row[at]) {
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          // \uXXXX: BMP code point, or the high half of a surrogate pair.
          // json_escape emits these for control characters, so decoding is
          // load-bearing for the round-trip, not a nicety.
          std::optional<std::uint32_t> cp = hex4(row, at + 1);
          if (!cp || is_low_surrogate(*cp)) return std::nullopt;
          if (is_high_surrogate(*cp)) {
            if (at + 6 >= row.size() || row[at + 5] != '\\' ||
                row[at + 6] != 'u') {
              return std::nullopt;  // lone high surrogate
            }
            const std::optional<std::uint32_t> lo = hex4(row, at + 7);
            if (!lo || !is_low_surrogate(*lo)) return std::nullopt;
            *cp = 0x10000 + ((*cp - 0xD800) << 10) + (*lo - 0xDC00);
            at += 6;  // past "XXXX\u"; the trailing hex advances below
          }
          append_utf8(out, *cp);
          at += 4;  // past the (last) four hex digits
          break;
        }
        default:
          out += row[at];  // \" \\ \/ verbatim
      }
    } else {
      out += row[at];
    }
    ++at;
  }
  if (at >= row.size()) return std::nullopt;  // unterminated
  return out;
}

}  // namespace flexrt::svc
