#pragma once

#include <cstddef>

#include "core/design.hpp"
#include "hier/sched_test.hpp"
#include "svc/analysis_service.hpp"
#include "svc/jsonl.hpp"

namespace flexrt::svc {

/// The JSONL row renderers for every typed request's report rows. These
/// used to live inside the flexrt_design tool; they are library code now so
/// the tool's offline subcommands and the flexrtd wire protocol
/// (net::proto) render through one code path -- the remote-vs-offline
/// byte-identity CI check pins that both front-ends really do share it.
///
/// `with_wall` selects whether the provenance block carries wall_ms. Wire
/// rows and journaled rows are always wall-free (deterministic bytes);
/// stdout rows keep wall_ms unless the user passes --no-wall.

/// "solve" row: design answer + provenance.
JsonRow solve_row(const SolveResult& r, hier::Scheduler alg,
                  core::DesignGoal goal, bool with_wall);

/// "sweep_sample" row: one (period, margin) grid point.
JsonRow sweep_sample_row(const RegionSweepResult& r, hier::Scheduler alg,
                         const core::RegionSample& s);

/// "sweep" row: the per-entry terminal summary (sample count or error).
JsonRow sweep_summary_row(const RegionSweepResult& r, hier::Scheduler alg,
                          bool with_wall);

/// "verify" row: schedulability verdict of an explicit schedule.
JsonRow verify_row(const VerifyResult& r, hier::Scheduler alg, double period,
                   bool with_wall);

/// "min_quantum" row: per-mode minimum quanta + Eq. 15 margin at `period`.
JsonRow min_quantum_row(const MinQuantumResult& r, hier::Scheduler alg,
                        double period, bool with_wall);

/// "fault_point" row: one swept rate's per-class verdicts (+ baselines).
JsonRow fault_point_row(const FaultSweepResult& r, const FaultRatePoint& p,
                        hier::Scheduler alg, bool with_baselines);

/// "fault_sweep" row: the per-entry terminal summary. Always wall-free:
/// fault-sweep reports are fleet reports and byte-identity across buffered,
/// streamed and journaled runs requires deterministic rows.
JsonRow fault_sweep_summary_row(const FaultSweepResult& r,
                                hier::Scheduler alg);

}  // namespace flexrt::svc
