#include "svc/rows.hpp"

#include <cmath>

#include "svc/study_report.hpp"

namespace flexrt::svc {

JsonRow solve_row(const SolveResult& r, hier::Scheduler alg,
                  core::DesignGoal goal, bool with_wall) {
  JsonRow row;
  row.field("kind", "solve")
      .field("name", r.name)
      .field("alg", hier::to_string(alg))
      .field("goal", core::to_string(goal))
      .field("feasible", r.feasible);
  if (r.feasible) {
    row.field("period", r.design.schedule.period)
        .field("q_ft", r.design.schedule.ft.usable)
        .field("q_fs", r.design.schedule.fs.usable)
        .field("q_nf", r.design.schedule.nf.usable)
        .field("slack", r.design.schedule.slack())
        .field("slack_bw", r.design.schedule.slack_bandwidth())
        .field("overhead_bw", r.design.schedule.overhead_bandwidth());
  } else {
    row.field("infeasible", r.infeasible);
  }
  provenance_fields(row, r.prov, with_wall);
  return row;
}

JsonRow sweep_sample_row(const RegionSweepResult& r, hier::Scheduler alg,
                         const core::RegionSample& s) {
  JsonRow row;
  row.field("kind", "sweep_sample")
      .field("name", r.name)
      .field("alg", hier::to_string(alg))
      .field("period", s.period)
      .field("margin", s.margin);
  return row;
}

JsonRow sweep_summary_row(const RegionSweepResult& r, hier::Scheduler alg,
                          bool with_wall) {
  JsonRow row;
  row.field("kind", "sweep")
      .field("name", r.name)
      .field("alg", hier::to_string(alg));
  if (r.ok()) {
    row.field("samples", r.samples.size());
  } else {
    row.field("error", r.error);
  }
  provenance_fields(row, r.prov, with_wall);
  return row;
}

JsonRow verify_row(const VerifyResult& r, hier::Scheduler alg, double period,
                   bool with_wall) {
  JsonRow row;
  row.field("kind", "verify")
      .field("name", r.name)
      .field("alg", hier::to_string(alg))
      .field("period", period)
      .field("schedulable", r.schedulable);
  provenance_fields(row, r.prov, with_wall);
  return row;
}

JsonRow min_quantum_row(const MinQuantumResult& r, hier::Scheduler alg,
                        double period, bool with_wall) {
  JsonRow row;
  row.field("kind", "min_quantum")
      .field("name", r.name)
      .field("alg", hier::to_string(alg))
      .field("period", period)
      .field("q_ft", r.mode_quantum[0])
      .field("q_fs", r.mode_quantum[1])
      .field("q_nf", r.mode_quantum[2])
      .field("margin", r.margin);
  provenance_fields(row, r.prov, with_wall);
  return row;
}

JsonRow fault_point_row(const FaultSweepResult& r, const FaultRatePoint& p,
                        hier::Scheduler alg, bool with_baselines) {
  JsonRow row;
  row.field("kind", "fault_point").field("name", r.name);
  if (r.trial != kNoTrial) row.field("trial", r.trial);
  row.field("alg", hier::to_string(alg)).field("rate", p.rate);
  if (std::isinf(p.recovery_gap)) {
    row.null_field("recovery_gap");  // rate 0: no fault ever arrives
  } else {
    row.field("recovery_gap", p.recovery_gap);
  }
  row.field("ft_ok", p.ft_ok)
      .field("fs_ok", p.fs_ok)
      .field("nf_ok", p.nf_ok)
      .field("nf_exposure", p.nf_exposure);
  if (with_baselines) {
    row.field("pb_ok", p.pb_ok)
        .field("static_ft_ok", p.static_ft_ok)
        .field("static_fs_ok", p.static_fs_ok)
        .field("static_nf_ok", p.static_nf_ok);
  }
  return row;
}

JsonRow fault_sweep_summary_row(const FaultSweepResult& r,
                                hier::Scheduler alg) {
  JsonRow row;
  row.field("kind", "fault_sweep").field("name", r.name);
  if (r.trial != kNoTrial) row.field("trial", r.trial);
  row.field("alg", hier::to_string(alg));
  if (!r.ok()) {
    row.field("error", r.error);
  } else {
    row.field("feasible", r.feasible);
    if (r.feasible) {
      row.field("period", r.schedule.period).field("points", r.points.size());
    } else {
      row.field("infeasible", r.infeasible);
    }
  }
  provenance_fields(row, r.prov, /*with_wall=*/false);
  return row;
}

}  // namespace flexrt::svc
