#include "svc/journal.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <vector>

#include "common/rng.hpp"
#include "svc/jsonl.hpp"

namespace flexrt::svc {

double RetryPolicy::delay_ms(std::size_t entry,
                             std::size_t attempt) const noexcept {
  if (attempt == 0) return 0.0;
  double nominal =
      base_ms * std::pow(factor, static_cast<double>(attempt - 1));
  nominal = std::min(nominal, cap_ms);
  if (jitter > 0.0) {
    // A private draw per (seed, entry, attempt): the schedule is a pure
    // function of its inputs, so re-running or resuming a journaled fleet
    // backs off on exactly the same timetable.
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (entry + 1)) ^
            (0xBF58476D1CE4E5B9ULL * attempt));
    nominal *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  }
  return std::max(nominal, 0.0);
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  FLEXRT_REQUIRE(!path_.empty(), "journal path must be non-empty");
}

Journal::Recovery Journal::recover(const RowPredicate& terminal,
                                   const RowCallback& replay) {
  FLEXRT_REQUIRE(static_cast<bool>(terminal),
                 "journal recovery needs a terminal-row predicate");
  sys::MutexLock lock(mu_);
  Recovery rec;

  // A committed output means the previous run finished: replay its rows so
  // the caller can rebuild aggregates/exit codes, and write nothing.
  if (fs::file_size(path_)) {
    std::ifstream in(path_);
    FLEXRT_REQUIRE(static_cast<bool>(in), "cannot open " + path_);
    std::string line;
    while (std::getline(in, line)) {
      FLEXRT_REQUIRE(json_row_complete(line),
                     "committed output " + path_ +
                         " holds a torn row -- not a journal this runner "
                         "wrote; refusing to resume over it");
      if (replay) replay(line);
      if (terminal(line)) ++rec.completed;
    }
    committed_ = true;
    rec.committed = true;
    return rec;
  }

  const std::string partial = partial_path();
  if (!fs::file_size(partial)) {
    // Nothing to recover: resume of a run that died before its first
    // append (or was never started) is just a fresh run.
    file_.emplace(fs::DurableFile::create(partial));
    return rec;
  }

  // Scan the partial journal: keep the longest prefix of complete
  // newline-terminated rows that ends in an entry-terminal row. Rows after
  // the last terminal row -- the head rows of an unfinished multi-row
  // entry -- are buffered only until the next terminal row, so recovery
  // memory is one entry's rows, not the journal.
  std::ifstream in(partial);
  FLEXRT_REQUIRE(static_cast<bool>(in), "cannot open " + partial);
  std::uint64_t keep = 0;    // byte offset just past the last terminal row
  std::uint64_t offset = 0;  // byte offset past the current line
  std::vector<std::string> pending;
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof()) break;  // final line lost its '\n': torn, discard
    offset += line.size() + 1;
    if (!json_row_complete(line)) break;  // torn row: discard it and after
    if (terminal(line)) {
      ++rec.completed;
      keep = offset;
      if (replay) {
        for (const std::string& row : pending) replay(row);
        replay(line);
      }
      pending.clear();
    } else {
      pending.push_back(line);
    }
  }
  file_.emplace(fs::DurableFile::open_truncated(partial, keep));
  return rec;
}

void Journal::start_fresh() {
  sys::MutexLock lock(mu_);
  file_.emplace(fs::DurableFile::create(partial_path()));
}

void Journal::append(std::string_view block) {
  sys::MutexLock lock(mu_);
  FLEXRT_REQUIRE(file_.has_value(),
                 "journal " + path_ + " is not open for appending");
  file_->append(block);
}

void Journal::sync() {
  sys::MutexLock lock(mu_);
  FLEXRT_REQUIRE(file_.has_value(),
                 "journal " + path_ + " is not open for appending");
  file_->sync();
}

void Journal::commit() {
  sys::MutexLock lock(mu_);
  if (committed_) return;
  FLEXRT_REQUIRE(file_.has_value(),
                 "journal " + path_ + " is not open for appending");
  file_->sync();
  file_->close();
  fs::atomic_publish(partial_path(), path_);
  file_.reset();
  committed_ = true;
}

std::size_t count_terminal_rows(std::string_view text,
                                const Journal::RowPredicate& terminal) {
  std::size_t count = 0;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) break;  // unterminated tail: ignore
    const std::string_view line = text.substr(start, nl - start);
    if (json_row_complete(line) && terminal(line)) ++count;
    start = nl + 1;
  }
  return count;
}

}  // namespace flexrt::svc
