#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/rng.hpp"
#include "core/analysis_engine.hpp"
#include "core/design.hpp"
#include "core/mode_system.hpp"
#include "core/schedule.hpp"
#include "core/sensitivity.hpp"
#include "core/study_runner.hpp"
#include "fault/fault_model.hpp"
#include "hier/sched_test.hpp"
#include "part/bin_packing.hpp"
#include "rt/canonical.hpp"
#include "rt/deadline_bound.hpp"

namespace flexrt::svc {

/// The multi-system analysis service: the paper's methodology is
/// fleet-shaped (every figure asks the same design question across many
/// candidate systems), and this is the fleet-shaped front for it.
///
/// An AnalysisService holds a fleet of mode-task systems -- added directly,
/// parsed from files, or generated as a sharded trial study -- and executes
/// *typed requests* (SolveRequest, MinQuantumRequest, RegionSweepRequest,
/// SensitivityRequest, VerifyRequest) against every system on the shared
/// par::parallel_for pool. Results are typed structs that carry the answer
/// plus *provenance*: whether the deadline-set analysis was exact, the
/// dlSet point budget behind the answer, how many accuracy rounds ran, the
/// measured over-approximation gap, and wall time.
///
/// Every request takes an AccuracyPolicy. `fixed` probes once at one
/// budget (the default budget reproduces the BatchEngine/solve_design
/// answers bit for bit -- parity-tested). `adaptive(tol)` starts from a
/// small budget and re-probes with a doubled budget until the answer
/// moves by <= tol, the analysis becomes exact, or the budget cap is
/// reached: the per-probe accuracy knob for systems where exactness is
/// unaffordable. The one budget knob drives whichever condensation the
/// scheduler uses -- the EDF dlSet budget (rt::DlBoundOptions) or the
/// per-task FP scheduling-point budget (rt::FpPointOptions) -- so the
/// ladder is scheduler-agnostic.
///
/// The one-system free functions in core/integration.hpp,
/// core/sensitivity.hpp and core::solve_design(sys, ...) are thin wrappers
/// over a throwaway one-entry service. BatchEngine remains the per-system
/// probe engine underneath; the service adds the fleet, the accuracy
/// ladder, and an engine cache keyed by (system, scheduler, budget) so a
/// request menu (e.g. an overhead sweep) reuses each system's caches.

/// Per-entry wall-time budget of a request. When active, every entry's
/// accuracy ladder checks the elapsed wall time after each completed rung:
/// once the budget is spent, the ladder stops escalating and the answer of
/// the rung that just finished is returned as a *degraded* result
/// (Provenance::degraded = true, gap = null) instead of erroring or running
/// on. The deadline is checked between rungs, never mid-rung -- a rung in
/// flight always completes -- so a run overshoots its deadline by at most
/// one rung, and there is always a completed rung to degrade to (the first
/// rung runs unconditionally). Degraded answers are conservative exactly
/// like every condensed answer in the library: schedulable implies
/// schedulable, reported minQ >= exact minQ -- the monotone non-worsening
/// the ladder's rungs already guarantee.
///
/// Fixed policies run a single rung and are unaffected: a deadline cannot
/// shrink one probe, only stop an adaptive ladder from starting more.
struct Deadline {
  double wall_ms = 0.0;  ///< per-entry wall-clock budget; <= 0 = no deadline

  bool active() const noexcept { return wall_ms > 0.0; }
};

/// Per-request accuracy policy; default-constructed == fixed at the
/// library-default budget (the bit-for-bit parity configuration).
struct AccuracyPolicy {
  /// One probe at `points` (0 = the scheduler's library default:
  /// rt::kDefaultDlPointBudget for EDF, rt::kDefaultFpPointBudget for FP).
  static AccuracyPolicy fixed(std::size_t points = 0) noexcept {
    AccuracyPolicy p;
    p.initial_points = points;
    return p;
  }

  /// Re-probe with a doubled budget until the answer moves <= `tol`
  /// between consecutive rounds (or the analysis becomes exact, or
  /// `max_points` is hit). `initial_points` seeds the ladder low so cheap
  /// answers stay cheap.
  static AccuracyPolicy adaptive(double tol,
                                 std::size_t initial_points = 1u << 10,
                                 std::size_t max_points = 1u << 20) noexcept {
    AccuracyPolicy p;
    p.is_adaptive = true;
    p.tol = tol;
    p.initial_points = initial_points;
    p.max_points = max_points;
    return p;
  }

  bool is_adaptive = false;
  /// First (adaptive) / only (fixed) point budget; 0 = library default.
  std::size_t initial_points = 0;
  /// Adaptive stop: answer moved <= tol between consecutive rounds.
  double tol = 0.0;
  /// Adaptive hard cap on the budget ladder.
  std::size_t max_points = 1u << 20;
  /// Per-entry wall-time budget with graceful degradation (see Deadline).
  Deadline deadline{};

  /// Fluent deadline attachment: policy.with_deadline(50) caps each
  /// entry's ladder at 50 ms of wall time.
  AccuracyPolicy with_deadline(double wall_ms) const noexcept {
    AccuracyPolicy p = *this;
    p.deadline.wall_ms = wall_ms;
    return p;
  }
};

/// How an answer was obtained -- attached to every result.
struct Provenance {
  /// Final probe ran on exact (full-hyperperiod) deadline sets; trivially
  /// true for FP requests (the EDF side is never consulted). When false
  /// the answer is a safe over-approximation.
  bool dl_exact = true;
  /// FP twin of dl_exact: final probe ran on full Bini-Buttazzo point
  /// sets; trivially true for EDF requests.
  bool fp_exact = true;
  /// Point budget of the final probe (dlSet budget under EDF, per-task
  /// scheduling-point budget under FP).
  std::size_t budget = 0;
  /// The per-task FP point budget of the final probe; 0 for EDF requests
  /// (whose budget is the dlSet one above).
  std::size_t fp_budget = 0;
  /// Number of accuracy rounds executed (1 under fixed).
  std::size_t probes = 1;
  /// Measured over-approximation gap. Non-null only when the final answer
  /// is trustworthy at the requested accuracy: 0 when the probe turned
  /// exact, or the last inter-round move when the adaptive ladder converged
  /// (moved <= tol). nullopt means unknown: a fixed policy on a condensed
  /// set, or an adaptive ladder that exhausted its budget cap while the
  /// answer was still moving (the last measured move says nothing about
  /// how far the capped answer sits from the exact one).
  std::optional<double> gap;
  /// True when the request's Deadline stopped the adaptive ladder before it
  /// reached exactness, convergence or the budget cap: the answer is the
  /// best completed rung's conservative answer (bit-for-bit what a fixed
  /// policy at `budget` would return), and `gap` is null because nothing
  /// bounds its distance to the exact answer. Never set by fixed policies
  /// or by ladders that finished on their own.
  bool degraded = false;
  /// Executions this entry took under a journaled run's per-entry retry
  /// (svc::run_journaled): > 1 means transient failures were retried on
  /// the deterministic backoff schedule. Always 1 outside journaled runs.
  std::size_t attempts = 1;
  /// True when a journaled run exhausted its retry budget on this entry:
  /// the row is an explicit quarantine error row (error + attempts record
  /// what happened) rather than a transient failure, and the rest of the
  /// fleet ran on. Never set when retrying is disabled (max_attempts 1).
  bool quarantined = false;
  /// True when this answer came from the process-wide content-addressed
  /// memo (svc::MemoCache) instead of running the accuracy ladder: some
  /// canonically identical system was already solved with this request
  /// anywhere in the process. Rendered only when true, and only next to
  /// wall_ms: like wall_ms it describes this run's transport, not the
  /// answer, and every wall-free byte-identity contract (streamed ==
  /// buffered, journal resume, wire == offline, warm repeat == cold run)
  /// requires rows to read the same whether the answer was computed or
  /// replayed.
  bool cache_hit = false;
  /// Wall time of this entry's request, milliseconds.
  double wall_ms = 0.0;
};

inline constexpr std::size_t kNoTrial = static_cast<std::size_t>(-1);

/// Fields shared by every result row.
struct ResultBase {
  std::size_t system = 0;      ///< entry index within the service fleet
  std::string name;            ///< entry name (file, "trial<k>", ...)
  std::size_t trial = kNoTrial;  ///< global trial id for generated entries
  /// Non-empty when the request produced no answer for this entry:
  /// generation/packing failed, the model was rejected, or the entry's
  /// analysis threw -- *any* exception, not just flexrt::Error, becomes an
  /// error row rather than escaping into the thread pool (a std::bad_alloc
  /// or stray library exception must never lose the entry or wedge a
  /// streaming run's ordered gate).
  std::string error;
  Provenance prov;

  bool ok() const noexcept { return error.empty(); }
};

// --- requests -------------------------------------------------------------

/// Solve the §3.3/§4 design problem (== core::solve_design).
struct SolveRequest {
  hier::Scheduler alg = hier::Scheduler::EDF;
  core::Overheads overheads{};
  core::DesignGoal goal = core::DesignGoal::MinOverheadBandwidth;
  core::SearchOptions search{};
  AccuracyPolicy accuracy{};
};

struct SolveResult : ResultBase {
  bool feasible = false;
  /// Why the design is infeasible (when ok() && !feasible).
  std::string infeasible;
  core::Design design{};  ///< valid iff feasible
};

/// Per-mode minimum quanta and the Eq. 15 margin at one period.
struct MinQuantumRequest {
  hier::Scheduler alg = hier::Scheduler::EDF;
  double period = 1.0;
  bool use_exact_supply = false;
  AccuracyPolicy accuracy{};
};

struct MinQuantumResult : ResultBase {
  /// minQ per mode, indexed FT, FS, NF (core::kAllModes order).
  std::array<double, 3> mode_quantum{};
  /// lhs(P) = P - sum of the quanta (== core::feasibility_margin).
  double margin = 0.0;
};

/// The Figure-4 curve lhs(P) over a period grid (== core::sample_region).
struct RegionSweepRequest {
  hier::Scheduler alg = hier::Scheduler::EDF;
  core::SearchOptions search{};
  AccuracyPolicy accuracy{};
};

struct RegionSweepResult : ResultBase {
  std::vector<core::RegionSample> samples;
};

/// WCET scale margins of a finished schedule (== core::sensitivity_report /
/// wcet_scale_margin / global_scale_margin).
struct SensitivityRequest {
  hier::Scheduler alg = hier::Scheduler::EDF;
  core::ModeSchedule schedule{};
  /// Non-empty: only this task's margin (global margin is skipped).
  std::string task;
  /// Also compute the all-tasks-simultaneously margin (ignored for a
  /// named task). Off when the caller only wants the per-task report.
  bool include_global = true;
  double lambda_max = 16.0;
  double tolerance = 1e-4;  ///< bisection tolerance (named task / global)
  AccuracyPolicy accuracy{};
};

struct SensitivityResult : ResultBase {
  /// One row per task (system iteration order), or a single row for a
  /// named task.
  std::vector<core::TaskMargin> margins;
  /// All-tasks-simultaneously margin; computed only when `task` is empty.
  double global_margin = 0.0;
};

/// Eq. 12-14 schedulability of an explicit schedule (== BatchEngine::verify).
/// Under adaptive accuracy a condensed "no" is re-probed at larger budgets
/// (a condensed "yes" is already definitive).
struct VerifyRequest {
  hier::Scheduler alg = hier::Scheduler::EDF;
  core::ModeSchedule schedule{};
  bool use_exact_supply = false;
  AccuracyPolicy accuracy{};
};

struct VerifyResult : ResultBase {
  bool schedulable = false;
};

/// Fault-tolerance sweep (paper §2.1 made a fleet workload): solve the
/// nominal design, then sweep the fault::FaultModel rate and report, per
/// rate, schedulability under the fault model's recovery demand for each
/// task class -- FT masks (no extra demand), FS detects-and-silences (the
/// affected job re-executes: fault::recovery_task demand added to every FS
/// channel), NF corrupts (timing unchanged, output integrity degrades by
/// fault::corruption_exposure) -- side by side with the software baselines
/// the paper argues against: baseline::primary_backup (active backups,
/// rate-independent, doubled load) and the three baseline::StaticConfig
/// platforms (static-FS pays the same recovery demand on its permanent
/// couples).
struct FaultSweepRequest {
  hier::Scheduler alg = hier::Scheduler::EDF;
  /// Fault rates (lambda, faults per time unit) to sweep; >= 0 each.
  std::vector<double> rates;
  /// FaultModel::min_separation of the swept models: the hard floor of the
  /// guaranteed inter-fault gap (fault::recovery_gap).
  double min_separation = 1.0;
  core::Overheads overheads{};
  core::DesignGoal goal = core::DesignGoal::MinOverheadBandwidth;
  core::SearchOptions search{};
  /// Exact slot supply for the per-rate FS channel checks (default: the
  /// linear supply bound, matching verify's default).
  bool use_exact_supply = false;
  /// Also evaluate the primary/backup and static-configuration baselines.
  bool with_baselines = true;
  AccuracyPolicy accuracy{};
};

/// One swept rate's verdicts. Flexible-platform fields assume the nominal
/// design (FaultSweepResult::schedule); baseline fields are admission
/// verdicts on the baseline platforms and are present only when
/// with_baselines.
struct FaultRatePoint {
  double rate = 0.0;
  /// Guaranteed inter-fault gap the recovery demand assumes (+inf at rate 0).
  double recovery_gap = 0.0;
  bool ft_ok = false;  ///< FT class: faults masked, design guarantee holds
  bool fs_ok = false;  ///< FS class: channels schedulable incl. recovery demand
  bool nf_ok = false;  ///< NF class: timing guarantee holds (outputs may corrupt)
  /// Expected corrupting faults per time unit (NF integrity metric).
  double nf_exposure = 0.0;
  bool pb_ok = false;         ///< primary/backup baseline schedulable
  bool static_ft_ok = false;  ///< all-FT static platform hosts the app
  bool static_fs_ok = false;  ///< all-FS static platform, recovery demand incl.
  bool static_nf_ok = false;  ///< all-NF static platform hosts the app
};

struct FaultSweepResult : ResultBase {
  bool feasible = false;  ///< nominal design exists (prov covers its ladder)
  /// Why the nominal design is infeasible (when ok() && !feasible; the
  /// sweep then has no points -- there is no schedule to degrade from).
  std::string infeasible;
  core::ModeSchedule schedule{};  ///< the nominal design, valid iff feasible
  std::vector<FaultRatePoint> points;  ///< one per requested rate, in order
};

// --- streaming ------------------------------------------------------------

/// What a streaming fleet request reports back: every row was delivered to
/// the sink (in entry order), so the stats describe the transport, not the
/// answers. `max_buffered <= window` is the bounded-memory guarantee the
/// stream_fleet bench row tracks against the fleet size.
struct StreamStats {
  std::size_t emitted = 0;       ///< results delivered to the sink
  std::size_t window = 0;        ///< reorder window in force
  std::size_t max_buffered = 0;  ///< reorder-buffer high-water mark
};

/// Per-request result sinks. Called once per fleet entry, in entry order,
/// from whichever worker completed the stream head -- one call at a time
/// (the reassembly buffer serializes emission), so a sink writing a single
/// ostream needs no locking of its own.
using SolveSink = std::function<void(const SolveResult&)>;
using MinQuantumSink = std::function<void(const MinQuantumResult&)>;
using RegionSweepSink = std::function<void(const RegionSweepResult&)>;
using SensitivitySink = std::function<void(const SensitivityResult&)>;
using VerifySink = std::function<void(const VerifyResult&)>;
using FaultSweepSink = std::function<void(const FaultSweepResult&)>;

// --- the service ----------------------------------------------------------

class AnalysisService {
 public:
  /// Builds one trial system (or nullopt when packing fails) -- the
  /// per-trial recipe of a generated fleet. Must be deterministic in
  /// (trial, rng), and rng comes from core::trial_rng, so fleets are
  /// identical across shard layouts and thread counts.
  using SystemFactory =
      std::function<std::optional<core::ModeTaskSystem>(std::size_t trial,
                                                        Rng& rng)>;

  AnalysisService() = default;
  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Adds one system; returns its entry index.
  std::size_t add_system(core::ModeTaskSystem sys, std::string name = {});

  /// Packs a flat task set onto the platform channels (gen::build_system)
  /// and adds it. Throws InfeasibleError when the packing fails.
  std::size_t add_task_set(const rt::TaskSet& ts, std::string name = {},
                           const part::PackOptions& pack = {});

  /// Adds this shard's slice of a generated trial study: one entry per
  /// global trial in shard_range(study.trials, study.shard), named
  /// "<prefix><trial>", built by `make` with the layout-independent
  /// trial_rng stream. Trials whose factory returns nullopt become
  /// answer-less entries (results carry error "packing failed"), keeping
  /// trial accounting intact across shards. Returns the first entry index.
  std::size_t add_fleet(const core::StudyOptions& study,
                        const SystemFactory& make,
                        const std::string& prefix = "trial");

  std::size_t size() const noexcept { return entries_.size(); }
  const std::string& name(std::size_t i) const { return entries_.at(i).name; }
  /// Global trial id of a generated entry, kNoTrial otherwise.
  std::size_t trial(std::size_t i) const { return entries_.at(i).trial; }
  bool has_system(std::size_t i) const {
    return entries_.at(i).system.has_value();
  }
  const core::ModeTaskSystem& system(std::size_t i) const;

  // Fleet-wide execution: one result per entry, entry order, computed
  // across the par::parallel_for pool.
  std::vector<SolveResult> solve(const SolveRequest& req) const;
  std::vector<MinQuantumResult> min_quantum(const MinQuantumRequest& req) const;
  std::vector<RegionSweepResult> region_sweep(
      const RegionSweepRequest& req) const;
  std::vector<SensitivityResult> sensitivity(
      const SensitivityRequest& req) const;
  std::vector<VerifyResult> verify(const VerifyRequest& req) const;
  std::vector<FaultSweepResult> fault_sweep(const FaultSweepRequest& req) const;

  // Streaming execution: identical per-entry computation, but each result
  // goes to `sink` as soon as its ladder finishes, reassembled into entry
  // order through a bounded reorder buffer (window 0 = the library default,
  // a small multiple of the thread count). The emitted sequence is exactly
  // the buffered vector above -- streamed output is byte-identical to the
  // buffered path -- while peak result memory is O(window), not O(fleet):
  // the enabler for 10^5+-trial studies.
  StreamStats solve(const SolveRequest& req, const SolveSink& sink,
                    std::size_t window = 0) const;
  StreamStats min_quantum(const MinQuantumRequest& req,
                          const MinQuantumSink& sink,
                          std::size_t window = 0) const;
  StreamStats region_sweep(const RegionSweepRequest& req,
                           const RegionSweepSink& sink,
                           std::size_t window = 0) const;
  StreamStats sensitivity(const SensitivityRequest& req,
                          const SensitivitySink& sink,
                          std::size_t window = 0) const;
  StreamStats verify(const VerifyRequest& req, const VerifySink& sink,
                     std::size_t window = 0) const;
  StreamStats fault_sweep(const FaultSweepRequest& req,
                          const FaultSweepSink& sink,
                          std::size_t window = 0) const;

  // Single-entry execution (what the core:: wrappers use).
  SolveResult solve_one(std::size_t i, const SolveRequest& req) const;
  MinQuantumResult min_quantum_one(std::size_t i,
                                   const MinQuantumRequest& req) const;
  RegionSweepResult region_sweep_one(std::size_t i,
                                     const RegionSweepRequest& req) const;
  SensitivityResult sensitivity_one(std::size_t i,
                                    const SensitivityRequest& req) const;
  VerifyResult verify_one(std::size_t i, const VerifyRequest& req) const;
  FaultSweepResult fault_sweep_one(std::size_t i,
                                   const FaultSweepRequest& req) const;

  /// Deterministic fault-injection hook for executor hardening tests: when
  /// set, called at the *start of every accuracy round* of every entry's
  /// ladder, with (entry index, 1-based round). A hook that throws models a
  /// failing analysis (the entry becomes an error row -- see
  /// ResultBase::error); a hook that sleeps models a stalling one (an
  /// active Deadline then degrades the entry). Test-only by intent: not
  /// synchronized against in-flight requests, so set it before issuing
  /// work. Pass nullptr to clear.
  using ProbeHook = std::function<void(std::size_t entry, std::size_t round)>;
  void set_probe_hook(ProbeHook hook) { probe_hook_ = std::move(hook); }

  /// The cached per-(entry, scheduler, budget) probe engine -- the escape
  /// hatch for engine-level probes the typed requests do not cover
  /// (max_admissible_overhead, one-task margins, ...). `max_points` 0
  /// means the scheduler's library default budget (dlSet budget for EDF,
  /// per-task scheduling-point budget for FP). Engines are immutable and
  /// safe to probe concurrently. The reference stays valid while the
  /// engine is resident in the bounded cache -- callers that probe across
  /// many budgets on a shared service should pin via engine_ptr instead.
  const analysis::BatchEngine& engine(std::size_t i, hier::Scheduler alg,
                                      std::size_t max_points = 0) const {
    return *engine_ptr(i, alg, max_points);
  }

  /// Shared-ownership variant: the engine outlives any cache eviction as
  /// long as the returned pointer does (what the accuracy ladders hold
  /// across a probe).
  std::shared_ptr<const analysis::BatchEngine> engine_ptr(
      std::size_t i, hier::Scheduler alg, std::size_t max_points = 0) const;

  /// Canonical form of an entry's system (empty hash for answer-less
  /// entries): the system half of the memo key, computed once at add time.
  const rt::CanonicalSystem& canonical(std::size_t i) const {
    return entries_.at(i).canon;
  }

  /// Occupancy and eviction counters of the bounded engine cache.
  struct EngineCacheStats {
    std::size_t entries = 0;
    std::uint64_t evictions = 0;
  };
  EngineCacheStats engine_cache_stats() const;

 private:
  struct Entry {
    std::string name;
    std::size_t trial = kNoTrial;
    std::optional<core::ModeTaskSystem> system;
    std::string error;  ///< why `system` is absent
    rt::CanonicalSystem canon{};  ///< hash/scale of `system` (if present)
  };

  /// (entry, scheduler, dlSet budget) -> engine.
  using EngineKey = std::tuple<std::size_t, int, std::size_t>;

  /// One stripe of the engine cache: fleet workers used to serialize on a
  /// single service-wide mutex at every entry start; striping by key
  /// spreads them across kEngineShards independent locks. Each shard is
  /// bounded (kEngineShardCapacity resident engines, oldest evicted
  /// first) so a long-lived daemon session cannot grow engine memory
  /// without bound; shared_ptr ownership keeps an engine alive for any
  /// ladder that pinned it before eviction.
  struct EngineShard {
    sys::Mutex mu;
    std::map<EngineKey, std::shared_ptr<const analysis::BatchEngine>> engines
        GUARDED_BY(mu);
    /// insertion order; front evicts first
    std::deque<EngineKey> order GUARDED_BY(mu);
  };
  static constexpr std::size_t kEngineShards = 16;
  static constexpr std::size_t kEngineShardCapacity = 512;

  EngineShard& engine_shard(const EngineKey& key) const noexcept {
    const auto [entry, alg, budget] = key;
    return engine_shards_[(entry + 31 * budget +
                           977 * static_cast<std::size_t>(alg)) %
                          kEngineShards];
  }

  template <typename Result, typename Body>
  Result run_entry(std::size_t i, Body&& body) const;

  /// Memo-aware wrapper of run_entry: consult the process-wide answer
  /// cache under the canonical (system, request) key, fall back to `body`
  /// on a miss, and publish cacheable answers. Defined in the .cpp (all
  /// instantiations live there).
  template <typename Result, typename Request, typename Body>
  Result memoized(std::size_t i, const Request& req, Body&& body) const;

  /// The per-entry notify callback handed to the accuracy ladder: forwards
  /// each round start to the injection hook when one is set.
  auto probe_round(std::size_t i) const {
    return [this, i](std::size_t round) {
      if (probe_hook_) probe_hook_(i, round);
    };
  }

  /// Shared streaming transport: runs `one(i)` per entry on the pool and
  /// feeds the ordered reassembly buffer (par::ordered_stream).
  template <typename One, typename Sink>
  StreamStats stream_entries(const One& one, const Sink& sink,
                             std::size_t window) const;

  std::vector<Entry> entries_;
  ProbeHook probe_hook_;
  mutable std::array<EngineShard, kEngineShards> engine_shards_;
  mutable std::atomic<std::uint64_t> engine_evictions_{0};
};

/// One-entry service around a single system: the helper behind the core::
/// one-shot wrapper functions (integration/sensitivity/solve_design). The
/// service is non-movable -- it owns a sharded, mutex-striped engine
/// cache -- hence this two-phase-construction wrapper instead of a
/// factory returning by value.
struct OneShotService {
  explicit OneShotService(const core::ModeTaskSystem& sys) {
    service.add_system(sys);
  }
  AnalysisService service;
};

}  // namespace flexrt::svc
