#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/fs.hpp"
#include "common/parallel.hpp"

namespace flexrt::svc {

/// Crash-safe fleet execution: the durability substrate under
/// `flexrt_design --output` (and the flexrtd daemon direction in the
/// ROADMAP). A journaled run appends each fleet entry's JSONL rows to a
/// scratch journal (`<out>.partial`) the moment the entry clears the
/// ordered reassembly buffer -- flushed whole per entry, optionally
/// fsynced -- and atomically renames the journal onto the final path once
/// every entry (plus any epilogue rows, e.g. the study summary) has been
/// written. The final file therefore either does not exist or is the
/// complete, uninterrupted report; a crash of any kind (SIGKILL, panic,
/// power cut) leaves at worst a partial journal whose last line is torn.
///
/// Resume contract: rows are deterministic (wall-free, shortest-round-trip
/// numbers, layout-independent trial seeds -- the PR 3/PR 5 invariants),
/// so re-running the same request over the same fleet reproduces every
/// row byte for byte. recover() scans the partial journal line by line,
/// keeps the longest prefix of *complete* (newline-terminated `{...}`)
/// rows that ends in an entry-terminal row, and discards everything after
/// it -- the torn final line a kill leaves, or the complete-but-unfinished
/// head rows of a multi-row entry. run_journaled() then recomputes only
/// the remaining entries, so the resumed file is byte-identical to an
/// uninterrupted run (crash-injection-tested at several chop depths).

/// Bounded exponential backoff for per-entry retries, with a deterministic
/// seeded jitter schedule: delay_ms(entry, attempt) is a pure function of
/// (seed, entry, attempt), so a resumed or repeated run retries on exactly
/// the same schedule -- reproducibility extends to the failure handling,
/// not just the answers.
struct RetryPolicy {
  /// Total executions allowed per entry (first try included); >= 1.
  /// 1 disables retrying: a failed entry becomes a plain error row.
  std::size_t max_attempts = 1;
  double base_ms = 10.0;    ///< nominal delay before the first retry
  double factor = 2.0;      ///< exponential growth per further retry
  double cap_ms = 2000.0;   ///< hard ceiling on any single delay
  /// Uniform multiplicative jitter: the nominal delay is scaled by a
  /// deterministic draw from [1 - jitter, 1 + jitter]. 0 = no jitter.
  double jitter = 0.5;
  std::uint64_t seed = 0x5EED;

  /// Backoff before retry `attempt` (1-based: 1 = the delay between the
  /// first failure and the second execution) of `entry`. Deterministic in
  /// (seed, entry, attempt); always within
  /// [0, min(cap_ms, base_ms * factor^(attempt-1)) * (1 + jitter)].
  double delay_ms(std::size_t entry, std::size_t attempt) const noexcept;
};

/// Raised inside a journaled run when its cooperative stop flag goes up
/// (SIGINT/SIGTERM via sys::install_stop_signals, or a test hook). Entries
/// already emitted stay durable in the journal; the entry in flight when
/// the flag rises still completes and is journaled; only not-yet-started
/// entries are abandoned. The tool maps this to its documented exit code
/// and the run resumes later with --resume.
class InterruptedError : public Error {
 public:
  explicit InterruptedError(const std::string& what) : Error(what) {}
};

/// Knobs of one journaled run.
struct JournalOptions {
  /// Recover the completed prefix of an existing partial journal and
  /// continue after it, instead of truncating and starting over. Resuming
  /// an already-committed output is a no-op (rows are replayed, nothing is
  /// rewritten).
  bool resume = false;
  /// fsync the journal after every entry's rows (and always before the
  /// committing rename). Off: crash durability is the OS's write-back
  /// policy; the byte-exactness of resume is unaffected either way.
  bool fsync_per_entry = false;
  /// Reorder window of the ordered stream (0 = library default).
  std::size_t window = 0;
  /// Cooperative interrupt flag (usually &sys::stop_requested()). Checked
  /// before each entry starts and before each retry sleep: when it rises,
  /// in-flight entries finish and are journaled, the journal is fsynced
  /// and left as a resumable .partial, and run_journaled reports
  /// JournalStats::interrupted instead of committing. nullptr = never
  /// interrupted.
  const std::atomic<bool>* stop = nullptr;
  RetryPolicy retry{};
};

/// What a journaled run did -- the transport stats mirror StreamStats, the
/// robustness counters are the journal's own.
struct JournalStats {
  std::size_t entries = 0;      ///< fleet size
  std::size_t replayed = 0;     ///< entries recovered from the journal
  std::size_t executed = 0;     ///< entries computed (and written) this run
  std::size_t retried = 0;      ///< executed entries needing > 1 attempt
  std::size_t quarantined = 0;  ///< entries that exhausted max_attempts
  std::size_t max_buffered = 0; ///< reorder-buffer high-water mark
  bool already_complete = false;  ///< resume found a committed output
  /// A stop signal interrupted the run: completed entries are durable in
  /// the fsynced .partial journal, nothing was committed, and a --resume
  /// finishes the run byte-identically. The tool exits 4 on this.
  bool interrupted = false;
};

/// The durable journal file pair: `path` (the committed output) and
/// `path.partial` (the in-flight journal). Row-level framing and recovery
/// live here; the retry/stream orchestration is run_journaled() below.
class Journal {
 public:
  /// A predicate marking entry-terminal rows: every entry's block of rows
  /// ends with exactly one row for which this returns true (the per-entry
  /// summary row -- kind "study_trial", "sweep", "fault_sweep", ...).
  using RowPredicate = std::function<bool(std::string_view)>;
  /// Receives every recovered row (in file order) during recover() --
  /// how a resumed run rebuilds aggregates and exit codes from rows it
  /// will not recompute.
  using RowCallback = std::function<void(std::string_view)>;

  explicit Journal(std::string path);
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const noexcept { return path_; }
  std::string partial_path() const { return path_ + ".partial"; }

  struct Recovery {
    std::size_t completed = 0;  ///< entries whose rows are durable
    bool committed = false;     ///< the final output already exists
  };

  /// Resume entry point. When the committed output exists, replays its
  /// rows and reports committed (nothing will be rewritten). Otherwise
  /// scans the partial journal (absent = fresh start): complete rows up
  /// to and including the last entry-terminal row are kept and replayed;
  /// the remainder -- a torn final line and/or the head rows of an
  /// unfinished entry -- is truncated away, and the journal is left open
  /// for appending exactly after the kept prefix.
  Recovery recover(const RowPredicate& terminal, const RowCallback& replay);

  /// Fresh start: creates/truncates the partial journal.
  void start_fresh();

  /// Appends one entry's complete, newline-terminated rows. The write is
  /// flushed to the kernel whole (short writes retried), so a crash tears
  /// at most the final line of the journal, never an earlier one.
  void append(std::string_view block);

  /// fsync the journal (the per-entry durability upgrade).
  void sync();

  /// Commits: fsync, close, and atomically rename the journal onto the
  /// final path (durable rename -- parent directory fsynced). No-op when
  /// recover() found an already-committed output.
  void commit();

 private:
  std::string path_;  ///< immutable after construction
  /// Guards the journal's open-file state. append() is called from
  /// whichever pool worker holds the ordered stream's emission turn --
  /// serialized in practice by the stream gate, but the serialization
  /// lives in another module, so the journal carries its own lock rather
  /// than an unstated "caller must serialize" contract. sync() can also
  /// arrive from the interrupt path on the submitting thread.
  mutable sys::Mutex mu_;
  std::optional<fs::DurableFile> file_ GUARDED_BY(mu_);
  bool committed_ GUARDED_BY(mu_) = false;
};

/// Counts entry-terminal rows in the stream `text` (complete lines only):
/// how tests and smoke scripts measure a journal's chop depth.
std::size_t count_terminal_rows(std::string_view text,
                                const Journal::RowPredicate& terminal);

/// Journaled, resumable, fault-bounded execution of an n-entry fleet.
///
///  - `run_one(i)` computes entry i (a svc result type: has ok() and
///    prov). It must already be exception-safe in the run_entry sense --
///    failures come back as error-valued results, never as throws.
///  - `render(result)` turns one result into its newline-terminated JSONL
///    block, ending with exactly one row matching `terminal`.
///  - Transient failures: a result with !ok() is re-executed up to
///    retry.max_attempts times, sleeping the deterministic backoff between
///    attempts. The final result's provenance records the attempt count;
///    an entry still failing after the last attempt is *quarantined* --
///    its error row (prov.quarantined = true) is journaled like any other
///    row, and the fleet carries on. No hang, no lost entry, no poisoned
///    stream.
///  - `replay` receives recovered rows on resume; `epilogue()` (optional)
///    returns trailing rows written after the last entry, before commit
///    (the study summary). The epilogue is deliberately *not*
///    entry-terminal, so a crash after it but before the rename re-emits
///    it on resume instead of double-counting an entry.
///
/// Entries are streamed in order through par::ordered_stream, so the
/// journal grows strictly in entry order and "completed prefix" in the
/// file means "entries [0, k)" in the fleet.
template <typename RunOne, typename Render>
JournalStats run_journaled(Journal& journal, std::size_t n,
                           const JournalOptions& opts,
                           const Journal::RowPredicate& terminal,
                           const Journal::RowCallback& replay, RunOne&& run_one,
                           Render&& render,
                           const std::function<std::string()>& epilogue = {}) {
  FLEXRT_REQUIRE(opts.retry.max_attempts >= 1,
                 "retry.max_attempts must be >= 1");
  JournalStats stats;
  stats.entries = n;
  std::size_t done = 0;
  if (opts.resume) {
    const Journal::Recovery rec = journal.recover(terminal, replay);
    FLEXRT_REQUIRE(rec.completed <= n,
                   "journal " + journal.path() + " holds " +
                       std::to_string(rec.completed) + " entries but the fleet has only " +
                       std::to_string(n) + " -- resuming a different run?");
    if (rec.committed) {
      FLEXRT_REQUIRE(rec.completed == n,
                     "committed output " + journal.path() + " holds " +
                         std::to_string(rec.completed) + " of " +
                         std::to_string(n) +
                         " entries -- resuming a different run?");
      stats.replayed = n;
      stats.already_complete = true;
      return stats;
    }
    done = rec.completed;
    stats.replayed = done;
  } else {
    journal.start_fresh();
  }

  const auto interrupted = [&opts] {
    return opts.stop && opts.stop->load(std::memory_order_relaxed);
  };
  try {
    stats.max_buffered = par::ordered_stream(
        n - done, opts.window,
        [&](std::size_t j) {
          const std::size_t i = done + j;
          // Checked before the entry starts (and before each retry sleep),
          // never mid-analysis: a signal finishes the in-flight entries and
          // abandons only the not-yet-started tail.
          if (interrupted()) {
            throw InterruptedError("interrupted before entry " +
                                   std::to_string(i));
          }
          auto result = run_one(i);
          std::size_t attempt = 1;
          while (!result.ok() && attempt < opts.retry.max_attempts) {
            if (interrupted()) {
              throw InterruptedError("interrupted while retrying entry " +
                                     std::to_string(i));
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    opts.retry.delay_ms(i, attempt)));
            result = run_one(i);
            ++attempt;
          }
          result.prov.attempts = attempt;
          result.prov.quarantined = !result.ok() && opts.retry.max_attempts > 1;
          return result;
        },
        [&](std::size_t, auto&& result) {
          // Emission is serialized and in entry order (the ordered gate), so
          // the stats and the journal advance together, race-free.
          ++stats.executed;
          if (result.prov.attempts > 1) ++stats.retried;
          if (result.prov.quarantined) ++stats.quarantined;
          journal.append(render(result));
          if (opts.fsync_per_entry) journal.sync();
        });
  } catch (const InterruptedError&) {
    // Entries emitted before the interrupt are already in the journal;
    // fsync makes the durable prefix survive anything that follows. No
    // commit: the output appears only when a later --resume finishes it.
    journal.sync();
    stats.interrupted = true;
    return stats;
  }

  if (epilogue) {
    const std::string tail = epilogue();
    if (!tail.empty()) journal.append(tail);
  }
  journal.commit();
  return stats;
}

}  // namespace flexrt::svc
