#include "svc/study_report.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "svc/jsonl.hpp"

namespace flexrt::svc {

void provenance_fields(JsonRow& row, const Provenance& p, bool with_wall) {
  row.field("dl_exact", p.dl_exact)
      .field("fp_exact", p.fp_exact)
      .field("budget", p.budget)
      .field("fp_budget", p.fp_budget)
      .field("probes", p.probes);
  if (p.gap) {
    row.field("gap", *p.gap);
  } else {
    row.null_field("gap");
  }
  row.field("degraded", p.degraded);
  // Journaled-run retry provenance. Rendered only when it says something
  // (an entry that needed more than one execution, or was quarantined), so
  // rows from non-journaled runs keep their exact pre-journal bytes.
  if (p.attempts > 1) row.field("attempts", p.attempts);
  if (p.quarantined) row.field("quarantined", true);
  // Transport provenance: like wall_ms, cache_hit describes this run, not
  // the answer, so it renders only in wall-ful rows -- wall-free rows
  // (stream/journal/wire/warm-repeat byte-identity contracts) must read
  // the same whether the answer was computed or replayed from the memo.
  if (with_wall) {
    if (p.cache_hit) row.field("cache_hit", true);
    row.field("wall_ms", p.wall_ms);
  }
}

std::string study_trial_row(const SolveResult& r, hier::Scheduler alg,
                            core::DesignGoal goal) {
  JsonRow row;
  row.field("kind", "study_trial")
      .field("trial", r.trial)
      .field("alg", to_string(alg))
      .field("goal", to_string(goal))
      .field("packed", r.ok());
  if (!r.ok()) {
    // Failed entries carry the cause and their (wall-free) provenance: a
    // quarantined entry's row must say what failed and how many attempts
    // it survived, not just "packed: false".
    row.field("error", r.error);
    provenance_fields(row, r.prov, /*with_wall=*/false);
    return row.str();
  }
  row.field("feasible", r.feasible);
  if (r.feasible) {
    row.field("period", r.design.schedule.period)
        .field("q_ft", r.design.schedule.ft.usable)
        .field("q_fs", r.design.schedule.fs.usable)
        .field("q_nf", r.design.schedule.nf.usable)
        .field("slack_bw", r.design.schedule.slack_bandwidth());
  }
  provenance_fields(row, r.prov, /*with_wall=*/false);
  return row.str();
}

void StudyAggregate::add(std::string_view row) {
  ++trials_;
  if (json_bool_field(row, "packed").value_or(false)) ++packed_;
  if (json_bool_field(row, "feasible").value_or(false)) {
    ++feasible_;
    sum_period_ += json_number_field(row, "period").value_or(0.0);
    sum_slack_bw_ += json_number_field(row, "slack_bw").value_or(0.0);
  }
}

std::string StudyAggregate::summary_row() const {
  JsonRow row;
  row.field("kind", "study_summary")
      .field("trials", trials_)
      .field("packed", packed_)
      .field("feasible", feasible_)
      .field("sum_period", sum_period_)
      .field("sum_slack_bw", sum_slack_bw_)
      .field("mean_period",
             feasible_ ? sum_period_ / static_cast<double>(feasible_) : 0.0);
  return row.str();
}

void collect_study_rows(std::istream& in, const std::string& name,
                        std::vector<std::string>& rows) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    FLEXRT_REQUIRE(json_row_complete(line),
                   "truncated or corrupt row in " + name +
                       " (killed mid-stream?): refusing to merge a partial "
                       "shard report");
    if (json_string_field(line, "kind").value_or("") == "study_trial") {
      rows.push_back(line);
    }
    // Summaries (the unsharded report's tail) and foreign complete rows
    // are dropped; the merged summary is recomputed from the trial rows.
  }
}

void sort_study_rows(std::vector<std::string>& rows) {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const std::string& a, const std::string& b) {
                     return json_number_field(a, "trial").value_or(0.0) <
                            json_number_field(b, "trial").value_or(0.0);
                   });
  // A complete merge carries every global trial exactly once: each trial
  // emits a row (unpackable trials included), shards partition [0, N), and
  // the merged report stands in for the unsharded run. Duplicates mean a
  // shard was merged twice; a hole means a shard file lost its tail (e.g.
  // its run was killed between two whole-row flushes, which the truncation
  // check in collect_study_rows cannot see).
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const double got = json_number_field(rows[k], "trial").value_or(-1);
    const double want = static_cast<double>(k);
    FLEXRT_REQUIRE(got >= want, "duplicate trial " +
                                    std::to_string(static_cast<long long>(got)) +
                                    " (same shard merged twice?)");
    FLEXRT_REQUIRE(got <= want,
                   "missing trial " + std::to_string(static_cast<long long>(want)) +
                       " (shard file incomplete or a shard not merged?)");
  }
}

}  // namespace flexrt::svc
