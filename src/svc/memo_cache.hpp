#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <variant>

#include "common/annotations.hpp"
#include "rt/canonical.hpp"
#include "svc/analysis_service.hpp"

namespace flexrt::svc {

/// The answer payload of one memo entry: any typed result, stored with
/// its identity fields cleared (system/name/trial belong to the fleet
/// entry that asks, not the one that computed) and wall-free provenance.
using MemoPayload =
    std::variant<SolveResult, MinQuantumResult, RegionSweepResult,
                 SensitivityResult, VerifyResult, FaultSweepResult>;

struct MemoValue {
  MemoPayload payload;
  /// Producer's canonical time scale (rt::CanonicalSystem::scale): a hit
  /// from a system with a different scale multiplies the payload's
  /// time-dimensioned fields by the scale ratio before returning it.
  double scale = 1.0;
};

/// Aggregated cache counters -- what the daemon `status` command renders
/// as memo_hits/memo_misses/memo_evictions/memo_bytes/memo_entries.
struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
  bool enabled = true;
};

/// Process-wide content-addressed answer cache: canonical (system,
/// request) hash -> (answer, provenance, budget). Lock-striped into
/// kShards independent shards, each a mutex-guarded LRU map with its own
/// slice of the byte budget, so concurrent fleet workers contend only
/// 1/kShards of the time and a long-lived daemon's memory stays bounded
/// (satellite: unbounded caches grow flexrtd's RSS forever).
///
/// One instance serves the whole process (global_memo()): flexrtd
/// sessions each own a private fleet, but any system ever solved in any
/// session is a lookup for all of them.
class MemoCache {
 public:
  static constexpr std::size_t kShards = 64;
  static constexpr std::size_t kDefaultCapacityBytes = std::size_t{256}
                                                       << 20;  // 256 MiB

  MemoCache() = default;
  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// Process-wide kill switch (--no-memo). Reads are lock-free.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Total byte budget (--memo-bytes), split evenly across the shards.
  /// Shards over their slice evict LRU-first on the next insert.
  void set_capacity_bytes(std::size_t bytes) noexcept {
    capacity_.store(bytes, std::memory_order_relaxed);
  }

  /// Copies the cached value out (the caller owns a private copy: the
  /// cache can evict concurrently) and refreshes its LRU position.
  std::optional<MemoValue> lookup(const rt::Hash128& key);

  /// First writer wins: a key already present keeps its stored value, so
  /// concurrent producers of the same canonical answer cannot make a
  /// later reader observe a different (if bit-identical in theory)
  /// payload object. Entries larger than a whole shard's budget are not
  /// cached at all -- churning every resident entry out for one oversized
  /// answer would be a net loss.
  void insert(const rt::Hash128& key, MemoValue value);

  MemoStats stats() const;

  /// Drops every entry and zeroes the counters (tests and the bench's
  /// cold/warm split; never called on live traffic).
  void clear();

 private:
  struct Node {
    rt::Hash128 key;
    MemoValue value;
    std::size_t bytes = 0;
  };
  struct KeyHash {
    std::size_t operator()(const rt::Hash128& k) const noexcept {
      return static_cast<std::size_t>(k.lo);  // already avalanche-mixed
    }
  };
  /// One lock stripe. Every member is guarded by the shard mutex -- the
  /// compile-time contract behind "concurrent fleet workers contend only
  /// 1/kShards of the time": no path can touch a shard's LRU state without
  /// holding exactly that shard's lock.
  struct Shard {
    sys::Mutex mu;
    /// front = most recently used
    std::list<Node> lru GUARDED_BY(mu);
    std::unordered_map<rt::Hash128, std::list<Node>::iterator, KeyHash> map
        GUARDED_BY(mu);
    std::size_t bytes GUARDED_BY(mu) = 0;
    std::uint64_t hits GUARDED_BY(mu) = 0;
    std::uint64_t misses GUARDED_BY(mu) = 0;
    std::uint64_t insertions GUARDED_BY(mu) = 0;
    std::uint64_t evictions GUARDED_BY(mu) = 0;
  };

  Shard& shard_for(const rt::Hash128& key) noexcept {
    return shards_[key.hi % kShards];
  }
  std::size_t shard_capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed) / kShards;
  }

  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> capacity_{kDefaultCapacityBytes};
  mutable std::array<Shard, kShards> shards_;
};

/// The process-wide instance every AnalysisService consults.
MemoCache& global_memo();

/// Approximate resident size of a payload (struct + heap blocks), the
/// unit of the cache's byte accounting.
std::size_t memo_payload_bytes(const MemoPayload& payload);

}  // namespace flexrt::svc
