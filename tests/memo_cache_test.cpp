// The process-wide content-addressed answer memo (svc::MemoCache): the
// differential harness at the heart of the cache's correctness claim --
// memoized answers must be *bit-identical* to cold recomputation, across
// shuffled request orders and both schedulers, in struct fields and in the
// rendered wall-free JSONL rows -- plus counter accounting, LRU eviction
// under a tiny byte budget, cross-scale rescaling, first-writer-wins
// inserts, and the --no-memo kill switch. The same binary reruns in CI
// under FLEXRT_THREADS in {1, 4, 16}: the memo must be order- and
// thread-count-indifferent because the pool executes fleet entries in
// nondeterministic order.
#include "svc/memo_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/paper_example.hpp"
#include "core/study_runner.hpp"
#include "gen/taskset_gen.hpp"
#include "rt/task.hpp"
#include "rt/task_set.hpp"
#include "svc/analysis_service.hpp"
#include "svc/rows.hpp"

namespace flexrt::svc {
namespace {

using hier::Scheduler;

/// Every test runs against the real process-wide cache, so each one starts
/// from a clean, default-configured memo and leaves it that way (other
/// suites in this binary share the instance).
class MemoCacheTest : public ::testing::Test {
 protected:
  MemoCacheTest() { reset(); }
  ~MemoCacheTest() override { reset(); }

  static void reset() {
    MemoCache& m = global_memo();
    m.set_enabled(true);
    m.set_capacity_bytes(MemoCache::kDefaultCapacityBytes);
    m.clear();
  }
};

core::ModeTaskSystem scaled_paper(double k) {
  const core::ModeTaskSystem& base = core::paper_example();
  std::array<std::vector<rt::TaskSet>, 3> parts;
  for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
    for (const rt::TaskSet& channel : base.partitions(core::kAllModes[m])) {
      std::vector<rt::Task> tasks;
      for (const rt::Task& t : channel) {
        tasks.push_back(rt::make_task(t.name, t.wcet * k, t.period * k,
                                      t.deadline * k, t.mode));
      }
      parts[m].emplace_back(std::move(tasks));
    }
  }
  return core::ModeTaskSystem(std::move(parts[0]), std::move(parts[1]),
                              std::move(parts[2]));
}

void fill_fleet(AnalysisService& service, std::size_t trials) {
  core::StudyOptions study;
  study.trials = trials;
  service.add_fleet(study, [](std::size_t, Rng& rng) {
    return gen::study_system(rng);
  });
}

// --- the differential harness -------------------------------------------

// Cold reference (memo off) vs a memo-populating pass vs an all-hits pass,
// over a generated fleet, per-entry in a shuffled order, both schedulers.
// Struct fields and rendered wall-free rows must match byte-for-byte.
TEST_F(MemoCacheTest, MemoizedAnswersAreBitIdenticalToCold) {
  const std::size_t kTrials = 24;
  AnalysisService service;
  fill_fleet(service, kTrials);
  std::vector<std::size_t> order(service.size());
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng(7);
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(
        shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  for (const Scheduler alg : {Scheduler::EDF, Scheduler::FP}) {
    const MinQuantumRequest mq{alg, 1.0, false, {}};
    const SolveRequest sv{alg, {0.01, 0.01, 0.01},
                          core::DesignGoal::MinOverheadBandwidth, {}, {}};

    global_memo().set_enabled(false);
    std::vector<MinQuantumResult> cold_mq;
    std::vector<SolveResult> cold_sv;
    for (std::size_t i = 0; i < service.size(); ++i) {
      cold_mq.push_back(service.min_quantum_one(i, mq));
      cold_sv.push_back(service.solve_one(i, sv));
    }

    global_memo().set_enabled(true);
    global_memo().clear();
    // Two warm passes in shuffled order: the first populates (misses),
    // the second must be pure hits. Both must reproduce cold bits.
    for (int pass = 0; pass < 2; ++pass) {
      for (const std::size_t i : order) {
        const MinQuantumResult m = service.min_quantum_one(i, mq);
        const SolveResult s = service.solve_one(i, sv);
        ASSERT_EQ(m.ok(), cold_mq[i].ok());
        EXPECT_EQ(m.name, cold_mq[i].name);
        EXPECT_EQ(m.mode_quantum, cold_mq[i].mode_quantum);
        EXPECT_EQ(m.margin, cold_mq[i].margin);
        EXPECT_EQ(m.prov.budget, cold_mq[i].prov.budget);
        EXPECT_EQ(m.prov.gap, cold_mq[i].prov.gap);
        EXPECT_EQ(min_quantum_row(m, alg, mq.period, false).str(),
                  min_quantum_row(cold_mq[i], alg, mq.period, false).str());
        ASSERT_EQ(s.ok(), cold_sv[i].ok());
        EXPECT_EQ(solve_row(s, alg, sv.goal, false).str(),
                  solve_row(cold_sv[i], alg, sv.goal, false).str());
      }
      const MemoStats st = global_memo().stats();
      if (pass == 1) {
        EXPECT_GE(st.hits, 2 * service.size()) << "warm pass must be hits";
      }
    }
  }
}

TEST_F(MemoCacheTest, VerifyIsMemoizedBitIdentically) {
  AnalysisService service;
  service.add_system(core::paper_example(), "paper");
  const SolveResult base = service.solve_one(
      0, {Scheduler::EDF, {0.01, 0.01, 0.01},
          core::DesignGoal::MinOverheadBandwidth, {}, {}});
  ASSERT_TRUE(base.ok());
  const VerifyRequest vr{Scheduler::EDF, base.design.schedule, false, {}};

  global_memo().set_enabled(false);
  const VerifyResult cold = service.verify_one(0, vr);
  global_memo().set_enabled(true);
  global_memo().clear();
  const VerifyResult warm1 = service.verify_one(0, vr);
  const VerifyResult warm2 = service.verify_one(0, vr);
  for (const VerifyResult* r : {&warm1, &warm2}) {
    EXPECT_EQ(r->schedulable, cold.schedulable);
    EXPECT_EQ(r->prov.gap, cold.prov.gap);
    EXPECT_EQ(
        verify_row(*r, vr.alg, vr.schedule.period, false).str(),
        verify_row(cold, vr.alg, vr.schedule.period, false).str());
  }
  EXPECT_FALSE(warm1.prov.cache_hit);
  EXPECT_TRUE(warm2.prov.cache_hit);
  EXPECT_EQ(global_memo().stats().hits, 1u);
}

// --- counters, identity, provenance -------------------------------------

TEST_F(MemoCacheTest, StatsCountMissThenInsertThenHit) {
  AnalysisService service;
  service.add_system(core::paper_example(), "paper");
  const MinQuantumRequest req{Scheduler::EDF, 1.0, false, {}};
  (void)service.min_quantum_one(0, req);
  MemoStats st = global_memo().stats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);
  (void)service.min_quantum_one(0, req);
  st = global_memo().stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
}

TEST_F(MemoCacheTest, HitCarriesTheConsumersIdentityNotTheProducers) {
  AnalysisService service;
  service.add_system(core::paper_example(), "first");
  service.add_system(core::paper_example(), "second");
  const MinQuantumRequest req{Scheduler::EDF, 1.0, false, {}};
  const MinQuantumResult producer = service.min_quantum_one(0, req);
  const MinQuantumResult consumer = service.min_quantum_one(1, req);
  EXPECT_EQ(global_memo().stats().hits, 1u);
  EXPECT_EQ(consumer.system, 1u);
  EXPECT_EQ(consumer.name, "second");
  EXPECT_TRUE(consumer.prov.cache_hit);
  EXPECT_FALSE(producer.prov.cache_hit);
  EXPECT_EQ(consumer.mode_quantum, producer.mode_quantum);
  EXPECT_EQ(consumer.margin, producer.margin);
}

TEST_F(MemoCacheTest, CrossScaleHitRescalesTimeDimensionedFields) {
  AnalysisService service;
  service.add_system(core::paper_example(), "base");
  service.add_system(scaled_paper(2.0), "stretched");
  const MinQuantumRequest req1{Scheduler::EDF, 1.0, false, {}};
  const MinQuantumRequest req2{Scheduler::EDF, 2.0, false, {}};
  const MinQuantumResult base = service.min_quantum_one(0, req1);
  ASSERT_TRUE(base.ok());
  const MinQuantumResult twin = service.min_quantum_one(1, req2);
  ASSERT_TRUE(twin.ok());
  // The x2 twin at the x2 period is the same canonical question: a hit,
  // with every time-dimensioned field exactly doubled (x2 is exact in
  // binary floating point).
  EXPECT_EQ(global_memo().stats().hits, 1u);
  EXPECT_TRUE(twin.prov.cache_hit);
  ASSERT_EQ(twin.mode_quantum.size(), base.mode_quantum.size());
  for (std::size_t i = 0; i < base.mode_quantum.size(); ++i) {
    EXPECT_EQ(twin.mode_quantum[i], 2.0 * base.mode_quantum[i]);
  }
  EXPECT_EQ(twin.margin, 2.0 * base.margin);
}

TEST_F(MemoCacheTest, DifferentRequestsDoNotAlias) {
  AnalysisService service;
  service.add_system(core::paper_example(), "paper");
  const MinQuantumResult p1 =
      service.min_quantum_one(0, {Scheduler::EDF, 1.0, false, {}});
  const MinQuantumResult p2 =
      service.min_quantum_one(0, {Scheduler::EDF, 2.0, false, {}});
  const MinQuantumResult fp =
      service.min_quantum_one(0, {Scheduler::FP, 1.0, false, {}});
  EXPECT_EQ(global_memo().stats().hits, 0u);
  EXPECT_EQ(global_memo().stats().entries, 3u);
  (void)p1;
  (void)p2;
  (void)fp;
}

// --- configuration: kill switch and byte budget -------------------------

TEST_F(MemoCacheTest, DisabledMemoNeverTouchesTheCache) {
  global_memo().set_enabled(false);
  AnalysisService service;
  service.add_system(core::paper_example(), "paper");
  const MinQuantumRequest req{Scheduler::EDF, 1.0, false, {}};
  const MinQuantumResult a = service.min_quantum_one(0, req);
  const MinQuantumResult b = service.min_quantum_one(0, req);
  const MemoStats st = global_memo().stats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.entries, 0u);
  EXPECT_FALSE(st.enabled);
  EXPECT_FALSE(a.prov.cache_hit);
  EXPECT_FALSE(b.prov.cache_hit);
  EXPECT_EQ(a.mode_quantum, b.mode_quantum);
}

TEST_F(MemoCacheTest, LruEvictionKeepsTheShardUnderItsByteSlice) {
  // Keys with the same hi land in the same shard, so filling one shard is
  // deterministic: a 1 KiB slice (64 KiB over 64 shards) holds only a few
  // MinQuantumResult payloads, and older entries must evict LRU-first.
  MemoCache& memo = global_memo();
  const std::size_t kCapacity = std::size_t{64} * 1024;
  memo.set_capacity_bytes(kCapacity);
  MinQuantumResult payload;
  payload.margin = 0.25;
  const std::size_t kInserts = 64;
  for (std::uint64_t i = 1; i <= kInserts; ++i) {
    memo.insert(rt::Hash128{7, i}, {MemoPayload{payload}, 1.0});
  }
  const MemoStats st = memo.stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_EQ(st.insertions, kInserts);
  EXPECT_LE(st.bytes, kCapacity / MemoCache::kShards);
  EXPECT_LT(st.entries, kInserts);
  // LRU order: the first key is long gone, the last one is resident.
  EXPECT_FALSE(memo.lookup(rt::Hash128{7, 1}).has_value());
  EXPECT_TRUE(memo.lookup(rt::Hash128{7, kInserts}).has_value());
}

TEST_F(MemoCacheTest, TinyBudgetChurnsButStaysCorrect) {
  // A few KiB across 64 shards leaves room for almost nothing, so the
  // cache churns (or refuses oversized payloads) constantly. Correctness
  // must be unaffected -- evicted entries recompute, they don't corrupt.
  global_memo().set_capacity_bytes(std::size_t{64} * 1024);
  AnalysisService service;
  fill_fleet(service, 32);
  const MinQuantumRequest req{Scheduler::EDF, 1.0, false, {}};

  global_memo().set_enabled(false);
  std::vector<MinQuantumResult> cold;
  for (std::size_t i = 0; i < service.size(); ++i) {
    cold.push_back(service.min_quantum_one(i, req));
  }
  global_memo().set_enabled(true);
  global_memo().clear();
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < service.size(); ++i) {
      const MinQuantumResult r = service.min_quantum_one(i, req);
      EXPECT_EQ(r.mode_quantum, cold[i].mode_quantum);
      EXPECT_EQ(r.margin, cold[i].margin);
    }
  }
  EXPECT_LE(global_memo().stats().bytes, std::size_t{64} * 1024);
}

TEST_F(MemoCacheTest, FirstWriterWinsOnDuplicateInsert) {
  MemoCache& memo = global_memo();
  const rt::Hash128 key{42, 7};
  MinQuantumResult first;
  first.margin = 1.0;
  MinQuantumResult second;
  second.margin = 2.0;
  memo.insert(key, {MemoPayload{first}, 1.0});
  memo.insert(key, {MemoPayload{second}, 1.0});
  const auto hit = memo.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(std::get<MinQuantumResult>(hit->payload).margin, 1.0);
  EXPECT_EQ(memo.stats().insertions, 1u);
}

TEST_F(MemoCacheTest, ClearZeroesEverything) {
  AnalysisService service;
  service.add_system(core::paper_example(), "paper");
  (void)service.min_quantum_one(0, {Scheduler::EDF, 1.0, false, {}});
  ASSERT_GT(global_memo().stats().entries, 0u);
  global_memo().clear();
  const MemoStats st = global_memo().stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.insertions, 0u);
  EXPECT_EQ(st.evictions, 0u);
}

}  // namespace
}  // namespace flexrt::svc
