// Numeric and structural edge cases across modules: degenerate frames,
// saturating hyperperiods, boundary utilizations, tiny periods.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/design.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"
#include "hier/min_quantum.hpp"
#include "rt/demand.hpp"
#include "rt/edf_test.hpp"
#include "sim/simulator.hpp"

namespace flexrt {
namespace {

using hier::Scheduler;
using rt::make_task;
using rt::Mode;
using rt::TaskSet;

TEST(EdgeCases, HyperperiodSaturationFallsBackToExplicitHorizon) {
  // Coprime large periods overflow the lcm; deadline_set must refuse the
  // implicit horizon but accept an explicit one.
  TaskSet ts{make_task("a", 1, 1000003, Mode::NF),
             make_task("b", 1, 1000033, Mode::NF),
             make_task("c", 1, 999983, Mode::NF),
             make_task("d", 1, 999979, Mode::NF)};
  EXPECT_TRUE(std::isinf(ts.hyperperiod()));
  EXPECT_THROW(rt::deadline_set(ts), ModelError);
  EXPECT_EQ(rt::deadline_set(ts, 2.1e6).size(), 8u);
}

TEST(EdgeCases, FullUtilizationTaskNeedsWholePeriod) {
  // U = 1 task: the only feasible quantum is the entire period (a dedicated
  // processor), for every P not exceeding its deadline.
  const TaskSet ts{make_task("a", 4, 4, Mode::NF)};
  for (const double p : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(hier::min_quantum(ts, Scheduler::EDF, p), p, 1e-9) << p;
  }
}

TEST(EdgeCases, TinyPeriodApproachesFluidAllocation) {
  // As P -> 0 the slot scheme approaches a fluid processor: minQ/P -> U.
  const TaskSet ts{make_task("a", 1, 5, Mode::NF),
                   make_task("b", 1, 7, Mode::NF)};
  const double u = ts.utilization();
  EXPECT_NEAR(hier::min_quantum(ts, Scheduler::EDF, 1e-3) / 1e-3, u, 1e-3);
}

TEST(EdgeCases, MinQuantumDominatedByShortDeadlineTask) {
  // A deadline equal to the period P forces Q~ such that the supply covers
  // C within one frame: for D = P, q(D, C) with t = P gives sqrt(C*P).
  const TaskSet ts{make_task("a", 0.25, 2, Mode::NF)};
  const double p = 2.0;
  EXPECT_NEAR(hier::min_quantum(ts, Scheduler::EDF, p),
              std::sqrt(0.25 * p), 1e-9);
}

TEST(EdgeCases, SolverWithZeroOverheadHitsRegionBoundary) {
  const core::ModeTaskSystem sys = core::paper_example();
  const core::Design d =
      core::solve_design(sys, Scheduler::EDF, {0.0, 0.0, 0.0},
                         core::DesignGoal::MinOverheadBandwidth);
  EXPECT_NEAR(d.schedule.period, 3.177, 2e-3);
  EXPECT_NEAR(d.schedule.slack(), 0.0, 1e-3);
  EXPECT_DOUBLE_EQ(d.schedule.overhead_bandwidth(), 0.0);
}

TEST(EdgeCases, SimulatorHandlesFrameLargerThanHorizon) {
  // Horizon shorter than one frame: only the FT window [0,1) fires.
  rt::TaskSet ft{make_task("f", 0.5, 2.0, Mode::FT)};
  core::ModeTaskSystem sys({ft}, {}, {});
  core::ModeSchedule s;
  s.period = 100.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {1.0, 0.0};
  sim::SimOptions opt;
  opt.horizon = 10.0;
  const sim::SimResult r = sim::simulate(sys, s, opt);
  EXPECT_EQ(r.tasks[0].completions, 1u);  // first job runs in [0, 0.5)
  EXPECT_GT(r.tasks[0].deadline_misses, 0u);  // later jobs starve
}

TEST(EdgeCases, SimulatorExactBoundaryCompletion) {
  // A job finishing exactly at the window end must count as completed, and
  // one finishing exactly at its deadline must not be a miss.
  rt::TaskSet nf{make_task("x", 1.0, 4.0, 3.0, Mode::NF)};
  core::ModeTaskSystem sys({}, {}, {nf});
  core::ModeSchedule s;
  s.period = 4.0;
  s.ft = {0.0, 0.0};
  s.fs = {2.0, 0.0};  // NF window [2,3): job released at 0 finishes at
  s.nf = {1.0, 0.0};  // exactly t=3 = its absolute deadline.
  sim::SimOptions opt;
  opt.horizon = 40.0;
  const sim::SimResult r = sim::simulate(sys, s, opt);
  EXPECT_EQ(r.tasks[0].deadline_misses, 0u);
  EXPECT_EQ(r.tasks[0].max_response, to_ticks(3.0));
}

TEST(EdgeCases, EdfSchedulableAtExactlyFullUtilization) {
  const TaskSet ts{make_task("a", 1, 2, Mode::NF),
                   make_task("b", 1, 2, Mode::NF)};  // U = 1 exactly
  EXPECT_TRUE(rt::edf_schedulable(ts));
}

TEST(EdgeCases, FeasibilityMarginNegativeForOverloadedSystem) {
  // NF channel with U = 0.9 plus FT and FS loads cannot share a timeline.
  rt::TaskSet ft{make_task("f", 4.5, 10, Mode::FT)};
  rt::TaskSet fs{make_task("s", 4.5, 10, Mode::FS)};
  rt::TaskSet nf{make_task("n", 4.5, 10, Mode::NF)};
  core::ModeTaskSystem sys({ft}, {fs}, {nf});
  for (const double p : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_LT(core::feasibility_margin(sys, Scheduler::EDF, p), 0.0) << p;
  }
  EXPECT_THROW(core::max_feasible_period(sys, Scheduler::EDF, 0.0),
               InfeasibleError);
}

TEST(EdgeCases, OverheadOnlySlotsConsumeWithoutSupplying) {
  // A schedule whose FT slot is pure overhead must fail verification for
  // FT tasks but still simulate (the FT task just never runs).
  rt::TaskSet ft{make_task("f", 0.5, 4.0, Mode::FT)};
  core::ModeTaskSystem sys({ft}, {}, {});
  core::ModeSchedule s;
  s.period = 4.0;
  s.ft = {0.0, 1.0};  // overhead-only slot
  s.fs = {1.0, 0.0};
  s.nf = {1.0, 0.0};
  EXPECT_FALSE(core::verify_schedule(sys, s, Scheduler::EDF));
  sim::SimOptions opt;
  opt.horizon = 100.0;
  const sim::SimResult r = sim::simulate(sys, s, opt);
  EXPECT_EQ(r.tasks[0].completions, 0u);
  EXPECT_GT(r.tasks[0].deadline_misses, 0u);
}

}  // namespace
}  // namespace flexrt
