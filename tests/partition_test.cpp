#include "part/bin_packing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace flexrt::part {
namespace {

using rt::make_task;
using rt::Mode;
using rt::TaskSet;

TaskSet utilizations(std::initializer_list<double> us) {
  TaskSet ts;
  int i = 0;
  for (const double u : us) {
    ts.add(make_task("t" + std::to_string(i++), u * 10.0, 10.0, Mode::NF));
  }
  return ts;
}

TEST(Pack, WorstFitBalancesLoad) {
  const TaskSet ts = utilizations({0.4, 0.4, 0.3, 0.3});
  const auto bins = pack(ts, 2, {Heuristic::WorstFit, true, 1.0});
  ASSERT_TRUE(bins.has_value());
  EXPECT_EQ(bins->size(), 2u);
  EXPECT_NEAR(max_bin_utilization(*bins), 0.7, 1e-12);
}

TEST(Pack, FirstFitDecreasingKnownLayout) {
  const TaskSet ts = utilizations({0.6, 0.5, 0.4, 0.3});
  const auto bins = pack(ts, 2, {Heuristic::FirstFit, true, 1.0});
  ASSERT_TRUE(bins.has_value());
  // FFD: 0.6 -> bin0; 0.5 -> bin1 (0.6+0.5 > 1); 0.4 -> bin0; 0.3 -> bin1.
  EXPECT_NEAR((*bins)[0].utilization(), 1.0, 1e-12);
  EXPECT_NEAR((*bins)[1].utilization(), 0.8, 1e-12);
}

TEST(Pack, BestFitPrefersFullestBin) {
  // 0.5 -> bin0; 0.6 cannot join it -> bin1; 0.3 fits both, best-fit picks
  // the fuller bin1 (0.6 > 0.5).
  const TaskSet ts = utilizations({0.5, 0.6, 0.3});
  const auto bins = pack(ts, 2, {Heuristic::BestFit, false, 1.0});
  ASSERT_TRUE(bins.has_value());
  EXPECT_NEAR((*bins)[0].utilization(), 0.5, 1e-12);
  EXPECT_NEAR((*bins)[1].utilization(), 0.9, 1e-12);
}

TEST(Pack, NextFitDoesNotBacktrack) {
  const TaskSet ts = utilizations({0.7, 0.5, 0.2});
  const auto bins = pack(ts, 3, {Heuristic::NextFit, false, 1.0});
  ASSERT_TRUE(bins.has_value());
  // 0.7 in bin0; 0.5 does not fit bin0 -> bin1; 0.2 fits bin1 (cursor there).
  EXPECT_NEAR((*bins)[0].utilization(), 0.7, 1e-12);
  EXPECT_NEAR((*bins)[1].utilization(), 0.7, 1e-12);
  EXPECT_NEAR((*bins)[2].utilization(), 0.0, 1e-12);
}

TEST(Pack, FailsWhenItemCannotFit) {
  const TaskSet ts = utilizations({0.9, 0.9, 0.9});
  EXPECT_FALSE(pack(ts, 2, {Heuristic::FirstFit, true, 1.0}).has_value());
}

TEST(Pack, RespectsCustomCapacity) {
  const TaskSet ts = utilizations({0.3, 0.3});
  EXPECT_FALSE(pack(ts, 1, {Heuristic::FirstFit, true, 0.5}).has_value());
  EXPECT_TRUE(pack(ts, 2, {Heuristic::FirstFit, true, 0.5}).has_value());
}

TEST(Pack, ZeroBinsRejected) {
  EXPECT_THROW(pack(utilizations({0.1}), 0, {}), ModelError);
}

TEST(Pack, EmptySetYieldsEmptyBins) {
  const auto bins = pack(TaskSet{}, 3, {});
  ASSERT_TRUE(bins.has_value());
  EXPECT_EQ(bins->size(), 3u);
  EXPECT_DOUBLE_EQ(max_bin_utilization(*bins), 0.0);
}

TEST(Pack, AllTasksPlacedExactlyOnce) {
  Rng rng(61);
  for (int trial = 0; trial < 50; ++trial) {
    TaskSet ts;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) {
      ts.add(make_task("t" + std::to_string(i), rng.uniform(0.1, 3.0), 10.0,
                       Mode::NF));
    }
    for (const Heuristic h : {Heuristic::FirstFit, Heuristic::BestFit,
                              Heuristic::WorstFit, Heuristic::NextFit}) {
      const auto bins = pack(ts, 4, {h, true, 1.0});
      if (!bins) continue;
      std::size_t placed = 0;
      double util = 0.0;
      for (const TaskSet& b : *bins) {
        placed += b.size();
        util += b.utilization();
        EXPECT_LE(b.utilization(), 1.0 + 1e-9);
      }
      EXPECT_EQ(placed, ts.size()) << to_string(h);
      EXPECT_NEAR(util, ts.utilization(), 1e-9);
    }
  }
}

TEST(Pack, WorstFitNeverWorseMaxBinThanNextFit) {
  // Sanity on the balancing claim used by the docs (not a theorem for all
  // inputs vs FF/BF, but holds against NextFit on feasible instances).
  Rng rng(67);
  for (int trial = 0; trial < 50; ++trial) {
    TaskSet ts;
    for (int i = 0; i < 8; ++i) {
      ts.add(make_task("t" + std::to_string(i), rng.uniform(0.5, 2.5), 10.0,
                       Mode::NF));
    }
    const auto wf = pack(ts, 4, {Heuristic::WorstFit, true, 1.0});
    const auto nf = pack(ts, 4, {Heuristic::NextFit, true, 1.0});
    if (wf && nf) {
      EXPECT_LE(max_bin_utilization(*wf), max_bin_utilization(*nf) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace flexrt::part
