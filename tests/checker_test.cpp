#include "platform/checker.hpp"

#include <gtest/gtest.h>

namespace flexrt::platform {
namespace {

using rt::Mode;

TEST(ChannelCores, FtUsesAllFour) {
  EXPECT_EQ(channel_cores(Mode::FT, 0), 0b1111);
}

TEST(ChannelCores, FsCouples) {
  EXPECT_EQ(channel_cores(Mode::FS, 0), 0b0011);
  EXPECT_EQ(channel_cores(Mode::FS, 1), 0b1100);
}

TEST(ChannelCores, NfSingletons) {
  for (std::size_t c = 0; c < kNumCores; ++c) {
    EXPECT_EQ(channel_cores(Mode::NF, c), 1u << c);
  }
}

TEST(CoreChannel, InverseOfChannelCores) {
  for (const Mode mode : {Mode::FT, Mode::FS, Mode::NF}) {
    for (CoreId core = 0; core < kNumCores; ++core) {
      const std::size_t ch = core_channel(mode, core);
      EXPECT_TRUE(channel_cores(mode, ch) & (1u << core))
          << to_string(mode) << " core " << core;
    }
  }
}

TEST(Evaluate, NoFaultIsOkEverywhere) {
  EXPECT_EQ(evaluate(Mode::FT, 0, 0), Verdict::Ok);
  EXPECT_EQ(evaluate(Mode::FS, 0, 0), Verdict::Ok);
  EXPECT_EQ(evaluate(Mode::NF, 2, 0), Verdict::Ok);
}

TEST(Evaluate, FtMasksAnySingleCoreFault) {
  for (CoreId core = 0; core < kNumCores; ++core) {
    EXPECT_EQ(evaluate(Mode::FT, 0, static_cast<CoreMask>(1u << core)),
              Verdict::Masked);
  }
}

TEST(Evaluate, FtDoubleFaultDegradesToSilence) {
  // Beyond the single-fault assumption the 2:2 (or 1:3) vote is unsafe.
  EXPECT_EQ(evaluate(Mode::FT, 0, 0b0011), Verdict::Silenced);
  EXPECT_EQ(evaluate(Mode::FT, 0, 0b0111), Verdict::Silenced);
}

TEST(Evaluate, FsSilencesItsOwnCoupleOnly) {
  EXPECT_EQ(evaluate(Mode::FS, 0, 0b0001), Verdict::Silenced);
  EXPECT_EQ(evaluate(Mode::FS, 0, 0b0100), Verdict::Ok);  // other couple
  EXPECT_EQ(evaluate(Mode::FS, 1, 0b0100), Verdict::Silenced);
  EXPECT_EQ(evaluate(Mode::FS, 1, 0b0001), Verdict::Ok);
}

TEST(Evaluate, NfForwardsCorruption) {
  EXPECT_EQ(evaluate(Mode::NF, 3, 0b1000), Verdict::Corrupt);
  EXPECT_EQ(evaluate(Mode::NF, 3, 0b0100), Verdict::Ok);  // other core
}

TEST(Evaluate, FtNeverEmitsCorrupt) {
  // The safety property of the paper's FT mode: no wrong value can reach
  // the bus, whatever the fault pattern.
  for (unsigned mask = 0; mask < 16; ++mask) {
    EXPECT_NE(evaluate(Mode::FT, 0, static_cast<CoreMask>(mask)),
              Verdict::Corrupt);
  }
}

TEST(Evaluate, FsNeverEmitsCorruptOrMasked) {
  for (unsigned mask = 0; mask < 16; ++mask) {
    for (const std::size_t ch : {0u, 1u}) {
      const Verdict v = evaluate(Mode::FS, ch, static_cast<CoreMask>(mask));
      EXPECT_NE(v, Verdict::Corrupt);
      EXPECT_NE(v, Verdict::Masked);
    }
  }
}

}  // namespace
}  // namespace flexrt::platform
