#include "rt/sched_points.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "rt/demand.hpp"
#include "rt/priority.hpp"
#include "rt/rta.hpp"

namespace flexrt::rt {
namespace {

TEST(SchedPoints, HighestPriorityTaskHasOnlyItsDeadline) {
  const TaskSet ts{make_task("a", 1, 5, Mode::NF),
                   make_task("b", 1, 9, Mode::NF)};
  const auto pts = scheduling_points(ts, 0);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0], 5.0);
}

TEST(SchedPoints, TwoTaskWorkedExample) {
  // tau1(T=3) > tau2(D=8): P_1(8) = P_0(6) u P_0(8) = {6, 8}.
  const TaskSet ts{make_task("a", 1, 3, Mode::NF),
                   make_task("b", 1, 8, Mode::NF)};
  const auto pts = scheduling_points(ts, 1);
  const std::vector<double> expected = {6, 8};
  ASSERT_EQ(pts.size(), expected.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(pts[i], expected[i]);
  }
}

TEST(SchedPoints, ThreeTaskWorkedExample) {
  // tau1(T=3), tau2(T=8), tau3(D=20):
  // P_2(20) = P_1(16) u P_1(20) = {15,16} u {18,20}.
  const TaskSet ts{make_task("a", 1, 3, Mode::NF),
                   make_task("b", 1, 8, Mode::NF),
                   make_task("c", 1, 20, Mode::NF)};
  const auto pts = scheduling_points(ts, 2);
  const std::vector<double> expected = {15, 16, 18, 20};
  ASSERT_EQ(pts.size(), expected.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(pts[i], expected[i]);
  }
}

TEST(SchedPoints, AllPointsPositiveAndAtMostDeadline) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    TaskSet ts;
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < n; ++i) {
      const double period = rng.uniform(2.0, 50.0);
      ts.add(make_task("t" + std::to_string(i), 0.5, period, Mode::NF));
    }
    const TaskSet rm = sort_rate_monotonic(ts);
    for (std::size_t i = 0; i < rm.size(); ++i) {
      for (const double t : scheduling_points(rm, i)) {
        EXPECT_GT(t, 0.0);
        EXPECT_LE(t, rm[i].deadline + 1e-9);
      }
    }
  }
}

TEST(SchedPoints, OutOfRangeIndexThrows) {
  const TaskSet ts{make_task("a", 1, 5, Mode::NF)};
  EXPECT_THROW(scheduling_points(ts, 1), ModelError);
}

// Property: the scheduling-point feasibility test on a dedicated processor
// (exists t in schedP_i with W_i(t) <= t) must agree with classic RTA on
// randomized task sets -- both are exact FP tests.
TEST(SchedPoints, AgreesWithResponseTimeAnalysis) {
  Rng rng(77);
  int schedulable_seen = 0, unschedulable_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    TaskSet ts;
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < n; ++i) {
      const double period =
          static_cast<double>(rng.uniform_int(4, 30));
      const double wcet = rng.uniform(0.5, period * 0.5);
      ts.add(make_task("t" + std::to_string(i), wcet, period, Mode::NF));
    }
    const TaskSet rm = sort_rate_monotonic(ts);
    for (std::size_t i = 0; i < rm.size(); ++i) {
      bool points_ok = false;
      for (const double t : scheduling_points(rm, i)) {
        if (fp_workload(rm, i, t) <= t + 1e-9) {
          points_ok = true;
          break;
        }
      }
      const bool rta_ok = response_time(rm, i).has_value();
      EXPECT_EQ(points_ok, rta_ok) << "trial " << trial << " task " << i;
      (rta_ok ? schedulable_seen : unschedulable_seen)++;
    }
  }
  // The generator must exercise both outcomes for the property to mean
  // anything.
  EXPECT_GT(schedulable_seen, 50);
  EXPECT_GT(unschedulable_seen, 50);
}

}  // namespace
}  // namespace flexrt::rt
