#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace flexrt::par {
namespace {

TEST(ParallelFor, ThreadCountIsAtLeastOne) {
  EXPECT_GE(thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t n : {0u, 1u, 2u, 7u, 100u, 10000u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ParallelFor, ChunkedCoversTheRangeWithoutOverlap) {
  const std::size_t n = 4321;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunked(n, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ResultsLandInDisjointSlotsDeterministically) {
  const std::size_t n = 1000;
  std::vector<double> out(n, 0.0);
  parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool survives a throwing loop and runs subsequent loops normally.
  std::atomic<int> count{0};
  parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, NestedCallsRunSeriallyWithoutDeadlock) {
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

// --- ordered_stream -------------------------------------------------------

TEST(OrderedStream, EmitsEveryIndexInOrder) {
  for (const std::size_t n : {0u, 1u, 2u, 100u, 5000u}) {
    std::vector<std::size_t> order;
    order.reserve(n);
    const std::size_t peak = ordered_stream(
        n, /*window=*/0, [](std::size_t i) { return i * 3; },
        [&](std::size_t i, std::size_t v) {
          EXPECT_EQ(v, i * 3);
          order.push_back(i);
        });
    ASSERT_EQ(order.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
    EXPECT_LE(peak, default_stream_window());
  }
}

TEST(OrderedStream, PeakBufferingRespectsTheWindow) {
  // Skewed per-item cost (early indices are the slowest) maximizes
  // out-of-order completion; the reorder buffer must still never hold
  // more than `window` results.
  const std::size_t n = 2000;
  for (const std::size_t window : {1u, 2u, 7u, 64u}) {
    std::size_t emitted = 0;
    const std::size_t peak = ordered_stream(
        n, window,
        [&](std::size_t i) {
          if (i < 4) {  // slow head
            volatile double x = 0.0;
            for (int k = 0; k < 200000; ++k) x = x + 1.0;
          }
          return i;
        },
        [&](std::size_t i, std::size_t v) {
          EXPECT_EQ(i, emitted);
          EXPECT_EQ(v, i);
          ++emitted;
        });
    EXPECT_EQ(emitted, n);
    EXPECT_LE(peak, window);
    EXPECT_GE(peak, 1u);
  }
}

TEST(OrderedStream, SinkSeesOneCallAtATime) {
  // Emission is serialized under the stream lock: concurrent sink entries
  // would interleave rows in an ostream-backed sink.
  std::atomic<int> inside{0};
  bool overlapped = false;
  ordered_stream(
      500, 4, [](std::size_t i) { return i; },
      [&](std::size_t, std::size_t) {
        if (inside.fetch_add(1) != 0) overlapped = true;
        inside.fetch_sub(1);
      });
  EXPECT_FALSE(overlapped);
}

TEST(OrderedStream, PropagatesTheFirstExceptionWithoutDeadlock) {
  std::size_t emitted = 0;
  EXPECT_THROW(ordered_stream(
                   256, 4,
                   [](std::size_t i) {
                     if (i == 40) throw std::runtime_error("boom");
                     return i;
                   },
                   [&](std::size_t, std::size_t) { ++emitted; }),
               std::runtime_error);
  // Everything ahead of the failing index still streamed in order.
  EXPECT_GE(emitted, 40u);
  // The pool is healthy afterwards.
  std::size_t count = 0;
  ordered_stream(
      64, 0, [](std::size_t i) { return i; },
      [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count, 64u);
}

}  // namespace
}  // namespace flexrt::par
