#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace flexrt::par {
namespace {

TEST(ParallelFor, ThreadCountIsAtLeastOne) {
  EXPECT_GE(thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t n : {0u, 1u, 2u, 7u, 100u, 10000u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ParallelFor, ChunkedCoversTheRangeWithoutOverlap) {
  const std::size_t n = 4321;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunked(n, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ResultsLandInDisjointSlotsDeterministically) {
  const std::size_t n = 1000;
  std::vector<double> out(n, 0.0);
  parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool survives a throwing loop and runs subsequent loops normally.
  std::atomic<int> count{0};
  parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, NestedCallsRunSeriallyWithoutDeadlock) {
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

// --- ordered_stream -------------------------------------------------------

TEST(OrderedStream, EmitsEveryIndexInOrder) {
  for (const std::size_t n : {0u, 1u, 2u, 100u, 5000u}) {
    std::vector<std::size_t> order;
    order.reserve(n);
    const std::size_t peak = ordered_stream(
        n, /*window=*/0, [](std::size_t i) { return i * 3; },
        [&](std::size_t i, std::size_t v) {
          EXPECT_EQ(v, i * 3);
          order.push_back(i);
        });
    ASSERT_EQ(order.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
    EXPECT_LE(peak, default_stream_window());
  }
}

TEST(OrderedStream, PeakBufferingRespectsTheWindow) {
  // Skewed per-item cost (early indices are the slowest) maximizes
  // out-of-order completion; the reorder buffer must still never hold
  // more than `window` results.
  const std::size_t n = 2000;
  for (const std::size_t window : {1u, 2u, 7u, 64u}) {
    std::size_t emitted = 0;
    const std::size_t peak = ordered_stream(
        n, window,
        [&](std::size_t i) {
          if (i < 4) {  // slow head
            volatile double x = 0.0;
            for (int k = 0; k < 200000; ++k) x = x + 1.0;
          }
          return i;
        },
        [&](std::size_t i, std::size_t v) {
          EXPECT_EQ(i, emitted);
          EXPECT_EQ(v, i);
          ++emitted;
        });
    EXPECT_EQ(emitted, n);
    EXPECT_LE(peak, window);
    EXPECT_GE(peak, 1u);
  }
}

TEST(OrderedStream, SinkSeesOneCallAtATime) {
  // Emission is serialized under the stream lock: concurrent sink entries
  // would interleave rows in an ostream-backed sink.
  std::atomic<int> inside{0};
  bool overlapped = false;
  ordered_stream(
      500, 4, [](std::size_t i) { return i; },
      [&](std::size_t, std::size_t) {
        if (inside.fetch_add(1) != 0) overlapped = true;
        inside.fetch_sub(1);
      });
  EXPECT_FALSE(overlapped);
}

TEST(OrderedStream, WindowOfOneSerializesTheWholeStream) {
  // window=1 is the degenerate gate: a worker may not start index i until
  // i-1 has been emitted, so make and emit strictly alternate and nothing
  // is ever buffered out of order. The journaled runner leans on this
  // being correct (it is the tightest resume-friendly configuration).
  const std::size_t n = 300;
  std::atomic<std::size_t> started{0};
  std::size_t emitted = 0;
  const std::size_t peak = ordered_stream(
      n, /*window=*/1,
      [&](std::size_t i) {
        // With window 1 the gate admits exactly one in-flight index: by
        // the time i starts, every j < i has been emitted.
        EXPECT_EQ(started.fetch_add(1), i);
        return i;
      },
      [&](std::size_t i, std::size_t v) {
        EXPECT_EQ(i, emitted);
        EXPECT_EQ(v, i);
        ++emitted;
      });
  EXPECT_EQ(emitted, n);
  EXPECT_LE(peak, 1u);
}

TEST(OrderedStream, ExceptionAtTheFinalIndexStillDrains) {
  // The last ticket is the edge case: nothing queues behind it to nudge
  // the gate, so a throw there must still wake the drain and rethrow
  // after every earlier index emitted.
  for (const std::size_t window : {1u, 4u, 0u}) {
    const std::size_t n = 64;
    std::size_t emitted = 0;
    EXPECT_THROW(ordered_stream(
                     n, window,
                     [&](std::size_t i) {
                       if (i == n - 1) throw std::runtime_error("last");
                       return i;
                     },
                     [&](std::size_t i, std::size_t) {
                       EXPECT_EQ(i, emitted);
                       ++emitted;
                     }),
                 std::runtime_error);
    EXPECT_EQ(emitted, n - 1);
  }
}

TEST(OrderedStream, SingleEntryStream) {
  // A one-entry fleet (one task file, one trial) exercises every boundary
  // at once: first index == last index == stream head.
  for (const std::size_t window : {1u, 0u}) {
    std::size_t emitted = 0;
    const std::size_t peak = ordered_stream(
        1, window, [](std::size_t i) { return i + 7; },
        [&](std::size_t i, std::size_t v) {
          EXPECT_EQ(i, 0u);
          EXPECT_EQ(v, 7u);
          ++emitted;
        });
    EXPECT_EQ(emitted, 1u);
    EXPECT_LE(peak, 1u);
  }
  // ... and the failing single entry: rethrown, zero emissions, no hang.
  std::size_t emitted = 0;
  EXPECT_THROW(
      ordered_stream(
          1, 1, [](std::size_t) -> int { throw std::runtime_error("only"); },
          [&](std::size_t, int) { ++emitted; }),
      std::runtime_error);
  EXPECT_EQ(emitted, 0u);
}

TEST(OrderedStream, PropagatesTheFirstExceptionWithoutDeadlock) {
  std::size_t emitted = 0;
  EXPECT_THROW(ordered_stream(
                   256, 4,
                   [](std::size_t i) {
                     if (i == 40) throw std::runtime_error("boom");
                     return i;
                   },
                   [&](std::size_t, std::size_t) { ++emitted; }),
               std::runtime_error);
  // Everything ahead of the failing index still streamed in order.
  EXPECT_GE(emitted, 40u);
  // The pool is healthy afterwards.
  std::size_t count = 0;
  ordered_stream(
      64, 0, [](std::size_t i) { return i; },
      [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count, 64u);
}

}  // namespace
}  // namespace flexrt::par
