#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace flexrt::par {
namespace {

TEST(ParallelFor, ThreadCountIsAtLeastOne) {
  EXPECT_GE(thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t n : {0u, 1u, 2u, 7u, 100u, 10000u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ParallelFor, ChunkedCoversTheRangeWithoutOverlap) {
  const std::size_t n = 4321;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunked(n, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ResultsLandInDisjointSlotsDeterministically) {
  const std::size_t n = 1000;
  std::vector<double> out(n, 0.0);
  parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool survives a throwing loop and runs subsequent loops normally.
  std::atomic<int> count{0};
  parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, NestedCallsRunSeriallyWithoutDeadlock) {
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

}  // namespace
}  // namespace flexrt::par
