#include "rt/rta.hpp"

#include <gtest/gtest.h>

#include "rt/edf_test.hpp"
#include "rt/priority.hpp"
#include "rt/util_bounds.hpp"

namespace flexrt::rt {
namespace {

TEST(ResponseTime, ClassicTextbookExample) {
  // tau1(1,4) tau2(2,10): R1 = 1; R2 = 2 + ceil(R2/4)*1 has fixed point 3.
  const TaskSet ts{make_task("a", 1, 4, Mode::NF),
                   make_task("b", 2, 10, Mode::NF)};
  EXPECT_DOUBLE_EQ(response_time(ts, 0).value(), 1.0);
  EXPECT_DOUBLE_EQ(response_time(ts, 1).value(), 3.0);
  EXPECT_TRUE(fp_schedulable(ts));
}

TEST(ResponseTime, DetectsUnschedulableTask) {
  // U = 0.5 + 0.6 > 1: the low-priority task cannot make it.
  const TaskSet ts{make_task("a", 2, 4, Mode::NF),
                   make_task("b", 6, 10, Mode::NF)};
  EXPECT_TRUE(response_time(ts, 0).has_value());
  EXPECT_FALSE(response_time(ts, 1).has_value());
  EXPECT_FALSE(fp_schedulable(ts));
}

TEST(ResponseTime, FullUtilizationHarmonicSetIsSchedulable) {
  const TaskSet ts{make_task("a", 1, 2, Mode::NF),
                   make_task("b", 2, 4, Mode::NF)};  // U = 1, harmonic
  EXPECT_TRUE(fp_schedulable(ts));
  EXPECT_DOUBLE_EQ(response_time(ts, 1).value(), 4.0);
}

TEST(ResponseTime, WithInterferenceBuildingBlock) {
  const TaskSet ts{make_task("a", 1, 4, Mode::NF)};
  // A 2-unit job below tau1's priority with deadline 8: R = 2 + ceil(R/4).
  const auto r = response_time_with_interference(ts, 1, 2.0, 8.0);
  EXPECT_DOUBLE_EQ(r.value(), 3.0);
  // Same job but deadline 2: infeasible.
  EXPECT_FALSE(response_time_with_interference(ts, 1, 2.0, 2.0).has_value());
}

TEST(ResponseTimes, VectorForm) {
  const TaskSet ts{make_task("a", 1, 4, Mode::NF),
                   make_task("b", 2, 10, Mode::NF)};
  const auto all = response_times(ts);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[1].value(), 3.0);
}

TEST(EdfTest, ImplicitDeadlinesReduceToUtilization) {
  const TaskSet ok{make_task("a", 1, 2, Mode::NF),
                   make_task("b", 1, 3, Mode::NF)};  // U = 0.833
  EXPECT_TRUE(edf_schedulable(ok));
  const TaskSet bad{make_task("a", 1, 2, Mode::NF),
                    make_task("b", 2, 3, Mode::NF)};  // U = 1.167
  EXPECT_FALSE(edf_schedulable(bad));
}

TEST(EdfTest, ConstrainedDeadlinesNeedDemandCheck) {
  // U < 1 but dbf(4) = 3+... : a(3,10,D=4) b(2,5,D=5):
  // dbf(4)=3, ok; dbf(5)=3+2=5, ok; dbf(9)? a:1 job, b: floor((9)/5)=1 ->
  // 3+2=5 <= 9 ok; dbf(10)=... 2 jobs b: floor((10)/5)=2 -> 3+4=7 <=10.
  const TaskSet ok{make_task("a", 3, 10, 4, Mode::NF),
                   make_task("b", 2, 5, 5, Mode::NF)};
  EXPECT_TRUE(edf_schedulable(ok));
  // Shrink a's deadline to 3: dbf(3) = 3, and dbf(5) = 5 still; but deadline
  // 3 with wcet 3 plus b's 2 by 5: at t=5 demand 5 ok; make b heavier:
  const TaskSet bad{make_task("a", 3, 10, 3, Mode::NF),
                    make_task("b", 3, 5, 5, Mode::NF)};  // dbf(5)=6 > 5
  EXPECT_FALSE(edf_schedulable(bad));
}

TEST(EdfTest, DemandRatioReflectsLoad) {
  const TaskSet ts{make_task("a", 1, 2, Mode::NF)};
  EXPECT_NEAR(edf_demand_ratio(ts), 0.5, 1e-12);
  const TaskSet tight{make_task("a", 2, 2, Mode::NF)};
  EXPECT_NEAR(edf_demand_ratio(tight), 1.0, 1e-12);
}

TEST(UtilBounds, LiuLaylandValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
}

TEST(UtilBounds, HyperbolicDominatesLiuLayland) {
  // U1 = U2 = 0.41: sum 0.82 < LL(2) 0.828 -> both pass.
  const TaskSet easy{make_task("a", 0.41, 1, Mode::NF),
                     make_task("b", 4.1, 10, Mode::NF)};
  EXPECT_TRUE(rm_liu_layland_schedulable(easy));
  EXPECT_TRUE(rm_hyperbolic_schedulable(easy));
  // (1.45)(1.37) = 1.9865 <= 2 passes hyperbolic but sum 0.82... make a set
  // that passes HB and fails LL: U = {0.45, 0.37}: sum = 0.82 < 0.828 hmm.
  // Use {0.5, 0.33}: sum 0.83 > LL 0.828, product 1.5*1.33 = 1.995 <= 2.
  const TaskSet edge{make_task("a", 0.5, 1, Mode::NF),
                     make_task("b", 3.3, 10, Mode::NF)};
  EXPECT_FALSE(rm_liu_layland_schedulable(edge));
  EXPECT_TRUE(rm_hyperbolic_schedulable(edge));
}

}  // namespace
}  // namespace flexrt::rt
