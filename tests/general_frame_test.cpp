#include "core/general_frame.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "sim/simulator.hpp"

namespace flexrt::core {
namespace {

using hier::Scheduler;
using rt::Mode;

TEST(GeneralFrame, FromScheduleRoundTrips) {
  ModeSchedule s;
  s.period = 10.0;
  s.ft = {2.0, 0.5};
  s.fs = {3.0, 0.5};
  s.nf = {2.0, 1.0};
  const GeneralFrame f = GeneralFrame::from_schedule(s);
  EXPECT_EQ(f.slots().size(), 3u);
  EXPECT_DOUBLE_EQ(f.total_usable(Mode::FS), 3.0);
  EXPECT_DOUBLE_EQ(f.total_overhead(), 2.0);
  EXPECT_DOUBLE_EQ(f.slack(), 1.0);
  EXPECT_EQ(f.visits(Mode::FT), 1u);
  EXPECT_DOUBLE_EQ(f.slot_offset(1), 2.5);
  EXPECT_DOUBLE_EQ(f.slot_offset(2), 6.0);
}

TEST(GeneralFrame, SupplyMatchesScheduleSupply) {
  ModeSchedule s;
  s.period = 8.0;
  s.ft = {2.0, 0.0};
  s.fs = {2.0, 0.0};
  s.nf = {2.0, 0.0};
  const GeneralFrame f = GeneralFrame::from_schedule(s);
  const hier::MultiSlotSupply multi = f.supply(Mode::FS);
  // FS occupies [2,4) of every frame: exactly SlotSupply(8,2)'s worst case.
  const hier::SlotSupply single = s.exact_supply(Mode::FS);
  for (double t = 0.0; t <= 30.0; t += 0.4) {
    EXPECT_NEAR(multi.value(t), single.value(t), 1e-9) << t;
  }
}

TEST(GeneralFrame, RejectsOverflowingSlots) {
  EXPECT_THROW(GeneralFrame(1.0, {{Mode::FT, 0.8, 0.0},
                                  {Mode::FS, 0.4, 0.0}}),
               ModelError);
  EXPECT_THROW(GeneralFrame(1.0, {}), ModelError);
  EXPECT_THROW(GeneralFrame(1.0, {{Mode::FT, -0.1, 0.0}}), ModelError);
}

TEST(Interleave, SplitsBudgetsAndRepeatsOverheads) {
  ModeSchedule s;
  s.period = 12.0;
  s.ft = {2.0, 0.2};
  s.fs = {2.0, 0.2};
  s.nf = {2.0, 0.2};
  const GeneralFrame f = interleave(s, 2);
  EXPECT_EQ(f.slots().size(), 6u);
  EXPECT_EQ(f.visits(Mode::FT), 2u);
  EXPECT_DOUBLE_EQ(f.total_usable(Mode::FT), 2.0);   // budget preserved
  EXPECT_DOUBLE_EQ(f.total_overhead(), 1.2);         // overheads doubled
  // Delay shrinks vs the single slot's 12 - 2 = 10. Slots pack from the
  // frame start with the 4.8 slack at the end, so the longest FT-free
  // stretch is the wrap-around gap: 12 - 4.6 = 7.4.
  EXPECT_NEAR(f.supply(Mode::FT).delay(), 7.4, 1e-9);
  EXPECT_LT(f.supply(Mode::FT).delay(), 10.0);
}

TEST(Interleave, VerifiesOnPaperSystemWhenSlackAllows) {
  const ModeTaskSystem sys = paper_example();
  // A comfortable design with plenty of slack survives doubling overheads.
  const Design d = solve_design(sys, Scheduler::EDF, {0.005, 0.005, 0.005},
                                DesignGoal::MaxSlackBandwidth);
  const GeneralFrame doubled = interleave(d.schedule, 2);
  EXPECT_TRUE(verify_frame(sys, doubled, Scheduler::EDF));
}

TEST(VerifyFrame, SingleSlotAgreesWithVerifySchedule) {
  const ModeTaskSystem sys = paper_example();
  const Design d = solve_design(sys, Scheduler::EDF, {0.02, 0.02, 0.02},
                                DesignGoal::MaxSlackBandwidth);
  const GeneralFrame f = GeneralFrame::from_schedule(d.schedule);
  // The multi-slot verifier uses the exact supply, which dominates the
  // linear bound the solver used: feasibility must carry over.
  EXPECT_TRUE(verify_frame(sys, f, Scheduler::EDF));
  // A starved FT slot must fail.
  GeneralFrame starved(d.schedule.period,
                       {{Mode::FT, 0.01, 0.0},
                        {Mode::FS, d.schedule.fs.usable, 0.0},
                        {Mode::NF, d.schedule.nf.usable, 0.0}});
  EXPECT_FALSE(verify_frame(sys, starved, Scheduler::EDF));
}

TEST(SolveInterleaved, FindsFeasibleFrameAtLargePeriod) {
  // At P = 6 the single-slot scheme is far outside the feasible region of
  // the Table-1 system (max feasible P is ~2.97 for O=0.05): tau9's
  // deadline of 4 cannot absorb a delay of P - Q~. Splitting every mode
  // into 3 visits shrinks the delays enough to recover feasibility.
  const ModeTaskSystem sys = paper_example();
  const double period = 6.0;
  EXPECT_LT(feasibility_margin(sys, Scheduler::EDF, period), 0.015);
  const GeneralFrame f =
      solve_interleaved(sys, Scheduler::EDF, {0.005, 0.005, 0.005}, period, 3);
  EXPECT_TRUE(verify_frame(sys, f, Scheduler::EDF));
  EXPECT_EQ(f.visits(Mode::FT), 3u);
  EXPECT_GE(f.slack(), 0.0);
}

TEST(SolveInterleaved, ThrowsWhenOverheadsFillThePeriod) {
  const ModeTaskSystem sys = paper_example();
  EXPECT_THROW(
      solve_interleaved(sys, Scheduler::EDF, {0.2, 0.2, 0.2}, 1.0, 2),
      InfeasibleError);
}

TEST(SolveInterleaved, SimulationOfSolvedFrameIsMissFree) {
  const ModeTaskSystem sys = paper_example();
  GeneralFrame f =
      solve_interleaved(sys, Scheduler::EDF, {0.01, 0.01, 0.01}, 4.0, 2);
  // Pad every budget by 1% (tick-grid margin), shrinking the slack.
  std::vector<GeneralSlot> padded(f.slots().begin(), f.slots().end());
  for (GeneralSlot& s : padded) s.usable *= 1.01;
  const GeneralFrame safe(f.period(), std::move(padded));
  ASSERT_TRUE(verify_frame(sys, safe, Scheduler::EDF));
  sim::SimOptions opt;
  opt.horizon = 2000.0;
  opt.scheduler = Scheduler::EDF;
  const sim::SimResult r = sim::simulate(sys, safe, opt);
  EXPECT_EQ(r.total_misses(), 0u);
}

}  // namespace
}  // namespace flexrt::core
