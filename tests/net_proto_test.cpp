// The flexrtd wire protocol, driven over plain stringstreams: data rows
// are byte-identical to the direct svc render (the offline --jsonl
// --no-wall report), the study path reproduces the offline study report,
// hostile input (unknown commands, malformed flags, truncated add blocks,
// oversized lines) turns into `error` status lines without killing the
// session, and the framing helpers (read_line, parse_status_line) honor
// their caps and grammar exactly.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/study_runner.hpp"
#include "gen/taskset_gen.hpp"
#include "io/task_io.hpp"
#include "net/proto.hpp"
#include "svc/analysis_service.hpp"
#include "svc/jsonl.hpp"
#include "svc/memo_cache.hpp"
#include "svc/rows.hpp"
#include "svc/study_report.hpp"

namespace flexrt::net::proto {
namespace {

using hier::Scheduler;

/// The paper's Table-1 application in task-file form -- the same text as
/// examples/paper_example.txt, embedded so the test needs no file paths.
constexpr const char* kPaperTasks =
    "tau1   1  6  NF 0\n"
    "tau2   1  8  NF 1\n"
    "tau3   1 12  NF 1\n"
    "tau4   2 10  NF 2\n"
    "tau5   6 24  NF 3\n"
    "tau6   1 10  FS 0\n"
    "tau7   1 15  FS 0\n"
    "tau8   2 20  FS 0\n"
    "tau9   1  4  FS 1\n"
    "tau10  1 12  FT 0\n"
    "tau11  1 15  FT 0\n"
    "tau12  1 20  FT 0\n"
    "tau13  2 30  FT 0\n";

/// `add <name>` block for kPaperTasks.
std::string add_block(const std::string& name) {
  return "add " + name + "\n" + kPaperTasks + ".\n";
}

struct SessionOutput {
  std::string bytes;  ///< everything the session wrote
  int rc = 0;         ///< Session::run's return (max per-command rc)
};

/// Runs one scripted session over stringstreams -- the transport the unit
/// tests substitute for the daemon's socket streams.
SessionOutput run_script(const std::string& script,
                         std::size_t max_line = kMaxLineBytes) {
  std::istringstream in(script);
  std::ostringstream out;
  Session session(out, max_line);
  const int rc = session.run(in);
  return {out.str(), rc};
}

std::vector<std::string> lines_of(const std::string& bytes) {
  std::vector<std::string> lines;
  std::istringstream in(bytes);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// The JSONL data rows of a session transcript (status lines stripped).
std::string data_rows(const std::string& bytes) {
  std::string rows;
  for (const std::string& line : lines_of(bytes)) {
    if (!line.empty() && line[0] == '{') {
      rows += line;
      rows += '\n';
    }
  }
  return rows;
}

/// The parsed status lines of a session transcript, in order.
std::vector<WireStatus> statuses(const std::string& bytes) {
  std::vector<WireStatus> out;
  for (const std::string& line : lines_of(bytes)) {
    if (const auto st = parse_status_line(line)) out.push_back(*st);
  }
  return out;
}

void add_paper_system(svc::AnalysisService& service,
                      const std::string& name) {
  io::ParsedSystem parsed = io::parse_mode_task_system_string(kPaperTasks);
  service.add_system(std::move(parsed.system), name);
}

// --- framing helpers ------------------------------------------------------

TEST(NetProtoFraming, ReadLineSplitsStripsAndTerminates) {
  std::istringstream in("first\r\nsecond\nunterminated tail");
  bool truncated = true;
  EXPECT_EQ(read_line(in, 64, &truncated), "first");  // CR stripped
  EXPECT_FALSE(truncated);
  EXPECT_EQ(read_line(in, 64, &truncated), "second");
  // stdin-style tolerance: a final line without '\n' is still a line.
  EXPECT_EQ(read_line(in, 64, &truncated), "unterminated tail");
  EXPECT_EQ(read_line(in, 64, &truncated), std::nullopt);
}

TEST(NetProtoFraming, ReadLineConsumesOversizedLinesWithoutStoringThem) {
  const std::string huge(100, 'x');
  std::istringstream in(huge + "\nnext\n");
  bool truncated = false;
  const auto first = read_line(in, 16, &truncated);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(truncated);
  EXPECT_EQ(first->size(), 16u) << "bytes past the cap must be dropped";
  // Framing survives: the next line comes through whole and untruncated.
  EXPECT_EQ(read_line(in, 16, &truncated), "next");
  EXPECT_FALSE(truncated);
}

TEST(NetProtoFraming, ParseStatusLineGrammar) {
  const auto ok = parse_status_line("ok rc=0 fleet=3");
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(ok->failed);
  EXPECT_EQ(ok->rc, 0);

  const auto rc3 = parse_status_line("ok rc=3");
  ASSERT_TRUE(rc3.has_value());
  EXPECT_EQ(rc3->rc, 3);

  const auto err = parse_status_line("error boom: bad flag");
  ASSERT_TRUE(err.has_value());
  EXPECT_TRUE(err->failed);
  EXPECT_EQ(err->rc, 2);
  EXPECT_EQ(err->message, "boom: bad flag");

  // Data rows and near-misses are not status lines.
  EXPECT_EQ(parse_status_line("{\"kind\":\"solve\"}"), std::nullopt);
  EXPECT_EQ(parse_status_line("okay rc=0"), std::nullopt);
  EXPECT_EQ(parse_status_line("ok rc=x"), std::nullopt);
  EXPECT_EQ(parse_status_line("errors ahead"), std::nullopt);
}

// --- data-row byte parity -------------------------------------------------

TEST(NetProto, SolveRowsMatchDirectSvcRender) {
  const SessionOutput got = run_script(add_block("sys0") + "solve\nquit\n");
  EXPECT_EQ(got.rc, 0);

  svc::AnalysisService service;
  add_paper_system(service, "sys0");
  std::ostringstream os;
  svc::JsonlWriter out(os);
  const svc::SolveRequest req{Scheduler::EDF,
                              {0.0, 0.0, 0.0},
                              core::DesignGoal::MinOverheadBandwidth,
                              {},
                              svc::AccuracyPolicy::fixed(0)};
  service.solve(req, [&](const svc::SolveResult& r) {
    ASSERT_TRUE(r.ok());
    out.write(svc::solve_row(r, req.alg, req.goal, /*with_wall=*/false));
  });

  EXPECT_EQ(data_rows(got.bytes), os.str());
  const std::vector<WireStatus> st = statuses(got.bytes);
  ASSERT_EQ(st.size(), 3u);  // add, solve, quit
  for (const WireStatus& s : st) {
    EXPECT_FALSE(s.failed);
    EXPECT_EQ(s.rc, 0);
  }
}

TEST(NetProto, MinqAndVerifyRowsMatchDirectSvcRender) {
  const SessionOutput got = run_script(
      add_block("sys0") +
      "minq --period 1\n"
      "verify --period 1 --quanta 0.25,0.3,0.25\n"
      "quit\n");
  EXPECT_EQ(got.rc, 1) << "the tight schedule is unschedulable -> rc 1";

  svc::AnalysisService service;
  add_paper_system(service, "sys0");
  std::ostringstream os;
  svc::JsonlWriter out(os);
  const svc::AccuracyPolicy accuracy = svc::AccuracyPolicy::fixed(0);
  service.min_quantum({Scheduler::EDF, 1.0, false, accuracy},
                      [&](const svc::MinQuantumResult& r) {
                        ASSERT_TRUE(r.ok());
                        out.write(svc::min_quantum_row(r, Scheduler::EDF, 1.0,
                                                       /*with_wall=*/false));
                      });
  core::ModeSchedule schedule;
  schedule.period = 1.0;
  schedule.ft = {0.25, 0.0};
  schedule.fs = {0.3, 0.0};
  schedule.nf = {0.25, 0.0};
  service.verify({Scheduler::EDF, schedule, false, accuracy},
                 [&](const svc::VerifyResult& r) {
                   ASSERT_TRUE(r.ok());
                   out.write(svc::verify_row(r, Scheduler::EDF, 1.0,
                                             /*with_wall=*/false));
                 });

  EXPECT_EQ(data_rows(got.bytes), os.str());
}

TEST(NetProto, SweepRowsMatchDirectSvcRender) {
  const SessionOutput got = run_script(
      add_block("sys0") + "sweep --p-min 0.5 --p-max 1.0 --step 0.25\nquit\n");
  EXPECT_EQ(got.rc, 0);

  svc::AnalysisService service;
  add_paper_system(service, "sys0");
  std::ostringstream os;
  svc::JsonlWriter out(os);
  core::SearchOptions search;
  search.p_min = 0.5;
  search.p_max = 1.0;
  search.grid_step = 0.25;
  service.region_sweep(
      {Scheduler::EDF, search, svc::AccuracyPolicy::fixed(0)},
      [&](const svc::RegionSweepResult& r) {
        ASSERT_TRUE(r.ok());
        for (const core::RegionSample& s : r.samples) {
          out.write(svc::sweep_sample_row(r, Scheduler::EDF, s));
        }
        out.write(svc::sweep_summary_row(r, Scheduler::EDF,
                                         /*with_wall=*/false));
      });

  EXPECT_EQ(data_rows(got.bytes), os.str());
}

TEST(NetProto, GenFleetStudyMatchesOfflineStudyReport) {
  const SessionOutput got =
      run_script("gen-fleet --trials 4 --seed 7\nsolve --study\nquit\n");
  EXPECT_EQ(got.rc, 0);

  // The offline `study` subcommand's exact pipeline: generated fleet,
  // paper overheads split evenly, the study search grid, trial rows plus
  // the aggregate summary.
  core::StudyOptions study;
  study.trials = 4;
  study.base_seed = 7;
  svc::AnalysisService service;
  service.add_fleet(study,
                    [](std::size_t, Rng& rng) { return gen::study_system(rng); });
  core::SearchOptions search;
  search.grid_step = 5e-3;
  search.p_max = 10.0;
  const svc::SolveRequest req{Scheduler::EDF,
                              {0.05 / 3, 0.05 / 3, 0.05 / 3},
                              core::DesignGoal::MinOverheadBandwidth,
                              search,
                              svc::AccuracyPolicy::fixed(0)};
  std::ostringstream os;
  svc::JsonlWriter out(os);
  svc::StudyAggregate agg;
  service.solve(req, [&](const svc::SolveResult& r) {
    const std::string row = svc::study_trial_row(r, req.alg, req.goal);
    out.write(row);
    agg.add(row);
  });
  out.write(agg.summary_row());

  EXPECT_EQ(data_rows(got.bytes), os.str());
}

TEST(NetProto, ShardedStudyEmitsRowsOnlyAndShardsPartitionTheFleet) {
  const SessionOutput whole =
      run_script("gen-fleet --trials 4 --seed 7\nsolve --study\nquit\n");
  std::string sharded;
  for (const char* shard : {"1/2", "2/2"}) {
    const SessionOutput part = run_script(
        std::string("gen-fleet --trials 4 --seed 7 --shard ") + shard +
        "\nsolve --study\nquit\n");
    EXPECT_EQ(part.rc, 0);
    const std::string rows = data_rows(part.bytes);
    EXPECT_EQ(rows.find("\"kind\":\"study_summary\""), std::string::npos)
        << "shards must not emit the fleet-level summary";
    sharded += rows;
  }
  // The concatenated shard rows are exactly the unsharded trial rows.
  std::string whole_trials;
  for (const std::string& line : lines_of(data_rows(whole.bytes))) {
    if (line.find("\"kind\":\"study_trial\"") != std::string::npos) {
      whole_trials += line;
      whole_trials += '\n';
    }
  }
  EXPECT_EQ(sharded, whole_trials);
}

// --- wire-only surface ----------------------------------------------------

TEST(NetProto, OfflineOutputFlagsAreAcceptedAsNoOps) {
  const SessionOutput plain = run_script(add_block("s") + "solve\nquit\n");
  const SessionOutput flagged = run_script(
      add_block("s") + "solve --jsonl --stream --no-wall\nquit\n");
  EXPECT_EQ(flagged.rc, 0);
  EXPECT_EQ(data_rows(flagged.bytes), data_rows(plain.bytes))
      << "--jsonl/--stream/--no-wall describe what the wire always does";
}

TEST(NetProto, StatusAndDropManageTheFleet) {
  const SessionOutput got = run_script(add_block("a") + add_block("b") +
                                       "status\ndrop\nstatus\nquit\n");
  EXPECT_EQ(got.rc, 0);
  const std::string rows = data_rows(got.bytes);
  EXPECT_NE(rows.find("\"fleet\":2"), std::string::npos);
  EXPECT_NE(rows.find("\"fleet\":0"), std::string::npos);
  EXPECT_NE(rows.find("\"generated\":false"), std::string::npos);
  // gen-fleet works again after drop: the fleet really was reset.
  const SessionOutput regen = run_script(
      add_block("a") + "drop\ngen-fleet --trials 2\nstatus\nquit\n");
  EXPECT_EQ(regen.rc, 0);
  EXPECT_NE(data_rows(regen.bytes).find("\"generated\":true"),
            std::string::npos);
}

TEST(NetProto, StatusMemoRendersTheCacheCounters) {
  // Plain status stays byte-stable (no memo fields: the counters are
  // process-wide and would differ between otherwise identical sessions);
  // status --memo opts into the six memo_* fields.
  const SessionOutput plain = run_script("status\nquit\n");
  EXPECT_EQ(plain.rc, 0);
  EXPECT_EQ(data_rows(plain.bytes).find("memo_"), std::string::npos);

  const SessionOutput memo = run_script("status --memo\nquit\n");
  EXPECT_EQ(memo.rc, 0);
  const std::string rows = data_rows(memo.bytes);
  for (const char* field :
       {"\"memo_enabled\":", "\"memo_hits\":", "\"memo_misses\":",
        "\"memo_evictions\":", "\"memo_entries\":", "\"memo_bytes\":"}) {
    EXPECT_NE(rows.find(field), std::string::npos) << field;
  }
}

TEST(NetProto, StatusMemoCountsASolveAndItsRepeat) {
  svc::global_memo().set_enabled(true);
  svc::global_memo().clear();
  // Two identical solves in one session: the second is a memo hit, and
  // status --memo shows at least one hit and one insertion's worth of
  // bytes. (Counters are >=, not ==: the memo is process-wide.)
  const SessionOutput got = run_script(add_block("s") +
                                       "solve\nsolve\nstatus --memo\nquit\n");
  EXPECT_EQ(got.rc, 0);
  const std::string rows = data_rows(got.bytes);
  EXPECT_NE(rows.find("\"memo_enabled\":true"), std::string::npos);
  EXPECT_EQ(rows.find("\"memo_hits\":0,"), std::string::npos)
      << "the repeated solve must have hit";
  EXPECT_EQ(rows.find("\"memo_bytes\":0}"), std::string::npos);
  svc::global_memo().clear();
}

TEST(NetProto, StatusRejectsUnknownFlags) {
  const SessionOutput got = run_script("status --bogus\nquit\n");
  const std::vector<WireStatus> st = statuses(got.bytes);
  ASSERT_GE(st.size(), 1u);
  EXPECT_TRUE(st[0].failed);
  EXPECT_NE(st[0].message.find("status"), std::string::npos);
}

// --- hostile input --------------------------------------------------------

TEST(NetProto, HostileCommandsErrorWithoutKillingTheSession) {
  const std::vector<std::string> bad = {
      "frobnicate",                  // unknown command
      "solve",                       // empty fleet
      "solve --budget xyz",          // malformed value
      "solve --wat",                 // unknown flag
      "solve tasks.txt",             // bare token: no file paths on the wire
      "solve --csv",                 // offline-only output format
      "sweep --output f.jsonl",      // offline-only journal flag
      "solve --study",               // study needs a generated fleet
      "minq --period 0",             // domain validation
      "verify --period 1",           // missing --quanta
      "gen-fleet --shard 0/2",       // malformed shard spec (1-based)
  };
  std::string script;
  for (const std::string& cmd : bad) script += cmd + "\n";
  script += add_block("sys0") + "solve\nquit\n";

  const SessionOutput got = run_script(script);
  EXPECT_EQ(got.rc, 2) << "errors dominate the session rc";
  const std::vector<WireStatus> st = statuses(got.bytes);
  ASSERT_EQ(st.size(), bad.size() + 3);  // errors + add + solve + quit
  for (std::size_t i = 0; i < bad.size(); ++i) {
    EXPECT_TRUE(st[i].failed) << "'" << bad[i] << "' must fail";
    EXPECT_FALSE(st[i].message.empty());
  }
  // The session survived it all: the trailing solve still streams rows.
  EXPECT_FALSE(st[bad.size()].failed);
  EXPECT_NE(data_rows(got.bytes).find("\"kind\":\"solve\""),
            std::string::npos);
}

TEST(NetProto, GenFleetRefusesToMixWithAddedSystems) {
  const SessionOutput got =
      run_script(add_block("sys0") + "gen-fleet --trials 2\nquit\n");
  EXPECT_EQ(got.rc, 2);
  const std::vector<WireStatus> st = statuses(got.bytes);
  ASSERT_EQ(st.size(), 3u);
  EXPECT_TRUE(st[1].failed);
  EXPECT_NE(st[1].message.find("drop"), std::string::npos);
}

TEST(NetProto, AddWithoutTerminatorErrors) {
  // Stream ends mid-block: no terminating '.', so the add must fail --
  // and never hang waiting for more input.
  const SessionOutput got = run_script("add broken\ntau1 1 6 NF 0\n");
  EXPECT_EQ(got.rc, 2);
  const std::vector<WireStatus> st = statuses(got.bytes);
  ASSERT_EQ(st.size(), 1u);
  EXPECT_TRUE(st[0].failed);
  EXPECT_NE(st[0].message.find("terminating"), std::string::npos);
}

TEST(NetProto, AddWithUnparsableTasksErrors) {
  const SessionOutput got =
      run_script("add junk\nthis is not a task line\n.\nstatus\nquit\n");
  EXPECT_EQ(got.rc, 2);
  // The failed add leaves the fleet empty and the session alive.
  EXPECT_NE(data_rows(got.bytes).find("\"fleet\":0"), std::string::npos);
}

TEST(NetProto, OversizedLinesAreRejectedButFramingSurvives) {
  const std::string huge(200, 'x');
  const SessionOutput got =
      run_script(huge + "\nstatus\nquit\n", /*max_line=*/64);
  EXPECT_EQ(got.rc, 2);
  const std::vector<WireStatus> st = statuses(got.bytes);
  ASSERT_EQ(st.size(), 3u);
  EXPECT_TRUE(st[0].failed);
  EXPECT_NE(st[0].message.find("exceeds"), std::string::npos);
  EXPECT_FALSE(st[1].failed) << "status must work after the oversized line";
  EXPECT_FALSE(st[2].failed);
}

TEST(NetProto, BlankLinesAreKeepAliveNoOps) {
  const SessionOutput got = run_script("\n\n   \nstatus\nquit\n");
  EXPECT_EQ(got.rc, 0);
  EXPECT_EQ(statuses(got.bytes).size(), 2u) << "blank lines emit nothing";
}

TEST(NetProto, VerifyUnschedulableIsRcOneNotError) {
  const SessionOutput got = run_script(
      add_block("sys0") +
      "verify --period 1 --quanta 0.01,0.01,0.01\nquit\n");
  EXPECT_EQ(got.rc, 1);
  const std::vector<WireStatus> st = statuses(got.bytes);
  ASSERT_EQ(st.size(), 3u);
  EXPECT_FALSE(st[1].failed) << "unschedulable is a verdict, not an error";
  EXPECT_EQ(st[1].rc, 1);
}

}  // namespace
}  // namespace flexrt::net::proto
