// End-to-end cross-validation of the condensed FP analysis against the
// discrete-event simulator (the FP scenario of bench/sim_validation.cpp
// promoted into a ctest): generated FP sets run under a frame whose slot is
// sized by the *condensed* minimum quantum, and the simulation must be
// miss-free -- the over-approximation really does buy schedulability, not
// just a passing analytical test. A shrunken slot must conversely produce
// misses, so the check is not vacuous.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/mode_system.hpp"
#include "core/schedule.hpp"
#include "gen/taskset_gen.hpp"
#include "hier/min_quantum.hpp"
#include "rt/analysis_context.hpp"
#include "rt/priority.hpp"
#include "sim/simulator.hpp"

namespace flexrt {
namespace {

/// One NF partition carrying a generated FP-ordered set.
rt::TaskSet fp_set(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  gen::GenParams gp;
  gp.num_tasks = n;
  gp.total_utilization = 0.5;
  gp.ft_fraction = 0.0;
  gp.fs_fraction = 0.0;
  return rt::sort_deadline_monotonic(gen::generate_task_set(gp, rng));
}

core::ModeSchedule nf_schedule(double period, double usable) {
  core::ModeSchedule s;
  s.period = period;
  s.nf = {usable, 0.0};
  return s;
}

sim::SimResult simulate_fp(const rt::TaskSet& ts,
                           const core::ModeSchedule& schedule,
                           double horizon) {
  const core::ModeTaskSystem sys({}, {}, {ts});
  sim::SimOptions opt;
  opt.horizon = horizon;
  opt.scheduler = hier::Scheduler::FP;
  return sim::simulate(sys, schedule, opt);
}

TEST(SimFpCondensed, CondensedMinQuantumIsMissFreeInSimulation) {
  const double period = 2.0;
  int simulated = 0;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const rt::TaskSet ts = fp_set(seed, 8);
    // A budget the generated sets overflow: the analysis runs condensed.
    const rt::AnalysisContext ctx(ts, rt::DlBoundOptions{},
                                  rt::FpPointOptions{4});
    const double q = hier::min_quantum(ctx, hier::Scheduler::FP, period);
    if (!(q < period)) continue;  // no feasible quantum at this period
    // A hair above the analytical boundary keeps the simulator's tick-grid
    // rounding out of the comparison (same margin bench/sim_validation
    // uses); the condensed over-approximation itself is what is on trial.
    const double usable = std::min(period, q * 1.001);
    const sim::SimResult r = simulate_fp(ts, nf_schedule(period, usable),
                                         4000.0);
    EXPECT_EQ(r.total_misses(), 0u)
        << "seed=" << seed << " q=" << q << " P=" << period;
    ++simulated;
  }
  // The scenario must actually exercise the simulator, not skip every seed.
  EXPECT_GE(simulated, 6);
}

TEST(SimFpCondensed, StarvedSlotProducesMisses) {
  // Shape check (sim_validation's f < 1 arm): the miss-free result above
  // is meaningful only if shrinking the slot does break the set.
  const double period = 2.0;
  bool any_misses = false;
  for (std::uint64_t seed = 100; seed < 112 && !any_misses; ++seed) {
    const rt::TaskSet ts = fp_set(seed, 8);
    const rt::AnalysisContext ctx(ts, rt::DlBoundOptions{},
                                  rt::FpPointOptions{4});
    const double q = hier::min_quantum(ctx, hier::Scheduler::FP, period);
    if (!(q < period)) continue;
    const sim::SimResult r =
        simulate_fp(ts, nf_schedule(period, q * 0.4), 4000.0);
    any_misses = r.total_misses() > 0;
  }
  EXPECT_TRUE(any_misses);
}

}  // namespace
}  // namespace flexrt
