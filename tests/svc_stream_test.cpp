// Streaming fleet execution: the sink sees exactly the buffered result
// sequence (entry order), the JSONL transport is byte-identical across
// buffered / streamed / merged-shard-stream paths, peak buffering respects
// the reorder window, and a shard file truncated by a mid-stream kill is
// rejected by the merge helpers deterministically.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/paper_example.hpp"
#include "core/study_runner.hpp"
#include "gen/taskset_gen.hpp"
#include "svc/analysis_service.hpp"
#include "svc/jsonl.hpp"
#include "svc/study_report.hpp"

namespace flexrt::svc {
namespace {

using hier::Scheduler;

/// A deterministic 9-entry fleet with one unpackable trial, the shape the
/// study subcommand streams: packed rows, a "packing failed" row, and
/// byte-stable provenance.
AnalysisService::SystemFactory test_factory() {
  return [](std::size_t t, Rng&) -> std::optional<core::ModeTaskSystem> {
    if (t == 4) return std::nullopt;  // unpackable trial mid-fleet
    return core::paper_example();
  };
}

core::StudyOptions whole_study() {
  core::StudyOptions study;
  study.trials = 9;
  study.base_seed = 0xBEEF;
  return study;
}

SolveRequest solve_request() {
  return {Scheduler::EDF,
          {0.01, 0.01, 0.01},
          core::DesignGoal::MinOverheadBandwidth,
          {},
          {}};
}

/// Renders one fleet's study report (rows + summary) through the streaming
/// path into a string -- what `flexrt_design study --jsonl --stream` pipes
/// to a file, minus the process around it.
std::string streamed_report(const AnalysisService& service,
                            const SolveRequest& req, bool with_summary,
                            StreamStats* stats_out = nullptr) {
  std::ostringstream os;
  JsonlWriter out(os);
  StudyAggregate agg;
  const StreamStats stats = service.solve(req, [&](const SolveResult& r) {
    const std::string row =
        study_trial_row(r, req.alg, core::DesignGoal::MinOverheadBandwidth);
    out.write(row);
    agg.add(row);
  });
  if (with_summary) out.write(agg.summary_row());
  if (stats_out) *stats_out = stats;
  return os.str();
}

TEST(SvcStream, SinkSeesTheBufferedSequenceExactly) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::vector<SolveResult> want = service.solve(req);

  std::vector<SolveResult> got;
  const StreamStats stats =
      service.solve(req, [&](const SolveResult& r) { got.push_back(r); });
  EXPECT_EQ(stats.emitted, want.size());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].system, i);
    EXPECT_EQ(got[i].name, want[i].name);
    EXPECT_EQ(got[i].trial, want[i].trial);
    EXPECT_EQ(got[i].error, want[i].error);
    EXPECT_EQ(got[i].feasible, want[i].feasible);
    if (want[i].feasible) {
      EXPECT_EQ(got[i].design.schedule.period, want[i].design.schedule.period);
      EXPECT_EQ(got[i].design.schedule.ft.usable,
                want[i].design.schedule.ft.usable);
    }
    EXPECT_EQ(got[i].prov.budget, want[i].prov.budget);
    EXPECT_EQ(got[i].prov.dl_exact, want[i].prov.dl_exact);
  }
}

TEST(SvcStream, EveryRequestTypeStreamsInEntryOrder) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const auto expect_ordered = [](const StreamStats& stats,
                                 const std::vector<std::size_t>& order,
                                 std::size_t n) {
    EXPECT_EQ(stats.emitted, n);
    ASSERT_EQ(order.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
  };
  std::vector<std::size_t> order;

  order.clear();
  expect_ordered(service.min_quantum(
                     {Scheduler::EDF, 1.0, false, {}},
                     [&](const MinQuantumResult& r) { order.push_back(r.system); }),
                 order, service.size());

  order.clear();
  core::SearchOptions opts;
  opts.p_min = 0.5;
  opts.p_max = 1.5;
  opts.grid_step = 0.5;
  expect_ordered(
      service.region_sweep(
          {Scheduler::EDF, opts, {}},
          [&](const RegionSweepResult& r) { order.push_back(r.system); }),
      order, service.size());

  const core::Design d =
      core::solve_design(core::paper_example(), Scheduler::EDF, {0.0, 0.0, 0.0},
                         core::DesignGoal::MaxSlackBandwidth);

  order.clear();
  SensitivityRequest sreq;
  sreq.alg = Scheduler::EDF;
  sreq.schedule = d.schedule;
  sreq.include_global = false;
  expect_ordered(service.sensitivity(sreq,
                                     [&](const SensitivityResult& r) {
                                       order.push_back(r.system);
                                     }),
                 order, service.size());

  order.clear();
  expect_ordered(
      service.verify({Scheduler::EDF, d.schedule, false, {}},
                     [&](const VerifyResult& r) { order.push_back(r.system); }),
      order, service.size());
}

TEST(SvcStream, StreamedBytesEqualBufferedBytes) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();

  // Buffered report: the pre-streaming study path (rows from the result
  // vector, summary from the aggregate).
  std::ostringstream buffered;
  {
    JsonlWriter out(buffered);
    StudyAggregate agg;
    for (const SolveResult& r : service.solve(req)) {
      const std::string row =
          study_trial_row(r, req.alg, core::DesignGoal::MinOverheadBandwidth);
      out.write(row);
      agg.add(row);
    }
    out.write(agg.summary_row());
  }

  const std::string streamed = streamed_report(service, req, true);
  EXPECT_EQ(streamed, buffered.str());
}

TEST(SvcStream, MergedShardStreamsEqualTheUnshardedStream) {
  const SolveRequest req = solve_request();
  AnalysisService whole;
  whole.add_fleet(whole_study(), test_factory());
  const std::string want = streamed_report(whole, req, true);

  // Stream each shard separately (rows only, like `study --shard k/N`),
  // then merge with the exact helpers cmd_merge runs.
  std::vector<std::string> rows;
  for (std::size_t k = 0; k < 3; ++k) {
    AnalysisService part;
    core::StudyOptions shard = whole_study();
    shard.shard = {k, 3};
    part.add_fleet(shard, test_factory());
    std::istringstream in(streamed_report(part, req, false));
    collect_study_rows(in, "shard" + std::to_string(k), rows);
  }
  sort_study_rows(rows);
  std::ostringstream merged;
  JsonlWriter out(merged);
  StudyAggregate agg;
  for (const std::string& row : rows) {
    out.write(row);
    agg.add(row);
  }
  out.write(agg.summary_row());
  EXPECT_EQ(merged.str(), want);
}

TEST(SvcStream, PeakBufferingIsBoundedByTheWindow) {
  AnalysisService service;
  core::StudyOptions study;
  study.trials = 64;
  service.add_fleet(study, [](std::size_t, Rng&) {
    return std::optional<core::ModeTaskSystem>(core::paper_example());
  });
  for (const std::size_t window : {1u, 3u, 16u}) {
    std::size_t emitted = 0;
    const StreamStats stats = service.min_quantum(
        {Scheduler::EDF, 1.0, false, {}},
        [&](const MinQuantumResult&) { ++emitted; }, window);
    EXPECT_EQ(emitted, 64u);
    EXPECT_EQ(stats.window, window);
    EXPECT_LE(stats.max_buffered, window);
    EXPECT_GE(stats.max_buffered, 1u);
  }
}

// --- kill-mid-stream: truncated shard files -------------------------------

TEST(SvcStream, TruncatedShardFileIsRejectedDeterministically) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const std::string report =
      streamed_report(service, solve_request(), /*with_summary=*/false);

  // A complete report collects cleanly.
  {
    std::vector<std::string> rows;
    std::istringstream in(report);
    collect_study_rows(in, "whole", rows);
    EXPECT_EQ(rows.size(), 9u);
  }

  // Chop the file mid-last-row at several depths -- whatever instant the
  // writer was killed, the partial tail must be detected, not merged.
  // (Losing only the final '\n' leaves a complete row, which is fine;
  // chops of >= 2 cut into the row itself.)
  for (const std::size_t chop : {2u, 5u, 20u}) {
    ASSERT_GT(report.size(), chop + 1);
    std::istringstream in(report.substr(0, report.size() - chop));
    std::vector<std::string> rows;
    EXPECT_THROW(collect_study_rows(in, "partial", rows), ModelError)
        << "chop " << chop;
  }
}

TEST(SvcStream, DuplicateShardRowsAreRejected) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const std::string report =
      streamed_report(service, solve_request(), /*with_summary=*/false);
  std::vector<std::string> rows;
  std::istringstream a(report), b(report);
  collect_study_rows(a, "a", rows);
  collect_study_rows(b, "b", rows);
  EXPECT_THROW(sort_study_rows(rows), ModelError);
}

TEST(SvcStream, MissingTrialsAreRejected) {
  // A shard killed cleanly *between* two row flushes leaves only complete
  // lines -- no truncation to detect -- but the merged trial ids then have
  // a hole, which the sort/contiguity check must reject.
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const std::string report =
      streamed_report(service, solve_request(), /*with_summary=*/false);
  std::vector<std::string> rows;
  std::istringstream in(report);
  collect_study_rows(in, "whole", rows);
  ASSERT_EQ(rows.size(), 9u);

  std::vector<std::string> holed = rows;
  holed.erase(holed.begin() + 3);  // lose trial 3 (a row-boundary kill)
  EXPECT_THROW(sort_study_rows(holed), ModelError);

  std::vector<std::string> intact = rows;
  sort_study_rows(intact);  // the complete set still merges
  EXPECT_EQ(intact.size(), 9u);
}

}  // namespace
}  // namespace flexrt::svc
