// Parity tests: everything the AnalysisContext caches must agree with the
// uncached kernels it replaces, across randomized generated task sets.
#include "rt/analysis_context.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gen/taskset_gen.hpp"
#include "hier/min_quantum.hpp"
#include "hier/sched_test.hpp"
#include "hier/supply.hpp"
#include "rt/demand.hpp"
#include "rt/priority.hpp"
#include "rt/sched_points.hpp"

namespace flexrt::rt {
namespace {

TaskSet random_set(std::uint64_t seed, std::size_t n, double util) {
  Rng rng(seed);
  gen::GenParams gp;
  gp.num_tasks = n;
  gp.total_utilization = util;
  gp.ft_fraction = 0.0;
  gp.fs_fraction = 0.0;
  gp.deadline_min_ratio = 0.8;  // constrained deadlines stress dlSet
  return gen::generate_task_set(gp, rng);
}

TEST(EdfDemandCurve, MatchesPerPointKernelOnDeadlineSet) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const TaskSet ts = random_set(seed, 3 + seed % 9, 0.5 + 0.02 * seed);
    const std::vector<double> points = deadline_set(ts);
    const std::vector<double> curve = edf_demand_curve(ts, points);
    ASSERT_EQ(curve.size(), points.size());
    for (std::size_t k = 0; k < points.size(); ++k) {
      EXPECT_NEAR(curve[k], edf_demand(ts, points[k]), 1e-9)
          << "seed=" << seed << " t=" << points[k];
    }
  }
}

TEST(EdfDemandCurve, MatchesPerPointKernelOnArbitrarySortedPoints) {
  const TaskSet ts = random_set(42, 8, 0.7);
  Rng rng(424242);
  std::vector<double> points;
  for (int i = 0; i < 500; ++i) points.push_back(rng.uniform(0.0, 100.0));
  std::sort(points.begin(), points.end());
  const std::vector<double> curve = edf_demand_curve(ts, points);
  for (std::size_t k = 0; k < points.size(); ++k) {
    EXPECT_NEAR(curve[k], edf_demand(ts, points[k]), 1e-9) << points[k];
  }
}

TEST(EdfDemandCurve, SnapWindowIsRelativeLikeFloorRatio) {
  // floor_ratio snaps with tolerance 1e-9 * max(1, r): at the 1000th job of
  // a T=1 task the time window is ~1e-6, not 1e-9. A point 5e-7 below the
  // event must count the job, exactly as edf_demand does.
  const TaskSet ts{Task{"a", 0.25, 1.0, 1.0, Mode::NF}};
  const std::vector<double> points = {1000.0 - 5e-7};
  const std::vector<double> curve = edf_demand_curve(ts, points);
  EXPECT_DOUBLE_EQ(curve[0], edf_demand(ts, points[0]));
  EXPECT_DOUBLE_EQ(curve[0], 1000 * 0.25);
}

TEST(AnalysisContext, CachedEdfStateMatchesUncachedKernels) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const TaskSet ts = random_set(seed, 6, 0.6);
    const AnalysisContext ctx(ts);
    const std::vector<double> points = deadline_set(ts);
    ASSERT_EQ(ctx.deadline_points().size(), points.size());
    for (std::size_t k = 0; k < points.size(); ++k) {
      EXPECT_DOUBLE_EQ(ctx.deadline_points()[k], points[k]);
      EXPECT_NEAR(ctx.edf_demand_at_points()[k], edf_demand(ts, points[k]),
                  1e-9);
    }
    // Per-task job rows reassemble into the demand curve.
    std::vector<double> rebuilt(points.size(), 0.0);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const std::vector<double> jobs = ctx.edf_point_jobs(i);
      for (std::size_t k = 0; k < points.size(); ++k) {
        rebuilt[k] += jobs[k] * ts[i].wcet;
      }
    }
    for (std::size_t k = 0; k < points.size(); ++k) {
      EXPECT_NEAR(rebuilt[k], ctx.edf_demand_at_points()[k], 1e-9);
    }
  }
}

TEST(AnalysisContext, CachedFpStateMatchesUncachedKernels) {
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    const TaskSet ts = sort_deadline_monotonic(random_set(seed, 6, 0.6));
    const AnalysisContext ctx(ts);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const std::vector<double> points = scheduling_points(ts, i);
      ASSERT_EQ(ctx.scheduling_points(i).size(), points.size());
      for (std::size_t k = 0; k < points.size(); ++k) {
        EXPECT_DOUBLE_EQ(ctx.scheduling_points(i)[k], points[k]);
        EXPECT_NEAR(ctx.fp_point_workloads(i)[k],
                    fp_workload(ts, i, points[k]), 1e-12);
      }
      // Job rows reassemble into W_i.
      std::vector<double> rebuilt(points.size(), 0.0);
      for (std::size_t j = 0; j <= i; ++j) {
        const std::vector<double> jobs = ctx.fp_point_jobs(i, j);
        for (std::size_t k = 0; k < points.size(); ++k) {
          rebuilt[k] += jobs[k] * ts[j].wcet;
        }
      }
      for (std::size_t k = 0; k < points.size(); ++k) {
        EXPECT_NEAR(rebuilt[k], ctx.fp_point_workloads(i)[k], 1e-12);
      }
    }
  }
}

TEST(AnalysisContext, SchedulabilityAgreesWithUncachedTest) {
  Rng rng(3003);
  for (std::uint64_t seed = 300; seed < 315; ++seed) {
    const TaskSet edf_ts = random_set(seed, 5, 0.65);
    const TaskSet fp_ts = sort_deadline_monotonic(edf_ts);
    const AnalysisContext edf_ctx(edf_ts);
    const AnalysisContext fp_ctx(fp_ts);
    for (int s = 0; s < 10; ++s) {
      const double period = rng.uniform(0.5, 8.0);
      const double usable = rng.uniform(0.05, 1.0) * period;
      const hier::SlotSupply slot(period, usable);
      EXPECT_EQ(hier::edf_schedulable(edf_ctx, slot),
                hier::edf_schedulable(edf_ts, slot))
          << "seed=" << seed << " P=" << period << " q=" << usable;
      EXPECT_EQ(hier::fp_schedulable(fp_ctx, slot),
                hier::fp_schedulable(fp_ts, slot))
          << "seed=" << seed << " P=" << period << " q=" << usable;
    }
  }
}

TEST(AnalysisContext, MinQuantumAgreesWithDirectEvaluation) {
  for (std::uint64_t seed = 400; seed < 410; ++seed) {
    const TaskSet ts = sort_deadline_monotonic(random_set(seed, 6, 0.55));
    const AnalysisContext ctx(ts);
    for (const double period : {0.5, 1.0, 2.0, 5.0}) {
      // EDF reference: per-point kernel, no caching.
      double edf_ref = 0.0;
      for (const double t : deadline_set(ts)) {
        edf_ref = std::max(
            edf_ref, hier::quantum_for_point(t, edf_demand(ts, t), period));
      }
      EXPECT_NEAR(hier::min_quantum(ctx, hier::Scheduler::EDF, period),
                  edf_ref, 1e-9);
      // FP reference.
      double fp_ref = 0.0;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        double best = std::numeric_limits<double>::infinity();
        for (const double t : scheduling_points(ts, i)) {
          best = std::min(best, hier::quantum_for_point(
                                    t, fp_workload(ts, i, t), period));
        }
        fp_ref = std::max(fp_ref, best);
      }
      EXPECT_NEAR(hier::min_quantum(ctx, hier::Scheduler::FP, period), fp_ref,
                  1e-9);
      // The TaskSet convenience overload routes through a context too.
      EXPECT_DOUBLE_EQ(hier::min_quantum(ts, hier::Scheduler::EDF, period),
                       hier::min_quantum(ctx, hier::Scheduler::EDF, period));
    }
  }
}

TEST(AnalysisContext, MinQuantumExactAgreesAcrossOverloads) {
  const TaskSet ts = sort_deadline_monotonic(random_set(7, 5, 0.5));
  const AnalysisContext ctx(ts);
  for (const double period : {1.0, 2.0}) {
    EXPECT_NEAR(
        hier::min_quantum_exact(ctx, hier::Scheduler::EDF, period),
        hier::min_quantum_exact(ts, hier::Scheduler::EDF, period), 1e-9);
    EXPECT_NEAR(hier::min_quantum_exact(ctx, hier::Scheduler::FP, period),
                hier::min_quantum_exact(ts, hier::Scheduler::FP, period),
                1e-9);
  }
}

TEST(AnalysisContext, EmptySetHasNoPoints) {
  const AnalysisContext ctx{TaskSet{}};
  EXPECT_TRUE(ctx.empty());
  EXPECT_TRUE(ctx.deadline_points().empty());
  EXPECT_TRUE(ctx.edf_demand_at_points().empty());
  EXPECT_DOUBLE_EQ(hier::min_quantum(ctx, hier::Scheduler::EDF, 1.0), 0.0);
}

}  // namespace
}  // namespace flexrt::rt
