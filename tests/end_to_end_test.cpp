// End-to-end chains across the whole stack: file format -> partitioning ->
// design solver -> (generalized) frames -> simulation with faults. These
// are the paths a downstream user strings together.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/design.hpp"
#include "core/general_frame.hpp"
#include "core/sensitivity.hpp"
#include "hier/response_time.hpp"
#include "io/task_io.hpp"
#include "rt/priority.hpp"
#include "sim/simulator.hpp"

namespace flexrt {
namespace {

using hier::Scheduler;

const char* kMixedWorkload =
    "brake   0.5  5      FT\n"
    "steer   0.5  8      FT\n"
    "sensorA 0.6  6      FS 0\n"
    "sensorB 0.8 12      FS 1\n"
    "infot   1.0 16      NF\n"
    "logging 2.0 40      NF\n"
    "camera  1.5 25      NF\n";

TEST(EndToEnd, FileToDesignToSimulation) {
  const io::ParsedSystem parsed =
      io::parse_mode_task_system_string(kMixedWorkload);
  const core::Design d =
      core::solve_design(parsed.system, Scheduler::EDF, {0.02, 0.02, 0.021},
                         core::DesignGoal::MinOverheadBandwidth);
  EXPECT_TRUE(core::verify_schedule(parsed.system, d.schedule,
                                    Scheduler::EDF));
  sim::SimOptions opt;
  opt.horizon = 2000.0;
  const sim::SimResult r = sim::simulate(parsed.system, d.schedule, opt);
  EXPECT_EQ(r.total_misses(), 0u);
  EXPECT_EQ(r.tasks.size(), 7u);
}

TEST(EndToEnd, FileToInterleavedFrameToSimulationWithFaults) {
  const io::ParsedSystem parsed =
      io::parse_mode_task_system_string(kMixedWorkload);
  core::GeneralFrame f = core::solve_interleaved(
      parsed.system, Scheduler::EDF, {0.01, 0.01, 0.01}, 6.0, 2);
  // Pad budgets 2% against the tick grid, shrinking slack.
  std::vector<core::GeneralSlot> padded(f.slots().begin(), f.slots().end());
  for (core::GeneralSlot& s : padded) s.usable *= 1.02;
  const core::GeneralFrame safe(f.period(), std::move(padded));
  ASSERT_TRUE(core::verify_frame(parsed.system, safe, Scheduler::EDF));

  sim::SimOptions opt;
  opt.horizon = 5000.0;
  opt.faults = {0.02, 2.0};
  opt.seed = 31337;
  const sim::SimResult r = sim::simulate(parsed.system, safe, opt);
  EXPECT_EQ(r.total_misses(), 0u);
  // The fault contract must hold under the generalized frame too.
  for (const sim::TaskStats& t : r.tasks) {
    if (t.mode != rt::Mode::NF) {
      EXPECT_EQ(t.corrupted_outputs, 0u) << t.name;
    }
  }
  EXPECT_GT(r.faults.injected, 20u);
}

TEST(EndToEnd, SensitivityMarginSurvivesSimulation) {
  // Scale the tightest task to 90% of its margin; the grown system must
  // still simulate miss-free under the same (slack-distributed) schedule.
  const io::ParsedSystem parsed =
      io::parse_mode_task_system_string(kMixedWorkload);
  const core::Design d =
      core::solve_design(parsed.system, Scheduler::EDF, {0.02, 0.02, 0.02},
                         core::DesignGoal::MaxSlackBandwidth);
  const core::ModeSchedule schedule = core::distribute_slack(d);

  const double margin = core::wcet_scale_margin(parsed.system, schedule,
                                                Scheduler::EDF, "sensorA");
  ASSERT_GT(margin, 1.0);
  const double scale = 1.0 + (margin - 1.0) * 0.9;
  std::string grown_file = kMixedWorkload;
  const std::string needle = "sensorA 0.6";
  grown_file.replace(grown_file.find(needle), needle.size(),
                     "sensorA " + std::to_string(0.6 * scale));
  const io::ParsedSystem grown =
      io::parse_mode_task_system_string(grown_file);
  ASSERT_TRUE(core::verify_schedule(grown.system, schedule, Scheduler::EDF));

  sim::SimOptions opt;
  opt.horizon = 3000.0;
  const sim::SimResult r = sim::simulate(grown.system, schedule, opt);
  EXPECT_EQ(r.total_misses(), 0u);
}

TEST(EndToEnd, ResponseBoundsHoldUnderSporadicArrivals) {
  // Sporadic release jitter only reduces interference; the critical-instant
  // response bounds must keep dominating simulated responses.
  const io::ParsedSystem parsed =
      io::parse_mode_task_system_string(kMixedWorkload);
  const core::Design d =
      core::solve_design(parsed.system, Scheduler::FP, {0.02, 0.02, 0.021},
                         core::DesignGoal::MinOverheadBandwidth);
  sim::SimOptions opt;
  opt.horizon = 4000.0;
  opt.scheduler = Scheduler::FP;
  opt.sporadic_jitter = 1.5;
  opt.seed = 99;
  const sim::SimResult r = sim::simulate(parsed.system, d.schedule, opt);
  EXPECT_EQ(r.total_misses(), 0u);
  for (const rt::Mode mode : core::kAllModes) {
    for (const rt::TaskSet& raw : parsed.system.partitions(mode)) {
      if (raw.empty()) continue;
      const rt::TaskSet ts = rt::sort_deadline_monotonic(raw);
      const auto bounds =
          hier::fp_response_times(ts, d.schedule.exact_supply(mode));
      for (std::size_t i = 0; i < ts.size(); ++i) {
        ASSERT_TRUE(bounds[i].has_value()) << ts[i].name;
        for (const sim::TaskStats& stat : r.tasks) {
          if (stat.name == ts[i].name) {
            EXPECT_LE(to_units(stat.max_response), *bounds[i] + 1e-5)
                << ts[i].name;
          }
        }
      }
    }
  }
}

TEST(EndToEnd, ModesWithoutTasksAreHandledThroughout) {
  // FS-only workload: FT and NF get zero quanta yet everything must work.
  const io::ParsedSystem parsed = io::parse_mode_task_system_string(
      "a 1 8 FS\n"
      "b 1 10 FS\n");
  const core::Design d =
      core::solve_design(parsed.system, Scheduler::EDF, {0.0, 0.01, 0.0},
                         core::DesignGoal::MaxSlackBandwidth);
  EXPECT_DOUBLE_EQ(d.schedule.ft.usable, 0.0);
  EXPECT_DOUBLE_EQ(d.schedule.nf.usable, 0.0);
  EXPECT_TRUE(core::verify_schedule(parsed.system, d.schedule,
                                    Scheduler::EDF));
  sim::SimOptions opt;
  opt.horizon = 1000.0;
  const sim::SimResult r = sim::simulate(parsed.system, d.schedule, opt);
  EXPECT_EQ(r.total_misses(), 0u);
  EXPECT_GT(r.tasks[0].completions, 0u);
}

}  // namespace
}  // namespace flexrt
