// Runtime behavior of the annotated lock primitives in
// common/annotations.hpp. The *static* half of their contract -- that the
// clang Thread Safety Analysis rejects unguarded access -- is proven at
// configure time by the tests/static/ negative-compilation probes; these
// tests pin the dynamic half: the wrappers actually lock, actually
// exclude, and CondVar actually wakes waiters.
#include "common/annotations.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace flexrt {
namespace {

TEST(Annotations, MutexLockExcludes) {
  // 4 threads x 10k unguarded ++ on a plain int would almost surely lose
  // updates; through sys::MutexLock the count is exact. (TSan CI runs this
  // test too, which would flag any hole in the wrapper's exclusion.)
  struct Counted {
    sys::Mutex mu;
    int n GUARDED_BY(mu) = 0;
  } state;

  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&state] {
      for (int i = 0; i < kIters; ++i) {
        sys::MutexLock lock(state.mu);
        ++state.n;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  sys::MutexLock lock(state.mu);
  EXPECT_EQ(state.n, kThreads * kIters);
}

TEST(Annotations, TryLockReportsContention) {
  sys::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // Same thread, second acquisition: std::mutex try_lock on a held mutex
  // must be probed from another thread to have defined behavior.
  bool second = true;
  std::thread([&mu, &second] { second = mu.try_lock(); }).join();
  EXPECT_FALSE(second);
  mu.unlock();

  std::thread([&mu] {
    ASSERT_TRUE(mu.try_lock());
    mu.unlock();
  }).join();
}

TEST(Annotations, CondVarWakesWaiter) {
  struct Gate {
    sys::Mutex mu;
    sys::CondVar cv;
    bool open GUARDED_BY(mu) = false;
    int observed GUARDED_BY(mu) = 0;
  } gate;

  std::thread waiter([&gate] {
    sys::MutexLock lock(gate.mu);
    while (!gate.open) gate.cv.wait(gate.mu);
    ++gate.observed;
  });

  {
    sys::MutexLock lock(gate.mu);
    gate.open = true;
  }
  gate.cv.notify_all();
  waiter.join();

  sys::MutexLock lock(gate.mu);
  EXPECT_EQ(gate.observed, 1);
}

TEST(Annotations, CondVarNotifyOneWakesExactlyEnough) {
  struct Queue {
    sys::Mutex mu;
    sys::CondVar cv;
    int tokens GUARDED_BY(mu) = 0;
    int consumed GUARDED_BY(mu) = 0;
    bool done GUARDED_BY(mu) = false;
  } q;

  constexpr int kConsumers = 3;
  constexpr int kTokens = 50;
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&q] {
      for (;;) {
        sys::MutexLock lock(q.mu);
        while (q.tokens == 0 && !q.done) q.cv.wait(q.mu);
        if (q.tokens == 0) return;  // done and drained
        --q.tokens;
        ++q.consumed;
      }
    });
  }

  for (int i = 0; i < kTokens; ++i) {
    {
      sys::MutexLock lock(q.mu);
      ++q.tokens;
    }
    q.cv.notify_one();
  }
  {
    sys::MutexLock lock(q.mu);
    q.done = true;
  }
  q.cv.notify_all();
  for (std::thread& th : consumers) th.join();

  sys::MutexLock lock(q.mu);
  EXPECT_EQ(q.consumed, kTokens);
  EXPECT_EQ(q.tokens, 0);
}

}  // namespace
}  // namespace flexrt
