// Reproduction tests for every number the paper reports on the 13-task
// example: Figure 4's five marked points and all rows of Table 2. These are
// the ground truth of the whole library: the same inputs must give the same
// outputs to the printed precision (3 decimals).
#include <gtest/gtest.h>

#include "core/design.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"

namespace flexrt {
namespace {

using hier::Scheduler;

class PaperValues : public ::testing::Test {
 protected:
  core::ModeTaskSystem sys = core::paper_example();
  core::PaperReference ref;
};

TEST_F(PaperValues, Table1TaskSetShape) {
  const rt::TaskSet all = core::paper_example_tasks();
  ASSERT_EQ(all.size(), 13u);
  EXPECT_EQ(all.by_mode(rt::Mode::NF).size(), 5u);
  EXPECT_EQ(all.by_mode(rt::Mode::FS).size(), 4u);
  EXPECT_EQ(all.by_mode(rt::Mode::FT).size(), 4u);
  EXPECT_EQ(sys.num_tasks(), 13u);
}

TEST_F(PaperValues, Table2RowA_RequiredBandwidth) {
  EXPECT_NEAR(sys.required_bandwidth(rt::Mode::FT), ref.req_util_ft, 5e-4);
  EXPECT_NEAR(sys.required_bandwidth(rt::Mode::FS), ref.req_util_fs, 5e-4);
  EXPECT_NEAR(sys.required_bandwidth(rt::Mode::NF), ref.req_util_nf, 5e-4);
}

TEST_F(PaperValues, Figure4Point1_MaxPeriodEdfNoOverhead) {
  const double p = core::max_feasible_period(sys, Scheduler::EDF, 0.0);
  EXPECT_NEAR(p, ref.p_max_edf_no_overhead, 1e-3);
}

TEST_F(PaperValues, Figure4Point2_MaxPeriodRmNoOverhead) {
  const double p = core::max_feasible_period(sys, Scheduler::FP, 0.0);
  EXPECT_NEAR(p, ref.p_max_rm_no_overhead, 1e-3);
}

TEST_F(PaperValues, Figure4Point3_MaxOverheadEdf) {
  const auto lim = core::max_admissible_overhead(sys, Scheduler::EDF);
  EXPECT_NEAR(lim.max_overhead, ref.max_overhead_edf, 1e-3);
}

TEST_F(PaperValues, Figure4Point4_MaxOverheadRm) {
  const auto lim = core::max_admissible_overhead(sys, Scheduler::FP);
  EXPECT_NEAR(lim.max_overhead, ref.max_overhead_rm, 1e-3);
}

TEST_F(PaperValues, Figure4Point5_MaxPeriodEdfWithOverhead) {
  const double p = core::max_feasible_period(sys, Scheduler::EDF, ref.o_tot);
  EXPECT_NEAR(p, ref.p_max_edf_o005, 1e-3);
}

TEST_F(PaperValues, Figure4_EdfRegionContainsRmRegion) {
  // "as expected, the EDF region is larger than the RM one".
  for (double p = 0.2; p <= 3.4; p += 0.1) {
    const double edf = core::feasibility_margin(sys, Scheduler::EDF, p);
    const double rm = core::feasibility_margin(sys, Scheduler::FP, p);
    EXPECT_GE(edf, rm - 1e-9) << "at P=" << p;
  }
}

TEST_F(PaperValues, Table2RowB_MinOverheadDesign) {
  const core::Overheads ov{ref.o_tot / 3, ref.o_tot / 3, ref.o_tot / 3};
  const core::Design d = core::solve_design(
      sys, Scheduler::EDF, ov, core::DesignGoal::MinOverheadBandwidth);
  EXPECT_NEAR(d.schedule.period, 2.966, 1e-3);
  EXPECT_NEAR(d.schedule.ft.usable, ref.b_q_ft, 1e-3);
  EXPECT_NEAR(d.schedule.fs.usable, ref.b_q_fs, 1e-3);
  EXPECT_NEAR(d.schedule.nf.usable, ref.b_q_nf, 1e-3);
  EXPECT_NEAR(d.schedule.slack(), 0.0, 1e-3);
  // Paper's cross-check: allocated NF bandwidth 0.275 >= required 0.250.
  EXPECT_NEAR(d.schedule.allocated_bandwidth(rt::Mode::NF), 0.275, 1e-3);
  EXPECT_GE(d.schedule.allocated_bandwidth(rt::Mode::NF),
            sys.required_bandwidth(rt::Mode::NF));
  EXPECT_NEAR(d.schedule.allocated_bandwidth(rt::Mode::FT), 0.276, 1e-3);
  EXPECT_NEAR(d.schedule.allocated_bandwidth(rt::Mode::FS), 0.432, 1e-3);
  EXPECT_TRUE(core::verify_schedule(sys, d.schedule, Scheduler::EDF));
}

TEST_F(PaperValues, Table2RowC_MaxSlackDesign) {
  const core::Overheads ov{ref.o_tot / 3, ref.o_tot / 3, ref.o_tot / 3};
  const core::Design d = core::solve_design(
      sys, Scheduler::EDF, ov, core::DesignGoal::MaxSlackBandwidth);
  EXPECT_NEAR(d.schedule.period, ref.c_period, 1e-3);
  EXPECT_NEAR(d.schedule.ft.usable, ref.c_q_ft, 1e-3);
  EXPECT_NEAR(d.schedule.fs.usable, ref.c_q_fs, 1e-3);
  EXPECT_NEAR(d.schedule.nf.usable, ref.c_q_nf, 1e-3);
  EXPECT_NEAR(d.schedule.slack(), ref.c_slack, 1e-3);
  EXPECT_NEAR(d.schedule.slack_bandwidth(), ref.c_slack_util, 1e-3);
  EXPECT_TRUE(core::verify_schedule(sys, d.schedule, Scheduler::EDF));
}

TEST_F(PaperValues, RowCBeatsRowBOnSlackBandwidth) {
  const core::Overheads ov{0.05 / 3, 0.05 / 3, 0.05 / 3};
  const auto b = core::solve_design(sys, Scheduler::EDF, ov,
                                    core::DesignGoal::MinOverheadBandwidth);
  const auto c = core::solve_design(sys, Scheduler::EDF, ov,
                                    core::DesignGoal::MaxSlackBandwidth);
  EXPECT_GT(c.schedule.slack_bandwidth(),
            b.schedule.slack_bandwidth() + 0.1);
  // ... and row B beats row C on overhead bandwidth (its design goal).
  EXPECT_LT(b.schedule.overhead_bandwidth(), c.schedule.overhead_bandwidth());
}

TEST_F(PaperValues, RmDesignAlsoSolvable) {
  // The paper notes "the same reasoning applies to the RM scheduling
  // algorithm as well": both goals must be solvable under RM with an
  // overhead inside the RM region (max 0.129).
  const core::Overheads ov{0.04 / 3, 0.04 / 3, 0.04 / 3};
  for (const auto goal : {core::DesignGoal::MinOverheadBandwidth,
                          core::DesignGoal::MaxSlackBandwidth}) {
    const auto d = core::solve_design(sys, Scheduler::FP, ov, goal);
    EXPECT_TRUE(core::verify_schedule(sys, d.schedule, Scheduler::FP))
        << to_string(goal);
  }
}

}  // namespace
}  // namespace flexrt
