// Fault-tolerant fleet analysis: the fault::recovery helpers' contract, the
// FaultSweepRequest semantics (per-class verdicts, monotone degradation in
// the fault rate, baseline consistency against the direct baseline calls)
// and streamed==buffered equivalence for the new request type.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "baseline/primary_backup.hpp"
#include "baseline/static_config.hpp"
#include "common/error.hpp"
#include "core/paper_example.hpp"
#include "core/study_runner.hpp"
#include "fault/recovery.hpp"
#include "gen/taskset_gen.hpp"
#include "svc/analysis_service.hpp"

namespace flexrt::svc {
namespace {

using hier::Scheduler;

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- fault::recovery helper properties -------------------------------------

TEST(FaultRecovery, GapIsStatisticalSeparationFlooredByTheHardMinimum) {
  EXPECT_EQ(fault::recovery_gap({0.0, 1.0}), kInf);
  EXPECT_EQ(fault::recovery_gap({-1.0, 1.0}), kInf);
  EXPECT_EQ(fault::recovery_gap({0.001, 1.0}), 1000.0);  // 1/rate dominates
  EXPECT_EQ(fault::recovery_gap({10.0, 2.0}), 2.0);      // floor dominates
}

TEST(FaultRecovery, RecoveryTaskIsLargestJobPerGapWithImplicitDeadline) {
  rt::TaskSet channel{{"a", 0.2, 4.0, 4.0, rt::Mode::FS},
                      {"b", 0.5, 8.0, 6.0, rt::Mode::FS}};
  const std::optional<rt::Task> rec = fault::recovery_task(channel, 50.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->wcet, 0.5);  // the largest WCET a fault can force again
  EXPECT_EQ(rec->period, 50.0);
  EXPECT_EQ(rec->deadline, 50.0);  // implicit: done before the next strike

  EXPECT_FALSE(fault::recovery_task(rt::TaskSet{}, 50.0).has_value());
  EXPECT_FALSE(fault::recovery_task(channel, kInf).has_value());
  EXPECT_THROW(fault::recovery_task(channel, -1.0), ModelError);
  // Faults closer than one full re-execution: no valid recovery task.
  EXPECT_THROW(fault::recovery_task(channel, 0.25), ModelError);
}

TEST(FaultRecovery, DedicatedChannelDegradesMonotonicallyWithTheGap) {
  rt::TaskSet channel{{"a", 1.0, 4.0, 4.0, rt::Mode::FS},
                      {"b", 1.0, 8.0, 8.0, rt::Mode::FS}};
  // U = 0.375; the recovery demand adds 1.0/gap of utilization and one
  // full re-execution of interference per gap.
  EXPECT_TRUE(fault::fs_schedulable_dedicated(channel, Scheduler::EDF, kInf));
  EXPECT_TRUE(fault::fs_schedulable_dedicated(channel, Scheduler::EDF, 100.0));
  // gap == max wcet: recovery alone saturates the processor.
  EXPECT_FALSE(fault::fs_schedulable_dedicated(channel, Scheduler::EDF, 1.0));
  EXPECT_FALSE(fault::fs_schedulable_dedicated(channel, Scheduler::EDF, 0.5));
  EXPECT_FALSE(fault::fs_schedulable_dedicated(channel, Scheduler::EDF, 0.0));
  // Verdicts are monotone in the gap: once schedulable, larger gaps stay so.
  bool prev = false;
  for (const double gap : {2.0, 4.0, 8.0, 16.0, 64.0, 256.0}) {
    const bool ok = fault::fs_schedulable_dedicated(channel, Scheduler::EDF,
                                                    gap);
    EXPECT_TRUE(ok || !prev) << "verdict regressed at gap " << gap;
    prev = ok;
  }
  // The empty channel has nothing to lose.
  EXPECT_TRUE(fault::fs_schedulable_dedicated(rt::TaskSet{}, Scheduler::EDF,
                                              0.0));
}

TEST(FaultRecovery, FpVariantResortsTheChannelDeadlineMonotonic) {
  // An unsorted channel must not trip the FP analysis' priority-order
  // requirement once the recovery task is appended.
  rt::TaskSet channel{{"slow", 0.5, 16.0, 16.0, rt::Mode::FS},
                      {"fast", 0.2, 2.0, 2.0, rt::Mode::FS}};
  EXPECT_TRUE(fault::fs_schedulable_dedicated(channel, Scheduler::FP, 100.0));
  EXPECT_FALSE(fault::fs_schedulable_dedicated(channel, Scheduler::FP, 0.5));
}

TEST(FaultRecovery, CorruptionExposureIsRateTimesCoreOccupancy) {
  EXPECT_EQ(fault::corruption_exposure(0.0, 0.8), 0.0);
  EXPECT_EQ(fault::corruption_exposure(-1.0, 0.8), 0.0);
  EXPECT_DOUBLE_EQ(fault::corruption_exposure(0.1, 0.8), 0.1 * 0.8 / 4.0);
  EXPECT_DOUBLE_EQ(fault::corruption_exposure(2.0, 0.0), 0.0);
}

// --- FaultSweepRequest on the paper example --------------------------------

class FaultSweepOnPaperExample : public ::testing::Test {
 protected:
  FaultSweepOnPaperExample() : sys_(core::paper_example()) {
    service_.add_system(sys_, "paper");
  }

  FaultSweepRequest request() const {
    FaultSweepRequest req;
    req.rates = {0.0, 1e-3, 1e-2, 0.1, 1.0, 10.0};
    req.min_separation = 1.0;
    req.overheads = {0.02, 0.02, 0.02};
    req.goal = core::DesignGoal::MaxSlackBandwidth;
    return req;
  }

  core::ModeTaskSystem sys_;
  AnalysisService service_;
};

TEST_F(FaultSweepOnPaperExample, NominalDesignMatchesSolveAndCoversAllRates) {
  const FaultSweepRequest req = request();
  const FaultSweepResult r = service_.fault_sweep_one(0, req);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.feasible) << r.infeasible;
  const SolveResult solved = service_.solve_one(
      0, {req.alg, req.overheads, req.goal, req.search, req.accuracy});
  EXPECT_EQ(r.schedule.period, solved.design.schedule.period);
  EXPECT_EQ(r.schedule.fs.usable, solved.design.schedule.fs.usable);
  ASSERT_EQ(r.points.size(), req.rates.size());
  for (std::size_t k = 0; k < req.rates.size(); ++k) {
    EXPECT_EQ(r.points[k].rate, req.rates[k]);
  }
}

TEST_F(FaultSweepOnPaperExample, RateZeroIsTheFaultFreePlatform) {
  const FaultSweepResult r = service_.fault_sweep_one(0, request());
  ASSERT_TRUE(r.ok());
  const FaultRatePoint& p = r.points.front();
  EXPECT_TRUE(std::isinf(p.recovery_gap));
  // No faults: every class keeps its designed guarantee and nothing corrupts.
  EXPECT_TRUE(p.ft_ok);
  EXPECT_TRUE(p.fs_ok);
  EXPECT_TRUE(p.nf_ok);
  EXPECT_EQ(p.nf_exposure, 0.0);
}

TEST_F(FaultSweepOnPaperExample, VerdictsDegradeMonotonicallyInTheRate) {
  const FaultSweepResult r = service_.fault_sweep_one(0, request());
  ASSERT_TRUE(r.ok());
  // FT masks and NF ignores timing at every rate; FS may flip to
  // unschedulable as the recovery gap shrinks, and once lost it stays lost
  // (rates are swept in increasing order). Exposure grows with the rate.
  bool fs_lost = false;
  double prev_exposure = -1.0;
  double prev_gap = kInf;
  for (const FaultRatePoint& p : r.points) {
    EXPECT_TRUE(p.ft_ok) << "rate " << p.rate;
    EXPECT_TRUE(p.nf_ok) << "rate " << p.rate;
    EXPECT_LE(p.recovery_gap, prev_gap) << "rate " << p.rate;
    prev_gap = p.recovery_gap;
    EXPECT_GT(p.nf_exposure, prev_exposure) << "rate " << p.rate;
    prev_exposure = p.nf_exposure;
    if (fs_lost) {
      EXPECT_FALSE(p.fs_ok) << "rate " << p.rate;
    }
    if (!p.fs_ok) fs_lost = true;
  }
  // The paper example's FS channels survive one fault per 1000 units but
  // not ten faults per unit -- the sweep's two endpoints disagree, so the
  // curve is informative, not vacuous.
  EXPECT_TRUE(r.points.front().fs_ok);
  EXPECT_FALSE(r.points.back().fs_ok);
}

TEST_F(FaultSweepOnPaperExample, BaselineVerdictsMatchTheDirectBaselineCalls) {
  const FaultSweepRequest req = request();
  const FaultSweepResult r = service_.fault_sweep_one(0, req);
  ASSERT_TRUE(r.ok());

  rt::TaskSet all;
  for (const rt::Mode mode : core::kAllModes) {
    for (const rt::Task& t : sys_.mode_tasks(mode)) all.add(t);
  }
  const bool pb = baseline::try_primary_backup(all, req.alg);
  const bool sft =
      baseline::try_static(all, baseline::StaticConfig::AllFT, req.alg)
          .schedulable;
  const bool snf =
      baseline::try_static(all, baseline::StaticConfig::AllNF, req.alg)
          .schedulable;
  const auto fs_bins =
      baseline::static_partition(all, baseline::StaticConfig::AllFS);

  for (const FaultRatePoint& p : r.points) {
    // PB and the FT/NF static platforms are fault-rate independent: active
    // backups mask, AllFT masks, AllNF never promised protection.
    EXPECT_EQ(p.pb_ok, pb) << "rate " << p.rate;
    EXPECT_EQ(p.static_ft_ok, sft) << "rate " << p.rate;
    EXPECT_EQ(p.static_nf_ok, snf) << "rate " << p.rate;
    // The static-FS verdict is the dedicated recovery test per packed bin.
    bool sfs = fs_bins.has_value();
    if (fs_bins) {
      for (const rt::TaskSet& bin : *fs_bins) {
        sfs = sfs && fault::fs_schedulable_dedicated(bin, req.alg,
                                                     p.recovery_gap);
      }
    }
    EXPECT_EQ(p.static_fs_ok, sfs) << "rate " << p.rate;
  }
  // The paper example hosts FT tasks, which the all-FS platform cannot
  // satisfy at any rate -- the flexible platform's core advantage.
  EXPECT_FALSE(fs_bins.has_value());
}

TEST_F(FaultSweepOnPaperExample, BaselinesCanBeSwitchedOff) {
  FaultSweepRequest req = request();
  req.with_baselines = false;
  const FaultSweepResult r = service_.fault_sweep_one(0, req);
  ASSERT_TRUE(r.ok());
  for (const FaultRatePoint& p : r.points) {
    EXPECT_FALSE(p.pb_ok);
    EXPECT_FALSE(p.static_ft_ok);
    EXPECT_FALSE(p.static_fs_ok);
    EXPECT_FALSE(p.static_nf_ok);
  }
}

TEST_F(FaultSweepOnPaperExample, InfeasibleNominalDesignSweepsNothing) {
  FaultSweepRequest req = request();
  req.overheads = {10.0, 10.0, 10.0};  // overheads dwarf every period
  req.search.p_max = 3.0;
  const FaultSweepResult r = service_.fault_sweep_one(0, req);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.infeasible.empty());
  EXPECT_TRUE(r.points.empty());
}

// --- fleet + streaming -----------------------------------------------------

TEST(FaultSweepFleet, StreamedResultsEqualBufferedResultsWithErrorRows) {
  // A generated fleet with an unpackable entry mid-stream: the buffered and
  // streamed paths must agree row for row, and the unpackable entry must
  // surface as an error row in both, never a lost ticket.
  core::StudyOptions study;
  study.trials = 7;
  study.base_seed = 0xFA17;
  AnalysisService service;
  service.add_fleet(study,
                    [](std::size_t t, Rng&) -> std::optional<core::ModeTaskSystem> {
                      if (t == 3) return std::nullopt;
                      return core::paper_example();
                    });

  FaultSweepRequest req;
  req.rates = {0.0, 0.01, 1.0};
  req.overheads = {0.02, 0.02, 0.02};
  req.goal = core::DesignGoal::MaxSlackBandwidth;

  const std::vector<FaultSweepResult> want = service.fault_sweep(req);
  std::vector<FaultSweepResult> got;
  const StreamStats stats = service.fault_sweep(
      req, [&](const FaultSweepResult& r) { got.push_back(r); });

  EXPECT_EQ(stats.emitted, want.size());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].system, i);
    EXPECT_EQ(got[i].name, want[i].name);
    EXPECT_EQ(got[i].error, want[i].error);
    EXPECT_EQ(got[i].feasible, want[i].feasible);
    ASSERT_EQ(got[i].points.size(), want[i].points.size());
    for (std::size_t k = 0; k < want[i].points.size(); ++k) {
      EXPECT_EQ(got[i].points[k].rate, want[i].points[k].rate);
      EXPECT_EQ(got[i].points[k].fs_ok, want[i].points[k].fs_ok);
      EXPECT_EQ(got[i].points[k].nf_exposure, want[i].points[k].nf_exposure);
      EXPECT_EQ(got[i].points[k].pb_ok, want[i].points[k].pb_ok);
    }
  }
  EXPECT_EQ(want[3].error, "packing failed");
  EXPECT_TRUE(want[3].points.empty());
  EXPECT_EQ(got[3].error, "packing failed");
}

}  // namespace
}  // namespace flexrt::svc
