// The multi-system analysis service: request/response round-trips for every
// request type, bit-for-bit parity with the direct BatchEngine/solve_design
// paths under the fixed accuracy policy, adaptive-budget convergence with
// provenance, and fleet semantics (shard layout independence, pack-failure
// accounting).
#include "svc/analysis_service.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "core/analysis_engine.hpp"
#include "core/design.hpp"
#include "core/integration.hpp"
#include "core/paper_example.hpp"
#include "core/sensitivity.hpp"
#include "gen/taskset_gen.hpp"
#include "svc/jsonl.hpp"

namespace flexrt::svc {
namespace {

using hier::Scheduler;

class ServiceOnPaperExample : public ::testing::Test {
 protected:
  ServiceOnPaperExample() : sys_(core::paper_example()) {
    service_.add_system(sys_, "paper");
  }
  core::ModeTaskSystem sys_;
  AnalysisService service_;
};

// --- fixed-policy parity: service answers == engine answers, bitwise -----

TEST_F(ServiceOnPaperExample, SolveMatchesSolveDesignBitForBit) {
  for (const Scheduler alg : {Scheduler::EDF, Scheduler::FP}) {
    for (const core::DesignGoal goal :
         {core::DesignGoal::MinOverheadBandwidth,
          core::DesignGoal::MaxSlackBandwidth}) {
      const core::Overheads ov{0.01, 0.02, 0.02};
      const SolveResult r = service_.solve_one(0, {alg, ov, goal, {}, {}});
      ASSERT_TRUE(r.ok()) << r.error;
      ASSERT_TRUE(r.feasible);
      const core::Design d = core::solve_design(sys_, alg, ov, goal);
      EXPECT_EQ(r.design.schedule.period, d.schedule.period);
      EXPECT_EQ(r.design.schedule.ft.usable, d.schedule.ft.usable);
      EXPECT_EQ(r.design.schedule.fs.usable, d.schedule.fs.usable);
      EXPECT_EQ(r.design.schedule.nf.usable, d.schedule.nf.usable);
      EXPECT_EQ(r.design.min_quantum_ft, d.min_quantum_ft);
    }
  }
}

TEST_F(ServiceOnPaperExample, MinQuantumMatchesEngineBitForBit) {
  for (const Scheduler alg : {Scheduler::EDF, Scheduler::FP}) {
    const analysis::BatchEngine engine(sys_, alg);
    for (const double period : {0.5, 1.0, 2.0}) {
      const MinQuantumResult r =
          service_.min_quantum_one(0, {alg, period, false, {}});
      ASSERT_TRUE(r.ok());
      for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
        EXPECT_EQ(r.mode_quantum[m],
                  engine.mode_min_quantum(core::kAllModes[m], period));
      }
      EXPECT_EQ(r.margin, engine.feasibility_margin(period));
      // ... and the core:: wrapper rides the same path.
      EXPECT_EQ(r.margin, core::feasibility_margin(sys_, alg, period));
    }
  }
}

TEST_F(ServiceOnPaperExample, RegionSweepMatchesEngineBitForBit) {
  core::SearchOptions opts;
  opts.p_min = 0.2;
  opts.p_max = 2.0;
  opts.grid_step = 0.1;
  const analysis::BatchEngine engine(sys_, Scheduler::EDF);
  const RegionSweepResult r =
      service_.region_sweep_one(0, {Scheduler::EDF, opts, {}});
  ASSERT_TRUE(r.ok());
  const std::vector<core::RegionSample> want = engine.sample_region(opts);
  ASSERT_EQ(r.samples.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(r.samples[i].period, want[i].period);
    EXPECT_EQ(r.samples[i].margin, want[i].margin);
  }
}

TEST_F(ServiceOnPaperExample, SensitivityMatchesEngineBitForBit) {
  const core::Design d = core::solve_design(
      sys_, Scheduler::EDF, {0.01, 0.01, 0.01},
      core::DesignGoal::MaxSlackBandwidth);
  SensitivityRequest req;
  req.alg = Scheduler::EDF;
  req.schedule = d.schedule;
  const SensitivityResult r = service_.sensitivity_one(0, req);
  ASSERT_TRUE(r.ok());
  const analysis::BatchEngine engine(sys_, Scheduler::EDF);
  const std::vector<core::TaskMargin> want =
      engine.sensitivity_report(d.schedule);
  ASSERT_EQ(r.margins.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(r.margins[i].name, want[i].name);
    EXPECT_EQ(r.margins[i].scale_margin, want[i].scale_margin);
  }
  EXPECT_EQ(r.global_margin, engine.global_scale_margin(d.schedule));

  // Single-task form: one row, matching the all-tasks report.
  req.task = want.at(2).name;
  const SensitivityResult one = service_.sensitivity_one(0, req);
  ASSERT_EQ(one.margins.size(), 1u);
  EXPECT_EQ(one.margins[0].name, want[2].name);
  EXPECT_EQ(one.margins[0].scale_margin, want[2].scale_margin);
  EXPECT_EQ(one.margins[0].wcet, want[2].wcet);
}

TEST_F(ServiceOnPaperExample, VerifyRoundTrip) {
  const core::Design d = core::solve_design(
      sys_, Scheduler::EDF, {0.0, 0.0, 0.0},
      core::DesignGoal::MaxSlackBandwidth);
  const VerifyResult good =
      service_.verify_one(0, {Scheduler::EDF, d.schedule, false, {}});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.schedulable);
  EXPECT_TRUE(good.prov.dl_exact);

  core::ModeSchedule broken = d.schedule;
  broken.ft.usable *= 0.5;  // starve the FT channel
  const VerifyResult bad =
      service_.verify_one(0, {Scheduler::EDF, broken, false, {}});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.schedulable);
}

// --- provenance + adaptive accuracy ---------------------------------------

TEST_F(ServiceOnPaperExample, FixedPolicyReportsExactProvenance) {
  const MinQuantumResult r =
      service_.min_quantum_one(0, {Scheduler::EDF, 1.0, false, {}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.prov.dl_exact);  // paper example's dlSet fits the budget
  EXPECT_EQ(r.prov.budget, rt::kDefaultDlPointBudget);
  EXPECT_EQ(r.prov.probes, 1u);
  ASSERT_TRUE(r.prov.gap.has_value());
  EXPECT_EQ(*r.prov.gap, 0.0);
  EXPECT_GE(r.prov.wall_ms, 0.0);
}

TEST_F(ServiceOnPaperExample, AdaptiveLadderReachesTheExactAnswer) {
  // Seed the ladder with a budget far too small for even this tiny system:
  // the ladder must climb until the deadline sets are exact and land on
  // the fixed-policy answer with gap 0.
  const MinQuantumRequest fixed{Scheduler::EDF, 1.0, false, {}};
  MinQuantumRequest adaptive = fixed;
  adaptive.accuracy = AccuracyPolicy::adaptive(1e-6, /*initial_points=*/4);
  const MinQuantumResult want = service_.min_quantum_one(0, fixed);
  const MinQuantumResult got = service_.min_quantum_one(0, adaptive);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.prov.dl_exact);
  ASSERT_TRUE(got.prov.gap.has_value());
  EXPECT_EQ(*got.prov.gap, 0.0);
  EXPECT_GT(got.prov.probes, 1u);
  EXPECT_GT(got.prov.budget, 4u);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_NEAR(got.mode_quantum[m], want.mode_quantum[m], 1e-6);
  }
}

class ServiceOnStressSet : public ::testing::Test {
 protected:
  ServiceOnStressSet() {
    gen::StressParams sp;
    sp.num_tasks = 200;
    sp.total_utilization = 0.5;
    Rng rng(0xABCDEF);
    stress_ = gen::generate_stress_set(sp, rng);
    // A single NF partition carrying the whole hyperperiod-hostile set.
    service_.add_system(core::ModeTaskSystem({}, {}, {stress_}), "stress");
  }
  rt::TaskSet stress_;
  AnalysisService service_;
};

TEST_F(ServiceOnStressSet, AdaptiveMinQuantumConvergesAndReportsBudget) {
  const double period = 0.4;
  MinQuantumRequest small{Scheduler::EDF, period, false,
                          AccuracyPolicy::fixed(1u << 8)};
  const MinQuantumResult at_small = service_.min_quantum_one(0, small);
  ASSERT_TRUE(at_small.ok());
  EXPECT_FALSE(at_small.prov.dl_exact);  // hyperperiod-hostile: condensed
  EXPECT_FALSE(at_small.prov.gap.has_value());  // fixed + condensed: unknown

  const double tol = 1e-3;
  MinQuantumRequest adaptive = small;
  adaptive.accuracy = AccuracyPolicy::adaptive(tol, 1u << 8, 1u << 18);
  const MinQuantumResult r = service_.min_quantum_one(0, adaptive);
  ASSERT_TRUE(r.ok());
  // Converged: the answer moved <= tol in the last round (or turned exact),
  // strictly before the budget cap -- the stop was the tolerance, not
  // ladder exhaustion.
  ASSERT_TRUE(r.prov.gap.has_value());
  EXPECT_LE(*r.prov.gap, tol);
  EXPECT_GT(r.prov.probes, 1u);
  EXPECT_GT(r.prov.budget, std::size_t{1} << 8);
  EXPECT_LT(r.prov.budget, std::size_t{1} << 18);
  // Monotone non-worsening: growing the budget only refines the safe
  // over-approximation, so the converged quantum is never above the
  // small-budget one.
  const double q_small = at_small.mode_quantum[2];
  const double q_adapt = r.mode_quantum[2];
  EXPECT_LE(q_adapt, q_small + 1e-9);
  EXPECT_GT(q_adapt, 0.0);
}

class ServiceOnFpStressSet : public ::testing::Test {
 protected:
  ServiceOnFpStressSet() {
    gen::StressParams sp;
    sp.num_tasks = 200;
    sp.total_utilization = 0.5;
    Rng rng(0xFB0);
    stress_ = gen::generate_stress_set_fp(sp, rng);
    service_.add_system(core::ModeTaskSystem({}, {}, {stress_}), "fp-stress");
  }
  rt::TaskSet stress_;
  AnalysisService service_;
};

TEST_F(ServiceOnFpStressSet, FixedPolicyMatchesDirectEngineBitForBit) {
  // The one accuracy knob drives the FP point budget: a fixed-budget FP
  // request must reproduce a BatchEngine built with the same FpPointOptions
  // bit for bit, and report the FP provenance.
  const double period = 0.8;
  const std::size_t budget = 1u << 6;
  rt::FpPointOptions fp_opts;
  fp_opts.max_points = budget;
  rt::DlBoundOptions dl_opts;
  dl_opts.max_points = budget;
  const analysis::BatchEngine engine(service_.system(0), Scheduler::FP,
                                     dl_opts, fp_opts);
  const MinQuantumResult r = service_.min_quantum_one(
      0, {Scheduler::FP, period, false, AccuracyPolicy::fixed(budget)});
  ASSERT_TRUE(r.ok());
  for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
    EXPECT_EQ(r.mode_quantum[m],
              engine.mode_min_quantum(core::kAllModes[m], period));
  }
  EXPECT_TRUE(r.prov.dl_exact);   // EDF side never consulted under FP
  EXPECT_FALSE(r.prov.fp_exact);  // point-hostile: condensed
  EXPECT_EQ(r.prov.budget, budget);
  EXPECT_EQ(r.prov.fp_budget, budget);
  EXPECT_FALSE(r.prov.gap.has_value());  // fixed + condensed: unknown

  // Verify rides the same engine: quantum at the condensed minQ passes and
  // carries the same provenance fields.
  core::ModeSchedule schedule;
  schedule.period = period;
  schedule.nf = {std::min(period, r.mode_quantum[2] * 1.001), 0.0};
  const VerifyResult v = service_.verify_one(
      0, {Scheduler::FP, schedule, false, AccuracyPolicy::fixed(budget)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.schedulable, engine.verify(schedule));
  EXPECT_TRUE(v.schedulable);
  EXPECT_EQ(v.prov.fp_budget, budget);
}

TEST_F(ServiceOnFpStressSet, AdaptiveFpLadderConvergesAndReportsBudget) {
  const double period = 0.8;
  const MinQuantumResult at_small = service_.min_quantum_one(
      0, {Scheduler::FP, period, false, AccuracyPolicy::fixed(1u << 5)});
  ASSERT_TRUE(at_small.ok());
  EXPECT_FALSE(at_small.prov.fp_exact);

  const double tol = 1e-3;
  const MinQuantumResult r = service_.min_quantum_one(
      0, {Scheduler::FP, period, false,
          AccuracyPolicy::adaptive(tol, 1u << 5, 1u << 14)});
  ASSERT_TRUE(r.ok());
  // Converged within the cap: the stop was the tolerance or exactness.
  ASSERT_TRUE(r.prov.gap.has_value());
  EXPECT_LE(*r.prov.gap, tol);
  EXPECT_GT(r.prov.probes, 1u);
  EXPECT_GT(r.prov.budget, std::size_t{1} << 5);
  // Monotone non-worsening along the rungs.
  EXPECT_LE(r.mode_quantum[2], at_small.mode_quantum[2] + 1e-9);
  EXPECT_GT(r.mode_quantum[2], 0.0);
}

TEST_F(ServiceOnStressSet, EdfRequestsReportTrivialFpProvenance) {
  const MinQuantumResult r = service_.min_quantum_one(
      0, {Scheduler::EDF, 0.4, false, AccuracyPolicy::fixed(1u << 8)});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.prov.fp_exact);  // FP side never consulted under EDF
  EXPECT_EQ(r.prov.fp_budget, 0u);
}

TEST_F(ServiceOnStressSet, BudgetLadderIsMonotoneNonWorsening) {
  const double period = 0.4;
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t budget : {1u << 8, 1u << 10, 1u << 12, 1u << 14}) {
    const MinQuantumResult r = service_.min_quantum_one(
        0, {Scheduler::EDF, period, false, AccuracyPolicy::fixed(budget)});
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.mode_quantum[2], prev + 1e-9) << "budget " << budget;
    prev = r.mode_quantum[2];
  }
}

TEST_F(ServiceOnStressSet, CappedLadderReportsUnknownGapAndCapParity) {
  // An adaptive ladder that exhausts its budget cap while the answer is
  // still moving must report gap = nullopt (unknown), not the last
  // inter-rung move: that move bounds nothing about the distance between
  // the capped answer and the exact one. The answer itself must equal the
  // fixed-policy probe at the cap budget bit for bit (the final rung IS
  // that probe).
  const double period = 0.4;
  const std::size_t cap = 1u << 10;
  // tol < 0: no finite move can converge the ladder, so it deterministically
  // climbs to the cap while the condensed answer is still refining.
  MinQuantumRequest req{Scheduler::EDF, period, false,
                        AccuracyPolicy::adaptive(/*tol=*/-1.0, 1u << 6, cap)};
  const MinQuantumResult capped = service_.min_quantum_one(0, req);
  ASSERT_TRUE(capped.ok());
  EXPECT_FALSE(capped.prov.dl_exact);  // still condensed at the cap
  EXPECT_GT(capped.prov.probes, 1u);   // the ladder did climb
  EXPECT_EQ(capped.prov.budget, cap);  // ... all the way to the cap
  EXPECT_FALSE(capped.prov.gap.has_value()) << "unconverged capped ladder "
                                               "must not report a gap";

  const MinQuantumResult fixed = service_.min_quantum_one(
      0, {Scheduler::EDF, period, false, AccuracyPolicy::fixed(cap)});
  for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
    EXPECT_EQ(capped.mode_quantum[m], fixed.mode_quantum[m]);
  }
  EXPECT_EQ(capped.margin, fixed.margin);
}

TEST_F(ServiceOnStressSet, AdaptiveVerifyEscalatesACondensedNo) {
  // A schedule near the edge: the condensed test may reject it while a
  // finer budget accepts. Whatever the verdict, adaptive verify must stop
  // with either schedulable, exact, or the cap -- and a condensed "yes"
  // must never be re-probed into a "no".
  const double period = 0.4;
  const MinQuantumResult q = service_.min_quantum_one(
      0, {Scheduler::EDF, period, false, AccuracyPolicy::fixed(1u << 14)});
  core::ModeSchedule schedule;
  schedule.period = period;
  schedule.nf = {q.mode_quantum[2] * 1.001, 0.0};
  VerifyRequest req{Scheduler::EDF, schedule, false,
                    AccuracyPolicy::adaptive(1e-4, 1u << 6, 1u << 16)};
  const VerifyResult r = service_.verify_one(0, req);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.schedulable);  // quantum sits above a finer-budget minQ
  EXPECT_GE(r.prov.budget, std::size_t{1} << 6);
}

// --- fleets ---------------------------------------------------------------

TEST(ServiceFleet, GeneratedFleetIsShardLayoutIndependent) {
  const auto factory = [](std::size_t, Rng& rng) {
    return gen::study_system(rng);
  };
  core::StudyOptions whole;
  whole.trials = 7;
  whole.base_seed = 0x51;

  AnalysisService reference;
  reference.add_fleet(whole, factory);
  core::SearchOptions opts;
  opts.grid_step = 5e-3;
  opts.p_max = 10.0;
  const SolveRequest req{Scheduler::EDF,
                         {0.05, 0.0, 0.0},
                         core::DesignGoal::MinOverheadBandwidth,
                         opts,
                         {}};
  const std::vector<SolveResult> want = reference.solve(req);
  ASSERT_EQ(want.size(), 7u);

  std::vector<double> assembled(whole.trials, -2.0);
  for (std::size_t k = 0; k < 2; ++k) {
    AnalysisService part;
    core::StudyOptions shard = whole;
    shard.shard = {k, 2};
    part.add_fleet(shard, factory);
    for (const SolveResult& r : part.solve(req)) {
      ASSERT_NE(r.trial, kNoTrial);
      assembled[r.trial] =
          r.ok() && r.feasible ? r.design.schedule.period : -1.0;
    }
  }
  for (std::size_t t = 0; t < whole.trials; ++t) {
    const double ref =
        want[t].ok() && want[t].feasible ? want[t].design.schedule.period
                                         : -1.0;
    EXPECT_EQ(assembled[t], ref) << "trial " << t;
  }
}

TEST(ServiceFleet, PackFailureBecomesAnswerlessEntry) {
  core::StudyOptions study;
  study.trials = 3;
  AnalysisService service;
  service.add_fleet(study,
                    [](std::size_t t, Rng&) -> std::optional<core::ModeTaskSystem> {
                      if (t == 1) return std::nullopt;  // "unpackable" trial
                      return core::paper_example();
                    });
  ASSERT_EQ(service.size(), 3u);
  EXPECT_TRUE(service.has_system(0));
  EXPECT_FALSE(service.has_system(1));
  const std::vector<SolveResult> rs =
      service.solve({Scheduler::EDF, {}, core::DesignGoal::MinOverheadBandwidth,
                     {}, {}});
  EXPECT_TRUE(rs[0].ok());
  EXPECT_FALSE(rs[1].ok());
  EXPECT_EQ(rs[1].error, "packing failed");
  EXPECT_EQ(rs[1].trial, 1u);
  EXPECT_TRUE(rs[2].ok());
  EXPECT_THROW(service.system(1), ModelError);
}

TEST_F(ServiceOnPaperExample, EngineCacheReturnsTheSameEngine) {
  const analysis::BatchEngine* a = &service_.engine(0, Scheduler::EDF);
  const analysis::BatchEngine* b = &service_.engine(0, Scheduler::EDF);
  const analysis::BatchEngine* c = &service_.engine(0, Scheduler::EDF, 1u << 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a->dl_options().max_points, rt::kDefaultDlPointBudget);
  EXPECT_EQ(c->dl_options().max_points, std::size_t{1} << 8);
}

// --- jsonl ----------------------------------------------------------------

TEST(JsonRow, WritesAndScansFlatRows) {
  JsonRow row;
  row.field("kind", "study_trial")
      .field("trial", std::size_t{42})
      .field("feasible", true)
      .field("period", 2.9660000000000002)
      .null_field("gap")
      .field("note", "a \"quoted\"\nvalue");
  const std::string s = row.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '}');
  EXPECT_EQ(json_string_field(s, "kind").value_or(""), "study_trial");
  EXPECT_EQ(json_number_field(s, "trial").value_or(-1), 42.0);
  EXPECT_EQ(json_bool_field(s, "feasible").value_or(false), true);
  EXPECT_EQ(json_number_field(s, "period").value_or(0.0),
            2.9660000000000002);
  EXPECT_FALSE(json_number_field(s, "gap").has_value());  // null
  EXPECT_FALSE(json_number_field(s, "absent").has_value());
  EXPECT_EQ(json_string_field(s, "note").value_or(""), "a \"quoted\"\nvalue");
}

TEST(JsonRow, RoundTripsDoublesByteExactly) {
  for (const double v : {2.966, 1.0 / 3.0, 1e-9, 123456.789, 0.1 + 0.2}) {
    JsonRow row;
    row.field("x", v);
    const double back = json_number_field(row.str(), "x").value();
    EXPECT_EQ(back, v);
    JsonRow again;
    again.field("x", back);
    EXPECT_EQ(again.str(), row.str());
  }
}

TEST(JsonRow, KeyInsideStringValueDoesNotConfuseTheScanner) {
  JsonRow row;
  row.field("name", "\"trial\":99,").field("trial", std::size_t{7});
  EXPECT_EQ(json_number_field(row.str(), "trial").value_or(-1), 7.0);
}

TEST(JsonRow, RoundTripsProvenanceFields) {
  // The provenance block every flexrt_design row carries, including the
  // FP condensation fields introduced with the FP point budget.
  Provenance prov;
  prov.dl_exact = true;
  prov.fp_exact = false;
  prov.budget = 1u << 6;
  prov.fp_budget = 1u << 6;
  prov.probes = 3;
  prov.gap = 0.125;
  JsonRow row;
  row.field("dl_exact", prov.dl_exact)
      .field("fp_exact", prov.fp_exact)
      .field("budget", prov.budget)
      .field("fp_budget", prov.fp_budget)
      .field("probes", prov.probes)
      .field("gap", *prov.gap);
  const std::string s = row.str();
  EXPECT_EQ(json_bool_field(s, "dl_exact").value_or(false), true);
  EXPECT_EQ(json_bool_field(s, "fp_exact").value_or(true), false);
  EXPECT_EQ(json_number_field(s, "budget").value_or(-1), 64.0);
  EXPECT_EQ(json_number_field(s, "fp_budget").value_or(-1), 64.0);
  EXPECT_EQ(json_number_field(s, "probes").value_or(-1), 3.0);
  EXPECT_EQ(json_number_field(s, "gap").value_or(-1), 0.125);
}

TEST(JsonRow, NonFiniteDoublesBecomeNull) {
  JsonRow row;
  row.field("inf", std::numeric_limits<double>::infinity());
  EXPECT_FALSE(json_number_field(row.str(), "inf").has_value());
  EXPECT_NE(row.str().find("\"inf\":null"), std::string::npos);
}

// --- string escape round-trips --------------------------------------------

std::string roundtrip(const std::string& s) {
  JsonRow row;
  row.field("x", s);
  return json_string_field(row.str(), "x").value_or("<DECODE FAILED>");
}

TEST(JsonRow, RoundTripsEverySingleByteString) {
  // json_escape's full output alphabet one byte at a time: the \uXXXX
  // control-character escapes (the PR-5 decoder fix), the two-character
  // escapes, and raw bytes >= 0x20 including the non-ASCII range.
  for (int c = 0; c < 256; ++c) {
    const std::string s(1, static_cast<char>(c));
    EXPECT_EQ(roundtrip(s), s) << "byte " << c;
  }
}

TEST(JsonRow, RoundTripsControlCharactersInsideRealNames) {
  // The writer escapes control characters as \u00XX; before the decoder
  // fix these came back as the literal text "u0007".
  const std::string bell_name = "sys\x07name";
  JsonRow row;
  row.field("name", bell_name);
  EXPECT_NE(row.str().find("\\u0007"), std::string::npos);
  EXPECT_EQ(json_string_field(row.str(), "name").value_or(""), bell_name);
}

TEST(JsonRow, RoundTripsRandomByteStringsProperty) {
  // Property: json_string_field inverts json_escape for arbitrary byte
  // strings -- embedded NULs, control runs, backslash/quote storms, and
  // high bytes (UTF-8 passes through unescaped).
  Rng rng(0x5EED5);
  for (int iter = 0; iter < 400; ++iter) {
    std::string s;
    const std::int64_t len = rng.uniform_int(0, 40);
    for (std::int64_t k = 0; k < len; ++k) {
      switch (rng.uniform_int(0, 3)) {
        case 0:  // hostile punctuation
          s += std::string("\"\\/{}:,")[static_cast<std::size_t>(
              rng.uniform_int(0, 6))];
          break;
        case 1:  // control characters incl. NUL
          s += static_cast<char>(rng.uniform_int(0, 0x1F));
          break;
        default:  // any byte
          s += static_cast<char>(rng.uniform_int(0, 255));
      }
    }
    EXPECT_EQ(roundtrip(s), s) << "iter " << iter;
  }
}

/// Builds the row {"x":"<payload>"} with the payload JSON text verbatim.
std::string raw_row(const std::string& payload) {
  return "{\"x\":\"" + payload + "\"}";
}

TEST(JsonRow, DecodesForeignUnicodeEscapes) {
  // Rows written by other tools may escape more than control characters;
  // the scanner decodes any BMP escape (either hex case) and surrogate
  // pairs to UTF-8.
  EXPECT_EQ(json_string_field(raw_row("\\u0041\\u004A"), "x").value_or(""),
            "AJ");
  EXPECT_EQ(json_string_field(raw_row("\\u00e9"), "x").value_or(""),
            "\xC3\xA9");  // e-acute, 2-byte UTF-8
  EXPECT_EQ(json_string_field(raw_row("\\u20AC"), "x").value_or(""),
            "\xE2\x82\xAC");  // euro sign, 3-byte UTF-8, uppercase hex
  EXPECT_EQ(json_string_field(raw_row("\\ud83d\\ude00"), "x").value_or(""),
            "\xF0\x9F\x98\x80");  // U+1F600 via surrogate pair
  EXPECT_EQ(json_string_field(raw_row("\\b\\f"), "x").value_or(""), "\b\f");
}

TEST(JsonRow, MalformedUnicodeEscapesYieldNullopt) {
  // Truncated hex, non-hex digits, and lone/misordered surrogates must
  // fail the whole field rather than silently corrupt the value.
  for (const std::string payload : {
           "\\u00",              // truncated hex
           "\\u00zz",            // non-hex digits
           "\\ud83d",            // lone high surrogate
           "\\ud83dxy",          // high surrogate + garbage
           "\\ud83d\\u0041",     // high surrogate + non-low escape
           "\\ude00",            // low surrogate first
       }) {
    EXPECT_FALSE(json_string_field(raw_row(payload), "x").has_value())
        << payload;
  }
}

}  // namespace
}  // namespace flexrt::svc
