// The cooperative stop flag behind SIGINT/SIGTERM handling: the test hooks
// raise and clear it deterministically, stop_signal() reports who raised
// it, and installation is idempotent. The real handler path (an actual
// signal delivered to a journaled child / the daemon) is covered by the CI
// daemon smoke and the journal kill tests.
#include <gtest/gtest.h>

#include <csignal>

#include "common/signals.hpp"

namespace flexrt::sys {
namespace {

TEST(StopSignals, TestHooksRaiseAndClearTheFlag) {
  install_stop_signals();
  install_stop_signals();  // idempotent
  reset_stop_for_tests();
  EXPECT_FALSE(stop_requested().load());
  EXPECT_EQ(stop_signal(), 0);

  request_stop_for_tests(SIGTERM);
  EXPECT_TRUE(stop_requested().load());
  EXPECT_EQ(stop_signal(), SIGTERM);

  reset_stop_for_tests();
  EXPECT_FALSE(stop_requested().load());
  EXPECT_EQ(stop_signal(), 0);

  request_stop_for_tests(SIGINT);
  EXPECT_EQ(stop_signal(), SIGINT);
  reset_stop_for_tests();
}

TEST(StopSignals, RealSignalDeliveryRaisesTheFlag) {
  install_stop_signals();
  reset_stop_for_tests();
  ::raise(SIGTERM);  // handler stores into the atomic, nothing else
  EXPECT_TRUE(stop_requested().load());
  EXPECT_EQ(stop_signal(), SIGTERM);
  reset_stop_for_tests();
}

}  // namespace
}  // namespace flexrt::sys
