// Differential harness for the condensed FP analysis
// (rt::bounded_scheduling_points + the AnalysisContext FP caches): over
// hundreds of seeded generated sets small enough that the full
// Bini-Buttazzo point sets are cheap, the condensed kernels must stay on
// the safe side of the exact ones -- a condensed "schedulable" never
// contradicts the exact verdict, condensed minQ >= exact minQ and its
// supply really schedules the full set -- and must degrade to exact parity
// whenever the point sets fit the budget. Plus the budget-ladder
// monotonicity property and the n = 1000 stress smoke the scaling work is
// for.
#include "rt/sched_points.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "gen/taskset_gen.hpp"
#include "hier/min_quantum.hpp"
#include "hier/sched_test.hpp"
#include "hier/supply.hpp"
#include "rt/analysis_context.hpp"
#include "rt/deadline_bound.hpp"
#include "rt/demand.hpp"
#include "rt/priority.hpp"

namespace flexrt::rt {
namespace {

using hier::Scheduler;

/// Small FP-ordered set whose full schedP_i are cheap to enumerate.
TaskSet small_fp_set(std::uint64_t seed) {
  Rng rng(seed);
  gen::GenParams gp;
  gp.num_tasks = 3 + seed % 10;  // n <= 12
  gp.total_utilization = 0.45 + 0.05 * static_cast<double>(seed % 8);
  gp.ft_fraction = 0.0;
  gp.fs_fraction = 0.0;
  gp.deadline_min_ratio = 0.8;  // constrained deadlines vary schedP_i
  return sort_deadline_monotonic(gen::generate_task_set(gp, rng));
}

/// The condensed configurations every trial exercises: budgets small
/// enough that generated sets overflow them (tasks fall back to the
/// bucket grid) but large enough that the test stays useful.
const std::size_t kTightBudgets[] = {2, 5, 11};

/// Reference minQ from the full per-point kernel (no context caches).
double full_min_quantum_fp(const TaskSet& ts, double period) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const double t : scheduling_points(ts, i)) {
      best = std::min(best,
                      hier::quantum_for_point(t, fp_workload(ts, i, t), period));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

// --- the differential harness: >= 200 seeded trials ------------------------

TEST(FpCondensedDifferential, VerdictIsSafeAcrossSeededTrials) {
  Rng supply_rng(0xF00D);
  int condensed_passes = 0;
  int condensed_tasks = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const TaskSet ts = small_fp_set(seed);
    for (const std::size_t budget : kTightBudgets) {
      const AnalysisContext condensed(ts, DlBoundOptions{},
                                      FpPointOptions{budget});
      condensed_tasks += condensed.fp_exact() ? 0 : 1;
      for (int s = 0; s < 4; ++s) {
        const double period = supply_rng.uniform(0.5, 8.0);
        const double usable = supply_rng.uniform(0.05, 1.0) * period;
        const hier::SlotSupply slot(period, usable);
        if (hier::fp_schedulable(condensed, slot)) {
          ++condensed_passes;
          // Safety: a condensed pass implies the exact full-point verdict.
          EXPECT_TRUE(hier::fp_schedulable(ts, slot))
              << "seed=" << seed << " budget=" << budget << " P=" << period
              << " q=" << usable;
        }
      }
    }
  }
  // The condensed test must stay useful, not degenerate to "never", and
  // the tight budgets must actually trigger condensation somewhere.
  EXPECT_GT(condensed_passes, 100);
  EXPECT_GT(condensed_tasks, 100);
}

TEST(FpCondensedDifferential, MinQuantumOverApproximatesAndStaysValid) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const TaskSet ts = small_fp_set(seed);
    const AnalysisContext exact(ts);
    ASSERT_TRUE(exact.fp_exact()) << "seed=" << seed;
    for (const std::size_t budget : kTightBudgets) {
      const AnalysisContext condensed(ts, DlBoundOptions{},
                                      FpPointOptions{budget});
      for (const double period : {0.5, 2.0, 6.0}) {
        const double q_exact = hier::min_quantum(exact, Scheduler::FP, period);
        const double q_cond =
            hier::min_quantum(condensed, Scheduler::FP, period);
        // Safe over-approximation...
        EXPECT_GE(q_cond, q_exact - 1e-9)
            << "seed=" << seed << " budget=" << budget << " P=" << period;
        // ...whose supply really schedules the full set.
        if (q_cond < period) {
          const hier::LinearSupply supply(q_cond / period, period - q_cond);
          EXPECT_TRUE(hier::fp_schedulable(ts, supply))
              << "seed=" << seed << " budget=" << budget << " P=" << period
              << " q=" << q_cond;
        }
      }
    }
  }
}

TEST(FpCondensedDifferential, ExactParityWhenTheSetFitsTheBudget) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const TaskSet ts = small_fp_set(seed);
    // Default budget: small sets fit, the context must report exactness
    // and reproduce the full point sets and kernels.
    const AnalysisContext ctx(ts);
    ASSERT_TRUE(ctx.fp_exact()) << "seed=" << seed;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const std::vector<double> want = scheduling_points(ts, i);
      const std::vector<double>& got = ctx.scheduling_points(i);
      ASSERT_EQ(got.size(), want.size()) << "seed=" << seed << " i=" << i;
      for (std::size_t k = 0; k < want.size(); ++k) {
        EXPECT_DOUBLE_EQ(got[k], want[k]);
        EXPECT_NEAR(ctx.fp_point_workloads(i)[k],
                    fp_workload(ts, i, want[k]), 1e-12);
      }
      // ends empty == "identical to times": the exact representation.
      EXPECT_EQ(&ctx.scheduling_point_ends(i), &ctx.scheduling_points(i));
    }
    for (const double period : {1.0, 4.0}) {
      EXPECT_NEAR(hier::min_quantum(ctx, Scheduler::FP, period),
                  full_min_quantum_fp(ts, period), 1e-12)
          << "seed=" << seed;
    }
  }
}

TEST(FpCondensedDifferential, ZeroBudgetDisablesCondensation) {
  const TaskSet ts = small_fp_set(7);
  const AnalysisContext ctx(ts, DlBoundOptions{}, FpPointOptions{0});
  EXPECT_TRUE(ctx.fp_exact());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ctx.scheduling_points(i).size(),
              scheduling_points(ts, i).size());
  }
}

// --- the budget ladder (mirror of the EDF ladder properties) ---------------

TEST(FpBudgetLadder, MinQuantumIsMonotoneNonIncreasingAlongTheRungs) {
  gen::StressParams sp;
  sp.num_tasks = 300;
  Rng rng(0xFADE);
  const TaskSet ts = gen::generate_stress_set_fp(sp, rng);
  // A non-power-of-two seed and cap make next_budget_rung's final step a
  // clamped non-2x jump (100 -> ... -> 3200 -> 4000): monotonicity must
  // survive it (the grid snaps to power-of-two bucket counts, so any
  // growing budget sequence stays nested).
  for (const std::size_t start : {std::size_t{8}, std::size_t{100}}) {
    const std::size_t cap = start == 8 ? (1u << 12) : 4000;
    for (const double period : {1.0, 3.0}) {
      double prev = std::numeric_limits<double>::infinity();
      std::size_t budget = start;
      for (;;) {
        const AnalysisContext ctx(ts, DlBoundOptions{},
                                  FpPointOptions{budget});
        const double q = hier::min_quantum(ctx, Scheduler::FP, period);
        EXPECT_LE(q, prev + 1e-9) << "budget " << budget << " P=" << period;
        prev = q;
        if (budget >= cap) break;
        budget = next_budget_rung(budget, cap);
      }
    }
  }
}

TEST(FpBudgetLadder, ArbitraryBudgetGrowthIsMonotone) {
  // The reviewer's counterexample shape before the power-of-two snap:
  // consecutive budgets (45 -> 46) are not a doubling, yet the answer must
  // not worsen for ANY budget growth.
  gen::StressParams sp;
  sp.num_tasks = 200;
  Rng rng(0xFADE);
  const TaskSet ts = gen::generate_stress_set_fp(sp, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t budget : {30u, 45u, 46u, 90u, 100u, 130u}) {
    const AnalysisContext ctx(ts, DlBoundOptions{}, FpPointOptions{budget});
    const double q = hier::min_quantum(ctx, Scheduler::FP, 2.0);
    EXPECT_LE(q, prev + 1e-9) << "budget " << budget;
    prev = q;
  }
}

TEST(FpBudgetLadder, CondensedStressTasksTurnExactAtLargeBudgets) {
  gen::StressParams sp;
  sp.num_tasks = 24;
  sp.period_max = 30.0;  // keeps the full sets enumerable at the top rung
  Rng rng(0xBEEF);
  const TaskSet ts = gen::generate_stress_set_fp(sp, rng);
  const AnalysisContext tight(ts, DlBoundOptions{}, FpPointOptions{8});
  EXPECT_FALSE(tight.fp_exact());
  // A budget past every task's multiples bound restores exactness.
  std::size_t worst_bound = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    std::size_t bound = 1;
    for (std::size_t j = 0; j < i; ++j) {
      const std::int64_t k = floor_ratio(ts[i].deadline, ts[j].period);
      if (k > 0) bound += static_cast<std::size_t>(k);
    }
    worst_bound = std::max(worst_bound, bound);
  }
  const AnalysisContext wide(ts, DlBoundOptions{}, FpPointOptions{worst_bound});
  EXPECT_TRUE(wide.fp_exact());
  EXPECT_LE(hier::min_quantum(wide, Scheduler::FP, 2.0),
            hier::min_quantum(tight, Scheduler::FP, 2.0) + 1e-9);
}

// --- stress smoke: the acceptance criterion ---------------------------------

TEST(FpStress, CondensedMinQuantumAtN1000CompletesFast) {
  gen::StressParams sp;
  sp.num_tasks = 1000;
  Rng rng(977 + 1000);  // the bench workload's seed (bench/stress_workloads)
  const TaskSet ts = gen::generate_stress_set_fp(sp, rng);
  const auto t0 = std::chrono::steady_clock::now();
  const AnalysisContext ctx(ts);
  const double q = hier::min_quantum(ctx, Scheduler::FP, 2.0);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_FALSE(ctx.fp_exact());  // point-hostile: condensation engaged
  EXPECT_TRUE(std::isfinite(q));
  EXPECT_GT(q, 0.0);
  // The whole point of the condensation: cold cache build + probe finish in
  // milliseconds where the full point sets are astronomically large. The
  // Release-build budget is generous (measured ~30 ms); Debug gets more.
#ifdef NDEBUG
  EXPECT_LT(ms, 2000.0);
#else
  EXPECT_LT(ms, 20000.0);
#endif
  // Warm probes ride the cached points: another period must be cheap and
  // behave like a minQ (monotone non-increasing in the period is not
  // guaranteed, but positivity and finiteness are).
  const double q2 = hier::min_quantum(ctx, Scheduler::FP, 4.0);
  EXPECT_TRUE(std::isfinite(q2));
  EXPECT_GT(q2, 0.0);
}

}  // namespace
}  // namespace flexrt::rt
