// Integration tests crossing the analytical layer and the simulator:
// schedules the design solver declares feasible must run without deadline
// misses, and the simulated platform must deliver at least the analytical
// supply bound in every window (experiment E5's backbone).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "gen/taskset_gen.hpp"
#include "sim/simulator.hpp"

namespace flexrt {
namespace {

using hier::Scheduler;

// Margin added to the total overhead when solving: the tick grid (1e-6) and
// the zero-slack boundary make exact-boundary designs knife-edge; real
// designs always carry margin.
constexpr double kEps = 1e-3;

class SimAnalysis : public ::testing::Test {
 protected:
  core::ModeTaskSystem sys_ = core::paper_example();
  core::Overheads ov_{0.02, 0.02, 0.01};
};

TEST_F(SimAnalysis, PaperDesignRunsWithoutMissesEdf) {
  core::Overheads padded = ov_;
  padded.nf += kEps;
  const auto d = core::solve_design(sys_, Scheduler::EDF, padded,
                                    core::DesignGoal::MinOverheadBandwidth);
  sim::SimOptions opt;
  opt.horizon = 2000.0;
  opt.scheduler = Scheduler::EDF;
  const sim::SimResult r = sim::simulate(sys_, d.schedule, opt);
  EXPECT_EQ(r.total_misses(), 0u);
  EXPECT_GT(r.tasks[0].completions, 0u);
}

TEST_F(SimAnalysis, PaperDesignRunsWithoutMissesRm) {
  core::Overheads padded = ov_;
  padded.nf += kEps;
  const auto d = core::solve_design(sys_, Scheduler::FP, padded,
                                    core::DesignGoal::MaxSlackBandwidth);
  sim::SimOptions opt;
  opt.horizon = 2000.0;
  opt.scheduler = Scheduler::FP;
  const sim::SimResult r = sim::simulate(sys_, d.schedule, opt);
  EXPECT_EQ(r.total_misses(), 0u);
}

TEST_F(SimAnalysis, EveryTaskCompletesExpectedJobCount) {
  const auto d = core::solve_design(sys_, Scheduler::EDF, ov_,
                                    core::DesignGoal::MaxSlackBandwidth);
  sim::SimOptions opt;
  opt.horizon = 1200.0;  // hyperperiod of Table 1 = 120
  opt.scheduler = Scheduler::EDF;
  const sim::SimResult r = sim::simulate(sys_, d.schedule, opt);
  for (const sim::TaskStats& t : r.tasks) {
    EXPECT_GT(t.releases, 0u) << t.name;
    // All but possibly the last released job must have completed.
    EXPECT_GE(t.completions + 1, t.releases) << t.name;
  }
}

TEST_F(SimAnalysis, ShrunkenQuantaCauseMisses) {
  const auto d = core::solve_design(sys_, Scheduler::EDF, ov_,
                                    core::DesignGoal::MaxSlackBandwidth);
  core::ModeSchedule crippled = d.schedule;
  // Cut the FS quantum to 60%: tau9 (C=1, T=4) can no longer fit.
  crippled.fs.usable *= 0.6;
  sim::SimOptions opt;
  opt.horizon = 2000.0;
  opt.scheduler = Scheduler::EDF;
  const sim::SimResult r = sim::simulate(sys_, crippled, opt);
  EXPECT_GT(r.total_misses(), 0u);
  // ... and only FS tasks may be affected (temporal isolation).
  for (const sim::TaskStats& t : r.tasks) {
    if (t.mode != rt::Mode::FS) {
      EXPECT_EQ(t.deadline_misses, 0u) << t.name;
    }
  }
}

TEST_F(SimAnalysis, MeasuredSupplyDominatesLinearBound) {
  core::Overheads padded = ov_;
  padded.nf += kEps;
  const auto d = core::solve_design(sys_, Scheduler::EDF, padded,
                                    core::DesignGoal::MinOverheadBandwidth);
  sim::SimOptions opt;
  opt.horizon = 600.0;
  opt.record_supply = true;
  sim::Simulator s(sys_, d.schedule, opt);
  s.run();
  // The last frames at the horizon are truncated (the run simply stops),
  // which is a measurement artifact, not a supply violation: restrict the
  // window sweep to the region where the periodic pattern is complete.
  const Ticks horizon = to_ticks(opt.horizon - 2.0 * d.schedule.period);
  for (const rt::Mode mode : core::kAllModes) {
    const hier::LinearSupply bound = d.schedule.supply(mode);
    const hier::SlotSupply exact = d.schedule.exact_supply(mode);
    for (const double t : {0.5, 1.0, 2.0, 5.0, 10.0, 25.0}) {
      const double measured =
          to_units(s.supply(mode).min_window_supply(to_ticks(t), horizon));
      // The frame layout rounds each usable window down by up to one tick,
      // so a window spanning k frames can lose k+2 ticks vs the real-valued
      // bound.
      const double tol = (t / d.schedule.period + 2.0) * 1e-6;
      EXPECT_GE(measured + tol, bound.value(t))
          << rt::to_string(mode) << " window " << t;
      EXPECT_GE(measured + tol, exact.value(t))
          << rt::to_string(mode) << " window " << t;
    }
  }
}

// Randomized end-to-end property: whenever the solver finds a design for a
// generated system, the simulation of that design is miss-free.
class RandomDesignSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDesignSim, FeasibleDesignsAreMissFreeInSimulation) {
  Rng rng(GetParam());
  gen::GenParams gp;
  gp.num_tasks = 10;
  gp.total_utilization = rng.uniform(0.8, 1.6);
  const rt::TaskSet ts = gen::generate_task_set(gp, rng);
  const auto sys = gen::build_system(ts);
  if (!sys) GTEST_SKIP() << "packing failed";
  core::Design d;
  try {
    d = core::solve_design(*sys, Scheduler::EDF, {0.01, 0.01, 0.01 + kEps},
                           core::DesignGoal::MaxSlackBandwidth);
  } catch (const InfeasibleError&) {
    GTEST_SKIP() << "no feasible period";
  }
  sim::SimOptions opt;
  opt.horizon = 1000.0;
  opt.scheduler = Scheduler::EDF;
  const sim::SimResult r = sim::simulate(*sys, d.schedule, opt);
  EXPECT_EQ(r.total_misses(), 0u)
      << "U=" << ts.utilization() << " P=" << d.schedule.period;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesignSim,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace flexrt
