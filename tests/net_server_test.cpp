// The flexrtd socket server: unix-domain and TCP transports serve the same
// protocol Session the stringstream tests pin down, concurrent clients get
// byte-identical streams to a serial in-process run (per-client fleets,
// shared pool), graceful stop drains connected clients without hanging,
// and the socket file is unlinked on shutdown.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/proto.hpp"
#include "net/server.hpp"

namespace flexrt::net {
namespace {

/// A short per-client task file: one NF task whose period varies by client
/// id, so every client's report is distinct and cross-talk would show.
std::string client_tasks(int id) {
  std::ostringstream os;
  os << "a 1 " << (6 + id) << " NF 0\n"
     << "b 1 12 FS 0\n"
     << "c 1 15 FT 0\n";
  return os.str();
}

std::string client_script(int id) {
  return "add client" + std::to_string(id) + "\n" + client_tasks(id) +
         ".\nsolve\nstatus\nquit\n";
}

/// The reference bytes: the same script run serially over stringstreams.
std::string serial_reference(int id) {
  std::istringstream in(client_script(id));
  std::ostringstream out;
  proto::Session session(out);
  session.run(in);
  return out.str();
}

/// Sends `script` over the connection and reads to EOF.
std::string roundtrip(int fd, const std::string& script) {
  FdStream io(fd);
  io << script << std::flush;
  std::ostringstream got;
  got << io.rdbuf();
  return got.str();
}

std::string temp_socket_path(const char* tag) {
  return testing::TempDir() + "flexrt_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(NetServer, UnixSocketServesTheProtocol) {
  const std::string path = temp_socket_path("unix");
  ServerOptions opts;
  opts.socket_path = path;
  Server server(opts);
  server.start();

  const int fd = dial(path);
  const std::string got = roundtrip(fd, client_script(0));
  ::close(fd);
  EXPECT_EQ(got, serial_reference(0));

  server.stop();
  EXPECT_EQ(server.sessions_served(), 1u);
  EXPECT_NE(::access(path.c_str(), F_OK), 0)
      << "stop() must unlink the unix socket";
}

TEST(NetServer, TcpEphemeralPortServesTheProtocol) {
  ServerOptions opts;
  opts.port = 0;  // kernel-assigned
  Server server(opts);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  const int fd = dial("127.0.0.1:" + std::to_string(server.tcp_port()));
  const std::string got = roundtrip(fd, client_script(1));
  ::close(fd);
  EXPECT_EQ(got, serial_reference(1));
  server.stop();
}

TEST(NetServer, DialRejectsMalformedAddresses) {
  EXPECT_THROW(dial(""), Error);
  EXPECT_THROW(dial("not a port"), Error);
  EXPECT_THROW(dial("host:"), Error);
}

TEST(NetServer, ConcurrentClientsGetSerialIdenticalStreams) {
  ServerOptions opts;
  opts.port = 0;
  Server server(opts);
  server.start();
  const std::string addr = std::to_string(server.tcp_port());

  constexpr int kClients = 8;
  std::vector<std::string> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = dial(addr);
      got[c] = roundtrip(fd, client_script(c));
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], serial_reference(c))
        << "client " << c << "'s stream must not see its neighbours";
  }
  server.stop();
  EXPECT_EQ(server.sessions_served(), static_cast<std::size_t>(kClients));
}

TEST(NetServer, StopDrainsConnectedIdleClientsWithoutHanging) {
  const std::string path = temp_socket_path("drain");
  ServerOptions opts;
  opts.socket_path = path;
  Server server(opts);
  server.start();

  // An idle client sitting in the middle of a session: one command done,
  // no quit. stop() must EOF it (SHUT_RD), not wait forever.
  const int fd = dial(path);
  {
    FdStream io(fd);
    io << "status\n" << std::flush;
    std::string line;
    bool saw_ok = false;
    while (std::getline(io, line)) {
      if (const auto st = proto::parse_status_line(line)) {
        EXPECT_FALSE(st->failed);
        saw_ok = true;
        break;
      }
    }
    EXPECT_TRUE(saw_ok);

    std::atomic<bool> stopped{false};
    std::thread stopper([&] {
      server.stop();
      stopped.store(true);
    });
    // The client's next read sees a clean end-of-stream.
    while (std::getline(io, line)) {
    }
    stopper.join();
    EXPECT_TRUE(stopped.load());
  }
  ::close(fd);
}

TEST(NetServer, StopIsIdempotentAndRestartable) {
  ServerOptions opts;
  opts.port = 0;
  {
    Server server(opts);
    server.start();
    server.stop();
    server.stop();  // second stop is a no-op
    // A fresh start on the same object serves again.
    server.start();
    const int fd = dial(std::to_string(server.tcp_port()));
    const std::string got = roundtrip(fd, "status\nquit\n");
    ::close(fd);
    EXPECT_NE(got.find("\"kind\":\"status\""), std::string::npos);
  }  // destructor stops the restarted server
}

}  // namespace
}  // namespace flexrt::net
