// Property tests for the canonical system form behind the answer memo
// (rt/canonical): permutation invariance in the exact order the FP
// analysis is indifferent to, time-scale invariance with the retained
// scale factor, sound order-sensitivity for FP deadline ties, raw-bits
// fallback for off-grid systems, and collision freedom over a generated
// 10^4-system corpus (collisions would hand one system another system's
// cached answer, so this is a correctness bank, not a quality metric).
#include "rt/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/mode_system.hpp"
#include "core/paper_example.hpp"
#include "gen/taskset_gen.hpp"
#include "rt/task.hpp"
#include "rt/task_set.hpp"

namespace flexrt::rt {
namespace {

CanonicalSystem canon_of_channel(const std::vector<TaskSet>& channels) {
  CanonicalBuilder b;
  b.add_group(0, channels);
  return b.finish();
}

CanonicalSystem canon_of_system(const core::ModeTaskSystem& sys) {
  CanonicalBuilder b;
  for (const Mode mode : core::kAllModes) {
    b.add_group(static_cast<std::uint64_t>(mode), sys.partitions(mode));
  }
  return b.finish();
}

TaskSet scaled(const TaskSet& ts, double k) {
  std::vector<Task> tasks;
  for (const Task& t : ts) {
    tasks.push_back(make_task(t.name, t.wcet * k, t.period * k,
                              t.deadline * k, t.mode));
  }
  return TaskSet(std::move(tasks));
}

TEST(Canonical, DigestIsNeverTheUnassignedSentinel) {
  EXPECT_TRUE(Hash128{}.empty());
  EXPECT_FALSE(HashStream{}.digest().empty());
  HashStream h;
  h.u64(0);
  EXPECT_FALSE(h.digest().empty());
}

TEST(Canonical, LengthPrefixedStringsDoNotAlias) {
  HashStream a, b;
  a.str("ab").str("c");
  b.str("a").str("bc");
  EXPECT_FALSE(a.digest() == b.digest());
}

TEST(Canonical, PermutationInvariantForDistinctDeadlines) {
  std::vector<Task> tasks = {
      make_task("a", 1.0, 10.0, 7.0, Mode::NF),
      make_task("b", 2.0, 20.0, 15.0, Mode::NF),
      make_task("c", 1.0, 30.0, 24.0, Mode::NF),
      make_task("d", 3.0, 40.0, 33.0, Mode::NF),
  };
  const CanonicalSystem ref = canon_of_channel({TaskSet(tasks)});
  std::vector<std::size_t> order = {0, 1, 2, 3};
  do {
    std::vector<Task> perm;
    for (const std::size_t i : order) perm.push_back(tasks[i]);
    const CanonicalSystem got = canon_of_channel({TaskSet(perm)});
    EXPECT_EQ(ref.hash, got.hash);
    EXPECT_EQ(ref.scale, got.scale);
    EXPECT_EQ(ref.grid_gcd, got.grid_gcd);
  } while (std::next_permutation(order.begin(), order.end()));
}

// FP priorities come from a *stable* sort by deadline (rt::priority), so
// the input order of equal-deadline tasks is part of the system's meaning:
// swapping them may change the FP answer, and the canonical form must not
// identify the two systems.
TEST(Canonical, EqualDeadlineReorderChangesTheHash) {
  const Task x = make_task("x", 1.0, 10.0, 8.0, Mode::NF);
  const Task y = make_task("y", 2.0, 12.0, 8.0, Mode::NF);
  const CanonicalSystem xy = canon_of_channel({TaskSet({x, y})});
  const CanonicalSystem yx = canon_of_channel({TaskSet({y, x})});
  EXPECT_FALSE(xy.hash == yx.hash);
}

TEST(Canonical, ChannelOrderWithinAModeIsImmaterial) {
  const TaskSet c1({make_task("a", 1.0, 10.0, Mode::NF)});
  const TaskSet c2({make_task("b", 2.0, 20.0, Mode::NF)});
  const CanonicalSystem fwd = canon_of_channel({c1, c2});
  const CanonicalSystem rev = canon_of_channel({c2, c1});
  EXPECT_EQ(fwd.hash, rev.hash);
}

TEST(Canonical, TimeScaleInvariance) {
  const TaskSet base({
      make_task("a", 1.0, 6.0, 5.0, Mode::NF),
      make_task("b", 2.0, 12.0, 9.0, Mode::NF),
  });
  const CanonicalSystem ref = canon_of_channel({base});
  ASSERT_TRUE(ref.normalized());
  for (const double k : {2.0, 5.0, 1000.0, 0.001}) {
    const CanonicalSystem got = canon_of_channel({scaled(base, k)});
    EXPECT_EQ(ref.hash, got.hash) << "scale " << k;
    EXPECT_TRUE(got.normalized());
    EXPECT_NEAR(got.scale / ref.scale, k, 1e-9 * k) << "scale " << k;
  }
}

TEST(Canonical, RequestTimesHashScaleInvariantly) {
  const TaskSet base({make_task("a", 1.0, 6.0, 5.0, Mode::NF)});
  const CanonicalSystem c1 = canon_of_channel({base});
  const CanonicalSystem c2 = canon_of_channel({scaled(base, 2.0)});
  ASSERT_EQ(c1.hash, c2.hash);
  HashStream h1, h2;
  c1.time(h1, 2.0);
  c2.time(h2, 4.0);  // the same request in the x2 system's native units
  EXPECT_EQ(h1.digest(), h2.digest());
  HashStream r1, r2;
  c1.inverse_time(r1, 0.5);  // a rate: 1 event per 2 native units
  c2.inverse_time(r2, 0.25);
  EXPECT_EQ(r1.digest(), r2.digest());
}

TEST(Canonical, DifferentRequestTimesHashDifferently) {
  const TaskSet base({make_task("a", 1.0, 6.0, 5.0, Mode::NF)});
  const CanonicalSystem c = canon_of_channel({base});
  HashStream h1, h2;
  c.time(h1, 2.0);
  c.time(h2, 3.0);
  EXPECT_FALSE(h1.digest() == h2.digest());
}

TEST(Canonical, LargeTimesAlwaysSnapWithinTheRelativeTolerance) {
  // The snap tolerance is *relative* (1e-9, matching the library's ratio
  // snapping): at magnitudes >= ~0.5 time units every double is within
  // tolerance of a nanosecond grid point, so such systems always
  // normalize -- quantization there is below the library's own
  // identification threshold.
  const TaskSet big({make_task("a", 1.4142135623730951, 10.0, Mode::NF)});
  EXPECT_TRUE(canon_of_channel({big}).normalized());
}

TEST(Canonical, OffGridSystemFallsBackToRawBits) {
  // Small times can genuinely miss the grid: at 1.41...e-3 the relative
  // tolerance is ~1.4e-3 grid units while the value sits ~0.56 grid units
  // from the nearest point.
  const double irrational = 1.4142135623730951e-3;
  const TaskSet odd({make_task("a", irrational, 10.0, Mode::NF)});
  const CanonicalSystem a = canon_of_channel({odd});
  EXPECT_FALSE(a.normalized());
  EXPECT_EQ(a.scale, 1.0);
  // Deterministic: the same system hashes the same ...
  const CanonicalSystem b = canon_of_channel({odd});
  EXPECT_EQ(a.hash, b.hash);
  // ... but a scaled twin is (safely) a different key: raw-bits form is
  // not scale-invariant, and must not pretend to be.
  const CanonicalSystem c = canon_of_channel({scaled(odd, 2.0)});
  EXPECT_FALSE(a.hash == c.hash);
}

TEST(Canonical, NegativeZeroTimeHashesLikePositiveZero) {
  HashStream a, b;
  a.f64(0.0);
  b.f64(-0.0);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Canonical, PaperExampleIsStableAcrossRebuilds) {
  const CanonicalSystem a = canon_of_system(core::paper_example());
  const CanonicalSystem b = canon_of_system(core::paper_example());
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_FALSE(a.hash.empty());
}

// 10^4 generated task sets: distinct content must give distinct hashes.
// Inputs are deduped by exact serialization first, so the assertion is
// about the hash, not about the generator's entropy.
TEST(Canonical, NoCollisionOnGeneratedCorpus) {
  std::set<std::string> seen_content;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_hash;
  std::size_t corpus = 0;
  for (std::uint64_t seed = 0; corpus < 10000; ++seed) {
    Rng rng(seed);
    gen::GenParams gp;
    gp.num_tasks = 3 + static_cast<std::size_t>(seed % 8);
    gp.total_utilization = 0.4 + 0.05 * static_cast<double>(seed % 10);
    const TaskSet ts = gen::generate_task_set(gp, rng);
    std::ostringstream key;
    for (const Task& t : ts) {
      key << t.name << ',' << std::hexfloat << t.wcet << ',' << t.period
          << ',' << t.deadline << ',' << static_cast<int>(t.mode) << ';';
    }
    if (!seen_content.insert(key.str()).second) continue;
    ++corpus;
    const CanonicalSystem c = canon_of_channel({ts});
    EXPECT_TRUE(
        seen_hash.emplace(c.hash.hi, c.hash.lo).second)
        << "hash collision at seed " << seed;
  }
  EXPECT_EQ(seen_hash.size(), corpus);
}

}  // namespace
}  // namespace flexrt::rt
