#include "hier/response_time.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "rt/priority.hpp"
#include "rt/rta.hpp"
#include "sim/simulator.hpp"

namespace flexrt::hier {
namespace {

using rt::make_task;
using rt::Mode;
using rt::TaskSet;

TEST(SupplyInverse, InvertsLinearSupplyExactly) {
  const LinearSupply z(0.5, 2.0);
  // Z(t) = 0.5 (t - 2): demand 1 -> t = 4.
  EXPECT_NEAR(supply_inverse(z, 1.0), 4.0, 1e-6);
  EXPECT_NEAR(supply_inverse(z, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(supply_inverse(z, 3.0), 8.0, 1e-6);
}

TEST(SupplyInverse, InvertsSlotSupply) {
  const SlotSupply z(10.0, 3.0);
  // First supply arrives at 7; demand 3 is covered exactly at t = 10.
  EXPECT_NEAR(supply_inverse(z, 1.0), 8.0, 1e-6);
  EXPECT_NEAR(supply_inverse(z, 3.0), 10.0, 1e-6);
  // Demand 4 needs the second period's ramp: t = 17 + 1.
  EXPECT_NEAR(supply_inverse(z, 4.0), 18.0, 1e-6);
}

TEST(SupplyInverse, RoundTripsWithValue) {
  const SlotSupply z(4.0, 1.5);
  for (double d = 0.1; d <= 6.0; d += 0.3) {
    const double t = supply_inverse(z, d);
    EXPECT_GE(z.value(t) + 1e-6, d);
    EXPECT_LT(z.value(t - 1e-4), d + 1e-6);
  }
}

TEST(FpResponseTime, DedicatedSupplyMatchesClassicRta) {
  Rng rng(71);
  const LinearSupply dedicated(1.0, 0.0);
  for (int trial = 0; trial < 100; ++trial) {
    TaskSet ts;
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < n; ++i) {
      const double period = static_cast<double>(rng.uniform_int(5, 40));
      ts.add(make_task("t" + std::to_string(i),
                       rng.uniform(0.5, period * 0.4), period, Mode::NF));
    }
    const TaskSet rm = rt::sort_rate_monotonic(ts);
    for (std::size_t i = 0; i < rm.size(); ++i) {
      const auto classic = rt::response_time(rm, i);
      const auto hier = fp_response_time(rm, i, dedicated);
      ASSERT_EQ(classic.has_value(), hier.has_value())
          << "trial " << trial << " task " << i;
      if (classic) {
        EXPECT_NEAR(*classic, *hier, 1e-6);
      }
    }
  }
}

TEST(FpResponseTime, SingleTaskInSlot) {
  // One task (1, 8) in a slot (P=4, q=1): critical instant at a window
  // end; 1 unit of work completes at the end of the next window: R = 4.
  const TaskSet ts{make_task("a", 1, 8, Mode::NF)};
  const SlotSupply z(4.0, 1.0);
  const auto r = fp_response_time(ts, 0, z);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 4.0, 1e-6);
}

TEST(FpResponseTime, UnschedulableTaskReportsNullopt) {
  const TaskSet ts{make_task("a", 2, 4, Mode::NF)};  // U = 0.5
  const SlotSupply z(4.0, 1.0);                      // rate 0.25
  EXPECT_FALSE(fp_response_time(ts, 0, z).has_value());
}

TEST(FpResponseTime, BoundsSimulatedResponseOnPaperSystem) {
  // The analytical response bound must dominate every simulated response
  // time, task by task (FP, Table-1 system under a solved design).
  const core::ModeTaskSystem sys = core::paper_example();
  const core::Design d =
      core::solve_design(sys, Scheduler::FP, {0.02, 0.02, 0.021},
                         core::DesignGoal::MaxSlackBandwidth);
  sim::SimOptions opt;
  opt.horizon = 3000.0;
  opt.scheduler = Scheduler::FP;
  const sim::SimResult res = sim::simulate(sys, d.schedule, opt);

  for (const rt::Mode mode : core::kAllModes) {
    for (const rt::TaskSet& raw : sys.partitions(mode)) {
      if (raw.empty()) continue;
      const rt::TaskSet ts = rt::sort_deadline_monotonic(raw);
      // Exact slot supply gives the tighter (still safe) bound.
      const auto bounds = fp_response_times(ts, d.schedule.exact_supply(mode));
      for (std::size_t i = 0; i < ts.size(); ++i) {
        ASSERT_TRUE(bounds[i].has_value()) << ts[i].name;
        for (const sim::TaskStats& stat : res.tasks) {
          if (stat.name == ts[i].name) {
            EXPECT_LE(to_units(stat.max_response), *bounds[i] + 1e-5)
                << ts[i].name;
          }
        }
      }
    }
  }
}

TEST(FpResponseTime, TightOnSimpleSimulatedScenario) {
  // Task (1, 8) alone on an NF channel with NF window [2,3) of frame 4:
  // analysis on the exact supply must match the simulated worst case (3.0)
  // within the worst-case phase assumption (supply analysis assumes the
  // worst alignment, so it may exceed the simulated 3.0, never undershoot).
  TaskSet ch0{make_task("only", 1.0, 8.0, Mode::NF)};
  core::ModeTaskSystem sys({}, {}, {ch0});
  core::ModeSchedule s;
  s.period = 4.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {1.0, 0.0};
  sim::SimOptions opt;
  opt.horizon = 400.0;
  opt.scheduler = Scheduler::FP;
  const sim::SimResult r = sim::simulate(sys, s, opt);
  const auto bound =
      fp_response_time(ch0, 0, s.exact_supply(rt::Mode::NF));
  ASSERT_TRUE(bound.has_value());
  EXPECT_GE(*bound + 1e-9, to_units(r.tasks[0].max_response));
  EXPECT_NEAR(*bound, 4.0, 1e-6);  // worst-case alignment bound
}

}  // namespace
}  // namespace flexrt::hier
