// Property tests for the closed-form SupplyFunction::inverse()
// implementations against the generic bisection fallback, plus regression
// coverage for the fallback's bracketing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "hier/multi_slot_supply.hpp"
#include "hier/response_time.hpp"
#include "hier/supply.hpp"

namespace flexrt::hier {
namespace {

/// Checks that `t = supply.inverse(d)` is (a) the bisection answer to 1e-9
/// relative and (b) minimal: Z(t) covers d but Z just left of t does not.
/// The agreement bound is relative because value() snaps period boundaries
/// with floor_ratio's 1e-9 *relative* tolerance: demands landing exactly on
/// a slot/budget multiple sit on a plateau of width ~1e-9 * t where the
/// closed form returns the exact boundary and bisection the plateau edge.
void check_inverse(const SupplyFunction& supply, double demand) {
  const double closed = supply.inverse(demand);
  const double bisect = supply.inverse_by_bisection(demand, 1e-12);
  EXPECT_NEAR(closed, bisect, 1e-9 * (1.0 + 2.0 * std::abs(bisect)))
      << "demand=" << demand << " rate=" << supply.rate()
      << " delay=" << supply.delay();
  EXPECT_GE(supply.value(closed) + 1e-9, demand);
  if (closed > 1e-6) {
    EXPECT_LT(supply.value(closed - 1e-6), demand + 1e-9)
        << "inverse not minimal at demand=" << demand;
  }
}

TEST(SupplyInverseProperty, LinearSupplyMatchesBisection) {
  Rng rng(7001);
  for (int it = 0; it < 200; ++it) {
    const double alpha = rng.uniform(0.05, 1.0);
    const double delta = rng.uniform(0.0, 20.0);
    const LinearSupply supply(alpha, delta);
    check_inverse(supply, rng.uniform(1e-3, 50.0));
  }
}

TEST(SupplyInverseProperty, SlotSupplyMatchesBisection) {
  Rng rng(7002);
  for (int it = 0; it < 200; ++it) {
    const double period = rng.uniform(0.5, 20.0);
    const double usable = rng.uniform(0.05, 1.0) * period;
    const SlotSupply supply(period, usable);
    check_inverse(supply, rng.uniform(1e-3, 50.0));
    // Whole-slot multiples sit exactly on a ramp end: the snapping edge.
    const double k = static_cast<double>(rng.uniform_int(1, 5));
    check_inverse(supply, k * usable);
  }
}

TEST(SupplyInverseProperty, PeriodicResourceMatchesBisection) {
  Rng rng(7003);
  for (int it = 0; it < 200; ++it) {
    const double period = rng.uniform(0.5, 20.0);
    const double budget = rng.uniform(0.05, 1.0) * period;
    const PeriodicResource supply(period, budget);
    check_inverse(supply, rng.uniform(1e-3, 50.0));
    const double k = static_cast<double>(rng.uniform_int(1, 5));
    check_inverse(supply, k * budget);
  }
}

/// Multi-slot variant of check_inverse. At demands sitting exactly on a
/// plateau level (whole multiples of the frame budget) the per-start curves
/// differ by float noise, so the strict 1e-12 bisection can report the
/// crossing one whole gap later than the plateau edge. The meaningful
/// contract is: the closed form is never *later* than the strict answer,
/// its supply covers the demand at the library's 1e-9 tolerance (the same
/// leq_tol regime every schedulability consumer uses), and it is minimal.
void check_multi_slot_inverse(const MultiSlotSupply& supply, double demand) {
  const double closed = supply.inverse(demand);
  const double bisect = supply.inverse_by_bisection(demand, 1e-12);
  EXPECT_LE(closed, bisect + 1e-9 * (1.0 + 2.0 * std::abs(bisect)))
      << "demand=" << demand << " rate=" << supply.rate()
      << " delay=" << supply.delay();
  EXPECT_GE(supply.value(closed), demand - 1e-9 * (1.0 + demand))
      << "demand=" << demand;
  if (closed > 1e-6) {
    EXPECT_LT(supply.value(closed - 1e-6), demand + 1e-9)
        << "inverse not minimal at demand=" << demand;
  }
}

TEST(SupplyInverseProperty, MultiSlotSupplyMatchesBisection) {
  // Even splits exercise the regular geometry...
  Rng rng(7005);
  for (int it = 0; it < 100; ++it) {
    const double period = rng.uniform(1.0, 20.0);
    const double usable = rng.uniform(0.1, 0.9) * period;
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const MultiSlotSupply supply = evenly_split_supply(period, usable, k);
    check_multi_slot_inverse(supply, rng.uniform(1e-3, 50.0));
    const double mult = static_cast<double>(rng.uniform_int(1, 5));
    check_multi_slot_inverse(supply, mult * usable);  // plateau edge
  }
  // ...irregular window layouts the uneven gaps.
  for (int it = 0; it < 100; ++it) {
    const double period = rng.uniform(2.0, 20.0);
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 4));
    std::vector<MultiSlotSupply::Window> windows;
    double cursor = 0.0;
    for (std::size_t w = 0; w < k; ++w) {
      const double room = period - cursor;
      if (room < 0.2) break;
      const double gap = rng.uniform(0.0, room * 0.4);
      const double len = rng.uniform(0.05, std::max(0.051, room * 0.3));
      windows.push_back({cursor + gap, cursor + gap + len});
      cursor = windows.back().end;
    }
    if (windows.empty() || windows.back().end > period) continue;
    const MultiSlotSupply supply(period, std::move(windows));
    check_multi_slot_inverse(supply, rng.uniform(1e-3, 40.0));
  }
}

TEST(SupplyInverse, MultiSlotClosedFormIsMinimal) {
  // Demand reached exactly at the end of a window followed by a gap: the
  // inverse must land on the window end, not anywhere in the flat region.
  const MultiSlotSupply supply(10.0, {{0.0, 1.0}, {5.0, 6.0}});
  // Worst start is at a window end; one full window (1.0) of demand is
  // first guaranteed after waiting out the longest gap plus the window.
  EXPECT_NEAR(supply.inverse(1.0), 5.0, 1e-9);
  EXPECT_NEAR(supply.value(supply.inverse(1.0)), 1.0, 1e-9);
  // cumulative_inverse on frame multiples lands on the generating ramp end.
  EXPECT_NEAR(supply.cumulative_inverse(2.0), 6.0, 1e-9);
  EXPECT_NEAR(supply.cumulative_inverse(4.0), 16.0, 1e-9);
}

TEST(SupplyInverse, NonPositiveDemandIsZero) {
  const SlotSupply slot(2.0, 0.5);
  EXPECT_DOUBLE_EQ(slot.inverse(0.0), 0.0);
  EXPECT_DOUBLE_EQ(slot.inverse(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(slot.inverse_by_bisection(0.0), 0.0);
  EXPECT_DOUBLE_EQ(LinearSupply(0.5, 1.0).inverse(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(PeriodicResource(2.0, 1.0).inverse(0.0), 0.0);
}

TEST(SupplyInverse, FullBudgetPeriodicResourceIsIdentity) {
  const PeriodicResource supply(4.0, 4.0);  // Theta == Pi: sbf(t) = t
  EXPECT_NEAR(supply.inverse(2.5), 2.5, 1e-12);
  EXPECT_NEAR(supply.inverse(9.0), 9.0, 1e-12);
}

TEST(SupplyInverse, EmptySlotCannotCoverDemand) {
  const SlotSupply supply(2.0, 0.0);
  EXPECT_THROW(supply.inverse(1.0), ModelError);
}

TEST(SupplyInverse, SupplyInverseFreeFunctionDelegatesToClosedForm) {
  const SlotSupply slot(2.0, 0.75);
  EXPECT_DOUBLE_EQ(supply_inverse(slot, 1.3), slot.inverse(1.3));
}

/// Exotic staircase whose long-run rate overestimates the early supply, so
/// the fallback's doubling loop must actually run; counts value() calls to
/// pin down the bracketing regression (the seed version restarted the
/// bisection at lo = 0, re-scanning [0, delay) it had already excluded).
class CountingStaircase final : public SupplyFunction {
 public:
  CountingStaircase(double delay, double step) : delay_(delay), step_(step) {}
  double value(double t) const noexcept override {
    ++calls_;
    if (t <= delay_) return 0.0;
    return std::floor((t - delay_) / step_);
  }
  double rate() const noexcept override { return 1.0 / step_; }
  double delay() const noexcept override { return delay_; }
  int calls() const noexcept { return calls_; }

 private:
  double delay_;
  double step_;
  mutable int calls_ = 0;
};

TEST(SupplyInverse, BisectionBracketsFromTheDelay) {
  // Smallest t with floor((t - delay)/10) >= 2.5 is delay + 30.
  const double delay = 1e6;
  CountingStaircase supply(delay, 10.0);
  const double t = supply.inverse(2.5);  // base class: bisection fallback
  EXPECT_NEAR(t, delay + 30.0, 1e-6);
  // Bracketing from the delay keeps the search interval ~ demand/rate wide.
  // The seed version bisected [0, ~delay], needing log2(1e6/1e-9) ~ 50
  // value() calls plus the bracketing; fail well above the hardened cost.
  EXPECT_LT(supply.calls(), 45);
}

TEST(SupplyInverse, BisectionMatchesClosedFormThroughBaseClass) {
  // Calling through the base pointer must agree with the closed forms.
  Rng rng(7004);
  for (int it = 0; it < 50; ++it) {
    const double period = rng.uniform(1.0, 10.0);
    const double usable = rng.uniform(0.1, 1.0) * period;
    const SlotSupply slot(period, usable);
    const SupplyFunction& base = slot;
    const double d = rng.uniform(0.01, 20.0);
    EXPECT_NEAR(base.inverse(d), slot.inverse_by_bisection(d, 1e-12), 1e-9);
  }
}

}  // namespace
}  // namespace flexrt::hier
