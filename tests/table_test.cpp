#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace flexrt {
namespace {

TEST(Table, PrintsAlignedColumnsWithRule) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("b").cell(std::int64_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x").cell(2.0, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2.0\n");
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), ModelError);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), ModelError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ModelError);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 3), "3.142");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace flexrt
