#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/paper_example.hpp"

namespace flexrt::sim {
namespace {

using rt::make_task;
using rt::Mode;
using rt::TaskSet;

// A schedule giving every mode a 1-unit usable slot in a 4-unit frame
// (slack at the end), no overheads: integers, so tick-exact.
core::ModeSchedule unit_schedule() {
  core::ModeSchedule s;
  s.period = 4.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {1.0, 0.0};
  return s;
}

core::ModeTaskSystem single_nf_task(double wcet, double period) {
  TaskSet ch0{make_task("only", wcet, period, Mode::NF)};
  return core::ModeTaskSystem({}, {}, {ch0});
}

TEST(Simulator, SingleTaskMeetsGenerousDeadlines) {
  // One NF task (1, 8): per 4-unit frame it gets 1 unit at offset [2,3).
  const auto sys = single_nf_task(1.0, 8.0);
  SimOptions opt;
  opt.horizon = 400.0;
  const SimResult r = simulate(sys, unit_schedule(), opt);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].releases, 50u);
  EXPECT_EQ(r.tasks[0].completions, 50u);
  EXPECT_EQ(r.tasks[0].deadline_misses, 0u);
  // Released at 0, NF window [2,3): response exactly 3 time units.
  EXPECT_EQ(r.tasks[0].max_response, to_ticks(3.0));
}

TEST(Simulator, OverloadedTaskMissesDeadlines) {
  // Demand 3 per period 4 but NF supplies only 1 per frame of 4.
  const auto sys = single_nf_task(3.0, 4.0);
  SimOptions opt;
  opt.horizon = 100.0;
  const SimResult r = simulate(sys, unit_schedule(), opt);
  EXPECT_GT(r.tasks[0].deadline_misses, 10u);
}

TEST(Simulator, KillOnMissStopsLateJobs) {
  const auto sys = single_nf_task(3.0, 4.0);
  SimOptions opt;
  opt.horizon = 100.0;
  opt.kill_on_miss = true;
  const SimResult r = simulate(sys, unit_schedule(), opt);
  EXPECT_GT(r.tasks[0].deadline_misses, 10u);
  // Killed jobs never complete; with kill-on-miss every job either
  // completes in time or is killed at its deadline.
  EXPECT_EQ(r.tasks[0].completions, 0u);  // 3 > 1 supply: none can make it
}

TEST(Simulator, FixedPriorityPreemption) {
  // Two NF tasks on the SAME channel; FP: shorter deadline wins.
  TaskSet ch0{make_task("hi", 1.0, 8.0, Mode::NF),
              make_task("lo", 2.0, 16.0, Mode::NF)};
  core::ModeTaskSystem sys({}, {}, {ch0});
  core::ModeSchedule s;
  s.period = 4.0;
  s.ft = {0.0, 0.0};
  s.fs = {0.0, 0.0};
  s.nf = {2.0, 0.0};  // NF gets [0,2) of every frame
  SimOptions opt;
  opt.horizon = 160.0;
  opt.scheduler = hier::Scheduler::FP;
  const SimResult r = simulate(sys, s, opt);
  const TaskStats& hi = r.tasks[0];
  const TaskStats& lo = r.tasks[1];
  EXPECT_EQ(hi.deadline_misses, 0u);
  EXPECT_EQ(lo.deadline_misses, 0u);
  // hi runs first in every window: response 1; lo finishes by t=4+...
  EXPECT_EQ(hi.max_response, to_ticks(1.0));
  EXPECT_GT(lo.max_response, hi.max_response);
}

TEST(Simulator, EdfOrdersByAbsoluteDeadline) {
  TaskSet ch0{make_task("short", 1.0, 6.0, Mode::NF),
              make_task("long", 1.0, 30.0, Mode::NF)};
  core::ModeTaskSystem sys({}, {}, {ch0});
  core::ModeSchedule s;
  s.period = 2.0;
  s.ft = {0.0, 0.0};
  s.fs = {0.0, 0.0};
  s.nf = {1.0, 0.0};
  SimOptions opt;
  opt.horizon = 300.0;
  opt.scheduler = hier::Scheduler::EDF;
  const SimResult r = simulate(sys, s, opt);
  EXPECT_EQ(r.total_misses(), 0u);
  // "short" (deadline 6) always beats "long" (deadline 30) at time 0.
  EXPECT_EQ(r.tasks[0].max_response, to_ticks(1.0));
}

TEST(Simulator, ChannelsOfAModeRunInParallel) {
  // Two NF channels each with a task consuming the WHOLE NF window; both
  // must meet deadlines because channels are parallel processors.
  TaskSet a{make_task("a", 1.0, 4.0, Mode::NF)};
  TaskSet b{make_task("b", 1.0, 4.0, Mode::NF)};
  core::ModeTaskSystem sys({}, {}, {a, b});
  core::ModeSchedule s;
  s.period = 4.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {1.0, 0.0};
  SimOptions opt;
  opt.horizon = 400.0;
  const SimResult r = simulate(sys, s, opt);
  EXPECT_EQ(r.total_misses(), 0u);
  EXPECT_EQ(r.tasks[0].completions, 100u);
  EXPECT_EQ(r.tasks[1].completions, 100u);
}

TEST(Simulator, ModesAreTemporallyIsolated) {
  // An overloaded NF channel must not disturb FT tasks.
  TaskSet ft{make_task("ft", 0.5, 4.0, Mode::FT)};
  TaskSet nf{make_task("hog", 4.0, 4.0, Mode::NF)};
  core::ModeTaskSystem sys({ft}, {}, {nf});
  SimOptions opt;
  opt.horizon = 400.0;
  const SimResult r = simulate(sys, unit_schedule(), opt);
  EXPECT_EQ(r.tasks[0].deadline_misses, 0u);   // FT task fine
  EXPECT_GT(r.tasks[1].deadline_misses, 10u);  // NF hog drowns
}

TEST(Simulator, BusyTimeAccountedPerMode) {
  const auto sys = single_nf_task(1.0, 8.0);
  SimOptions opt;
  opt.horizon = 80.0;
  const SimResult r = simulate(sys, unit_schedule(), opt);
  // 10 jobs x 1 unit, all in NF mode.
  EXPECT_EQ(r.busy_ticks[2], to_ticks(10.0));
  EXPECT_EQ(r.busy_ticks[0], 0);
  EXPECT_EQ(r.busy_ticks[1], 0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  TaskSet ch0{make_task("x", 0.7, 5.0, Mode::NF),
              make_task("y", 1.3, 9.0, Mode::NF)};
  core::ModeTaskSystem sys({}, {}, {ch0});
  SimOptions opt;
  opt.horizon = 500.0;
  opt.sporadic_jitter = 0.5;
  opt.seed = 99;
  const SimResult r1 = simulate(sys, unit_schedule(), opt);
  const SimResult r2 = simulate(sys, unit_schedule(), opt);
  ASSERT_EQ(r1.tasks.size(), r2.tasks.size());
  for (std::size_t i = 0; i < r1.tasks.size(); ++i) {
    EXPECT_EQ(r1.tasks[i].releases, r2.tasks[i].releases);
    EXPECT_EQ(r1.tasks[i].completions, r2.tasks[i].completions);
    EXPECT_EQ(r1.tasks[i].max_response, r2.tasks[i].max_response);
    EXPECT_EQ(r1.tasks[i].total_response, r2.tasks[i].total_response);
  }
}

TEST(Simulator, SporadicJitterStretchesArrivals) {
  const auto sys = single_nf_task(0.5, 8.0);
  SimOptions strict;
  strict.horizon = 800.0;
  SimOptions jittered = strict;
  jittered.sporadic_jitter = 4.0;
  const SimResult a = simulate(sys, unit_schedule(), strict);
  const SimResult b = simulate(sys, unit_schedule(), jittered);
  EXPECT_LT(b.tasks[0].releases, a.tasks[0].releases);
  EXPECT_EQ(b.total_misses(), 0u);  // sporadic delays only reduce load
}

TEST(Simulator, RecordedSupplyMatchesFrameLayout) {
  const auto sys = single_nf_task(0.5, 8.0);
  SimOptions opt;
  opt.horizon = 40.0;  // 10 frames of 4
  opt.record_supply = true;
  Simulator sim(sys, unit_schedule(), opt);
  sim.run();
  // Each mode gets 1 unit per 4-unit frame.
  EXPECT_EQ(sim.supply(Mode::FT).total(), to_ticks(10.0));
  EXPECT_EQ(sim.supply(Mode::FS).total(), to_ticks(10.0));
  EXPECT_EQ(sim.supply(Mode::NF).total(), to_ticks(10.0));
}

TEST(Simulator, RejectsNonPositiveHorizon) {
  const auto sys = single_nf_task(1.0, 8.0);
  SimOptions opt;
  opt.horizon = 0.0;
  EXPECT_THROW(Simulator(sys, unit_schedule(), opt), ModelError);
}

}  // namespace
}  // namespace flexrt::sim
