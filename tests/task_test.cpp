#include "rt/task.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "rt/priority.hpp"
#include "rt/task_set.hpp"

namespace flexrt::rt {
namespace {

TEST(Task, ImplicitDeadlineFactory) {
  const Task t = make_task("a", 2.0, 10.0, Mode::FT);
  EXPECT_EQ(t.deadline, 10.0);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.2);
  EXPECT_EQ(t.mode, Mode::FT);
}

TEST(Task, ConstrainedDeadlineFactory) {
  const Task t = make_task("a", 2.0, 10.0, 6.0, Mode::FS);
  EXPECT_EQ(t.deadline, 6.0);
}

TEST(Task, ValidationRejectsBadParameters) {
  EXPECT_THROW(make_task("x", 0.0, 10.0, Mode::NF), ModelError);
  EXPECT_THROW(make_task("x", -1.0, 10.0, Mode::NF), ModelError);
  EXPECT_THROW(make_task("x", 1.0, 0.0, Mode::NF), ModelError);
  EXPECT_THROW(make_task("x", 1.0, 10.0, 12.0, Mode::NF), ModelError);  // D>T
  EXPECT_THROW(make_task("x", 5.0, 10.0, 4.0, Mode::NF), ModelError);   // C>D
}

TEST(Task, ModeNames) {
  EXPECT_STREQ(to_string(Mode::FT), "FT");
  EXPECT_STREQ(to_string(Mode::FS), "FS");
  EXPECT_STREQ(to_string(Mode::NF), "NF");
}

TEST(TaskSet, UtilizationSumsAndMax) {
  TaskSet ts{make_task("a", 1, 4, Mode::NF), make_task("b", 1, 2, Mode::NF)};
  EXPECT_DOUBLE_EQ(ts.utilization(), 0.75);
  EXPECT_DOUBLE_EQ(ts.max_utilization(), 0.5);
}

TEST(TaskSet, HyperperiodIntegerPeriods) {
  TaskSet ts{make_task("a", 1, 4, Mode::NF), make_task("b", 1, 6, Mode::NF),
             make_task("c", 1, 10, Mode::NF)};
  EXPECT_DOUBLE_EQ(ts.hyperperiod(), 60.0);
}

TEST(TaskSet, HyperperiodFractionalPeriodsOnGrid) {
  TaskSet ts{make_task("a", 0.1, 0.5, Mode::NF),
             make_task("b", 0.1, 0.75, Mode::NF)};
  EXPECT_NEAR(ts.hyperperiod(), 1.5, 1e-9);
}

TEST(TaskSet, ByModeFilters) {
  TaskSet ts{make_task("a", 1, 4, Mode::NF), make_task("b", 1, 6, Mode::FT),
             make_task("c", 1, 8, Mode::FT)};
  EXPECT_EQ(ts.by_mode(Mode::FT).size(), 2u);
  EXPECT_EQ(ts.by_mode(Mode::NF).size(), 1u);
  EXPECT_EQ(ts.by_mode(Mode::FS).size(), 0u);
}

TEST(TaskSet, EmptySetProperties) {
  const TaskSet ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(ts.hyperperiod(), 1e-6);  // lcm of nothing = 1 grid unit
}

TEST(Priority, RateMonotonicSortsByPeriod) {
  TaskSet ts{make_task("slow", 1, 20, Mode::NF),
             make_task("fast", 1, 5, Mode::NF),
             make_task("mid", 1, 10, Mode::NF)};
  const TaskSet rm = sort_rate_monotonic(ts);
  EXPECT_EQ(rm[0].name, "fast");
  EXPECT_EQ(rm[1].name, "mid");
  EXPECT_EQ(rm[2].name, "slow");
  EXPECT_TRUE(is_rate_monotonic_order(rm));
  EXPECT_FALSE(is_rate_monotonic_order(ts));
}

TEST(Priority, DeadlineMonotonicSortsByDeadline) {
  TaskSet ts{make_task("a", 1, 20, 18, Mode::NF),
             make_task("b", 1, 30, 5, Mode::NF)};
  const TaskSet dm = sort_deadline_monotonic(ts);
  EXPECT_EQ(dm[0].name, "b");
  EXPECT_TRUE(is_deadline_monotonic_order(dm));
}

TEST(Priority, StableOnTies) {
  TaskSet ts{make_task("first", 1, 10, Mode::NF),
             make_task("second", 2, 10, Mode::NF)};
  const TaskSet rm = sort_rate_monotonic(ts);
  EXPECT_EQ(rm[0].name, "first");
  EXPECT_EQ(rm[1].name, "second");
}

}  // namespace
}  // namespace flexrt::rt
