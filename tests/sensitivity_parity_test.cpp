// Acceptance parity: the in-place batched sensitivity kernels must
// reproduce the seed's deep-copy-per-probe implementation (frozen in
// bench/legacy_kernels.hpp) on the paper example, for both schedulers, to
// within the shared bisection tolerance.
#include <gtest/gtest.h>

#include "core/analysis_engine.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "core/sensitivity.hpp"
#include "legacy_kernels.hpp"

namespace flexrt::core {
namespace {

ModeSchedule solved_schedule(hier::Scheduler alg) {
  return solve_design(paper_example(), alg, {0.02, 0.02, 0.02},
                      DesignGoal::MaxSlackBandwidth)
      .schedule;
}

// Both implementations bisect to 1e-4 on lambda; identical decisions give
// identical lo endpoints, so the gap can only reach the tolerance if one
// probe flips at an ulp-tight boundary.
constexpr double kMarginTol = 2e-4;

class SensitivityParity : public ::testing::TestWithParam<hier::Scheduler> {};

TEST_P(SensitivityParity, ReportMatchesDeepCopyReference) {
  const hier::Scheduler alg = GetParam();
  const ModeTaskSystem sys = paper_example();
  const ModeSchedule schedule = solved_schedule(alg);

  const std::vector<TaskMargin> fast = sensitivity_report(sys, schedule, alg);
  const std::vector<TaskMargin> ref =
      legacy::sensitivity_report(sys, schedule, alg);

  ASSERT_EQ(fast.size(), ref.size());
  ASSERT_EQ(fast.size(), sys.num_tasks());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].name, ref[i].name);
    EXPECT_EQ(fast[i].mode, ref[i].mode);
    EXPECT_DOUBLE_EQ(fast[i].wcet, ref[i].wcet);
    EXPECT_NEAR(fast[i].scale_margin, ref[i].scale_margin, kMarginTol)
        << "task " << fast[i].name;
  }
}

TEST_P(SensitivityParity, SingleTaskMarginMatchesDeepCopyReference) {
  const hier::Scheduler alg = GetParam();
  const ModeTaskSystem sys = paper_example();
  const ModeSchedule schedule = solved_schedule(alg);
  for (const rt::Mode mode : kAllModes) {
    for (const rt::TaskSet& ts : sys.partitions(mode)) {
      for (const rt::Task& t : ts) {
        EXPECT_NEAR(wcet_scale_margin(sys, schedule, alg, t.name),
                    legacy::bisect_margin(sys, schedule, alg, t.name, 16.0,
                                          1e-4),
                    kMarginTol)
            << "task " << t.name;
      }
    }
  }
}

TEST_P(SensitivityParity, GlobalMarginMatchesDeepCopyReference) {
  const hier::Scheduler alg = GetParam();
  const ModeTaskSystem sys = paper_example();
  const ModeSchedule schedule = solved_schedule(alg);
  EXPECT_NEAR(global_scale_margin(sys, schedule, alg),
              legacy::bisect_margin(sys, schedule, alg, "", 16.0, 1e-4),
              kMarginTol);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SensitivityParity,
                         ::testing::Values(hier::Scheduler::EDF,
                                           hier::Scheduler::FP),
                         [](const auto& param_info) {
                           return hier::to_string(param_info.param);
                         });

TEST(BatchEngine, VerifyMatchesVerifySchedule) {
  const ModeTaskSystem sys = paper_example();
  for (const hier::Scheduler alg :
       {hier::Scheduler::EDF, hier::Scheduler::FP}) {
    const analysis::BatchEngine engine(sys, alg);
    ModeSchedule schedule = solved_schedule(alg);
    EXPECT_TRUE(engine.verify(schedule));
    EXPECT_EQ(engine.verify(schedule), verify_schedule(sys, schedule, alg));
    EXPECT_EQ(engine.verify(schedule, true),
              verify_schedule(sys, schedule, alg, true));
    // Shrink one quantum until infeasible; both verdicts must track.
    schedule.nf.usable *= 0.5;
    EXPECT_EQ(engine.verify(schedule), verify_schedule(sys, schedule, alg));
    schedule.nf.usable = 0.0;
    EXPECT_EQ(engine.verify(schedule), verify_schedule(sys, schedule, alg));
  }
}

TEST(BatchEngine, PeriodKernelsMatchOneShotFronts) {
  const ModeTaskSystem sys = paper_example();
  const analysis::BatchEngine engine(sys, hier::Scheduler::EDF);
  for (const double p : {0.8, 1.5, 2.0, 3.0}) {
    EXPECT_DOUBLE_EQ(engine.feasibility_margin(p),
                     feasibility_margin(sys, hier::Scheduler::EDF, p));
    for (const rt::Mode mode : kAllModes) {
      EXPECT_DOUBLE_EQ(
          engine.mode_min_quantum(mode, p),
          mode_min_quantum(sys, mode, hier::Scheduler::EDF, p));
    }
  }
  EXPECT_DOUBLE_EQ(engine.max_feasible_period(0.1),
                   max_feasible_period(sys, hier::Scheduler::EDF, 0.1));
}

}  // namespace
}  // namespace flexrt::core
