#include "io/task_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace flexrt::io {
namespace {

TEST(ParseTaskSet, BasicLinesWithDefaults) {
  const rt::TaskSet ts = parse_task_set_string(
      "a 1 10 FT\n"
      "b 2 20 15 fs\n"   // explicit deadline, lowercase mode
      "c 0.5 8 NF\n");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].mode, rt::Mode::FT);
  EXPECT_DOUBLE_EQ(ts[0].deadline, 10.0);  // implicit D = T
  EXPECT_DOUBLE_EQ(ts[1].deadline, 15.0);
  EXPECT_EQ(ts[1].mode, rt::Mode::FS);
  EXPECT_DOUBLE_EQ(ts[2].wcet, 0.5);
}

TEST(ParseTaskSet, CommentsAndBlankLines) {
  const rt::TaskSet ts = parse_task_set_string(
      "# header comment\n"
      "\n"
      "a 1 10 FT   # trailing comment\n"
      "   \n");
  EXPECT_EQ(ts.size(), 1u);
}

TEST(ParseTaskSet, ErrorsCarryLineNumbers) {
  try {
    parse_task_set_string("a 1 10 FT\nbroken 1\n");
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParseTaskSet, AcceptsCrlfAndTrailingWhitespace) {
  const rt::TaskSet ts = parse_task_set_string(
      "a 1 10 FT\r\n"
      "b 2 20 15 FS \t\r\n"
      "c 0.5 8 NF 2\r\n"  // pinned channel before the CR
      "\r\n");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].mode, rt::Mode::FT);
  EXPECT_DOUBLE_EQ(ts[1].deadline, 15.0);
  EXPECT_EQ(ts[2].mode, rt::Mode::NF);

  const ParsedSystem p = parse_mode_task_system_string("c 0.5 8 NF 2\r\n");
  EXPECT_EQ(p.system.partitions(rt::Mode::NF)[2].size(), 1u);
}

TEST(ParseTaskSet, ErrorsNameTheOffendingToken) {
  const auto message_of = [](const char* text) {
    try {
      parse_task_set_string(text);
    } catch (const ModelError& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of("a x7 10 FT\n").find("'x7'"), std::string::npos);
  EXPECT_NE(message_of("a 1 1y0 FT\n").find("'1y0'"), std::string::npos);
  EXPECT_NE(message_of("a 1 10 XX\n").find("'XX'"), std::string::npos);
  EXPECT_NE(message_of("a 1 10 FT zz\n").find("'zz'"), std::string::npos);
  EXPECT_NE(message_of("a 1 10 FT 0 junk\n").find("'junk'"),
            std::string::npos);
  EXPECT_NE(message_of("broken 1\n").find("'broken 1'"), std::string::npos);
}

TEST(ParseTaskSet, RejectsBadMode) {
  EXPECT_THROW(parse_task_set_string("a 1 10 XX\n"), ModelError);
}

TEST(ParseTaskSet, RejectsBadTaskParameters) {
  EXPECT_THROW(parse_task_set_string("a 0 10 FT\n"), ModelError);   // C = 0
  EXPECT_THROW(parse_task_set_string("a 5 10 4 FT\n"), ModelError); // C > D
}

TEST(ParseTaskSet, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_task_set_string("a 1 10 FT 0 junk\n"), ModelError);
}

TEST(ParseModeTaskSystem, ExplicitChannelsRespected) {
  const ParsedSystem p = parse_mode_task_system_string(
      "a 1 10 FS 0\n"
      "b 1 10 FS 1\n"
      "c 1 10 NF 3\n");
  EXPECT_TRUE(p.had_explicit_channels);
  EXPECT_EQ(p.system.partitions(rt::Mode::FS)[0].size(), 1u);
  EXPECT_EQ(p.system.partitions(rt::Mode::FS)[1].size(), 1u);
  EXPECT_EQ(p.system.partitions(rt::Mode::NF)[3][0].name, "c");
}

TEST(ParseModeTaskSystem, ChannelOutOfRangeRejected) {
  EXPECT_THROW(parse_mode_task_system_string("a 1 10 FS 2\n"), ModelError);
  EXPECT_THROW(parse_mode_task_system_string("a 1 10 FT 1\n"), ModelError);
  EXPECT_THROW(parse_mode_task_system_string("a 1 10 NF 4\n"), ModelError);
}

TEST(ParseModeTaskSystem, UnpinnedTasksPackedAroundPinnedOnes) {
  // Channel 0 is pinned nearly full; the unpinned heavy task must land on
  // channel 1.
  const ParsedSystem p = parse_mode_task_system_string(
      "pin 9 10 FS 0\n"
      "free 8 10 FS\n");
  EXPECT_EQ(p.system.partitions(rt::Mode::FS)[1][0].name, "free");
}

TEST(ParseModeTaskSystem, PackingFailureThrows) {
  EXPECT_THROW(parse_mode_task_system_string(
                   "a 9 10 FT\n"
                   "b 9 10 FT\n"),  // 1.8 on the single FT channel
               ModelError);
}

TEST(WriteTaskSet, RoundTripsThroughParser) {
  const rt::TaskSet original = parse_task_set_string(
      "a 1 10 FT\n"
      "b 2.5 20 15 FS\n"
      "c 0.5 8 NF\n");
  std::ostringstream os;
  write_task_set(os, original);
  const rt::TaskSet again = parse_task_set_string(os.str());
  ASSERT_EQ(again.size(), original.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].name, original[i].name);
    EXPECT_DOUBLE_EQ(again[i].wcet, original[i].wcet);
    EXPECT_DOUBLE_EQ(again[i].period, original[i].period);
    EXPECT_DOUBLE_EQ(again[i].deadline, original[i].deadline);
    EXPECT_EQ(again[i].mode, original[i].mode);
  }
}

TEST(ParseModeTaskSystem, PaperFileReproducesManualPartition) {
  // The example data file must parse into the Table-1 partition.
  const char* text =
      "tau1  1  6  NF 0\n"
      "tau2  1  8  NF 1\n"
      "tau3  1 12  NF 1\n"
      "tau4  2 10  NF 2\n"
      "tau5  6 24  NF 3\n"
      "tau6  1 10  FS 0\n"
      "tau7  1 15  FS 0\n"
      "tau8  2 20  FS 0\n"
      "tau9  1  4  FS 1\n"
      "tau10 1 12  FT 0\n"
      "tau11 1 15  FT 0\n"
      "tau12 1 20  FT 0\n"
      "tau13 2 30  FT 0\n";
  const ParsedSystem p = parse_mode_task_system_string(text);
  EXPECT_EQ(p.system.num_tasks(), 13u);
  EXPECT_NEAR(p.system.required_bandwidth(rt::Mode::FT), 0.267, 1e-3);
  EXPECT_NEAR(p.system.required_bandwidth(rt::Mode::FS), 0.267, 1e-3);
  EXPECT_NEAR(p.system.required_bandwidth(rt::Mode::NF), 0.250, 1e-3);
}

}  // namespace
}  // namespace flexrt::io
