#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/paper_example.hpp"
#include "sim/simulator.hpp"

namespace flexrt::sim {
namespace {

TEST(Trace, RecordsUpToCapacityAndCounts) {
  Trace t(3);
  for (int i = 0; i < 5; ++i) {
    t.record(i, TraceKind::Release, "x", i);
  }
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.total_recorded(), 5u);
  EXPECT_TRUE(t.truncated());
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace t(0);
  EXPECT_FALSE(t.enabled());
  t.record(1, TraceKind::Fault, "");
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, PrintFormat) {
  Trace t(10);
  t.record(to_ticks(1.5), TraceKind::Start, "tau1", 2);
  t.record(to_ticks(2.0), TraceKind::Fault, "", 3);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("[1.500000] start tau1 (2)"), std::string::npos);
  EXPECT_NE(out.find("[2.000000] fault (3)"), std::string::npos);
  EXPECT_EQ(out.find("truncated"), std::string::npos);
}

TEST(Trace, PrintMarksTruncation) {
  Trace t(1);
  t.record(0, TraceKind::Release, "a");
  t.record(1, TraceKind::Release, "b");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1 more events (truncated)"), std::string::npos);
}

TEST(Trace, KindNamesComplete) {
  for (const TraceKind k :
       {TraceKind::Release, TraceKind::Start, TraceKind::Preempt,
        TraceKind::Suspend, TraceKind::Complete, TraceKind::Silence,
        TraceKind::Kill, TraceKind::DeadlineMiss, TraceKind::WindowOpen,
        TraceKind::WindowClose, TraceKind::Fault}) {
    EXPECT_STRNE(to_string(k), "?");
  }
}

TEST(SimulatorTrace, CapturesLifecycleInOrder) {
  rt::TaskSet ch0{rt::make_task("only", 1.0, 8.0, rt::Mode::NF)};
  core::ModeTaskSystem sys({}, {}, {ch0});
  core::ModeSchedule s;
  s.period = 4.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {1.0, 0.0};
  SimOptions opt;
  opt.horizon = 8.0;
  opt.trace_capacity = 256;
  Simulator sim(sys, s, opt);
  sim.run();
  const auto& ev = sim.trace().events();
  ASSERT_FALSE(ev.empty());
  // Events are time-ordered.
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i].time, ev[i - 1].time);
  }
  // The first job's lifecycle: release at 0, start at 2 (NF window), then
  // complete at 3.
  auto find = [&](TraceKind kind) -> const TraceEvent* {
    for (const TraceEvent& e : ev) {
      if (e.kind == kind) return &e;
    }
    return nullptr;
  };
  ASSERT_NE(find(TraceKind::Release), nullptr);
  ASSERT_NE(find(TraceKind::Start), nullptr);
  ASSERT_NE(find(TraceKind::Complete), nullptr);
  EXPECT_EQ(find(TraceKind::Release)->time, 0);
  EXPECT_EQ(find(TraceKind::Start)->time, to_ticks(2.0));
  EXPECT_EQ(find(TraceKind::Complete)->time, to_ticks(3.0));
  EXPECT_EQ(find(TraceKind::Start)->who, "only");
  // Window events for all three modes appear.
  ASSERT_NE(find(TraceKind::WindowOpen), nullptr);
  ASSERT_NE(find(TraceKind::WindowClose), nullptr);
}

TEST(SimulatorTrace, RecordsPreemptionAndMisses) {
  rt::TaskSet ch0{rt::make_task("hi", 1.0, 4.0, 2.0, rt::Mode::NF),
                  rt::make_task("lo", 9.0, 10.0, rt::Mode::NF)};
  core::ModeTaskSystem sys({}, {}, {ch0});
  core::ModeSchedule s;
  s.period = 2.0;
  s.ft = {0.0, 0.0};
  s.fs = {0.0, 0.0};
  s.nf = {2.0, 0.0};  // NF owns the whole frame
  SimOptions opt;
  opt.horizon = 40.0;
  opt.scheduler = hier::Scheduler::FP;
  opt.trace_capacity = 4096;
  Simulator sim(sys, s, opt);
  const SimResult r = sim.run();
  bool saw_preempt = false, saw_miss = false;
  for (const TraceEvent& e : sim.trace().events()) {
    saw_preempt |= e.kind == TraceKind::Preempt && e.who == "lo";
    saw_miss |= e.kind == TraceKind::DeadlineMiss;
  }
  EXPECT_TRUE(saw_preempt);  // hi preempts lo every 4 units
  // Total utilization 0.9 + 0.25 = 1.15 > 1: lo must miss.
  EXPECT_EQ(saw_miss, r.total_misses() > 0);
  EXPECT_TRUE(saw_miss);
}

}  // namespace
}  // namespace flexrt::sim
