#include "sim/frame.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexrt::sim {
namespace {

core::ModeSchedule simple_schedule() {
  core::ModeSchedule s;
  s.period = 10.0;
  s.ft = {2.0, 0.5};  // slot [0, 2.5), usable [0, 2)
  s.fs = {3.0, 0.5};  // slot [2.5, 6), usable [2.5, 5.5)
  s.nf = {2.0, 1.0};  // slot [6, 9), usable [6, 8); slack [9, 10)
  return s;
}

TEST(FrameLayout, WindowsFollowScheduleOrder) {
  const FrameLayout f(simple_schedule());
  EXPECT_EQ(f.period(), to_ticks(10.0));
  EXPECT_EQ(f.window(rt::Mode::FT).begin, 0);
  EXPECT_EQ(f.window(rt::Mode::FT).usable_end, to_ticks(2.0));
  EXPECT_EQ(f.window(rt::Mode::FT).end, to_ticks(2.5));
  EXPECT_EQ(f.window(rt::Mode::FS).begin, to_ticks(2.5));
  EXPECT_EQ(f.window(rt::Mode::FS).usable_end, to_ticks(5.5));
  EXPECT_EQ(f.window(rt::Mode::NF).begin, to_ticks(6.0));
  EXPECT_EQ(f.window(rt::Mode::NF).end, to_ticks(9.0));
}

TEST(FrameLayout, LocateClassifiesEveryRegion) {
  const FrameLayout f(simple_schedule());
  auto at = [&](double t) { return f.locate(to_ticks(t)); };

  EXPECT_TRUE(at(1.0).in_usable);
  EXPECT_EQ(at(1.0).mode, rt::Mode::FT);
  // FT overhead: in slot, not usable.
  EXPECT_TRUE(at(2.2).in_slot);
  EXPECT_FALSE(at(2.2).in_usable);
  EXPECT_EQ(at(2.2).mode, rt::Mode::FT);
  EXPECT_EQ(at(3.0).mode, rt::Mode::FS);
  EXPECT_TRUE(at(3.0).in_usable);
  EXPECT_EQ(at(7.0).mode, rt::Mode::NF);
  // NF overhead.
  EXPECT_FALSE(at(8.5).in_usable);
  EXPECT_TRUE(at(8.5).in_slot);
  // Frame slack.
  EXPECT_FALSE(at(9.5).in_slot);
}

TEST(FrameLayout, LocateIsPeriodic) {
  const FrameLayout f(simple_schedule());
  for (const double t : {0.7, 3.3, 6.1, 9.9}) {
    const auto a = f.locate(to_ticks(t));
    const auto b = f.locate(to_ticks(t + 10.0));
    const auto c = f.locate(to_ticks(t + 70.0));
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.in_usable, c.in_usable);
    EXPECT_EQ(a.in_slot, c.in_slot);
  }
}

TEST(FrameLayout, FrameStartAndNextWindow) {
  const FrameLayout f(simple_schedule());
  EXPECT_EQ(f.frame_start(to_ticks(13.0)), to_ticks(10.0));
  // Next FS window from t=0 is this frame's (at 2.5).
  EXPECT_EQ(f.next_window_begin(rt::Mode::FS, 0), to_ticks(2.5));
  // From t=3.0 (inside it), the next *begin* is next frame's.
  EXPECT_EQ(f.next_window_begin(rt::Mode::FS, to_ticks(3.0)), to_ticks(12.5));
  EXPECT_EQ(f.next_window_begin(rt::Mode::FT, to_ticks(0.0)), 0);
}

TEST(FrameLayout, ZeroUsableSlotCollapses) {
  core::ModeSchedule s;
  s.period = 5.0;
  s.ft = {0.0, 0.0};
  s.fs = {2.0, 0.0};
  s.nf = {2.0, 0.0};
  const FrameLayout f(s);
  EXPECT_EQ(f.window(rt::Mode::FT).begin, f.window(rt::Mode::FT).end);
  EXPECT_EQ(f.window(rt::Mode::FS).begin, 0);
}

TEST(FrameLayout, RejectsOverfullSchedule) {
  core::ModeSchedule s;
  s.period = 1.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {0.0, 0.0};
  EXPECT_THROW(FrameLayout{s}, ModelError);
}

}  // namespace
}  // namespace flexrt::sim
