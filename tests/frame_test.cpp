#include "sim/frame.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexrt::sim {
namespace {

core::ModeSchedule simple_schedule() {
  core::ModeSchedule s;
  s.period = 10.0;
  s.ft = {2.0, 0.5};  // slot [0, 2.5), usable [0, 2)
  s.fs = {3.0, 0.5};  // slot [2.5, 6), usable [2.5, 5.5)
  s.nf = {2.0, 1.0};  // slot [6, 9), usable [6, 8); slack [9, 10)
  return s;
}

TEST(FrameLayout, WindowsFollowScheduleOrder) {
  const FrameLayout f(simple_schedule());
  EXPECT_EQ(f.period(), to_ticks(10.0));
  EXPECT_EQ(f.window(rt::Mode::FT).begin, 0);
  EXPECT_EQ(f.window(rt::Mode::FT).usable_end, to_ticks(2.0));
  EXPECT_EQ(f.window(rt::Mode::FT).end, to_ticks(2.5));
  EXPECT_EQ(f.window(rt::Mode::FS).begin, to_ticks(2.5));
  EXPECT_EQ(f.window(rt::Mode::FS).usable_end, to_ticks(5.5));
  EXPECT_EQ(f.window(rt::Mode::NF).begin, to_ticks(6.0));
  EXPECT_EQ(f.window(rt::Mode::NF).end, to_ticks(9.0));
}

TEST(FrameLayout, LocateClassifiesEveryRegion) {
  const FrameLayout f(simple_schedule());
  auto at = [&](double t) { return f.locate(to_ticks(t)); };

  EXPECT_TRUE(at(1.0).in_usable);
  EXPECT_EQ(at(1.0).mode, rt::Mode::FT);
  // FT overhead: in slot, not usable.
  EXPECT_TRUE(at(2.2).in_slot);
  EXPECT_FALSE(at(2.2).in_usable);
  EXPECT_EQ(at(2.2).mode, rt::Mode::FT);
  EXPECT_EQ(at(3.0).mode, rt::Mode::FS);
  EXPECT_TRUE(at(3.0).in_usable);
  EXPECT_EQ(at(7.0).mode, rt::Mode::NF);
  // NF overhead.
  EXPECT_FALSE(at(8.5).in_usable);
  EXPECT_TRUE(at(8.5).in_slot);
  // Frame slack.
  EXPECT_FALSE(at(9.5).in_slot);
}

TEST(FrameLayout, LocateIsPeriodic) {
  const FrameLayout f(simple_schedule());
  for (const double t : {0.7, 3.3, 6.1, 9.9}) {
    const auto a = f.locate(to_ticks(t));
    const auto b = f.locate(to_ticks(t + 10.0));
    const auto c = f.locate(to_ticks(t + 70.0));
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.in_usable, c.in_usable);
    EXPECT_EQ(a.in_slot, c.in_slot);
  }
}

TEST(FrameLayout, FrameStartAndNextWindow) {
  const FrameLayout f(simple_schedule());
  EXPECT_EQ(f.frame_start(to_ticks(13.0)), to_ticks(10.0));
  // Next FS window from t=0 is this frame's (at 2.5).
  EXPECT_EQ(f.next_window_begin(rt::Mode::FS, 0), to_ticks(2.5));
  // From t=3.0 (inside it), the next *begin* is next frame's.
  EXPECT_EQ(f.next_window_begin(rt::Mode::FS, to_ticks(3.0)), to_ticks(12.5));
  EXPECT_EQ(f.next_window_begin(rt::Mode::FT, to_ticks(0.0)), 0);
}

TEST(FrameLayout, ZeroUsableSlotCollapses) {
  core::ModeSchedule s;
  s.period = 5.0;
  s.ft = {0.0, 0.0};
  s.fs = {2.0, 0.0};
  s.nf = {2.0, 0.0};
  const FrameLayout f(s);
  EXPECT_EQ(f.window(rt::Mode::FT).begin, f.window(rt::Mode::FT).end);
  EXPECT_EQ(f.window(rt::Mode::FS).begin, 0);
}

TEST(FrameLayout, RejectsOverfullSchedule) {
  core::ModeSchedule s;
  s.period = 1.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {0.0, 0.0};
  EXPECT_THROW(FrameLayout{s}, ModelError);
}

/// Window invariants every layout must satisfy after tick conversion:
/// ordered, non-overlapping, inside the frame, and supplying no more
/// usable time than the analysed schedule (rounding may only remove
/// supply, never add it).
void expect_sane_layout(const FrameLayout& f, double analysed_usable_units) {
  Ticks prev_end = 0;
  Ticks usable_total = 0;
  for (const FrameLayout::Window& w : f.windows()) {
    EXPECT_GE(w.begin, prev_end);
    EXPECT_LE(w.begin, w.usable_end);
    EXPECT_LE(w.usable_end, w.end);
    EXPECT_LE(w.end, f.period());
    usable_total += w.usable_end - w.begin;
    prev_end = w.end;
  }
  EXPECT_LE(usable_total, to_ticks(analysed_usable_units));
}

TEST(FrameLayout, ZeroSlackFrameSurvivesSlotEndRoundUp) {
  // Regression for the tick-rounding hazard documented in
  // sim/frame.cpp::finish_construction: every slot total here rounds UP to
  // the tick grid (fractional part .6 of a tick), so the summed slot ends
  // overflow the zero-slack frame by a tick; construction must clamp the
  // tail back instead of throwing or leaving windows past the period.
  core::ModeSchedule s;
  s.period = 1.0;  // exactly 10^6 ticks
  s.ft = {0.2500006, 0.0};
  s.fs = {0.2500006, 0.0};
  s.nf = {0.4999988, 0.0};  // slack is exactly zero in units
  const FrameLayout f(s);
  EXPECT_EQ(f.period(), to_ticks(1.0));
  expect_sane_layout(f, s.ft.usable + s.fs.usable + s.nf.usable);
  // Every instant still classifies: the clamped tail keeps the NF window.
  EXPECT_EQ(f.locate(f.period() - 1).mode, rt::Mode::NF);
}

TEST(FrameLayout, ZeroSlackGeneralFrameSurvivesCumulativeRoundUp) {
  // The many-slot variant accumulates one round-up per slot -- the "tick
  // per slot" worst case of the documented hazard. Six visits, all of
  // whose totals round up, against a period that rounds down.
  std::vector<core::GeneralSlot> slots;
  for (int k = 0; k < 6; ++k) {
    slots.push_back({core::kAllModes[k % 3], 0.1666666, 0.0});
  }
  // 6 * 0.1666666 = 0.9999996: zero slack up to the last 4 tenths of a
  // tick; each slot end rounds up by 0.4 of a tick.
  const core::GeneralFrame frame(0.9999996, slots);
  const FrameLayout f(frame);
  expect_sane_layout(f, 6 * 0.1666666);
  EXPECT_LE(f.windows().back().end, f.period());
}

}  // namespace
}  // namespace flexrt::sim
