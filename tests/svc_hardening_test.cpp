// Executor hardening under injected failures: a throwing probe becomes an
// error row for exactly its entry (any exception type, never an escape into
// the pool), a stalling probe is cut by the per-request Deadline into the
// best completed rung's conservative answer (degraded=true, gap=null, value
// bit-for-bit equal to the fixed-policy probe at that budget), and a
// streamed run under injection emits every entry exactly once, in order,
// byte-identical to the buffered run.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_example.hpp"
#include "core/study_runner.hpp"
#include "gen/taskset_gen.hpp"
#include "svc/analysis_service.hpp"
#include "svc/study_report.hpp"

namespace flexrt::svc {
namespace {

using hier::Scheduler;

/// A five-entry fleet of identical solvable systems: any error row can only
/// come from the injected fault, never from the workload.
class InjectedFleet : public ::testing::Test {
 protected:
  InjectedFleet() {
    core::StudyOptions study;
    study.trials = 5;
    study.base_seed = 0x5EED;
    service_.add_fleet(study, [](std::size_t, Rng&) {
      return std::optional<core::ModeTaskSystem>(core::paper_example());
    });
  }

  SolveRequest solve_request() const {
    SolveRequest req;
    req.overheads = {0.02, 0.02, 0.02};
    req.goal = core::DesignGoal::MaxSlackBandwidth;
    return req;
  }

  AnalysisService service_;
};

TEST_F(InjectedFleet, ThrowingProbeBecomesAnErrorRowOnlyForItsEntry) {
  service_.set_probe_hook([](std::size_t entry, std::size_t) {
    if (entry == 2) throw std::runtime_error("injected probe failure");
  });
  const std::vector<SolveResult> rs = service_.solve(solve_request());
  ASSERT_EQ(rs.size(), 5u);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].system, i);  // no lost or duplicated entry
    if (i == 2) {
      EXPECT_EQ(rs[i].error, "injected probe failure");
      EXPECT_FALSE(rs[i].feasible);
    } else {
      EXPECT_TRUE(rs[i].ok()) << rs[i].error;
      EXPECT_TRUE(rs[i].feasible);
    }
  }
}

TEST_F(InjectedFleet, NonStandardExceptionsAreCaughtAsUnknown) {
  // Even `throw 42;` must become an error row: the catch-all is what keeps
  // a stray library exception from wedging the pool or killing the run.
  service_.set_probe_hook([](std::size_t entry, std::size_t) {
    if (entry == 4) throw 42;
  });
  const std::vector<SolveResult> rs = service_.solve(solve_request());
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_EQ(rs[4].error, "unknown exception");
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(rs[i].ok());
}

TEST_F(InjectedFleet, ClearingTheHookRestoresNormalExecution) {
  service_.set_probe_hook(
      [](std::size_t, std::size_t) { throw std::runtime_error("always"); });
  for (const SolveResult& r : service_.solve(solve_request())) {
    EXPECT_EQ(r.error, "always");
  }
  service_.set_probe_hook(nullptr);
  for (const SolveResult& r : service_.solve(solve_request())) {
    EXPECT_TRUE(r.ok()) << r.error;
  }
}

TEST_F(InjectedFleet, StreamedRunUnderInjectionMatchesBufferedByteForByte) {
  // The ordered gate must neither lose nor duplicate the failing entry: the
  // streamed sequence renders to exactly the buffered bytes, error row
  // included, in entry order.
  const SolveRequest req = solve_request();
  service_.set_probe_hook([](std::size_t entry, std::size_t) {
    if (entry == 1) throw std::runtime_error("injected probe failure");
  });

  std::vector<std::string> buffered;
  for (const SolveResult& r : service_.solve(req)) {
    buffered.push_back(study_trial_row(r, req.alg, req.goal));
  }

  std::vector<std::string> streamed;
  std::vector<std::size_t> order;
  const StreamStats stats =
      service_.solve(req, [&](const SolveResult& r) {
        order.push_back(r.system);
        streamed.push_back(study_trial_row(r, req.alg, req.goal));
      });

  EXPECT_EQ(stats.emitted, 5u);
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(streamed, buffered);
}

/// The deadline tests run on a hyperperiod-hostile set whose adaptive
/// ladders genuinely climb (same construction as the svc service tests):
/// without a deadline the tol<0 ladder deterministically walks every rung
/// to the cap, so any early stop is attributable to the Deadline alone.
class DeadlineOnStressSet : public ::testing::Test {
 protected:
  DeadlineOnStressSet() {
    gen::StressParams sp;
    sp.num_tasks = 200;
    sp.total_utilization = 0.5;
    Rng rng(0xABCDEF);
    service_.add_system(core::ModeTaskSystem({}, {}, {gen::generate_stress_set(sp, rng)}),
                        "stress");
  }
  AnalysisService service_;
};

TEST_F(DeadlineOnStressSet, DeadlineDegradesToTheBestCompletedRung) {
  // An already-elapsed deadline stops the tol<0 ladder right after its
  // first (unconditional) rung: degraded=true, gap=null, and the answer is
  // bit-for-bit the fixed-policy probe at that rung's budget -- the
  // documented graceful-degradation contract.
  const double period = 0.4;
  const std::size_t first_rung = 1u << 6;
  const AccuracyPolicy racing =
      AccuracyPolicy::adaptive(/*tol=*/-1.0, first_rung, 1u << 14)
          .with_deadline(1e-6);
  const MinQuantumResult degraded = service_.min_quantum_one(
      0, {Scheduler::EDF, period, false, racing});
  ASSERT_TRUE(degraded.ok()) << degraded.error;
  EXPECT_TRUE(degraded.prov.degraded);
  EXPECT_FALSE(degraded.prov.gap.has_value());
  EXPECT_EQ(degraded.prov.probes, 1u);
  EXPECT_EQ(degraded.prov.budget, first_rung);

  const MinQuantumResult fixed = service_.min_quantum_one(
      0, {Scheduler::EDF, period, false, AccuracyPolicy::fixed(first_rung)});
  EXPECT_FALSE(fixed.prov.degraded);  // finished on its own, just coarse
  for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
    EXPECT_EQ(degraded.mode_quantum[m], fixed.mode_quantum[m]);
  }
  EXPECT_EQ(degraded.margin, fixed.margin);

  // Graceful means conservative: the degraded quanta over-approximate what
  // the full ladder would have refined them down to.
  const MinQuantumResult full = service_.min_quantum_one(
      0, {Scheduler::EDF, period, false, AccuracyPolicy::fixed(1u << 14)});
  for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
    EXPECT_GE(degraded.mode_quantum[m], full.mode_quantum[m]);
  }
}

TEST_F(DeadlineOnStressSet, StalledProbeIsCutAfterOneRoundNotAfterTheCap) {
  // A probe stalling 50 ms per round against a 5 ms deadline: the ladder
  // must stop after the first rung instead of stalling through all
  // remaining rungs of the 2^20 cap -- the no-hang half of the contract.
  service_.set_probe_hook([](std::size_t, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  const MinQuantumResult r = service_.min_quantum_one(
      0, {Scheduler::EDF, 0.4, false,
          AccuracyPolicy::adaptive(/*tol=*/-1.0, 1u << 6, 1u << 20)
              .with_deadline(5.0)});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.prov.degraded);
  EXPECT_EQ(r.prov.probes, 1u);
  EXPECT_EQ(r.prov.budget, std::size_t{1} << 6);
  EXPECT_GE(r.prov.wall_ms, 5.0);  // it did wait out the stalled round
}

TEST_F(DeadlineOnStressSet, FixedPoliciesNeverDegrade) {
  // Deadlines govern adaptive ladders only: a fixed policy is one probe,
  // there is no earlier rung to fall back to.
  const AccuracyPolicy fixed_with_deadline =
      AccuracyPolicy::fixed(1u << 8).with_deadline(1e-6);
  const MinQuantumResult r = service_.min_quantum_one(
      0, {Scheduler::EDF, 0.4, false, fixed_with_deadline});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.prov.degraded);
  const MinQuantumResult plain = service_.min_quantum_one(
      0, {Scheduler::EDF, 0.4, false, AccuracyPolicy::fixed(1u << 8)});
  for (std::size_t m = 0; m < core::kAllModes.size(); ++m) {
    EXPECT_EQ(r.mode_quantum[m], plain.mode_quantum[m]);
  }
}

TEST_F(DeadlineOnStressSet, VerifyLadderHonoursTheDeadlineToo) {
  // verify() hand-rolls its escalation ladder (it climbs only while the
  // condensed verdict is "no"), so it needs its own degradation proof: an
  // unschedulable schedule would climb to the cap, an elapsed deadline
  // must cut it to a conservative condensed "no" instead.
  const double period = 0.4;
  const MinQuantumResult q = service_.min_quantum_one(
      0, {Scheduler::EDF, period, false, AccuracyPolicy::fixed(1u << 14)});
  core::ModeSchedule schedule;
  schedule.period = period;
  schedule.nf = {q.mode_quantum[2] * 0.5, 0.0};  // far below minQ: a true no
  const VerifyResult r = service_.verify_one(
      0, {Scheduler::EDF, schedule, false,
          AccuracyPolicy::adaptive(1e-4, 1u << 6, 1u << 16)
              .with_deadline(1e-6)});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.prov.degraded);
  EXPECT_FALSE(r.schedulable);  // conservative: degraded never says "yes"
  EXPECT_LT(r.prov.budget, std::size_t{1} << 16);
}

}  // namespace
}  // namespace flexrt::svc
