// Negative control for the Thread Safety Analysis gate: calling a
// REQUIRES(mu) function without holding mu. Under clang with
// -Wthread-safety -Werror=thread-safety this file MUST fail to compile;
// the configure step aborts if it compiles (inert annotations).
#include "common/annotations.hpp"

namespace {

struct Counter {
  flexrt::sys::Mutex mu;
  int n GUARDED_BY(mu) = 0;
  void bump() REQUIRES(mu) { ++n; }
};

}  // namespace

int main() {
  Counter c;
  c.bump();  // violates REQUIRES(c.mu): caller does not hold the mutex
  return 0;
}
