// Negative control for the Thread Safety Analysis gate: reading a
// GUARDED_BY member without holding its mutex. Under clang with
// -Wthread-safety -Werror=thread-safety this file MUST fail to compile;
// the configure step aborts if it compiles, because that would mean the
// annotations in src/common/annotations.hpp are silently inert.
#include <map>

#include "common/annotations.hpp"

namespace {

struct Shard {
  flexrt::sys::Mutex mu;
  std::map<int, int> map GUARDED_BY(mu);
};

int lookup(Shard& s, int key) {
  // No MutexLock: this access violates the GUARDED_BY contract.
  const auto it = s.map.find(key);
  return it == s.map.end() ? -1 : it->second;
}

}  // namespace

int main() {
  Shard s;
  return lookup(s, 1) == -1 ? 0 : 1;
}
