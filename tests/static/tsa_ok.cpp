// Positive control for the Thread Safety Analysis gate: the annotated
// wrapper pattern used throughout src/ (a shard struct whose map is
// GUARDED_BY its mutex, accessed under sys::MutexLock) must compile clean
// under -Wthread-safety -Werror=thread-safety. If this file fails, the
// negative checks in tsa_unguarded.cpp / tsa_requires.cpp prove nothing.
#include <map>

#include "common/annotations.hpp"

namespace {

struct Shard {
  flexrt::sys::Mutex mu;
  std::map<int, int> map GUARDED_BY(mu);
};

int lookup(Shard& s, int key) {
  flexrt::sys::MutexLock lock(s.mu);
  const auto it = s.map.find(key);
  return it == s.map.end() ? -1 : it->second;
}

}  // namespace

int main() {
  Shard s;
  {
    flexrt::sys::MutexLock lock(s.mu);
    s.map.emplace(1, 41);
  }
  return lookup(s, 1) == 41 ? 0 : 1;
}
