// Crash-safe journaled fleet execution: a journaled run's committed file is
// byte-identical to the streamed report, resume from any chop of the
// partial journal (terminal-row boundaries, torn lines, complete-looking
// unterminated lines, post-epilogue crashes) reproduces those bytes
// exactly while recomputing only the missing entries, the retry schedule
// is a deterministic pure function, exhausted entries quarantine into
// error rows without losing the fleet -- and a child process SIGKILLed
// mid-study at several chop depths resumes to the uninterrupted bytes.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fs.hpp"
#include "core/paper_example.hpp"
#include "core/study_runner.hpp"
#include "svc/analysis_service.hpp"
#include "svc/journal.hpp"
#include "svc/jsonl.hpp"
#include "svc/study_report.hpp"

namespace flexrt::svc {
namespace {

using hier::Scheduler;

/// The svc_stream_test fleet: 9 deterministic entries, trial 4 unpackable.
AnalysisService::SystemFactory test_factory() {
  return [](std::size_t t, Rng&) -> std::optional<core::ModeTaskSystem> {
    if (t == 4) return std::nullopt;
    return core::paper_example();
  };
}

/// All-packable variant for the retry tests: trial 4's deterministic
/// "packing failed" would otherwise exhaust the retry budget too and
/// (correctly, but distractingly) quarantine alongside the injected fault.
AnalysisService::SystemFactory packable_factory() {
  return [](std::size_t, Rng&) -> std::optional<core::ModeTaskSystem> {
    return core::paper_example();
  };
}

core::StudyOptions whole_study() {
  core::StudyOptions study;
  study.trials = 9;
  study.base_seed = 0xBEEF;
  return study;
}

SolveRequest solve_request() {
  return {Scheduler::EDF,
          {0.01, 0.01, 0.01},
          core::DesignGoal::MinOverheadBandwidth,
          {},
          {}};
}

bool is_trial_row(std::string_view row) {
  return json_string_field(row, "kind").value_or("") == "study_trial";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << "cannot write " << path;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "flexrt_journal_" + name + "." +
         std::to_string(::getpid());
}

void remove_journal(const std::string& path) {
  fs::remove_file(path);
  fs::remove_file(path + ".partial");
}

/// Drives run_journaled exactly as `flexrt_design study --output` does:
/// study_trial rows per entry, the aggregate summary as the epilogue.
JournalStats journaled_study(const std::string& path,
                             const AnalysisService& service,
                             const SolveRequest& req,
                             const JournalOptions& opts,
                             std::vector<std::size_t>* executed = nullptr) {
  Journal journal(path);
  StudyAggregate agg;
  return run_journaled(
      journal, service.size(), opts, is_trial_row,
      [&](std::string_view row) {
        if (is_trial_row(row)) agg.add(row);
      },
      [&](std::size_t i) {
        if (executed) executed->push_back(i);
        return service.solve_one(i, req);
      },
      [&](const SolveResult& r) {
        const std::string row = study_trial_row(r, req.alg, req.goal);
        agg.add(row);
        return row + "\n";
      },
      [&agg] { return agg.summary_row() + "\n"; });
}

/// The uninterrupted reference: the streamed stdout report (rows +
/// summary), which journaled runs must match byte for byte.
std::string streamed_reference(const AnalysisService& service,
                               const SolveRequest& req) {
  std::ostringstream os;
  JsonlWriter out(os);
  StudyAggregate agg;
  service.solve(req, [&](const SolveResult& r) {
    const std::string row = study_trial_row(r, req.alg, req.goal);
    out.write(row);
    agg.add(row);
  });
  out.write(agg.summary_row());
  return os.str();
}

// --- retry schedule -------------------------------------------------------

TEST(RetryPolicy, BackoffScheduleIsDeterministicAndBounded) {
  RetryPolicy retry;
  retry.max_attempts = 6;
  for (std::size_t entry : {0u, 3u, 17u}) {
    for (std::size_t attempt = 1; attempt <= 5; ++attempt) {
      const double d1 = retry.delay_ms(entry, attempt);
      const double d2 = retry.delay_ms(entry, attempt);
      EXPECT_EQ(d1, d2) << "schedule must be a pure function";
      const double nominal =
          std::min(retry.cap_ms, retry.base_ms * std::pow(retry.factor,
                                                          double(attempt - 1)));
      EXPECT_GE(d1, nominal * (1.0 - retry.jitter) - 1e-9);
      EXPECT_LE(d1, nominal * (1.0 + retry.jitter) + 1e-9);
    }
  }
  // Different entries draw different jitter: the fleet does not retry in
  // lockstep.
  EXPECT_NE(retry.delay_ms(0, 1), retry.delay_ms(1, 1));
  // A different seed moves the whole schedule.
  RetryPolicy reseeded = retry;
  reseeded.seed ^= 1;
  EXPECT_NE(retry.delay_ms(0, 1), reseeded.delay_ms(0, 1));
}

TEST(RetryPolicy, JitterFreeScheduleIsTheExactExponential) {
  RetryPolicy retry;
  retry.jitter = 0.0;
  retry.base_ms = 10.0;
  retry.factor = 2.0;
  retry.cap_ms = 35.0;
  EXPECT_DOUBLE_EQ(retry.delay_ms(5, 1), 10.0);
  EXPECT_DOUBLE_EQ(retry.delay_ms(5, 2), 20.0);
  EXPECT_DOUBLE_EQ(retry.delay_ms(5, 3), 35.0);  // capped, not 40
  EXPECT_DOUBLE_EQ(retry.delay_ms(5, 4), 35.0);
}

// --- byte identity and resume ---------------------------------------------

TEST(Journal, CommittedRunMatchesTheStreamedReport) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::string path = temp_path("bytes");
  remove_journal(path);

  const JournalStats stats =
      journaled_study(path, service, req, JournalOptions{});
  EXPECT_EQ(stats.entries, 9u);
  EXPECT_EQ(stats.executed, 9u);
  EXPECT_EQ(stats.replayed, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_EQ(read_file(path), streamed_reference(service, req));
  // Commit consumed the scratch journal.
  EXPECT_FALSE(fs::file_size(path + ".partial").has_value());
  remove_journal(path);
}

TEST(Journal, ResumeFromAnyChopIsByteIdentical) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::string ref_path = temp_path("chop_ref");
  remove_journal(ref_path);
  journaled_study(ref_path, service, req, JournalOptions{});
  const std::string ref = read_file(ref_path);
  remove_journal(ref_path);
  ASSERT_GT(ref.size(), 0u);

  // Chop the journal at a stride of offsets (plus the first/last byte):
  // terminal-row boundaries, mid-row tears, and cuts that leave a
  // complete-looking but unterminated line all resume to the same bytes.
  std::vector<std::size_t> cuts = {0, 1, ref.size() - 1};
  for (std::size_t at = 131; at < ref.size(); at += 131) cuts.push_back(at);
  JournalOptions resume_opts;
  resume_opts.resume = true;
  const std::string path = temp_path("chop");
  for (const std::size_t cut : cuts) {
    remove_journal(path);
    write_file(path + ".partial", std::string_view(ref).substr(0, cut));
    const JournalStats stats =
        journaled_study(path, service, req, resume_opts);
    EXPECT_EQ(read_file(path), ref) << "cut at byte " << cut;
    EXPECT_EQ(stats.replayed + stats.executed, 9u) << "cut at byte " << cut;
  }
  remove_journal(path);
}

TEST(Journal, UnterminatedFinalLineIsDiscardedEvenWhenComplete) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::string ref_path = temp_path("torn_ref");
  remove_journal(ref_path);
  journaled_study(ref_path, service, req, JournalOptions{});
  const std::string ref = read_file(ref_path);
  remove_journal(ref_path);

  // Cut exactly before the third row's newline: the last line scans as a
  // complete {...} row, but without its terminator it could be a prefix of
  // a row whose tail was lost -- recovery must drop it, and determinism
  // re-emits it byte-identically.
  std::size_t nl = 0;
  for (int i = 0; i < 3; ++i) nl = ref.find('\n', nl + 1);
  const std::string path = temp_path("torn");
  remove_journal(path);
  write_file(path + ".partial", std::string_view(ref).substr(0, nl));

  Journal journal(path);
  std::size_t replayed = 0;
  const Journal::Recovery rec = journal.recover(
      is_trial_row, [&](std::string_view) { ++replayed; });
  EXPECT_FALSE(rec.committed);
  EXPECT_EQ(rec.completed, 2u) << "row without '\\n' must not count";
  EXPECT_EQ(replayed, 2u);
  remove_journal(path);
}

TEST(Journal, CrashAfterEpilogueBeforeRenameReemitsTheSummary) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::string ref_path = temp_path("epi_ref");
  remove_journal(ref_path);
  journaled_study(ref_path, service, req, JournalOptions{});
  const std::string ref = read_file(ref_path);
  remove_journal(ref_path);

  // The deadliest near-miss: every row including the summary hit the disk,
  // only the rename was lost. The summary is not entry-terminal, so resume
  // truncates it, recomputes the aggregate from the replayed rows, and
  // appends it again -- no double summary, no missing summary.
  const std::string path = temp_path("epi");
  remove_journal(path);
  write_file(path + ".partial", ref);
  JournalOptions resume_opts;
  resume_opts.resume = true;
  const JournalStats stats = journaled_study(path, service, req, resume_opts);
  EXPECT_EQ(stats.replayed, 9u);
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_FALSE(stats.already_complete);
  EXPECT_EQ(read_file(path), ref);
  remove_journal(path);
}

TEST(Journal, ResumeSkipsCompletedEntriesAndCommittedOutputIsANoOp) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::string ref_path = temp_path("skip_ref");
  remove_journal(ref_path);
  journaled_study(ref_path, service, req, JournalOptions{});
  const std::string ref = read_file(ref_path);
  remove_journal(ref_path);

  // Chop at the 3rd terminal-row boundary: exactly entries [0, 3) survive.
  std::size_t nl = std::string::npos;
  for (int i = 0; i < 3; ++i) nl = ref.find('\n', nl + 1);
  const std::string path = temp_path("skip");
  remove_journal(path);
  write_file(path + ".partial", std::string_view(ref).substr(0, nl + 1));

  JournalOptions resume_opts;
  resume_opts.resume = true;
  std::vector<std::size_t> executed;
  const JournalStats stats =
      journaled_study(path, service, req, resume_opts, &executed);
  EXPECT_EQ(stats.replayed, 3u);
  EXPECT_EQ(stats.executed, 6u);
  EXPECT_EQ(executed, (std::vector<std::size_t>{3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(read_file(path), ref);

  // Resuming the committed output replays, recomputes nothing, and leaves
  // the bytes alone.
  executed.clear();
  const JournalStats again =
      journaled_study(path, service, req, resume_opts, &executed);
  EXPECT_TRUE(again.already_complete);
  EXPECT_EQ(again.replayed, 9u);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_TRUE(executed.empty());
  EXPECT_EQ(read_file(path), ref);
  remove_journal(path);
}

TEST(Journal, ResumingADifferentRunIsRejected) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::string big_path = temp_path("mismatch_ref");
  remove_journal(big_path);
  journaled_study(big_path, service, req, JournalOptions{});
  const std::string big = read_file(big_path);
  remove_journal(big_path);

  // A 9-entry journal against a 2-entry fleet: the guard must fire before
  // anything is truncated or recomputed.
  AnalysisService small;
  core::StudyOptions two = whole_study();
  two.trials = 2;
  small.add_fleet(two, test_factory());
  const std::string path = temp_path("mismatch");
  remove_journal(path);
  write_file(path + ".partial", big);
  JournalOptions resume_opts;
  resume_opts.resume = true;
  EXPECT_THROW(journaled_study(path, small, req, resume_opts), Error);
  remove_journal(path);
}

TEST(Journal, CountTerminalRowsIgnoresTornTails) {
  const std::string text =
      "{\"kind\":\"study_trial\",\"trial\":0}\n"
      "{\"kind\":\"study_summary\"}\n"
      "{\"kind\":\"study_trial\",\"trial\":1}\n"
      "{\"kind\":\"study_trial\",\"tri";  // torn: no newline
  EXPECT_EQ(count_terminal_rows(text, is_trial_row), 2u);
  EXPECT_EQ(count_terminal_rows("", is_trial_row), 0u);
}

// --- retry and quarantine -------------------------------------------------

/// Fast schedule so retry tests spend microseconds, not seconds.
RetryPolicy fast_retry(std::size_t max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_ms = 0.01;
  retry.cap_ms = 0.05;
  return retry;
}

TEST(Journal, ExhaustedRetriesQuarantineTheEntryAndTheFleetCarriesOn) {
  AnalysisService service;
  service.add_fleet(whole_study(), packable_factory());
  std::atomic<std::size_t> faults{0};
  service.set_probe_hook([&](std::size_t entry, std::size_t) {
    if (entry == 2) {
      faults.fetch_add(1);
      throw ModelError("injected persistent fault");
    }
  });
  const SolveRequest req = solve_request();
  const std::string path = temp_path("quarantine");
  remove_journal(path);
  JournalOptions opts;
  opts.retry = fast_retry(3);
  const JournalStats stats = journaled_study(path, service, req, opts);

  EXPECT_EQ(stats.executed, 9u);
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(faults.load(), 3u) << "one execution per attempt";

  const std::string report = read_file(path);
  EXPECT_EQ(count_terminal_rows(report, is_trial_row), 9u)
      << "no lost, no duplicated entry";
  // The quarantined entry's row names the failure and its attempt count.
  std::istringstream in(report);
  std::string line;
  std::size_t quarantined_rows = 0;
  while (std::getline(in, line)) {
    if (!json_bool_field(line, "quarantined").value_or(false)) continue;
    ++quarantined_rows;
    EXPECT_EQ(json_number_field(line, "trial").value_or(-1), 2.0);
    EXPECT_EQ(json_number_field(line, "attempts").value_or(0), 3.0);
    EXPECT_EQ(json_string_field(line, "error").value_or(""),
              "injected persistent fault");
    EXPECT_EQ(json_bool_field(line, "packed").value_or(true), false);
  }
  EXPECT_EQ(quarantined_rows, 1u);
  remove_journal(path);
}

TEST(Journal, TransientFailureRecoversWithinTheRetryBudget) {
  AnalysisService service;
  service.add_fleet(whole_study(), packable_factory());
  std::atomic<std::size_t> remaining{2};  // entry 6 fails twice, then heals
  service.set_probe_hook([&](std::size_t entry, std::size_t) {
    if (entry == 6) {
      std::size_t left = remaining.load();
      while (left > 0 && !remaining.compare_exchange_weak(left, left - 1)) {
      }
      if (left > 0) throw ModelError("injected transient fault");
    }
  });
  const SolveRequest req = solve_request();
  const std::string path = temp_path("transient");
  remove_journal(path);
  JournalOptions opts;
  opts.retry = fast_retry(3);
  const JournalStats stats = journaled_study(path, service, req, opts);

  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
  const std::string report = read_file(path);
  std::istringstream in(report);
  std::string line;
  while (std::getline(in, line)) {
    if (json_number_field(line, "trial").value_or(-1) != 6.0) continue;
    // Healed on the third attempt: a normal answer row whose provenance
    // remembers the retries; never marked quarantined.
    EXPECT_EQ(json_number_field(line, "attempts").value_or(0), 3.0);
    EXPECT_FALSE(json_bool_field(line, "quarantined").value_or(false));
    EXPECT_TRUE(json_bool_field(line, "packed").value_or(false));
  }
  remove_journal(path);
}

TEST(Journal, RetryDisabledLeavesPlainErrorRows) {
  // max_attempts 1 (the default): a failing entry is an error row, not a
  // quarantined one -- the pre-journal error-row contract, unchanged.
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  service.set_probe_hook([](std::size_t entry, std::size_t) {
    if (entry == 2) throw ModelError("injected fault");
  });
  const SolveRequest req = solve_request();
  const std::string path = temp_path("noretry");
  remove_journal(path);
  const JournalStats stats =
      journaled_study(path, service, req, JournalOptions{});
  EXPECT_EQ(stats.retried, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
  const std::string report = read_file(path);
  EXPECT_EQ(report.find("\"quarantined\""), std::string::npos);
  EXPECT_NE(report.find("injected fault"), std::string::npos);
  remove_journal(path);
}

// --- JsonlWriter stream-state check ---------------------------------------

TEST(JsonlWriter, ThrowsWhenTheStreamGoesBad) {
  // An unopened ofstream fails every write: the writer must surface the
  // failure at the failing row, naming the stream, instead of silently
  // dropping the report.
  std::ofstream dead;
  JsonlWriter out(dead, /*flush_per_row=*/false, "report.jsonl");
  try {
    out.write("{\"kind\":\"probe\"}");
    FAIL() << "write on a bad stream must throw";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("report.jsonl"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("after 0 rows"), std::string::npos);
  }
  EXPECT_EQ(out.rows_written(), 0u);
}

// --- SIGKILL crash injection ----------------------------------------------

/// Child half of the crash harness: runs a slow-paced journaled study and
/// is SIGKILLed by the parent somewhere mid-stream. Skips (instead of
/// running a pointless study) unless the parent's environment is present.
TEST(JournalCrashChild, Run) {
  const char* out = std::getenv("FLEXRT_JOURNAL_CHILD_OUT");
  if (!out) GTEST_SKIP() << "not under the crash harness";
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  // ~40ms per entry paces the journal so the parent can aim its kill at a
  // specific chop depth.
  service.set_probe_hook([](std::size_t, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  });
  JournalOptions opts;
  opts.fsync_per_entry = true;
  journaled_study(out, service, solve_request(), opts);
}

TEST(JournalCrash, KillMidStudyThenResumeByteIdentical) {
  // Reference bytes from an uninterrupted in-process run.
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::string ref = streamed_reference(service, req);

  for (const std::size_t depth : {2u, 5u, 8u}) {
    const std::string path = temp_path("kill" + std::to_string(depth));
    remove_journal(path);

    // Child: re-exec this binary filtered to the paced child test, single
    // worker thread so the journal grows one entry at a time. fork+exec
    // (not bare fork): the process-wide thread pool does not survive fork.
    ::setenv("FLEXRT_JOURNAL_CHILD_OUT", path.c_str(), 1);
    ::setenv("FLEXRT_THREADS", "1", 1);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::execl("/proc/self/exe", "flexrt_tests",
              "--gtest_filter=JournalCrashChild.Run",
              static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    ::unsetenv("FLEXRT_JOURNAL_CHILD_OUT");
    ::unsetenv("FLEXRT_THREADS");

    // Kill the instant the partial journal holds `depth` completed
    // entries. The poll may observe a torn tail -- that is the point.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    bool reached = false;
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(path + ".partial", std::ios::binary);
      if (in) {
        std::ostringstream os;
        os << in.rdbuf();
        if (count_terminal_rows(os.str(), is_trial_row) >= depth) {
          reached = true;
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(reached) << "child never reached chop depth " << depth;
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child finished before the kill landed; depth " << depth
        << " is not mid-stream";
    ASSERT_FALSE(fs::file_size(path).has_value())
        << "a killed run must never have published the final file";

    // Resume in-process and demand the uninterrupted bytes.
    JournalOptions resume_opts;
    resume_opts.resume = true;
    const JournalStats stats =
        journaled_study(path, service, req, resume_opts);
    EXPECT_FALSE(stats.already_complete);
    EXPECT_GE(stats.replayed, depth);
    EXPECT_LT(stats.replayed, 9u) << "kill landed too late to test resume";
    EXPECT_EQ(read_file(path), ref) << "chop depth " << depth;
    remove_journal(path);
  }
}

// --- cooperative interrupts (SIGINT/SIGTERM -> exit 4) --------------------

TEST(JournalInterrupt, StopFlagFinishesInFlightEntryAndLeavesResumablePartial) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const SolveRequest req = solve_request();
  const std::string ref = streamed_reference(service, req);
  const std::string path = temp_path("interrupt");

  // Raise the stop flag from inside entry 3's run_one -- the deterministic
  // stand-in for a SIGTERM landing mid-entry. The entry must still finish
  // and be journaled; the run reports interrupted instead of committing.
  std::atomic<bool> stop{false};
  {
    Journal journal(path);
    StudyAggregate agg;
    JournalOptions opts;
    opts.stop = &stop;
    const JournalStats stats = run_journaled(
        journal, service.size(), opts, is_trial_row,
        [&](std::string_view row) {
          if (is_trial_row(row)) agg.add(row);
        },
        [&](std::size_t i) {
          if (i == 3) stop.store(true);
          return service.solve_one(i, req);
        },
        [&](const SolveResult& r) {
          const std::string row = study_trial_row(r, req.alg, req.goal);
          agg.add(row);
          return row + "\n";
        },
        [&agg] { return agg.summary_row() + "\n"; });
    EXPECT_TRUE(stats.interrupted);
    EXPECT_LT(stats.executed, 9u) << "the stop must cut the fleet short";
  }
  ASSERT_FALSE(fs::file_size(path).has_value())
      << "an interrupted run must not publish the committed file";
  ASSERT_TRUE(fs::file_size(path + ".partial").has_value())
      << "the durable prefix lives in the .partial";

  // Clearing the flag and resuming produces the uninterrupted bytes.
  stop.store(false);
  JournalOptions resume_opts;
  resume_opts.resume = true;
  resume_opts.stop = &stop;
  const JournalStats stats = journaled_study(path, service, req, resume_opts);
  EXPECT_FALSE(stats.interrupted);
  EXPECT_GT(stats.replayed, 0u);
  EXPECT_EQ(read_file(path), ref);
  remove_journal(path);
}

TEST(JournalInterrupt, PreRaisedStopInterruptsBeforeAnyWork) {
  AnalysisService service;
  service.add_fleet(whole_study(), test_factory());
  const std::string path = temp_path("interrupt_pre");
  std::atomic<bool> stop{true};
  JournalOptions opts;
  opts.stop = &stop;
  std::vector<std::size_t> executed;
  const JournalStats stats =
      journaled_study(path, service, solve_request(), opts, &executed);
  EXPECT_TRUE(stats.interrupted);
  EXPECT_TRUE(executed.empty()) << "no entry may start under a raised flag";
  remove_journal(path);
}

}  // namespace
}  // namespace flexrt::svc
