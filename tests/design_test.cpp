#include "core/design.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/paper_example.hpp"

namespace flexrt::core {
namespace {

using hier::Scheduler;

class DesignTest : public ::testing::Test {
 protected:
  ModeTaskSystem sys_ = paper_example();
  Overheads ov_{0.02, 0.02, 0.01};
};

TEST_F(DesignTest, SolvedSchedulesAlwaysVerify) {
  for (const Scheduler alg : {Scheduler::FP, Scheduler::EDF}) {
    for (const DesignGoal goal : {DesignGoal::MinOverheadBandwidth,
                                  DesignGoal::MaxSlackBandwidth}) {
      const Design d = solve_design(sys_, alg, ov_, goal);
      EXPECT_TRUE(verify_schedule(sys_, d.schedule, alg))
          << to_string(alg) << "/" << to_string(goal);
      // The linear-supply guarantee implies the exact-supply one.
      EXPECT_TRUE(verify_schedule(sys_, d.schedule, alg, true));
      EXPECT_GE(d.schedule.slack(), -1e-9);
    }
  }
}

TEST_F(DesignTest, QuantaEqualModeMinima) {
  const Design d = solve_design(sys_, Scheduler::EDF, ov_,
                                DesignGoal::MaxSlackBandwidth);
  const double p = d.schedule.period;
  EXPECT_NEAR(d.schedule.ft.usable,
              mode_min_quantum(sys_, rt::Mode::FT, Scheduler::EDF, p), 1e-9);
  EXPECT_NEAR(d.schedule.fs.usable,
              mode_min_quantum(sys_, rt::Mode::FS, Scheduler::EDF, p), 1e-9);
  EXPECT_NEAR(d.schedule.nf.usable,
              mode_min_quantum(sys_, rt::Mode::NF, Scheduler::EDF, p), 1e-9);
}

TEST_F(DesignTest, OverheadsCarriedIntoSlots) {
  const Design d = solve_design(sys_, Scheduler::EDF, ov_,
                                DesignGoal::MinOverheadBandwidth);
  EXPECT_DOUBLE_EQ(d.schedule.ft.overhead, ov_.ft);
  EXPECT_DOUBLE_EQ(d.schedule.fs.overhead, ov_.fs);
  EXPECT_DOUBLE_EQ(d.schedule.nf.overhead, ov_.nf);
}

TEST_F(DesignTest, MinOverheadGoalMinimizesOverheadBandwidth) {
  const Design a = solve_design(sys_, Scheduler::EDF, ov_,
                                DesignGoal::MinOverheadBandwidth);
  const Design b = solve_design(sys_, Scheduler::EDF, ov_,
                                DesignGoal::MaxSlackBandwidth);
  EXPECT_LE(a.schedule.overhead_bandwidth(),
            b.schedule.overhead_bandwidth() + 1e-9);
  EXPECT_GE(b.schedule.slack_bandwidth(),
            a.schedule.slack_bandwidth() - 1e-9);
}

TEST_F(DesignTest, NegativeOverheadRejected) {
  EXPECT_THROW(solve_design(sys_, Scheduler::EDF, {-0.1, 0, 0},
                            DesignGoal::MinOverheadBandwidth),
               ModelError);
}

TEST_F(DesignTest, DistributeSlackConsumesSlackAndStaysFeasible) {
  const Design d = solve_design(sys_, Scheduler::EDF, ov_,
                                DesignGoal::MaxSlackBandwidth);
  ASSERT_GT(d.schedule.slack(), 0.01);
  const ModeSchedule grown = distribute_slack(d);
  EXPECT_NEAR(grown.slack(), 0.0, 1e-9);
  EXPECT_GE(grown.ft.usable, d.schedule.ft.usable);
  EXPECT_GE(grown.fs.usable, d.schedule.fs.usable);
  EXPECT_GE(grown.nf.usable, d.schedule.nf.usable);
  EXPECT_TRUE(verify_schedule(sys_, grown, Scheduler::EDF));
}

TEST(ModeScheduleTest, SlotOffsetsFollowFtFsNfOrder) {
  ModeSchedule s;
  s.period = 10.0;
  s.ft = {2.0, 0.5};
  s.fs = {3.0, 0.5};
  s.nf = {1.0, 0.0};
  s.validate();
  EXPECT_DOUBLE_EQ(s.slot_offset(rt::Mode::FT), 0.0);
  EXPECT_DOUBLE_EQ(s.slot_offset(rt::Mode::FS), 2.5);
  EXPECT_DOUBLE_EQ(s.slot_offset(rt::Mode::NF), 6.0);
  EXPECT_DOUBLE_EQ(s.slack(), 3.0);
  EXPECT_NEAR(s.slack_bandwidth(), 0.3, 1e-12);
  EXPECT_NEAR(s.overhead_bandwidth(), 0.1, 1e-12);
  EXPECT_NEAR(s.allocated_bandwidth(rt::Mode::FS), 0.3, 1e-12);
}

TEST(ModeScheduleTest, SupplyParametersMatchEq2) {
  ModeSchedule s;
  s.period = 4.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {1.0, 0.0};
  const hier::LinearSupply z = s.supply(rt::Mode::FT);
  EXPECT_DOUBLE_EQ(z.rate(), 0.25);
  EXPECT_DOUBLE_EQ(z.delay(), 3.0);
  const hier::SlotSupply ze = s.exact_supply(rt::Mode::FT);
  EXPECT_DOUBLE_EQ(ze.period(), 4.0);
  EXPECT_DOUBLE_EQ(ze.usable(), 1.0);
}

TEST(ModeScheduleTest, ValidateRejectsOverfullFrame) {
  ModeSchedule s;
  s.period = 2.0;
  s.ft = {1.0, 0.0};
  s.fs = {1.0, 0.0};
  s.nf = {1.0, 0.0};
  EXPECT_THROW(s.validate(), ModelError);
}

TEST(ModeScheduleTest, VerifyFailsForStarvedMode) {
  // Give FT zero quantum while it has tasks: must fail verification.
  ModeTaskSystem sys = paper_example();
  ModeSchedule s;
  s.period = 2.0;
  s.ft = {0.0, 0.0};
  s.fs = {0.9, 0.0};
  s.nf = {0.9, 0.0};
  EXPECT_FALSE(verify_schedule(sys, s, hier::Scheduler::EDF));
}

}  // namespace
}  // namespace flexrt::core
