#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/design.hpp"
#include "core/paper_example.hpp"

namespace flexrt::core {
namespace {

using hier::Scheduler;

class Sensitivity : public ::testing::Test {
 protected:
  // The max-slack design keeps quanta at their analytical minima, where
  // every margin is exactly 1 (boundary design); distributing the slack
  // into the quanta gives the headroom sensitivity analysis measures.
  ModeTaskSystem sys_ = paper_example();
  Design design_ = solve_design(sys_, Scheduler::EDF, {0.02, 0.02, 0.02},
                                DesignGoal::MaxSlackBandwidth);
  ModeSchedule schedule_ = distribute_slack(design_);
};

TEST_F(Sensitivity, MarginsAreAtLeastOneOnFeasibleDesign) {
  const auto report = sensitivity_report(sys_, schedule_,
                                         Scheduler::EDF, 8.0);
  ASSERT_EQ(report.size(), 13u);
  for (const TaskMargin& m : report) {
    EXPECT_GE(m.scale_margin, 1.0) << m.name;
  }
}

TEST_F(Sensitivity, ScalingWithinMarginStaysFeasible) {
  const double margin =
      wcet_scale_margin(sys_, schedule_, Scheduler::EDF, "tau9");
  ASSERT_GT(margin, 1.0);
  // Verify the definition directly: 95% of the margin is feasible, 110%
  // (capped by C <= D) is not.
  ModeTaskSystem grown = sys_;
  std::vector<rt::TaskSet> fs(sys_.partitions(rt::Mode::FS).begin(),
                              sys_.partitions(rt::Mode::FS).end());
  const rt::Task& tau9 = fs[1][0];
  const double safe_scale = 1.0 + (margin - 1.0) * 0.95;
  fs[1] = rt::TaskSet{rt::make_task(tau9.name, tau9.wcet * safe_scale,
                                    tau9.period, tau9.mode)};
  grown.set_partitions(rt::Mode::FS, fs);
  EXPECT_TRUE(verify_schedule(grown, schedule_, Scheduler::EDF));
}

TEST_F(Sensitivity, TightTaskHasSmallerMarginThanLooseOne) {
  // tau9 (C=1, T=D=4) runs against a service delay of nearly P; it is the
  // tightest task of the FS mode. tau12 (1, 20) in FT has far more room.
  const double m9 =
      wcet_scale_margin(sys_, schedule_, Scheduler::EDF, "tau9");
  const double m12 =
      wcet_scale_margin(sys_, schedule_, Scheduler::EDF, "tau12");
  EXPECT_LT(m9, m12);
}

TEST_F(Sensitivity, GlobalMarginDominatedByPerTaskMargins) {
  const double global =
      global_scale_margin(sys_, schedule_, Scheduler::EDF, 8.0);
  EXPECT_GE(global, 1.0);
  for (const TaskMargin& m :
       sensitivity_report(sys_, schedule_, Scheduler::EDF, 8.0)) {
    EXPECT_LE(global, m.scale_margin + 1e-3) << m.name;
  }
}

TEST_F(Sensitivity, InfeasibleScheduleYieldsMarginOne) {
  ModeSchedule starved = schedule_;
  starved.fs.usable *= 0.5;
  EXPECT_DOUBLE_EQ(
      wcet_scale_margin(sys_, starved, Scheduler::EDF, "tau9"), 1.0);
}

TEST_F(Sensitivity, CapReturnedWhenEverythingFits) {
  // A tiny task in a generous design can hit the cap.
  const double m = wcet_scale_margin(sys_, schedule_, Scheduler::EDF,
                                     "tau12", 1.05);
  EXPECT_DOUBLE_EQ(m, 1.05);
}

TEST_F(Sensitivity, UnknownTaskNameIsANoopScale) {
  // Scaling a non-existent task changes nothing: the margin saturates.
  const double m = wcet_scale_margin(sys_, schedule_, Scheduler::EDF,
                                     "nope", 4.0);
  EXPECT_DOUBLE_EQ(m, 4.0);
}

TEST_F(Sensitivity, BoundaryDesignHasNoMargin) {
  // At the un-distributed max-slack design the quanta equal the analytical
  // minima: the binding constraints are tight and every task that
  // contributes demand to them has margin exactly 1.
  const double m = wcet_scale_margin(sys_, design_.schedule, Scheduler::EDF,
                                     "tau9");
  EXPECT_DOUBLE_EQ(m, 1.0);
}

TEST_F(Sensitivity, EmptyNameRejected) {
  EXPECT_THROW(
      wcet_scale_margin(sys_, schedule_, Scheduler::EDF, ""),
      ModelError);
}

}  // namespace
}  // namespace flexrt::core
