#include "rt/demand.hpp"

#include <gtest/gtest.h>

#include "rt/priority.hpp"

namespace flexrt::rt {
namespace {

TaskSet two_tasks() {
  // Sorted by decreasing priority (RM order).
  return TaskSet{make_task("hi", 1, 4, Mode::NF),
                 make_task("lo", 2, 10, Mode::NF)};
}

TEST(FpWorkload, HighestPriorityTaskSeesOnlyItself) {
  const TaskSet ts = two_tasks();
  EXPECT_DOUBLE_EQ(fp_workload(ts, 0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(fp_workload(ts, 0, 100.0), 1.0);
}

TEST(FpWorkload, LowerPriorityAccumulatesInterference) {
  const TaskSet ts = two_tasks();
  // W_2(t) = 2 + ceil(t/4)*1.
  EXPECT_DOUBLE_EQ(fp_workload(ts, 1, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(fp_workload(ts, 1, 5.0), 4.0);
  EXPECT_DOUBLE_EQ(fp_workload(ts, 1, 10.0), 5.0);
}

TEST(FpWorkload, SteppedAtMultiples) {
  const TaskSet ts = two_tasks();
  // Exactly at a period multiple the ceil must not step to the next job.
  EXPECT_DOUBLE_EQ(fp_workload(ts, 1, 8.0), 4.0);
  EXPECT_DOUBLE_EQ(fp_workload(ts, 1, 8.0 + 1e-6), 5.0);
}

TEST(EdfDemand, ImplicitDeadlinesMatchFloorFormula) {
  const TaskSet ts = two_tasks();
  // dbf(t) = floor(t/4)*1 + floor(t/10)*2.
  EXPECT_DOUBLE_EQ(edf_demand(ts, 3.9), 0.0);
  EXPECT_DOUBLE_EQ(edf_demand(ts, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(edf_demand(ts, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(edf_demand(ts, 20.0), 9.0);
}

TEST(EdfDemand, ConstrainedDeadlineShiftsDemand) {
  const TaskSet ts{make_task("a", 1, 10, 4, Mode::NF)};
  EXPECT_DOUBLE_EQ(edf_demand(ts, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(edf_demand(ts, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(edf_demand(ts, 13.9), 1.0);
  EXPECT_DOUBLE_EQ(edf_demand(ts, 14.0), 2.0);
}

TEST(EdfDemand, MonotoneNonDecreasing) {
  const TaskSet ts = two_tasks();
  double prev = 0.0;
  for (double t = 0.0; t <= 40.0; t += 0.25) {
    const double d = edf_demand(ts, t);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(DeadlineSet, EnumeratesAllDeadlinesToHyperperiod) {
  const TaskSet ts{make_task("a", 1, 4, Mode::NF),
                   make_task("b", 1, 6, Mode::NF)};
  const std::vector<double> dl = deadline_set(ts);  // hyperperiod 12
  const std::vector<double> expected = {4, 6, 8, 12};
  ASSERT_EQ(dl.size(), expected.size());
  for (std::size_t i = 0; i < dl.size(); ++i) {
    EXPECT_DOUBLE_EQ(dl[i], expected[i]);
  }
}

TEST(DeadlineSet, DeduplicatesSharedDeadlines) {
  const TaskSet ts{make_task("a", 1, 6, Mode::NF),
                   make_task("b", 1, 6, Mode::NF)};
  EXPECT_EQ(deadline_set(ts).size(), 1u);
}

TEST(DeadlineSet, RespectsExplicitHorizon) {
  const TaskSet ts{make_task("a", 1, 4, Mode::NF)};
  EXPECT_EQ(deadline_set(ts, 9.0).size(), 2u);  // 4, 8
}

TEST(DeadlineSet, EmptySet) {
  EXPECT_TRUE(deadline_set(TaskSet{}).empty());
}

}  // namespace
}  // namespace flexrt::rt
