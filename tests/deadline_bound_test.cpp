// Coverage for the QPA-bounded/condensed deadline set: exactness on
// tractable sets, conservative safety of the condensed tests (condensed
// schedulable implies fully schedulable, condensed minQ covers the full
// set), the qpa_horizon algebra, and tractability + determinism of the
// hyperperiod-hostile stress generator.
#include "rt/deadline_bound.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "gen/taskset_gen.hpp"
#include "hier/min_quantum.hpp"
#include "hier/sched_test.hpp"
#include "hier/supply.hpp"
#include "rt/analysis_context.hpp"
#include "rt/demand.hpp"

namespace flexrt::rt {
namespace {

TaskSet random_set(std::uint64_t seed, std::size_t n, double util) {
  Rng rng(seed);
  gen::GenParams gp;
  gp.num_tasks = n;
  gp.total_utilization = util;
  gp.ft_fraction = 0.0;
  gp.fs_fraction = 0.0;
  gp.deadline_min_ratio = 0.8;  // constrained deadlines stress dlSet
  return gen::generate_task_set(gp, rng);
}

TEST(BoundedDeadlineSet, ExactOnTractableSets) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = random_set(seed, 3 + seed % 8, 0.6);
    const BoundedDeadlineSet dl = bounded_deadline_set(ts);
    const std::vector<double> full = deadline_set(ts);
    EXPECT_TRUE(dl.exact);
    EXPECT_TRUE(dl.ends.empty());  // empty == "identical to times"
    ASSERT_EQ(dl.times.size(), full.size());
    for (std::size_t k = 0; k < full.size(); ++k) {
      EXPECT_DOUBLE_EQ(dl.times[k], full[k]);
    }
    EXPECT_NEAR(dl.full_horizon, ts.hyperperiod(), 1e-9);
    EXPECT_NEAR(dl.utilization, ts.utilization(), 1e-12);
  }
}

TEST(BoundedDeadlineSet, EmptySetIsExactAndEmpty) {
  const BoundedDeadlineSet dl = bounded_deadline_set(TaskSet{});
  EXPECT_TRUE(dl.exact);
  EXPECT_TRUE(dl.times.empty());
}

TEST(BoundedDeadlineSet, BudgetCondensesWithConservativeBuckets) {
  const TaskSet ts = random_set(77, 8, 0.7);
  const std::vector<double> full = deadline_set(ts);
  ASSERT_GT(full.size(), 12u);
  DlBoundOptions opts;
  // Explicit horizon (the full hyperperiod) + a tight budget forces the
  // coalescing path; the auto horizon would pre-bound the enumeration.
  opts.horizon = ts.hyperperiod();
  opts.max_points = 8;
  const BoundedDeadlineSet dl = bounded_deadline_set(ts, opts);
  EXPECT_FALSE(dl.exact);
  EXPECT_LE(dl.times.size(), opts.max_points);
  ASSERT_EQ(dl.times.size(), dl.ends.size());
  for (std::size_t k = 0; k < dl.times.size(); ++k) {
    EXPECT_LE(dl.times[k], dl.ends[k]);  // bucket start <= bucket end
    if (k > 0) {
      EXPECT_GT(dl.times[k], dl.ends[k - 1]);  // disjoint, ordered
    }
  }
  // Every covered deadline falls in some bucket.
  for (const double d : full) {
    if (d > dl.horizon * (1.0 + 1e-12)) continue;
    const bool covered =
        std::any_of(dl.times.begin(), dl.times.end(),
                    [&](double t) { return t <= d; });
    EXPECT_TRUE(covered) << d;
  }
}

TEST(BoundedDeadlineSet, ZeroBudgetDisablesCondensation) {
  const TaskSet ts = random_set(5, 6, 0.6);
  DlBoundOptions opts;
  opts.max_points = 0;
  const BoundedDeadlineSet dl = bounded_deadline_set(ts, opts);
  EXPECT_TRUE(dl.exact);
  EXPECT_EQ(dl.times.size(), deadline_set(ts).size());
}

TEST(QpaHorizon, MatchesTheLineCrossingAlgebra) {
  // U t + c <= rate (t - delay) first holds at L*; check L* solves it with
  // equality and that it fails just below.
  const double u = 0.5, c = 2.0, rate = 0.75, delay = 1.0;
  const double l = qpa_horizon(u, c, rate, delay);
  EXPECT_NEAR(u * l + c, rate * (l - delay), 1e-9);
  const double before = l * 0.99;
  EXPECT_GT(u * before + c, rate * (before - delay));
}

TEST(QpaHorizon, InfiniteWhenSupplyRateCannotCover) {
  EXPECT_TRUE(std::isinf(qpa_horizon(0.6, 1.0, 0.6, 0.5)));
  EXPECT_TRUE(std::isinf(qpa_horizon(0.6, 1.0, 0.5, 0.5)));
  EXPECT_GE(qpa_horizon(0.0, 0.0, 0.5, 0.0), 0.0);
}

// The heart of the safety argument: a condensed context never reports
// schedulable when the full test would not, and its minQ always covers the
// full set's.
/// Two condensed configurations, both inexact: horizon truncation (auto
/// horizon under a tight budget) and bucket coalescing (explicit full
/// horizon condensed down to the budget).
std::vector<DlBoundOptions> tight_configs(const TaskSet& ts) {
  DlBoundOptions truncating;
  truncating.max_points = 6;
  DlBoundOptions coalescing;
  coalescing.horizon = ts.hyperperiod();
  coalescing.max_points = 6;
  return {truncating, coalescing};
}

TEST(CondensedSafety, SchedulableNeverContradictsFullTest) {
  Rng rng(4242);
  int condensed_passes = 0;
  for (std::uint64_t seed = 20; seed < 50; ++seed) {
    const TaskSet ts = random_set(seed, 8, 0.55 + 0.01 * (seed % 10));
    for (const DlBoundOptions& tight : tight_configs(ts)) {
      const AnalysisContext condensed(ts, tight);
      ASSERT_FALSE(condensed.dl_exact());
      for (int s = 0; s < 10; ++s) {
        const double period = rng.uniform(0.5, 6.0);
        const double usable = rng.uniform(0.05, 1.0) * period;
        const hier::SlotSupply slot(period, usable);
        if (hier::edf_schedulable(condensed, slot)) {
          condensed_passes++;
          EXPECT_TRUE(hier::edf_schedulable(ts, slot))
              << "seed=" << seed << " P=" << period << " q=" << usable;
        }
      }
    }
  }
  // The condensed test must stay useful, not degenerate to "never".
  EXPECT_GT(condensed_passes, 50);
}

TEST(CondensedSafety, MinQuantumOverApproximatesAndStaysValid) {
  for (std::uint64_t seed = 60; seed < 75; ++seed) {
    const TaskSet ts = random_set(seed, 8, 0.6);
    const AnalysisContext full(ts);
    ASSERT_TRUE(full.dl_exact());
    for (const DlBoundOptions& tight : tight_configs(ts)) {
      const AnalysisContext condensed(ts, tight);
      for (const double period : {0.5, 1.0, 2.0, 4.0}) {
        const double q_full =
            hier::min_quantum(full, hier::Scheduler::EDF, period);
        const double q_cond =
            hier::min_quantum(condensed, hier::Scheduler::EDF, period);
        // Safe over-approximation...
        EXPECT_GE(q_cond, q_full - 1e-9)
            << "seed=" << seed << " P=" << period;
        // ...whose supply really schedules the full set.
        if (q_cond < period) {
          const hier::LinearSupply supply(q_cond / period, period - q_cond);
          EXPECT_TRUE(hier::edf_schedulable(ts, supply))
              << "seed=" << seed << " P=" << period << " q=" << q_cond;
        }
      }
    }
  }
}

TEST(CondensedSafety, ExactContextsKeepExactResults) {
  // Default options on tractable sets: the condensed layer must not perturb
  // the exact analysis at all.
  for (std::uint64_t seed = 80; seed < 90; ++seed) {
    const TaskSet ts = random_set(seed, 6, 0.6);
    const AnalysisContext ctx(ts);
    EXPECT_TRUE(ctx.dl_exact());
    for (const double period : {1.0, 3.0}) {
      double ref = 0.0;
      for (const double t : deadline_set(ts)) {
        ref = std::max(ref,
                       hier::quantum_for_point(t, edf_demand(ts, t), period));
      }
      EXPECT_NEAR(hier::min_quantum(ctx, hier::Scheduler::EDF, period), ref,
                  1e-9);
    }
  }
}

TEST(BoundedDeadlineSet, BudgetBoundsEnumerationUnderExtremePeriodSpread) {
  // Many short-period tasks plus one task whose deadline dwarfs the
  // budget-derived horizon: the enumeration must stay O(max_points), not
  // blow up to max_deadline * density points. First jobs beyond the
  // horizon are covered by the QPA tail, not by materialized points.
  std::vector<Task> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back(make_task("f" + std::to_string(i), 0.001, 1.0,
                              Mode::NF));
  }
  tasks.push_back(make_task("slow", 1.0, 1e6, Mode::NF));
  const TaskSet ts(std::move(tasks));
  DlBoundOptions opts;
  opts.max_points = 512;
  const BoundedDeadlineSet dl = bounded_deadline_set(ts, opts);
  EXPECT_FALSE(dl.exact);
  EXPECT_LE(dl.times.size(), opts.max_points);
  EXPECT_LT(dl.horizon, 1e6);  // not dragged out to the longest deadline
  // The tail still guards the far deadline: a supply whose rate cannot
  // absorb the long task's demand line is rejected.
  const AnalysisContext ctx(ts, opts);
  EXPECT_FALSE(hier::edf_schedulable(
      ctx, hier::LinearSupply(ts.utilization() * 0.9, 0.0)));
}

TEST(StressGenerator, DeterministicPerSeed) {
  gen::StressParams sp;
  sp.num_tasks = 64;
  Rng a(11), b(11);
  const TaskSet x = gen::generate_stress_set(sp, a);
  const TaskSet y = gen::generate_stress_set(sp, b);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i].wcet, y[i].wcet);
    EXPECT_DOUBLE_EQ(x[i].period, y[i].period);
    EXPECT_DOUBLE_EQ(x[i].deadline, y[i].deadline);
  }
  Rng c(12);
  const TaskSet z = gen::generate_stress_set(sp, c);
  bool any_diff = false;
  for (std::size_t i = 0; i < z.size(); ++i) {
    any_diff = any_diff || z[i].period != x[i].period;
  }
  EXPECT_TRUE(any_diff);
}

TEST(StressGenerator, ShapeAndHostileHyperperiod) {
  gen::StressParams sp;
  sp.num_tasks = 300;
  sp.total_utilization = 0.6;
  Rng rng(21);
  const TaskSet ts = gen::generate_stress_set(sp, rng);
  ASSERT_EQ(ts.size(), 300u);
  EXPECT_NEAR(ts.utilization(), 0.6, 1e-9);
  for (const Task& t : ts) {
    EXPECT_GE(t.period, sp.period_min * (1.0 - 1e-9));
    EXPECT_LE(t.period, sp.period_max * (1.0 + 1e-9));
    EXPECT_LE(t.deadline, t.period + 1e-12);
  }
  // Fine-grid periods make the hyperperiod saturate (or blow past any
  // usable horizon): the scenario the bounded dlSet exists for.
  EXPECT_GT(ts.hyperperiod(), 1e9);
}

TEST(StressGenerator, CondensedAnalysisIsTractable) {
  gen::StressParams sp;
  sp.num_tasks = 1000;
  Rng rng(31);
  const TaskSet ts = gen::generate_stress_set(sp, rng);
  const AnalysisContext ctx(ts);
  EXPECT_FALSE(ctx.dl_exact());
  EXPECT_LE(ctx.deadline_points().size(), DlBoundOptions{}.max_points);
  const double q = hier::min_quantum(ctx, hier::Scheduler::EDF, 2.0);
  EXPECT_TRUE(std::isfinite(q));
  // minQ must at least provide the utilization bandwidth.
  EXPECT_GE(q, ctx.utilization() * 2.0 - 1e-9);
  // And the exact-supply variant stays finite too (bisection over the
  // condensed test with tail closure).
  const double qe = hier::min_quantum_exact(ctx, hier::Scheduler::EDF, 8.0);
  EXPECT_LE(qe, hier::min_quantum(ctx, hier::Scheduler::EDF, 8.0) + 1e-9);
}

TEST(AnalysisContextHorizon, ExplicitHorizonTriggersTailClosure) {
  const TaskSet ts = random_set(3, 5, 0.5);
  const double hyper = ts.hyperperiod();
  const AnalysisContext truncated(ts, hyper / 4.0);
  EXPECT_FALSE(truncated.dl_exact());
  // A generous supply passes despite the truncation (tail closed by QPA)...
  EXPECT_TRUE(hier::edf_schedulable(truncated,
                                    hier::LinearSupply(0.95, 0.01)));
  // ...and a rate below U(T) is still rejected.
  EXPECT_FALSE(hier::edf_schedulable(
      truncated, hier::LinearSupply(ts.utilization() * 0.5, 0.0)));
}

}  // namespace
}  // namespace flexrt::rt
