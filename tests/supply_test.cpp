#include "hier/supply.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"

namespace flexrt::hier {
namespace {

TEST(LinearSupply, ShapeAndParameters) {
  const LinearSupply z(0.5, 2.0);
  EXPECT_DOUBLE_EQ(z.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(z.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(z.value(2.0), 0.0);
  EXPECT_DOUBLE_EQ(z.value(4.0), 1.0);
  EXPECT_DOUBLE_EQ(z.rate(), 0.5);
  EXPECT_DOUBLE_EQ(z.delay(), 2.0);
}

TEST(LinearSupply, RejectsBadParameters) {
  EXPECT_THROW(LinearSupply(0.0, 1.0), ModelError);
  EXPECT_THROW(LinearSupply(1.5, 1.0), ModelError);
  EXPECT_THROW(LinearSupply(0.5, -1.0), ModelError);
}

TEST(SlotSupply, Lemma1WorkedValues) {
  // P = 10, usable q = 3: worst window starts right after a slot ends.
  const SlotSupply z(10.0, 3.0);
  EXPECT_DOUBLE_EQ(z.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(z.value(7.0), 0.0);    // still in the gap (P - q = 7)
  EXPECT_DOUBLE_EQ(z.value(8.0), 1.0);    // ramping
  EXPECT_DOUBLE_EQ(z.value(10.0), 3.0);   // one full quantum
  EXPECT_DOUBLE_EQ(z.value(12.0), 3.0);   // flat again
  EXPECT_DOUBLE_EQ(z.value(17.0), 3.0);   // gap of second period
  EXPECT_DOUBLE_EQ(z.value(18.5), 4.5);   // ramping in second period
  EXPECT_DOUBLE_EQ(z.value(20.0), 6.0);
  EXPECT_DOUBLE_EQ(z.rate(), 0.3);
  EXPECT_DOUBLE_EQ(z.delay(), 7.0);
}

TEST(SlotSupply, FullAndZeroBudgetEdges) {
  const SlotSupply full(5.0, 5.0);
  EXPECT_DOUBLE_EQ(full.value(3.3), 3.3);  // dedicated processor
  const SlotSupply none(5.0, 0.0);
  EXPECT_DOUBLE_EQ(none.value(100.0), 0.0);
}

TEST(SlotSupply, RejectsBadParameters) {
  EXPECT_THROW(SlotSupply(0.0, 0.0), ModelError);
  EXPECT_THROW(SlotSupply(5.0, 6.0), ModelError);
}

TEST(PeriodicResource, ShinLeeWorstCaseShape) {
  // Pi = 10, Theta = 3: sbf = 0 until 2*(Pi-Theta) = 14.
  const PeriodicResource g(10.0, 3.0);
  EXPECT_DOUBLE_EQ(g.value(14.0), 0.0);
  EXPECT_DOUBLE_EQ(g.value(15.0), 1.0);
  EXPECT_DOUBLE_EQ(g.value(17.0), 3.0);
  EXPECT_DOUBLE_EQ(g.value(24.0), 3.0);  // flat across the gap
  EXPECT_DOUBLE_EQ(g.value(27.0), 6.0);
  EXPECT_DOUBLE_EQ(g.delay(), 14.0);
}

// ---------------------------------------------------------------------------
// Parameterized properties over (period, usable) combinations.
class SupplyProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SupplyProperty, LinearBoundNeverExceedsExactSupply) {
  const auto [period, fraction] = GetParam();
  const SlotSupply exact(period, fraction * period);
  const LinearSupply linear = exact.linear_bound();
  for (double t = 0.0; t <= 5.0 * period; t += period / 37.0) {
    EXPECT_LE(linear.value(t), exact.value(t) + 1e-9)
        << "P=" << period << " q=" << fraction * period << " t=" << t;
  }
}

TEST_P(SupplyProperty, ExactSupplyIsMonotoneAnd1Lipschitz) {
  const auto [period, fraction] = GetParam();
  const SlotSupply z(period, fraction * period);
  double prev = 0.0;
  const double step = period / 53.0;
  for (double t = step; t <= 4.0 * period; t += step) {
    const double v = z.value(t);
    EXPECT_GE(v, prev - 1e-12);
    EXPECT_LE(v - prev, step + 1e-9);  // cannot supply faster than time
    prev = v;
  }
}

TEST_P(SupplyProperty, SupplyPerPeriodEqualsUsable) {
  const auto [period, fraction] = GetParam();
  const SlotSupply z(period, fraction * period);
  // Z(kP) = k*q exactly (Lemma 1 at period multiples).
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(z.value(k * period), k * fraction * period, 1e-9);
  }
}

TEST_P(SupplyProperty, PeriodicResourceLowerBoundsSlotModel) {
  // Pinning the budget position (slot model) can only help: the Shin-Lee
  // sbf with the same (Pi, Theta) is a pointwise lower bound.
  const auto [period, fraction] = GetParam();
  if (fraction <= 0.0) return;
  const SlotSupply slot(period, fraction * period);
  const PeriodicResource pr(period, fraction * period);
  for (double t = 0.0; t <= 5.0 * period; t += period / 41.0) {
    EXPECT_LE(pr.value(t), slot.value(t) + 1e-9) << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SupplyProperty,
    ::testing::Combine(::testing::Values(0.5, 1.0, 3.0, 10.0, 42.5),
                       ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 1.0)));

}  // namespace
}  // namespace flexrt::hier
