#include "gen/taskset_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace flexrt::gen {
namespace {

TEST(UUniFast, SumsExactlyToTarget) {
  Rng rng(1);
  for (const double total : {0.3, 1.0, 2.5}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{4},
                                std::size_t{16}}) {
      const auto u = uunifast(n, total, rng);
      ASSERT_EQ(u.size(), n);
      double sum = 0.0;
      for (const double v : u) {
        EXPECT_GE(v, 0.0);
        sum += v;
      }
      EXPECT_NEAR(sum, total, 1e-12);
    }
  }
}

TEST(UUniFast, MeanPerTaskIsTotalOverN) {
  Rng rng(2);
  const std::size_t n = 8;
  std::vector<double> mean(n, 0.0);
  const int trials = 4000;
  for (int trial = 0; trial < trials; ++trial) {
    const auto u = uunifast(n, 1.0, rng);
    for (std::size_t i = 0; i < n; ++i) mean[i] += u[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(mean[i] / trials, 1.0 / static_cast<double>(n), 0.01)
        << "slot " << i;
  }
}

TEST(UUniFast, RejectsDegenerateInput) {
  Rng rng(3);
  EXPECT_THROW(uunifast(0, 1.0, rng), ModelError);
  EXPECT_THROW(uunifast(3, 0.0, rng), ModelError);
}

TEST(GenerateTaskSet, HonoursShapeParameters) {
  Rng rng(4);
  GenParams p;
  p.num_tasks = 20;
  p.total_utilization = 1.2;
  const rt::TaskSet ts = generate_task_set(p, rng);
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_NEAR(ts.utilization(), 1.2, 1e-9);
  for (const rt::Task& t : ts) {
    EXPECT_TRUE(std::find(p.period_menu.begin(), p.period_menu.end(),
                          t.period) != p.period_menu.end());
    EXPECT_LE(t.utilization(), p.max_task_utilization + 1e-12);
    EXPECT_DOUBLE_EQ(t.deadline, t.period);  // implicit by default
  }
}

TEST(GenerateTaskSet, ConstrainedDeadlinesStayValid) {
  Rng rng(5);
  GenParams p;
  p.num_tasks = 30;
  p.deadline_min_ratio = 0.5;
  const rt::TaskSet ts = generate_task_set(p, rng);
  for (const rt::Task& t : ts) {
    EXPECT_LE(t.deadline, t.period + 1e-12);
    EXPECT_GE(t.deadline, t.wcet - 1e-12);
  }
}

TEST(GenerateTaskSet, ModeMixApproximatesFractions) {
  Rng rng(6);
  GenParams p;
  p.num_tasks = 10;
  p.ft_fraction = 0.3;
  p.fs_fraction = 0.3;
  std::array<int, 3> counts{};
  for (int trial = 0; trial < 300; ++trial) {
    for (const rt::Task& t : generate_task_set(p, rng)) {
      counts[static_cast<std::size_t>(t.mode)]++;
    }
  }
  const double total = counts[0] + counts[1] + counts[2];
  EXPECT_NEAR(counts[0] / total, 0.3, 0.05);  // FT
  EXPECT_NEAR(counts[1] / total, 0.3, 0.05);  // FS
  EXPECT_NEAR(counts[2] / total, 0.4, 0.05);  // NF
}

TEST(GenerateTaskSet, DeterministicPerSeed) {
  GenParams p;
  Rng a(7), b(7);
  const rt::TaskSet x = generate_task_set(p, a);
  const rt::TaskSet y = generate_task_set(p, b);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i].wcet, y[i].wcet);
    EXPECT_DOUBLE_EQ(x[i].period, y[i].period);
    EXPECT_EQ(x[i].mode, y[i].mode);
  }
}

TEST(BuildSystem, PartitionsByModeOntoChannels) {
  Rng rng(8);
  GenParams p;
  p.num_tasks = 12;
  p.total_utilization = 1.0;
  const rt::TaskSet ts = generate_task_set(p, rng);
  const auto sys = build_system(ts);
  ASSERT_TRUE(sys.has_value());
  EXPECT_EQ(sys->num_tasks(), ts.size());
  EXPECT_EQ(sys->mode_tasks(rt::Mode::FT).size(),
            ts.by_mode(rt::Mode::FT).size());
  EXPECT_EQ(sys->mode_tasks(rt::Mode::FS).size(),
            ts.by_mode(rt::Mode::FS).size());
}

TEST(BuildSystem, FailsWhenFtChannelOverflows) {
  rt::TaskSet ts;
  ts.add(rt::make_task("a", 6, 10, rt::Mode::FT));
  ts.add(rt::make_task("b", 6, 10, rt::Mode::FT));  // 1.2 on one channel
  EXPECT_FALSE(build_system(ts).has_value());
}

}  // namespace
}  // namespace flexrt::gen
