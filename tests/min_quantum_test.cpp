#include "hier/min_quantum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rt/priority.hpp"

namespace flexrt::hier {
namespace {

using rt::make_task;
using rt::Mode;
using rt::TaskSet;

TEST(QuantumForPoint, SolvesTheQuadraticExactly) {
  // q is the positive root of q^2 + (t-P) q - W P = 0.
  for (const double t : {1.0, 4.0, 10.0}) {
    for (const double w : {0.5, 1.0, 3.0}) {
      for (const double p : {0.5, 2.0, 8.0}) {
        const double q = quantum_for_point(t, w, p);
        EXPECT_NEAR(q * q + (t - p) * q - w * p, 0.0, 1e-9);
        EXPECT_GT(q, 0.0);
      }
    }
  }
}

TEST(QuantumForPoint, DedicatedLimitWhenWindowEqualsDemand) {
  // With W = t and P arbitrary, the partition must be the whole processor
  // during the window: q such that alpha(t - delta) = t forces q = P.
  EXPECT_NEAR(quantum_for_point(5.0, 5.0, 2.0), 2.0, 1e-12);
}

TEST(MinQuantum, EmptySetNeedsNothing) {
  EXPECT_DOUBLE_EQ(min_quantum(TaskSet{}, Scheduler::EDF, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(min_quantum(TaskSet{}, Scheduler::FP, 1.0), 0.0);
}

TEST(MinQuantum, SingleTaskClosedForm) {
  // One task (C=1, T=D=4), EDF: binding point is t=4 with W=1:
  // q = (sqrt((4-P)^2 + 4P) - (4-P)) / 2.
  const TaskSet ts{make_task("a", 1, 4, Mode::NF)};
  for (const double p : {0.5, 1.0, 2.0, 3.0}) {
    const double expect =
        (std::sqrt((4 - p) * (4 - p) + 4 * p) - (4 - p)) / 2.0;
    EXPECT_NEAR(min_quantum(ts, Scheduler::EDF, p), expect, 1e-9) << p;
    EXPECT_NEAR(min_quantum(ts, Scheduler::FP, p), expect, 1e-9) << p;
  }
}

// Parameterized property sweep over periods.
class MinQuantumProperty : public ::testing::TestWithParam<double> {
 protected:
  TaskSet ts_ = rt::sort_rate_monotonic(
      TaskSet{make_task("a", 1, 6, Mode::NF), make_task("b", 1, 8, Mode::NF),
              make_task("c", 2, 15, Mode::NF)});
};

TEST_P(MinQuantumProperty, AllocatingMinQIsFeasible) {
  const double period = GetParam();
  for (const Scheduler alg : {Scheduler::FP, Scheduler::EDF}) {
    const double q = min_quantum(ts_, alg, period);
    if (q > period) continue;  // no feasible quantum at this period
    EXPECT_TRUE(
        schedulable(ts_, alg, LinearSupply(q / period, period - q)))
        << to_string(alg) << " P=" << period;
  }
}

TEST_P(MinQuantumProperty, SlightlyLessThanMinQIsInfeasible) {
  const double period = GetParam();
  for (const Scheduler alg : {Scheduler::FP, Scheduler::EDF}) {
    const double q = 0.98 * min_quantum(ts_, alg, period);
    if (q <= 0.0 || q > period) continue;
    EXPECT_FALSE(
        schedulable(ts_, alg, LinearSupply(q / period, period - q)))
        << to_string(alg) << " P=" << period;
  }
}

TEST_P(MinQuantumProperty, BandwidthAtLeastUtilization) {
  // The quantum must provide at least the task-set utilization as rate.
  const double period = GetParam();
  const double u = ts_.utilization();
  for (const Scheduler alg : {Scheduler::FP, Scheduler::EDF}) {
    EXPECT_GE(min_quantum(ts_, alg, period) / period, u - 1e-9);
  }
}

TEST_P(MinQuantumProperty, EdfNeverNeedsMoreThanFp) {
  // EDF is the optimal uniprocessor scheduler; inverting its exact test can
  // only ask for a smaller quantum than the FP inversion.
  const double period = GetParam();
  EXPECT_LE(min_quantum(ts_, Scheduler::EDF, period),
            min_quantum(ts_, Scheduler::FP, period) + 1e-9);
}

TEST_P(MinQuantumProperty, ExactSupplyNeedsAtMostLinearQuantum) {
  const double period = GetParam();
  for (const Scheduler alg : {Scheduler::FP, Scheduler::EDF}) {
    const double linear = min_quantum(ts_, alg, period);
    const double exact = min_quantum_exact(ts_, alg, period);
    if (std::isinf(exact)) continue;
    EXPECT_LE(exact, std::min(linear, period) + 1e-6)
        << to_string(alg) << " P=" << period;
    // And the exact answer must itself be feasible under the exact supply.
    EXPECT_TRUE(schedulable(ts_, alg, SlotSupply(period, exact)));
  }
}

INSTANTIATE_TEST_SUITE_P(PeriodSweep, MinQuantumProperty,
                         ::testing::Values(0.25, 0.5, 1.0, 1.5, 2.0, 3.0,
                                           4.0, 6.0));

TEST(MinQuantum, GrowsWithDemand) {
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    const double period = rng.uniform(0.5, 4.0);
    const double wcet = rng.uniform(0.2, 1.5);
    const double t_period = rng.uniform(4.0, 20.0);
    const TaskSet light{make_task("a", wcet, t_period, Mode::NF)};
    const TaskSet heavy{make_task("a", wcet * 1.5, t_period, Mode::NF)};
    for (const Scheduler alg : {Scheduler::FP, Scheduler::EDF}) {
      EXPECT_LE(min_quantum(light, alg, period),
                min_quantum(heavy, alg, period) + 1e-12);
    }
  }
}

TEST(MinQuantumExact, InfeasibleSetReportsInfinity) {
  const TaskSet over{make_task("a", 5, 5, Mode::NF),
                     make_task("b", 1, 5, Mode::NF)};  // U = 1.2
  EXPECT_TRUE(std::isinf(min_quantum_exact(over, Scheduler::EDF, 1.0)));
}

}  // namespace
}  // namespace flexrt::hier
