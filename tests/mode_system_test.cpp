#include "core/mode_system.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexrt::core {
namespace {

using rt::make_task;
using rt::Mode;
using rt::TaskSet;

TEST(NumChannels, MatchesPlatformConfiguration) {
  EXPECT_EQ(num_channels(Mode::FT), 1u);
  EXPECT_EQ(num_channels(Mode::FS), 2u);
  EXPECT_EQ(num_channels(Mode::NF), 4u);
}

TEST(Overheads, TotalAndPerMode) {
  const Overheads o{0.01, 0.02, 0.03};
  EXPECT_DOUBLE_EQ(o.total(), 0.06);
  EXPECT_DOUBLE_EQ(o.of(Mode::FT), 0.01);
  EXPECT_DOUBLE_EQ(o.of(Mode::FS), 0.02);
  EXPECT_DOUBLE_EQ(o.of(Mode::NF), 0.03);
}

TEST(ModeTaskSystem, PartitionsPaddedToChannelCount) {
  ModeTaskSystem sys({}, {}, {});
  EXPECT_EQ(sys.partitions(Mode::FT).size(), 1u);
  EXPECT_EQ(sys.partitions(Mode::FS).size(), 2u);
  EXPECT_EQ(sys.partitions(Mode::NF).size(), 4u);
  EXPECT_EQ(sys.num_tasks(), 0u);
}

TEST(ModeTaskSystem, RejectsTooManyPartitions) {
  std::vector<TaskSet> three(3);
  EXPECT_THROW(ModeTaskSystem({}, std::move(three), {}), ModelError);
}

TEST(ModeTaskSystem, RejectsWrongModeTask) {
  TaskSet nf_tasks{make_task("x", 1, 10, Mode::NF)};
  EXPECT_THROW(ModeTaskSystem({nf_tasks}, {}, {}), ModelError);
}

TEST(ModeTaskSystem, RequiredBandwidthIsMaxOverChannels) {
  TaskSet a{make_task("a", 1, 10, Mode::NF)};   // U = 0.1
  TaskSet b{make_task("b", 3, 10, Mode::NF)};   // U = 0.3
  ModeTaskSystem sys({}, {}, {a, b});
  EXPECT_DOUBLE_EQ(sys.required_bandwidth(Mode::NF), 0.3);
  EXPECT_DOUBLE_EQ(sys.required_bandwidth(Mode::FT), 0.0);
}

TEST(ModeTaskSystem, ModeTasksFlattensChannels) {
  TaskSet a{make_task("a", 1, 10, Mode::FS)};
  TaskSet b{make_task("b", 1, 20, Mode::FS)};
  ModeTaskSystem sys({}, {a, b}, {});
  EXPECT_EQ(sys.mode_tasks(Mode::FS).size(), 2u);
  EXPECT_EQ(sys.num_tasks(), 2u);
}

TEST(ModeTaskSystem, SetPartitionsReplaces) {
  ModeTaskSystem sys({}, {}, {});
  TaskSet a{make_task("a", 1, 10, Mode::NF)};
  sys.set_partitions(Mode::NF, {a});
  EXPECT_EQ(sys.mode_tasks(Mode::NF).size(), 1u);
  sys.set_partitions(Mode::NF, {});
  EXPECT_EQ(sys.mode_tasks(Mode::NF).size(), 0u);
}

}  // namespace
}  // namespace flexrt::core
