#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexrt::fault {
namespace {

TEST(FaultModel, ZeroRateYieldsNoFaults) {
  FaultModel fm;
  Rng rng(1);
  EXPECT_TRUE(fm.generate(to_ticks(1000.0), rng).empty());
}

TEST(FaultModel, CountApproximatesPoissonMean) {
  FaultModel fm{0.01, 1.0};  // ~10 faults per 1000 units
  Rng rng(2);
  std::size_t total = 0;
  const int runs = 200;
  for (int i = 0; i < runs; ++i) {
    total += fm.generate(to_ticks(1000.0), rng).size();
  }
  const double mean = static_cast<double>(total) / runs;
  EXPECT_NEAR(mean, 10.0, 1.0);
}

TEST(FaultModel, RespectsMinimumSeparation) {
  FaultModel fm{5.0, 2.0};  // very high rate, forced 2-unit gaps
  Rng rng(3);
  const auto faults = fm.generate(to_ticks(100.0), rng);
  ASSERT_GT(faults.size(), 10u);
  for (std::size_t i = 1; i < faults.size(); ++i) {
    EXPECT_GE(faults[i].time - faults[i - 1].time, to_ticks(2.0));
  }
}

TEST(FaultModel, AllWithinHorizonAndValidCores) {
  FaultModel fm{0.1, 0.5};
  Rng rng(4);
  const Ticks horizon = to_ticks(500.0);
  for (const Fault& f : fm.generate(horizon, rng)) {
    EXPECT_GE(f.time, 0);
    EXPECT_LT(f.time, horizon);
    EXPECT_LT(f.core, platform::kNumCores);
  }
}

TEST(FaultModel, CoresRoughlyUniform) {
  FaultModel fm{0.5, 0.1};
  Rng rng(5);
  std::array<int, platform::kNumCores> hits{};
  for (const Fault& f : fm.generate(to_ticks(20000.0), rng)) {
    hits[f.core]++;
  }
  const int total = hits[0] + hits[1] + hits[2] + hits[3];
  ASSERT_GT(total, 1000);
  for (const int h : hits) {
    EXPECT_GT(h, total / 8);  // no core starved
  }
}

TEST(FaultModel, DeterministicForSeed) {
  FaultModel fm{0.2, 0.5};
  Rng a(7), b(7);
  const auto fa = fm.generate(to_ticks(300.0), a);
  const auto fb = fm.generate(to_ticks(300.0), b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].time, fb[i].time);
    EXPECT_EQ(fa[i].core, fb[i].core);
  }
}

TEST(FaultModel, NegativeRateRejected) {
  FaultModel fm{-1.0, 0.0};
  Rng rng(8);
  EXPECT_THROW(fm.generate(1000, rng), ModelError);
}

// --- generator properties (the contract fault-aware analysis and the
// simulator both lean on) ---------------------------------------------------

TEST(FaultModel, ArrivalsStrictlyIncreaseEvenWithoutSeparation) {
  // min_separation 0 must not allow two faults at the same tick: the
  // exponential step is floored at one tick, so time always advances.
  FaultModel fm{50.0, 0.0};
  Rng rng(9);
  const auto faults = fm.generate(to_ticks(50.0), rng);
  ASSERT_GT(faults.size(), 100u);  // high rate: the floor actually binds
  for (std::size_t i = 1; i < faults.size(); ++i) {
    EXPECT_GT(faults[i].time, faults[i - 1].time);
  }
}

TEST(FaultModel, SeparationBeyondHorizonYieldsAtMostOneFault) {
  // The second arrival lands at >= first + min_separation > horizon, so the
  // generator must return promptly with zero or one fault -- not scan the
  // unreachable remainder.
  FaultModel fm{10.0, 1000.0};
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(100 + seed);
    const auto faults = fm.generate(to_ticks(100.0), rng);
    EXPECT_LE(faults.size(), 1u) << "seed " << seed;
  }
}

TEST(FaultModel, ExtremeRateTerminatesAndHonoursSeparation) {
  // rate >> 1/min_separation: the exponential steps are sub-tick and the
  // separation floor does all the pacing. The loop must still terminate
  // (separation forces progress) and the gap invariant must hold exactly.
  FaultModel fm{1e7, 0.5};
  Rng rng(11);
  const Ticks horizon = to_ticks(200.0);
  const auto faults = fm.generate(horizon, rng);
  // Separation-paced: about horizon / min_separation arrivals.
  EXPECT_GT(faults.size(), 300u);
  EXPECT_LE(faults.size(), 400u);
  for (std::size_t i = 1; i < faults.size(); ++i) {
    EXPECT_GE(faults[i].time - faults[i - 1].time, to_ticks(0.5));
  }
  EXPECT_LT(faults.back().time, horizon);
}

TEST(FaultModel, SeparationPacedStreamStaysInsideHorizon) {
  // Mixed regime: rate and separation within an order of magnitude. Every
  // arrival obeys both the horizon and the pairwise gap at once.
  FaultModel fm{2.0, 1.0};
  Rng rng(12);
  const Ticks horizon = to_ticks(1000.0);
  const auto faults = fm.generate(horizon, rng);
  ASSERT_FALSE(faults.empty());
  EXPECT_GE(faults.front().time, 0);
  for (std::size_t i = 1; i < faults.size(); ++i) {
    EXPECT_GE(faults[i].time - faults[i - 1].time, to_ticks(1.0));
  }
  EXPECT_LT(faults.back().time, horizon);
}

}  // namespace
}  // namespace flexrt::fault
