#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace flexrt {
namespace {

TEST(LcmSaturating, BasicValues) {
  EXPECT_EQ(lcm_saturating(4, 6), 12);
  EXPECT_EQ(lcm_saturating(6, 4), 12);
  EXPECT_EQ(lcm_saturating(7, 13), 91);
  EXPECT_EQ(lcm_saturating(12, 12), 12);
  EXPECT_EQ(lcm_saturating(1, 9), 9);
}

TEST(LcmSaturating, ZeroYieldsZero) {
  EXPECT_EQ(lcm_saturating(0, 5), 0);
  EXPECT_EQ(lcm_saturating(5, 0), 0);
}

TEST(LcmSaturating, SaturatesOnOverflow) {
  const std::int64_t big = (std::int64_t{1} << 62) + 1;  // odd, huge
  EXPECT_EQ(lcm_saturating(big, big - 2),
            std::numeric_limits<std::int64_t>::max());
}

TEST(LcmSaturating, SequenceFoldsAndSaturates) {
  const std::int64_t vals_ok[] = {4, 6, 10};
  EXPECT_EQ(lcm_saturating(std::span<const std::int64_t>(vals_ok)), 60);
  const std::int64_t empty[] = {1};
  EXPECT_EQ(lcm_saturating(std::span<const std::int64_t>(empty, 0)), 1);
  // A chain of large coprimes must saturate, not wrap.
  const std::int64_t primes[] = {1000003, 1000033, 1000037, 1000039, 1000081,
                                 1000099, 1000117, 1000121};
  EXPECT_EQ(lcm_saturating(std::span<const std::int64_t>(primes)),
            std::numeric_limits<std::int64_t>::max());
}

TEST(AlmostEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.0 + 1e-6));
  EXPECT_TRUE(almost_equal(0.0, 1e-13));
  EXPECT_TRUE(almost_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(LeqTol, BoundaryBehaviour) {
  EXPECT_TRUE(leq_tol(1.0, 1.0));
  EXPECT_TRUE(leq_tol(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(leq_tol(1.0 + 1e-3, 1.0));
  EXPECT_TRUE(leq_tol(-5.0, 1.0));
}

TEST(CeilDiv, Integers) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(CeilRatio, SnapsNearIntegers) {
  // 0.3/0.1 is 2.9999... in binary floating point; a naive ceil gives 3
  // anyway, but 3*(0.1) vs 0.30000000000000004 style noise must not push
  // the result to 4.
  EXPECT_EQ(ceil_ratio(0.3, 0.1), 3);
  EXPECT_EQ(ceil_ratio(12.0, 4.0), 3);
  EXPECT_EQ(ceil_ratio(12.1, 4.0), 4);
  EXPECT_EQ(ceil_ratio(11.999999999999, 4.0), 3);  // snapped
}

TEST(FloorRatio, SnapsNearIntegers) {
  EXPECT_EQ(floor_ratio(12.0, 4.0), 3);
  EXPECT_EQ(floor_ratio(11.9, 4.0), 2);
  EXPECT_EQ(floor_ratio(12.000000000001, 4.0), 3);  // snapped down
  EXPECT_EQ(floor_ratio(0.3, 0.1), 3);
}

}  // namespace
}  // namespace flexrt
