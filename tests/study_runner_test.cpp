// The sharded study driver: shard parsing/partitioning invariants and the
// determinism contract (a trial's result depends only on (base_seed, trial
// id), never on the shard layout or worker count).
#include "core/study_runner.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "gen/taskset_gen.hpp"

namespace flexrt::core {
namespace {

TEST(ParseShard, AcceptsOneBasedCliForm) {
  EXPECT_EQ(parse_shard("1/1").index, 0u);
  EXPECT_EQ(parse_shard("1/1").count, 1u);
  EXPECT_EQ(parse_shard("2/4").index, 1u);
  EXPECT_EQ(parse_shard("2/4").count, 4u);
  EXPECT_EQ(parse_shard("8/8").index, 7u);
}

TEST(ParseShard, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_shard(""), ModelError);
  EXPECT_THROW(parse_shard("2"), ModelError);
  EXPECT_THROW(parse_shard("/4"), ModelError);
  EXPECT_THROW(parse_shard("2/"), ModelError);
  EXPECT_THROW(parse_shard("0/4"), ModelError);
  EXPECT_THROW(parse_shard("5/4"), ModelError);
  EXPECT_THROW(parse_shard("a/b"), ModelError);
  EXPECT_THROW(parse_shard("2/4x"), ModelError);
}

TEST(ShardRange, PartitionsEveryTrialExactlyOnce) {
  for (const std::size_t trials : {0u, 1u, 7u, 100u, 101u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
      std::vector<int> seen(trials, 0);
      std::size_t prev_end = 0;
      for (std::size_t k = 0; k < shards; ++k) {
        const auto [begin, end] = shard_range(trials, {k, shards});
        EXPECT_EQ(begin, prev_end);  // contiguous
        prev_end = end;
        for (std::size_t i = begin; i < end; ++i) seen[i]++;
      }
      EXPECT_EQ(prev_end, trials);
      for (std::size_t i = 0; i < trials; ++i) EXPECT_EQ(seen[i], 1);
    }
  }
}

TEST(ShardRange, SizesDifferByAtMostOne) {
  for (const std::size_t trials : {10u, 11u, 97u}) {
    const std::size_t shards = 4;
    std::size_t lo = trials, hi = 0;
    for (std::size_t k = 0; k < shards; ++k) {
      const auto [begin, end] = shard_range(trials, {k, shards});
      lo = std::min(lo, end - begin);
      hi = std::max(hi, end - begin);
    }
    EXPECT_LE(hi - lo, 1u);
  }
}

TEST(TrialRng, StreamsDifferAcrossTrialsAndMatchPerTrial) {
  Rng a = trial_rng(123, 5);
  Rng b = trial_rng(123, 5);
  Rng c = trial_rng(123, 6);
  EXPECT_EQ(a(), b());
  Rng a2 = trial_rng(123, 5);
  Rng c2 = trial_rng(123, 6);
  EXPECT_NE(a2(), c2());
  (void)c;
}

TEST(RunStudy, AssembledShardsMatchTheUnshardedRun) {
  const auto trial = [](std::size_t, Rng& rng) {
    gen::GenParams gp;
    gp.num_tasks = 6;
    gp.total_utilization = 0.8;
    const rt::TaskSet ts = gen::generate_task_set(gp, rng);
    return ts[0].wcet + 100.0 * ts[2].period;  // fingerprint of the stream
  };
  StudyOptions whole;
  whole.trials = 13;
  whole.base_seed = 99;
  const auto reference = run_study(whole, trial);
  ASSERT_EQ(reference.rows.size(), 13u);
  EXPECT_EQ(reference.begin, 0u);

  for (const std::size_t shards : {2u, 3u, 5u}) {
    std::vector<double> assembled(whole.trials, -1.0);
    for (std::size_t k = 0; k < shards; ++k) {
      StudyOptions part = whole;
      part.shard = {k, shards};
      const auto slice = run_study(part, trial);
      for (std::size_t i = 0; i < slice.rows.size(); ++i) {
        assembled[slice.begin + i] = slice.rows[i];
      }
    }
    for (std::size_t i = 0; i < whole.trials; ++i) {
      EXPECT_DOUBLE_EQ(assembled[i], reference.rows[i]) << "trial " << i;
    }
  }
}

TEST(RunStudyStream, EmitsTheSliceRowsInTrialOrder) {
  // The streaming twin must hand out exactly run_study's rows, keyed by
  // global trial id, in trial order -- per shard, so a shard process can
  // write its shard file without buffering the slice.
  const auto trial = [](std::size_t i, Rng& rng) {
    return static_cast<double>(i) + rng.uniform01();
  };
  StudyOptions whole;
  whole.trials = 23;
  whole.base_seed = 0xFEED;
  const auto reference = run_study(whole, trial);

  for (const std::size_t shards : {1u, 3u}) {
    for (std::size_t k = 0; k < shards; ++k) {
      StudyOptions part = whole;
      part.shard = {k, shards};
      const auto [begin, end] = shard_range(whole.trials, part.shard);
      std::vector<std::size_t> seen;
      const std::size_t peak = run_study_stream(
          part, trial,
          [&](std::size_t global, double row) {
            EXPECT_DOUBLE_EQ(row, reference.rows[global]);
            seen.push_back(global);
          },
          /*window=*/4);
      ASSERT_EQ(seen.size(), end - begin);
      for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i], begin + i);  // trial order, global ids
      }
      EXPECT_LE(peak, 4u);
    }
  }
}

TEST(RunStudy, PassesGlobalTrialIndices) {
  StudyOptions opts;
  opts.trials = 10;
  opts.shard = {1, 2};  // owns trials 5..10
  const auto slice =
      run_study(opts, [](std::size_t i, Rng&) { return static_cast<double>(i); });
  EXPECT_EQ(slice.begin, 5u);
  ASSERT_EQ(slice.rows.size(), 5u);
  for (std::size_t i = 0; i < slice.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(slice.rows[i], static_cast<double>(5 + i));
  }
}

}  // namespace
}  // namespace flexrt::core
