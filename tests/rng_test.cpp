#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace flexrt {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b();
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    seen[static_cast<std::size_t>(v - 2)]++;
  }
  for (const int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform(10.0, 1000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1000.0 * (1 + 1e-9));
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  Rng a(99);
  Rng a_fork = a.fork();
  Rng b(99);
  Rng b_fork = b.fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a_fork(), b_fork());
  // Parent stream continues deterministically after the fork too.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace flexrt
