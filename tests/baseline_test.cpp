#include <gtest/gtest.h>

#include "baseline/primary_backup.hpp"
#include "baseline/static_config.hpp"
#include "core/paper_example.hpp"

namespace flexrt::baseline {
namespace {

using hier::Scheduler;
using rt::make_task;
using rt::Mode;
using rt::TaskSet;

TEST(StaticConfig, ProtectionOrdering) {
  // FT hardware satisfies everything; NF hardware only NF.
  EXPECT_TRUE(satisfies(StaticConfig::AllFT, Mode::FT));
  EXPECT_TRUE(satisfies(StaticConfig::AllFT, Mode::FS));
  EXPECT_TRUE(satisfies(StaticConfig::AllFT, Mode::NF));
  EXPECT_FALSE(satisfies(StaticConfig::AllFS, Mode::FT));
  EXPECT_TRUE(satisfies(StaticConfig::AllFS, Mode::FS));
  EXPECT_TRUE(satisfies(StaticConfig::AllFS, Mode::NF));
  EXPECT_FALSE(satisfies(StaticConfig::AllNF, Mode::FT));
  EXPECT_FALSE(satisfies(StaticConfig::AllNF, Mode::FS));
  EXPECT_TRUE(satisfies(StaticConfig::AllNF, Mode::NF));
}

TEST(StaticConfig, PaperTaskSetOnlyFitsAllFt) {
  // Total U = 0.784 + ... let's see: the NF tasks cannot run on AllFS/AllNF
  // mode-wise? They can (weaker requirement). FT tasks block AllFS/AllNF.
  const rt::TaskSet all = core::paper_example_tasks();
  const StaticResult ft = try_static(all, StaticConfig::AllFT, Scheduler::EDF);
  EXPECT_TRUE(ft.mode_feasible);
  // Total utilization 1.37 > 1: one lock-step channel cannot host it.
  EXPECT_FALSE(ft.schedulable);
  EXPECT_FALSE(
      try_static(all, StaticConfig::AllFS, Scheduler::EDF).mode_feasible);
  EXPECT_FALSE(
      try_static(all, StaticConfig::AllNF, Scheduler::EDF).mode_feasible);
}

TEST(StaticConfig, LightAllFtWorkloadSchedulable) {
  TaskSet light{make_task("a", 1, 10, Mode::FT),
                make_task("b", 1, 20, Mode::FS),
                make_task("c", 1, 20, Mode::NF)};  // U = 0.2
  const StaticResult r = try_static(light, StaticConfig::AllFT, Scheduler::EDF);
  EXPECT_TRUE(r.mode_feasible);
  EXPECT_TRUE(r.schedulable);
}

TEST(StaticConfig, AllNfUsesFourChannels) {
  TaskSet heavy;
  for (int i = 0; i < 4; ++i) {
    heavy.add(make_task("t" + std::to_string(i), 9, 10, Mode::NF));  // U=0.9
  }
  EXPECT_TRUE(try_static(heavy, StaticConfig::AllNF, Scheduler::EDF)
                  .schedulable);
  // The same load can never fit two FS channels.
  EXPECT_FALSE(try_static(heavy, StaticConfig::AllFS, Scheduler::EDF)
                   .schedulable);
}

TEST(StaticConfig, Names) {
  EXPECT_STREQ(to_string(StaticConfig::AllFT), "static-FT");
  EXPECT_STREQ(to_string(StaticConfig::AllFS), "static-FS");
  EXPECT_STREQ(to_string(StaticConfig::AllNF), "static-NF");
}

TEST(PrimaryBackup, BackupsPlacedOnDistinctProcessors) {
  TaskSet ts{make_task("crit", 2, 10, Mode::FT),
             make_task("plain", 1, 10, Mode::NF)};
  const auto pb = build_primary_backup(ts);
  ASSERT_TRUE(pb.has_value());
  // Find primary and backup of "crit".
  int primary_proc = -1, backup_proc = -1;
  for (int p = 0; p < 4; ++p) {
    for (const rt::Task& t : pb->processors[static_cast<std::size_t>(p)]) {
      if (t.name == "crit") primary_proc = p;
      if (t.name == "crit_bk") backup_proc = p;
    }
  }
  ASSERT_NE(primary_proc, -1);
  ASSERT_NE(backup_proc, -1);
  EXPECT_NE(primary_proc, backup_proc);
  EXPECT_NEAR(pb->replication_overhead, 0.2, 1e-12);
}

TEST(PrimaryBackup, NfTasksGetNoBackup) {
  TaskSet ts{make_task("plain", 1, 10, Mode::NF)};
  const auto pb = build_primary_backup(ts);
  ASSERT_TRUE(pb.has_value());
  std::size_t copies = 0;
  for (const rt::TaskSet& proc : pb->processors) copies += proc.size();
  EXPECT_EQ(copies, 1u);
  EXPECT_DOUBLE_EQ(pb->replication_overhead, 0.0);
}

TEST(PrimaryBackup, PaperTaskSetSchedulable) {
  // Total PB load = 1.37 + 0.517 (protected copies) = 1.89 on 4 procs.
  const rt::TaskSet all = core::paper_example_tasks();
  EXPECT_TRUE(try_primary_backup(all, Scheduler::EDF));
}

TEST(PrimaryBackup, DoubledLoadCanExceedCapacity) {
  // 8 protected tasks of U=0.45: 16 copies x 0.45 = 7.2 > 4 processors.
  TaskSet heavy;
  for (int i = 0; i < 8; ++i) {
    heavy.add(make_task("t" + std::to_string(i), 4.5, 10, Mode::FT));
  }
  EXPECT_FALSE(build_primary_backup(heavy).has_value());
}

TEST(PrimaryBackup, HugeTaskWithBackupNeedsTwoProcessors) {
  // U = 0.9 protected: primary on one proc, backup on another; adding four
  // of them cannot fit (4 x 2 x 0.9 = 7.2 > 4).
  TaskSet one{make_task("big", 9, 10, Mode::FS)};
  EXPECT_TRUE(try_primary_backup(one, Scheduler::EDF));
  TaskSet four;
  for (int i = 0; i < 4; ++i) {
    four.add(make_task("big" + std::to_string(i), 9, 10, Mode::FS));
  }
  EXPECT_FALSE(build_primary_backup(four).has_value());
}

TEST(PrimaryBackup, SchedulabilityCheckedPerProcessor) {
  // Fits by utilization but fails EDF demand on some proc? Utilization-based
  // placement guarantees U<=1 per proc, and implicit deadlines make EDF
  // demand == utilization; use constrained deadlines to force a demand
  // failure: C=4, T=10, D=4 twice on one proc would need dbf(4)=8>4. The
  // placer uses worst-fit so they land on different procs and pass; verify
  // that at least the invariant "pb_schedulable implies every proc passes"
  // holds via a direct check.
  TaskSet ts{make_task("a", 4, 10, 4, Mode::NF),
             make_task("b", 4, 10, 4, Mode::NF)};
  const auto pb = build_primary_backup(ts);
  ASSERT_TRUE(pb.has_value());
  EXPECT_TRUE(pb_schedulable(*pb, Scheduler::EDF));
}

}  // namespace
}  // namespace flexrt::baseline
