#include "sim/supply_recorder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hier/supply.hpp"

namespace flexrt::sim {
namespace {

TEST(SupplyRecorder, TotalsAndPointQueries) {
  SupplyRecorder r;
  r.add(0, 10);
  r.add(20, 25);
  EXPECT_EQ(r.total(), 15);
  EXPECT_EQ(r.supplied_in(0, 30), 15);
  EXPECT_EQ(r.supplied_in(5, 22), 7);   // 5 from [5,10) + 2 from [20,22)
  EXPECT_EQ(r.supplied_in(10, 20), 0);  // the gap
  EXPECT_EQ(r.num_intervals(), 2u);
}

TEST(SupplyRecorder, MergesAdjacentIntervals) {
  SupplyRecorder r;
  r.add(0, 5);
  r.add(5, 8);
  EXPECT_EQ(r.num_intervals(), 1u);
  EXPECT_EQ(r.total(), 8);
}

TEST(SupplyRecorder, IgnoresEmptyIntervals) {
  SupplyRecorder r;
  r.add(3, 3);
  EXPECT_EQ(r.num_intervals(), 0u);
}

TEST(SupplyRecorder, RejectsOutOfOrderAppends) {
  SupplyRecorder r;
  r.add(10, 20);
  EXPECT_THROW(r.add(5, 8), ModelError);
}

TEST(SupplyRecorder, MinWindowSupplyWorstCase) {
  // Periodic pattern: 3 busy, 7 idle, period 10 (like SlotSupply(10,3)).
  SupplyRecorder r;
  for (Ticks k = 0; k < 10; ++k) r.add(k * 10, k * 10 + 3);
  const Ticks horizon = 100;
  // Worst window of length 10 starts right after a burst: supplies 3.
  EXPECT_EQ(r.min_window_supply(10, horizon), 3);
  // Window of length 7 fits exactly in the gap: supplies 0.
  EXPECT_EQ(r.min_window_supply(7, horizon), 0);
  EXPECT_EQ(r.min_window_supply(17, horizon), 3);
  EXPECT_EQ(r.min_window_supply(20, horizon), 6);
}

TEST(SupplyRecorder, MinWindowSupplyDominatesAnalyticBound) {
  // The measured minimum must dominate the Lemma-1 exact supply of the
  // matching slot pattern, which in turn dominates the linear bound.
  SupplyRecorder r;
  const double period = 4.0, usable = 1.5;
  for (Ticks k = 0; k < 50; ++k) {
    r.add(k * to_ticks(period), k * to_ticks(period) + to_ticks(usable));
  }
  const Ticks horizon = 50 * to_ticks(period);
  const hier::SlotSupply exact(period, usable);
  const hier::LinearSupply linear = exact.linear_bound();
  for (double t = 0.25; t <= 20.0; t += 0.25) {
    const Ticks measured = r.min_window_supply(to_ticks(t), horizon);
    EXPECT_GE(to_units(measured) + 1e-9, exact.value(t)) << "t=" << t;
    EXPECT_GE(to_units(measured) + 1e-9, linear.value(t)) << "t=" << t;
  }
}

TEST(SupplyRecorder, WindowLargerThanHorizonIsZero) {
  SupplyRecorder r;
  r.add(0, 10);
  EXPECT_EQ(r.min_window_supply(100, 50), 0);
}

}  // namespace
}  // namespace flexrt::sim
