#include "core/integration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/paper_example.hpp"

namespace flexrt::core {
namespace {

using hier::Scheduler;

class Integration : public ::testing::Test {
 protected:
  ModeTaskSystem sys_ = paper_example();
};

TEST_F(Integration, MarginEqualsPeriodMinusQuantaSum) {
  for (const double p : {0.5, 1.0, 2.0, 3.0}) {
    double sum = 0.0;
    for (const rt::Mode m : kAllModes) {
      sum += mode_min_quantum(sys_, m, Scheduler::EDF, p);
    }
    EXPECT_NEAR(feasibility_margin(sys_, Scheduler::EDF, p), p - sum, 1e-12);
  }
}

TEST_F(Integration, ModeMinQuantumIsMaxOverChannels) {
  // The FS mode has channels {tau6..8} (U=0.267) and {tau9} (U=0.25, D=4).
  const double p = 2.0;
  const rt::TaskSet fs1 = sys_.partitions(rt::Mode::FS)[0];
  const rt::TaskSet fs2 = sys_.partitions(rt::Mode::FS)[1];
  const double q1 = hier::min_quantum(fs1, Scheduler::EDF, p);
  const double q2 = hier::min_quantum(fs2, Scheduler::EDF, p);
  EXPECT_NEAR(mode_min_quantum(sys_, rt::Mode::FS, Scheduler::EDF, p),
              std::max(q1, q2), 1e-12);
}

TEST_F(Integration, MarginIsContinuousOnTheGrid) {
  // lhs(P) is continuous (max/min of continuous functions); adjacent fine
  // grid samples must not jump.
  const SearchOptions opts{0.2, 3.4, 2e-3, 1e-7, false};
  const auto samples = sample_region(sys_, Scheduler::EDF, opts);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(std::fabs(samples[i].margin - samples[i - 1].margin), 0.05)
        << "jump at P=" << samples[i].period;
  }
}

TEST_F(Integration, MaxFeasiblePeriodSitsOnTheBoundary) {
  const double o = 0.05;
  const double p = max_feasible_period(sys_, Scheduler::EDF, o);
  EXPECT_GE(feasibility_margin(sys_, Scheduler::EDF, p), o - 1e-6);
  // A slightly larger period must be infeasible (this is the last crossing).
  EXPECT_LT(feasibility_margin(sys_, Scheduler::EDF, p + 1e-3), o);
}

TEST_F(Integration, InfeasibleOverheadThrows) {
  EXPECT_THROW(max_feasible_period(sys_, Scheduler::EDF, 10.0),
               InfeasibleError);
  EXPECT_THROW(max_slack_period(sys_, Scheduler::EDF, 10.0), InfeasibleError);
}

TEST_F(Integration, MaxOverheadDominatesEveryGridSample) {
  const auto lim = max_admissible_overhead(sys_, Scheduler::EDF);
  const auto samples = sample_region(sys_, Scheduler::EDF);
  for (const RegionSample& s : samples) {
    EXPECT_LE(s.margin, lim.max_overhead + 1e-6);
  }
}

TEST_F(Integration, SlackOptimumConsistency) {
  const double o = 0.05;
  const auto opt = max_slack_period(sys_, Scheduler::EDF, o);
  EXPECT_NEAR(opt.slack,
              feasibility_margin(sys_, Scheduler::EDF, opt.period) - o, 1e-6);
  EXPECT_NEAR(opt.slack_bandwidth, opt.slack / opt.period, 1e-9);
  // It must beat a handful of other feasible periods on slack bandwidth.
  for (const double p : {0.5, 1.5, 2.5}) {
    const double other =
        (feasibility_margin(sys_, Scheduler::EDF, p) - o) / p;
    EXPECT_GE(opt.slack_bandwidth, other - 1e-6);
  }
}

TEST_F(Integration, ExactSupplyWidensTheRegion) {
  // minQ under the exact Lemma-1 supply is never larger, so the margin is
  // never smaller and the maximal feasible period can only grow.
  for (const double p : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_GE(feasibility_margin(sys_, Scheduler::EDF, p, true),
              feasibility_margin(sys_, Scheduler::EDF, p, false) - 1e-6);
  }
  SearchOptions exact_opts;
  exact_opts.use_exact_supply = true;
  const double p_exact =
      max_feasible_period(sys_, Scheduler::EDF, 0.05, exact_opts);
  const double p_linear = max_feasible_period(sys_, Scheduler::EDF, 0.05);
  EXPECT_GE(p_exact, p_linear - 1e-4);
}

TEST_F(Integration, AutoPeriodBoundCoversLargestDeadline) {
  EXPECT_GE(auto_period_bound(sys_), 30.0);  // tau13's period
}

TEST_F(Integration, InvalidSearchRangeThrows) {
  SearchOptions bad;
  bad.p_min = 5.0;
  bad.p_max = 1.0;
  EXPECT_THROW(max_feasible_period(sys_, Scheduler::EDF, 0.0, bad),
               ModelError);
}

}  // namespace
}  // namespace flexrt::core
