#include "hier/multi_slot_supply.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace flexrt::hier {
namespace {

TEST(MultiSlotSupply, SingleWindowMatchesSlotSupply) {
  // One window at the start of the frame is exactly the SlotSupply shape.
  const MultiSlotSupply multi(10.0, {{0.0, 3.0}});
  const SlotSupply single(10.0, 3.0);
  for (double t = 0.0; t <= 40.0; t += 0.37) {
    EXPECT_NEAR(multi.value(t), single.value(t), 1e-9) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(multi.rate(), single.rate());
  EXPECT_DOUBLE_EQ(multi.delay(), single.delay());
}

TEST(MultiSlotSupply, TwoWindowsWorkedExample) {
  // Frame 10 with windows [0,1) and [5,6): max gap = 4 (from 1 to 5 and
  // from 6 to 10+0).
  const MultiSlotSupply z(10.0, {{0.0, 1.0}, {5.0, 6.0}});
  EXPECT_DOUBLE_EQ(z.rate(), 0.2);
  EXPECT_DOUBLE_EQ(z.delay(), 4.0);
  EXPECT_DOUBLE_EQ(z.value(4.0), 0.0);   // worst start at 1 or 6: gap of 4
  EXPECT_DOUBLE_EQ(z.value(5.0), 1.0);   // gap + one full window
  EXPECT_DOUBLE_EQ(z.value(9.0), 1.0);   // window, gap, flat
  EXPECT_DOUBLE_EQ(z.value(10.0), 2.0);  // one full frame from a window end
}

TEST(MultiSlotSupply, CumulativeSupply) {
  const MultiSlotSupply z(10.0, {{0.0, 1.0}, {5.0, 6.0}});
  EXPECT_DOUBLE_EQ(z.cumulative(0.5), 0.5);
  EXPECT_DOUBLE_EQ(z.cumulative(3.0), 1.0);
  EXPECT_DOUBLE_EQ(z.cumulative(5.5), 1.5);
  EXPECT_DOUBLE_EQ(z.cumulative(10.0), 2.0);
  // 2 full frames (2 units each) + [20,25.5): window [20,21) plus half of
  // window [25,26).
  EXPECT_DOUBLE_EQ(z.cumulative(25.5), 5.5);
}

TEST(MultiSlotSupply, RejectsBadWindows) {
  EXPECT_THROW(MultiSlotSupply(10.0, {}), ModelError);
  EXPECT_THROW(MultiSlotSupply(10.0, {{3.0, 2.0}}), ModelError);       // empty
  EXPECT_THROW(MultiSlotSupply(10.0, {{0.0, 11.0}}), ModelError);      // over
  EXPECT_THROW(MultiSlotSupply(10.0, {{0.0, 5.0}, {4.0, 6.0}}),        // overlap
               ModelError);
}

TEST(EvenlySplit, LayoutAndParameters) {
  const MultiSlotSupply z = evenly_split_supply(12.0, 3.0, 3);
  EXPECT_EQ(z.num_windows(), 3u);
  EXPECT_DOUBLE_EQ(z.rate(), 0.25);
  // Windows [0,1), [4,5), [8,9): max gap 3.
  EXPECT_DOUBLE_EQ(z.delay(), 3.0);
}

// The headline property: splitting the same budget over k windows never
// hurts, and strictly shrinks the delay for k >= 2.
class SplitProperty
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(SplitProperty, MoreWindowsNeverSupplyLess) {
  const auto [period, fraction, k] = GetParam();
  const MultiSlotSupply one = evenly_split_supply(period, fraction * period, 1);
  const MultiSlotSupply many = evenly_split_supply(
      period, fraction * period, static_cast<std::size_t>(k));
  for (double t = 0.0; t <= 4.0 * period; t += period / 31.0) {
    EXPECT_GE(many.value(t) + 1e-9, one.value(t))
        << "P=" << period << " q=" << fraction * period << " k=" << k
        << " t=" << t;
  }
  EXPECT_LT(many.delay(), one.delay());
  EXPECT_NEAR(many.rate(), one.rate(), 1e-12);
}

TEST_P(SplitProperty, ValueIsMonotoneInT) {
  const auto [period, fraction, k] = GetParam();
  const MultiSlotSupply z = evenly_split_supply(
      period, fraction * period, static_cast<std::size_t>(k));
  double prev = 0.0;
  for (double t = 0.0; t <= 3.0 * period; t += period / 53.0) {
    const double v = z.value(t);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST_P(SplitProperty, ValueAtFrameMultiplesEqualsBudget) {
  const auto [period, fraction, k] = GetParam();
  const MultiSlotSupply z = evenly_split_supply(
      period, fraction * period, static_cast<std::size_t>(k));
  for (int m = 1; m <= 3; ++m) {
    EXPECT_NEAR(z.value(m * period), m * fraction * period, 1e-9);
  }
}

TEST_P(SplitProperty, SatisfiesTheLinearServiceFloor) {
  // value(t) >= rate * (t - floor_delay): the SupplyFunction contract the
  // QPA tail closure (rt/deadline_bound.hpp) relies on. For even splits
  // the floor delay coincides with the (single) gap.
  const auto [period, fraction, k] = GetParam();
  const MultiSlotSupply z = evenly_split_supply(
      period, fraction * period, static_cast<std::size_t>(k));
  EXPECT_NEAR(z.floor_delay(), z.delay(), 1e-9);
  for (int i = 0; i <= 400; ++i) {
    const double t = 3.0 * period * i / 400.0;
    EXPECT_GE(z.value(t) + 1e-9, z.rate() * (t - z.floor_delay()))
        << "t=" << t;
  }
}

TEST(MultiSlotSupply, FloorDelayHandlesUnevenWindows) {
  // Regression: with uneven gaps the max-gap delay() is NOT a valid linear
  // floor -- here Z(9) = 0.05 < rate*(9 - max_gap) = 0.105 -- so
  // floor_delay() must sit strictly right of the longest gap.
  const MultiSlotSupply z(10.0, {{0.0, 1.0}, {9.0, 9.05}});
  EXPECT_LT(z.value(9.0), z.rate() * (9.0 - z.delay()));  // delay() invalid
  EXPECT_GT(z.floor_delay(), z.delay());
  for (int i = 0; i <= 1000; ++i) {
    const double t = 30.0 * i / 1000.0;
    EXPECT_GE(z.value(t) + 1e-9, z.rate() * (t - z.floor_delay()))
        << "t=" << t;
  }
  // Tightness: the floor touches the supply somewhere (smallest valid D).
  double closest = 1e9;
  for (int i = 0; i <= 5000; ++i) {
    const double t = 30.0 * i / 5000.0;
    closest = std::min(closest, z.value(t) - z.rate() * (t - z.floor_delay()));
  }
  EXPECT_NEAR(closest, 0.0, 1e-6);
}

TEST(MultiSlotSupply, FloorDelayRandomLayoutsStayValid) {
  Rng rng(909);
  for (int it = 0; it < 60; ++it) {
    const double period = rng.uniform(2.0, 20.0);
    std::vector<MultiSlotSupply::Window> windows;
    double cursor = 0.0;
    for (int w = 0; w < 4; ++w) {
      const double room = period - cursor;
      if (room < 0.2) break;
      const double gap = rng.uniform(0.0, room * 0.5);
      const double len = rng.uniform(0.02, std::max(0.021, room * 0.3));
      windows.push_back({cursor + gap, cursor + gap + len});
      cursor = windows.back().end;
    }
    if (windows.empty() || windows.back().end > period) continue;
    const MultiSlotSupply z(period, std::move(windows));
    for (int i = 0; i <= 300; ++i) {
      const double t = 2.5 * period * i / 300.0;
      EXPECT_GE(z.value(t) + 1e-9, z.rate() * (t - z.floor_delay()))
          << "it=" << it << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SplitProperty,
    ::testing::Combine(::testing::Values(1.0, 4.0, 10.0),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace flexrt::hier
