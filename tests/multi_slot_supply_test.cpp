#include "hier/multi_slot_supply.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"

namespace flexrt::hier {
namespace {

TEST(MultiSlotSupply, SingleWindowMatchesSlotSupply) {
  // One window at the start of the frame is exactly the SlotSupply shape.
  const MultiSlotSupply multi(10.0, {{0.0, 3.0}});
  const SlotSupply single(10.0, 3.0);
  for (double t = 0.0; t <= 40.0; t += 0.37) {
    EXPECT_NEAR(multi.value(t), single.value(t), 1e-9) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(multi.rate(), single.rate());
  EXPECT_DOUBLE_EQ(multi.delay(), single.delay());
}

TEST(MultiSlotSupply, TwoWindowsWorkedExample) {
  // Frame 10 with windows [0,1) and [5,6): max gap = 4 (from 1 to 5 and
  // from 6 to 10+0).
  const MultiSlotSupply z(10.0, {{0.0, 1.0}, {5.0, 6.0}});
  EXPECT_DOUBLE_EQ(z.rate(), 0.2);
  EXPECT_DOUBLE_EQ(z.delay(), 4.0);
  EXPECT_DOUBLE_EQ(z.value(4.0), 0.0);   // worst start at 1 or 6: gap of 4
  EXPECT_DOUBLE_EQ(z.value(5.0), 1.0);   // gap + one full window
  EXPECT_DOUBLE_EQ(z.value(9.0), 1.0);   // window, gap, flat
  EXPECT_DOUBLE_EQ(z.value(10.0), 2.0);  // one full frame from a window end
}

TEST(MultiSlotSupply, CumulativeSupply) {
  const MultiSlotSupply z(10.0, {{0.0, 1.0}, {5.0, 6.0}});
  EXPECT_DOUBLE_EQ(z.cumulative(0.5), 0.5);
  EXPECT_DOUBLE_EQ(z.cumulative(3.0), 1.0);
  EXPECT_DOUBLE_EQ(z.cumulative(5.5), 1.5);
  EXPECT_DOUBLE_EQ(z.cumulative(10.0), 2.0);
  // 2 full frames (2 units each) + [20,25.5): window [20,21) plus half of
  // window [25,26).
  EXPECT_DOUBLE_EQ(z.cumulative(25.5), 5.5);
}

TEST(MultiSlotSupply, RejectsBadWindows) {
  EXPECT_THROW(MultiSlotSupply(10.0, {}), ModelError);
  EXPECT_THROW(MultiSlotSupply(10.0, {{3.0, 2.0}}), ModelError);       // empty
  EXPECT_THROW(MultiSlotSupply(10.0, {{0.0, 11.0}}), ModelError);      // over
  EXPECT_THROW(MultiSlotSupply(10.0, {{0.0, 5.0}, {4.0, 6.0}}),        // overlap
               ModelError);
}

TEST(EvenlySplit, LayoutAndParameters) {
  const MultiSlotSupply z = evenly_split_supply(12.0, 3.0, 3);
  EXPECT_EQ(z.num_windows(), 3u);
  EXPECT_DOUBLE_EQ(z.rate(), 0.25);
  // Windows [0,1), [4,5), [8,9): max gap 3.
  EXPECT_DOUBLE_EQ(z.delay(), 3.0);
}

// The headline property: splitting the same budget over k windows never
// hurts, and strictly shrinks the delay for k >= 2.
class SplitProperty
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(SplitProperty, MoreWindowsNeverSupplyLess) {
  const auto [period, fraction, k] = GetParam();
  const MultiSlotSupply one = evenly_split_supply(period, fraction * period, 1);
  const MultiSlotSupply many = evenly_split_supply(
      period, fraction * period, static_cast<std::size_t>(k));
  for (double t = 0.0; t <= 4.0 * period; t += period / 31.0) {
    EXPECT_GE(many.value(t) + 1e-9, one.value(t))
        << "P=" << period << " q=" << fraction * period << " k=" << k
        << " t=" << t;
  }
  EXPECT_LT(many.delay(), one.delay());
  EXPECT_NEAR(many.rate(), one.rate(), 1e-12);
}

TEST_P(SplitProperty, ValueIsMonotoneInT) {
  const auto [period, fraction, k] = GetParam();
  const MultiSlotSupply z = evenly_split_supply(
      period, fraction * period, static_cast<std::size_t>(k));
  double prev = 0.0;
  for (double t = 0.0; t <= 3.0 * period; t += period / 53.0) {
    const double v = z.value(t);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST_P(SplitProperty, ValueAtFrameMultiplesEqualsBudget) {
  const auto [period, fraction, k] = GetParam();
  const MultiSlotSupply z = evenly_split_supply(
      period, fraction * period, static_cast<std::size_t>(k));
  for (int m = 1; m <= 3; ++m) {
    EXPECT_NEAR(z.value(m * period), m * fraction * period, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SplitProperty,
    ::testing::Combine(::testing::Values(1.0, 4.0, 10.0),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace flexrt::hier
