#include "hier/sched_test.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rt/edf_test.hpp"
#include "rt/priority.hpp"
#include "rt/rta.hpp"
#include "rt/task.hpp"

namespace flexrt::hier {
namespace {

using rt::make_task;
using rt::Mode;
using rt::TaskSet;

TEST(FpSupplyTest, DedicatedSupplyMatchesClassicRta) {
  // With alpha=1, delta=0 the hierarchical test must agree with plain RTA.
  Rng rng(31);
  const LinearSupply dedicated(1.0, 0.0);
  int agree_sched = 0, agree_unsched = 0;
  for (int trial = 0; trial < 200; ++trial) {
    TaskSet ts;
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < n; ++i) {
      const double period = static_cast<double>(rng.uniform_int(4, 40));
      ts.add(make_task("t" + std::to_string(i),
                       rng.uniform(0.5, period * 0.45), period, Mode::NF));
    }
    const TaskSet rm = rt::sort_rate_monotonic(ts);
    const bool hier = fp_schedulable(rm, dedicated);
    const bool classic = rt::fp_schedulable(rm);
    ASSERT_EQ(hier, classic) << "trial " << trial;
    (classic ? agree_sched : agree_unsched)++;
  }
  EXPECT_GT(agree_sched, 20);
  EXPECT_GT(agree_unsched, 20);
}

TEST(EdfSupplyTest, DedicatedSupplyMatchesProcessorDemand) {
  Rng rng(37);
  const LinearSupply dedicated(1.0, 0.0);
  for (int trial = 0; trial < 200; ++trial) {
    TaskSet ts;
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < n; ++i) {
      const double period = static_cast<double>(rng.uniform_int(4, 24));
      const double wcet = rng.uniform(0.5, period * 0.45);
      const double deadline = rng.uniform(wcet, period);
      ts.add(make_task("t" + std::to_string(i), wcet, period, deadline,
                       Mode::NF));
    }
    EXPECT_EQ(edf_schedulable(ts, dedicated), rt::edf_schedulable(ts))
        << "trial " << trial;
  }
}

TEST(SupplyTests, ShrinkingSupplyBreaksSchedulability) {
  const TaskSet ts{make_task("a", 1, 4, Mode::NF),
                   make_task("b", 1, 8, Mode::NF)};  // U = 0.375
  // Generous partition: alpha 0.6, small delay.
  EXPECT_TRUE(edf_schedulable(ts, LinearSupply(0.6, 0.5)));
  EXPECT_TRUE(fp_schedulable(ts, LinearSupply(0.6, 0.5)));
  // Rate below utilization can never work.
  EXPECT_FALSE(edf_schedulable(ts, LinearSupply(0.3, 0.5)));
  EXPECT_FALSE(fp_schedulable(ts, LinearSupply(0.3, 0.5)));
  // Huge delay starves the short-deadline task.
  EXPECT_FALSE(edf_schedulable(ts, LinearSupply(0.9, 3.9)));
  EXPECT_FALSE(fp_schedulable(ts, LinearSupply(0.9, 3.9)));
}

TEST(SupplyTests, ExactSlotSupplyDominatesLinearBound) {
  // Anything schedulable under the linear bound must stay schedulable under
  // the exact Lemma-1 supply of the same slot.
  Rng rng(41);
  int upgraded = 0;
  for (int trial = 0; trial < 150; ++trial) {
    TaskSet ts;
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n; ++i) {
      const double period = static_cast<double>(rng.uniform_int(6, 30));
      ts.add(make_task("t" + std::to_string(i),
                       rng.uniform(0.3, period * 0.2), period, Mode::NF));
    }
    const double p = rng.uniform(0.5, 4.0);
    const double q = rng.uniform(0.1 * p, p);
    const SlotSupply exact(p, q);
    const LinearSupply linear = exact.linear_bound();
    if (edf_schedulable(ts, linear)) {
      EXPECT_TRUE(edf_schedulable(ts, exact)) << "trial " << trial;
    } else if (edf_schedulable(ts, exact)) {
      upgraded++;  // exact supply admits strictly more sets
    }
    if (fp_schedulable(rt::sort_rate_monotonic(ts), linear)) {
      EXPECT_TRUE(fp_schedulable(rt::sort_rate_monotonic(ts), exact));
    }
  }
  EXPECT_GT(upgraded, 0) << "exact test never beat the linear bound; the "
                            "comparison is vacuous";
}

TEST(SupplyTests, EmptyTaskSetAlwaysSchedulable) {
  const TaskSet empty;
  EXPECT_TRUE(edf_schedulable(empty, LinearSupply(0.1, 10.0)));
  EXPECT_TRUE(fp_schedulable(empty, LinearSupply(0.1, 10.0)));
}

TEST(SchedulerEnum, Names) {
  EXPECT_STREQ(to_string(Scheduler::FP), "FP");
  EXPECT_STREQ(to_string(Scheduler::EDF), "EDF");
}

}  // namespace
}  // namespace flexrt::hier
