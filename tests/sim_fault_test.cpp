// Fault-injection invariants (experiment E6): under single transient
// faults, FT tasks never emit a wrong result, FS tasks are silenced but
// never corrupted, and only NF tasks can produce silent data corruption.
#include <gtest/gtest.h>

#include "core/design.hpp"
#include "core/paper_example.hpp"
#include "sim/simulator.hpp"

namespace flexrt {
namespace {

using hier::Scheduler;

class SimFault : public ::testing::Test {
 protected:
  core::ModeTaskSystem sys_ = core::paper_example();

  core::ModeSchedule design() {
    return core::solve_design(sys_, Scheduler::EDF, {0.02, 0.02, 0.02},
                              core::DesignGoal::MaxSlackBandwidth)
        .schedule;
  }

  sim::SimResult run_with_faults(double rate, sim::DetectionPolicy policy =
                                                  sim::DetectionPolicy::Immediate,
                                 std::uint64_t seed = 7) {
    sim::SimOptions opt;
    opt.horizon = 5000.0;
    opt.scheduler = Scheduler::EDF;
    opt.faults = {rate, 2.0};
    opt.detection = policy;
    opt.seed = seed;
    return sim::simulate(sys_, design(), opt);
  }
};

TEST_F(SimFault, FaultFreeRunHasNoFaultEffects) {
  const sim::SimResult r = run_with_faults(0.0);
  EXPECT_EQ(r.faults.injected, 0u);
  EXPECT_EQ(r.total_wrong_results(), 0u);
  EXPECT_EQ(r.total_silenced(), 0u);
}

TEST_F(SimFault, FtTasksNeverEmitWrongResults) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const sim::SimResult r =
        run_with_faults(0.05, sim::DetectionPolicy::Immediate, seed);
    ASSERT_GT(r.faults.injected, 50u);
    for (const sim::TaskStats& t : r.tasks) {
      if (t.mode == rt::Mode::FT) {
        EXPECT_EQ(t.corrupted_outputs, 0u) << t.name;
        EXPECT_EQ(t.silenced, 0u) << t.name;  // single faults: masked only
      }
    }
  }
}

TEST_F(SimFault, FtTasksKeepMeetingDeadlinesUnderFaults) {
  // Masking is transparent: FT jobs keep running and meet every deadline.
  const sim::SimResult r = run_with_faults(0.05);
  for (const sim::TaskStats& t : r.tasks) {
    if (t.mode == rt::Mode::FT) {
      EXPECT_EQ(t.deadline_misses, 0u) << t.name;
      EXPECT_GT(t.completions, 0u);
    }
  }
}

TEST_F(SimFault, FsTasksSilencedNeverCorrupted) {
  std::uint64_t silenced_total = 0;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const sim::SimResult r =
        run_with_faults(0.05, sim::DetectionPolicy::Immediate, seed);
    for (const sim::TaskStats& t : r.tasks) {
      if (t.mode == rt::Mode::FS) {
        EXPECT_EQ(t.corrupted_outputs, 0u) << t.name;
        silenced_total += t.silenced;
      }
    }
  }
  EXPECT_GT(silenced_total, 0u) << "fault rate too low to exercise FS";
}

TEST_F(SimFault, NfTasksSufferSilentCorruption) {
  std::uint64_t corrupted = 0;
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const sim::SimResult r =
        run_with_faults(0.05, sim::DetectionPolicy::Immediate, seed);
    for (const sim::TaskStats& t : r.tasks) {
      if (t.mode == rt::Mode::NF) {
        corrupted += t.corrupted_outputs;
        EXPECT_EQ(t.silenced, 0u) << t.name;  // NF has no detection at all
      }
    }
  }
  EXPECT_GT(corrupted, 0u);
}

TEST_F(SimFault, FaultClassificationIsExhaustive) {
  const sim::SimResult r = run_with_faults(0.08);
  EXPECT_EQ(r.faults.injected,
            r.faults.masked + r.faults.silenced + r.faults.corrupting +
                r.faults.harmless);
  EXPECT_GT(r.faults.masked, 0u);
  EXPECT_GT(r.faults.harmless, 0u);
}

TEST_F(SimFault, AtOutputDetectionAlsoNeverCorruptsFsOutput) {
  const sim::SimResult r =
      run_with_faults(0.05, sim::DetectionPolicy::AtOutput);
  for (const sim::TaskStats& t : r.tasks) {
    if (t.mode != rt::Mode::NF) {
      EXPECT_EQ(t.corrupted_outputs, 0u) << t.name;
    }
  }
}

TEST_F(SimFault, ImmediateDetectionSilencesAtMostAtOutputRate) {
  // Immediate detection aborts earlier, so it can only reduce the number of
  // corrupted FS *completions* relative to at-output detection; both must
  // silence something at this rate.
  const sim::SimResult imm =
      run_with_faults(0.05, sim::DetectionPolicy::Immediate);
  const sim::SimResult out =
      run_with_faults(0.05, sim::DetectionPolicy::AtOutput);
  EXPECT_GT(imm.total_silenced() + out.total_silenced(), 0u);
}

TEST_F(SimFault, HigherRateMoreEffects) {
  const sim::SimResult low = run_with_faults(0.01);
  const sim::SimResult high = run_with_faults(0.2);
  EXPECT_GT(high.faults.injected, low.faults.injected);
  EXPECT_GE(high.total_wrong_results() + high.total_silenced(),
            low.total_wrong_results() + low.total_silenced());
}

}  // namespace
}  // namespace flexrt
