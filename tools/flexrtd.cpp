// flexrtd -- the resident analysis daemon.
//
// Keeps one process-wide analysis pool warm and serves the net::proto wire
// protocol (spec in tools/README.md) over a unix-domain or TCP socket: each
// connection gets its own fleet (a proto::Session), results stream back in
// entry order with bounded per-client memory, and the reports are
// byte-identical to the offline `flexrt_design` subcommands -- the warm
// counterpart of forking one process per request (the daemon_roundtrip
// bench row quantifies the difference).
//
// Usage:
//   flexrtd --socket PATH | --port N [--threads N] [--no-memo]
//           [--memo-bytes N]
//
//   --socket PATH   listen on a unix-domain socket at PATH
//   --port N        listen on TCP 127.0.0.1:N (0 = kernel-assigned; the
//                   chosen port is printed on the listening line)
//   --threads N     analysis pool width (sets FLEXRT_THREADS before the
//                   pool spins up)
//   --no-memo       disable the process-wide answer memo (svc::MemoCache);
//                   every request recomputes
//   --memo-bytes N  cap the answer memo at N bytes (default 256 MiB);
//                   sessions share the cache, so a fleet solved by one
//                   client is a lookup for every later client
//
// On start the daemon prints exactly one line to stdout --
//   flexrtd: listening on unix:PATH   or   flexrtd: listening on tcp:PORT
// -- so wrappers can wait for readiness by reading it.
//
// Shutdown: SIGINT/SIGTERM drain gracefully -- stop accepting, finish every
// in-flight command (its rows and status line go out whole), EOF the
// sessions, unlink the socket, exit 0. No command is ever cut off
// mid-reply; clients see a clean end-of-stream.
//
// Exit status: 0 after a signal-driven drain, 2 on usage or socket errors.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/signals.hpp"
#include "net/proto.hpp"
#include "net/server.hpp"
#include "svc/memo_cache.hpp"

using namespace flexrt;

namespace {

void usage_text(std::ostream& os) {
  os << "usage: flexrtd --socket PATH | --port N [--threads N]\n"
        "               [--no-memo] [--memo-bytes N]\n"
        "  --socket PATH  listen on a unix-domain socket\n"
        "  --port N       listen on TCP 127.0.0.1:N (0 = ephemeral)\n"
        "  --threads N    analysis pool width (FLEXRT_THREADS)\n"
        "  --no-memo      disable the process-wide answer memo\n"
        "  --memo-bytes N cap the answer memo at N bytes (default 256 MiB)\n"
        "serves the flexrt_design wire protocol (see tools/README.md);\n"
        "SIGINT/SIGTERM drain in-flight commands and exit 0\n";
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGINT:
      return "SIGINT";
    case SIGTERM:
      return "SIGTERM";
    default:
      return "signal";
  }
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions opts;
  long threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--help" || a == "-h") {
      usage_text(std::cout);
      return 0;
    }
    if (a == "--socket") {
      const char* v = next();
      if (!v || !*v) {
        usage_text(std::cerr);
        return 2;
      }
      opts.socket_path = v;
    } else if (a == "--port") {
      const char* v = next();
      char* end = nullptr;
      const long port = v ? std::strtol(v, &end, 10) : -1;
      if (!v || !*v || *end || port < 0 || port > 65535) {
        usage_text(std::cerr);
        return 2;
      }
      opts.port = static_cast<int>(port);
    } else if (a == "--threads") {
      const char* v = next();
      char* end = nullptr;
      threads = v ? std::strtol(v, &end, 10) : 0;
      if (!v || !*v || *end || threads <= 0) {
        usage_text(std::cerr);
        return 2;
      }
    } else if (a == "--no-memo") {
      svc::global_memo().set_enabled(false);
    } else if (a == "--memo-bytes") {
      const char* v = next();
      if (!v || !*v) {
        usage_text(std::cerr);
        return 2;
      }
      try {
        svc::global_memo().set_capacity_bytes(
            net::proto::parse_size("--memo-bytes", v));
      } catch (const Error&) {
        usage_text(std::cerr);
        return 2;
      }
    } else {
      usage_text(std::cerr);
      return 2;
    }
  }
  if (opts.socket_path.empty() == (opts.port < 0)) {
    usage_text(std::cerr);
    return 2;
  }
  if (threads > 0) {
    // Must land before the first analysis runs: the pool reads the
    // variable once, at spin-up.
    ::setenv("FLEXRT_THREADS", std::to_string(threads).c_str(), 1);
  }

  sys::install_stop_signals();
  try {
    net::Server server(opts);
    server.start();
    if (!opts.socket_path.empty()) {
      std::cout << "flexrtd: listening on unix:" << opts.socket_path << "\n"
                << std::flush;
    } else {
      std::cout << "flexrtd: listening on tcp:" << server.tcp_port() << "\n"
                << std::flush;
    }
    while (!sys::stop_requested().load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cerr << "flexrtd: " << signal_name(sys::stop_signal())
              << " -- draining\n";
    server.stop();
    std::cerr << "flexrtd: served " << server.sessions_served()
              << " session(s), exiting\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "flexrtd: error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "flexrtd: error: " << e.what() << "\n";
    return 2;
  }
}
