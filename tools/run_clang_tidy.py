#!/usr/bin/env python3
"""Content-addressed clang-tidy runner -- layer 2 of the static-analysis gate.

clang-tidy over a whole repo is minutes; over a PR's touched files with a
warm cache it is seconds. This wrapper gives both Modes:

  * diff-aware:  --since REF lints only translation units changed relative
    to merge-base(REF, HEAD) plus the working tree (the PR surface). When
    the diff touches no TUs the full set runs instead -- a gate that can
    be dodged by renaming files lints everything rather than nothing.
  * cached:      each TU's verdict is keyed by sha256(clang-tidy version,
    .clang-tidy, the TU bytes, its compile command, and a digest of every
    tracked header). Only *clean* verdicts are cached -- findings re-run
    every time so they stay visible until fixed. Header edits invalidate
    the whole cache: conservative, but headers are where the lies live.

Usage: run_clang_tidy.py [--build-dir build] [--since REF] [--jobs N]
                         [--cache-dir .tidy-cache] [files...]
Exit 0 clean, 1 findings, 2 environment problems (no clang-tidy, no
compile_commands.json). CI treats 2 as failure too: a gate that cannot run
must not report green.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import pathlib
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def find_clang_tidy() -> str | None:
    for name in ("clang-tidy", "clang-tidy-19", "clang-tidy-18",
                 "clang-tidy-17", "clang-tidy-16", "clang-tidy-15",
                 "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def git(*args: str) -> str:
    return subprocess.run(("git", *args), cwd=REPO, check=True,
                          capture_output=True, text=True).stdout


def changed_files(since: str) -> set[pathlib.Path]:
    base = git("merge-base", since, "HEAD").strip()
    names = git("diff", "--name-only", base).splitlines()
    names += git("diff", "--name-only").splitlines()  # unstaged edits
    return {(REPO / n).resolve() for n in names if n}


def headers_digest() -> str:
    h = hashlib.sha256()
    for name in sorted(git("ls-files", "src/**/*.hpp", "src/*.hpp",
                           "bench/*.hpp").splitlines()):
        p = REPO / name
        if p.is_file():
            h.update(name.encode())
            h.update(p.read_bytes())
    return h.hexdigest()


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default=str(REPO / "build"))
    ap.add_argument("--since", metavar="REF",
                    help="lint only TUs changed since merge-base(REF, HEAD)")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    ap.add_argument("--cache-dir", default=str(REPO / ".tidy-cache"))
    ap.add_argument("files", nargs="*")
    opts = ap.parse_args(argv[1:])

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: no clang-tidy binary on PATH", file=sys.stderr)
        return 2
    ccdb = pathlib.Path(opts.build_dir) / "compile_commands.json"
    if not ccdb.is_file():
        print(f"run_clang_tidy: {ccdb} missing -- configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 2

    commands: dict[pathlib.Path, str] = {}
    for entry in json.loads(ccdb.read_text()):
        src = pathlib.Path(entry["file"]).resolve()
        # Our own TUs only: vendored FetchContent sources lint upstream.
        if REPO in src.parents and "_deps" not in src.parts:
            commands[src] = entry.get("command") or " ".join(entry["arguments"])

    if opts.files:
        targets = [pathlib.Path(f).resolve() for f in opts.files]
        missing = [t for t in targets if t not in commands]
        if missing:
            print("run_clang_tidy: not in compile_commands.json: "
                  + " ".join(str(m) for m in missing), file=sys.stderr)
            return 2
    elif opts.since:
        touched = changed_files(opts.since)
        targets = sorted(t for t in commands if t in touched)
        if not targets:
            print("run_clang_tidy: diff touches no TUs -- linting all",
                  file=sys.stderr)
            targets = sorted(commands)
    else:
        targets = sorted(commands)

    version = subprocess.run((tidy, "--version"), capture_output=True,
                             text=True, check=True).stdout
    config = (REPO / ".clang-tidy").read_bytes()
    hdr_digest = headers_digest()
    cache = pathlib.Path(opts.cache_dir)
    cache.mkdir(parents=True, exist_ok=True)

    def key(src: pathlib.Path) -> pathlib.Path:
        h = hashlib.sha256()
        for part in (version.encode(), config, src.read_bytes(),
                     commands[src].encode(), hdr_digest.encode()):
            h.update(part)
            h.update(b"\0")
        return cache / h.hexdigest()

    def run_one(src: pathlib.Path) -> tuple[pathlib.Path, int, str]:
        marker = key(src)
        if marker.is_file():
            return src, 0, ""
        proc = subprocess.run(
            (tidy, "-p", opts.build_dir, "--quiet", str(src)),
            capture_output=True, text=True)
        if proc.returncode == 0:
            marker.touch()
        return src, proc.returncode, proc.stdout + proc.stderr

    failed = 0
    hits = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=opts.jobs) as pool:
        for src, rc, output in pool.map(run_one, targets):
            rel = src.relative_to(REPO)
            if rc == 0 and not output:
                hits += 1
                continue
            if rc != 0:
                failed += 1
                print(f"--- {rel}")
            if output.strip():
                print(output.strip())

    print(f"run_clang_tidy: {len(targets)} TU(s), {hits} cached-or-quiet, "
          f"{failed} with findings", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
