#!/usr/bin/env python3
"""Repo-specific invariant linter -- layer 3 of the static-analysis gate.

The clang thread-safety build proves lock contracts and clang-tidy catches
generic bug patterns; this script enforces the invariants that are about
*this* repo's architecture and that no general-purpose tool can know:

  raw-mutex       Concurrency primitives (std::mutex, std::lock_guard,
                  std::scoped_lock, std::unique_lock, std::shared_lock,
                  std::condition_variable[_any], pthread mutexes) may not
                  appear outside src/common/annotations.hpp. Everything
                  locks through the annotated sys::Mutex / sys::MutexLock /
                  sys::CondVar wrappers so the clang Thread Safety Analysis
                  sees every acquisition. (std::once_flag / call_once are
                  fine: they carry no guarded state of their own.)

  jsonl-helpers   JSONL rows are built by svc/jsonl.hpp's Row/field
                  helpers, never by hand. Streaming or appending a string
                  literal that contains a raw JSON key fragment ("\":") is
                  hand-rolled row emission -- it bypasses the escaping and
                  the key-ordering discipline the byte-identity tests pin.

  wall-pairing    The "wall_ms" and "cache_hit" JSONL keys are rendered in
                  exactly one place (src/svc/study_report.cpp provenance
                  block) and always together: cache_hit only ever rides in
                  rows that carry wall_ms, so wall-free rows -- the
                  byte-identity currency for wire/journal/merge/stream
                  paths -- can never change bytes on a memo hit.

  signal-handler  A signal handler body may contain nothing but lock-free
                  atomic .store() statements (POSIX XSH 2.4.3
                  async-signal-safety; see src/common/signals.cpp).

Suppress a finding with a justification comment on the same line or the
line above:  // lint: allow(<rule>) <why>

Usage: lint_invariants.py [PATH...]   (default: src tools tests)
Exits 0 when clean, 1 with one "file:line: [rule] message" per finding.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Files that ARE the sanctioned implementation of a rule's subject.
RAW_MUTEX_SANCTIONED = {"src/common/annotations.hpp"}
JSONL_SANCTIONED = {"src/svc/jsonl.hpp", "src/svc/jsonl.cpp", "src/svc/rows.cpp"}
WALL_PAIR_SANCTIONED = {"src/svc/study_report.cpp"}

RAW_MUTEX_TOKENS = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|\bstd::(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b"
    r"|\bpthread_(?:mutex|cond)_"
)

# A string literal holding a raw JSON key fragment, being streamed (<<) or
# appended (+=). fprintf-style whole-document reports (bench_report's JSON
# summary) are a different artifact class and are not row emission.
JSONL_HAND_ROLLED = re.compile(r'(?:<<|\+=)\s*"(?:[^"\\]|\\.)*\\":')

WALL_KEY = re.compile(r'"wall_ms"')
HIT_KEY = re.compile(r'"cache_hit"')

ALLOW = re.compile(r"//\s*lint:\s*allow\((?P<rule>[a-z-]+)\)")

SIGNAL_HANDLER_DEF = re.compile(r'extern\s+"C"\s+void\s+\w+\s*\(\s*int\b[^)]*\)\s*\{')
ATOMIC_STORE_STMT = re.compile(r"^\w+\.store\(.+\)$")


def strip_comments(lines: list[str]) -> list[str]:
    """Blank out // and /* */ comment text, preserving line structure."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        in_str = False
        while i < len(line):
            ch = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if in_str:
                result.append(ch)
                if ch == "\\" and i + 1 < len(line):
                    result.append(line[i + 1])
                    i += 2
                    continue
                if ch == '"':
                    in_str = False
                i += 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if ch == '"':
                in_str = True
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


class Findings:
    def __init__(self) -> None:
        self.items: list[str] = []

    def add(self, path: pathlib.Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.resolve()
        try:
            rel = rel.relative_to(REPO)
        except ValueError:
            pass
        self.items.append(f"{rel}:{lineno}: [{rule}] {msg}")


def allowed(raw: list[str], idx: int, rule: str) -> bool:
    """True when line idx (0-based) carries or follows an allow comment."""
    for line in (raw[idx], raw[idx - 1] if idx > 0 else ""):
        m = ALLOW.search(line)
        if m and m.group("rule") == rule:
            return True
    return False


def rel_key(path: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(REPO).as_posix()
    except ValueError:
        return path.as_posix()


def check_raw_mutex(path, raw, code, findings):
    if rel_key(path) in RAW_MUTEX_SANCTIONED:
        # Still honor the discipline inside the sanctioned file: its own
        # primitives carry explicit allow comments, so a *new* unannotated
        # primitive there is flagged too.
        pass
    for idx, line in enumerate(code):
        m = RAW_MUTEX_TOKENS.search(line)
        if not m:
            continue
        if allowed(raw, idx, "raw-mutex"):
            continue
        findings.add(
            path, idx + 1, "raw-mutex",
            f"{m.group(0)} outside the annotated wrappers -- use sys::Mutex / "
            "sys::MutexLock / sys::CondVar from common/annotations.hpp so the "
            "clang thread-safety analysis sees this acquisition")


def check_jsonl_helpers(path, raw, code, findings):
    if rel_key(path) in JSONL_SANCTIONED:
        return
    for idx, line in enumerate(raw):
        if not JSONL_HAND_ROLLED.search(line):
            continue
        if allowed(raw, idx, "jsonl-helpers"):
            continue
        findings.add(
            path, idx + 1, "jsonl-helpers",
            "hand-rolled JSON key emission -- build rows with svc/jsonl.hpp "
            "Row::field / svc/rows.hpp so escaping and key order stay uniform")


def check_wall_pairing(path, raw, code, findings):
    key = rel_key(path)
    wall_lines = [i for i, l in enumerate(raw) if WALL_KEY.search(l)]
    hit_lines = [i for i, l in enumerate(raw) if HIT_KEY.search(l)]
    if key not in WALL_PAIR_SANCTIONED:
        for idx in wall_lines + hit_lines:
            if allowed(raw, idx, "wall-pairing"):
                continue
            findings.add(
                path, idx + 1, "wall-pairing",
                'the "wall_ms"/"cache_hit" keys may only be rendered by the '
                "provenance block in src/svc/study_report.cpp -- route new "
                "rows through it")
        return
    for idx in hit_lines:
        if allowed(raw, idx, "wall-pairing"):
            continue
        if not any(abs(idx - w) <= 2 for w in wall_lines):
            findings.add(
                path, idx + 1, "wall-pairing",
                '"cache_hit" rendered away from "wall_ms" -- a hit may only '
                "be recorded in rows that also carry wall_ms, or wall-free "
                "rows lose byte identity on memo hits")


def check_signal_handler(path, raw, code, findings):
    text = "\n".join(code)
    for m in SIGNAL_HANDLER_DEF.finditer(text):
        start = m.end()  # position just past the opening brace
        depth = 1
        pos = start
        while pos < len(text) and depth:
            if text[pos] == "{":
                depth += 1
            elif text[pos] == "}":
                depth -= 1
            pos += 1
        body = text[start:pos - 1]
        body_line0 = text.count("\n", 0, start)
        for off, stmt_line in enumerate(body.split("\n")):
            stmt = stmt_line.strip().rstrip(";").strip()
            if not stmt:
                continue
            idx = body_line0 + off
            if ATOMIC_STORE_STMT.match(stmt):
                continue
            if allowed(raw, idx, "signal-handler"):
                continue
            findings.add(
                path, idx + 1, "signal-handler",
                f"'{stmt}' in a signal handler -- handlers may only store "
                "into lock-free atomics (POSIX XSH 2.4.3 async-signal-"
                "safety; see src/common/signals.cpp)")


CHECKS = [check_raw_mutex, check_jsonl_helpers, check_wall_pairing,
          check_signal_handler]
EXTENSIONS = {".cpp", ".hpp", ".cc", ".h"}


def lint_file(path: pathlib.Path, findings: Findings) -> None:
    raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
    code = strip_comments(raw)
    for check in CHECKS:
        check(path, raw, code, findings)


def collect(paths: list[str]) -> list[pathlib.Path]:
    files = []
    for arg in paths:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(q for q in p.rglob("*") if q.suffix in EXTENSIONS))
        elif p.suffix in EXTENSIONS:
            files.append(p)
    return files


def main(argv: list[str]) -> int:
    roots = argv[1:] or [str(REPO / "src"), str(REPO / "tools"),
                         str(REPO / "tests")]
    findings = Findings()
    files = collect(roots)
    if not files:
        print("lint_invariants: no input files", file=sys.stderr)
        return 2
    for path in files:
        lint_file(path, findings)
    for item in findings.items:
        print(item)
    if findings.items:
        print(f"lint_invariants: {len(findings.items)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
